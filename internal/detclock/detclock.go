// Package detclock implements the deterministic-logical-clock
// application sketched in the paper's related work (§6): the pure-IR
// variant of Compiler Interrupts is deterministic, so the instruction
// count delivered to the handler can serve as a logical clock for
// deterministic multithreading (à la CoreDet/Kendo) — unlike hardware
// performance counters, which are "not guaranteed to be deterministic,
// making them unsuitable for enforcing determinism".
//
// Capture runs an instrumented program and records one event per
// handler invocation, stamped with the logical (IR-count) clock. With
// the pure-IR design the event trace is a pure function of the program
// and its inputs: it does not change when the machine's timing
// (cost model, cache behaviour, contention) changes. With the
// cycle-gated design, it does.
package detclock

import (
	"fmt"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/vm"
)

// Event is one logical-clock observation.
type Event struct {
	// Seq is the event's position in the thread's trace.
	Seq int
	// Logical is the instruction-count clock at the event.
	Logical int64
	// Cycles is the physical time of the event (non-deterministic
	// across machines; recorded for comparison).
	Cycles int64
}

// Capture compiles the module with the given design and runs fn,
// recording an event at every compiler interrupt. The cost model
// controls the machine's physical timing.
func Capture(src *ir.Module, fn string, args []int64, design instrument.Design,
	intervalCycles int64, model *vm.CostModel) ([]Event, error) {

	prog, err := core.Compile(src, core.WithDesign(design), core.WithProbeInterval(250))
	if err != nil {
		return nil, err
	}
	machine := vm.New(prog.Mod, model, 1)
	machine.LimitInstrs = 200_000_000
	th := machine.NewThread(0)
	var events []Event
	th.RT.OnFire = func(id int, irDelta uint64, gap int64) {
		events = append(events, Event{
			Seq:     len(events),
			Logical: th.RT.InsCount(),
			Cycles:  th.Now(),
		})
	}
	th.RT.RegisterCI(intervalCycles, func(uint64) {})
	if _, err := th.Run(fn, args...); err != nil {
		return nil, err
	}
	return events, nil
}

// LogicalEqual reports whether two traces agree on the logical clock
// (same length, same Logical stamps).
func LogicalEqual(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Logical != b[i].Logical {
			return false
		}
	}
	return true
}

// Describe renders a short trace summary for diagnostics.
func Describe(events []Event) string {
	if len(events) == 0 {
		return "no events"
	}
	last := events[len(events)-1]
	return fmt.Sprintf("%d events, last logical=%d cycles=%d",
		len(events), last.Logical, last.Cycles)
}
