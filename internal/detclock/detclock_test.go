package detclock

import (
	"testing"

	"repro/internal/ci/instrument"
	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// fastMachine / slowMachine are two physically different machines: the
// slow one has a pricier memory system and different miss behaviour,
// so the same program takes different cycle counts on each.
func fastMachine() *vm.CostModel { return vm.Default() }

func slowMachine() *vm.CostModel {
	m := vm.Default()
	m.OpCost[ir.OpLoad] = 9
	m.OpCost[ir.OpStore] = 5
	m.MissP1, m.MissCost1 = 200, 40
	m.MissP2, m.MissCost2 = 30, 500
	return m
}

func capture(t *testing.T, design instrument.Design, model *vm.CostModel) []Event {
	t.Helper()
	src := workloads.ByName("histogram").Build(1)
	events, err := Capture(src, "main", []int64{0}, design, 5000, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 20 {
		t.Fatalf("only %d events", len(events))
	}
	return events
}

// The §6 claim: the pure-IR logical clock is a function of the program
// alone — identical on physically different machines.
func TestPureIRClockDeterministicAcrossMachines(t *testing.T) {
	fast := capture(t, instrument.CI, fastMachine())
	slow := capture(t, instrument.CI, slowMachine())
	if !LogicalEqual(fast, slow) {
		t.Fatalf("pure-IR logical clock diverged:\nfast: %s\nslow: %s",
			Describe(fast), Describe(slow))
	}
	// Physical time must have diverged (the machines really differ).
	if fast[len(fast)-1].Cycles == slow[len(slow)-1].Cycles {
		t.Error("machines are supposed to differ physically")
	}
}

// The contrast: the cycle-gated design follows physical time, so its
// event trace is machine-dependent — unusable as a deterministic clock.
func TestCycleClockIsMachineDependent(t *testing.T) {
	fast := capture(t, instrument.CICycles, fastMachine())
	slow := capture(t, instrument.CICycles, slowMachine())
	if LogicalEqual(fast, slow) {
		t.Error("cycle-gated clock unexpectedly machine-independent")
	}
}

// Repeated runs on the same machine agree exactly for both designs
// (the VM itself is deterministic).
func TestRepeatableOnSameMachine(t *testing.T) {
	for _, d := range []instrument.Design{instrument.CI, instrument.CICycles} {
		a := capture(t, d, fastMachine())
		b := capture(t, d, fastMachine())
		if !LogicalEqual(a, b) {
			t.Errorf("%v: same machine, different traces", d)
		}
	}
}

// The logical clock is monotone and advances by roughly the configured
// interval's worth of IR between events.
func TestLogicalClockMonotone(t *testing.T) {
	events := capture(t, instrument.CI, fastMachine())
	for i := 1; i < len(events); i++ {
		if events[i].Logical <= events[i-1].Logical {
			t.Fatalf("logical clock not monotone at %d: %d -> %d",
				i, events[i-1].Logical, events[i].Logical)
		}
	}
}
