package shenango

import (
	"testing"

	"repro/internal/faults"
)

func TestKindsRunAndServeLoad(t *testing.T) {
	for _, k := range []Kind{Dedicated, CIHosted, Pthreads, PthreadsShared} {
		r := Run(Config{Kind: k, OfferedLoad: 200e3})
		if r.AchievedLoad < 0.9*r.OfferedLoad {
			t.Errorf("%v: achieved %v of offered %v", k, r.AchievedLoad, r.OfferedLoad)
		}
		if r.MedianUs <= 0 || r.P999Us < r.MedianUs {
			t.Errorf("%v: latencies p50=%v p99.9=%v", k, r.MedianUs, r.P999Us)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := Run(Config{Kind: CIHosted, IntervalCycles: 8000, OfferedLoad: 200e3})
	b := Run(Config{Kind: CIHosted, IntervalCycles: 8000, OfferedLoad: 200e3})
	if a.MedianUs != b.MedianUs || a.AchievedLoad != b.AchievedLoad {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

// Figure 6 headline: the CI IOKernel keeps latency close to stock
// Shenango at moderate intervals while recovering most of the core for
// the miner; bigger intervals trade latency for hash rate.
func TestFigure6Shape(t *testing.T) {
	stock := Run(Config{Kind: Dedicated, OfferedLoad: 200e3})
	ci8k := Run(Config{Kind: CIHosted, IntervalCycles: 8000, OfferedLoad: 200e3})
	ci64k := Run(Config{Kind: CIHosted, IntervalCycles: 64000, OfferedLoad: 50e3})

	if stock.MinerHashRate != 0 {
		t.Error("dedicated IOKernel burns its core; hash rate must be 0")
	}
	// Moderate interval: latency within ~2x of stock, hash rate ~50%+.
	if ci8k.MedianUs > 2*stock.MedianUs {
		t.Errorf("CI(8k) median %.1f too far above stock %.1f", ci8k.MedianUs, stock.MedianUs)
	}
	if ci8k.MinerHashRate < 0.4 {
		t.Errorf("CI(8k) hash rate %.2f, want ~0.5+", ci8k.MinerHashRate)
	}
	// Large interval at near-zero load: ~90% hash rate, >2x latency.
	if ci64k.MinerHashRate < 0.8 {
		t.Errorf("CI(64k) hash rate %.2f, want ~0.9", ci64k.MinerHashRate)
	}
	if ci64k.MedianUs < 2*stock.MedianUs {
		t.Errorf("CI(64k) median %.1f should more than double stock %.1f",
			ci64k.MedianUs, stock.MedianUs)
	}
}

func TestShorterIntervalLowersLatencyAndHashRate(t *testing.T) {
	fast := Run(Config{Kind: CIHosted, IntervalCycles: 2000, OfferedLoad: 200e3})
	slow := Run(Config{Kind: CIHosted, IntervalCycles: 64000, OfferedLoad: 200e3})
	if fast.MedianUs >= slow.MedianUs {
		t.Errorf("shorter interval must lower latency: %v vs %v", fast.MedianUs, slow.MedianUs)
	}
	if fast.MinerHashRate >= slow.MinerHashRate {
		t.Errorf("shorter interval must lower hash rate: %v vs %v",
			fast.MinerHashRate, slow.MinerHashRate)
	}
}

func TestHashRateFallsWithLoad(t *testing.T) {
	lo := Run(Config{Kind: CIHosted, IntervalCycles: 8000, OfferedLoad: 50e3})
	hi := Run(Config{Kind: CIHosted, IntervalCycles: 8000, OfferedLoad: 800e3})
	if hi.MinerHashRate >= lo.MinerHashRate {
		t.Errorf("hash rate must fall with load: %v -> %v", lo.MinerHashRate, hi.MinerHashRate)
	}
}

func TestPthreadsTailWorseThanShenango(t *testing.T) {
	stock := Run(Config{Kind: Dedicated, OfferedLoad: 400e3})
	pt := Run(Config{Kind: Pthreads, OfferedLoad: 400e3})
	shared := Run(Config{Kind: PthreadsShared, OfferedLoad: 400e3})
	if pt.P999Us <= stock.P999Us {
		t.Errorf("pthreads p99.9 (%v) should exceed shenango (%v)", pt.P999Us, stock.P999Us)
	}
	if shared.P999Us <= pt.P999Us {
		t.Errorf("sharing with batch must hurt the tail: %v vs %v", shared.P999Us, pt.P999Us)
	}
}

// The paper's omitted plot: batch (swaptions) throughput on the worker
// cores is the same under the CI IOKernel as under the dedicated one.
func TestBatchThroughputUnchangedByCIIOKernel(t *testing.T) {
	stock := Run(Config{Kind: Dedicated, OfferedLoad: 400e3})
	ci := Run(Config{Kind: CIHosted, IntervalCycles: 8000, OfferedLoad: 400e3})
	if stock.BatchShare <= 0 || stock.BatchShare >= 1 {
		t.Fatalf("batch share = %v, implausible", stock.BatchShare)
	}
	diff := stock.BatchShare - ci.BatchShare
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02 {
		t.Errorf("batch share differs: dedicated %.3f vs CI %.3f", stock.BatchShare, ci.BatchShare)
	}
}

// A stall plan must actually stall workers, and the IOKernel must
// detect them and re-steer load so the service keeps absorbing the
// offered rate with a bounded tail.
func TestWorkerStallsDetectedAndReSteered(t *testing.T) {
	plan := &faults.Plan{Seed: 13, ServerStallMeanGapCycles: 2_000_000, ServerStallCycles: 1_000_000}
	r, err := RunChecked(Config{Kind: CIHosted, OfferedLoad: 200e3, FaultPlan: plan})
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if r.Stalls == 0 {
		t.Fatal("no stalls injected")
	}
	if r.ReSteers == 0 {
		t.Error("stalled workers never triggered a re-steer")
	}
	if r.AchievedLoad < 0.9*r.OfferedLoad {
		t.Errorf("stalls collapsed the service: achieved %v of offered %v",
			r.AchievedLoad, r.OfferedLoad)
	}
	base := Run(Config{Kind: CIHosted, OfferedLoad: 200e3})
	if r.P999Us > 50*base.P999Us {
		t.Errorf("tail unbounded under stalls: %.1fµs vs fault-free %.1fµs", r.P999Us, base.P999Us)
	}
}

func TestStallRunsDeterministic(t *testing.T) {
	cfg := Config{Kind: CIHosted, OfferedLoad: 300e3, FaultPlan: faults.Uniform(42, 0.01)}
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("stall runs differ:\n%+v\n%+v", a, b)
	}
}

// Fault-free runs through RunChecked must finish clean and identical to
// Run (the deadline must never bite on a healthy model).
func TestRunCheckedCleanMatchesRun(t *testing.T) {
	cfg := Config{Kind: Dedicated, OfferedLoad: 400e3}
	r, err := RunChecked(cfg)
	if err != nil {
		t.Fatalf("clean run hit deadline: %v", err)
	}
	if r != Run(cfg) {
		t.Error("RunChecked and Run disagree on a fault-free config")
	}
}
