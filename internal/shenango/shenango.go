// Package shenango models the §5.2 experiment: Shenango's IOKernel —
// the dedicated core that polls the NIC, steers packets to worker
// cores and reallocates cores — compared against running the same
// IOKernel loop body as a Compiler Interrupt handler hosted inside a
// CPU-bound application (CPUMiner), and against plain pthreads/kernel
// networking.
//
// A memcached-like latency-sensitive service runs on worker cores with
// Poisson request arrivals; the figure-of-merit is the median and
// 99.9th-percentile request latency versus offered load, plus the hash
// rate the hosted miner achieves on the IOKernel core.
package shenango

import (
	"fmt"

	"repro/internal/ci/ciruntime"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Kind selects the IOKernel / networking design.
type Kind int

const (
	// Dedicated is stock Shenango: the IOKernel busy-polls on its own
	// core (0% efficiency on that core).
	Dedicated Kind = iota
	// CIHosted runs the IOKernel loop body as a CI handler inside
	// CPUMiner on the same core.
	CIHosted
	// Pthreads is conventional kernel networking with a thread per
	// connection on dedicated cores.
	Pthreads
	// PthreadsShared is kernel networking with the service sharing its
	// cores with a batch job (swaptions).
	PthreadsShared
)

var kindNames = [...]string{
	Dedicated: "shenango", CIHosted: "shenango+CI",
	Pthreads: "pthreads", PthreadsShared: "pthreads+batch",
}

// String names the design as the paper's legend does.
func (k Kind) String() string { return kindNames[k] }

// Model constants (cycles at 2.6 GHz).
const (
	// dedicatedPollGap is the busy-poll iteration time of the stock
	// IOKernel.
	dedicatedPollGap   = 150
	dedicatedPollFixed = 100
	// ciPollFixed is the cost of one full IOKernel loop body when run
	// as a CI handler (queue scans + core-allocation check).
	ciPollFixed       = 2600
	ciHandlerInvoke   = 60
	perPacket         = 600    // steer one packet to/from a worker queue (incl. queue scans)
	serviceMean       = 1000   // memcached request service time (exponential)
	networkRTT        = 40000  // client <-> server wire round trip (~15 µs)
	kernelPerReq      = 9000   // pthreads: IRQ + socket syscalls per request
	kernelWakeMean    = 13000  // pthreads: scheduler wakeup latency (~5 µs)
	sharedQuantumMean = 650000 // batch job steals the core for ~0.25 ms
	// minerCIOverheadPct is the CPUMiner slowdown from CI
	// instrumentation.
	minerCIOverheadPct = 4
	// rejectPerPacket is the IOKernel cost of refusing one packet at
	// admission (a deadline/token check plus a cheap NACK, no steering
	// or queue scan) — the asymmetry that makes early rejection pay.
	rejectPerPacket = 50
)

// Config parameterizes one run.
type Config struct {
	Kind Kind
	// IntervalCycles is the CI polling interval (CIHosted only).
	IntervalCycles int64
	// OfferedLoad is the request arrival rate in requests/second.
	OfferedLoad float64
	// Workers is the number of application worker cores (default 16).
	Workers int
	// DurationCycles is the simulated time (default 130M ≈ 50 ms).
	DurationCycles int64
	Seed           uint64
	// FaultPlan optionally injects worker-core stalls (the core is
	// stolen or wedged for ServerStallCycles at a mean gap of
	// ServerStallMeanGapCycles). The IOKernel detects a stalled worker
	// at steering time and re-steers packets to live workers.
	FaultPlan *faults.Plan
	// Obs, when enabled, receives IOKernel poll spans, steering
	// decisions and stall/re-steer counters on the "shenango" trace
	// category.
	Obs *obs.Scope
	// Overload optionally enables the overload-control plane, actuated
	// from the IOKernel poll (the CI handler for CIHosted): admission
	// with deadline propagation at steering time, deadline-gated
	// service start, and brownout that parks the hosted miner (polling
	// twice as often) before shedding low-priority requests. Nil keeps
	// the run bit-identical to the pre-overload model.
	Overload *overload.Config
	// Quantum, when non-nil, constructs the interval-control policy
	// for the hosted IOKernel poll (CIHosted only; see
	// ciruntime.QuantumPolicy): each poll's loop-body cost is observed
	// as the gap and the interval the policy returns becomes the next
	// polling period. Brownout halving applies on top of the policy
	// interval. Nil keeps the fixed interval (bit-identical runs).
	Quantum func() ciruntime.QuantumPolicy
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Workers <= 0 {
		out.Workers = 16
	}
	if out.DurationCycles <= 0 {
		out.DurationCycles = 130_000_000
	}
	if out.IntervalCycles <= 0 {
		out.IntervalCycles = 8000
	}
	if out.Seed == 0 {
		out.Seed = 7
	}
	if out.OfferedLoad <= 0 {
		out.OfferedLoad = 100e3
	}
	return out
}

// Result reports one run's metrics.
type Result struct {
	Kind           Kind
	IntervalCycles int64
	OfferedLoad    float64
	// AchievedLoad is the completed request rate (requests/s).
	AchievedLoad float64
	// MedianUs / P999Us are request latencies in microseconds.
	MedianUs, P999Us float64
	// MinerHashRate is the hosted miner's throughput on the IOKernel
	// core relative to an unmodified miner on a dedicated core
	// (CIHosted only; 0 for Dedicated, which burns the core).
	MinerHashRate float64
	// BatchShare is the fraction of worker-core capacity left to the
	// batch application (swaptions); the paper reports it identical
	// between the CI and dedicated IOKernels.
	BatchShare float64
	// Stalls counts injected worker-core stall events; ReSteers counts
	// packets the IOKernel steered away from a stalled worker it would
	// otherwise have picked.
	Stalls, ReSteers int64
	// Overruns counts polls the quantum policy classified as overruns;
	// FinalIntervalCycles is the policy interval at run end (the
	// configured interval when no policy is installed; CIHosted only).
	Overruns            int64
	FinalIntervalCycles int64
	// Overload is the admission plane's accounting (zero when the plane
	// is disabled).
	Overload overload.Snapshot
	// MinerShedFrac is the fraction of the run brownout kept the hosted
	// miner parked (CIHosted only).
	MinerShedFrac float64
}

// String renders a result row.
func (r Result) String() string {
	tag := r.Kind.String()
	if r.Kind == CIHosted {
		tag = fmt.Sprintf("%s(%d)", tag, r.IntervalCycles)
	}
	return fmt.Sprintf("%-18s load=%7.0f/s  achieved=%7.0f/s  p50=%7.1fµs  p99.9=%8.1fµs  miner=%4.0f%%",
		tag, r.OfferedLoad, r.AchievedLoad, r.MedianUs, r.P999Us, r.MinerHashRate*100)
}

type request struct {
	arrival int64
	seq     int64
}

type state struct {
	cfg Config
	eng *sim.Engine
	rng *sim.RNG

	ingress []request // packets waiting for the IOKernel to steer
	egress  []request // responses waiting to leave via the IOKernel

	workerFree []int64
	// stalledUntil[w] is the cycle at which an injected stall on worker
	// w ends; stallCount round-robins stall placement.
	stalledUntil []int64
	stallInj     *faults.Injector
	stallCount   int64
	stalls       int64
	reSteers     int64

	latencies []int64
	completed int64
	warmup    int64

	iokBusy    int64 // cycles the IOKernel consumed on its core
	workerBusy int64 // cycles worker cores spent serving requests

	ctl       *overload.Controller // nil = plane disabled
	deadline  int64                // Overload.DeadlineCycles (0 when off)
	seq       int64                // arrival counter for priority tagging
	minerShed int64                // cycles brownout kept the miner parked
	admitBuf  []request            // scratch for the per-poll admission pass

	// CIHosted adaptive polling state: the installed quantum policy
	// (nil = fixed interval) and the interval currently in force.
	quantum     ciruntime.QuantumPolicy
	curInterval int64
	overruns    int64
}

// Run simulates one configuration.
func Run(cfg Config) Result {
	r, _ := RunChecked(cfg)
	return r
}

// RunChecked is Run with a progress deadline on the event loop: a
// model bug or fault interaction that livelocks returns
// sim.ErrNoProgress (with partial metrics) instead of hanging.
func RunChecked(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	s := &state{
		cfg:          cfg,
		eng:          sim.NewEngine(),
		rng:          sim.NewRNG(cfg.Seed),
		workerFree:   make([]int64, cfg.Workers),
		stalledUntil: make([]int64, cfg.Workers),
		stallInj:     faults.New(cfg.FaultPlan, "shenango/worker"),
		warmup:       cfg.DurationCycles / 5,
	}
	s.curInterval = cfg.IntervalCycles
	if cfg.Quantum != nil && cfg.Kind == CIHosted {
		s.quantum = cfg.Quantum()
		s.quantum.Reset(cfg.IntervalCycles)
	}
	if cfg.Overload != nil {
		oc := *cfg.Overload
		if oc.Name == "" {
			oc.Name = "shenango/overload"
		}
		if oc.Obs == nil {
			oc.Obs = cfg.Obs
		}
		s.ctl = overload.New(&oc)
		s.deadline = oc.DeadlineCycles
	}
	interArrival := 2.6e9 / cfg.OfferedLoad
	var scheduleArrival func()
	scheduleArrival = func() {
		s.eng.After(s.rng.Exp(interArrival), func() {
			now := s.eng.Now()
			if cfg.Kind == Pthreads || cfg.Kind == PthreadsShared {
				s.kernelRequest(now)
			} else {
				s.ingress = append(s.ingress, request{arrival: now, seq: s.seq})
				s.seq++
			}
			scheduleArrival()
		})
	}
	scheduleArrival()
	if cfg.Kind == Dedicated || cfg.Kind == CIHosted {
		s.schedulePoll()
	}
	s.scheduleStall()
	_, err := s.eng.RunDeadline(cfg.DurationCycles, sim.Deadline{
		MaxEvents:   max(cfg.DurationCycles/10, 1_000_000),
		MaxSameTime: 1 << 17,
	})
	if err == nil {
		// Admitted packets are steered (served or expired) within the
		// same poll, so nothing admitted is ever left queued unstarted.
		err = s.ctl.Invariants(0)
	}
	return s.result(), err
}

// scheduleStall places the next injected worker-core stall: the chosen
// worker makes no progress for the stall's duration (its queue drains
// only afterwards). Workers are hit round-robin so every core sees
// stalls under a long enough run.
func (s *state) scheduleStall() {
	gap, dur, ok := s.stallInj.NextServerStall()
	if !ok {
		return
	}
	w := int(s.stallCount % int64(s.cfg.Workers))
	s.stallCount++
	s.eng.After(gap, func() {
		now := s.eng.Now()
		until := now + dur
		if s.stalledUntil[w] < until {
			s.stalledUntil[w] = until
		}
		s.stalls++
		if sc := s.cfg.Obs; sc != nil {
			sc.Instant("shenango", "worker-stall", int32(w), now, obs.I("dur", dur))
			sc.Count("shenango/stalls", 1)
		}
		s.scheduleStall()
	})
}

// schedulePoll runs the IOKernel loop: stock Shenango spins on a short
// gap; the CI version fires every interval with the full loop body as
// handler cost. Under brownout the CI version parks the hosted miner
// and polls twice as often — shedding background work is the first
// degradation step, before any request is refused.
func (s *state) schedulePoll() {
	gap := int64(dedicatedPollGap)
	if s.cfg.Kind == CIHosted {
		gap = s.curInterval
		if s.ctl.BrownoutLevel() >= 1 {
			gap /= 2
			s.minerShed += gap
		}
	}
	s.eng.After(gap, func() {
		t := s.eng.Now()
		var fixed int64
		if s.cfg.Kind == CIHosted {
			fixed = ciHandlerInvoke + ciPollFixed
		} else {
			fixed = dedicatedPollFixed
		}
		// Control-loop tick: the queue-delay signal is the sojourn of
		// the oldest packet still waiting for the IOKernel — under
		// saturation that is exactly the growing poll period.
		if s.ctl.Enabled() {
			var qd int64
			if len(s.ingress) > 0 {
				qd = t - s.ingress[0].arrival
			}
			s.ctl.Poll(t, qd)
		}
		// Admission pass. The delay estimate is conservative: steer at
		// the end of a full-service poll, wait for the least-loaded live
		// worker, serve, then leave at the next poll.
		admitted := s.ingress
		var nRejected int64
		if s.ctl.Enabled() {
			admitted = s.admitBuf[:0]
			tEndEst := t + fixed + int64(len(s.ingress)+len(s.egress))*perPacket
			minLive := s.minFreeLive(t)
			egressWait := s.ctl.PeriodEstCycles()
			if egressWait < gap {
				egressWait = gap
			}
			for _, rq := range s.ingress {
				est := minLive + int64(len(admitted))*serviceMean/int64(s.cfg.Workers)
				if est < tEndEst {
					est = tEndEst
				}
				v := s.ctl.Admit(t, overload.Request{
					Arrival:        rq.arrival,
					EstDelayCycles: est - t + serviceMean + egressWait,
					Prio:           overload.PriorityOf(rq.seq),
				})
				if v.Admitted() {
					admitted = append(admitted, rq)
				} else {
					nRejected++
				}
			}
			s.admitBuf = admitted
		}
		cost := fixed + int64(len(admitted)+len(s.egress))*perPacket + nRejected*rejectPerPacket
		tEnd := t + cost
		s.iokBusy += cost
		// The quantum policy observes the loop-body cost as the gap and
		// steers the next polling period; a fixed-interval run (nil
		// policy) never enters this branch.
		if s.quantum != nil && s.cfg.Kind == CIHosted {
			prev := s.curInterval
			next, overrun := s.quantum.Observe(cost, s.curInterval)
			if overrun {
				s.overruns++
			}
			// The admission plane is the "external actor" of the
			// QuantumPolicy contract: a backed-off poll period is itself
			// queue delay, so once the plane starts rejecting while the
			// adapted interval sits above the registered base, the two
			// controllers are fighting — snap the handler back to base
			// instead of letting backoff starve admission. Intervals
			// below base (the feedback controller compensating lateness)
			// are left alone; they reduce delay rather than add it.
			if nRejected > 0 && next > s.cfg.IntervalCycles {
				s.quantum.Reset(s.cfg.IntervalCycles)
				next = s.cfg.IntervalCycles
			}
			s.curInterval = next
			if sc := s.cfg.Obs; sc != nil && next != prev {
				sc.Instant("shenango", "adapt-interval", 0, t,
					obs.I("from", prev), obs.I("to", next))
				sc.Count("shenango/interval_adaptations", 1)
			}
		}
		if sc := s.cfg.Obs; sc != nil {
			sc.Span("shenango", "iok-poll", 0, t, tEnd,
				obs.I("ingress", int64(len(s.ingress))),
				obs.I("egress", int64(len(s.egress))),
				obs.I("cost", cost))
			sc.Observe("shenango/poll_cost_cycles", cost)
			sc.Count("shenango/polls", 1)
		}
		// Steer admitted packets to the least-loaded workers. An
		// admitted packet whose service start would overrun its
		// propagated deadline by more than one poll period is expired
		// here instead of serving a dead answer.
		for _, rq := range admitted {
			w := s.leastLoaded(t)
			start := s.workerFree[w]
			if start < tEnd {
				start = tEnd
			}
			// A stall the detector missed (or was forced to accept
			// because every worker is down) delays service start.
			if start < s.stalledUntil[w] {
				start = s.stalledUntil[w]
			}
			if !s.ctl.StartOrExpire(start, rq.arrival+s.deadline, gap+cost) {
				continue
			}
			svc := s.rng.Exp(serviceMean)
			end := start + svc
			s.workerFree[w] = end
			s.workerBusy += svc
			arrival := rq.arrival
			s.eng.At(end, func() {
				s.egress = append(s.egress, request{arrival: arrival})
			})
		}
		s.ingress = s.ingress[:0]
		// Responses leave now.
		for _, rq := range s.egress {
			s.complete(rq.arrival, tEnd)
		}
		s.egress = s.egress[:0]
		// The next handler fires one interval after this one returns
		// (the stock IOKernel likewise restarts its loop after a poll).
		s.eng.At(tEnd, func() { s.schedulePoll() })
	})
}

// minFreeLive is the earliest free time among workers the IOKernel
// believes live (any worker when all are stalled) — the admission
// pass's service-start estimate, deliberately without the re-steer
// accounting of leastLoaded.
func (s *state) minFreeLive(now int64) int64 {
	best, haveLive := int64(0), false
	var globMin int64
	for i, f := range s.workerFree {
		if i == 0 || f < globMin {
			globMin = f
		}
		if s.stalledUntil[i] > now {
			continue
		}
		if !haveLive || f < best {
			best, haveLive = f, true
		}
	}
	if !haveLive {
		return globMin
	}
	return best
}

// leastLoaded picks the worker to steer to: the least-loaded worker
// the IOKernel believes is live. A worker inside an injected stall is
// detected (its queue has not advanced since the last poll) and
// skipped — a re-steer — unless every worker is stalled, in which case
// steering falls back to the globally least-loaded one.
func (s *state) leastLoaded(now int64) int {
	glob, best := 0, -1
	for i, f := range s.workerFree {
		if f < s.workerFree[glob] {
			glob = i
		}
		if s.stalledUntil[i] > now {
			continue
		}
		if best < 0 || f < s.workerFree[best] {
			best = i
		}
	}
	if best < 0 {
		return glob
	}
	if best != glob && s.stalledUntil[glob] > now {
		s.reSteers++
		if sc := s.cfg.Obs; sc != nil {
			sc.Instant("shenango", "re-steer", 0, now,
				obs.I("stalled_worker", int64(glob)), obs.I("steered_to", int64(best)))
			sc.Count("shenango/re_steers", 1)
		}
	}
	return best
}

// kernelRequest models the pthreads path: per-request kernel cost,
// scheduler wakeup, service on a FIFO worker, and (for the shared
// variant) batch-job preemption delays.
func (s *state) kernelRequest(now int64) {
	wake := s.rng.Exp(kernelWakeMean)
	if s.cfg.Kind == PthreadsShared {
		// The batch job holds the core for part of a quantum.
		if s.rng.Float64() < 0.4 {
			wake += s.rng.Exp(sharedQuantumMean)
		}
	}
	w := s.leastLoaded(now)
	start := now + wake + kernelPerReq
	if s.workerFree[w] > start {
		start = s.workerFree[w]
	}
	if s.stalledUntil[w] > start {
		start = s.stalledUntil[w]
	}
	end := start + s.rng.Exp(serviceMean) + kernelPerReq/2
	s.workerFree[w] = end
	s.complete(now, end)
}

func (s *state) complete(arrival, leave int64) {
	s.ctl.Observe(leave, leave-arrival+networkRTT, false)
	if leave <= s.warmup {
		return
	}
	s.latencies = append(s.latencies, leave-arrival+networkRTT)
	s.completed++
	if sc := s.cfg.Obs; sc != nil {
		sc.Observe("shenango/request_latency_cycles", leave-arrival+networkRTT)
	}
}

func (s *state) result() Result {
	cfg := s.cfg
	res := Result{
		Kind:           cfg.Kind,
		IntervalCycles: cfg.IntervalCycles,
		OfferedLoad:    cfg.OfferedLoad,
	}
	window := float64(cfg.DurationCycles-s.warmup) / 2.6e9
	res.AchievedLoad = float64(s.completed) / window
	if len(s.latencies) > 0 {
		res.MedianUs = float64(stats.Median(s.latencies)) / 2600
		res.P999Us = float64(stats.Percentile(s.latencies, 99.9)) / 2600
	}
	if cfg.Kind == Dedicated || cfg.Kind == CIHosted {
		capacity := float64(cfg.Workers) * float64(cfg.DurationCycles)
		share := 1 - float64(s.workerBusy)/capacity
		if share < 0 {
			share = 0
		}
		res.BatchShare = share
	}
	res.Stalls = s.stalls
	res.ReSteers = s.reSteers
	res.Overload = s.ctl.Snapshot()
	if cfg.Kind == CIHosted {
		res.Overruns = s.overruns
		res.FinalIntervalCycles = s.curInterval
	}
	if cfg.Kind == CIHosted {
		busyFrac := float64(s.iokBusy) / float64(cfg.DurationCycles)
		if busyFrac > 1 {
			busyFrac = 1
		}
		shedFrac := float64(s.minerShed) / float64(cfg.DurationCycles)
		res.MinerShedFrac = shedFrac
		rate := (1 - busyFrac - shedFrac) * (1 - minerCIOverheadPct/100.0)
		if rate < 0 {
			rate = 0
		}
		res.MinerHashRate = rate
	}
	return res
}
