package shenango

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/overload"
)

// overloadedConfig offers ~2x the IOKernel's steering capacity
// (2 packets x 600 cycles per request) with the admission plane on.
func overloadedConfig() Config {
	return Config{
		Kind: CIHosted, OfferedLoad: 4.3e6, Seed: 7,
		DurationCycles: 26_000_000,
		Overload:       &overload.Config{DeadlineCycles: 200_000},
	}
}

// Same seed, a fault plan AND admission enabled: byte-identical
// results (the TestFaultRunsDeterministic pattern with the overload
// plane in the loop).
func TestFaultOverloadRunsDeterministic(t *testing.T) {
	cfg := overloadedConfig()
	cfg.FaultPlan = faults.Uniform(99, 0.01)
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("fault+overload runs differ:\n%+v\n%+v", a, b)
	}
	if a.Overload.Offered() == 0 {
		t.Fatal("overload plane saw no admission decisions")
	}
}

// The plane's accounting invariants hold at 2x load (RunChecked runs
// the oracle), load is actually shed, and brownout parks the miner.
func TestOverloadShedsAtTwiceCapacity(t *testing.T) {
	r, err := RunChecked(overloadedConfig())
	if err != nil {
		t.Fatalf("RunChecked (includes overload invariants): %v", err)
	}
	s := r.Overload
	if s.RejectedDoomed == 0 {
		t.Error("deadline propagation never rejected a doomed request")
	}
	if s.RejectFrac() < 0.3 {
		t.Errorf("rejected only %.1f%% at 2x load", 100*s.RejectFrac())
	}
	if s.MaxBrownout < 1 {
		t.Error("never entered brownout at 2x load")
	}
	if r.MinerShedFrac <= 0 {
		t.Error("brownout never parked the miner")
	}
}

// A disabled plane leaves the result untouched: zero snapshot, no
// miner shedding, and the pre-overload fault behavior intact.
func TestOverloadDisabledIsInert(t *testing.T) {
	r := Run(Config{Kind: CIHosted, OfferedLoad: 200e3, Seed: 7, FaultPlan: faults.Uniform(7, 0.01)})
	if r.Overload != (overload.Snapshot{}) {
		t.Errorf("disabled plane left a snapshot: %+v", r.Overload)
	}
	if r.MinerShedFrac != 0 {
		t.Errorf("disabled plane shed the miner: %v", r.MinerShedFrac)
	}
}
