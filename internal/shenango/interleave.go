package shenango

import (
	"fmt"

	"repro/internal/interleave"
	"repro/internal/ir"
)

// Interleave model: the CIHosted design runs the IOKernel poll body as
// a handler inside CPUMiner, so the words the two share are the
// steering counters and the liveness/progress beacons:
//
//	STEERED (0)  packets steered to workers — handler-side atomic
//	             add; the miner reads it when reporting.
//	ALIVE   (1)  IOKernel liveness beacon — main arms it, the handler
//	             refreshes it by rewriting the value it read
//	             (same-value by construction).
//	PROGRESS(2)  miner progress — main plain-writes, handler reads
//	             when deciding core reallocation.
//	POLLS   (3)  handler-private poll tally.
//
// Expected classes: STEERED atomic, ALIVE same-value, PROGRESS
// observed — zero unclassified. The racy variant (see
// InterleaveRacySpec) steers with a load/add/store instead of the
// atomic add: the verifier must catch that lost-update — it is the
// bug the atomic in the production model exists to prevent.
const interleaveIR = `
module shenango-ci
mem 64

func @main(%n) {
entry:
  %one = mov 1
  store _, 1, %one
  %i = mov 0
  jmp head
head:
  %c = lt %i, 200
  br %c, body, exit
body:
  %h = mul %i, 2654435761
  %h = and %h, 1048575
  store _, 2, %i
  %i = add %i, 1
  jmp head
exit:
  %s = load _, 0
  %z = mov 0
  ret %z
}

func @handler(%ir) {
entry:
  %a = load _, 1
  store _, 1, %a
  %p = load _, 2
  %batch = and %ir, 3
  %o1 = aadd _, 0, %batch
  %one = mov 1
  %o2 = aadd _, 3, %one
  ret %p
}
`

// interleaveRacyIR is interleaveIR with the steering counter updated
// by a plain read-modify-write — the lost-update the verifier exists
// to catch when the miner (or a second fire) interleaves with it.
const interleaveRacyIR = `
module shenango-ci-racy
mem 64

func @main(%n) {
entry:
  %one = mov 1
  store _, 1, %one
  %i = mov 0
  jmp head
head:
  %c = lt %i, 200
  br %c, body, exit
body:
  %h = mul %i, 2654435761
  %h = and %h, 1048575
  store _, 2, %i
  %s = load _, 0
  %s = add %s, 1
  store _, 0, %s
  %i = add %i, 1
  jmp head
exit:
  %z = mov 0
  ret %z
}

func @handler(%ir) {
entry:
  %a = load _, 1
  store _, 1, %a
  %p = load _, 2
  %batch = and %ir, 3
  %s = load _, 0
  %s = add %s, %batch
  store _, 0, %s
  ret %p
}
`

// InterleaveSpec returns the CIHosted sharing-protocol model and
// verifier options for interleave.VerifyHandlers.
func InterleaveSpec() (*ir.Module, interleave.Options) {
	m := ir.MustParse(interleaveIR)
	opts := interleave.Options{
		RetOnly:  true,
		CheckRun: checkBeacons,
	}
	return m, opts
}

// InterleaveRacySpec returns the deliberately-racy steering variant:
// the verifier must classify word 0 as RACY. Kept as a permanent
// detection regression (and a cidump demo), not a production model.
func InterleaveRacySpec() (*ir.Module, interleave.Options) {
	return ir.MustParse(interleaveRacyIR), interleave.Options{RetOnly: true}
}

// checkBeacons validates one run's end state: the liveness beacon must
// still be armed, and the handler's poll tally must match delivered
// fires exactly (a fire that skipped its poll body would break the
// core-allocation loop).
func checkBeacons(r *interleave.Run) error {
	if r.Mem[1] != 1 {
		return fmt.Errorf("liveness beacon lost: alive=%d", r.Mem[1])
	}
	if r.Mem[3] != int64(r.Fires) {
		return fmt.Errorf("poll tally %d != fires %d", r.Mem[3], r.Fires)
	}
	return nil
}
