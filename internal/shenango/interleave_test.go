package shenango

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/interleave"
	"repro/internal/vm"
)

func TestInterleaveSpecVerifiesClean(t *testing.T) {
	m, opts := InterleaveSpec()
	rep, err := interleave.VerifyHandlers(m, engine.Serial(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if verr := rep.Err(); verr != nil {
		var buf bytes.Buffer
		rep.WriteTable(&buf)
		t.Fatalf("%v\n%s", verr, buf.String())
	}
	if rep.FeasibleSites == 0 {
		t.Fatal("no feasible fire sites: the model never exposes the handler")
	}
	want := map[int64]interleave.Class{
		0: interleave.ClassAtomic,    // STEERED
		1: interleave.ClassSameValue, // ALIVE beacon refresh
		2: interleave.ClassObserved,  // miner PROGRESS
	}
	for _, a := range rep.Addrs {
		c, ok := want[a.Addr]
		if !ok {
			t.Errorf("unexpected shared word %d (%v)", a.Addr, a.Class)
			continue
		}
		if a.Class != c {
			t.Errorf("word %d class = %v, want %v", a.Addr, a.Class, c)
		}
		delete(want, a.Addr)
	}
	for addr := range want {
		t.Errorf("word %d never observed as shared", addr)
	}
}

// TestInterleaveRacyVariantDetected pins the verifier's reason to
// exist for this app: steering with a plain read-modify-write instead
// of the atomic add is a lost-update the schedule exploration must
// catch.
func TestInterleaveRacyVariantDetected(t *testing.T) {
	m, opts := InterleaveRacySpec()
	rep, err := interleave.VerifyHandlers(m, engine.Serial(), opts)
	if err != nil {
		t.Fatal(err)
	}
	racy := false
	for _, a := range rep.Unclassified() {
		if a.Addr == 0 {
			racy = true
		}
	}
	if !racy {
		t.Error("STEERED word not classified RACY in the rmw variant")
	}
	if !errors.Is(rep.Err(), interleave.ErrRace) {
		t.Errorf("Err = %v, want ErrRace", rep.Err())
	}
}

func TestInterleaveHandlerOverrunSurfaces(t *testing.T) {
	m, opts := InterleaveSpec()
	opts.IntervalCycles = 200
	opts.MaxHandlerCycles = 20
	opts.FaultPlan = &faults.Plan{Seed: 3, OverrunProb: 1, OverrunCycles: 50_000}
	_, err := interleave.VerifyHandlers(m, engine.Serial(), opts)
	if !errors.Is(err, vm.ErrHandlerOverrun) {
		t.Fatalf("overrun injection err = %v, want ErrHandlerOverrun", err)
	}
}

func TestInterleaveHandlerReentrancySurfaces(t *testing.T) {
	m, _ := InterleaveSpec()
	prog, err := core.Compile(m, core.WithProbeInterval(100))
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(prog.Mod, nil, 1)
	th := machine.NewThread(0)
	var herr error
	th.RT.RegisterCI(300, func(uint64) {
		if _, err := th.Run("handler", 0); err != nil && herr == nil {
			herr = err
		}
	})
	if _, err := th.Run("main", 0); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(herr, vm.ErrHandlerReentrancy) {
		t.Fatalf("reentrant Run err = %v, want ErrHandlerReentrancy", herr)
	}
}
