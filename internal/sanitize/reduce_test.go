package sanitize_test

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/sanitize"
)

const reduceSrc = `
mem 16
func @main(%n) {
entry:
  %a = add %n, 5
  jmp pre
pre:
  %b = call @helper(%a)
  %d = xor %b, 9
  jmp test
test:
  %c = lt %n, 10
  br %c, keep, other
keep:
  %r = mov 1
  store _, 7, %r
  jmp out
other:
  %r = mov 2
  jmp out
out:
  ret %r
}
func @helper(%x) {
entry:
  %y = mul %x, 3
  ret %y
}
`

// hasStore is a pure-structural predicate: the failure artifact is "a
// store instruction exists in main".
func hasStore(m *ir.Module) bool {
	f := m.FuncByName("main")
	if f == nil {
		return false
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpStore {
				return true
			}
		}
	}
	return false
}

func TestReduceShrinksToMinimalStore(t *testing.T) {
	src := ir.MustParse(reduceSrc)
	red := sanitize.Reduce(src, "main", hasStore)
	if err := red.Verify(); err != nil {
		t.Fatalf("reduced module invalid: %v\n%s", err, red)
	}
	if !hasStore(red) {
		t.Fatalf("reduction lost the failure artifact:\n%s", red)
	}
	if len(red.Funcs) != 1 {
		t.Errorf("kept %d functions, want 1\n%s", len(red.Funcs), red)
	}
	f := red.FuncByName("main")
	if len(f.Blocks) != 1 {
		t.Errorf("kept %d blocks, want 1 (branch committed, chains spliced)\n%s", len(f.Blocks), red)
	}
	if n := f.NumInstrs(); n > 3 {
		t.Errorf("kept %d instructions, want <= 3 (store + ret, maybe the stored def)\n%s", n, red)
	}
}

func TestReduceReturnsInputWhenNotFailing(t *testing.T) {
	src := ir.MustParse(reduceSrc)
	red := sanitize.Reduce(src, "main", func(m *ir.Module) bool { return false })
	if red.String() != src.String() {
		t.Error("Reduce modified a non-failing module")
	}
}
