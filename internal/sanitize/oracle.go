package sanitize

import (
	"errors"
	"fmt"

	"repro/internal/ir"
	"repro/internal/vm"
)

// ErrInconclusive marks a differential run that hit a watchdog budget
// before either side could finish: not a divergence, but not a pass.
var ErrInconclusive = errors.New("sanitize: differential run inconclusive")

// Divergence is a first-class semantic difference between baseline and
// instrumented execution.
type Divergence struct {
	// Stage is where the divergence was observed ("exec" for the
	// differential oracle).
	Stage string
	// Design names the instrumentation design under test.
	Design string
	// Func and Block locate the instrumented-side instruction that
	// produced the first diverging observable event (block names are
	// not comparable across the transform, so only the instrumented
	// side is reported).
	Func, Block string
	// Step is the ordinal of the first diverging observable event
	// (store number), or -1 when the divergence is in the return value
	// or final memory.
	Step int
	// Detail describes the difference.
	Detail string
}

func (d *Divergence) Error() string {
	loc := ""
	if d.Func != "" {
		loc = fmt.Sprintf(" at @%s/%s", d.Func, d.Block)
	}
	return fmt.Sprintf("sanitize: divergence [%s/%s]%s step %d: %s",
		d.Stage, d.Design, loc, d.Step, d.Detail)
}

// ExecOptions configures the differential oracle.
type ExecOptions struct {
	// Entry is the function to run (default "main").
	Entry string
	// Args are the entry arguments (default: one argument, 4095).
	Args []int64
	// LimitInstrs is the per-run step budget (default 50M). Exhausting
	// it yields ErrInconclusive, not a divergence.
	LimitInstrs int64
	// IntervalCycles registers a no-op CI handler with this interval so
	// probes actually deliver (default 5000).
	IntervalCycles int64
}

func (o ExecOptions) withDefaults() ExecOptions {
	if o.Entry == "" {
		o.Entry = "main"
	}
	if o.Args == nil {
		o.Args = []int64{4095}
	}
	if o.LimitInstrs <= 0 {
		o.LimitInstrs = 50_000_000
	}
	if o.IntervalCycles <= 0 {
		o.IntervalCycles = 5000
	}
	return o
}

// storeEv is one observable memory write.
type storeEv struct{ addr, val int64 }

// Trace is the observable behaviour of one run: the ordered store
// sequence, the return value and the final memory image. Handler
// effects are excluded by construction — the oracle's handler is a
// no-op and probes never write program memory.
type Trace struct {
	Stores []storeEv
	Ret    int64
	Mem    []int64
}

// Execute runs m (on a private clone) and records its trace.
func Execute(m *ir.Module, opts ExecOptions) (*Trace, error) {
	opts = opts.withDefaults()
	mm := m.Clone()
	machine := vm.New(mm, nil, 1)
	machine.LimitInstrs = opts.LimitInstrs
	th := machine.NewThread(0)
	th.RT.RegisterCI(opts.IntervalCycles, func(uint64) {})
	tr := &Trace{}
	th.OnStore = func(fn, block string, addr, val int64) {
		tr.Stores = append(tr.Stores, storeEv{addr, val})
	}
	args := opts.Args
	if f := mm.FuncByName(opts.Entry); f != nil && f.NumParams == 0 {
		args = nil
	}
	rv, err := th.Run(opts.Entry, args...)
	if err != nil {
		if errors.Is(err, vm.ErrStepBudget) {
			return nil, fmt.Errorf("%w: baseline hit the step budget: %v", ErrInconclusive, err)
		}
		return nil, fmt.Errorf("sanitize: baseline run failed: %w", err)
	}
	tr.Ret = rv
	tr.Mem = append([]int64(nil), machine.Mem...)
	return tr, nil
}

// DiffTrace runs the instrumented module (on a private clone) against a
// recorded baseline trace and returns a *Divergence at the first
// observable difference, ErrInconclusive on budget exhaustion, or nil.
func DiffTrace(base *Trace, instrumented *ir.Module, design string, opts ExecOptions) error {
	opts = opts.withDefaults()
	mm := instrumented.Clone()
	machine := vm.New(mm, nil, 1)
	machine.LimitInstrs = opts.LimitInstrs
	th := machine.NewThread(0)
	th.RT.RegisterCI(opts.IntervalCycles, func(uint64) {})
	var div *Divergence
	step := 0
	th.OnStore = func(fn, block string, addr, val int64) {
		if div == nil {
			switch {
			case step >= len(base.Stores):
				div = &Divergence{Stage: "exec", Design: design, Func: fn, Block: block, Step: step,
					Detail: fmt.Sprintf("extra store mem[%d]=%d (baseline made %d stores)", addr, val, len(base.Stores))}
			case base.Stores[step] != (storeEv{addr, val}):
				want := base.Stores[step]
				div = &Divergence{Stage: "exec", Design: design, Func: fn, Block: block, Step: step,
					Detail: fmt.Sprintf("store mem[%d]=%d, baseline stored mem[%d]=%d", addr, val, want.addr, want.val)}
			}
		}
		step++
	}
	args := opts.Args
	if f := mm.FuncByName(opts.Entry); f != nil && f.NumParams == 0 {
		args = nil
	}
	rv, err := th.Run(opts.Entry, args...)
	if err != nil {
		if errors.Is(err, vm.ErrStepBudget) {
			return fmt.Errorf("%w: instrumented %s hit the step budget: %v", ErrInconclusive, design, err)
		}
		return fmt.Errorf("sanitize: instrumented %s run failed: %w", design, err)
	}
	if div != nil {
		return div
	}
	if step != len(base.Stores) {
		return &Divergence{Stage: "exec", Design: design, Step: step,
			Detail: fmt.Sprintf("made %d stores, baseline made %d", step, len(base.Stores))}
	}
	if rv != base.Ret {
		return &Divergence{Stage: "exec", Design: design, Step: -1,
			Detail: fmt.Sprintf("returned %d, baseline returned %d", rv, base.Ret)}
	}
	for i, v := range machine.Mem {
		if i < len(base.Mem) && v != base.Mem[i] {
			return &Divergence{Stage: "exec", Design: design, Step: -1,
				Detail: fmt.Sprintf("final mem[%d] = %d, baseline %d", i, v, base.Mem[i])}
		}
	}
	return nil
}

// DiffExec is the one-shot differential oracle: identical observable
// behaviour (store sequence, return value, final memory — modulo
// handler effects) between a baseline and an instrumented module.
func DiffExec(baseline, instrumented *ir.Module, design string, opts ExecOptions) error {
	base, err := Execute(baseline, opts)
	if err != nil {
		return err
	}
	return DiffTrace(base, instrumented, design, opts)
}
