package sanitize_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ci/fuzz"
	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sanitize"
)

// oracleDesigns are the four probe designs the differential oracle
// sweeps (one per placement family: static analysis, cycle-gated,
// CoreDet balance, yield points).
var oracleDesigns = []instrument.Design{
	instrument.CI, instrument.CICycles, instrument.CD, instrument.CnB,
}

// The differential oracle must pass for all four probe designs over at
// least 500 seeded fuzz programs: identical store streams, return
// values and final memory between baseline and instrumented runs.
func TestOracleFourDesignsOver500Programs(t *testing.T) {
	total := 500
	if testing.Short() {
		total = 60
	}
	const chunk = 25
	for lo := 1; lo <= total; lo += chunk {
		lo := lo
		hi := min(lo+chunk-1, total)
		t.Run(fmt.Sprintf("seeds%d-%d", lo, hi), func(t *testing.T) {
			t.Parallel()
			for seed := lo; seed <= hi; seed++ {
				src := fuzz.Generate(uint64(seed), fuzz.Options{
					MaxDepth: 2, MaxStmts: 4, MaxFuncs: 2, WithExterns: seed%5 == 0,
				})
				eo := sanitize.ExecOptions{
					Args:        []int64{int64(seed % 4096)},
					LimitInstrs: 40_000_000,
				}
				base, err := sanitize.Execute(src, eo)
				if err != nil {
					t.Fatalf("seed %d: baseline: %v", seed, err)
				}
				for _, d := range oracleDesigns {
					prog, err := sanitize.CompileChecked(src,
						core.Config{Design: d, ProbeIntervalIR: 250}, sanitize.Options{})
					if err != nil {
						t.Fatalf("seed %d %v: %v", seed, d, err)
					}
					if err := sanitize.DiffTrace(base, prog.Mod, d.String(), eo); err != nil {
						t.Errorf("seed %d: %v", seed, err)
					}
				}
			}
		})
	}
}

// All seven designs also stay clean under the full static stage checks
// on a smaller sample (the big sweep above covers the four-design
// oracle requirement).
func TestAllDesignsStageChecksClean(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		src := fuzz.Generate(seed, fuzz.Options{MaxDepth: 2, MaxStmts: 4})
		for _, d := range instrument.Designs {
			if _, err := sanitize.CompileChecked(src,
				core.Config{Design: d, ProbeIntervalIR: 120}, sanitize.Options{}); err != nil {
				t.Errorf("seed %d %v: %v", seed, d, err)
			}
		}
	}
}

// storeProgram has an observable store stream so oracle divergences in
// memory traffic (not just return values) are exercised.
const storeProgram = `
mem 128
func @main(%n) {
entry:
  %b = and %n, 63
  %i = mov 0
  jmp head
head:
  %c = lt %i, %b
  br %c, body, exit
body:
  %v = mul %i, 3
  %a = and %v, 127
  store %a, 0, %v
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`

func TestOracleComparesStoreStreams(t *testing.T) {
	src := ir.MustParse(storeProgram)
	eo := sanitize.ExecOptions{Args: []int64{45}, LimitInstrs: 1_000_000}
	base, err := sanitize.Execute(src, eo)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Stores) == 0 {
		t.Fatal("baseline trace recorded no stores")
	}
	for _, d := range oracleDesigns {
		prog, err := sanitize.CompileChecked(src,
			core.Config{Design: d, ProbeIntervalIR: 50}, sanitize.Options{})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if err := sanitize.DiffTrace(base, prog.Mod, d.String(), eo); err != nil {
			t.Errorf("%v: %v", d, err)
		}
	}
	// A module that stores a different value must produce a *Divergence
	// naming the first bad store.
	bad := src.Clone()
	body := bad.FuncByName("main").BlockByName("body")
	for i := range body.Instrs {
		if body.Instrs[i].Op == ir.OpMul {
			body.Instrs[i].Imm = 5
		}
	}
	err = sanitize.DiffTrace(base, bad, "CI", eo)
	var div *sanitize.Divergence
	if !errors.As(err, &div) {
		t.Fatalf("corrupted module: err = %v, want *Divergence", err)
	}
	if div.Step != 1 || div.Func != "main" || div.Block != "body" {
		t.Errorf("divergence = %+v, want first bad store at main/body step 1", div)
	}
}

// The oracle reports step-budget exhaustion as inconclusive, never as
// a divergence.
func TestOracleInconclusiveOnBudget(t *testing.T) {
	src := ir.MustParse(storeProgram)
	eo := sanitize.ExecOptions{Args: []int64{63}, LimitInstrs: 50}
	_, err := sanitize.Execute(src, eo)
	if !errors.Is(err, sanitize.ErrInconclusive) {
		t.Fatalf("err = %v, want ErrInconclusive", err)
	}
	var div *sanitize.Divergence
	if errors.As(err, &div) {
		t.Fatalf("budget exhaustion misreported as divergence: %v", err)
	}
}
