// Package sanitize is the translation-validation layer of the
// Compiler Interrupts pipeline: it observes the module after every
// compilation stage (canonicalization, the §3.4 loop transform, §3.5
// cloning, probe insertion) through the stage hooks exposed by
// internal/ci/analysis and internal/ci/instrument, and checks semantic
// invariants that plain ir.Verify cannot see:
//
//   - blocks that were reachable before a stage stay reachable after it
//     (no unreachable-block leaks from a botched rewire);
//   - every natural loop body is dominated by its header (no stage
//     introduces irreducible control flow);
//   - stages that are CFG-neutral or only interpose blocks
//     (canonicalization, probe insertion) preserve pairwise dominance
//     between surviving blocks;
//   - §3.5 clone regions obey the fast-path edge discipline: the only
//     way into a ".fast" block is another fast block or the preheader's
//     run-time size guard, and fast blocks exit only through fast
//     blocks or the ".fastprobe" accounting block;
//   - probe insertion is exactly probe insertion — stripping OpProbe
//     from the output reproduces the pre-instrumentation module, byte
//     for byte.
//
// On top of the static checks, the package provides a differential
// execution oracle (DiffExec) that runs baseline and instrumented
// modules in the VM and demands identical observable behaviour, and a
// delta-debugging reducer (Reduce) that shrinks failing modules to
// minimal reproducers for testdata/repro/.
package sanitize

import (
	"fmt"
	"strings"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// StageError is a semantic-invariant violation pinned to the exact
// pipeline stage that introduced it.
type StageError struct {
	// Stage is the pipeline stage after which the violation was first
	// observed: "input", "canonicalize", "loop-transform", "loop-clone",
	// "analysis" or "probes".
	Stage string
	// Func is the offending function (empty for module-wide checks).
	Func string
	// Check names the violated invariant: "verify", "reachability",
	// "loop-dominance", "dominance", "clone-edges" or "probe-only-diff".
	Check string
	// Detail describes the violation.
	Detail string
}

func (e *StageError) Error() string {
	where := e.Stage
	if e.Func != "" {
		where += " @" + e.Func
	}
	return fmt.Sprintf("sanitize: [%s] %s check failed: %s", where, e.Check, e.Detail)
}

// funcSnap is a per-function structural snapshot taken after a stage.
type funcSnap struct {
	stage  string
	blocks map[string]bool            // all block names
	reach  map[string]bool            // reachable block names
	dom    map[string]map[string]bool // dom[a][b]: a strictly dominates b (reachable only)
}

// Checker accumulates stage observations for one compilation. Attach
// FuncHook/ModHook to the pipeline (or use CompileChecked, which does
// the wiring) and inspect Err afterwards. A Checker is single-use and
// not safe for concurrent hooks — the pipeline is sequential.
type Checker struct {
	funcs map[string]*funcSnap
	// inputText / analysisText are printed snapshots used as the
	// probe-only-diff baseline: CI designs diff against the post-analysis
	// module, baseline designs against the input.
	inputText    string
	analysisText string
	errs         []error
	// MaxErrors caps accumulation (default 8); further findings are
	// dropped so a badly broken stage doesn't flood the report.
	MaxErrors int
}

// NewChecker returns an empty Checker.
func NewChecker() *Checker {
	return &Checker{funcs: make(map[string]*funcSnap), MaxErrors: 8}
}

// Err returns the first recorded violation, or nil.
func (c *Checker) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs[0]
}

// Errors returns all recorded violations in observation order.
func (c *Checker) Errors() []error { return c.errs }

func (c *Checker) report(stage, fn, check, detail string) {
	max := c.MaxErrors
	if max <= 0 {
		max = 8
	}
	if len(c.errs) >= max {
		return
	}
	c.errs = append(c.errs, &StageError{Stage: stage, Func: fn, Check: check, Detail: detail})
}

// FuncHook returns the analysis-side stage observer; wire it into
// analysis.Options.StageHook (or core.Config.FuncStageHook).
func (c *Checker) FuncHook() func(stage string, f *ir.Func) {
	return c.CheckFunc
}

// ModHook returns the module-level stage observer; wire it into
// instrument.Options.StageHook (or core.Config.ModStageHook).
func (c *Checker) ModHook() func(stage string, m *ir.Module) {
	return c.CheckModule
}

// CheckFunc validates one function against its previous snapshot and
// records violations. Stages: "canonicalize", "loop-transform",
// "loop-clone" (from the analysis pipeline).
func (c *Checker) CheckFunc(stage string, f *ir.Func) {
	if err := f.Verify(); err != nil {
		c.report(stage, f.Name, "verify", err.Error())
		return
	}
	cur, g, dt := snapFunc(stage, f)
	c.checkLoopDominance(stage, f, g, dt)
	if stage == "loop-clone" {
		c.checkCloneEdges(stage, f, g)
	}
	if prev := c.funcs[f.Name]; prev != nil {
		c.checkReachMonotonic(stage, f.Name, prev, cur)
		// Canonicalization only merges returns and interposes
		// preheaders/split blocks, and probe insertion is CFG-neutral:
		// both must preserve dominance between surviving blocks. The
		// loop transform and cloning legitimately break it (the fast
		// path reaches the exit around the original header).
		if stage == "canonicalize" || stage == "probes" {
			c.checkDomPreserved(stage, f.Name, prev, cur)
		}
	}
	c.funcs[f.Name] = cur
}

// CheckModule validates the whole module at an instrumentation
// observation point ("input", "analysis" or "probes").
func (c *Checker) CheckModule(stage string, m *ir.Module) {
	if err := m.Verify(); err != nil {
		c.report(stage, "", "verify", err.Error())
		return
	}
	switch stage {
	case "input":
		c.inputText = m.String()
		for _, f := range m.Funcs {
			snap, _, _ := snapFunc(stage, f)
			c.funcs[f.Name] = snap
		}
	case "analysis":
		c.analysisText = m.String()
		for _, f := range m.Funcs {
			c.CheckFunc(stage, f)
		}
	case "probes":
		for _, f := range m.Funcs {
			c.CheckFunc(stage, f)
		}
		base := c.analysisText
		if base == "" {
			base = c.inputText
		}
		if base != "" {
			if err := ProbeOnlyDiff(base, m); err != nil {
				c.report(stage, "", "probe-only-diff", err.Error())
			}
		}
	}
}

// snapFunc computes the structural snapshot of f. It reindexes f (a
// maintenance no-op for well-formed pipeline states).
func snapFunc(stage string, f *ir.Func) (*funcSnap, *cfg.Graph, *cfg.DomTree) {
	f.Reindex()
	g := cfg.New(f)
	dt := cfg.Dominators(g)
	s := &funcSnap{
		stage:  stage,
		blocks: make(map[string]bool, len(f.Blocks)),
		reach:  make(map[string]bool, len(f.Blocks)),
		dom:    make(map[string]map[string]bool),
	}
	for _, b := range f.Blocks {
		s.blocks[b.Name] = true
	}
	for _, bi := range g.RPO {
		s.reach[f.Blocks[bi].Name] = true
	}
	for _, p := range dt.StrictDomPairs() {
		an := f.Blocks[p[0]].Name
		if s.dom[an] == nil {
			s.dom[an] = make(map[string]bool)
		}
		s.dom[an][f.Blocks[p[1]].Name] = true
	}
	return s, g, dt
}

// checkReachMonotonic: a block that was reachable before the stage and
// still exists must still be reachable — transforms may delete blocks
// but never orphan them.
func (c *Checker) checkReachMonotonic(stage, fn string, prev, cur *funcSnap) {
	for name := range prev.reach {
		if cur.blocks[name] && !cur.reach[name] {
			c.report(stage, fn, "reachability",
				fmt.Sprintf("block %q was reachable after stage %q but is now orphaned", name, prev.stage))
		}
	}
}

// checkDomPreserved: for CFG-neutral or interposing-only stages, if a
// dominated b before and both survive reachable, a still dominates b.
func (c *Checker) checkDomPreserved(stage, fn string, prev, cur *funcSnap) {
	for a, set := range prev.dom {
		if !cur.reach[a] {
			continue
		}
		for b := range set {
			if cur.reach[b] && !cur.dom[a][b] {
				c.report(stage, fn, "dominance",
					fmt.Sprintf("%q dominated %q after stage %q but no longer does", a, b, prev.stage))
			}
		}
	}
}

// checkLoopDominance: every natural-loop body block must be dominated
// by its header; a violation means a stage manufactured irreducible
// control flow.
func (c *Checker) checkLoopDominance(stage string, f *ir.Func, g *cfg.Graph, dt *cfg.DomTree) {
	lf := cfg.FindLoops(g, dt)
	for _, l := range lf.Loops {
		for bi := range l.Blocks {
			if !dt.Dominates(l.Header, bi) {
				c.report(stage, f.Name, "loop-dominance",
					fmt.Sprintf("loop header %q does not dominate body block %q",
						f.Blocks[l.Header].Name, f.Blocks[bi].Name))
			}
		}
	}
}

// checkCloneEdges enforces the §3.5 fast-path discipline on every
// ".fast" block: entered only from fast blocks or a run-time guard
// branch whose other side is the slow path, and exited only into fast
// blocks or a ".fastprobe" accounting block.
func (c *Checker) checkCloneEdges(stage string, f *ir.Func, g *cfg.Graph) {
	isFast := func(b *ir.Block) bool { return strings.Contains(b.Name, ".fast") }
	isProbeExit := func(b *ir.Block) bool { return strings.Contains(b.Name, ".fastprobe") }
	for bi, b := range f.Blocks {
		if !isFast(b) || isProbeExit(b) || !g.Reachable(bi) {
			continue
		}
		for _, pi := range g.Preds[bi] {
			p := f.Blocks[pi]
			if isFast(p) {
				continue
			}
			if p.Term.Kind != ir.TermBr {
				c.report(stage, f.Name, "clone-edges",
					fmt.Sprintf("fast block %q entered unconditionally from slow block %q", b.Name, p.Name))
				continue
			}
			other := p.Term.Else
			if other == b {
				other = p.Term.Then
			}
			if isFast(other) {
				c.report(stage, f.Name, "clone-edges",
					fmt.Sprintf("guard %q has no slow-path side (both targets fast)", p.Name))
			}
		}
		var succs []*ir.Block
		for _, s := range b.Succs(succs) {
			if !isFast(s) {
				c.report(stage, f.Name, "clone-edges",
					fmt.Sprintf("fast block %q exits to slow block %q (must leave via a .fastprobe)", b.Name, s.Name))
			}
		}
	}
}

// StripProbes removes every OpProbe instruction from m, in place, and
// returns m.
func StripProbes(m *ir.Module) *ir.Module {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op != ir.OpProbe {
					out = append(out, in)
				}
			}
			b.Instrs = out
		}
	}
	return m
}

// ProbeOnlyDiff checks that post, with its probes stripped, prints
// identically to the pre-instrumentation text: probe insertion must be
// the only difference. Returns nil on a clean diff, or an error naming
// the first diverging line.
func ProbeOnlyDiff(preText string, post *ir.Module) error {
	got := StripProbes(post.Clone()).String()
	if got == preText {
		return nil
	}
	wantLines := strings.Split(preText, "\n")
	gotLines := strings.Split(got, "\n")
	n := min(len(wantLines), len(gotLines))
	for i := 0; i < n; i++ {
		if wantLines[i] != gotLines[i] {
			return fmt.Errorf("probe insertion changed non-probe IR at line %d: %q -> %q",
				i+1, wantLines[i], gotLines[i])
		}
	}
	return fmt.Errorf("probe insertion changed non-probe IR length: %d lines -> %d lines",
		len(wantLines), len(gotLines))
}
