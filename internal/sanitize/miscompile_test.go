package sanitize_test

import (
	"errors"
	"testing"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sanitize"
)

// diamondSrc is the miscompilation playground: a setup chain feeding a
// diamond whose arms pick different return values, plus a helper
// function so the reducer has something to drop.
const diamondSrc = `
func @main(%n) {
entry:
  %a = add %n, 5
  jmp pre
pre:
  %b = call @helper(%a)
  jmp test
test:
  %c = lt %n, 10
  br %c, small, big
small:
  %r = mov 1
  jmp out
big:
  %r = mov 2
  jmp out
out:
  ret %r
}
func @helper(%x) {
entry:
  %y = mul %x, 3
  ret %y
}
`

// firstBr returns f's first conditional branch block, if any.
func firstBr(f *ir.Func) *ir.Block {
	for _, b := range f.Blocks {
		if b.Term.Kind == ir.TermBr {
			return b
		}
	}
	return nil
}

// An intentionally-miscompiling pass double that orphans a block must
// be caught by the stage checker at the exact stage it ran.
func TestMiscompileCaughtAtExactStage(t *testing.T) {
	src := ir.MustParse(diamondSrc)
	orphan := func(stage string, f *ir.Func) {
		if stage == "canonicalize" && f.Name == "main" {
			if b := firstBr(f); b != nil {
				b.Term.Else = b.Term.Then
			}
		}
	}
	_, err := sanitize.CompileChecked(src, core.Config{
		Design: instrument.CI, ProbeIntervalIR: 100, FuncStageHook: orphan,
	}, sanitize.Options{})
	var se *sanitize.StageError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StageError", err)
	}
	if se.Stage != "canonicalize" || se.Func != "main" || se.Check != "reachability" {
		t.Errorf("caught at %q/%q check %q, want canonicalize/main reachability (%v)",
			se.Stage, se.Func, se.Check, se)
	}
}

// swapBr is the semantic miscompiler: structurally clean (every static
// invariant holds) but the branch goes the wrong way.
func swapBr(stage string, f *ir.Func) {
	if stage == "canonicalize" && f.Name == "main" {
		if b := firstBr(f); b != nil {
			b.Term.Then, b.Term.Else = b.Term.Else, b.Term.Then
		}
	}
}

// The differential oracle catches the semantically-miscompiling double
// the static checks cannot see, and the reducer shrinks the failing
// program to a minimal (≤3 block, single function) reproducer that
// round-trips through the repro store.
func TestMiscompileDivergenceAndShrink(t *testing.T) {
	src := ir.MustParse(diamondSrc)
	cfg := core.Config{Design: instrument.CI, ProbeIntervalIR: 100, FuncStageHook: swapBr}
	eo := sanitize.ExecOptions{Args: []int64{3}, LimitInstrs: 1_000_000}

	_, err := sanitize.CompileChecked(src, cfg, sanitize.Options{Exec: true, ExecOptions: eo})
	var div *sanitize.Divergence
	if !errors.As(err, &div) {
		t.Fatalf("err = %v, want *Divergence", err)
	}
	if div.Stage != "exec" || div.Design != "CI" {
		t.Errorf("divergence = %+v, want stage exec design CI", div)
	}

	stillFails := func(m *ir.Module) bool {
		_, err := sanitize.CompileChecked(m, cfg, sanitize.Options{Exec: true, ExecOptions: eo})
		var d *sanitize.Divergence
		return errors.As(err, &d)
	}
	red := sanitize.Reduce(src, "main", stillFails)
	if !stillFails(red.Clone()) {
		t.Fatal("reduced module no longer fails")
	}
	if len(red.Funcs) != 1 {
		t.Errorf("reducer kept %d functions, want 1 (main)\n%s", len(red.Funcs), red)
	}
	mainFn := red.FuncByName("main")
	if mainFn == nil {
		t.Fatalf("reducer lost main:\n%s", red)
	}
	if len(mainFn.Blocks) > 3 {
		t.Errorf("reduced main has %d blocks, want <= 3\n%s", len(mainFn.Blocks), red)
	}

	dir := t.TempDir()
	path, err := sanitize.SaveRepro(dir, "swap-branch", red,
		"shrunk by TestMiscompileDivergenceAndShrink\ndivergence: "+div.Error())
	if err != nil {
		t.Fatal(err)
	}
	repros, err := sanitize.LoadRepros(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) != 1 || repros[0].Name != "swap-branch" || repros[0].Path != path {
		t.Fatalf("LoadRepros = %+v", repros)
	}
	if repros[0].Mod.String() != red.String() {
		t.Error("reproducer did not round-trip through disk")
	}
}
