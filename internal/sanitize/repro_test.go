package sanitize_test

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sanitize"
)

// Every reproducer pinned under testdata/repro/ is a shrunk module
// from a past pipeline failure. They must compile cleanly under the
// full stage checks and pass the differential oracle for all four
// designs, forever.
func TestPinnedReprosStayFixed(t *testing.T) {
	repros, err := sanitize.LoadRepros(filepath.Join("testdata", "repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) == 0 {
		t.Fatal("no pinned reproducers found under testdata/repro")
	}
	for _, rp := range repros {
		rp := rp
		t.Run(rp.Name, func(t *testing.T) {
			t.Parallel()
			eo := sanitize.ExecOptions{LimitInstrs: 20_000_000}
			for _, d := range oracleDesigns {
				for _, pi := range []int64{60, 250} {
					if _, err := sanitize.CompileChecked(rp.Mod, core.Config{
						Design: d, ProbeIntervalIR: pi,
					}, sanitize.Options{Exec: true, ExecOptions: eo}); err != nil {
						t.Errorf("%v/pi=%d: %v", d, pi, err)
					}
				}
			}
		})
	}
}
