package sanitize

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/ir"
)

// SaveRepro persists a (typically Reduce-shrunk) failing module under
// dir as <name>.ir, prefixing each header line with "# " so the file
// parses back cleanly. It returns the written path. Reproducers saved
// under testdata/repro/ are auto-loaded as pinned regressions by the
// sanitize test suite.
func SaveRepro(dir, name string, m *ir.Module, header string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sanitize: %w", err)
	}
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(header, "\n"), "\n") {
		sb.WriteString("# ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	sb.WriteString(m.String())
	path := filepath.Join(dir, name+".ir")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		return "", fmt.Errorf("sanitize: %w", err)
	}
	return path, nil
}

// Repro is one pinned reproducer loaded from disk.
type Repro struct {
	Name string
	Path string
	Mod  *ir.Module
}

// LoadRepros parses every *.ir file in dir, sorted by name. A missing
// directory yields an empty slice, not an error.
func LoadRepros(dir string) ([]Repro, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sanitize: %w", err)
	}
	var out []Repro
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ir") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		text, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("sanitize: %w", err)
		}
		m, err := ir.Parse(string(text))
		if err != nil {
			return nil, fmt.Errorf("sanitize: reproducer %s: %w", path, err)
		}
		out = append(out, Repro{Name: strings.TrimSuffix(e.Name(), ".ir"), Path: path, Mod: m})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
