package sanitize_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ci/fuzz"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sanitize"
	"repro/internal/vm"
)

// The compiled tier must agree with the interpreter bit for bit —
// store stream, return value, final memory, fire counts and full VM
// statistics — over at least 500 seeded fuzz programs, instrumented
// under each of the four oracle designs. This is the tier-differential
// twin of TestOracleFourDesignsOver500Programs, and it is the headline
// gate on the compiled tier: the superinstruction fuser and the
// specialized probe path have to preserve exact cycle accounting, not
// just memory effects.
func TestTierOracleFourDesignsOver500Programs(t *testing.T) {
	total := 500
	if testing.Short() {
		total = 60
	}
	const chunk = 25
	for lo := 1; lo <= total; lo += chunk {
		lo := lo
		hi := min(lo+chunk-1, total)
		t.Run(fmt.Sprintf("seeds%d-%d", lo, hi), func(t *testing.T) {
			t.Parallel()
			for seed := lo; seed <= hi; seed++ {
				src := fuzz.Generate(uint64(seed), fuzz.Options{
					MaxDepth: 2, MaxStmts: 4, MaxFuncs: 2, WithExterns: seed%5 == 0,
				})
				eo := sanitize.ExecOptions{
					Args:        []int64{int64(seed % 4096)},
					LimitInstrs: 40_000_000,
				}
				// The uninstrumented program first (pure fusion, no
				// probes), then each design's instrumented form (adds
				// every probe kind to the mix).
				if err := sanitize.DiffTiers(src, eo); err != nil {
					t.Errorf("seed %d source: %v", seed, err)
				}
				for _, d := range oracleDesigns {
					prog, err := core.Compile(src, core.WithDesign(d), core.WithProbeInterval(250))
					if err != nil {
						t.Fatalf("seed %d %v: %v", seed, d, err)
					}
					if err := sanitize.DiffTiers(prog.Mod, eo); err != nil {
						t.Errorf("seed %d %v: %v", seed, d, err)
					}
				}
			}
		})
	}
}

// tierLoopSrc is the miscompile playground for the tier oracle: its
// loop head ends with a compare feeding the branch, so the compiled
// tier fuses a cmp+br epilogue there, and a helper plus a store stream
// give the reducer something to shed while memory stays observable.
const tierLoopSrc = `
mem 64
func @main(%n) {
entry:
  %b = and %n, 31
  %s = call @seed(%b)
  %i = mov 0
  jmp head
head:
  %c = lt %i, %b
  br %c, body, exit
body:
  %v = add %s, %i
  store %i, 0, %v
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
func @seed(%x) {
entry:
  %y = mul %x, 7
  ret %y
}
`

// A cycle-only miscompile — memory, control flow and return value all
// agree, only the virtual clock drifts — must be caught by the tier
// oracle's stat-parity check and must shrink through the ddmin reducer
// to a minimal reproducer matching the one pinned under
// testdata/repro/. vm.MiscompileForTest plants exactly that bug: fused
// cmp+br epilogues skip their terminator cycle charge.
func TestTierCycleDriftShrinksToPinnedRepro(t *testing.T) {
	vm.MiscompileForTest = true
	defer func() { vm.MiscompileForTest = false }()

	src := ir.MustParse(tierLoopSrc)
	eo := sanitize.ExecOptions{Args: []int64{29}, LimitInstrs: 1_000_000}
	err := sanitize.DiffTiers(src, eo)
	var div *sanitize.Divergence
	if !errors.As(err, &div) {
		t.Fatalf("planted cycle drift: err = %v, want *Divergence", err)
	}
	if div.Stage != "tier" || !strings.Contains(div.Detail, "stats drift") {
		t.Fatalf("divergence = %+v, want a tier-stage stats drift (memory agrees, cycles do not)", div)
	}

	stillDrifts := func(m *ir.Module) bool {
		var d *sanitize.Divergence
		return errors.As(sanitize.DiffTiers(m, eo), &d)
	}
	red := sanitize.Reduce(src, "main", stillDrifts)
	if !stillDrifts(red.Clone()) {
		t.Fatal("reduced module no longer drifts")
	}
	if len(red.Funcs) != 1 {
		t.Errorf("reducer kept %d functions, want 1 (main)\n%s", len(red.Funcs), red)
	}
	cb, _, _ := vm.FusiblePairs(red)
	if cb == 0 {
		t.Errorf("reduced module lost its fused cmp+br pair — the drift it shows is not the planted one\n%s", red)
	}

	// The shrunk module must match the pinned reproducer byte for byte;
	// when the reducer or the fuser changes shape, re-pin deliberately.
	repros, err := sanitize.LoadRepros(filepath.Join("testdata", "repro"))
	if err != nil {
		t.Fatal(err)
	}
	var pinned *sanitize.Repro
	for i := range repros {
		if repros[i].Name == "tier-cycle-drift" {
			pinned = &repros[i]
		}
	}
	if pinned == nil {
		t.Fatalf("no pinned tier-cycle-drift reproducer under testdata/repro; shrunk form:\n%s", red)
	}
	if pinned.Mod.String() != red.String() {
		t.Errorf("shrunk module differs from the pinned reproducer\nshrunk:\n%s\npinned:\n%s", red, pinned.Mod)
	}
	if !stillDrifts(pinned.Mod.Clone()) {
		t.Error("pinned reproducer no longer reproduces the planted drift")
	}
}

// Every pinned reproducer must also agree across tiers (with no
// planted bug), both raw and instrumented — the tier oracle's
// regression anchor, mirroring TestPinnedReprosStayFixed.
func TestPinnedReprosTierParity(t *testing.T) {
	repros, err := sanitize.LoadRepros(filepath.Join("testdata", "repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) == 0 {
		t.Fatal("no pinned reproducers found under testdata/repro")
	}
	for _, rp := range repros {
		rp := rp
		t.Run(rp.Name, func(t *testing.T) {
			t.Parallel()
			eo := sanitize.ExecOptions{LimitInstrs: 20_000_000}
			if err := sanitize.DiffTiers(rp.Mod, eo); err != nil {
				t.Errorf("source: %v", err)
			}
			for _, d := range oracleDesigns {
				prog, err := core.Compile(rp.Mod, core.WithDesign(d), core.WithProbeInterval(60))
				if err != nil {
					t.Fatalf("%v: %v", d, err)
				}
				if err := sanitize.DiffTiers(prog.Mod, eo); err != nil {
					t.Errorf("%v: %v", d, err)
				}
			}
		})
	}
}
