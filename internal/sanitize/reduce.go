package sanitize

import (
	"repro/internal/ir"
)

// Predicate reports whether a candidate module still exhibits the
// failure being reduced. It receives a private clone and may compile,
// corrupt or run it freely. Predicates see only Verify-clean modules.
type Predicate func(m *ir.Module) bool

// Reduce shrinks m to a smaller module that still satisfies pred,
// ddmin-style: it greedily applies shrinking passes — dropping whole
// functions, committing branches to one side (pruning what dies),
// deleting instruction chunks, splicing trivial jump chains and
// tail-duplicating tiny return blocks — re-running pred after each
// candidate and keeping every change that preserves the failure.
// entry names the function that must survive (usually "main"). If m
// does not satisfy pred, m's clone is returned unchanged.
func Reduce(m *ir.Module, entry string, pred Predicate) *ir.Module {
	r := &reducer{cur: m.Clone(), entry: entry, pred: pred}
	if !pred(r.cur.Clone()) {
		return r.cur
	}
	for changed := true; changed; {
		changed = false
		changed = r.dropFuncs() || changed
		changed = r.commitBranches() || changed
		changed = r.dropInstrChunks() || changed
		changed = r.spliceJumps() || changed
		changed = r.tailDupReturns() || changed
	}
	return r.cur
}

type reducer struct {
	cur   *ir.Module
	entry string
	pred  Predicate
}

// accept keeps cand as the new current module when it is valid,
// strictly smaller, and still failing.
func (r *reducer) accept(cand *ir.Module) bool {
	if cand.Verify() != nil || size(cand) >= size(r.cur) {
		return false
	}
	if !r.pred(cand.Clone()) {
		return false
	}
	r.cur = cand
	return true
}

// size orders candidates: blocks weigh more than instructions so
// passes that only restructure (splice, tail-dup) still count as
// progress when they shed a block.
func size(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		n += len(f.Blocks)*8 + f.NumInstrs()
	}
	return n
}

// dropFuncs tries deleting every function except the entry. Dangling
// callees fail Verify and are rejected automatically.
func (r *reducer) dropFuncs() bool {
	any := false
	for retry := true; retry; {
		retry = false
		for i, f := range r.cur.Funcs {
			if f.Name == r.entry {
				continue
			}
			cand := r.cur.Clone()
			cand.Funcs = append(cand.Funcs[:i], cand.Funcs[i+1:]...)
			if r.accept(cand) {
				any, retry = true, true
				break
			}
		}
	}
	return any
}

// commitBranches rewrites each conditional branch into an
// unconditional jump to one of its sides, pruning blocks that become
// unreachable.
func (r *reducer) commitBranches() bool {
	any := false
	for retry := true; retry; {
		retry = false
	scan:
		for fi, f := range r.cur.Funcs {
			for bi, b := range f.Blocks {
				if b.Term.Kind != ir.TermBr {
					continue
				}
				for side := 0; side < 2; side++ {
					cand := r.cur.Clone()
					cb := cand.Funcs[fi].Blocks[bi]
					target := cb.Term.Then
					if side == 1 {
						target = cb.Term.Else
					}
					cb.Term = ir.Terminator{Kind: ir.TermJmp, Then: target, Cond: ir.NoReg, Val: ir.NoReg}
					pruneUnreachable(cand.Funcs[fi])
					if r.accept(cand) {
						any, retry = true, true
						break scan
					}
				}
			}
		}
	}
	return any
}

// dropInstrChunks deletes instruction runs per block, halving the
// chunk size down to single instructions (ddmin over each block).
func (r *reducer) dropInstrChunks() bool {
	any := false
	for fi := 0; fi < len(r.cur.Funcs); fi++ {
		for bi := 0; bi < len(r.cur.Funcs[fi].Blocks); bi++ {
			n := len(r.cur.Funcs[fi].Blocks[bi].Instrs)
			for chunk := n; chunk >= 1; chunk /= 2 {
				for at := 0; at+chunk <= len(r.cur.Funcs[fi].Blocks[bi].Instrs); {
					cand := r.cur.Clone()
					cb := cand.Funcs[fi].Blocks[bi]
					cb.Instrs = append(cb.Instrs[:at], cb.Instrs[at+chunk:]...)
					if r.accept(cand) {
						any = true
					} else {
						at++
					}
				}
			}
		}
	}
	return any
}

// spliceJumps merges a block that unconditionally jumps to a
// single-predecessor successor with that successor.
func (r *reducer) spliceJumps() bool {
	any := false
	for retry := true; retry; {
		retry = false
	scan:
		for fi, f := range r.cur.Funcs {
			for bi, b := range f.Blocks {
				t := b.Term.Then
				if b.Term.Kind != ir.TermJmp || t == b || t == f.Entry() || predCount(f, t) != 1 {
					continue
				}
				cand := r.cur.Clone()
				cf := cand.Funcs[fi]
				cb := cf.Blocks[bi]
				ct := cb.Term.Then
				cb.Instrs = append(cb.Instrs, ct.Instrs...)
				cb.Term = ct.Term
				removeBlock(cf, ct)
				if r.accept(cand) {
					any, retry = true, true
					break scan
				}
			}
		}
	}
	return any
}

// tailDupReturns copies a tiny return block (≤2 instructions, 2–3
// unconditional predecessors) into each predecessor so the shared join
// disappears.
func (r *reducer) tailDupReturns() bool {
	any := false
	for retry := true; retry; {
		retry = false
	scan:
		for fi, f := range r.cur.Funcs {
			for _, t := range f.Blocks {
				if t.Term.Kind != ir.TermRet || len(t.Instrs) > 2 || t == f.Entry() {
					continue
				}
				var preds []*ir.Block
				ok := true
				for _, p := range f.Blocks {
					var succs []*ir.Block
					for _, s := range p.Succs(succs) {
						if s == t {
							if p.Term.Kind != ir.TermJmp {
								ok = false
							}
							preds = append(preds, p)
						}
					}
				}
				if !ok || len(preds) < 2 || len(preds) > 3 {
					continue
				}
				cand := r.cur.Clone()
				cf := cand.Funcs[fi]
				ct := cf.BlockByName(t.Name)
				for _, p := range preds {
					cp := cf.BlockByName(p.Name)
					cp.Instrs = append(cp.Instrs, ct.Instrs...)
					cp.Term = ct.Term
				}
				removeBlock(cf, ct)
				if r.accept(cand) {
					any, retry = true, true
					break scan
				}
			}
		}
	}
	return any
}

func predCount(f *ir.Func, target *ir.Block) int {
	n := 0
	for _, b := range f.Blocks {
		var succs []*ir.Block
		for _, s := range b.Succs(succs) {
			if s == target {
				n++
			}
		}
	}
	return n
}

func removeBlock(f *ir.Func, b *ir.Block) {
	for i, bb := range f.Blocks {
		if bb == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			break
		}
	}
	f.Reindex()
}

// pruneUnreachable deletes blocks not reachable from the entry.
func pruneUnreachable(f *ir.Func) {
	if len(f.Blocks) == 0 {
		return
	}
	reach := map[*ir.Block]bool{f.Blocks[0]: true}
	work := []*ir.Block{f.Blocks[0]}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		var succs []*ir.Block
		for _, s := range b.Succs(succs) {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	out := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			out = append(out, b)
		}
	}
	f.Blocks = out
	f.Reindex()
}
