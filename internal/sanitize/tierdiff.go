// Tier-differential oracle: the compiled VM tier promises bit-exact
// equivalence with the interpreter — same store stream, same return
// value, same final memory, same handler fire count and the same
// Stats, cycle for cycle. This file runs one module under both tiers
// and reports the first difference as a *Divergence (Stage "tier").
// Stat parity is deliberate and load-bearing: a cycle drift is a
// miscompile even when every memory effect agrees, because the whole
// point of the VM is its virtual clock.
package sanitize

import (
	"errors"
	"fmt"

	"repro/internal/ir"
	"repro/internal/vm"
)

// tierStoreEv is one observable write in a tier trace. Atomics are
// distinguished from plain stores so a tier that turned one into the
// other would diverge even when the committed value coincides.
type tierStoreEv struct {
	addr, val int64
	atomic    bool
}

// TierTrace is the observable behaviour the tier oracle compares: the
// ordered write stream, the return value, the final memory image, the
// CI handler fire count and the full VM statistics.
type TierTrace struct {
	stores []tierStoreEv
	Ret    int64
	Mem    []int64
	Fires  int64
	Stats  vm.Stats
}

// runTier executes m (on a private clone) under one tier and records
// its trace. Both tiers attach the same OnStore/OnAtomic observers —
// the compiled tier supports them natively (no deopt), so the oracle
// compares real compiled execution rather than a deopted shadow of it.
func runTier(m *ir.Module, tier vm.Tier, opts ExecOptions) (*TierTrace, error) {
	opts = opts.withDefaults()
	mm := m.Clone()
	machine := vm.New(mm, nil, 1)
	machine.Tier = tier
	machine.LimitInstrs = opts.LimitInstrs
	th := machine.NewThread(0)
	hid := th.RT.RegisterCI(opts.IntervalCycles, func(uint64) {})
	tr := &TierTrace{}
	th.OnStore = func(fn, block string, addr, val int64) {
		tr.stores = append(tr.stores, tierStoreEv{addr, val, false})
	}
	th.OnAtomic = func(fn, block string, addr, old, add int64) {
		tr.stores = append(tr.stores, tierStoreEv{addr, old + add, true})
	}
	args := opts.Args
	if f := mm.FuncByName(opts.Entry); f != nil && f.NumParams == 0 {
		args = nil
	}
	rv, err := th.Run(opts.Entry, args...)
	if err != nil {
		if errors.Is(err, vm.ErrStepBudget) {
			return nil, fmt.Errorf("%w: %s tier hit the step budget: %v", ErrInconclusive, tier, err)
		}
		return nil, fmt.Errorf("sanitize: %s tier run failed: %w", tier, err)
	}
	tr.Ret = rv
	tr.Mem = append([]int64(nil), machine.Mem...)
	tr.Fires = th.RT.Fires(hid)
	tr.Stats = th.Stats
	return tr, nil
}

// DiffTiers runs m under the interpreter (the reference semantics) and
// the compiled tier and returns a *Divergence at the first observable
// difference, ErrInconclusive when either side exhausts the step
// budget, or nil when the tiers agree bit for bit.
func DiffTiers(m *ir.Module, opts ExecOptions) error {
	ref, err := runTier(m, vm.TierInterpreter, opts)
	if err != nil {
		return err
	}
	got, err := runTier(m, vm.TierCompiled, opts)
	if err != nil {
		return err
	}
	return diffTierTraces(ref, got)
}

// diffTierTraces compares a compiled-tier trace against the
// interpreter reference, most-localizing check first (store stream,
// then return value, memory, fire count, stats).
func diffTierTraces(ref, got *TierTrace) error {
	div := func(step int, format string, args ...any) *Divergence {
		return &Divergence{Stage: "tier", Design: "compiled", Step: step,
			Detail: fmt.Sprintf(format, args...)}
	}
	n := min(len(ref.stores), len(got.stores))
	for i := 0; i < n; i++ {
		if ref.stores[i] != got.stores[i] {
			return div(i, "store %+v, interpreter stored %+v", got.stores[i], ref.stores[i])
		}
	}
	if len(got.stores) != len(ref.stores) {
		return div(n, "made %d stores, interpreter made %d", len(got.stores), len(ref.stores))
	}
	if got.Ret != ref.Ret {
		return div(-1, "returned %d, interpreter returned %d", got.Ret, ref.Ret)
	}
	for i := range got.Mem {
		if i < len(ref.Mem) && got.Mem[i] != ref.Mem[i] {
			return div(-1, "final mem[%d] = %d, interpreter %d", i, got.Mem[i], ref.Mem[i])
		}
	}
	if got.Fires != ref.Fires {
		return div(-1, "handler fired %d times, interpreter %d", got.Fires, ref.Fires)
	}
	if got.Stats != ref.Stats {
		return div(-1, "stats drift: compiled %+v, interpreter %+v", got.Stats, ref.Stats)
	}
	return nil
}
