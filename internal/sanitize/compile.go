package sanitize

import (
	"errors"

	"repro/internal/core"
	"repro/internal/ir"
)

// Options configures CompileChecked.
type Options struct {
	// Exec additionally runs the differential execution oracle on the
	// compiled program.
	Exec bool
	// ExecOptions parameterizes the oracle (zero value = defaults).
	ExecOptions ExecOptions
	// AllowInconclusive makes an ErrInconclusive oracle verdict (step
	// budget exhausted) non-fatal. Static stage checks still apply.
	AllowInconclusive bool
}

// CompileChecked compiles src under full translation validation: the
// stage checker is wired into every pipeline hook (chained after any
// hooks already present in cfg, so test doubles that corrupt a stage
// run before the checks), DebugVerify is forced on, and — with
// opts.Exec — the differential execution oracle runs on the result.
// The returned error is a *StageError or *Divergence when validation
// fails.
func CompileChecked(src *ir.Module, cfg core.Config, opts Options) (*core.Program, error) {
	ck := NewChecker()
	userF, userM := cfg.FuncStageHook, cfg.ModStageHook
	cfg.DebugVerify = true
	cfg.FuncStageHook = func(stage string, f *ir.Func) {
		if userF != nil {
			userF(stage, f)
		}
		ck.CheckFunc(stage, f)
	}
	cfg.ModStageHook = func(stage string, m *ir.Module) {
		if userM != nil {
			userM(stage, m)
		}
		ck.CheckModule(stage, m)
	}
	prog, err := core.CompileConfig(src, cfg)
	// Stage findings take precedence: they name the exact stage, where
	// the final-verify error from the pipeline only says "broken".
	if serr := ck.Err(); serr != nil {
		return nil, serr
	}
	if err != nil {
		return nil, err
	}
	if opts.Exec {
		oerr := DiffExec(src, prog.Mod, cfg.Design.String(), opts.ExecOptions)
		if oerr != nil && !(opts.AllowInconclusive && errors.Is(oerr, ErrInconclusive)) {
			return nil, oerr
		}
	}
	return prog, nil
}

// Checked adapts CompileChecked to the functional-options API: it
// returns a core.Option that makes core.Compile route the whole
// compilation through translation validation with these opts:
//
//	prog, err := core.Compile(src,
//	    core.WithDesign(instrument.CI),
//	    sanitize.Checked(sanitize.Options{Exec: true}))
func Checked(opts Options) core.Option {
	return core.WithSanitize(func(src *ir.Module, cfg core.Config) (*core.Program, error) {
		return CompileChecked(src, cfg, opts)
	})
}

// CompileCheckedText parses textual IR and runs CompileChecked.
func CompileCheckedText(src string, cfg core.Config, opts Options) (*core.Program, error) {
	m, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileChecked(m, cfg, opts)
}
