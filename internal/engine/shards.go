package engine

import "sync"

// ShardRunner executes repeated barrier-synchronized steps over n
// disjoint shards on a persistent set of workers. It exists for
// bulk-synchronous simulations (internal/fleet) that step the same
// shard set thousands of times: Pool.Map spawns its workers per call,
// which is fine for sweep cells but wasteful at epoch granularity.
//
// Determinism contract: each shard index is statically owned by one
// worker (a fixed contiguous range), every Step call is a full barrier,
// and step functions may touch only their shard's state. Under that
// discipline a run's outcome is a pure function of the per-shard
// inputs, so results are byte-identical at any worker count, and with
// one worker Step degenerates to the plain serial loop (shard order
// 0..n-1) — the same workers=1 == serial discipline as Pool.Map.
type ShardRunner struct {
	n       int
	workers int

	step func(shard int)
	wg   sync.WaitGroup

	start []chan struct{} // one per worker; closed runner signals via stop
	stop  bool
	mu    sync.Mutex
}

// NewShardRunner builds a runner for n shards on the pool's worker
// count (capped at n). With one worker (or one shard) no goroutines are
// spawned and Step runs serially on the caller.
func NewShardRunner(p *Pool, n int) *ShardRunner {
	workers := 1
	if p != nil {
		workers = p.Workers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	r := &ShardRunner{n: n, workers: workers}
	if workers <= 1 {
		return r
	}
	r.start = make([]chan struct{}, workers)
	for w := 0; w < workers; w++ {
		r.start[w] = make(chan struct{}, 1)
		lo, hi := w*n/workers, (w+1)*n/workers
		go func(ch chan struct{}, lo, hi int) {
			for range ch {
				for i := lo; i < hi; i++ {
					r.step(i)
				}
				r.wg.Done()
			}
		}(r.start[w], lo, hi)
	}
	return r
}

// Workers reports the runner's effective concurrency.
func (r *ShardRunner) Workers() int { return r.workers }

// Step runs f(0..n-1), one call per shard, and returns after every
// shard completed (a full barrier). Calls must not overlap; f must only
// touch state owned by its shard.
func (r *ShardRunner) Step(f func(shard int)) {
	if r.workers <= 1 {
		for i := 0; i < r.n; i++ {
			f(i)
		}
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop {
		for i := 0; i < r.n; i++ {
			f(i)
		}
		return
	}
	r.step = f
	r.wg.Add(r.workers)
	for _, ch := range r.start {
		ch <- struct{}{}
	}
	r.wg.Wait()
	r.step = nil
}

// Close releases the runner's workers. Further Step calls run serially;
// Close is idempotent.
func (r *ShardRunner) Close() {
	if r.workers <= 1 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop {
		return
	}
	r.stop = true
	for _, ch := range r.start {
		close(ch)
	}
}
