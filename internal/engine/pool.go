// Package engine is the parallel experiment engine behind the §5
// evaluation sweeps: a bounded worker pool that shards independent
// (workload × design × interval) cells across GOMAXPROCS, a memoization
// cache that reuses instrumented modules and baseline runs across
// cells, and an incremental JSON result store that skips unchanged
// cells on re-runs.
//
// Every VM run is virtual-time deterministic (per-thread RNGs are
// seeded by thread id), so a cell's result is a pure function of its
// inputs and the engine merges shard results by input index: the output
// of a sweep is byte-identical at any worker count, and with a single
// worker the pool degenerates to the plain serial loop of the original
// pipeline.
package engine

import (
	"runtime"
	"sync"
)

// Pool is a bounded worker pool for sweep cells.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given concurrency; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency.
func (p *Pool) Workers() int { return p.workers }

// Map evaluates f(0..n-1) on the pool and returns results and errors
// indexed by input position — a sorted merge of the shard outputs, so
// the caller sees input order regardless of completion order. A failed
// cell leaves its result slot zero and records its error; other cells
// are unaffected.
//
// With one worker the cells run in index order on the calling
// goroutine, reproducing the serial pipeline exactly.
func Map[R any](p *Pool, n int, f func(i int) (R, error)) ([]R, []error) {
	results := make([]R, n)
	errs := make([]error, n)
	if n == 0 {
		return results, errs
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			results[i], errs[i] = f(i)
		}
		return results, errs
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errs
}

// FirstError returns the first non-nil error in errs, or nil.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
