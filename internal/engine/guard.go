package engine

import (
	"fmt"
	"hash/fnv"

	"repro/internal/ir"
)

// GuardedModule pairs a module shared across sweep cells with an
// integrity fingerprint taken when it entered the cache. VM threads
// only read the module (each run gets private registers, memory and a
// CI runtime), so handing the same *ir.Module to many cells is safe —
// and Verify proves it: any cell that mutated a cached module changes
// its printed form and trips the fingerprint. Writers must instead
// clone (copy-on-write), which is what core.Compile already does.
type GuardedModule struct {
	Mod *ir.Module
	fp  uint64
}

// GuardModule fingerprints m and wraps it for shared, read-only use.
func GuardModule(m *ir.Module) *GuardedModule {
	return &GuardedModule{Mod: m, fp: ModuleFingerprint(m)}
}

// Fingerprint returns the fingerprint recorded at guard time.
func (g *GuardedModule) Fingerprint() uint64 { return g.fp }

// Verify re-fingerprints the module and fails if it no longer matches
// the insert-time value — i.e. if some consumer wrote to the shared
// module instead of cloning it.
func (g *GuardedModule) Verify() error {
	if now := ModuleFingerprint(g.Mod); now != g.fp {
		return fmt.Errorf("engine: cached module %q was mutated (fingerprint %x, was %x)",
			g.Mod.Name, now, g.fp)
	}
	return nil
}

// ModuleFingerprint hashes the module's complete printed form —
// functions, blocks, instructions, probes, externs and memory size —
// into a 64-bit content fingerprint.
func ModuleFingerprint(m *ir.Module) uint64 {
	h := fnv.New64a()
	h.Write([]byte(m.String()))
	return h.Sum64()
}
