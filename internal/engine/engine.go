package engine

import (
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/obs"
	"repro/internal/vm"
)

// Engine bundles the three layers of the experiment engine: the worker
// pool (sharding), the memoization cache (module/baseline reuse) and
// the optional incremental result store (skip-hash persistence).
type Engine struct {
	Pool  *Pool
	Cache *Cache
	// Store, when non-nil, persists sweep cells keyed by content hash
	// so unchanged cells are skipped on re-runs.
	Store *Store
	// SanitizeOnMiss routes cache-miss compilations through the
	// translation-validation sanitizer (stage checks on every pass)
	// instead of the plain pipeline. Cache hits are unaffected, so the
	// cost is paid once per distinct (workload, scale, config) cell.
	SanitizeOnMiss bool
	// Obs, when enabled, receives engine-level telemetry: cache
	// hit/miss instants and counters. Attach it via AttachObs so the
	// cache observer is wired as well.
	Obs *obs.Scope
	// Tier selects the VM execution tier for every cell the engine
	// runs (interpreter by default). It is folded into compile cache
	// keys, so one engine can host both tiers without aliasing.
	Tier vm.Tier
}

// AttachObs points the engine (and its cache) at an observability
// scope. Cache lookups then emit "engine" hit/miss instants on the
// scope's tick clock plus engine/cache_{hit,miss} counters.
func (e *Engine) AttachObs(scope *obs.Scope) {
	e.Obs = scope
	if !scope.Enabled() || e.Cache == nil {
		return
	}
	e.Cache.Observer = func(key string, hit bool) {
		name, counter := "cache-miss", "engine/cache_miss"
		if hit {
			name, counter = "cache-hit", "engine/cache_hit"
		}
		scope.Count(counter, 1)
		scope.Instant("engine", name, 0, scope.Tick(), obs.S("key", key))
	}
}

// New returns an engine with the given worker count (<= 0 selects
// GOMAXPROCS), a default-capacity cache and no store.
func New(workers int) *Engine {
	return &Engine{Pool: NewPool(workers), Cache: NewCache(DefaultCacheCap)}
}

// Serial returns a single-worker engine — the provably deterministic
// configuration whose output is byte-identical to the legacy serial
// pipeline.
func Serial() *Engine { return New(1) }

// Workers reports the engine's pool concurrency.
func (e *Engine) Workers() int {
	if e == nil || e.Pool == nil {
		return 1
	}
	return e.Pool.Workers()
}

// Hash folds the printed forms of parts into a stable content-hash
// string, used as the skip-hash of store cells.
func Hash(parts ...any) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v\x1f", p)
	}
	return strconv.FormatUint(h.Sum64(), 16)
}

// CellDo runs one store-aware sweep cell: when e has a store holding
// key with a matching input hash, the stored result is decoded and
// compute is skipped (skipped=true); otherwise compute runs and its
// result is recorded. Engines without a store always compute.
func CellDo[T any](e *Engine, key, hash string, compute func() (T, error)) (out T, skipped bool, err error) {
	if e != nil && e.Store != nil && e.Store.Lookup(key, hash, &out) {
		return out, true, nil
	}
	out, err = compute()
	if err == nil && e != nil && e.Store != nil {
		err = e.Store.Put(key, hash, out)
	}
	return out, false, err
}
