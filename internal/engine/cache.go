package engine

import (
	"container/list"
	"sync"
)

// Cache is a size-capped memoizing cache with per-key singleflight:
// concurrent lookups of the same key run the build function once and
// share its result. Sweeps use it to reuse instrumented modules,
// canonicalized CFGs and baseline runs across cells instead of
// re-running analysis per cell.
//
// Build errors are not cached: a failed entry is removed so a later
// lookup retries (deterministic failures simply fail again, cheaply).
type Cache struct {
	// Observer, when non-nil, is told about every lookup (hit or miss).
	// It is invoked outside the cache lock; set it before concurrent
	// use (AttachObs does).
	Observer func(key string, hit bool)

	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used; completed entries only

	hits, misses, evictions int64
}

type cacheEntry struct {
	key   string
	val   any
	err   error
	ready chan struct{} // closed when val/err are final
	elem  *list.Element // nil while the build is in flight
}

// DefaultCacheCap bounds the cache when the caller does not choose a
// size. The full evaluation needs ~(28 workloads × 8 design configs)
// module entries plus baselines; 512 holds everything the paper's
// sweeps touch while still exercising eviction on synthetic floods.
const DefaultCacheCap = 512

// NewCache returns a cache holding at most cap entries (cap <= 0 means
// unbounded).
func NewCache(cap int) *Cache {
	return &Cache{
		cap:     cap,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// Get returns the cached value for key, building and inserting it with
// build on a miss. Concurrent callers for the same key share one build.
func (c *Cache) Get(key string, build func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		if c.Observer != nil {
			c.Observer(key, true)
		}
		<-e.ready
		return e.val, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()
	if c.Observer != nil {
		c.Observer(key, false)
	}

	e.val, e.err = build()
	close(e.ready)

	c.mu.Lock()
	if e.err != nil {
		// Do not cache failures; let a later lookup retry.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
	} else {
		e.elem = c.lru.PushFront(e)
		for c.cap > 0 && c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			victim := oldest.Value.(*cacheEntry)
			c.lru.Remove(oldest)
			delete(c.entries, victim.key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	return e.val, e.err
}

// Len reports the number of completed entries resident in the cache.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// CacheStats is a point-in-time snapshot of cache accounting.
type CacheStats struct {
	Hits, Misses, Evictions int64
}

// Stats returns the cache's hit/miss/eviction counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions}
}

// Range calls fn for every completed entry. It snapshots the entries
// under the lock and invokes fn outside it, so fn may use the cache.
func (c *Cache) Range(fn func(key string, val any)) {
	c.mu.Lock()
	snapshot := make([]*cacheEntry, 0, len(c.entries))
	for _, e := range c.entries {
		if e.elem != nil {
			snapshot = append(snapshot, e)
		}
	}
	c.mu.Unlock()
	for _, e := range snapshot {
		fn(e.key, e.val)
	}
}
