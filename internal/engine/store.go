package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// storeVersion guards the BENCH_*.json schema; bump it to invalidate
// every stored cell at once.
const storeVersion = 1

// Store is the incremental JSON result store: one BENCH_*.json file
// holding a map from sweep-cell key to (input hash, result). On a
// re-run, a cell whose input hash still matches is decoded from the
// store and its (often multi-second) measurement is skipped; any cell
// whose workload, configuration or code-derived hash changed runs
// fresh and overwrites its slot. Save rewrites the file atomically.
type Store struct {
	mu    sync.Mutex
	path  string
	cells map[string]StoredCell
	dirty bool

	hits, misses int64
}

// StoredCell is one persisted sweep cell.
type StoredCell struct {
	// Hash is the content hash of the cell's inputs (workload module
	// fingerprint plus sweep configuration).
	Hash string `json:"hash"`
	// Data is the cell's JSON-encoded result rows.
	Data json.RawMessage `json:"data"`
}

type storeFile struct {
	Version int                   `json:"version"`
	Cells   map[string]StoredCell `json:"cells"`
}

// OpenStore loads the store at path, starting empty when the file does
// not exist yet. A file with a different schema version is discarded
// (all cells re-run and the file is rewritten on Save).
func OpenStore(path string) (*Store, error) {
	s := &Store{path: path, cells: make(map[string]StoredCell)}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("engine: open store: %w", err)
	}
	var f storeFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("engine: store %s is not valid JSON: %w", path, err)
	}
	if f.Version == storeVersion && f.Cells != nil {
		s.cells = f.Cells
	}
	return s, nil
}

// Path returns the file the store persists to.
func (s *Store) Path() string { return s.path }

// Lookup decodes the stored result for key into out when the stored
// input hash matches, reporting whether the cell can be skipped.
func (s *Store) Lookup(key, hash string, out any) bool {
	s.mu.Lock()
	c, ok := s.cells[key]
	if !ok || c.Hash != hash {
		s.misses++
		s.mu.Unlock()
		return false
	}
	s.mu.Unlock()
	if err := json.Unmarshal(c.Data, out); err != nil {
		// A corrupt cell is treated as a miss; the fresh result will
		// overwrite it.
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return false
	}
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return true
}

// Put records the result for key under the given input hash.
func (s *Store) Put(key, hash string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("engine: store cell %q: %w", key, err)
	}
	s.mu.Lock()
	s.cells[key] = StoredCell{Hash: hash, Data: data}
	s.dirty = true
	s.mu.Unlock()
	return nil
}

// Cell returns the raw stored cell for key.
func (s *Store) Cell(key string) (StoredCell, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[key]
	return c, ok
}

// Keys returns the stored cell keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.cells))
	for k := range s.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Skipped reports how many lookups were served from the store and how
// many had to run fresh.
func (s *Store) Skipped() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// Save writes the store back to its file atomically (temp file +
// rename). It is a no-op when nothing changed since load.
func (s *Store) Save() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.dirty {
		return nil
	}
	// Deterministic output: encoding/json sorts map keys.
	data, err := json.MarshalIndent(storeFile{Version: storeVersion, Cells: s.cells}, "", "  ")
	if err != nil {
		return fmt.Errorf("engine: save store: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".bench-store-*")
	if err != nil {
		return fmt.Errorf("engine: save store: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: save store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: save store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("engine: save store: %w", err)
	}
	s.dirty = false
	return nil
}
