package engine

import "testing"

// Stepping a shard set repeatedly must produce identical per-shard
// state at any worker count: each shard is statically owned, so the
// serial runner is the reference discipline.
func TestShardRunnerMatchesSerialAtAnyWorkerCount(t *testing.T) {
	const shards, steps = 13, 200
	run := func(workers int) []int64 {
		state := make([]int64, shards)
		r := NewShardRunner(NewPool(workers), shards)
		defer r.Close()
		for s := 0; s < steps; s++ {
			step := int64(s)
			r.Step(func(i int) {
				// A shard-local recurrence that is order-sensitive across
				// steps but touches only shard i.
				state[i] = state[i]*31 + int64(i) + step
			})
		}
		return state
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 32} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d shard %d: state %d != serial %d", workers, i, got[i], want[i])
			}
		}
	}
}

// Every shard index must be visited exactly once per step, and the
// barrier must hold: a step's writes are all visible when Step returns.
func TestShardRunnerVisitsEachShardOncePerStep(t *testing.T) {
	const shards = 7
	r := NewShardRunner(NewPool(4), shards)
	defer r.Close()
	counts := make([]int, shards)
	for s := 0; s < 50; s++ {
		r.Step(func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != s+1 {
				t.Fatalf("after step %d shard %d visited %d times", s, i, c)
			}
		}
	}
}

// After Close the runner degrades to the serial loop instead of
// deadlocking, and Close is idempotent.
func TestShardRunnerCloseIsSafe(t *testing.T) {
	r := NewShardRunner(NewPool(4), 5)
	touched := make([]bool, 5)
	r.Step(func(i int) { touched[i] = true }) // parallel step: shard-local writes
	r.Close()
	r.Close()
	serial := make([]int, 0, 5)
	r.Step(func(i int) { serial = append(serial, i) })
	for i, v := range serial {
		if v != i {
			t.Fatalf("post-Close step order = %v, want 0..4 serial", serial)
		}
	}
	if len(serial) != 5 {
		t.Fatalf("post-Close step visited %d shards, want 5", len(serial))
	}
	for i, ok := range touched {
		if !ok {
			t.Fatalf("parallel step missed shard %d", i)
		}
	}
}

// Workers is capped by the shard count and floors at 1.
func TestShardRunnerWorkerCap(t *testing.T) {
	if got := NewShardRunner(NewPool(16), 3).Workers(); got != 3 {
		t.Errorf("workers = %d, want capped at 3", got)
	}
	if got := NewShardRunner(nil, 9).Workers(); got != 1 {
		t.Errorf("nil-pool workers = %d, want 1", got)
	}
	r := NewShardRunner(NewPool(1), 4)
	visited := 0
	r.Step(func(i int) { visited++ })
	if visited != 4 {
		t.Errorf("serial runner visited %d shards, want 4", visited)
	}
}
