package engine_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Map must return results in input order regardless of worker count,
// with errors landing in the slot of the input that produced them.
func TestMapOrderAndErrorSlots(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := engine.NewPool(workers)
		out, errs := engine.Map(p, 20, func(i int) (int, error) {
			if i == 7 || i == 13 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i * i, nil
		})
		if len(out) != 20 || len(errs) != 20 {
			t.Fatalf("workers=%d: lengths %d/%d", workers, len(out), len(errs))
		}
		for i := range out {
			if i == 7 || i == 13 {
				if errs[i] == nil {
					t.Errorf("workers=%d: slot %d lost its error", workers, i)
				}
				continue
			}
			if errs[i] != nil {
				t.Errorf("workers=%d: slot %d unexpected error %v", workers, i, errs[i])
			}
			if out[i] != i*i {
				t.Errorf("workers=%d: slot %d = %d, want %d", workers, i, out[i], i*i)
			}
		}
		if err := engine.FirstError(errs); err == nil {
			t.Errorf("workers=%d: FirstError missed the failures", workers)
		}
	}
}

// A single-worker pool must execute cells in input order on the calling
// goroutine — the property that makes workers=1 byte-identical to the
// legacy serial loop.
func TestMapSerialExecutionOrder(t *testing.T) {
	p := engine.NewPool(1)
	var seen []int
	_, errs := engine.Map(p, 10, func(i int) (struct{}, error) {
		seen = append(seen, i) // no lock: must run on one goroutine
		return struct{}{}, nil
	})
	if err := engine.FirstError(errs); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial pool ran out of order: %v", seen)
		}
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := engine.NewCache(8)
	builds := 0
	build := func() (any, error) { builds++; return 42, nil }
	for i := 0; i < 3; i++ {
		v, err := c.Get("k", build)
		if err != nil || v.(int) != 42 {
			t.Fatalf("Get = %v, %v", v, err)
		}
	}
	if builds != 1 {
		t.Errorf("build ran %d times, want 1", builds)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 0 evictions", st)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

// Over-capacity inserts must evict the least recently used entry, and a
// later lookup of the victim must rebuild it.
func TestCacheEvictionUnderCap(t *testing.T) {
	c := engine.NewCache(2)
	builds := map[string]int{}
	get := func(key string) {
		if _, err := c.Get(key, func() (any, error) { builds[key]++; return key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now LRU
	get("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	get("a") // must still be resident
	get("b") // must rebuild
	if builds["a"] != 1 || builds["b"] != 2 || builds["c"] != 1 {
		t.Errorf("builds = %v, want a:1 b:2 c:1", builds)
	}
}

// Build errors must not be cached: the next lookup retries.
func TestCacheErrorsNotCached(t *testing.T) {
	c := engine.NewCache(8)
	builds := 0
	fail := errors.New("boom")
	for i := 0; i < 2; i++ {
		if _, err := c.Get("k", func() (any, error) { builds++; return nil, fail }); !errors.Is(err, fail) {
			t.Fatalf("Get err = %v", err)
		}
	}
	if builds != 2 {
		t.Errorf("failed build ran %d times, want 2 (no caching of errors)", builds)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after failures, want 0", c.Len())
	}
	if _, err := c.Get("k", func() (any, error) { return 1, nil }); err != nil {
		t.Errorf("recovery Get failed: %v", err)
	}
}

// Concurrent lookups of one key share a single in-flight build
// (per-key singleflight): the entry is published under the lock before
// the build runs, so racing callers wait on it instead of rebuilding.
func TestCacheSingleflight(t *testing.T) {
	c := engine.NewCache(8)
	var builds atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Get("shared", func() (any, error) {
				builds.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the race window
				return "val", nil
			})
			if err != nil || v.(string) != "val" {
				t.Errorf("Get = %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times under concurrency, want 1", n)
	}
}

type cellResult struct {
	Name  string
	Value float64
	Runs  int64
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	s, err := engine.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	in := cellResult{Name: "radix", Value: 1.0625, Runs: 400000000}
	if err := s.Put("overhead/radix", "h1", in); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}

	s2, err := engine.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var out cellResult
	if !s2.Lookup("overhead/radix", "h1", &out) {
		t.Fatal("matching hash should hit")
	}
	if out != in {
		t.Fatalf("round trip changed the cell: %+v != %+v", out, in)
	}
	if s2.Lookup("overhead/radix", "h2", &out) {
		t.Fatal("changed hash must force a fresh run")
	}
	if s2.Lookup("missing", "h1", &out) {
		t.Fatal("unknown key must miss")
	}
	hits, misses := s2.Skipped()
	if hits != 1 || misses != 2 {
		t.Errorf("skip accounting = %d hits / %d misses, want 1/2", hits, misses)
	}
}

// A store file from a different schema version is discarded wholesale:
// every cell re-runs rather than decoding stale shapes.
func TestStoreVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	content := `{"version": 99, "cells": {"k": {"hash": "h", "data": 1}}}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := engine.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if keys := s.Keys(); len(keys) != 0 {
		t.Errorf("version-mismatched store kept cells: %v", keys)
	}
}

// Save is a no-op when nothing changed, and atomic (no partial file)
// when it writes.
func TestStoreSaveNoopAndAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	s, err := engine.OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("clean store should not write a file")
	}
	if err := s.Put("k", "h", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "BENCH_test.json" {
		t.Errorf("temp files left behind: %v", ents)
	}
}

func TestCellDoSkipsOnHashMatch(t *testing.T) {
	e := engine.Serial()
	store, err := engine.OpenStore(filepath.Join(t.TempDir(), "BENCH_test.json"))
	if err != nil {
		t.Fatal(err)
	}
	e.Store = store
	computes := 0
	compute := func() (cellResult, error) { computes++; return cellResult{Name: "x", Value: 2.5}, nil }

	first, skipped, err := engine.CellDo(e, "cell", "h1", compute)
	if err != nil || skipped {
		t.Fatalf("first CellDo: skipped=%v err=%v", skipped, err)
	}
	second, skipped, err := engine.CellDo(e, "cell", "h1", compute)
	if err != nil || !skipped {
		t.Fatalf("second CellDo: skipped=%v err=%v", skipped, err)
	}
	if second != first {
		t.Fatalf("stored cell differs: %+v != %+v", second, first)
	}
	if _, skipped, _ = engine.CellDo(e, "cell", "h2", compute); skipped {
		t.Fatal("hash change must force recompute")
	}
	if computes != 2 {
		t.Errorf("compute ran %d times, want 2", computes)
	}
}

// Hash must distinguish inputs and stay stable for equal inputs.
func TestHashStableAndDistinct(t *testing.T) {
	a := engine.Hash("overhead", 1, int64(5000), true)
	if b := engine.Hash("overhead", 1, int64(5000), true); b != a {
		t.Errorf("equal inputs hash differently: %s vs %s", a, b)
	}
	for _, other := range []string{
		engine.Hash("overhead", 2, int64(5000), true),
		engine.Hash("overhead", 1, int64(5001), true),
		engine.Hash("accuracy", 1, int64(5000), true),
		engine.Hash("overhead", 1, int64(5000)),
	} {
		if other == a {
			t.Errorf("distinct inputs collided on %s", a)
		}
	}
}

// The copy-on-write guard: a full VM run — probes firing, CI handlers
// charging cycles, 8 threads contending — must never mutate a cached
// instrumented module, and the fingerprint must prove it.
func TestGuardedModuleSurvivesVMRuns(t *testing.T) {
	wl := workloads.ByName("histogram")
	prog, err := core.Compile(wl.Build(1),
		core.WithDesign(instrument.CI), core.WithProbeInterval(250))
	if err != nil {
		t.Fatal(err)
	}
	g := engine.GuardModule(prog.Mod)

	machine := vm.New(prog.Mod, nil, 1)
	th := machine.NewThread(0)
	th.RT.IRPerCycle = 1
	th.RT.RegisterCI(5000, func(uint64) { th.Charge(25) })
	if _, err := th.Run("main", 0); err != nil {
		t.Fatal(err)
	}
	machine8 := vm.New(prog.Mod, nil, 8)
	args := func(id int) []int64 { return []int64{int64(id)} }
	if _, err := machine8.RunParallel(8, "main", args, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Errorf("VM runs mutated the cached module: %v", err)
	}
}

// ...and when a module IS mutated behind the cache's back, Verify says so.
func TestGuardDetectsMutation(t *testing.T) {
	wl := workloads.ByName("histogram")
	m := wl.Build(1)
	g := engine.GuardModule(m)
	if err := g.Verify(); err != nil {
		t.Fatalf("fresh guard: %v", err)
	}
	m.Funcs[0].Name = "mutated"
	if err := g.Verify(); err == nil {
		t.Error("Verify missed a renamed function")
	}
	m.Funcs[0].Name = "main"
	if err := g.Verify(); err != nil {
		t.Fatalf("restoring the module should restore the fingerprint: %v", err)
	}
	m.Funcs[0].Blocks[0].Instrs = m.Funcs[0].Blocks[0].Instrs[1:]
	if err := g.Verify(); err == nil {
		t.Error("Verify missed a dropped instruction")
	}
}

// Sharding must deliver real wall-clock speedup on multi-core hosts.
// The container this repo usually builds in has a single CPU, where no
// speedup is physically possible — the test then skips; run it on a
// >=4-core machine to check the engine's headline claim.
func TestPoolSpeedupMultiCore(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("NumCPU = %d; parallel speedup needs >= 4 cores", runtime.NumCPU())
	}
	work := func(i int) (int64, error) {
		var acc int64
		for j := int64(0); j < 60_000_000; j++ {
			acc += j ^ (acc >> 3)
		}
		return acc, nil
	}
	const cells = 16
	time1 := func(workers int) time.Duration {
		start := time.Now()
		_, errs := engine.Map(engine.NewPool(workers), cells, work)
		if err := engine.FirstError(errs); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := time1(1)
	parallel := time1(runtime.NumCPU())
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, parallel %v, speedup %.1fx on %d CPUs", serial, parallel, speedup, runtime.NumCPU())
	if speedup < 2 {
		t.Errorf("speedup %.2fx < 2x on %d CPUs", speedup, runtime.NumCPU())
	}
}
