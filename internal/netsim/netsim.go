// Package netsim models the networking substrate of the mTCP and
// Shenango experiments: a 10 Gbps link with serialization and
// propagation delay, and a NIC receive ring with finite capacity and
// drop accounting. An optional fault injector adds probabilistic
// packet loss, corruption and reordering on top of ring-overflow loss.
package netsim

import "repro/internal/faults"

// Cycle-domain constants at the 2.6 GHz model clock.
const (
	// CyclesPerByte10G is the serialization cost on a 10 Gbps link:
	// 2.6e9 cycles/s ÷ 1.25e9 bytes/s.
	CyclesPerByte10G = 2.08
	// PropagationCycles models NIC/switch/NIC propagation (~1 µs).
	PropagationCycles = 2600
)

// Link is a point-to-point link with a fixed per-byte serialization
// cost and propagation delay.
type Link struct {
	CyclesPerByte float64
	Propagation   int64
}

// TenGbps returns the experiments' 10 Gbps link.
func TenGbps() *Link {
	return &Link{CyclesPerByte: CyclesPerByte10G, Propagation: PropagationCycles}
}

// Delay returns the one-way latency for a packet of the given size.
func (l *Link) Delay(bytes int64) int64 {
	return int64(l.CyclesPerByte*float64(bytes)) + l.Propagation
}

// Packet is a unit of network traffic.
type Packet struct {
	// Arrival is the cycle the packet reached the NIC.
	Arrival int64
	// Conn identifies the connection.
	Conn int
	// Seq is a connection-local sequence number.
	Seq int64
	// Bytes is the wire size.
	Bytes int64
	// Retransmit marks a retransmitted packet.
	Retransmit bool
	// Corrupt marks a packet whose payload was damaged in flight; the
	// receiving stack discards it at checksum time.
	Corrupt bool
}

// NIC is a receive ring of finite capacity.
type NIC struct {
	// Capacity is the ring size in packets; pushes beyond it drop.
	Capacity int
	// Faults, when non-nil, injects probabilistic loss, corruption and
	// reordering on every push (on top of ring-overflow drops).
	Faults *faults.Injector
	ring   []Packet
	// Dropped counts packets lost to ring overflow.
	Dropped int64
	// Lost counts packets removed by injected loss (the wire ate them
	// before the ring ever saw them).
	Lost int64
	// Corrupted counts packets delivered with damaged payloads.
	Corrupted int64
	// Reordered counts packets delivered late out of order.
	Reordered int64
	// Received counts all packets that entered the ring.
	Received int64
}

// NewNIC returns a NIC with the given ring capacity.
func NewNIC(capacity int) *NIC {
	return &NIC{Capacity: capacity}
}

// Push adds a packet to the ring; returns false (and counts a drop or
// an injected loss) when the packet does not make it in. Injected
// reordering delays the packet's visible arrival; the ring stays
// sorted by arrival so late packets do not block earlier ones.
func (n *NIC) Push(p Packet) bool {
	if n.Faults.Drop() {
		n.Lost++
		return false
	}
	if len(n.ring) >= n.Capacity {
		n.Dropped++
		return false
	}
	if n.Faults.Corrupt() {
		p.Corrupt = true
		n.Corrupted++
	}
	if d := n.Faults.Reorder(); d > 0 {
		p.Arrival += d
		n.Reordered++
	}
	n.ring = append(n.ring, p)
	// Keep arrival order: bubble a delayed packet past any it now
	// follows. A no-op when no reordering is injected (pushes arrive
	// in time order).
	for i := len(n.ring) - 1; i > 0 && n.ring[i-1].Arrival > n.ring[i].Arrival; i-- {
		n.ring[i-1], n.ring[i] = n.ring[i], n.ring[i-1]
	}
	n.Received++
	return true
}

// Pending returns the current ring occupancy.
func (n *NIC) Pending() int { return len(n.ring) }

// Wipe empties the ring without touching the Dropped/Lost counters and
// returns how many packets were destroyed. It models the receiving
// host crashing: the packets were delivered to a process that died, so
// the caller accounts them as failed rather than lost on the wire.
func (n *NIC) Wipe() int64 {
	wiped := int64(len(n.ring))
	n.ring = n.ring[:0]
	return wiped
}

// Drain removes and returns up to max packets that arrived at or
// before now (max <= 0 means no limit).
func (n *NIC) Drain(now int64, max int) []Packet {
	cut := 0
	for cut < len(n.ring) && n.ring[cut].Arrival <= now {
		cut++
		if max > 0 && cut == max {
			break
		}
	}
	out := append([]Packet(nil), n.ring[:cut]...)
	n.ring = n.ring[:copy(n.ring, n.ring[cut:])]
	return out
}
