package netsim

import (
	"testing"

	"repro/internal/faults"
)

func TestLinkDelay(t *testing.T) {
	l := TenGbps()
	d := l.Delay(1000)
	// 1000 bytes at ~2.08 cy/B plus propagation.
	if d < 2000+PropagationCycles || d > 2200+PropagationCycles {
		t.Errorf("Delay(1000) = %d", d)
	}
	if l.Delay(0) != PropagationCycles {
		t.Errorf("zero-byte delay = %d, want propagation only", l.Delay(0))
	}
	if l.Delay(2000) <= l.Delay(1000) {
		t.Error("delay must grow with size")
	}
}

func TestNICPushDrainDrop(t *testing.T) {
	n := NewNIC(3)
	for i := 0; i < 3; i++ {
		if !n.Push(Packet{Arrival: int64(i), Conn: i}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if n.Push(Packet{Arrival: 9}) {
		t.Error("push into full ring accepted")
	}
	if n.Dropped != 1 || n.Received != 3 {
		t.Errorf("dropped=%d received=%d", n.Dropped, n.Received)
	}
	if n.Pending() != 3 {
		t.Errorf("pending = %d", n.Pending())
	}
	// Drain respects arrival times.
	got := n.Drain(1, 0)
	if len(got) != 2 || got[0].Conn != 0 || got[1].Conn != 1 {
		t.Errorf("Drain(1) = %+v", got)
	}
	if n.Pending() != 1 {
		t.Errorf("pending after drain = %d", n.Pending())
	}
	// Now there is room again.
	if !n.Push(Packet{Arrival: 5}) {
		t.Error("push after drain rejected")
	}
}

func TestNICDrainMax(t *testing.T) {
	n := NewNIC(10)
	for i := 0; i < 6; i++ {
		n.Push(Packet{Arrival: 0, Conn: i})
	}
	got := n.Drain(100, 4)
	if len(got) != 4 || got[3].Conn != 3 {
		t.Errorf("Drain max=4 returned %d packets", len(got))
	}
	got = n.Drain(100, 0)
	if len(got) != 2 || got[0].Conn != 4 {
		t.Errorf("second drain = %+v", got)
	}
}

func TestNICDrainPreservesFutureArrivals(t *testing.T) {
	n := NewNIC(10)
	n.Push(Packet{Arrival: 5})
	n.Push(Packet{Arrival: 50})
	got := n.Drain(10, 0)
	if len(got) != 1 {
		t.Fatalf("drained %d, want 1", len(got))
	}
	if n.Pending() != 1 {
		t.Errorf("future packet lost")
	}
}

func TestNICInjectedLossIsCountedSeparately(t *testing.T) {
	n := NewNIC(1000)
	n.Faults = faults.New(&faults.Plan{Seed: 5, DropProb: 0.5}, "net")
	pushes := 1000
	accepted := 0
	for i := 0; i < pushes; i++ {
		if n.Push(Packet{Arrival: int64(i)}) {
			accepted++
		}
	}
	if n.Lost == 0 {
		t.Fatal("no injected loss at p=0.5")
	}
	if n.Dropped != 0 {
		t.Errorf("injected loss misattributed to ring overflow: %d", n.Dropped)
	}
	// Conservation: every push is accounted for exactly once.
	if n.Received+n.Lost+n.Dropped != int64(pushes) {
		t.Errorf("conservation: received=%d lost=%d dropped=%d pushes=%d",
			n.Received, n.Lost, n.Dropped, pushes)
	}
	if int64(accepted) != n.Received {
		t.Errorf("accepted=%d received=%d", accepted, n.Received)
	}
}

func TestNICCorruptionDeliversMarkedPackets(t *testing.T) {
	n := NewNIC(100)
	n.Faults = faults.New(&faults.Plan{Seed: 9, CorruptProb: 1}, "net")
	for i := 0; i < 10; i++ {
		if !n.Push(Packet{Arrival: int64(i)}) {
			t.Fatal("corruption must not drop the packet")
		}
	}
	got := n.Drain(100, 0)
	if len(got) != 10 || n.Corrupted != 10 {
		t.Fatalf("delivered %d corrupted=%d", len(got), n.Corrupted)
	}
	for _, p := range got {
		if !p.Corrupt {
			t.Fatal("corrupted packet not marked")
		}
	}
}

// A reordered (delayed) packet must not block packets pushed after it:
// the ring stays sorted by visible arrival time.
func TestNICReorderDoesNotBlockLaterPackets(t *testing.T) {
	n := NewNIC(100)
	n.Faults = faults.New(&faults.Plan{Seed: 2, ReorderProb: 1, ReorderDelayCycles: 1 << 40}, "net")
	n.Push(Packet{Arrival: 10, Conn: 0}) // delayed far into the future
	n.Faults = nil
	n.Push(Packet{Arrival: 20, Conn: 1})
	got := n.Drain(1000, 0)
	if len(got) != 1 || got[0].Conn != 1 {
		t.Fatalf("Drain = %+v, want only the in-order packet", got)
	}
	if n.Pending() != 1 {
		t.Errorf("delayed packet lost")
	}
	if n.Reordered != 1 {
		t.Errorf("Reordered = %d", n.Reordered)
	}
}

func TestNICFaultsDeterministic(t *testing.T) {
	run := func() (int64, int64, int64) {
		n := NewNIC(50)
		n.Faults = faults.New(faults.Uniform(77, 0.2), "net")
		for i := 0; i < 500; i++ {
			n.Push(Packet{Arrival: int64(i)})
			n.Drain(int64(i), 4)
		}
		return n.Lost, n.Corrupted, n.Reordered
	}
	l1, c1, r1 := run()
	l2, c2, r2 := run()
	if l1 != l2 || c1 != c2 || r1 != r2 {
		t.Errorf("fault sequence not deterministic: %d/%d/%d vs %d/%d/%d", l1, c1, r1, l2, c2, r2)
	}
	if l1 == 0 || c1 == 0 || r1 == 0 {
		t.Errorf("expected all fault classes at rate 0.2: %d/%d/%d", l1, c1, r1)
	}
}
