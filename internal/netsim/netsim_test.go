package netsim

import "testing"

func TestLinkDelay(t *testing.T) {
	l := TenGbps()
	d := l.Delay(1000)
	// 1000 bytes at ~2.08 cy/B plus propagation.
	if d < 2000+PropagationCycles || d > 2200+PropagationCycles {
		t.Errorf("Delay(1000) = %d", d)
	}
	if l.Delay(0) != PropagationCycles {
		t.Errorf("zero-byte delay = %d, want propagation only", l.Delay(0))
	}
	if l.Delay(2000) <= l.Delay(1000) {
		t.Error("delay must grow with size")
	}
}

func TestNICPushDrainDrop(t *testing.T) {
	n := NewNIC(3)
	for i := 0; i < 3; i++ {
		if !n.Push(Packet{Arrival: int64(i), Conn: i}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if n.Push(Packet{Arrival: 9}) {
		t.Error("push into full ring accepted")
	}
	if n.Dropped != 1 || n.Received != 3 {
		t.Errorf("dropped=%d received=%d", n.Dropped, n.Received)
	}
	if n.Pending() != 3 {
		t.Errorf("pending = %d", n.Pending())
	}
	// Drain respects arrival times.
	got := n.Drain(1, 0)
	if len(got) != 2 || got[0].Conn != 0 || got[1].Conn != 1 {
		t.Errorf("Drain(1) = %+v", got)
	}
	if n.Pending() != 1 {
		t.Errorf("pending after drain = %d", n.Pending())
	}
	// Now there is room again.
	if !n.Push(Packet{Arrival: 5}) {
		t.Error("push after drain rejected")
	}
}

func TestNICDrainMax(t *testing.T) {
	n := NewNIC(10)
	for i := 0; i < 6; i++ {
		n.Push(Packet{Arrival: 0, Conn: i})
	}
	got := n.Drain(100, 4)
	if len(got) != 4 || got[3].Conn != 3 {
		t.Errorf("Drain max=4 returned %d packets", len(got))
	}
	got = n.Drain(100, 0)
	if len(got) != 2 || got[0].Conn != 4 {
		t.Errorf("second drain = %+v", got)
	}
}

func TestNICDrainPreservesFutureArrivals(t *testing.T) {
	n := NewNIC(10)
	n.Push(Packet{Arrival: 5})
	n.Push(Packet{Arrival: 50})
	got := n.Drain(10, 0)
	if len(got) != 1 {
		t.Fatalf("drained %d, want 1", len(got))
	}
	if n.Pending() != 1 {
		t.Errorf("future packet lost")
	}
}
