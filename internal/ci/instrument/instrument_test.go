package instrument

import (
	"testing"

	"repro/internal/ci/analysis"
	"repro/internal/ir"
)

const loopProgram = `
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %t = call @work(%i)
  %s = add %s, %t
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
func @work(%x) {
entry:
  %y = mul %x, 3
  %z = add %y, 7
  ret %z
}
`

func countProbes(m *ir.Module) (total int, byKind map[ir.ProbeKind]int) {
	byKind = make(map[ir.ProbeKind]int)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				if b.Instrs[i].Op == ir.OpProbe {
					total++
					byKind[b.Instrs[i].Probe.Kind]++
				}
			}
		}
	}
	return total, byKind
}

func instrumentSrc(t *testing.T, src string, d Design) (*ir.Module, *Result) {
	t.Helper()
	m := ir.MustParse(src)
	res, err := Instrument(m, Options{Design: d, Analysis: analysis.Options{ProbeInterval: 100}, DebugVerify: true})
	if err != nil {
		t.Fatalf("Instrument(%v): %v", d, err)
	}
	return m, res
}

func TestCIInsertsLoopProbe(t *testing.T) {
	m, res := instrumentSrc(t, loopProgram, CI)
	total, kinds := countProbes(m)
	if total != res.Probes {
		t.Errorf("Probes=%d but module has %d", res.Probes, total)
	}
	if total == 0 {
		t.Fatal("CI inserted no probes")
	}
	if kinds[ir.ProbeIRLoop] == 0 {
		t.Errorf("CI on a parametric loop should use a loop probe; kinds=%v\n%s", kinds, m)
	}
	if kinds[ir.ProbeCycles] != 0 || kinds[ir.ProbeEvent] != 0 {
		t.Errorf("CI must use pure-IR probes; kinds=%v", kinds)
	}
}

func TestCICyclesUsesCycleProbes(t *testing.T) {
	m, _ := instrumentSrc(t, loopProgram, CICycles)
	_, kinds := countProbes(m)
	if kinds[ir.ProbeIR] != 0 || kinds[ir.ProbeIRLoop] != 0 {
		t.Errorf("CI-Cycles must not use pure IR probes; kinds=%v", kinds)
	}
	if kinds[ir.ProbeCycles]+kinds[ir.ProbeCyclesLoop] == 0 {
		t.Error("CI-Cycles inserted no cycle probes")
	}
}

func TestNaiveProbesEveryBlock(t *testing.T) {
	m, res := instrumentSrc(t, loopProgram, Naive)
	blocks := 0
	for _, f := range m.Funcs {
		blocks += len(f.Blocks)
	}
	if res.Probes != blocks {
		t.Errorf("Naive probes = %d, blocks = %d", res.Probes, blocks)
	}
}

func TestCDRemovesSomeProbes(t *testing.T) {
	// Straight-line blocks outside loops can be balanced away; loop
	// bodies keep their probes (CD stays close to Naive dynamically).
	src := `
func @main(%n) {
entry:
  %a = add %n, 1
  jmp second
second:
  %b = mul %a, 2
  jmp third
third:
  %d = add %b, 3
  jmp head
head:
  %i = add %d, 0
  %c = lt %i, %n
  br %c, body, exit
body:
  %d = add %d, 1
  jmp head
exit:
  ret %d
}
`
	mN, resN := instrumentSrc(t, src, Naive)
	mCD, resCD := instrumentSrc(t, src, CD)
	if resCD.Probes >= resN.Probes {
		t.Errorf("CD probes (%d) should be fewer than Naive (%d)\nnaive:\n%s\ncd:\n%s",
			resCD.Probes, resN.Probes, mN, mCD)
	}
	if resCD.Probes == 0 {
		t.Error("CD removed every probe")
	}
	// Loop blocks must keep their probes under CD.
	for _, name := range []string{"head", "body"} {
		b := mCD.FuncByName("main").BlockByName(name)
		found := false
		for i := range b.Instrs {
			if b.Instrs[i].Op == ir.OpProbe {
				found = true
			}
		}
		if !found {
			t.Errorf("CD removed the probe from loop block %q", name)
		}
	}
}

func TestCIFewerProbesThanCD(t *testing.T) {
	_, resCI := instrumentSrc(t, loopProgram, CI)
	_, resCD := instrumentSrc(t, loopProgram, CD)
	// Static probe count: CI uses the loop transform so its probe count
	// is small; CD probes most blocks.
	if resCI.Probes > resCD.Probes {
		t.Errorf("CI static probes (%d) > CD (%d)", resCI.Probes, resCD.Probes)
	}
}

func TestCnBProbesCallsAndBackedges(t *testing.T) {
	m, res := instrumentSrc(t, loopProgram, CnB)
	// One call site in body + one latch (body) = 2 probes in main; work
	// has neither.
	if res.Probes != 2 {
		t.Errorf("CnB probes = %d, want 2\n%s", res.Probes, m)
	}
	_, kinds := countProbes(m)
	if kinds[ir.ProbeEvent] != 2 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestCnBCyclesKind(t *testing.T) {
	m, _ := instrumentSrc(t, loopProgram, CnBCycles)
	_, kinds := countProbes(m)
	if kinds[ir.ProbeEventCycles] == 0 || kinds[ir.ProbeEvent] != 0 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestNoInstrumentRespectedByAllDesigns(t *testing.T) {
	src := `
func @f(%n) noinstrument {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %t = call @f(%i)
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
	for _, d := range Designs {
		m := ir.MustParse(src)
		res, err := Instrument(m, Options{Design: d, Analysis: analysis.Options{ProbeInterval: 100}, DebugVerify: true})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if res.Probes != 0 {
			t.Errorf("%v instrumented a noinstrument function (%d probes)", d, res.Probes)
		}
	}
}

func TestAllDesignsVerify(t *testing.T) {
	for _, d := range Designs {
		m := ir.MustParse(loopProgram)
		if _, err := Instrument(m, Options{Design: d, Analysis: analysis.Options{ProbeInterval: 100}, DebugVerify: true}); err != nil {
			t.Errorf("%v: %v", d, err)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("%v output invalid: %v", d, err)
		}
	}
}

func TestStageHooksObservePipeline(t *testing.T) {
	m := ir.MustParse(loopProgram)
	var modStages, funcStages []string
	_, err := Instrument(m, Options{
		Design:      CI,
		Analysis:    analysis.Options{ProbeInterval: 100, StageHook: func(stage string, f *ir.Func) { funcStages = append(funcStages, stage) }},
		DebugVerify: true,
		StageHook:   func(stage string, mod *ir.Module) { modStages = append(modStages, stage) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(modStages) != 3 || modStages[0] != "input" || modStages[1] != "analysis" || modStages[2] != "probes" {
		t.Errorf("module stages = %v, want [input analysis probes]", modStages)
	}
	seen := map[string]bool{}
	for _, s := range funcStages {
		seen[s] = true
	}
	for _, want := range []string{"canonicalize", "loop-transform"} {
		if !seen[want] {
			t.Errorf("function stage %q never observed (got %v)", want, funcStages)
		}
	}
}

func TestDesignString(t *testing.T) {
	want := map[Design]string{CI: "CI", CICycles: "CI-Cycles", Naive: "Naive",
		NaiveCycles: "Naive-Cycles", CD: "CD", CnB: "CnB", CnBCycles: "CnB-Cycles"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d.String() = %q, want %q", d, d.String(), s)
		}
	}
}
