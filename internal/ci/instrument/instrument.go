// Package instrument implements the instrumentation phase (§4): it
// turns analysis marks — or simpler placement policies for the baseline
// designs of §5.4 — into probe instructions in the IR.
//
// Supported designs:
//
//	CI           the paper's static-analysis pass (pure IR probes)
//	CICycles     CI placement with IR-gated cycle-counter probes
//	Naive        a probe in every basic block
//	NaiveCycles  Naive placement with IR-gated cycle-counter probes
//	CD           Naive plus CoreDet-style balance optimizations
//	CnB          probes at all calls and back-edges (yield-point style)
//	CnBCycles    CnB with a cycle-counter read at every event
//	UserInterrupt  hardware user-level interrupts: no probes at all;
//	             the VM delivers asynchronously on a cycle cadence
package instrument

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/ci/analysis"
	"repro/internal/ir"
)

// Design selects the probe design.
type Design uint8

const (
	CI Design = iota
	CICycles
	Naive
	NaiveCycles
	CD
	CnB
	CnBCycles
	// UserInterrupt models hardware user-level interrupts (uintr): the
	// code carries no probe instructions; delivery is asynchronous on a
	// cycle cadence with a fixed latency cost, modeled by the VM
	// (vm.HWConfig with User set, costed by CostModel.UIntrCost /
	// UIntrLatency). It must stay last-declared so earlier design
	// values — which key compile caches and baseline cells — are stable.
	UserInterrupt
)

var designNames = [...]string{
	CI: "CI", CICycles: "CI-Cycles", Naive: "Naive",
	NaiveCycles: "Naive-Cycles", CD: "CD", CnB: "CnB",
	CnBCycles: "CnB-Cycles", UserInterrupt: "UIntr",
}

// String returns the paper's name for the design.
func (d Design) String() string {
	if int(d) < len(designNames) {
		return designNames[d]
	}
	return fmt.Sprintf("design(%d)", uint8(d))
}

// Designs lists all designs in the order the paper's plots use, with
// the post-paper uintr axis appended. Tables that iterate this list
// render new designs without per-command edits.
var Designs = []Design{CI, CICycles, CnB, CD, Naive, NaiveCycles, CnBCycles, UserInterrupt}

// Options configures instrumentation.
type Options struct {
	Design Design
	// Analysis configures the CI analysis (probe interval, allowable
	// error, extern heuristic). Its ExternCostIR also provides the
	// increment heuristic for the baseline designs.
	Analysis analysis.Options
	// DebugVerify re-runs ir.Verify after every internal stage — each
	// analysis-side function rewrite plus the module-level observation
	// points below — and fails Instrument at the first stage that leaves
	// the IR malformed, naming the stage.
	DebugVerify bool
	// StageHook, when non-nil, observes the whole module at each
	// module-level pipeline point: "input" (before any rewriting),
	// "analysis" (after Analyze's canonicalization and loop rewrites,
	// before probes; CI designs only) and "probes" (after probe
	// insertion). It must not mutate the module.
	StageHook ModStageHook
}

// ModStageHook observes the module after a named instrumentation stage.
type ModStageHook func(stage string, m *ir.Module)

// Result reports what instrumentation did.
type Result struct {
	Mod *ir.Module
	// Analysis holds the per-function analysis results (CI designs
	// only).
	Analysis *analysis.ModuleResult
	// Probes is the number of probe instructions inserted.
	Probes int
}

// Instrument adds probes of the configured design to m. It mutates m;
// clone first to keep an uninstrumented copy.
func Instrument(m *ir.Module, opts Options) (*Result, error) {
	res := &Result{Mod: m}
	var stageErr error
	observe := func(stage string) {
		if opts.DebugVerify && stageErr == nil {
			if err := m.Verify(); err != nil {
				stageErr = fmt.Errorf("instrument: stage %q left a malformed module: %w", stage, err)
			}
		}
		if opts.StageHook != nil {
			opts.StageHook(stage, m)
		}
	}
	if opts.DebugVerify {
		// Chain a per-function verifier ahead of any user hook so each
		// analysis-side rewrite is checked the moment it lands.
		user := opts.Analysis.StageHook
		opts.Analysis.StageHook = func(stage string, f *ir.Func) {
			if stageErr == nil {
				if err := f.Verify(); err != nil {
					stageErr = fmt.Errorf("instrument: analysis stage %q left @%s malformed: %w", stage, f.Name, err)
				}
			}
			if user != nil {
				user(stage, f)
			}
		}
	}
	observe("input")
	switch opts.Design {
	case CI, CICycles:
		res.Analysis = analysis.Analyze(m, opts.Analysis)
		observe("analysis")
		for _, f := range m.Funcs {
			fr := res.Analysis.Funcs[f.Name]
			if fr == nil {
				continue
			}
			res.Probes += applyMarks(f, fr.Marks, opts.Design == CICycles)
		}
	case Naive, NaiveCycles:
		res.Probes = instrumentEveryBlock(m, opts, opts.Design == NaiveCycles, false)
	case CD:
		res.Probes = instrumentEveryBlock(m, opts, false, true)
	case CnB, CnBCycles:
		res.Probes = instrumentCallsAndBackedges(m, opts.Design == CnBCycles)
	case UserInterrupt:
		// Hardware user-level interrupts need no probe instructions: the
		// module passes through untouched and the VM delivers on a cycle
		// cadence instead.
	default:
		return nil, fmt.Errorf("instrument: unknown design %d", opts.Design)
	}
	observe("probes")
	if stageErr != nil {
		return nil, stageErr
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("instrument: output does not verify: %w", err)
	}
	return res, nil
}

// applyMarks inserts probe instructions at the analysis marks. Marks in
// the same block are applied in descending index order so positions
// stay valid.
func applyMarks(f *ir.Func, marks []analysis.Mark, cycles bool) int {
	byBlock := make(map[*ir.Block][]analysis.Mark)
	for _, mk := range marks {
		byBlock[mk.Block] = append(byBlock[mk.Block], mk)
	}
	n := 0
	for b, ms := range byBlock {
		sort.SliceStable(ms, func(i, j int) bool { return ms[i].Index > ms[j].Index })
		for _, mk := range ms {
			kind := ir.ProbeIR
			switch {
			case mk.Loop && cycles:
				kind = ir.ProbeCyclesLoop
			case mk.Loop:
				kind = ir.ProbeIRLoop
			case cycles:
				kind = ir.ProbeCycles
			}
			pi := &ir.ProbeInfo{Kind: kind, Inc: mk.Inc, IndVar: mk.IndVar, Base: mk.Base}
			if !mk.Loop {
				pi.IndVar, pi.Base = ir.NoReg, ir.NoReg
			}
			in := ir.Instr{Op: ir.OpProbe, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Probe: pi}
			idx := mk.Index
			if idx > len(b.Instrs) {
				idx = len(b.Instrs)
			}
			b.Instrs = append(b.Instrs, ir.Instr{})
			copy(b.Instrs[idx+1:], b.Instrs[idx:])
			b.Instrs[idx] = in
			n++
		}
	}
	return n
}

// staticBlockCost is the increment a context-free design charges for a
// block: one per instruction (+ terminator), plus the extern heuristic
// for uninstrumented external calls.
func staticBlockCost(b *ir.Block, externCost int64) int64 {
	cost := int64(len(b.Instrs)) + 1
	for i := range b.Instrs {
		switch b.Instrs[i].Op {
		case ir.OpExtCall:
			cost += externCost
		case ir.OpProbe:
			cost--
		}
	}
	return cost
}

// instrumentEveryBlock implements Naive / Naive-Cycles / CD: one probe
// at the end of every basic block with the block's static cost. With
// coredet set, the CoreDet-style balance optimizations (§3.6) then
// remove probes whose cost can be pushed to, or absorbed from,
// neighbors.
func instrumentEveryBlock(m *ir.Module, opts Options, cycles, coredet bool) int {
	externCost := opts.Analysis.ExternCostIR
	if externCost <= 0 {
		externCost = 100
	}
	eps := opts.Analysis.AllowableError
	if eps <= 0 {
		eps = opts.Analysis.ProbeInterval
	}
	if eps <= 0 {
		eps = 1000
	}
	probes := 0
	for _, f := range m.Funcs {
		if f.NoInstrument {
			continue
		}
		f.Reindex()
		inc := make([]int64, len(f.Blocks))
		has := make([]bool, len(f.Blocks))
		for i, b := range f.Blocks {
			inc[i] = staticBlockCost(b, externCost)
			has[i] = true
		}
		if coredet {
			applyBalance(f, inc, has, eps)
		}
		kind := ir.ProbeIR
		if cycles {
			kind = ir.ProbeCycles
		}
		for i, b := range f.Blocks {
			if !has[i] {
				continue
			}
			pi := &ir.ProbeInfo{Kind: kind, Inc: inc[i], IndVar: ir.NoReg, Base: ir.NoReg}
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpProbe, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Probe: pi})
			probes++
		}
	}
	return probes
}

// applyBalance is the CoreDet-inspired optimization (§3.6): in reverse
// postorder, a block whose successors each have it as their only
// predecessor pushes its cost down and drops its own probe; a block
// whose predecessors all carry probes with costs within eps (and no
// back-edges) absorbs their mean and the predecessors drop theirs.
func applyBalance(f *ir.Func, inc []int64, has []bool, eps int64) {
	g := cfg.New(f)
	lf := cfg.FindLoops(g, cfg.Dominators(g))
	// Pass 1: push down, but never into or out of loop bodies —
	// CoreDet's balance cannot move counter updates across back edges,
	// which is why CD's *dynamic* probe count stays close to Naive's
	// on loop-dominated programs (the paper measures CD within ~1% of
	// Naive at one thread).
	for _, bi := range g.RPO {
		if !has[bi] || lf.InnermostAt[bi] != nil {
			continue
		}
		ok := len(g.Succs[bi]) > 0
		for _, s := range g.Succs[bi] {
			if len(g.Preds[s]) != 1 || s == bi || lf.InnermostAt[s] != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, s := range g.Succs[bi] {
			inc[s] += inc[bi]
		}
		has[bi] = false
	}
	// Pass 2: absorb predecessors (forward edges only).
	for _, bi := range g.RPO {
		preds := g.Preds[bi]
		if len(preds) < 2 {
			continue
		}
		ok := true
		var lo, hi, sum int64
		for k, p := range preds {
			if !has[p] || g.RPOIndex[p] >= g.RPOIndex[bi] || len(g.Succs[p]) != 1 {
				ok = false
				break
			}
			c := inc[p]
			if k == 0 {
				lo, hi = c, c
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
			sum += c
		}
		if !ok || hi-lo > eps {
			continue
		}
		for _, p := range preds {
			has[p] = false
		}
		inc[bi] += sum / int64(len(preds))
	}
}

// instrumentCallsAndBackedges implements CnB / CnB-Cycles: an event
// probe before every call instruction and at every back-edge source.
func instrumentCallsAndBackedges(m *ir.Module, cycles bool) int {
	kind := ir.ProbeEvent
	if cycles {
		kind = ir.ProbeEventCycles
	}
	probes := 0
	for _, f := range m.Funcs {
		if f.NoInstrument {
			continue
		}
		f.Reindex()
		g := cfg.New(f)
		dom := cfg.Dominators(g)
		lf := cfg.FindLoops(g, dom)
		latch := make(map[int]bool)
		for _, l := range lf.Loops {
			for _, t := range l.Latches {
				latch[t] = true
			}
		}
		for bi, b := range f.Blocks {
			var out []ir.Instr
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall || in.Op == ir.OpExtCall {
					out = append(out, ir.Instr{Op: ir.OpProbe, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg,
						Probe: &ir.ProbeInfo{Kind: kind, Inc: 1, IndVar: ir.NoReg, Base: ir.NoReg}})
					probes++
				}
				out = append(out, in)
			}
			if latch[bi] {
				out = append(out, ir.Instr{Op: ir.OpProbe, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg,
					Probe: &ir.ProbeInfo{Kind: kind, Inc: 1, IndVar: ir.NoReg, Base: ir.NoReg}})
				probes++
			}
			b.Instrs = out
		}
	}
	return probes
}
