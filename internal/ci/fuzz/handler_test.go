package fuzz

import (
	"testing"

	"repro/internal/ir"
)

// WithHandler must add a @handler that never writes below HandlerBase
// (benign by construction) and must not perturb the rest of the
// module: the same seed without the option generates byte-identical
// programs, which is what keeps the pinned fuzz regressions stable.

func TestWithHandlerGeneratesPrivateWriter(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		m := Generate(seed, Options{WithHandler: true})
		h := m.FuncByName("handler")
		if h == nil {
			t.Fatalf("seed %d: no handler function", seed)
		}
		if m.MemWords != HandlerBase+handlerWords {
			t.Fatalf("seed %d: MemWords = %d", seed, m.MemWords)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		writes, reads := 0, 0
		for _, blk := range h.Blocks {
			for i := range blk.Instrs {
				in := &blk.Instrs[i]
				switch in.Op {
				case ir.OpStore, ir.OpAtomicAdd:
					writes++
					// Handler writes use absolute constant addressing:
					// a Mov-defined base register plus offset. Walk back
					// to the defining Mov to check the region.
					base := movValue(h, in.A) + in.Imm
					if base < HandlerBase {
						t.Errorf("seed %d: handler writes shared word %d", seed, base)
					}
				case ir.OpLoad:
					reads++
				}
			}
		}
		if writes == 0 {
			t.Errorf("seed %d: handler never writes; not exercising the verifier", seed)
		}
		_ = reads // shared-region reads are optional per seed
	}
}

// movValue finds the constant a register was last Mov'd to within the
// function's single block (handlers are straight-line).
func movValue(f *ir.Func, r ir.Reg) int64 {
	var v int64 = -1 << 40
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if in.Op == ir.OpMov && in.Dst == r && in.BImm {
				v = in.Imm
			}
		}
	}
	return v
}

func TestWithHandlerDoesNotPerturbGeneration(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		plain := Generate(seed, Options{}).String()
		with := Generate(seed, Options{WithHandler: true})
		// Strip the handler and the widened memory: the remainder must
		// be byte-identical to the plain module.
		with.MemWords = 4096
		for i, f := range with.Funcs {
			if f.Name == "handler" {
				with.Funcs = append(with.Funcs[:i], with.Funcs[i+1:]...)
				break
			}
		}
		if got := with.String(); got != plain {
			t.Fatalf("seed %d: WithHandler perturbed base generation", seed)
		}
	}
}
