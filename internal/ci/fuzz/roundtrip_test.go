package fuzz

import (
	"fmt"
	"testing"

	"repro/internal/ci/analysis"
	"repro/internal/ci/instrument"
	"repro/internal/ir"
)

// roundTrip asserts parse(print(m)) reaches a textual fixpoint: the
// reparsed module prints identically, and one more cycle is stable.
func roundTrip(t *testing.T, label string, m *ir.Module) *ir.Module {
	t.Helper()
	text := m.String()
	back, err := ir.Parse(text)
	if err != nil {
		t.Fatalf("%s: reparse failed: %v\n%s", label, err, text)
	}
	if got := back.String(); got != text {
		t.Fatalf("%s: print/parse/print not a fixpoint\nfirst:\n%s\nsecond:\n%s", label, text, got)
	}
	return back
}

// Property: every fuzz-corpus program round-trips through the printer
// and parser — both bare and instrumented (probe instructions carry
// ProbeInfo payloads that must survive the textual form).
func TestParsePrintRoundTripOverCorpus(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := uint64(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := Generate(seed, Options{WithExterns: seed%3 == 0})
			back := roundTrip(t, "bare", src)
			if err := back.Verify(); err != nil {
				t.Fatalf("reparsed module does not verify: %v", err)
			}

			for _, d := range []instrument.Design{instrument.CI, instrument.CICycles, instrument.CD, instrument.CnB} {
				m := src.Clone()
				if _, err := instrument.Instrument(m, instrument.Options{
					Design:   d,
					Analysis: analysis.Options{ProbeInterval: 200},
				}); err != nil {
					t.Fatalf("%v: %v", d, err)
				}
				roundTrip(t, d.String(), m)
			}
		})
	}
}

// The round-trip is semantic, not just textual: a reparsed instrumented
// module must produce the same result as the module it was printed
// from. A printer that drops probe payloads would pass a bare text
// comparison of uninstrumented code but fail here.
func TestRoundTripPreservesSemantics(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		src := Generate(seed, Options{WithExterns: seed%2 == 0})
		m := src.Clone()
		if _, err := instrument.Instrument(m, instrument.Options{
			Design:   instrument.CI,
			Analysis: analysis.Options{ProbeInterval: 150},
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := runModule(t, m.Clone(), 4095)
		back, err := ir.Parse(m.String())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		if got := runModule(t, back, 4095); got != want {
			t.Errorf("seed %d: reparsed main(4095) = %d, want %d", seed, got, want)
		}
	}
}
