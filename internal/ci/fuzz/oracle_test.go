package fuzz

import (
	"fmt"
	"testing"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/sanitize"
)

// The fuzz harness's differential tests above compare return values;
// this wires in the full translation-validation oracle: stage-by-stage
// semantic checks during compilation plus store-stream/return/memory
// comparison of baseline vs instrumented execution.
func TestOracleValidatesGeneratedPrograms(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	designs := []instrument.Design{instrument.CI, instrument.CICycles, instrument.CD, instrument.CnB}
	for seed := 1; seed <= seeds; seed++ {
		seed := uint64(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := Generate(seed, Options{MaxDepth: 2, MaxStmts: 4, WithExterns: seed%3 == 0})
			eo := sanitize.ExecOptions{
				Args:        []int64{int64(seed % 4096)},
				LimitInstrs: 40_000_000,
			}
			for _, d := range designs {
				if _, err := sanitize.CompileChecked(src, core.Config{
					Design: d, ProbeIntervalIR: 200,
				}, sanitize.Options{Exec: true, ExecOptions: eo}); err != nil {
					t.Errorf("%v: %v", d, err)
				}
			}
		})
	}
}
