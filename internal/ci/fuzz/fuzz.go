// Package fuzz generates random—but always valid and terminating—IR
// programs for differential testing of the Compiler Interrupts
// pipeline: every instrumentation design must preserve a program's
// result, and the analysis must never produce IR that fails
// verification.
//
// Programs are built from a grammar of nested, terminating constructs
// (counted loops with constant/parameter/data-derived bounds, branches,
// calls, memory traffic) so generated code exercises the container
// rules, the loop transform, cloning and barrier handling.
package fuzz

import (
	"repro/internal/ir"
	"repro/internal/sim"
)

// Options bounds program generation.
type Options struct {
	// MaxDepth bounds construct nesting (default 3).
	MaxDepth int
	// MaxStmts bounds statements per block sequence (default 6).
	MaxStmts int
	// MaxFuncs bounds callee functions (default 3).
	MaxFuncs int
	// WithExterns permits uninstrumented external calls.
	WithExterns bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxDepth <= 0 {
		out.MaxDepth = 3
	}
	if out.MaxStmts <= 0 {
		out.MaxStmts = 6
	}
	if out.MaxFuncs <= 0 {
		out.MaxFuncs = 3
	}
	return out
}

type gen struct {
	rng  *sim.RNG
	opts Options
	m    *ir.Module
	// callables are functions generated so far (callable from later
	// ones without recursion).
	callables []string
}

// Generate builds a random module whose entry is `main(%n)`. The
// program always terminates: every loop has a bounded trip count.
func Generate(seed uint64, opts Options) *ir.Module {
	g := &gen{rng: sim.NewRNG(seed), opts: opts.withDefaults()}
	g.m = ir.NewModule("fuzz")
	g.m.MemWords = 4096
	if g.opts.WithExterns {
		g.m.DeclareExtern("ext", 50+g.rng.Intn(400))
	}
	nf := 1 + int(g.rng.Intn(int64(g.opts.MaxFuncs)))
	for i := 0; i < nf; i++ {
		g.genFunc(i)
	}
	g.genMain()
	if err := g.m.Verify(); err != nil {
		panic("fuzz: generated module invalid: " + err.Error())
	}
	return g.m
}

// genFunc creates helper function fi taking one parameter.
func (g *gen) genFunc(i int) {
	name := "f" + string(rune('a'+i))
	f := g.m.NewFunc(name, 1)
	b := ir.NewBuilder(f)
	acc := b.BinI(ir.OpAnd, 0, 1023)
	g.genBody(f, b, acc, 0, g.opts.MaxDepth-1)
	b.Ret(acc)
	f.Reindex()
	g.callables = append(g.callables, name)
}

func (g *gen) genMain() {
	f := g.m.NewFunc("main", 1)
	b := ir.NewBuilder(f)
	acc := b.BinI(ir.OpAnd, 0, 255)
	// Seed some memory so loads are meaningful.
	b.ConstLoop(64, func(i ir.Reg) {
		v := b.BinI(ir.OpMul, i, 37)
		addr := b.BinI(ir.OpAnd, v, 4095)
		b.Store(addr, 0, v)
	})
	g.genBody(f, b, acc, 0, g.opts.MaxDepth)
	b.Ret(acc)
	f.Reindex()
}

// genBody emits a random statement sequence mutating acc.
func (g *gen) genBody(f *ir.Func, b *ir.Builder, acc ir.Reg, depth, maxDepth int) {
	n := 1 + int(g.rng.Intn(int64(g.opts.MaxStmts)))
	for i := 0; i < n; i++ {
		g.genStmt(f, b, acc, depth, maxDepth)
	}
}

func (g *gen) genStmt(f *ir.Func, b *ir.Builder, acc ir.Reg, depth, maxDepth int) {
	choice := g.rng.Intn(10)
	switch {
	case choice < 3: // arithmetic
		ops := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpOr, ir.OpShr}
		op := ops[g.rng.Intn(int64(len(ops)))]
		imm := 1 + g.rng.Intn(100)
		if op == ir.OpShr {
			imm = g.rng.Intn(8)
		}
		b.BinToI(acc, op, acc, imm)
	case choice < 4: // memory
		addr := b.BinI(ir.OpAnd, acc, 4095)
		v := b.Load(addr, 0)
		b.BinTo(acc, ir.OpAdd, acc, v)
		b.Store(addr, 0, acc)
	case choice < 5 && len(g.callables) > 0: // call
		callee := g.callables[g.rng.Intn(int64(len(g.callables)))]
		arg := b.BinI(ir.OpAnd, acc, 511)
		r := b.Call(callee, arg)
		b.BinTo(acc, ir.OpXor, acc, r)
	case choice < 6 && g.opts.WithExterns: // external call
		r := b.ExtCall("ext", acc)
		b.BinTo(acc, ir.OpAdd, acc, r)
	case choice < 8 && depth < maxDepth: // branch
		cond := b.BinI(ir.OpAnd, acc, 1+g.rng.Intn(7))
		then := b.Block("f.then")
		els := b.Block("f.else")
		join := b.Block("f.join")
		b.Br(cond, then, els)
		b.SetBlock(then)
		g.genBody(f, b, acc, depth+1, maxDepth)
		b.Jmp(join)
		b.SetBlock(els)
		if g.rng.Intn(2) == 0 {
			g.genBody(f, b, acc, depth+1, maxDepth)
		} else {
			b.BinToI(acc, ir.OpAdd, acc, 1)
		}
		b.Jmp(join)
		b.SetBlock(join)
	case depth < maxDepth: // loop
		g.genLoop(f, b, acc, depth, maxDepth)
	default:
		b.BinToI(acc, ir.OpAdd, acc, 7)
	}
}

// genLoop emits a terminating loop with one of several bound styles:
// compile-time constant (big or small), the function parameter masked,
// or a data-derived runtime value.
func (g *gen) genLoop(f *ir.Func, b *ir.Builder, acc ir.Reg, depth, maxDepth int) {
	var bound ir.Reg
	switch g.rng.Intn(4) {
	case 0: // small constant: foldable
		bound = b.Mov(1 + g.rng.Intn(12))
	case 1: // big constant: needs the transform
		bound = b.Mov(200 + g.rng.Intn(2000))
	case 2: // parameter-derived
		bound = b.BinI(ir.OpAnd, 0, 255)
	default: // data-derived (unknown to the analysis)
		mask := b.BinI(ir.OpAnd, acc, 4095)
		v := b.Load(mask, 0)
		bound = b.BinI(ir.OpAnd, v, 127)
	}
	step := int64(1)
	if g.rng.Intn(3) == 0 {
		step = 1 + g.rng.Intn(4)
	}
	from := b.Mov(0)
	b.CountedLoop(from, bound, step, func(i ir.Reg) {
		if depth+1 < maxDepth && g.rng.Intn(3) == 0 {
			g.genBody(f, b, acc, depth+1, maxDepth)
		} else {
			b.BinTo(acc, ir.OpAdd, acc, i)
			b.BinToI(acc, ir.OpAnd, acc, (1<<40)-1)
		}
	})
}
