package fuzz

import (
	"fmt"
	"testing"

	"repro/internal/ci/analysis"
	"repro/internal/ci/ciruntime"
	"repro/internal/ci/instrument"
	"repro/internal/faults"
	"repro/internal/ir"
	"repro/internal/vm"
)

func runModule(t *testing.T, m *ir.Module, arg int64) int64 {
	t.Helper()
	machine := vm.New(m, nil, 1)
	machine.LimitInstrs = 80_000_000
	th := machine.NewThread(0)
	th.RT.RegisterCI(5000, func(uint64) {})
	rv, err := th.Run("main", arg)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, m)
	}
	return rv
}

func TestGenerateProducesValidPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		m := Generate(seed, Options{WithExterns: seed%2 == 0})
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.FuncByName("main") == nil {
			t.Fatalf("seed %d: no main", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, Options{})
	b := Generate(7, Options{})
	if a.String() != b.String() {
		t.Error("same seed produced different programs")
	}
}

// The tier-differential corpus is only as strong as the shapes the
// generator emits: every superinstruction class the compiled tier
// fuses (cmp+branch epilogues, load feeding arithmetic, arithmetic
// feeding a store) must actually appear in generated programs, or the
// tier oracle silently stops covering fusion.
func TestGenerateCoversFusiblePairs(t *testing.T) {
	var cmpBr, loadArith, arithStore, superRaw, superInstr int
	for seed := uint64(1); seed <= 60; seed++ {
		m := Generate(seed, Options{WithExterns: seed%5 == 0})
		cb, la, as := vm.FusiblePairs(m)
		cmpBr += cb
		loadArith += la
		arithStore += as
		superRaw += vm.Superblocks(m)
		// The differential oracle runs instrumented programs, so the
		// superblock loop path must also survive instrumentation (the
		// chunked inner loops the transform emits are its main target).
		im := m.Clone()
		if _, err := instrument.Instrument(im, instrument.Options{
			Design:   instrument.CI,
			Analysis: analysis.Options{ProbeInterval: 250},
		}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		superInstr += vm.Superblocks(im)
	}
	if cmpBr == 0 || loadArith == 0 || arithStore == 0 {
		t.Errorf("fusible pairs over the 60-seed corpus: cmp+br %d, load+arith %d, arith+store %d — every class must appear",
			cmpBr, loadArith, arithStore)
	}
	if superRaw == 0 || superInstr == 0 {
		t.Errorf("superblocks over the 60-seed corpus: raw %d, instrumented %d — the batched loop path must be exercised, not vacuously skipped",
			superRaw, superInstr)
	}
}

// Differential test: every instrumentation design preserves the result
// of randomly generated programs across several inputs. This is the
// broadest check on the loop transform (§3.4), cloning (§3.5) and
// probe-placement correctness.
func TestDifferentialSemanticPreservation(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := uint64(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := Generate(seed, Options{WithExterns: seed%3 == 0})
			args := []int64{0, 1, 17, 255, 10000}
			want := make([]int64, len(args))
			for i, a := range args {
				want[i] = runModule(t, src.Clone(), a)
			}
			for _, d := range instrument.Designs {
				for _, probeInterval := range []int64{60, 250, 2000} {
					m := src.Clone()
					if _, err := instrument.Instrument(m, instrument.Options{
						Design:   d,
						Analysis: analysis.Options{ProbeInterval: probeInterval},
					}); err != nil {
						t.Fatalf("%v/pi=%d: %v", d, probeInterval, err)
					}
					if err := m.Verify(); err != nil {
						t.Fatalf("%v/pi=%d: invalid IR: %v", d, probeInterval, err)
					}
					for i, a := range args {
						if got := runModule(t, m, a); got != want[i] {
							t.Errorf("%v/pi=%d: main(%d) = %d, want %d",
								d, probeInterval, a, got, want[i])
						}
					}
				}
			}
		})
	}
}

// The CI counter must stay within a bounded relative error of actual
// execution on random programs, not just the curated workloads.
func TestDifferentialCounterFidelity(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		m := Generate(seed, Options{})
		if _, err := instrument.Instrument(m, instrument.Options{
			Design:   instrument.CI,
			Analysis: analysis.Options{ProbeInterval: 250},
		}); err != nil {
			t.Fatal(err)
		}
		machine := vm.New(m, nil, 1)
		machine.LimitInstrs = 80_000_000
		th := machine.NewThread(0)
		th.RT.RegisterCI(5000, func(uint64) {})
		if _, err := th.Run("main", 4095); err != nil {
			t.Fatal(err)
		}
		if th.Stats.Instrs < 1000 {
			continue // too tiny to judge
		}
		expected := th.Stats.Instrs + 100*th.Stats.ExtCalls
		ratio := float64(th.RT.InsCount()) / float64(expected)
		if ratio < 0.55 || ratio > 1.6 {
			t.Errorf("seed %d: counted/expected = %.3f (instrs %d)", seed, ratio, th.Stats.Instrs)
		}
	}
}

// Ablation configurations must also preserve semantics.
func TestDifferentialAblations(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		src := Generate(seed, Options{})
		want := runModule(t, src.Clone(), 999)
		for _, opts := range []analysis.Options{
			{ProbeInterval: 250, DisableLoopTransform: true},
			{ProbeInterval: 250, DisableLoopClone: true},
			{ProbeInterval: 250, AllowableError: 10},
			{ProbeInterval: 5000},
		} {
			m := src.Clone()
			if _, err := instrument.Instrument(m, instrument.Options{
				Design: instrument.CI, Analysis: opts,
			}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if got := runModule(t, m, 999); got != want {
				t.Errorf("seed %d opts %+v: got %d want %d", seed, opts, got, want)
			}
		}
	}
}

// runModuleFaulty executes an instrumented module with a hostile CI
// handler: injected overrun and stall spikes bill extra cycles to the
// thread from inside interrupt context, and the runtime's adaptive
// interval machinery is armed so intervals move mid-run. None of that
// may change the program's result.
func runModuleFaulty(t *testing.T, m *ir.Module, arg int64, plan *faults.Plan) int64 {
	t.Helper()
	machine := vm.New(m, nil, 1)
	machine.LimitInstrs = 80_000_000
	th := machine.NewThread(0)
	inj := faults.New(plan, "fuzz/handler")
	ciid := th.RT.RegisterCI(5000, func(uint64) {
		th.Charge(inj.Overrun() + inj.Stall())
	})
	th.RT.SetAdaptive(ciid, ciruntime.AdaptiveConfig{})
	rv, err := th.Run("main", arg)
	if err != nil {
		t.Fatalf("faulty run: %v\n%s", err, m)
	}
	return rv
}

// faultPlans are the chaos schedules the differential fuzzer sweeps.
var faultPlans = []*faults.Plan{
	faults.Uniform(101, 0.01),
	{Seed: 102, OverrunProb: 0.5, OverrunCycles: 40_000},
	{Seed: 103, StallProb: 0.2, StallMeanCycles: 25_000},
}

// Differential fuzzing under fault plans: handler-side fault injection
// and adaptive-interval churn must preserve the semantics of every
// instrumentation design on randomly generated programs.
func TestDifferentialUnderFaultPlans(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 6
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := uint64(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := Generate(seed, Options{WithExterns: seed%2 == 0})
			want := runModule(t, src.Clone(), 4095)
			for _, d := range instrument.Designs {
				m := src.Clone()
				if _, err := instrument.Instrument(m, instrument.Options{
					Design:   d,
					Analysis: analysis.Options{ProbeInterval: 250},
				}); err != nil {
					t.Fatalf("%v: %v", d, err)
				}
				for pi, plan := range faultPlans {
					if got := runModuleFaulty(t, m.Clone(), 4095, plan); got != want {
						t.Errorf("%v/plan%d: main(4095) = %d, want %d", d, pi, got, want)
					}
				}
			}
		})
	}
}

// Crasher corpus from the fault-plan hunt (seeds 1..400 x every
// instrumentation design x faultPlans). The sweep surfaced no semantic
// divergence; the only instrumented-run failures were instruction-
// budget artifacts, and seed 202 was the boundary case at the time:
// its program ran within 2% of the harness's 80M budget, so the ~5%
// probe overhead pushed every CI design over the limit. The generator
// grammar has evolved since (superinstruction-pair statements), so the
// seed no longer maps to that exact program, but the case stays pinned
// by name with an adequate budget as a regression anchor.
func TestCrasherSeed202BudgetBoundary(t *testing.T) {
	src := Generate(202, Options{WithExterns: true})
	base := vm.New(src.Clone(), nil, 1)
	base.LimitInstrs = 200_000_000
	th := base.NewThread(0)
	th.RT.RegisterCI(5000, func(uint64) {})
	want, err := th.Run("main", 4095)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	for _, d := range instrument.Designs {
		m := src.Clone()
		if _, err := instrument.Instrument(m, instrument.Options{
			Design:   d,
			Analysis: analysis.Options{ProbeInterval: 250},
		}); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		for pi, plan := range faultPlans {
			mm := m.Clone()
			machine := vm.New(mm, nil, 1)
			machine.LimitInstrs = 200_000_000
			fth := machine.NewThread(0)
			inj := faults.New(plan, "fuzz/handler")
			ciid := fth.RT.RegisterCI(5000, func(uint64) {
				fth.Charge(inj.Overrun() + inj.Stall())
			})
			fth.RT.SetAdaptive(ciid, ciruntime.AdaptiveConfig{})
			got, err := fth.Run("main", 4095)
			if err != nil {
				t.Fatalf("%v/plan%d: %v", d, pi, err)
			}
			if got != want {
				t.Errorf("%v/plan%d: main(4095) = %d, want %d", d, pi, got, want)
			}
		}
	}
}
