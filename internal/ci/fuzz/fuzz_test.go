package fuzz

import (
	"fmt"
	"testing"

	"repro/internal/ci/analysis"
	"repro/internal/ci/instrument"
	"repro/internal/ir"
	"repro/internal/vm"
)

func runModule(t *testing.T, m *ir.Module, arg int64) int64 {
	t.Helper()
	machine := vm.New(m, nil, 1)
	machine.LimitInstrs = 80_000_000
	th := machine.NewThread(0)
	th.RT.RegisterCI(5000, func(uint64) {})
	rv, err := th.Run("main", arg)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, m)
	}
	return rv
}

func TestGenerateProducesValidPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		m := Generate(seed, Options{WithExterns: seed%2 == 0})
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.FuncByName("main") == nil {
			t.Fatalf("seed %d: no main", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, Options{})
	b := Generate(7, Options{})
	if a.String() != b.String() {
		t.Error("same seed produced different programs")
	}
}

// Differential test: every instrumentation design preserves the result
// of randomly generated programs across several inputs. This is the
// broadest check on the loop transform (§3.4), cloning (§3.5) and
// probe-placement correctness.
func TestDifferentialSemanticPreservation(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 10
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := uint64(seed)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			src := Generate(seed, Options{WithExterns: seed%3 == 0})
			args := []int64{0, 1, 17, 255, 10000}
			want := make([]int64, len(args))
			for i, a := range args {
				want[i] = runModule(t, src.Clone(), a)
			}
			for _, d := range instrument.Designs {
				for _, probeInterval := range []int64{60, 250, 2000} {
					m := src.Clone()
					if _, err := instrument.Instrument(m, instrument.Options{
						Design:   d,
						Analysis: analysis.Options{ProbeInterval: probeInterval},
					}); err != nil {
						t.Fatalf("%v/pi=%d: %v", d, probeInterval, err)
					}
					if err := m.Verify(); err != nil {
						t.Fatalf("%v/pi=%d: invalid IR: %v", d, probeInterval, err)
					}
					for i, a := range args {
						if got := runModule(t, m, a); got != want[i] {
							t.Errorf("%v/pi=%d: main(%d) = %d, want %d",
								d, probeInterval, a, got, want[i])
						}
					}
				}
			}
		})
	}
}

// The CI counter must stay within a bounded relative error of actual
// execution on random programs, not just the curated workloads.
func TestDifferentialCounterFidelity(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		m := Generate(seed, Options{})
		if _, err := instrument.Instrument(m, instrument.Options{
			Design:   instrument.CI,
			Analysis: analysis.Options{ProbeInterval: 250},
		}); err != nil {
			t.Fatal(err)
		}
		machine := vm.New(m, nil, 1)
		machine.LimitInstrs = 80_000_000
		th := machine.NewThread(0)
		th.RT.RegisterCI(5000, func(uint64) {})
		if _, err := th.Run("main", 4095); err != nil {
			t.Fatal(err)
		}
		if th.Stats.Instrs < 1000 {
			continue // too tiny to judge
		}
		expected := th.Stats.Instrs + 100*th.Stats.ExtCalls
		ratio := float64(th.RT.InsCount()) / float64(expected)
		if ratio < 0.55 || ratio > 1.6 {
			t.Errorf("seed %d: counted/expected = %.3f (instrs %d)", seed, ratio, th.Stats.Instrs)
		}
	}
}

// Ablation configurations must also preserve semantics.
func TestDifferentialAblations(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		src := Generate(seed, Options{})
		want := runModule(t, src.Clone(), 999)
		for _, opts := range []analysis.Options{
			{ProbeInterval: 250, DisableLoopTransform: true},
			{ProbeInterval: 250, DisableLoopClone: true},
			{ProbeInterval: 250, AllowableError: 10},
			{ProbeInterval: 5000},
		} {
			m := src.Clone()
			if _, err := instrument.Instrument(m, instrument.Options{
				Design: instrument.CI, Analysis: opts,
			}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if got := runModule(t, m, 999); got != want {
				t.Errorf("seed %d opts %+v: got %d want %d", seed, opts, got, want)
			}
		}
	}
}
