// Quantum policies: pluggable per-ciid interval control. The paper
// fixes one probe interval per run; LibPreemptible-style systems want
// the preemption quantum to adapt to the observed delivery error, per
// request class. QuantumPolicy is the seam: the runtime reports every
// inter-fire gap to the handler's installed policy and applies the
// interval the policy answers with. Policies are pure interval
// controllers — overrun counting, IR-gate recomputation and the
// first-fire skip stay in the runtime.

package ciruntime

import "repro/internal/stats"

// QuantumPolicy controls one handler's target interval. Reset is
// called when the policy is installed and whenever an external actor
// (an overload breaker, an app restart) snaps the handler back to its
// registered base interval; Observe is called once per fire (except
// the first, whose gap is meaningless) with the observed gap and the
// interval that was in force, and returns the interval to use next
// plus whether this fire classifies as a handler overrun.
//
// Policies must be deterministic: given the same Reset/Observe call
// sequence they must return the same intervals. The experiment engine
// relies on this for byte-identical reports at any worker count.
type QuantumPolicy interface {
	Reset(baseCycles int64)
	Observe(gapCycles, curCycles int64) (nextCycles int64, overrun bool)
}

// Fixed is the identity policy: the interval never moves and no fire
// is classified as an overrun. It exists so callers can thread "no
// adaptation" through the same plumbing as the adaptive policies.
type Fixed struct{}

// Reset implements QuantumPolicy.
func (Fixed) Reset(int64) {}

// Observe implements QuantumPolicy.
func (Fixed) Observe(_, cur int64) (int64, bool) { return cur, false }

// AIMD is the additive-increase/multiplicative-decrease controller
// that SetAdaptive historically hardwired: every overrun (a gap past
// OverrunFactor × the current interval) doubles the interval up to
// MaxBackoffMult × base, and TightenAfter consecutive on-time fires
// shrink it additively (base/8 per step) back toward base. Zero
// fields take the documented defaults; a positive OverrunFactor ≤ 1
// is honored (mtcp's strict "cost > interval" classification is
// factor 1), unlike the AdaptiveConfig bridge which maps ≤ 1 to 2
// for backward compatibility.
type AIMD struct {
	// OverrunFactor classifies a fire as an overrun when its gap
	// exceeds factor × the current interval (default 2).
	OverrunFactor float64
	// MaxBackoffMult caps the backed-off interval at mult × base
	// (default 8).
	MaxBackoffMult int64
	// TightenAfter is the number of consecutive on-time fires before
	// the interval re-tightens additively (default 4).
	TightenAfter int64

	base   int64
	streak int64
}

// Reset implements QuantumPolicy: rebase and clear the on-time streak.
func (p *AIMD) Reset(base int64) {
	p.base = base
	p.streak = 0
}

// Observe implements QuantumPolicy. The arithmetic is a field-for-field
// port of the pre-policy handlerState.adapt, so interval trajectories
// are bit-identical to the historical SetAdaptive implementation.
func (p *AIMD) Observe(gap, cur int64) (int64, bool) {
	factor := p.OverrunFactor
	if factor <= 0 {
		factor = 2
	}
	mult := p.MaxBackoffMult
	if mult < 1 {
		mult = 8
	}
	after := p.TightenAfter
	if after <= 0 {
		after = 4
	}
	if float64(gap) > factor*float64(cur) {
		p.streak = 0
		next := cur * 2
		if cap := p.base * mult; next > cap {
			next = cap
		}
		return next, true
	}
	p.streak++
	if p.streak >= after && cur > p.base {
		p.streak = 0
		next := cur - p.base/8
		if next < p.base {
			next = p.base
		}
		return next, false
	}
	return cur, false
}

// FeedbackPID defaults.
const (
	pidDefaultQuantile = 99.9
	pidDefaultGain     = 0.5
	pidDefaultIGain    = 0.1
	pidDefaultWindow   = 32
	pidDefaultMinFrac  = 0.25
)

// FeedbackPID is a feedback controller on the delivery-error tail:
// it accumulates observed inter-fire gaps into per-request-class
// log-scaled histograms (stats.LogHist, the same accumulator behind
// the obs interval-error metrics) and, once per Window observations,
// steers the interval so the worst class's Quantile of the gap lands
// on the registered base interval. Probe quantization and handler
// cost make delivery systematically late — the tail gap always sits
// above the target — so the controller converges below base, polling
// slightly more often to compensate exactly the measured lateness.
// That is what lets it beat a fixed interval on p99.9 gap error under
// mixed request classes: the fixed design eats the full lateness of
// the most expensive class, the controller subtracts it.
//
// The controller is a PI loop (Gain × error + IGain × ∑error) on the
// relative tail error (tailGap − base)/base, clamped to
// [MinFrac × base, MaxBackoffMult × base]. All state is self-contained
// and deterministic.
type FeedbackPID struct {
	// Quantile is the gap percentile steered onto the base interval,
	// in LogHist's 0..100 scale (default 99.9).
	Quantile float64
	// Gain and IGain are the proportional and integral coefficients
	// (defaults 0.5 and 0.1).
	Gain  float64
	IGain float64
	// Window is how many observations feed one control step
	// (default 32); each step drains the window histograms.
	Window int
	// MaxBackoffMult caps the interval at mult × base (default 8),
	// MinFrac floors it at frac × base (default 0.25).
	MaxBackoffMult int64
	MinFrac        float64
	// ClassOf, when non-nil, names the request class of the next
	// observation (small dense ints); each class gets its own window
	// histogram and the worst class drives the step. Nil means one
	// class.
	ClassOf func() int

	base     int64
	hists    []*stats.LogHist
	pending  int
	integral float64
	cur      float64 // continuous interval state, avoids quantization stalls
}

// Reset implements QuantumPolicy: rebase, drop window state and the
// integral term.
func (p *FeedbackPID) Reset(base int64) {
	p.base = base
	p.hists = nil
	p.pending = 0
	p.integral = 0
	p.cur = float64(base)
}

// Observe implements QuantumPolicy.
func (p *FeedbackPID) Observe(gap, cur int64) (int64, bool) {
	if p.base <= 0 { // installed without Reset; adopt the live interval
		p.Reset(cur)
	}
	// Overrun classification matches the AIMD default (gap > 2×cur) so
	// Overruns() stays meaningful across policies.
	overrun := float64(gap) > 2*float64(cur)

	class := 0
	if p.ClassOf != nil {
		class = p.ClassOf()
		if class < 0 {
			class = 0
		}
	}
	for len(p.hists) <= class {
		p.hists = append(p.hists, nil)
	}
	if p.hists[class] == nil {
		p.hists[class] = &stats.LogHist{}
	}
	p.hists[class].Add(gap)
	p.pending++

	window := p.Window
	if window <= 0 {
		window = pidDefaultWindow
	}
	if p.pending < window {
		return cur, overrun
	}
	p.pending = 0

	q := p.Quantile
	if q <= 0 {
		q = pidDefaultQuantile
	}
	// The worst class's tail gap drives the setpoint: adapting to the
	// mean would let one expensive class blow the shared thread's tail.
	var worst int64
	for _, h := range p.hists {
		if h == nil || h.N() == 0 {
			continue
		}
		if t := h.Quantile(q); t > worst {
			worst = t
		}
	}
	for i, h := range p.hists {
		if h != nil && h.N() > 0 {
			p.hists[i] = &stats.LogHist{}
		}
	}
	if worst == 0 {
		return cur, overrun
	}

	gain := p.Gain
	if gain <= 0 {
		gain = pidDefaultGain
	}
	igain := p.IGain
	if igain <= 0 {
		igain = pidDefaultIGain
	}
	err := (float64(worst) - float64(p.base)) / float64(p.base)
	p.integral += err
	ctrl := gain*err + igain*p.integral

	minFrac := p.MinFrac
	if minFrac <= 0 {
		minFrac = pidDefaultMinFrac
	}
	mult := p.MaxBackoffMult
	if mult < 1 {
		mult = 8
	}
	p.cur = float64(p.base) * (1 - ctrl)
	if floor := minFrac * float64(p.base); p.cur < floor {
		p.cur = floor
		// Anti-windup: the integral must not keep growing while the
		// actuator is pinned at the floor.
		p.integral -= err
	}
	if cap := float64(p.base * mult); p.cur > cap {
		p.cur = cap
		p.integral -= err
	}
	next := int64(p.cur)
	if next < 1 {
		next = 1
	}
	return next, overrun
}
