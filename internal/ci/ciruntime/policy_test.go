package ciruntime

import (
	"testing"

	"repro/internal/sim"
)

// legacyAdaptive is a verbatim port of the pre-QuantumPolicy
// handlerState.adapt arithmetic (the hardwired AIMD fields this PR
// replaced). The trajectory table test below proves the AIMD policy —
// and therefore the deprecated SetAdaptive wrapper, which constructs
// one from a defaulted AdaptiveConfig — reproduces it bit for bit.
type legacyAdaptive struct {
	cfg          AdaptiveConfig // already defaulted
	base, cur    int64
	onTimeStreak int64
}

func (l *legacyAdaptive) observe(gap int64) int64 {
	if float64(gap) > l.cfg.OverrunFactor*float64(l.cur) {
		l.onTimeStreak = 0
		next := l.cur * 2
		if cap := l.base * l.cfg.MaxBackoffMult; next > cap {
			next = cap
		}
		l.cur = next
		return l.cur
	}
	l.onTimeStreak++
	if l.onTimeStreak >= l.cfg.TightenAfter && l.cur > l.base {
		l.onTimeStreak = 0
		next := l.cur - l.base/8
		if next < l.base {
			next = l.base
		}
		l.cur = next
	}
	return l.cur
}

// Seeded gap corpus: a mix of on-time fires, mild lateness and hard
// overruns, scaled to the interval in force so both backoff and
// re-tightening paths are exercised.
func fuzzGaps(seed uint64, cur func() int64) func() int64 {
	rng := sim.NewRNG(seed)
	return func() int64 {
		c := cur()
		switch rng.Intn(4) {
		case 0:
			return c + rng.Intn(c/4+1) // on time
		case 1:
			return 2*c + rng.Intn(c+1) // borderline
		case 2:
			return 5 * c // hard overrun
		}
		return c/2 + rng.Intn(c+1) // early
	}
}

// Interval trajectories through the deprecated SetAdaptive wrapper
// must be bit-identical to the pre-policy implementation over the
// seeded fuzz corpus, for default and custom configurations.
func TestAIMDTrajectoryMatchesLegacyAdaptive(t *testing.T) {
	configs := []AdaptiveConfig{
		{}, // documented defaults
		{OverrunFactor: 1.5, MaxBackoffMult: 4, TightenAfter: 2},
		{OverrunFactor: 1, MaxBackoffMult: 16, TightenAfter: 8}, // factor ≤ 1 defaults to 2 via the bridge
		{OverrunFactor: 3},
		{MaxBackoffMult: 2, TightenAfter: 1},
	}
	const base = 1000
	for ci, cfg := range configs {
		for seed := uint64(1); seed <= 8; seed++ {
			legacy := &legacyAdaptive{cfg: cfg.withDefaults(), base: base, cur: base}

			rt := New()
			id := rt.RegisterCI(base, func(uint64) {})
			rt.SetAdaptive(id, cfg)
			now := int64(0)
			rt.ProbeIR(1<<30, now) // first fire: no meaningful gap

			next := fuzzGaps(seed, func() int64 { return rt.CurrentInterval(id) })
			for step := 0; step < 400; step++ {
				gap := next()
				now += gap
				rt.ProbeIR(1<<30, now)
				want := legacy.observe(gap)
				if got := rt.CurrentInterval(id); got != want {
					t.Fatalf("cfg %d seed %d step %d: interval %d, legacy %d (gap %d)",
						ci, seed, step, got, want, gap)
				}
			}
		}
	}
}

// Fixed is the identity policy: whatever the gaps, the interval stays
// put and nothing is classified as an overrun.
func TestFixedPolicyNeverMoves(t *testing.T) {
	rt := New()
	id := rt.RegisterCI(1000, func(uint64) {})
	rt.SetPolicy(id, Fixed{})
	now := int64(0)
	for i := 0; i < 20; i++ {
		now += 50_000
		rt.ProbeIR(1<<30, now)
	}
	if got := rt.CurrentInterval(id); got != 1000 {
		t.Errorf("Fixed policy moved the interval to %d", got)
	}
	if rt.Overruns(id) != 0 {
		t.Errorf("Fixed policy classified %d overruns", rt.Overruns(id))
	}
}

// The feedback controller must converge below base under systematic
// lateness (every gap overshoots the target by a constant handler
// cost), and must respect its floor.
func TestFeedbackPIDConvergesBelowBase(t *testing.T) {
	const base = 5000
	p := &FeedbackPID{}
	p.Reset(base)
	cur := int64(base)
	for i := 0; i < 20*32; i++ {
		gap := cur + 3000 // constant lateness
		next, _ := p.Observe(gap, cur)
		cur = next
	}
	if cur >= base {
		t.Errorf("interval %d did not converge below base %d under constant lateness", cur, base)
	}
	if floor := int64(0.25 * base); cur < floor {
		t.Errorf("interval %d fell through the MinFrac floor %d", cur, floor)
	}
}

// Two identical Observe sequences must produce identical trajectories
// — the determinism contract the experiment engine depends on.
func TestFeedbackPIDDeterministic(t *testing.T) {
	run := func() []int64 {
		p := &FeedbackPID{ClassOf: nil}
		p.Reset(5000)
		rng := sim.NewRNG(7)
		cur := int64(5000)
		var out []int64
		for i := 0; i < 500; i++ {
			gap := cur + rng.Intn(20000)
			next, _ := p.Observe(gap, cur)
			cur = next
			out = append(out, cur)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %d vs %d — FeedbackPID is not deterministic", i, a[i], b[i])
		}
	}
}

// The worst class's tail must drive the setpoint: a cheap majority
// class must not mask one expensive class.
func TestFeedbackPIDWorstClassDrives(t *testing.T) {
	const base = 5000
	trial := func(heavyLate int64) int64 {
		class := 0
		p := &FeedbackPID{ClassOf: func() int { return class }}
		p.Reset(base)
		cur := int64(base)
		for i := 0; i < 10*32; i++ {
			var gap int64
			if i%8 == 0 {
				class = 1
				gap = cur + heavyLate
			} else {
				class = 0
				gap = cur + 100
			}
			next, _ := p.Observe(gap, cur)
			cur = next
		}
		return cur
	}
	mild, heavy := trial(200), trial(20000)
	if heavy >= mild {
		t.Errorf("heavy-class interval %d not tighter than mild-class %d — worst class is not driving", heavy, mild)
	}
}

// ResetQuantum under an installed policy must snap the interval back
// to the registered base and rebase the policy, whatever regime the
// controller had learned.
func TestResetQuantumSnapsPolicyToBase(t *testing.T) {
	for _, mk := range []func() QuantumPolicy{
		func() QuantumPolicy { return &AIMD{} },
		func() QuantumPolicy { return &FeedbackPID{} },
	} {
		rt := New()
		id := rt.RegisterCI(1000, func(uint64) {})
		rt.SetPolicy(id, mk())
		now := int64(0)
		rt.ProbeIR(1<<30, now)
		for i := 0; i < 40*32; i++ {
			now += 5 * rt.CurrentInterval(id)
			rt.ProbeIR(1<<30, now)
		}
		if rt.CurrentInterval(id) == 1000 {
			t.Fatalf("%T: interval never moved; the reset below would prove nothing", rt.Policy(id))
		}
		rt.ResetQuantum(id)
		if got := rt.CurrentInterval(id); got != 1000 {
			t.Errorf("%T: interval %d after ResetQuantum, want base 1000", rt.Policy(id), got)
		}
		// The policy must be rebased too: an on-time fire right after
		// the reset must not re-apply the learned backoff.
		now += 1000
		rt.ProbeIR(1<<30, now)
		now += 1000
		rt.ProbeIR(1<<30, now)
		if got := rt.CurrentInterval(id); got > 2000 {
			t.Errorf("%T: interval %d right after reset — policy kept stale state", rt.Policy(id), got)
		}
	}
}

// SetPolicy(nil) removes adaptation but leaves the current interval in
// force.
func TestSetPolicyNilStopsAdaptation(t *testing.T) {
	rt := New()
	id := rt.RegisterCI(1000, func(uint64) {})
	rt.SetPolicy(id, &AIMD{})
	now := int64(0)
	rt.ProbeIR(1<<30, now)
	for i := 0; i < 3; i++ {
		now += 5 * rt.CurrentInterval(id)
		rt.ProbeIR(1<<30, now)
	}
	backed := rt.CurrentInterval(id)
	if backed == 1000 {
		t.Fatal("interval never backed off")
	}
	rt.SetPolicy(id, nil)
	for i := 0; i < 5; i++ {
		now += 10 * backed
		rt.ProbeIR(1<<30, now)
	}
	if got := rt.CurrentInterval(id); got != backed {
		t.Errorf("interval moved to %d after SetPolicy(nil), want frozen at %d", got, backed)
	}
}
