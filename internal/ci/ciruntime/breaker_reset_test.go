package ciruntime

// Regression test for the breaker→AIMD coupling: when an overload
// breaker trips, the AIMD backoff learned under the broken regime must
// not persist. ResetAdaptive snaps the interval back to the registered
// base so the half-open probes observe the handler at its design
// cadence, not the drowned one.

import (
	"testing"

	"repro/internal/overload"
)

func TestBreakerTripResetsAIMDInterval(t *testing.T) {
	rt := New()
	const base = 5000
	id := rt.RegisterCI(base, func(uint64) {})
	rt.SetAdaptive(id, AdaptiveConfig{})

	// Overrun-sized probe gaps back the interval off the base.
	now := int64(0)
	for i := 0; i < 40; i++ {
		now += 20_000
		rt.ProbeCycles(20_000, now)
	}
	backed := rt.CurrentInterval(id)
	if backed <= base {
		t.Fatalf("AIMD never backed off: interval %d, base %d", backed, base)
	}

	// An overload breaker whose trip hook resets the runtime's AIMD
	// state — the coupling the server apps wire up.
	var trips int
	ctl := overload.New(&overload.Config{
		Name:         "ciruntime-test",
		WindowCycles: 50_000,
		Breaker:      overload.BreakerConfig{MinSamples: 4, ErrFracTrip: 0.5},
		OnStateChange: func(from, to overload.State, at int64) {
			if to == overload.Open {
				trips++
				rt.ResetAdaptive(id)
			}
		},
	})
	for i := 0; i < 8; i++ {
		now += 10_000
		ctl.Observe(now, 1_000, true) // every request fails
		ctl.Poll(now, 0)
	}
	if ctl.BreakerState() != overload.Open {
		t.Fatalf("breaker never tripped (state %v)", ctl.BreakerState())
	}
	if trips == 0 {
		t.Fatal("OnStateChange never saw the trip")
	}
	if got := rt.CurrentInterval(id); got != base {
		t.Errorf("interval after trip = %d, want base %d", got, base)
	}
}

// ResetAdaptive must be a no-op for non-adaptive and unknown ciids.
func TestResetAdaptiveNoOpWithoutAdaptation(t *testing.T) {
	rt := New()
	id := rt.RegisterCI(5000, func(uint64) {})
	rt.ResetAdaptive(id)  // not adaptive
	rt.ResetAdaptive(999) // unknown
	if got := rt.CurrentInterval(id); got != 5000 {
		t.Errorf("interval moved: %d", got)
	}
}
