// Package ciruntime is the libci support library of §2: handler
// registration (Table 2), the probe decision logic of Table 3
// (call_handlers / update_nextint), nested disable/enable, and the
// single-handler fast path. One Runtime instance serves one thread —
// compiler-interrupt state is thread-local by design.
//
// The runtime is driven by probe callbacks (ProbeIR, ProbeCycles,
// ProbeEvent, ProbeEventCycles) that the VM invokes when it executes
// the corresponding probe instructions. "now" arguments are virtual
// cycle timestamps supplied by the caller.
package ciruntime

import "math"

// Handler is a Compiler Interrupt handler. It receives an approximation
// of the IR instructions executed since its previous invocation (for
// event-based designs, the event count).
type Handler func(irSinceLast uint64)

// DefaultIRPerCycle is the heuristic IR-to-cycle ratio of §4 (footnote
// 3): 4 LLVM IR per cycle.
const DefaultIRPerCycle = 4.0

const never = math.MaxInt64

type handlerState struct {
	id             int
	fn             Handler
	intervalCycles int64
	intervalIR     int64
	eventThreshold int64
	disable        int
	lastFireIR     int64
	lastFireCycles int64
	lastFireEvents int64
	fires          int64
	intervals      []int64
	// gone marks a handler deregistered while a probe sweep may still
	// hold a reference to it; fire paths skip it.
	gone bool
	// quantum-policy state (see SetPolicy).
	policy       QuantumPolicy
	baseInterval int64
	overruns     int64
}

// Runtime holds the per-thread Compiler Interrupt state.
type Runtime struct {
	// IRPerCycle converts registered cycle intervals into IR-count
	// thresholds. Defaults to DefaultIRPerCycle; may be tuned per
	// application from a profiling run.
	IRPerCycle float64
	// EventsPerInterval converts a cycle interval into an event
	// threshold for CnB designs; the default assumes ~20 IR between
	// consecutive calls/back-edges.
	EventsPerInterval func(intervalCycles int64) int64
	// RecordIntervals enables per-handler inter-fire gap recording (in
	// cycles), used by the accuracy experiments.
	RecordIntervals bool
	// OnFire, when non-nil, observes every handler invocation: handler
	// id, IR delta, and the gap in cycles since its previous fire.
	OnFire func(id int, irDelta uint64, gapCycles int64)

	inscount      int64
	events        int64
	lastNow       int64 // latest virtual-cycle timestamp seen by any probe
	nextIR        int64 // global gate for IR probes
	cycGateIR     int64 // IR gate for CI-Cycles probes
	globalDisable int
	nextID        int
	handlers      []*handlerState
	single        *handlerState // fast path when exactly one handler
}

// New returns an empty runtime with default tuning.
func New() *Runtime {
	rt := &Runtime{IRPerCycle: DefaultIRPerCycle}
	rt.EventsPerInterval = func(intervalCycles int64) int64 {
		n := int64(float64(intervalCycles) * rt.IRPerCycle / 20)
		if n < 1 {
			n = 1
		}
		return n
	}
	rt.nextIR = never
	rt.cycGateIR = never
	return rt
}

// RegisterCI registers fn to be called approximately every
// intervalCycles cycles and returns its ciid (§2, Table 2).
//
// All "since last fire" baselines start at registration time: the IR
// and event counters at their current values, and the cycle baseline
// at the latest probe timestamp the runtime has seen. The latter
// matters for Deregister + re-Register mid-run — without it a
// re-registered handler would inherit a stale zero baseline, fire
// immediately on the next cycle-based probe, and record a garbage
// first interval equal to absolute virtual time.
func (rt *Runtime) RegisterCI(intervalCycles int64, fn Handler) int {
	if intervalCycles <= 0 {
		intervalCycles = 1
	}
	rt.nextID++
	h := &handlerState{
		id:             rt.nextID,
		fn:             fn,
		intervalCycles: intervalCycles,
		intervalIR:     int64(float64(intervalCycles) * rt.IRPerCycle),
		eventThreshold: rt.EventsPerInterval(intervalCycles),
		lastFireIR:     rt.inscount,
		lastFireCycles: rt.lastNow,
		lastFireEvents: rt.events,
	}
	if h.intervalIR < 1 {
		h.intervalIR = 1
	}
	rt.handlers = append(rt.handlers, h)
	rt.refresh()
	return h.id
}

// Deregister removes the handler with the given ciid. Safe to call
// from inside a handler, including while other handlers of the same
// probe sweep are still pending: the removed handler is marked gone
// immediately (so it cannot fire later in the sweep) and the handler
// list is rebuilt into a fresh slice (so an in-flight iteration over
// the old list never observes compacted entries).
func (rt *Runtime) Deregister(ciid int) {
	out := make([]*handlerState, 0, len(rt.handlers))
	for _, h := range rt.handlers {
		if h.id != ciid {
			out = append(out, h)
		} else {
			h.gone = true
		}
	}
	rt.handlers = out
	rt.refresh()
}

// Disable increments the disable count for ciid; ciid 0 disables all
// handlers (§2.2). Disables nest: n Enable calls undo n Disable calls.
func (rt *Runtime) Disable(ciid int) {
	if ciid == 0 {
		rt.globalDisable++
		return
	}
	if h := rt.find(ciid); h != nil {
		h.disable++
	}
}

// Enable decrements the disable count for ciid (0 = the global count).
func (rt *Runtime) Enable(ciid int) {
	if ciid == 0 {
		if rt.globalDisable > 0 {
			rt.globalDisable--
		}
		return
	}
	if h := rt.find(ciid); h != nil && h.disable > 0 {
		h.disable--
	}
}

// Enabled reports whether the handler would currently fire.
func (rt *Runtime) Enabled(ciid int) bool {
	h := rt.find(ciid)
	return h != nil && h.disable == 0 && rt.globalDisable == 0
}

// AdaptiveConfig tunes the AIMD interval controller of SetAdaptive.
// Zero fields take the documented defaults.
type AdaptiveConfig struct {
	// OverrunFactor classifies a fire as a handler overrun when its
	// gap exceeds factor × the current interval (default 2): the
	// handler (or uninstrumented code it ran over) consumed so much of
	// the thread that the next interrupt could not arrive on time.
	OverrunFactor float64
	// MaxBackoffMult caps the backed-off interval at mult × the
	// registered interval (default 8).
	MaxBackoffMult int64
	// TightenAfter is the number of consecutive on-time fires before
	// the interval is re-tightened additively (default 4).
	TightenAfter int64
}

func (c *AdaptiveConfig) withDefaults() AdaptiveConfig {
	out := *c
	if out.OverrunFactor <= 1 {
		out.OverrunFactor = 2
	}
	if out.MaxBackoffMult < 1 {
		out.MaxBackoffMult = 8
	}
	if out.TightenAfter <= 0 {
		out.TightenAfter = 4
	}
	return out
}

// SetPolicy installs a quantum policy for ciid: from the next fire
// on, every observed inter-fire gap is reported to the policy and the
// interval it returns becomes the handler's target. The interval in
// force at installation time becomes the policy's base (the value
// ResetQuantum snaps back to). A nil policy removes adaptation,
// leaving the current interval in place.
func (rt *Runtime) SetPolicy(ciid int, p QuantumPolicy) {
	if h := rt.find(ciid); h != nil {
		h.policy = p
		h.baseInterval = h.intervalCycles
		if p != nil {
			p.Reset(h.baseInterval)
		}
	}
}

// Policy returns the quantum policy installed for ciid (nil when the
// handler is fixed-interval or unknown).
func (rt *Runtime) Policy(ciid int) QuantumPolicy {
	if h := rt.find(ciid); h != nil {
		return h.policy
	}
	return nil
}

// SetAdaptive enables AIMD interval adaptation for ciid: every
// overrun (a fire arriving past OverrunFactor × the current interval)
// doubles the interval up to the cap — backing the polling rate off a
// thread that cannot keep up — and TightenAfter consecutive on-time
// fires shrink it additively back toward the registered interval.
// This is the graceful-degradation path for handler overruns: the
// system trades polling frequency for forward progress instead of
// letting the handler consume the whole thread.
//
// Deprecated: SetAdaptive is the pre-QuantumPolicy surface, kept as a
// thin wrapper over SetPolicy(ciid, &AIMD{...}) with bit-identical
// interval trajectories. New code should install an AIMD policy (or
// any other QuantumPolicy) directly.
func (rt *Runtime) SetAdaptive(ciid int, cfg AdaptiveConfig) {
	cfg = cfg.withDefaults()
	rt.SetPolicy(ciid, &AIMD{
		OverrunFactor:  cfg.OverrunFactor,
		MaxBackoffMult: cfg.MaxBackoffMult,
		TightenAfter:   cfg.TightenAfter,
	})
}

// Overruns returns how many fires of ciid were classified as handler
// overruns (0 unless a quantum policy is installed).
func (rt *Runtime) Overruns(ciid int) int64 {
	if h := rt.find(ciid); h != nil {
		return h.overruns
	}
	return 0
}

// CurrentInterval returns the handler's present target interval in
// cycles — the registered value unless a quantum policy has moved it.
func (rt *Runtime) CurrentInterval(ciid int) int64 {
	if h := rt.find(ciid); h != nil {
		return h.intervalCycles
	}
	return 0
}

// ResetQuantum snaps ciid back to the base interval the policy was
// installed over and resets the policy's internal state. Overload
// breakers call this when they trip: the backoff the controller
// learned while the handler was drowning describes the broken regime,
// and carrying it into recovery would leave the thread polling too
// slowly exactly when the half-open probes need a fresh view. A no-op
// for handlers without a policy.
func (rt *Runtime) ResetQuantum(ciid int) {
	if h := rt.find(ciid); h != nil && h.policy != nil {
		h.policy.Reset(h.baseInterval)
		h.setInterval(h.baseInterval, rt.IRPerCycle)
		rt.refresh()
	}
}

// ResetAdaptive snaps ciid's adaptive state back to the registered
// base interval.
//
// Deprecated: ResetAdaptive is the pre-QuantumPolicy name for
// ResetQuantum and behaves identically.
func (rt *Runtime) ResetAdaptive(ciid int) { rt.ResetQuantum(ciid) }

// adapt feeds one observed inter-fire gap to the installed policy and
// applies the interval it answers with.
func (h *handlerState) adapt(gap int64, irPerCycle float64) {
	if h.policy == nil || h.fires <= 1 { // first fire has no meaningful gap
		return
	}
	next, overrun := h.policy.Observe(gap, h.intervalCycles)
	if overrun {
		h.overruns++
	}
	if next != h.intervalCycles {
		h.setInterval(next, irPerCycle)
	}
}

// setInterval moves the handler's target interval, keeping the IR
// threshold in step.
func (h *handlerState) setInterval(intervalCycles int64, irPerCycle float64) {
	if intervalCycles < 1 {
		intervalCycles = 1
	}
	h.intervalCycles = intervalCycles
	h.intervalIR = int64(float64(intervalCycles) * irPerCycle)
	if h.intervalIR < 1 {
		h.intervalIR = 1
	}
}

// InsCount returns the thread's current instruction counter.
func (rt *Runtime) InsCount() int64 { return rt.inscount }

// Fires returns how many times the handler has been invoked.
func (rt *Runtime) Fires(ciid int) int64 {
	if h := rt.find(ciid); h != nil {
		return h.fires
	}
	return 0
}

// Intervals returns the recorded inter-fire gaps (cycles) for ciid;
// empty unless RecordIntervals was set before the run.
func (rt *Runtime) Intervals(ciid int) []int64 {
	if h := rt.find(ciid); h != nil {
		return h.intervals
	}
	return nil
}

func (rt *Runtime) find(ciid int) *handlerState {
	if rt.single != nil && rt.single.id == ciid {
		return rt.single
	}
	for _, h := range rt.handlers {
		if h.id == ciid {
			return h
		}
	}
	return nil
}

// refresh recomputes the fast path and the global IR gate
// (update_nextint in Table 3).
func (rt *Runtime) refresh() {
	rt.single = nil
	if len(rt.handlers) == 1 {
		rt.single = rt.handlers[0]
	}
	next := int64(never)
	for _, h := range rt.handlers {
		if n := h.lastFireIR + h.intervalIR; n < next {
			next = n
		}
	}
	rt.nextIR = next
	if rt.cycGateIR == never && len(rt.handlers) > 0 {
		rt.cycGateIR = rt.inscount
	}
	if len(rt.handlers) == 0 {
		rt.cycGateIR = never
	}
}

// fire invokes a handler, disabling it for the duration of its own
// execution (§2.2), and updates its bookkeeping.
func (rt *Runtime) fire(h *handlerState, now int64) {
	delta := rt.inscount - h.lastFireIR
	gap := now - h.lastFireCycles
	h.lastFireIR = rt.inscount
	h.lastFireCycles = now
	h.lastFireEvents = rt.events
	h.fires++
	h.adapt(gap, rt.IRPerCycle)
	if rt.RecordIntervals {
		h.intervals = append(h.intervals, gap)
	}
	if rt.OnFire != nil {
		rt.OnFire(h.id, uint64(delta), gap)
	}
	h.disable++
	h.fn(uint64(delta))
	h.disable--
}

// FireAll fires every handler that is currently eligible (registered,
// not deregistered, not disabled individually or globally), regardless
// of cadence state — the forced-delivery primitive behind the VM's
// OnProbe schedule driver. Baselines update exactly as for a cadence
// fire, so a forced fire resets the handler's "since last" deltas and
// records an interval like any other. Returns how many handlers fired;
// 0 when delivery is infeasible at this point (e.g. inside a
// ci_disable region), which is what makes disabled regions invisible
// to the interleaving explorer's site enumeration.
func (rt *Runtime) FireAll(now int64) int {
	rt.lastNow = now
	if rt.globalDisable != 0 {
		return 0
	}
	fired := 0
	for _, h := range rt.handlers {
		if h.disable == 0 && !h.gone {
			rt.fire(h, now)
			fired++
		}
	}
	if fired > 0 {
		rt.refresh()
	}
	return fired
}

// CanFire reports whether FireAll would deliver at least one handler
// right now — the feasibility predicate for forced-fire sites.
func (rt *Runtime) CanFire() bool {
	if rt.globalDisable != 0 {
		return false
	}
	for _, h := range rt.handlers {
		if h.disable == 0 && !h.gone {
			return true
		}
	}
	return false
}

// ProbeIR is the pure-IR probe of Table 3: advance the counter by inc
// and fire any handlers that are due. Returns the number of handlers
// fired.
func (rt *Runtime) ProbeIR(inc int64, now int64) int {
	if !rt.ProbeIRDue(inc, now) {
		return 0
	}
	return rt.FireDueIR(now)
}

// ProbeIRDue is the untaken-probe fast path of ProbeIR, split out so a
// compiled dispatch loop can inline it: advance the IR counter, stamp
// the clock, and report whether the global gate passed. When it
// returns true the caller must invoke FireDueIR to run the taken half
// (fire sweep + gate recomputation); calling ProbeIRDue alone on a due
// probe would leave the gate stale.
func (rt *Runtime) ProbeIRDue(inc int64, now int64) bool {
	rt.inscount += inc
	rt.lastNow = now
	return rt.inscount > rt.nextIR
}

// FireDueIR is the taken half of ProbeIR: fire every handler whose IR
// interval elapsed and recompute the global gate. The gate refresh runs
// even when nothing fires (disabled handlers, global disable) — that is
// what re-arms nextIR after a gate passage, exactly as ProbeIR always
// did.
func (rt *Runtime) FireDueIR(now int64) int {
	fired := 0
	if rt.globalDisable == 0 {
		if h := rt.single; h != nil { // fast path (footnote 1)
			if h.disable == 0 && !h.gone && rt.inscount-h.lastFireIR >= h.intervalIR {
				rt.fire(h, now)
				fired = 1
			}
		} else {
			for _, h := range rt.handlers {
				if h.disable == 0 && !h.gone && rt.inscount-h.lastFireIR >= h.intervalIR {
					rt.fire(h, now)
					fired++
				}
			}
		}
	}
	rt.refresh()
	return fired
}

// ProbeCycles is the CI-Cycles probe (§4): the IR count gates a cycle
// counter read; the handler fires only when the measured cycle interval
// has elapsed. Returns how many cycle-counter reads were performed and
// how many handlers fired (for VM cost accounting).
func (rt *Runtime) ProbeCycles(inc int64, now int64) (reads, fired int) {
	if !rt.ProbeCyclesDue(inc, now) {
		return 0, 0
	}
	return rt.FireDueCycles(now)
}

// ProbeCyclesDue is the untaken fast path of ProbeCycles: advance the
// IR counter, stamp the clock, and report whether the IR gate for the
// next cycle-counter read passed. On true the caller must invoke
// FireDueCycles for the taken half.
func (rt *Runtime) ProbeCyclesDue(inc int64, now int64) bool {
	rt.inscount += inc
	rt.lastNow = now
	return rt.inscount >= rt.cycGateIR
}

// FireDueCycles is the taken half of ProbeCycles: perform the cycle
// read, fire handlers past their cycle interval, and re-aim the IR gate
// at roughly half the minimum remaining interval.
func (rt *Runtime) FireDueCycles(now int64) (reads, fired int) {
	reads = 1
	minRemaining := int64(never)
	if rt.globalDisable == 0 {
		for _, h := range rt.handlers {
			if h.disable != 0 || h.gone {
				continue
			}
			elapsed := now - h.lastFireCycles
			if elapsed >= h.intervalCycles {
				rt.fire(h, now)
				fired++
				if h.intervalCycles < minRemaining {
					minRemaining = h.intervalCycles
				}
			} else if rem := h.intervalCycles - elapsed; rem < minRemaining {
				minRemaining = rem
			}
		}
	} else {
		for _, h := range rt.handlers {
			if h.intervalCycles < minRemaining {
				minRemaining = h.intervalCycles
			}
		}
	}
	// Check again after roughly half the remaining time, in IR.
	if minRemaining == never {
		rt.cycGateIR = never
	} else {
		step := int64(float64(minRemaining) * rt.IRPerCycle / 2)
		if step < 1 {
			step = 1
		}
		rt.cycGateIR = rt.inscount + step
	}
	rt.refresh()
	return reads, fired
}

// ProbeEvent is the CnB probe: count one event (a call or back-edge)
// and fire handlers whose event threshold has been reached.
func (rt *Runtime) ProbeEvent(weight int64, now int64) int {
	rt.events += weight
	rt.inscount += weight
	rt.lastNow = now
	fired := 0
	if rt.globalDisable != 0 {
		return 0
	}
	for _, h := range rt.handlers {
		if h.disable == 0 && !h.gone && rt.events-h.lastFireEvents >= h.eventThreshold {
			rt.fire(h, now)
			fired++
		}
	}
	return fired
}

// ProbeEventCycles is the CnB-Cycles probe: read the cycle counter on
// every event and fire handlers past their cycle interval.
func (rt *Runtime) ProbeEventCycles(now int64) (reads, fired int) {
	rt.events++
	rt.inscount++
	rt.lastNow = now
	reads = 1
	if rt.globalDisable != 0 {
		return reads, 0
	}
	for _, h := range rt.handlers {
		if h.disable == 0 && !h.gone && now-h.lastFireCycles >= h.intervalCycles {
			rt.fire(h, now)
			fired++
		}
	}
	return reads, fired
}
