package ciruntime

import "testing"

func TestRegisterAndFireIR(t *testing.T) {
	rt := New()
	var calls []uint64
	id := rt.RegisterCI(100, func(d uint64) { calls = append(calls, d) }) // 400 IR at 4 IR/cy
	if id == 0 {
		t.Fatal("ciid must be nonzero")
	}
	now := int64(0)
	// 10 probes of 100 IR each: expect fires at >400 IR boundaries.
	for i := 0; i < 10; i++ {
		now += 25
		rt.ProbeIR(100, now)
	}
	if len(calls) != 2 {
		t.Fatalf("fires = %d, want 2 (1000 IR / 400 IR-interval, firing past the threshold)", len(calls))
	}
	for _, d := range calls {
		if d < 400 || d > 600 {
			t.Errorf("handler delta = %d, want ~500", d)
		}
	}
	if rt.Fires(id) != 2 {
		t.Errorf("Fires = %d", rt.Fires(id))
	}
}

func TestSingleHandlerFastPathMatchesSlowPath(t *testing.T) {
	run := func(extra bool) int64 {
		rt := New()
		var fires int64
		rt.RegisterCI(50, func(uint64) { fires++ })
		if extra {
			// Second handler with a huge interval forces the slow path
			// without contributing fires.
			rt.RegisterCI(1<<40, func(uint64) { t.Error("huge-interval handler fired") })
		}
		for i := 0; i < 1000; i++ {
			rt.ProbeIR(10, int64(i))
		}
		return fires
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("fast path fires %d, slow path %d", a, b)
	}
}

func TestDisableEnableNesting(t *testing.T) {
	rt := New()
	fires := 0
	id := rt.RegisterCI(10, func(uint64) { fires++ })
	rt.Disable(id)
	rt.Disable(id)
	for i := 0; i < 100; i++ {
		rt.ProbeIR(100, int64(i))
	}
	if fires != 0 {
		t.Fatalf("disabled handler fired %d times", fires)
	}
	rt.Enable(id)
	rt.ProbeIR(100, 1000)
	if fires != 0 {
		t.Fatal("handler fired with one of two disables still active")
	}
	if rt.Enabled(id) {
		t.Error("Enabled should be false")
	}
	rt.Enable(id)
	rt.ProbeIR(100, 1001)
	if fires != 1 {
		t.Fatalf("fires = %d after full enable, want 1", fires)
	}
}

func TestGlobalDisable(t *testing.T) {
	rt := New()
	fires := 0
	rt.RegisterCI(10, func(uint64) { fires++ })
	rt.Disable(0)
	for i := 0; i < 10; i++ {
		rt.ProbeIR(1000, int64(i))
	}
	if fires != 0 {
		t.Fatal("global disable ignored")
	}
	rt.Enable(0)
	rt.ProbeIR(1000, 100)
	if fires != 1 {
		t.Fatalf("fires = %d after global enable", fires)
	}
}

func TestDeregister(t *testing.T) {
	rt := New()
	fires := 0
	id := rt.RegisterCI(10, func(uint64) { fires++ })
	rt.ProbeIR(1000, 1)
	rt.Deregister(id)
	before := fires
	rt.ProbeIR(1000, 2)
	rt.ProbeIR(1000, 3)
	if fires != before {
		t.Errorf("deregistered handler fired")
	}
}

func TestHandlerSelfDisabledDuringExecution(t *testing.T) {
	rt := New()
	depth, maxDepth := 0, 0
	rt.RegisterCI(1, func(uint64) {
		depth++
		if depth > maxDepth {
			maxDepth = depth
		}
		// A probe from "inside" the handler must not re-enter.
		rt.ProbeIR(10000, 99)
		depth--
	})
	rt.ProbeIR(10000, 1)
	if maxDepth != 1 {
		t.Errorf("handler re-entered: depth %d", maxDepth)
	}
}

func TestMultipleHandlersDifferentIntervals(t *testing.T) {
	rt := New()
	var fast, slow int
	rt.RegisterCI(100, func(uint64) { fast++ })  // 400 IR
	rt.RegisterCI(1000, func(uint64) { slow++ }) // 4000 IR
	now := int64(0)
	for i := 0; i < 400; i++ {
		now += 25
		rt.ProbeIR(100, now)
	}
	// 40000 IR total: fast ≈ 40000/400 = 100 (minus rounding), slow ≈ 10.
	if fast < 60 || fast > 100 {
		t.Errorf("fast fires = %d, want ~80-100", fast)
	}
	if slow < 7 || slow > 10 {
		t.Errorf("slow fires = %d, want ~9-10", slow)
	}
	if fast < 5*slow {
		t.Errorf("fast (%d) should fire ~10x slow (%d)", fast, slow)
	}
}

func TestProbeCyclesFiresOnElapsedCycles(t *testing.T) {
	rt := New()
	fires := 0
	rt.RecordIntervals = true
	id := rt.RegisterCI(1000, func(uint64) { fires++ })
	now := int64(0)
	reads := 0
	// IR advances much faster than the IR/cycle heuristic predicts
	// (e.g. stalls): pure IR would fire early; CI-Cycles must not.
	for i := 0; i < 1000; i++ {
		now += 10 // 10 cycles per 100 IR: "slow" code
		r, _ := rt.ProbeCycles(100, now)
		reads += r
	}
	if fires != 10 {
		t.Errorf("fires = %d, want 10 (10000 cycles / 1000)", fires)
	}
	if reads == 0 || reads == 1000 {
		t.Errorf("cycle reads = %d; the IR gate should skip most probes but not all", reads)
	}
	for _, gap := range rt.Intervals(id) {
		if gap < 1000 {
			t.Errorf("CI-Cycles fired early: gap %d < 1000", gap)
		}
	}
}

func TestProbeEventThreshold(t *testing.T) {
	rt := New()
	fires := 0
	rt.EventsPerInterval = func(int64) int64 { return 5 }
	rt.RegisterCI(1000, func(uint64) { fires++ })
	for i := 0; i < 23; i++ {
		rt.ProbeEvent(1, int64(i))
	}
	if fires != 4 {
		t.Errorf("fires = %d, want 4 (23 events / threshold 5)", fires)
	}
}

func TestProbeEventCycles(t *testing.T) {
	rt := New()
	fires := 0
	rt.RegisterCI(100, func(uint64) { fires++ })
	now := int64(0)
	totalReads := 0
	for i := 0; i < 50; i++ {
		now += 30
		r, _ := rt.ProbeEventCycles(now)
		totalReads += r
	}
	if totalReads != 50 {
		t.Errorf("CnB-Cycles must read the counter on every event; reads = %d", totalReads)
	}
	// Events land every 30 cycles, so fires happen every ceil(100/30)=4
	// events = 120 cycles: 1500/120 = 12.
	if fires < 11 || fires > 15 {
		t.Errorf("fires = %d, want ~12", fires)
	}
}

func TestIntervalsRecorded(t *testing.T) {
	rt := New()
	rt.RecordIntervals = true
	id := rt.RegisterCI(25, func(uint64) {})
	now := int64(0)
	for i := 0; i < 100; i++ {
		now += 25
		rt.ProbeIR(100, now)
	}
	ivs := rt.Intervals(id)
	if len(ivs) == 0 {
		t.Fatal("no intervals recorded")
	}
	for _, g := range ivs[1:] {
		if g <= 0 {
			t.Errorf("non-positive gap %d", g)
		}
	}
}

func TestOnFireHook(t *testing.T) {
	rt := New()
	var hookCalls int
	rt.OnFire = func(id int, delta uint64, gap int64) { hookCalls++ }
	rt.RegisterCI(10, func(uint64) {})
	for i := 0; i < 10; i++ {
		rt.ProbeIR(100, int64(i*3))
	}
	if hookCalls == 0 {
		t.Error("OnFire never called")
	}
}

func TestNoHandlersCheap(t *testing.T) {
	rt := New()
	for i := 0; i < 10; i++ {
		if rt.ProbeIR(1000, int64(i)) != 0 {
			t.Fatal("fired without handlers")
		}
		if r, f := rt.ProbeCycles(1000, int64(i)); r != 0 || f != 0 {
			t.Fatal("cycle probe active without handlers")
		}
	}
}

func TestDeregisterMiddleHandlerKeepsOthers(t *testing.T) {
	rt := New()
	var a, b, c int
	ida := rt.RegisterCI(10, func(uint64) { a++ })
	idb := rt.RegisterCI(10, func(uint64) { b++ })
	idc := rt.RegisterCI(10, func(uint64) { c++ })
	rt.ProbeIR(1000, 1)
	rt.Deregister(idb)
	rt.ProbeIR(1000, 2)
	rt.ProbeIR(1000, 3)
	if a != 3 || c != 3 {
		t.Errorf("surviving handlers fired a=%d c=%d, want 3/3", a, c)
	}
	if b != 1 {
		t.Errorf("deregistered handler fired %d times, want 1 (before removal)", b)
	}
	if rt.Fires(ida) != 3 || rt.Fires(idc) != 3 || rt.Fires(idb) != 0 {
		t.Errorf("Fires bookkeeping wrong: %d %d %d", rt.Fires(ida), rt.Fires(idb), rt.Fires(idc))
	}
}

func TestUnknownCiidIsHarmless(t *testing.T) {
	rt := New()
	fires := 0
	rt.RegisterCI(10, func(uint64) { fires++ })
	rt.Disable(999)
	rt.Enable(999)
	rt.Deregister(999)
	if rt.Enabled(999) {
		t.Error("unknown ciid reported enabled")
	}
	if rt.Fires(999) != 0 {
		t.Error("unknown ciid has fires")
	}
	rt.ProbeIR(1000, 1)
	if fires != 1 {
		t.Errorf("real handler affected by unknown-ciid calls: %d", fires)
	}
}

func TestReRegisterAfterDeregisterGetsFreshID(t *testing.T) {
	rt := New()
	id1 := rt.RegisterCI(10, func(uint64) {})
	rt.Deregister(id1)
	id2 := rt.RegisterCI(10, func(uint64) {})
	if id1 == id2 {
		t.Errorf("ciid reused: %d", id1)
	}
	if !rt.Enabled(id2) {
		t.Error("fresh handler not enabled")
	}
}

// Deep disable nesting must require exactly as many enables, and
// global and per-handler counts must nest independently.
func TestDisableEnableDeepNestingAndIndependence(t *testing.T) {
	rt := New()
	fires := 0
	id := rt.RegisterCI(10, func(uint64) { fires++ })
	const depth = 50
	for i := 0; i < depth; i++ {
		rt.Disable(id)
		rt.Disable(0)
	}
	for i := 0; i < depth; i++ {
		rt.Enable(id)
		rt.ProbeIR(1000, int64(i))
		if fires != 0 {
			t.Fatalf("fired with per-handler disable depth %d remaining", depth-i-1)
		}
	}
	// Per-handler count fully unwound; global still holds it off.
	rt.ProbeIR(1000, 100)
	if fires != 0 {
		t.Fatal("fired with global disable active")
	}
	for i := 0; i < depth-1; i++ {
		rt.Enable(0)
	}
	rt.ProbeIR(1000, 200)
	if fires != 0 {
		t.Fatal("fired with one global disable remaining")
	}
	rt.Enable(0)
	rt.ProbeIR(1000, 300)
	if fires != 1 {
		t.Fatalf("fires = %d after full unwind, want 1", fires)
	}
	// Extra enables must not drive counts negative: one Disable must
	// still suppress.
	rt.Enable(id)
	rt.Enable(0)
	rt.Disable(id)
	rt.ProbeIR(1000, 400)
	if fires != 1 {
		t.Fatal("over-enabled handler ignored a fresh Disable")
	}
}

// A handler that deregisters a later handler of the same probe sweep
// must prevent that handler from firing: the sweep may already hold a
// reference, so Deregister marks it gone rather than just compacting
// the list. Regression: the old in-place compaction also corrupted
// the sweep's iteration, double-firing surviving handlers.
func TestDeregisterWhileHandlerPending(t *testing.T) {
	rt := New()
	var idB, idC int
	var aFired, bFired, cFired int
	rt.RegisterCI(10, func(uint64) {
		aFired++
		if aFired == 1 {
			rt.Deregister(idB)
		}
	})
	idB = rt.RegisterCI(10, func(uint64) { bFired++ })
	idC = rt.RegisterCI(10, func(uint64) { cFired++ })
	// One probe far past every threshold: A fires first and removes B
	// while B and C are still pending in the same sweep.
	rt.ProbeIR(1000, 1)
	if bFired != 0 {
		t.Errorf("deregistered-while-pending handler fired %d times", bFired)
	}
	if aFired != 1 || cFired != 1 {
		t.Errorf("survivors fired a=%d c=%d, want 1/1", aFired, cFired)
	}
	rt.ProbeIR(1000, 2)
	if bFired != 0 || cFired != 2 {
		t.Errorf("after next sweep: b=%d c=%d", bFired, cFired)
	}
	if rt.Fires(idC) != 2 {
		t.Errorf("Fires(c) = %d", rt.Fires(idC))
	}
}

// A handler deregistering itself mid-execution must not fire again.
func TestDeregisterSelfInsideHandler(t *testing.T) {
	rt := New()
	fires := 0
	var id int
	id = rt.RegisterCI(10, func(uint64) {
		fires++
		rt.Deregister(id)
	})
	for i := 0; i < 5; i++ {
		rt.ProbeIR(1000, int64(i))
	}
	if fires != 1 {
		t.Errorf("self-deregistered handler fired %d times", fires)
	}
}

// The AIMD overrun path: gaps beyond the overrun factor double the
// interval up to the cap; consecutive on-time fires re-tighten it back
// to the registered value.
func TestAdaptiveBackoffAndRetighten(t *testing.T) {
	rt := New()
	id := rt.RegisterCI(1000, func(uint64) {}) // 4000 IR at 4 IR/cy
	rt.SetAdaptive(id, AdaptiveConfig{})       // defaults: 2x factor, 8x cap, 4 fires
	if rt.CurrentInterval(id) != 1000 {
		t.Fatalf("initial interval = %d", rt.CurrentInterval(id))
	}
	now := int64(0)
	fireAfterGap := func(gap int64) {
		now += gap
		// One big probe advance fires the handler at the chosen time.
		rt.ProbeIR(1<<30, now)
	}
	fireAfterGap(1000) // first fire: no meaningful gap yet
	// Three overruns: 5x the interval each time.
	wantIntervals := []int64{2000, 4000, 8000}
	for i, want := range wantIntervals {
		fireAfterGap(5 * rt.CurrentInterval(id))
		if got := rt.CurrentInterval(id); got != want {
			t.Fatalf("after overrun %d: interval = %d, want %d", i+1, got, want)
		}
	}
	if rt.Overruns(id) != 3 {
		t.Errorf("Overruns = %d, want 3", rt.Overruns(id))
	}
	// Keep overrunning: the cap (8x base) must hold.
	for i := 0; i < 5; i++ {
		fireAfterGap(5 * rt.CurrentInterval(id))
	}
	if got := rt.CurrentInterval(id); got != 8000 {
		t.Errorf("interval = %d, want capped at 8000", got)
	}
	// On-time fires re-tighten additively (base/8 = 125 per 4 fires)
	// all the way back to the registered interval, never below.
	for i := 0; i < 8000/125*4*2; i++ {
		fireAfterGap(rt.CurrentInterval(id))
	}
	if got := rt.CurrentInterval(id); got != 1000 {
		t.Errorf("interval = %d after sustained on-time fires, want back at 1000", got)
	}
}

// Without SetAdaptive the interval must never move, whatever the gaps.
func TestNoAdaptationWithoutOptIn(t *testing.T) {
	rt := New()
	id := rt.RegisterCI(1000, func(uint64) {})
	now := int64(0)
	for i := 0; i < 20; i++ {
		now += 50_000
		rt.ProbeIR(1<<30, now)
	}
	if got := rt.CurrentInterval(id); got != 1000 {
		t.Errorf("non-adaptive interval moved to %d", got)
	}
	if rt.Overruns(id) != 0 {
		t.Errorf("overruns counted without adaptation: %d", rt.Overruns(id))
	}
}

// Adaptation must also gate the CI-Cycles probe path, which compares
// elapsed cycles against the (now adaptive) interval directly.
func TestAdaptiveAppliesToProbeCycles(t *testing.T) {
	rt := New()
	fires := 0
	id := rt.RegisterCI(1000, func(uint64) { fires++ })
	rt.SetAdaptive(id, AdaptiveConfig{})
	now := int64(0)
	for i := 0; i < 6; i++ {
		now += 10_000 // every fire is 10x the target: overruns
		rt.ProbeCycles(100_000, now)
	}
	if rt.Overruns(id) == 0 {
		t.Error("no overruns detected on the cycles path")
	}
	if rt.CurrentInterval(id) <= 1000 {
		t.Errorf("interval did not back off: %d", rt.CurrentInterval(id))
	}
	if got, cap := rt.CurrentInterval(id), int64(8000); got > cap {
		t.Errorf("interval %d beyond cap %d", got, cap)
	}
}

func TestNonPositiveIntervalClamped(t *testing.T) {
	rt := New()
	fires := 0
	rt.RegisterCI(0, func(uint64) { fires++ })
	rt.ProbeIR(10, 1)
	if fires == 0 {
		t.Error("zero-interval registration never fires")
	}
}
