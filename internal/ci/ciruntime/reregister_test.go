package ciruntime

// Regression test for the Deregister + re-Register stale-baseline bug:
// a handler registered mid-run must measure its first inter-fire gap
// from its registration time, not from virtual-time zero. Before the
// fix, RegisterCI left lastFireCycles at 0, so the first cycle-based
// fire recorded a gap equal to the absolute timestamp.

import "testing"

func TestReRegisterDoesNotInheritStaleBaseline(t *testing.T) {
	rt := New()
	rt.RecordIntervals = true
	const interval = 5000
	id := rt.RegisterCI(interval, func(uint64) {})

	now := int64(0)
	step := func(until int64) {
		for now < until {
			now += 1000
			rt.ProbeCycles(1000, now)
		}
	}
	step(100_000)
	if rt.Fires(id) == 0 {
		t.Fatal("handler never fired before deregistration")
	}
	rt.Deregister(id)

	// The program runs on for a long stretch with no handler; probes
	// keep advancing the runtime's notion of "now".
	step(200_000)

	id2 := rt.RegisterCI(interval, func(uint64) {})
	step(300_000)
	ivs := rt.Intervals(id2)
	if len(ivs) == 0 {
		t.Fatal("re-registered handler never fired")
	}
	// The first gap must be on the order of the interval (cycle-gated
	// probes can stretch it a few-fold), not the ~200k cycles of
	// absolute time that a zero baseline would produce.
	if ivs[0] > 10*interval {
		t.Errorf("first interval after re-register = %d cycles, want ~%d (stale baseline inherited)",
			ivs[0], interval)
	}
}

func TestRegisterBeforeFirstProbeKeepsZeroBaseline(t *testing.T) {
	// Registering before any probe has run must keep the historical
	// zero baseline: the first fire measures from program start.
	rt := New()
	rt.RecordIntervals = true
	id := rt.RegisterCI(5000, func(uint64) {})
	now := int64(0)
	for now < 50_000 {
		now += 1000
		rt.ProbeCycles(1000, now)
	}
	ivs := rt.Intervals(id)
	if len(ivs) == 0 {
		t.Fatal("handler never fired")
	}
	if ivs[0] <= 0 {
		t.Errorf("first interval = %d, want positive gap from t=0", ivs[0])
	}
}
