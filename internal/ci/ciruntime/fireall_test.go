package ciruntime

import "testing"

// FireAll / CanFire back the interleaving explorer's forced-fire
// schedule driver: delivery must respect the same eligibility rules as
// cadence fires (disable nesting, global disable, deregistration) and
// update the same baselines, or forced schedules would diverge from
// what a cadence run could ever produce.

func TestFireAllFiresEligibleHandlersOnly(t *testing.T) {
	rt := New()
	var a, b int
	ida := rt.RegisterCI(1000, func(uint64) { a++ })
	rt.RegisterCI(1000, func(uint64) { b++ })

	if !rt.CanFire() {
		t.Fatal("CanFire = false with two enabled handlers")
	}
	if n := rt.FireAll(10); n != 2 || a != 1 || b != 1 {
		t.Fatalf("FireAll = %d (a=%d b=%d), want 2 fires", n, a, b)
	}

	rt.Disable(ida)
	if n := rt.FireAll(20); n != 1 || a != 1 || b != 2 {
		t.Fatalf("with a disabled: FireAll = %d (a=%d b=%d), want only b", n, a, b)
	}
	if !rt.CanFire() {
		t.Fatal("CanFire = false with one handler still enabled")
	}
	rt.Enable(ida)

	rt.Disable(0)
	if rt.CanFire() {
		t.Fatal("CanFire = true under global disable")
	}
	if n := rt.FireAll(30); n != 0 || a != 1 || b != 2 {
		t.Fatalf("under global disable: FireAll = %d (a=%d b=%d), want none", n, a, b)
	}
	rt.Enable(0)

	if n := rt.FireAll(40); n != 2 {
		t.Fatalf("after re-enable: FireAll = %d, want 2", n)
	}
}

func TestFireAllUpdatesBaselinesLikeCadenceFires(t *testing.T) {
	rt := New()
	rt.RecordIntervals = true
	id := rt.RegisterCI(100, func(uint64) {})

	// Advance the IR counter close to the cadence threshold, then force
	// a fire: the baseline reset must push the next cadence fire a full
	// interval out.
	rt.ProbeIR(390, 97) // intervalIR = 400; not due yet
	if n := rt.FireAll(99); n != 1 {
		t.Fatalf("FireAll = %d, want 1", n)
	}
	if got := rt.Fires(id); got != 1 {
		t.Fatalf("Fires = %d, want 1", got)
	}
	// 10 more IR would have crossed the old gate; the forced fire moved it.
	if n := rt.ProbeIR(20, 110); n != 0 {
		t.Fatal("cadence fired immediately after a forced fire; baseline not reset")
	}
	if n := rt.ProbeIR(400, 250); n != 1 {
		t.Fatalf("cadence fire after a full fresh interval = %d, want 1", n)
	}
	ivs := rt.Intervals(id)
	if len(ivs) != 2 || ivs[1] != 250-99 {
		t.Fatalf("intervals = %v, want forced fire to anchor the second gap at 151", ivs)
	}
}

func TestFireAllSkipsDeregisteredHandlers(t *testing.T) {
	rt := New()
	var n int
	id := rt.RegisterCI(1000, func(uint64) { n++ })
	rt.Deregister(id)
	if rt.CanFire() {
		t.Fatal("CanFire = true after deregistration")
	}
	if got := rt.FireAll(5); got != 0 || n != 0 {
		t.Fatalf("FireAll = %d (handler ran %d times), want nothing", got, n)
	}
}

func TestFireAllRespectsSelfDisableDuringFire(t *testing.T) {
	// A handler force-firing the runtime from inside its own invocation
	// must not recurse into itself: fire() holds h.disable for the
	// duration (§2.2), so the nested sweep sees no eligible handler.
	rt := New()
	depth, calls := 0, 0
	rt.RegisterCI(1000, func(uint64) {
		depth++
		calls++
		if depth > 1 {
			t.Fatal("handler re-entered itself through FireAll")
		}
		if rt.CanFire() {
			t.Error("CanFire = true from inside the only handler's invocation")
		}
		if n := rt.FireAll(50); n != 0 {
			t.Errorf("nested FireAll = %d, want 0", n)
		}
		depth--
	})
	if n := rt.FireAll(40); n != 1 || calls != 1 {
		t.Fatalf("FireAll = %d (calls=%d), want exactly one invocation", n, calls)
	}
}
