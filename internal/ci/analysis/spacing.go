package analysis

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// CheckSpacing statically verifies the probe-placement invariant on an
// instrumented function: along every control-flow path, the IR distance
// between consecutive probe executions stays within maxGap. Cyclic
// paths are covered by requiring every natural loop either to contain a
// probe or to have a whole-loop cost within maxGap of slack.
//
// The checker is a verification aid for tests and for debugging probe
// placement; it is conservative (a nil error guarantees the invariant,
// a non-nil error may occasionally flag safe-but-unprovable placements,
// e.g. dynamic loop probes whose increment the checker cannot bound).
func CheckSpacing(f *ir.Func, externCostIR, maxGap int64) error {
	f.Reindex()
	g := cfg.New(f)
	dom := cfg.Dominators(g)
	lf := cfg.FindLoops(g, dom)

	// Per-block: IR cost before the first probe, after the last probe,
	// total cost, and whether the block contains a probe.
	n := len(f.Blocks)
	pre := make([]int64, n)
	post := make([]int64, n)
	total := make([]int64, n)
	hasProbe := make([]bool, n)
	instrCost := func(in *ir.Instr) int64 {
		switch in.Op {
		case ir.OpProbe:
			return 0
		case ir.OpExtCall:
			return 1 + externCostIR
		default:
			return 1
		}
	}
	for i, b := range f.Blocks {
		var acc int64
		seen := false
		for j := range b.Instrs {
			in := &b.Instrs[j]
			if in.Op == ir.OpProbe {
				if !seen {
					pre[i] = acc
				}
				seen = true
				acc = 0
				continue
			}
			acc += instrCost(in)
		}
		acc++ // terminator
		post[i] = acc
		hasProbe[i] = seen
		if !seen {
			pre[i] = acc
			total[i] = acc
		}
	}

	// Every loop must contain a probe somewhere, unless its whole body
	// cost (per iteration) is tiny relative to the gap budget — such
	// loops were folded by the analysis and their cost is accounted by
	// an enclosing probe.
	for _, l := range lf.Loops {
		probed := false
		var iterCost int64
		for bi := range l.Blocks {
			if hasProbe[bi] {
				probed = true
			}
			iterCost += total[bi]
		}
		if probed {
			continue
		}
		// A cloned fast-path loop (§3.5) is probe-free by design: its
		// run-time size guard bounds it under the probe interval and a
		// dynamic loop probe right after the exit accounts for it.
		if loopExitsToDynamicProbe(f, g, l) {
			continue
		}
		trips := int64(1)
		if iv := cfg.AnalyzeInduction(f, g, l, cfg.AnalyzeRegs(f)); iv.Found {
			if tc, ok := iv.TripCount(); ok {
				trips = tc
			} else {
				return fmt.Errorf("analysis: loop at %q has no probe and unknown trip count", f.Blocks[l.Header].Name)
			}
		} else {
			return fmt.Errorf("analysis: loop at %q has no probe and no induction", f.Blocks[l.Header].Name)
		}
		if iterCost*trips > maxGap {
			return fmt.Errorf("analysis: probe-free loop at %q costs %d IR (> %d)",
				f.Blocks[l.Header].Name, iterCost*trips, maxGap)
		}
	}

	// Longest probe-free acyclic path: propagate "worst pending IR at
	// block entry" along forward edges only. Cyclic repetition is
	// covered by the loop checks above (probe-containing loops reset
	// pending internally; probe-free loops are bounded in total).
	pending := make([]int64, n)
	for i := range pending {
		pending[i] = -1
	}
	pending[0] = 0
	for iter := 0; iter < n+2; iter++ {
		changed := false
		for _, bi := range g.RPO {
			if pending[bi] < 0 {
				continue
			}
			var out int64
			if hasProbe[bi] {
				if pending[bi]+pre[bi] > 2*maxGap {
					return fmt.Errorf("analysis: %d IR reach the first probe of %q (budget %d)",
						pending[bi]+pre[bi], f.Blocks[bi].Name, 2*maxGap)
				}
				out = post[bi]
			} else {
				out = pending[bi] + total[bi]
			}
			if out > 2*maxGap {
				return fmt.Errorf("analysis: %d probe-free IR flowing out of %q (budget %d)",
					out, f.Blocks[bi].Name, 2*maxGap)
			}
			for _, si := range g.Succs[bi] {
				if dom.Dominates(si, bi) {
					continue // back edge: handled by the loop checks
				}
				if out > pending[si] {
					pending[si] = out
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// loopExitsToDynamicProbe reports whether every exit of the loop leads
// directly to a block starting with a dynamic (loop-kind) probe.
func loopExitsToDynamicProbe(f *ir.Func, g *cfg.Graph, l *cfg.Loop) bool {
	found := false
	for _, ei := range l.Exits {
		for _, si := range g.Succs[ei] {
			if l.Blocks[si] {
				continue
			}
			b := f.Blocks[si]
			if len(b.Instrs) > 0 && b.Instrs[0].Op == ir.OpProbe {
				k := b.Instrs[0].Probe.Kind
				if k == ir.ProbeIRLoop || k == ir.ProbeCyclesLoop {
					found = true
					continue
				}
			}
			return false
		}
	}
	return found
}
