package analysis

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// corpusCase is one CFG shape: the reducer must fully reduce it (or
// explicitly not, for the irreducible case), and instrumentation must
// preserve its result.
type corpusCase struct {
	name string
	src  string
	arg  int64
	// wantKinds are container kinds that must appear in the reduction.
	wantKinds []string
	// wantUnreduced marks shapes the rules cannot fully reduce even
	// after canonicalization.
	wantUnreduced bool
}

var corpus = []corpusCase{
	{
		name: "straight line",
		src: `
func @main(%n) {
entry:
  %a = add %n, 1
  %b = mul %a, 2
  ret %b
}
`,
		arg: 5, wantKinds: []string{"block"},
	},
	{
		name: "nested diamonds",
		src: `
func @main(%n) {
entry:
  %c1 = lt %n, 10
  br %c1, o1, o2
o1:
  %c2 = lt %n, 5
  br %c2, i1, i2
i1:
  %a = add %n, 1
  jmp ijoin
i2:
  %a = add %n, 2
  jmp ijoin
ijoin:
  jmp join
o2:
  %a = add %n, 3
  jmp join
join:
  ret %a
}
`,
		arg: 7, wantKinds: []string{"diamond"},
	},
	{
		name: "loop inside branch arm",
		src: `
func @main(%n) {
entry:
  %a = mov 0
  %c = lt %n, 100
  br %c, loopside, flat
loopside:
  %i = mov 0
  jmp head
head:
  %hc = lt %i, %n
  br %hc, body, ldone
body:
  %a = add %a, %i
  %i = add %i, 1
  jmp head
ldone:
  jmp join
flat:
  %a = add %n, 9
  jmp join
join:
  ret %a
}
`,
		arg: 30, wantKinds: []string{"loop3b"},
	},
	{
		name: "branch inside loop body",
		src: `
func @main(%n) {
entry:
  %a = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %odd = and %i, 1
  br %odd, t, e
t:
  %a = add %a, 3
  jmp latch
e:
  %a = add %a, 1
  jmp latch
latch:
  %i = add %i, 1
  jmp head
exit:
  ret %a
}
`,
		arg: 1000, wantKinds: []string{"loop3b", "diamond"},
	},
	{
		name: "do-while (rotated loop)",
		src: `
func @main(%n) {
entry:
  %a = mov 0
  %i = mov 0
  jmp body
body:
  %a = add %a, %i
  %i = add %i, 1
  jmp latch
latch:
  %c = lt %i, %n
  br %c, body, exit
exit:
  ret %a
}
`,
		arg: 500, wantKinds: []string{"loop3a"},
	},
	{
		name: "triply nested loops",
		src: `
func @main(%n) {
entry:
  %a = mov 0
  %i = mov 0
  jmp h1
h1:
  %c1 = lt %i, 8
  br %c1, b1, x1
b1:
  %j = mov 0
  jmp h2
h2:
  %c2 = lt %j, 8
  br %c2, b2, x2
b2:
  %k = mov 0
  jmp h3
h3:
  %c3 = lt %k, %n
  br %c3, b3, x3
b3:
  %a = add %a, 1
  %k = add %k, 1
  jmp h3
x3:
  %j = add %j, 1
  jmp h2
x2:
  %i = add %i, 1
  jmp h1
x1:
  ret %a
}
`,
		arg: 20, wantKinds: []string{"loop3b", "chain"},
	},
	{
		name: "multi-exit returns (unified)",
		src: `
func @main(%n) {
entry:
  %c = lt %n, 0
  br %c, neg, pos
neg:
  %a = mov 0
  ret %a
pos:
  %b = add %n, 1
  ret %b
}
`,
		arg: 4, wantKinds: []string{"diamond"},
	},
	{
		name: "irreducible (jumps into two loops)",
		src: `
func @main(%n) {
entry:
  %a = mov 0
  %c = lt %n, 5
  br %c, x, y
x:
  %a = add %a, 1
  %cx = lt %a, 50
  br %cx, y, exit
y:
  %a = add %a, 2
  %cy = lt %a, 60
  br %cy, x, exit
exit:
  ret %a
}
`,
		arg: 9, wantUnreduced: true,
	},
}

func TestReducerCorpus(t *testing.T) {
	for _, tc := range corpus {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// Reference result before any transformation.
			ref := ir.MustParse(tc.src)
			machine := vm.New(ref, nil, 1)
			machine.LimitInstrs = 10_000_000
			th := machine.NewThread(0)
			want, err := th.Run("main", tc.arg)
			if err != nil {
				t.Fatal(err)
			}

			m := ir.MustParse(tc.src)
			res := Analyze(m, Options{ProbeInterval: 120})
			fr := res.Funcs["main"]
			root := fr.Reduction.Root()
			if tc.wantUnreduced {
				if root != nil {
					t.Skip("shape became reducible after canonicalization on this Go version")
				}
				if !fr.Instrumented || len(fr.Marks) == 0 {
					t.Error("unreduced function must fall back to §3.6 instrumentation")
				}
			} else {
				if root == nil {
					t.Fatalf("did not reduce:\n%s", fr.Fn)
				}
				dump := root.Dump()
				for _, k := range tc.wantKinds {
					if !strings.Contains(dump, k) {
						t.Errorf("reduction lacks %q:\n%s", k, dump)
					}
				}
			}

			// The analysis's loop rewrites must preserve the result.
			m2 := vm.New(m, nil, 1)
			m2.LimitInstrs = 10_000_000
			th2 := m2.NewThread(0)
			got, err := th2.Run("main", tc.arg)
			if err != nil {
				t.Fatalf("transformed run: %v\n%s", err, m)
			}
			if got != want {
				t.Errorf("transformed result = %d, want %d\n%s", got, want, m)
			}
		})
	}
}
