// Package analysis implements the Compiler Interrupts analysis phase
// (§3 of the paper): control-flow-graph abstraction into hierarchical
// containers via a forward-chaining production-rule system (Figure 3),
// cost evaluation (Table 6), function cost optimization in call-graph
// order, the loop transform (§3.4), single-block loop cloning (§3.5),
// and CoreDet-style post-processing of unmatched regions (§3.6).
//
// The output is a set of probe marks and (for loops) rewritten control
// flow; the instrumentation phase (package instrument) turns marks into
// probe instructions of the configured design.
package analysis

import "fmt"

// CostKind classifies a static cost expression.
type CostKind uint8

const (
	// CostUnknown means the cost cannot be expressed statically.
	CostUnknown CostKind = iota
	// CostConst is a compile-time constant number of IR instructions.
	CostConst
	// CostAffine is C + Scale*param(Param): the parametric cost form
	// computed by our miniature scalar-evolution (§3.3).
	CostAffine
)

// Cost is a static IR-instruction cost expression: unknown, constant,
// or affine in one function parameter.
type Cost struct {
	Kind  CostKind
	C     int64
	Scale int64
	Param int
}

// Const returns a constant cost.
func Const(c int64) Cost { return Cost{Kind: CostConst, C: c} }

// Affine returns the cost c + scale*param.
func Affine(c, scale int64, param int) Cost {
	if scale == 0 {
		return Const(c)
	}
	return Cost{Kind: CostAffine, C: c, Scale: scale, Param: param}
}

// Unknown returns the unknown cost.
func Unknown() Cost { return Cost{Kind: CostUnknown} }

// IsConst reports whether the cost is a compile-time constant.
func (c Cost) IsConst() bool { return c.Kind == CostConst }

// IsKnown reports whether the cost is constant or affine.
func (c Cost) IsKnown() bool { return c.Kind != CostUnknown }

// Add returns c + d, degrading to Unknown when the sum is not
// representable (different parameters, or any operand unknown).
func (c Cost) Add(d Cost) Cost {
	switch {
	case c.Kind == CostUnknown || d.Kind == CostUnknown:
		return Unknown()
	case c.Kind == CostConst && d.Kind == CostConst:
		return Const(c.C + d.C)
	case c.Kind == CostConst:
		return Affine(c.C+d.C, d.Scale, d.Param)
	case d.Kind == CostConst:
		return Affine(c.C+d.C, c.Scale, c.Param)
	case c.Param == d.Param:
		return Affine(c.C+d.C, c.Scale+d.Scale, c.Param)
	default:
		return Unknown()
	}
}

// AddConst returns c + k.
func (c Cost) AddConst(k int64) Cost { return c.Add(Const(k)) }

// MulConst returns c * k, degrading to Unknown for unknown c.
func (c Cost) MulConst(k int64) Cost {
	switch c.Kind {
	case CostConst:
		return Const(c.C * k)
	case CostAffine:
		return Affine(c.C*k, c.Scale*k, c.Param)
	default:
		return Unknown()
	}
}

// Mul returns c * d when one side is constant; otherwise Unknown
// (quadratic costs are not representable).
func (c Cost) Mul(d Cost) Cost {
	switch {
	case c.Kind == CostConst:
		return d.MulConst(c.C)
	case d.Kind == CostConst:
		return c.MulConst(d.C)
	default:
		return Unknown()
	}
}

// Mean returns the integer mean of two constant costs (the paper's
// function g for branch summarization); Unknown otherwise.
func (c Cost) Mean(d Cost) Cost {
	if c.Kind == CostConst && d.Kind == CostConst {
		return Const((c.C + d.C) / 2)
	}
	return Unknown()
}

// Subst evaluates the cost at a call site: params maps the callee's
// parameter index to the caller-side cost of the argument (constant,
// affine in a caller parameter, or unknown).
func (c Cost) Subst(param func(int) Cost) Cost {
	if c.Kind != CostAffine {
		return c
	}
	arg := param(c.Param)
	return arg.MulConst(c.Scale).AddConst(c.C)
}

// DiffWithin reports whether |c - d| <= eps; requires both constant.
func (c Cost) DiffWithin(d Cost, eps int64) bool {
	if c.Kind != CostConst || d.Kind != CostConst {
		return false
	}
	diff := c.C - d.C
	if diff < 0 {
		diff = -diff
	}
	return diff <= eps
}

// String renders the cost for diagnostics.
func (c Cost) String() string {
	switch c.Kind {
	case CostConst:
		return fmt.Sprintf("%d", c.C)
	case CostAffine:
		return fmt.Sprintf("%d+%d*p%d", c.C, c.Scale, c.Param)
	default:
		return "?"
	}
}
