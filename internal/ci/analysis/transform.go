package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// This file implements the loop transform of §3.4 (Table 5) and the
// single-block loop cloning of §3.5. Both are CFG surgeries that only
// append blocks and rewire terminators, so previously collected probe
// marks (which reference blocks by pointer) stay valid.

// findHeaderCmp locates the comparison defining the header's branch
// condition. Returns nil when the pattern is absent.
func findHeaderCmp(h *ir.Block) *ir.Instr {
	if h.Term.Kind != ir.TermBr {
		return nil
	}
	for i := len(h.Instrs) - 1; i >= 0; i-- {
		in := &h.Instrs[i]
		if in.Dst == h.Term.Cond && in.Op != ir.OpStore && in.Op != ir.OpProbe {
			return in
		}
	}
	return nil
}

// canTransform checks the §3.4 preconditions: a simplified loop with a
// recognized induction variable, exiting only through its header test,
// whose bound is stable across the loop and whose body is free of
// probe barriers.
func (a *analyzer) canTransform(c *Container) bool {
	l, iv := c.Loop, c.Ind
	if l == nil || !iv.Found || l.Preheader < 0 {
		return false
	}
	if len(l.Latches) != 1 || len(l.Exits) != 1 || l.Exits[0] != l.Header {
		return false
	}
	if a.hasBarrier(c) {
		return false
	}
	h := a.f.Blocks[l.Header]
	if findHeaderCmp(h) == nil {
		return false
	}
	if iv.Bound != ir.NoReg && !a.ri.SingleDefOutside(iv.Bound, l) {
		return false
	}
	return iv.Bound != ir.NoReg || iv.BoundIsConst
}

// canClone checks the §3.5 preconditions: a simple (small) loop whose
// trip count is only known at run time.
func (a *analyzer) canClone(c *Container) bool {
	if c.Trips.IsConst() || c.NumBlocks() > a.opts.MaxCloneBlocks {
		return false
	}
	return a.canTransform(c)
}

// incPerStep converts a per-iteration cost into the per-induction-step
// increment used by dynamic probes: inc_total = (i - k) * incPerStep.
func incPerStep(perIter, step int64) int64 {
	inc := (perIter + step/2) / step
	if inc < 1 {
		inc = 1
	}
	return inc
}

// transformLoop rewrites the loop per Table 5: an uninstrumented inner
// loop bounded to roughly ProbeInterval IR, inside an outer loop that
// probes once per chunk with a dynamically computed increment.
func (a *analyzer) transformLoop(c *Container, perIter int64) {
	f, l, iv := a.f, c.Loop, c.Ind
	h := f.Blocks[l.Header]
	cmp := findHeaderCmp(h)
	if cmp == nil {
		panic("analysis: transformLoop preconditions violated")
	}
	// Which branch side exits the loop?
	thenExits := !l.Blocks[h.Term.Then.Index]
	exitTarget := h.Term.Then
	if !thenExits {
		exitTarget = h.Term.Else
	}

	// Chunk size: number of iterations that fit in one probe interval.
	iters := a.opts.ProbeInterval / perIter
	if iters < 1 {
		iters = 1
	}
	advance := iters * iv.Step

	outer := f.NewBlock(h.Name + ".outer")
	chunk := f.NewBlock(h.Name + ".chunk")
	probeB := f.NewBlock(h.Name + ".chunkprobe")

	// outer: re-test the original condition against the original bound.
	cOut := f.NewReg()
	cmpCopy := *cmp
	cmpCopy.Dst = cOut
	outer.Instrs = append(outer.Instrs, cmpCopy)
	if thenExits {
		outer.Term = ir.Terminator{Kind: ir.TermBr, Cond: cOut, Then: exitTarget, Else: chunk, Val: ir.NoReg}
	} else {
		outer.Term = ir.Terminator{Kind: ir.TermBr, Cond: cOut, Then: chunk, Else: exitTarget, Val: ir.NoReg}
	}

	// chunk: k = i; j = min(i + advance, bound[+1]); jump into the loop.
	k, lim, j := f.NewReg(), f.NewReg(), f.NewReg()
	chunk.Instrs = append(chunk.Instrs,
		ir.Instr{Op: ir.OpMov, Dst: k, A: iv.IndVar, B: ir.NoReg},
		ir.Instr{Op: ir.OpAdd, Dst: lim, A: iv.IndVar, B: ir.NoReg, Imm: advance, BImm: true},
	)
	leExtra := int64(0)
	if iv.CmpOp == ir.OpCmpLe {
		leExtra = 1
	}
	if iv.Bound == ir.NoReg {
		chunk.Instrs = append(chunk.Instrs,
			ir.Instr{Op: ir.OpMin, Dst: j, A: lim, B: ir.NoReg, Imm: iv.BoundConst + leExtra, BImm: true})
	} else if leExtra != 0 {
		bplus := f.NewReg()
		chunk.Instrs = append(chunk.Instrs,
			ir.Instr{Op: ir.OpAdd, Dst: bplus, A: iv.Bound, B: ir.NoReg, Imm: 1, BImm: true},
			ir.Instr{Op: ir.OpMin, Dst: j, A: lim, B: bplus})
	} else {
		chunk.Instrs = append(chunk.Instrs,
			ir.Instr{Op: ir.OpMin, Dst: j, A: lim, B: iv.Bound})
	}
	chunk.Term = ir.Terminator{Kind: ir.TermJmp, Then: h, Cond: ir.NoReg, Val: ir.NoReg}

	// Header now tests i < j (strict, against the chunk limit).
	cmp.Op = ir.OpCmpLt
	cmp.A = iv.IndVar
	cmp.B = j
	cmp.BImm = false
	if thenExits {
		h.Term.Then = probeB
	} else {
		h.Term.Else = probeB
	}

	// probe block: account (i - k) iterations, then re-enter the outer
	// loop.
	a.markLoop(probeB, 0, incPerStep(perIter, iv.Step), iv.IndVar, k)
	probeB.Term = ir.Terminator{Kind: ir.TermJmp, Then: outer, Cond: ir.NoReg, Val: ir.NoReg}

	// The preheader now enters through the outer test.
	ph := f.Blocks[l.Preheader]
	retargeted := false
	if ph.Term.Then == h {
		ph.Term.Then = outer
		retargeted = true
	}
	if ph.Term.Kind == ir.TermBr && ph.Term.Else == h {
		ph.Term.Else = outer
		retargeted = true
	}
	if !retargeted {
		panic(fmt.Sprintf("analysis: preheader %q does not target header %q", ph.Name, h.Name))
	}
	f.Reindex()
}

// cloneLoop implements §3.5: duplicate the (simple) loop into an
// uninstrumented fast version selected at run time when the whole loop
// fits under the probe interval, accounted by a single dynamic probe
// after the loop. The original loop remains and is subsequently
// transformed (§3.4) as the slow path.
func (a *analyzer) cloneLoop(c *Container, perIter int64) {
	f, l, iv := a.f, c.Loop, c.Ind
	h := f.Blocks[l.Header]
	ph := f.Blocks[l.Preheader]

	// Deep-copy the loop blocks.
	cloneOf := make(map[*ir.Block]*ir.Block, len(l.Blocks))
	var origs []*ir.Block
	for bi := range l.Blocks {
		origs = append(origs, f.Blocks[bi])
	}
	// Deterministic order.
	for i := 0; i < len(origs); i++ {
		for j := i + 1; j < len(origs); j++ {
			if origs[j].Index < origs[i].Index {
				origs[i], origs[j] = origs[j], origs[i]
			}
		}
	}
	for _, ob := range origs {
		nb := f.NewBlock(ob.Name + ".fast")
		nb.Instrs = make([]ir.Instr, len(ob.Instrs))
		for i, in := range ob.Instrs {
			ci := in
			if in.Args != nil {
				ci.Args = append([]ir.Reg(nil), in.Args...)
			}
			if in.Probe != nil {
				p := *in.Probe
				ci.Probe = &p
			}
			nb.Instrs[i] = ci
		}
		nb.Term = ob.Term
		cloneOf[ob] = nb
	}
	// Fast-path exit probe: (i - k) * incPerStep, then on to the
	// original exit target.
	thenExits := !l.Blocks[h.Term.Then.Index]
	exitTarget := h.Term.Then
	if !thenExits {
		exitTarget = h.Term.Else
	}
	fastProbe := f.NewBlock(h.Name + ".fastprobe")
	kf := f.NewReg()
	a.markLoop(fastProbe, 0, incPerStep(perIter, iv.Step), iv.IndVar, kf)
	fastProbe.Term = ir.Terminator{Kind: ir.TermJmp, Then: exitTarget, Cond: ir.NoReg, Val: ir.NoReg}

	// Rewire clone terminators: in-loop targets to clones; the exit
	// edge to the fast probe.
	for _, ob := range origs {
		nb := cloneOf[ob]
		remap := func(t *ir.Block) *ir.Block {
			if cl, ok := cloneOf[t]; ok {
				return cl
			}
			if t == exitTarget {
				return fastProbe
			}
			return t
		}
		if nb.Term.Then != nil {
			nb.Term.Then = remap(nb.Term.Then)
		}
		if nb.Term.Else != nil {
			nb.Term.Else = remap(nb.Term.Else)
		}
	}

	// Guard in the preheader: estimated loop cost <= probe interval?
	leExtra := int64(0)
	if iv.CmpOp == ir.OpCmpLe {
		leExtra = 1
	}
	bound := iv.Bound
	if bound == ir.NoReg {
		bound = f.NewReg()
		ph.Instrs = append(ph.Instrs,
			ir.Instr{Op: ir.OpMov, Dst: bound, A: ir.NoReg, B: ir.NoReg, Imm: iv.BoundConst, BImm: true})
	}
	diff, est, cond := f.NewReg(), f.NewReg(), f.NewReg()
	ph.Instrs = append(ph.Instrs,
		ir.Instr{Op: ir.OpMov, Dst: kf, A: iv.IndVar, B: ir.NoReg},
		ir.Instr{Op: ir.OpSub, Dst: diff, A: bound, B: iv.IndVar})
	if leExtra != 0 {
		ph.Instrs = append(ph.Instrs,
			ir.Instr{Op: ir.OpAdd, Dst: diff, A: diff, B: ir.NoReg, Imm: 1, BImm: true})
	}
	if iv.Step != 1 {
		ph.Instrs = append(ph.Instrs,
			ir.Instr{Op: ir.OpDiv, Dst: diff, A: diff, B: ir.NoReg, Imm: iv.Step, BImm: true})
	}
	ph.Instrs = append(ph.Instrs,
		ir.Instr{Op: ir.OpMul, Dst: est, A: diff, B: ir.NoReg, Imm: perIter, BImm: true},
		ir.Instr{Op: ir.OpCmpLe, Dst: cond, A: est, B: ir.NoReg, Imm: a.opts.ProbeInterval, BImm: true})
	ph.Term = ir.Terminator{Kind: ir.TermBr, Cond: cond, Then: cloneOf[h], Else: h, Val: ir.NoReg}
	f.Reindex()
}
