package analysis

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Region is one node of the (possibly partially) reduced graph.
type Region struct {
	C            *Container
	Succs, Preds []*Region
}

// Reduction is the result of running the production-rule system over a
// function's CFG. When the rules reduce the graph to a single node,
// Regions has length 1 and Root is its container.
type Reduction struct {
	Regions []*Region
}

// Root returns the single remaining container when the CFG was fully
// reduced, else nil.
func (r *Reduction) Root() *Container {
	if len(r.Regions) == 1 {
		return r.Regions[0].C
	}
	return nil
}

type reducer struct {
	f     *ir.Func
	g     *cfg.Graph
	lf    *cfg.LoopForest
	ri    *cfg.RegInfo
	opts  *Options
	nodes []*Region
	// blockCost computes a leaf's cost and barrier flag.
	blockCost func(b *ir.Block) (Cost, bool)
}

// reduce builds leaf containers for all reachable blocks and applies
// the Figure 3 rules to fixpoint.
func reduce(f *ir.Func, g *cfg.Graph, lf *cfg.LoopForest, ri *cfg.RegInfo,
	opts *Options, blockCost func(b *ir.Block) (Cost, bool)) *Reduction {

	r := &reducer{f: f, g: g, lf: lf, ri: ri, opts: opts, blockCost: blockCost}
	byIndex := make(map[int]*Region, g.N)
	for _, bi := range g.RPO {
		b := f.Blocks[bi]
		cost, barrier := blockCost(b)
		c := &Container{Kind: CBlock, Block: b, Entry: b, Exit: b, Cost: cost, Barrier: barrier}
		n := &Region{C: c}
		byIndex[bi] = n
		r.nodes = append(r.nodes, n)
	}
	for _, bi := range g.RPO {
		n := byIndex[bi]
		seen := map[int]bool{}
		for _, si := range g.Succs[bi] {
			if seen[si] {
				continue // collapse duplicate branch edges
			}
			seen[si] = true
			s := byIndex[si]
			n.Succs = append(n.Succs, s)
			s.Preds = append(s.Preds, n)
		}
	}
	r.run()
	r.sortNodes()
	return &Reduction{Regions: r.nodes}
}

func (r *reducer) sortNodes() {
	sort.Slice(r.nodes, func(i, j int) bool {
		return r.nodes[i].C.Entry.Index < r.nodes[j].C.Entry.Index
	})
}

func (r *reducer) run() {
	for changed := true; changed; {
		changed = false
		r.sortNodes()
		for _, n := range r.nodes {
			if r.trySelfLoop(n) || r.tryChain(n) || r.tryDiamond(n) ||
				r.tryTriangle(n) || r.tryLoopDo(n) || r.tryLoopWhile(n) {
				changed = true
				break
			}
		}
	}
}

func hasEdge(u, v *Region) bool {
	for _, s := range u.Succs {
		if s == v {
			return true
		}
	}
	return false
}

func remove(list []*Region, x *Region) []*Region {
	out := list[:0]
	for _, n := range list {
		if n != x {
			out = append(out, n)
		}
	}
	return out
}

// merge replaces the nodes in group with a single node holding c.
// External edges are recomputed; edges internal to the group vanish.
func (r *reducer) merge(group []*Region, c *Container) *Region {
	in := make(map[*Region]bool, len(group))
	for _, n := range group {
		in[n] = true
	}
	nn := &Region{C: c}
	addPred := func(p *Region) {
		for _, e := range nn.Preds {
			if e == p {
				return
			}
		}
		nn.Preds = append(nn.Preds, p)
	}
	addSucc := func(s *Region) {
		for _, e := range nn.Succs {
			if e == s {
				return
			}
		}
		nn.Succs = append(nn.Succs, s)
	}
	for _, n := range group {
		for _, p := range n.Preds {
			if !in[p] {
				addPred(p)
			}
		}
		for _, s := range n.Succs {
			if !in[s] {
				addSucc(s)
			}
		}
	}
	for _, p := range nn.Preds {
		newSuccs := p.Succs[:0]
		added := false
		for _, s := range p.Succs {
			if in[s] {
				if !added {
					newSuccs = append(newSuccs, nn)
					added = true
				}
				continue
			}
			newSuccs = append(newSuccs, s)
		}
		p.Succs = newSuccs
	}
	for _, s := range nn.Succs {
		newPreds := s.Preds[:0]
		added := false
		for _, p := range s.Preds {
			if in[p] {
				if !added {
					newPreds = append(newPreds, nn)
					added = true
				}
				continue
			}
			newPreds = append(newPreds, p)
		}
		s.Preds = newPreds
	}
	out := r.nodes[:0]
	for _, n := range r.nodes {
		if !in[n] {
			out = append(out, n)
		}
	}
	r.nodes = append(out, nn)
	return nn
}

// chainChildren flattens nested chains so rule 1 matches "any number of
// sequential containers".
func chainChildren(cs ...*Container) []*Container {
	var out []*Container
	for _, c := range cs {
		if c.Kind == CChain {
			out = append(out, c.Children...)
		} else {
			out = append(out, c)
		}
	}
	return out
}

// tryChain implements rule 1 pairwise (u followed by v); repeated
// application and chain flattening yield arbitrary-length chains.
func (r *reducer) tryChain(u *Region) bool {
	if len(u.Succs) != 1 {
		return false
	}
	v := u.Succs[0]
	if v == u || len(v.Preds) != 1 || hasEdge(v, u) {
		return false
	}
	c := &Container{
		Kind:     CChain,
		Children: chainChildren(u.C, v.C),
		Entry:    u.C.Entry,
		Exit:     v.C.Exit,
		Cost:     u.C.Cost.Add(v.C.Cost),
	}
	r.merge([]*Region{u, v}, c)
	return true
}

// loopInfo looks up the natural loop headed at the container's entry
// block and its induction/trip analysis.
func (r *reducer) loopInfo(header *ir.Block) (*cfg.Loop, cfg.Induction, Cost) {
	l := r.lf.ByHeader[header.Index]
	if l == nil {
		return nil, cfg.Induction{}, Unknown()
	}
	iv := cfg.AnalyzeInduction(r.f, r.g, l, r.ri)
	trips := Unknown()
	if n, ok := iv.TripCount(); ok {
		trips = Const(n)
	} else if p, step, init, ok := iv.ParamTripCount(); ok {
		// iterations ≈ (param - init)/step; representable when step=1.
		if step == 1 {
			trips = Affine(-init, 1, p)
		}
	}
	return l, iv, trips
}

func loopCost(kind CKind, header, body *Container, trips Cost) Cost {
	switch kind {
	case CLoopSelf:
		// Rule 3c: f(C) = f(C1) * (b+1); trips = b+1 body executions.
		return header.Cost.Mul(trips)
	case CLoopDo:
		// Rule 3a: f(C) = (f(C1)+f(C2)) * (b+1).
		return header.Cost.Add(body.Cost).Mul(trips)
	case CLoopWhile:
		// Rule 3b: f(C) = (f(C1)+f(C2))*b + f(C1); trips = b.
		return header.Cost.Add(body.Cost).Mul(trips).Add(header.Cost)
	}
	return Unknown()
}

// trySelfLoop implements rule 3c.
func (r *reducer) trySelfLoop(u *Region) bool {
	if !hasEdge(u, u) {
		return false
	}
	l, iv, trips := r.loopInfo(u.C.Entry)
	c := &Container{
		Kind:     CLoopSelf,
		Children: []*Container{u.C},
		Entry:    u.C.Entry,
		Exit:     u.C.Exit,
		Trips:    trips,
		Ind:      iv,
		Loop:     l,
	}
	c.Cost = loopCost(CLoopSelf, u.C, nil, trips)
	// Drop the self edge, then rebuild the node.
	u.Succs = remove(u.Succs, u)
	u.Preds = remove(u.Preds, u)
	r.merge([]*Region{u}, c)
	return true
}

// tryLoopWhile implements rule 3b: u is the header (tests and exits),
// v is the body chain returning to u.
func (r *reducer) tryLoopWhile(u *Region) bool {
	if len(u.Succs) != 2 {
		return false
	}
	for _, v := range u.Succs {
		if v == u {
			continue
		}
		if len(v.Preds) != 1 || v.Preds[0] != u {
			continue
		}
		if len(v.Succs) != 1 || v.Succs[0] != u {
			continue
		}
		l, iv, trips := r.loopInfo(u.C.Entry)
		c := &Container{
			Kind:     CLoopWhile,
			Children: []*Container{u.C, v.C},
			Entry:    u.C.Entry,
			Exit:     u.C.Exit, // exits through the header's test
			Trips:    trips,
			Ind:      iv,
			Loop:     l,
		}
		c.Cost = loopCost(CLoopWhile, u.C, v.C, trips)
		r.merge([]*Region{u, v}, c)
		return true
	}
	return false
}

// tryLoopDo implements rule 3a: u is the top (single successor v), v
// tests at the bottom and either loops back to u or exits.
func (r *reducer) tryLoopDo(u *Region) bool {
	if len(u.Succs) != 1 {
		return false
	}
	v := u.Succs[0]
	if v == u || len(v.Preds) != 1 || v.Preds[0] != u {
		return false
	}
	if len(v.Succs) != 2 || !hasEdge(v, u) {
		return false
	}
	l, iv, trips := r.loopInfo(u.C.Entry)
	c := &Container{
		Kind:     CLoopDo,
		Children: []*Container{u.C, v.C},
		Entry:    u.C.Entry,
		Exit:     v.C.Exit,
		Trips:    trips,
		Ind:      iv,
		Loop:     l,
	}
	c.Cost = loopCost(CLoopDo, u.C, v.C, trips)
	r.merge([]*Region{u, v}, c)
	return true
}

// branchArmCost applies the paper's g (mean within allowable error,
// also bounded by the probe interval).
func (r *reducer) branchArmCost(a, b Cost) Cost {
	if !a.DiffWithin(b, r.opts.AllowableError) {
		return Unknown()
	}
	m := a.Mean(b)
	if m.Kind == CostConst && m.C > r.opts.ProbeInterval {
		return Unknown()
	}
	return m
}

// tryDiamond implements rule 2a.
func (r *reducer) tryDiamond(u *Region) bool {
	if len(u.Succs) != 2 {
		return false
	}
	v, w := u.Succs[0], u.Succs[1]
	if v == u || w == u || v == w {
		return false
	}
	if len(v.Preds) != 1 || len(w.Preds) != 1 || len(v.Succs) != 1 || len(w.Succs) != 1 {
		return false
	}
	x := v.Succs[0]
	if x != w.Succs[0] || x == u || x == v || x == w {
		return false
	}
	if len(x.Preds) != 2 {
		return false
	}
	g := r.branchArmCost(v.C.Cost, w.C.Cost)
	c := &Container{
		Kind:     CDiamond,
		Children: []*Container{u.C, v.C, w.C, x.C},
		Entry:    u.C.Entry,
		Exit:     x.C.Exit,
		Cost:     u.C.Cost.Add(g).Add(x.C.Cost),
	}
	r.merge([]*Region{u, v, w, x}, c)
	return true
}

// tryTriangle implements rule 2b.
func (r *reducer) tryTriangle(u *Region) bool {
	if len(u.Succs) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		v, x := u.Succs[i], u.Succs[1-i]
		if v == u || x == u || v == x {
			continue
		}
		if len(v.Preds) != 1 || len(v.Succs) != 1 || v.Succs[0] != x {
			continue
		}
		if len(x.Preds) != 2 || hasEdge(x, u) || hasEdge(x, v) {
			continue
		}
		g := r.branchArmCost(v.C.Cost, Const(0))
		c := &Container{
			Kind:     CTriangle,
			Children: []*Container{u.C, v.C, x.C},
			Entry:    u.C.Entry,
			Exit:     x.C.Exit,
			Cost:     u.C.Cost.Add(g).Add(x.C.Cost),
		}
		r.merge([]*Region{u, v, x}, c)
		return true
	}
	return false
}
