package analysis

import (
	"testing"
	"testing/quick"
)

func TestCostAlgebraBasics(t *testing.T) {
	c5, c7 := Const(5), Const(7)
	if got := c5.Add(c7); !got.IsConst() || got.C != 12 {
		t.Errorf("5+7 = %v", got)
	}
	if got := c5.MulConst(3); got.C != 15 {
		t.Errorf("5*3 = %v", got)
	}
	a := Affine(2, 3, 0) // 2 + 3p0
	if got := a.Add(c5); got.Kind != CostAffine || got.C != 7 || got.Scale != 3 {
		t.Errorf("affine+const = %v", got)
	}
	if got := a.Add(Affine(1, 1, 0)); got.C != 3 || got.Scale != 4 {
		t.Errorf("affine+affine same param = %v", got)
	}
	if got := a.Add(Affine(1, 1, 1)); got.IsKnown() {
		t.Errorf("affine+affine different params must be unknown, got %v", got)
	}
	if got := a.MulConst(2); got.C != 4 || got.Scale != 6 {
		t.Errorf("affine*2 = %v", got)
	}
	if got := a.Mul(Affine(0, 1, 0)); got.IsKnown() {
		t.Errorf("affine*affine must be unknown, got %v", got)
	}
	if got := Unknown().Add(c5); got.IsKnown() {
		t.Errorf("unknown+const must be unknown, got %v", got)
	}
	if Affine(3, 0, 2).Kind != CostConst {
		t.Error("zero-scale affine should normalize to const")
	}
}

func TestCostMeanAndDiff(t *testing.T) {
	if got := Const(10).Mean(Const(20)); got.C != 15 {
		t.Errorf("mean = %v", got)
	}
	if got := Const(10).Mean(Affine(1, 1, 0)); got.IsKnown() {
		t.Errorf("mean with affine must be unknown, got %v", got)
	}
	if !Const(10).DiffWithin(Const(14), 4) || Const(10).DiffWithin(Const(15), 4) {
		t.Error("DiffWithin boundary wrong")
	}
	if !Const(14).DiffWithin(Const(10), 4) {
		t.Error("DiffWithin must be symmetric")
	}
	if Affine(0, 1, 0).DiffWithin(Const(0), 100) {
		t.Error("DiffWithin requires const operands")
	}
}

func TestCostSubst(t *testing.T) {
	a := Affine(10, 2, 1) // 10 + 2*p1
	got := a.Subst(func(p int) Cost {
		if p == 1 {
			return Const(7)
		}
		return Unknown()
	})
	if !got.IsConst() || got.C != 24 {
		t.Errorf("subst const = %v", got)
	}
	got = a.Subst(func(p int) Cost { return Affine(0, 1, 3) })
	if got.Kind != CostAffine || got.C != 10 || got.Scale != 2 || got.Param != 3 {
		t.Errorf("subst param-passthrough = %v", got)
	}
	got = a.Subst(func(p int) Cost { return Unknown() })
	if got.IsKnown() {
		t.Errorf("subst unknown = %v", got)
	}
	if got := Const(5).Subst(func(int) Cost { return Unknown() }); got.C != 5 {
		t.Errorf("subst on const must be identity, got %v", got)
	}
}

// Property: Add is commutative and associative on the const/affine
// fragment, and MulConst distributes over Add.
func TestQuickCostLaws(t *testing.T) {
	mk := func(kind uint8, c, s int64, p uint8) Cost {
		switch kind % 3 {
		case 0:
			return Const(c % 1000)
		case 1:
			return Affine(c%1000, s%50, int(p%2))
		default:
			return Unknown()
		}
	}
	comm := func(k1 uint8, c1, s1 int64, p1 uint8, k2 uint8, c2, s2 int64, p2 uint8) bool {
		a, b := mk(k1, c1, s1, p1), mk(k2, c2, s2, p2)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("Add not commutative: %v", err)
	}
	dist := func(k1 uint8, c1, s1 int64, p1 uint8, k2 uint8, c2, s2 int64, p2 uint8, m int64) bool {
		a, b := mk(k1, c1, s1, p1), mk(k2, c2, s2, p2)
		m %= 20
		if m == 0 {
			// Unknown is absorbing: (unknown)*0 stays unknown while
			// 0+0 is Const(0), so distributivity only holds for m != 0.
			m = 1
		}
		lhs := a.Add(b).MulConst(m)
		rhs := a.MulConst(m).Add(b.MulConst(m))
		return lhs == rhs
	}
	if err := quick.Check(dist, nil); err != nil {
		t.Errorf("MulConst does not distribute: %v", err)
	}
}

func TestExportImportCosts(t *testing.T) {
	tbl := CostTable{
		"f": {Name: "f", Instrumented: true, Cost: Unknown()},
		"g": {Name: "g", Instrumented: false, Cost: Const(42)},
		"h": {Name: "h", Instrumented: false, Cost: Affine(3, 5, 1)},
	}
	data, err := ExportCosts(tbl)
	if err != nil {
		t.Fatalf("ExportCosts: %v", err)
	}
	got, err := ImportCosts(data)
	if err != nil {
		t.Fatalf("ImportCosts: %v", err)
	}
	if len(got) != len(tbl) {
		t.Fatalf("imported %d entries, want %d", len(got), len(tbl))
	}
	for name, fi := range tbl {
		if got[name] != fi {
			t.Errorf("entry %s = %+v, want %+v", name, got[name], fi)
		}
	}
	if _, err := ImportCosts([]byte("{")); err == nil {
		t.Error("ImportCosts accepted malformed JSON")
	}
	if _, err := ImportCosts([]byte(`{"version": 99}`)); err == nil {
		t.Error("ImportCosts accepted wrong version")
	}
}
