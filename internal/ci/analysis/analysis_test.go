package analysis

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func analyzeSrc(t *testing.T, src string, opts Options) *ModuleResult {
	t.Helper()
	m := ir.MustParse(src)
	res := Analyze(m, opts)
	if err := m.Verify(); err != nil {
		t.Fatalf("module does not verify after analysis: %v\n%s", err, m)
	}
	return res
}

func TestSmallFunctionTransparent(t *testing.T) {
	res := analyzeSrc(t, `
func @tiny(%x) {
entry:
  %y = add %x, 1
  %z = mul %y, 2
  ret %z
}
`, Options{ProbeInterval: 100})
	fr := res.Funcs["tiny"]
	if fr.Instrumented {
		t.Error("tiny function should not be instrumented")
	}
	if !fr.Cost.IsConst() || fr.Cost.C != 3 {
		t.Errorf("cost = %v, want 3 (2 instrs + terminator)", fr.Cost)
	}
	if len(fr.Marks) != 0 {
		t.Errorf("marks = %d, want 0", len(fr.Marks))
	}
}

func TestConstLoopFoldedWhenSmall(t *testing.T) {
	res := analyzeSrc(t, `
func @f() {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, 10
  br %c, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`, Options{ProbeInterval: 1000})
	fr := res.Funcs["f"]
	if fr.Instrumented {
		t.Errorf("small const loop should fold; cost=%v marks=%d", fr.Cost, len(fr.Marks))
	}
	// Loop: header 3 (cmp+br) per iter... cost must be const and modest.
	if !fr.Cost.IsConst() {
		t.Fatalf("cost = %v, want const", fr.Cost)
	}
	if fr.Cost.C < 30 || fr.Cost.C > 80 {
		t.Errorf("cost = %d, implausible for 10 iterations", fr.Cost.C)
	}
}

func TestBigConstLoopTransformed(t *testing.T) {
	res := analyzeSrc(t, `
func @f() {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, 100000
  br %c, body, exit
body:
  %s = add %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`, Options{ProbeInterval: 500})
	fr := res.Funcs["f"]
	if !fr.Instrumented {
		t.Fatal("big loop function must be instrumented")
	}
	if fr.LoopsTransformed != 1 {
		t.Errorf("LoopsTransformed = %d, want 1\n%s", fr.LoopsTransformed, fr.Fn)
	}
	if fr.LoopsCloned != 0 {
		t.Errorf("LoopsCloned = %d, want 0 (const trips)", fr.LoopsCloned)
	}
	var loopMarks int
	for _, mk := range fr.Marks {
		if mk.Loop {
			loopMarks++
			if mk.IndVar == ir.NoReg || mk.Base == ir.NoReg {
				t.Error("loop mark without registers")
			}
			if mk.Inc < 3 || mk.Inc > 10 {
				t.Errorf("per-iteration inc = %d, implausible", mk.Inc)
			}
		}
	}
	if loopMarks != 1 {
		t.Errorf("loop marks = %d, want 1", loopMarks)
	}
	// The transform must create outer/chunk/probe blocks.
	f := fr.Fn
	if f.BlockByName("head.outer") == nil || f.BlockByName("head.chunk") == nil ||
		f.BlockByName("head.chunkprobe") == nil {
		t.Errorf("transform blocks missing:\n%s", f)
	}
}

func TestParamLoopClonedAndTransformed(t *testing.T) {
	res := analyzeSrc(t, `
func @f(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`, Options{ProbeInterval: 500})
	fr := res.Funcs["f"]
	if !fr.Instrumented {
		t.Fatal("parametric loop function must be instrumented")
	}
	if fr.LoopsCloned != 1 || fr.LoopsTransformed != 1 {
		t.Errorf("cloned=%d transformed=%d, want 1/1\n%s", fr.LoopsCloned, fr.LoopsTransformed, fr.Fn)
	}
	// Cost should be affine in parameter 0.
	if fr.Cost.Kind != CostAffine || fr.Cost.Param != 0 {
		t.Errorf("cost = %v, want affine in p0", fr.Cost)
	}
	// Fast-path blocks must exist.
	found := false
	for _, b := range fr.Fn.Blocks {
		if strings.Contains(b.Name, ".fast") {
			found = true
		}
	}
	if !found {
		t.Errorf("no cloned fast-path blocks:\n%s", fr.Fn)
	}
}

func TestDisableTransformAndClone(t *testing.T) {
	src := `
func @f(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
	res := analyzeSrc(t, src, Options{ProbeInterval: 500, DisableLoopTransform: true})
	fr := res.Funcs["f"]
	if fr.LoopsTransformed != 0 || fr.LoopsCloned != 0 {
		t.Errorf("transform/clone ran despite being disabled")
	}
	// Fallback: per-iteration probes inside the loop body.
	if len(fr.Marks) == 0 {
		t.Error("fallback produced no marks")
	}
	res = analyzeSrc(t, src, Options{ProbeInterval: 500, DisableLoopClone: true})
	fr = res.Funcs["f"]
	if fr.LoopsTransformed != 1 || fr.LoopsCloned != 0 {
		t.Errorf("transformed=%d cloned=%d, want 1/0", fr.LoopsTransformed, fr.LoopsCloned)
	}
}

func TestExtCallBarrier(t *testing.T) {
	res := analyzeSrc(t, `
extern @lib cost 700
func @f(%n) {
entry:
  %a = add %n, 1
  %b = extcall @lib(%a)
  %d = add %b, 1
  ret %d
}
`, Options{ProbeInterval: 50, ExternCostIR: 100})
	fr := res.Funcs["f"]
	if !fr.Instrumented {
		t.Fatal("extcall function must be instrumented (cost exceeds interval)")
	}
	// A mark must sit right after the extcall (index 2 in entry).
	found := false
	for _, mk := range fr.Marks {
		if mk.Block.Name == "entry" && mk.Index == 2 && !mk.Loop {
			found = true
			// inc = add(1) + extcall(1+100) = 102
			if mk.Inc != 102 {
				t.Errorf("barrier inc = %d, want 102", mk.Inc)
			}
		}
	}
	if !found {
		t.Errorf("no barrier mark after extcall; marks = %+v", fr.Marks)
	}
}

func TestBranchArmsSummarizedByMean(t *testing.T) {
	src := `
func @f(%n) {
entry:
  %c = lt %n, 5
  br %c, a, b
a:
  %x = add %n, 1
  %x = add %x, 1
  jmp join
b:
  %y = mul %n, 2
  %y = add %y, 3
  jmp join
join:
  ret %n
}
`
	res := analyzeSrc(t, src, Options{ProbeInterval: 100})
	fr := res.Funcs["f"]
	if fr.Instrumented {
		t.Error("similar-arm diamond should stay transparent")
	}
	if !fr.Cost.IsConst() {
		t.Fatalf("cost = %v", fr.Cost)
	}
}

func TestDissimilarArmsForceInstrumentation(t *testing.T) {
	// One arm is a big loop, the other trivial: means differ wildly.
	src := `
func @f(%n) {
entry:
  %c = lt %n, 5
  br %c, a, b
a:
  %i = mov 0
  jmp head
head:
  %hc = lt %i, 5000
  br %hc, body, adone
body:
  %i = add %i, 1
  jmp head
adone:
  jmp join
b:
  %y = mul %n, 2
  jmp join
join:
  ret %n
}
`
	res := analyzeSrc(t, src, Options{ProbeInterval: 200, AllowableError: 200})
	fr := res.Funcs["f"]
	if !fr.Instrumented {
		t.Fatal("dissimilar arms must instrument")
	}
	if len(fr.Marks) == 0 {
		t.Error("no marks emitted")
	}
}

func TestCallGraphOrderAndTransparentCallees(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %a = call @leaf(%n)
  %b = call @mid(%a)
  ret %b
}
func @mid(%x) {
entry:
  %r = call @leaf(%x)
  %r2 = add %r, 1
  ret %r2
}
func @leaf(%x) {
entry:
  %y = mul %x, 3
  ret %y
}
`
	res := analyzeSrc(t, src, Options{ProbeInterval: 100})
	leaf := res.Funcs["leaf"]
	if leaf.Instrumented || !leaf.Cost.IsConst() || leaf.Cost.C != 2 {
		t.Errorf("leaf = inst=%v cost=%v", leaf.Instrumented, leaf.Cost)
	}
	mid := res.Funcs["mid"]
	if mid.Instrumented {
		t.Error("mid should be transparent")
	}
	// mid = call(1+2) + add(1) + ret(1) = 5
	if !mid.Cost.IsConst() || mid.Cost.C != 5 {
		t.Errorf("mid cost = %v, want 5", mid.Cost)
	}
	main := res.Funcs["main"]
	// main = call leaf (3) + call mid (6) + ret (1) = 10
	if !main.Cost.IsConst() || main.Cost.C != 10 {
		t.Errorf("main cost = %v, want 10", main.Cost)
	}
}

func TestRecursiveFunctionInstrumented(t *testing.T) {
	src := `
func @fib(%n) {
entry:
  %c = lt %n, 2
  br %c, base, rec
base:
  ret %n
rec:
  %a = sub %n, 1
  %r1 = call @fib(%a)
  %b = sub %n, 2
  %r2 = call @fib(%b)
  %s = add %r1, %r2
  ret %s
}
`
	res := analyzeSrc(t, src, Options{ProbeInterval: 100})
	fr := res.Funcs["fib"]
	if !fr.Instrumented {
		t.Error("recursive function must be instrumented")
	}
	if fr.Cost.IsKnown() {
		t.Errorf("recursive cost = %v, want unknown", fr.Cost)
	}
}

func TestNoInstrumentPragma(t *testing.T) {
	src := `
func @hot(%n) noinstrument {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
	res := analyzeSrc(t, src, Options{ProbeInterval: 100})
	fr := res.Funcs["hot"]
	if fr.Instrumented || len(fr.Marks) != 0 {
		t.Error("noinstrument function must not receive probes")
	}
	if fr.LoopsTransformed != 0 {
		t.Error("noinstrument function must not be transformed")
	}
}

func TestImportedCostsUsed(t *testing.T) {
	src := `
func @caller(%n) {
entry:
  %r = call @libfn(%n)
  ret %r
}
func @libfn(%x) {
entry:
  ret %x
}
`
	// Pretend libfn came from another build unit with a big const cost;
	// the local (trivial) definition is shadowed by the imported entry,
	// exercising the §2.6 path.
	m := ir.MustParse(src)
	imported := CostTable{"libfn": {Name: "libfn", Instrumented: true, Cost: Unknown()}}
	res := Analyze(m, Options{ProbeInterval: 100, Imported: imported})
	caller := res.Funcs["caller"]
	// Local analysis of libfn overwrites the imported entry afterwards,
	// but caller was analyzed... order is call-graph: libfn first, so
	// the local result wins. Verify the table has the local cost.
	if res.Costs["libfn"].Cost.IsKnown() == false {
		t.Log("local analysis overwrote import as expected")
	}
	if caller == nil {
		t.Fatal("caller missing")
	}
}

func TestReductionShapes(t *testing.T) {
	src := `
func @f(%n) {
entry:
  %c = lt %n, 5
  br %c, a, b
a:
  %x = add %n, 1
  jmp join
b:
  %y = mul %n, 2
  jmp join
join:
  %i = mov 0
  jmp head
head:
  %hc = lt %i, 10
  br %hc, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
	m := ir.MustParse(src)
	res := Analyze(m, Options{ProbeInterval: 10000})
	fr := res.Funcs["f"]
	root := fr.Reduction.Root()
	if root == nil {
		t.Fatalf("CFG did not fully reduce:\n%s", fr.Fn)
	}
	dump := root.Dump()
	if !strings.Contains(dump, "diamond") {
		t.Errorf("reduction lacks diamond:\n%s", dump)
	}
	if !strings.Contains(dump, "loop3b") {
		t.Errorf("reduction lacks while-loop:\n%s", dump)
	}
	if !strings.Contains(dump, "chain") {
		t.Errorf("reduction lacks chain:\n%s", dump)
	}
	if root.NumBlocks() != len(fr.Fn.Blocks) {
		t.Errorf("root covers %d blocks, function has %d", root.NumBlocks(), len(fr.Fn.Blocks))
	}
}

func TestTriangleReduction(t *testing.T) {
	src := `
func @f(%n) {
entry:
  %c = lt %n, 5
  br %c, arm, join
arm:
  %x = add %n, 1
  jmp join
join:
  ret %n
}
`
	m := ir.MustParse(src)
	res := Analyze(m, Options{ProbeInterval: 10000})
	root := res.Funcs["f"].Reduction.Root()
	if root == nil {
		t.Fatal("triangle did not reduce")
	}
	if !strings.Contains(root.Dump(), "triangle") {
		t.Errorf("reduction lacks triangle:\n%s", root.Dump())
	}
}

func TestSelfLoopReduction(t *testing.T) {
	src := `
func @f(%n) {
entry:
  %i = mov 0
  jmp loop
loop:
  %i = add %i, 1
  %c = lt %i, %n
  br %c, loop, exit
exit:
  ret %i
}
`
	m := ir.MustParse(src)
	res := Analyze(m, Options{ProbeInterval: 10000})
	fr := res.Funcs["f"]
	root := fr.Reduction.Root()
	if root == nil {
		t.Fatalf("self-loop did not reduce:\n%s", fr.Fn)
	}
	if !strings.Contains(root.Dump(), "loop3c") {
		t.Errorf("reduction lacks self loop:\n%s", root.Dump())
	}
}

func TestIrreducibleCFGUnmatched(t *testing.T) {
	// Classic irreducible shape: two blocks jumping into each other's
	// loop from the entry.
	src := `
func @f(%n) {
entry:
  %c = lt %n, 5
  br %c, x, y
x:
  %a = add %n, 1
  %cx = lt %a, 100
  br %cx, y, exit
y:
  %b = add %n, 2
  %cy = lt %b, 100
  br %cy, x, exit
exit:
  ret %n
}
`
	m := ir.MustParse(src)
	res := Analyze(m, Options{ProbeInterval: 100})
	fr := res.Funcs["f"]
	if fr.Reduction.Root() != nil {
		t.Skip("CFG reduced after canonicalization; irreducibility not preserved")
	}
	if !fr.Instrumented {
		t.Error("unreduced function must be instrumented")
	}
	if len(fr.Marks) == 0 {
		t.Error("§3.6 produced no marks for unmatched regions")
	}
}

func TestMarksHaveValidPositions(t *testing.T) {
	srcs := []string{
		`
func @f(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`, `
extern @io cost 900
func @g(%n) {
entry:
  %a = extcall @io(%n)
  %b = extcall @io(%a)
  ret %b
}
`,
	}
	for _, src := range srcs {
		m := ir.MustParse(src)
		res := Analyze(m, Options{ProbeInterval: 300})
		for name, fr := range res.Funcs {
			inFunc := make(map[*ir.Block]bool)
			for _, b := range fr.Fn.Blocks {
				inFunc[b] = true
			}
			for _, mk := range fr.Marks {
				if !inFunc[mk.Block] {
					t.Errorf("%s: mark references foreign block %q", name, mk.Block.Name)
				}
				if mk.Index < 0 || mk.Index > len(mk.Block.Instrs) {
					t.Errorf("%s: mark index %d out of range [0,%d]", name, mk.Index, len(mk.Block.Instrs))
				}
				if mk.Inc < 0 {
					t.Errorf("%s: negative inc %d", name, mk.Inc)
				}
			}
		}
	}
}

// TestFigure1InitOpacityReduction reconstructs the paper's Figure 1
// walkthrough: Init_Opacity() from volrend — several assignments and
// five unnested loops — must reduce to one chain container whose
// children are the loop containers (c1, c2, ...) interleaved with the
// basic blocks between them, exactly as the paper's hierarchy shows.
func TestFigure1InitOpacityReduction(t *testing.T) {
	src := `
func @Init_Opacity() {
entry:
  %a = mov 1
  %b = mov 2
  %i1 = mov 0
  jmp for.body12.head
for.body12.head:
  %c1 = lt %i1, 256
  br %c1, for.body12, for.end16
for.body12:
  %a = add %a, %i1
  %i1 = add %i1, 1
  jmp for.body12.head
for.end16:
  %i2 = mov 0
  jmp for.body29.head
for.body29.head:
  %c2 = lt %i2, 128
  br %c2, for.body29, for.end33
for.body29:
  %b = add %b, %i2
  %i2 = add %i2, 1
  jmp for.body29.head
for.end33:
  %i3 = mov 0
  jmp l3.head
l3.head:
  %c3 = lt %i3, 64
  br %c3, l3.body, l3.end
l3.body:
  %a = xor %a, %i3
  %i3 = add %i3, 1
  jmp l3.head
l3.end:
  %i4 = mov 0
  jmp l4.head
l4.head:
  %c4 = lt %i4, 64
  br %c4, l4.body, l4.end
l4.body:
  %b = xor %b, %i4
  %i4 = add %i4, 1
  jmp l4.head
l4.end:
  %i5 = mov 0
  jmp l5.head
l5.head:
  %c5 = lt %i5, 32
  br %c5, l5.body, l5.end
l5.body:
  %a = or %a, %i5
  %i5 = add %i5, 1
  jmp l5.head
l5.end:
  %r = add %a, %b
  ret %r
}
`
	m := ir.MustParse(src)
	res := Analyze(m, Options{ProbeInterval: 100000})
	fr := res.Funcs["Init_Opacity"]
	root := fr.Reduction.Root()
	if root == nil {
		t.Fatalf("Init_Opacity did not reduce to a single container:\n%s", fr.Fn)
	}
	if root.Kind != CChain {
		t.Fatalf("root = %v, want chain (the paper's outer container)", root.Kind)
	}
	loops := 0
	for _, ch := range root.Children {
		if ch.IsLoop() {
			loops++
			if !ch.Trips.IsConst() {
				t.Errorf("loop %s has non-constant trips %v; backedge counts were known", ch.Entry.Name, ch.Trips)
			}
		}
	}
	if loops != 5 {
		t.Errorf("chain contains %d loop containers, want 5 (the five unnested loops)\n%s",
			loops, root.Dump())
	}
	// With all trip counts known and a large probe interval, the whole
	// function folds: cost constant, no instrumentation needed —
	// "eliminating such instrumentations can significantly reduce
	// runtime overhead."
	if !fr.Cost.IsConst() {
		t.Errorf("function cost = %v, want constant", fr.Cost)
	}
	if fr.Instrumented || len(fr.Marks) != 0 {
		t.Errorf("small-cost function should carry no probes (marks=%d)", len(fr.Marks))
	}
}

// A very long basic block must receive mid-block probes so spacing
// holds even without branches.
func TestHugeBlockGetsMidBlockProbes(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("big", 0)
	b := ir.NewBuilder(f)
	x := b.Mov(1)
	for i := 0; i < 900; i++ {
		x = b.BinI(ir.OpAdd, x, 1)
	}
	b.Ret(x)
	f.Reindex()
	res := Analyze(m, Options{ProbeInterval: 200})
	fr := res.Funcs["big"]
	if !fr.Instrumented {
		t.Fatal("900-IR block should be instrumented")
	}
	inBlock := 0
	for _, mk := range fr.Marks {
		if mk.Block == f.Blocks[0] && mk.Index > 0 && mk.Index < 901 {
			inBlock++
		}
	}
	if inBlock < 3 {
		t.Errorf("mid-block probes = %d, want >= 3 for 900 IR at interval 200", inBlock)
	}
}
