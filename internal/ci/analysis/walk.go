package analysis

import "repro/internal/ir"

// This file contains the probe-placement walker: given the container
// tree (§3.2) and evaluated costs (§3.3), it decides which containers
// are transparent (their cost simply accumulates into the enclosing
// container) and which must carry probes, inserting marks so that the
// IR distance between probes stays within Options.ProbeInterval along
// every path, while the counter never misses more than roughly the
// allowable error at region boundaries.
//
// The walker threads a "pending" value: the exact number of IR
// instructions executed since the last probe along the (single) path
// through the current chain context.

// armMean applies the paper's g function: the mean of two branch-arm
// costs, accepted only when the arms differ by at most the allowable
// error and the mean fits under the probe interval.
func armMean(a, b Cost, opts *Options) Cost {
	if !a.DiffWithin(b, opts.AllowableError) {
		return Unknown()
	}
	m := a.Mean(b)
	if m.Kind == CostConst && m.C > opts.ProbeInterval {
		return Unknown()
	}
	return m
}

// instrumentFunc walks the reduction and emits probe marks.
func (a *analyzer) instrumentFunc() {
	regions := a.res.Reduction.Regions
	if root := a.res.Reduction.Root(); root != nil {
		residual := a.visitInstrument(root, 0)
		if residual > 0 {
			// Flush before the function returns so callers can treat
			// an instrumented callee as fully self-accounting.
			a.markEnd(root.Exit, residual)
		}
		return
	}
	a.instrumentUnmatched(regions)
}

// markEnd emits a mark at the end of block b (before its terminator).
func (a *analyzer) markEnd(b *ir.Block, inc int64) {
	a.mark(b, len(b.Instrs), inc)
}

// visit processes container c with the given pending count and returns
// the new pending. Transparent containers just accumulate; all others
// are instrumented internally.
func (a *analyzer) visit(c *Container, pending int64) int64 {
	if c.Cost.IsConst() && !a.hasBarrier(c) && pending+c.Cost.C <= a.opts.ProbeInterval {
		return pending + c.Cost.C
	}
	pending = a.flushBefore(c, pending)
	return a.visitInstrument(c, pending)
}

// flushBefore emits a probe for the pending count ahead of a container
// that will do its own internal accounting. Small residues (under the
// flush threshold) are dropped — the documented approximation that
// trades bounded undercounting for fewer probes.
func (a *analyzer) flushBefore(c *Container, pending int64) int64 {
	if pending <= a.flushThreshold {
		if c.IsLoop() {
			return 0 // loops account per-iteration; residue cannot carry in
		}
		return pending
	}
	if c.IsLoop() {
		if c.Loop != nil && c.Loop.Preheader >= 0 {
			a.markEnd(a.f.Blocks[c.Loop.Preheader], pending)
		}
		return 0
	}
	a.mark(c.Entry, 0, pending)
	return 0
}

// visitInstrument places probes inside c so that its cost is fully
// accounted (modulo bounded tails) and returns the residual pending at
// its exit.
func (a *analyzer) visitInstrument(c *Container, pending int64) int64 {
	switch c.Kind {
	case CBlock:
		return a.walkBlock(c.Block, pending)
	case CChain:
		for _, ch := range c.Children {
			pending = a.visit(ch, pending)
		}
		return pending
	case CDiamond:
		head, a1, a2, join := c.Children[0], c.Children[1], c.Children[2], c.Children[3]
		pending = a.visit(head, pending)
		if g := armMean(a1.Cost, a2.Cost, a.opts); g.IsConst() &&
			pending+g.C <= a.opts.ProbeInterval && !a.hasBarrier(a1) && !a.hasBarrier(a2) {
			pending += g.C
		} else {
			if pending > a.flushThreshold {
				a.markEnd(head.Exit, pending)
				pending = 0
			}
			r1 := a.visitArm(a1, pending)
			r2 := a.visitArm(a2, pending)
			pending = (r1 + r2) / 2
		}
		return a.visit(join, pending)
	case CTriangle:
		head, arm, join := c.Children[0], c.Children[1], c.Children[2]
		pending = a.visit(head, pending)
		if g := armMean(arm.Cost, Const(0), a.opts); g.IsConst() &&
			pending+g.C <= a.opts.ProbeInterval && !a.hasBarrier(arm) {
			pending += g.C
		} else {
			if pending > a.flushThreshold {
				a.markEnd(head.Exit, pending)
				pending = 0
			}
			r := a.visitArm(arm, pending)
			pending = (r + pending) / 2
		}
		return a.visit(join, pending)
	case CLoopSelf, CLoopWhile, CLoopDo:
		return a.visitLoop(c)
	}
	return pending
}

// visitArm instruments one branch arm and flushes its residual at the
// arm's exit so the two join paths agree (within the flush threshold).
func (a *analyzer) visitArm(arm *Container, pending int64) int64 {
	r := a.visit(arm, pending)
	if r > a.flushThreshold && !arm.IsLoop() {
		a.markEnd(arm.Exit, r)
		return 0
	}
	if arm.IsLoop() {
		return 0
	}
	return r
}

// perIterCost returns the constant cost of one loop iteration, when
// known.
func (c *Container) perIterCost() (int64, bool) {
	var total Cost
	switch c.Kind {
	case CLoopSelf:
		total = c.Children[0].Cost
	case CLoopWhile, CLoopDo:
		total = c.Children[0].Cost.Add(c.Children[1].Cost)
	default:
		return 0, false
	}
	if !total.IsConst() {
		return 0, false
	}
	return total.C, true
}

// visitLoop instruments a loop container: via the §3.4 transform (and
// §3.5 cloning) when the loop is canonical, or with per-iteration
// accounting otherwise. Entry pending has already been flushed/dropped.
func (a *analyzer) visitLoop(c *Container) int64 {
	perIter, perIterOK := c.perIterCost()
	if perIterOK && perIter <= a.opts.ProbeInterval &&
		!a.opts.DisableLoopTransform && a.canTransform(c) {
		// Residual: per-entry bookkeeping the chunk probes don't see —
		// the outer re-test, the chunk setup, the final outer test, and
		// (when cloned) the run-time size guard in the preheader.
		residual := int64(9)
		if !c.Trips.IsConst() && !a.opts.DisableLoopClone && a.canClone(c) {
			a.cloneLoop(c, perIter)
			a.res.LoopsCloned++
			a.opts.stage("loop-clone", a.f)
			residual += 8
		}
		a.transformLoop(c, perIter)
		a.res.LoopsTransformed++
		a.opts.stage("loop-transform", a.f)
		return residual
	}
	// Conservative per-iteration accounting (§3.4 fallback): probe at
	// the iteration's end with whatever accumulated.
	switch c.Kind {
	case CLoopSelf:
		body := c.Children[0]
		r := a.visit(body, 0)
		if r > 0 && !body.IsLoop() {
			a.markEnd(body.Exit, r)
		}
		return 0
	case CLoopWhile:
		header, body := c.Children[0], c.Children[1]
		p := a.visit(header, 0)
		p = a.visit(body, p)
		if p > 0 && !body.IsLoop() {
			a.markEnd(body.Exit, p)
		}
		// Exit path runs the header once more, unaccounted.
		if header.Cost.IsConst() {
			return header.Cost.C
		}
		return 0
	case CLoopDo:
		top, bottom := c.Children[0], c.Children[1]
		p := a.visit(top, 0)
		p = a.visit(bottom, p)
		if p > 0 && !bottom.IsLoop() {
			a.markEnd(bottom.Exit, p)
		}
		return 0
	}
	return 0
}

// walkBlock does instruction-level accounting within one basic block,
// emitting probes after barrier instructions (uninstrumented calls)
// and whenever the running count would exceed the probe interval.
func (a *analyzer) walkBlock(b *ir.Block, pending int64) int64 {
	for i := range b.Instrs {
		cost, barrier := a.instrCost(&b.Instrs[i])
		if cost.IsConst() {
			pending += cost.C
		} else {
			pending += 1 + a.opts.ExternCostIR
			barrier = true
		}
		if barrier || pending > a.opts.ProbeInterval {
			a.mark(b, i+1, pending)
			pending = 0
		}
	}
	return pending + 1 // terminator
}

// instrumentUnmatched handles CFGs the rules could not fully reduce
// (§3.6). Each remaining region accounts for itself; the CoreDet-style
// balance optimization absorbs small constant-cost predecessor regions
// into their successor's accounting.
func (a *analyzer) instrumentUnmatched(regions []*Region) {
	absorbed := make(map[*Region]bool)
	pendingIn := make(map[*Region]int64)
	for _, r := range regions {
		if len(r.Preds) == 0 {
			continue
		}
		ok := true
		var costs []int64
		for _, p := range r.Preds {
			if p == r || len(p.Succs) != 1 || p.C.IsLoop() || a.hasBarrier(p.C) {
				ok = false
				break
			}
			if !p.C.Cost.IsConst() || p.C.Cost.C > a.flushThreshold {
				ok = false
				break
			}
			costs = append(costs, p.C.Cost.C)
		}
		if !ok {
			continue
		}
		// All pairwise within the allowable error?
		minC, maxC := costs[0], costs[0]
		var sum int64
		for _, c := range costs {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
			sum += c
		}
		if maxC-minC > a.opts.AllowableError {
			continue
		}
		for _, p := range r.Preds {
			absorbed[p] = true
		}
		pendingIn[r] = sum / int64(len(costs))
	}
	for _, r := range regions {
		if absorbed[r] {
			continue
		}
		res := a.visitInstrument(r.C, pendingIn[r])
		if res > 0 && !r.C.IsLoop() {
			a.markEnd(r.C.Exit, res)
		}
	}
}
