package analysis

import (
	"testing"

	"repro/internal/ci/fuzz"
	"repro/internal/ir"
)

// instrumentForSpacing runs the CI analysis+marks on a module and
// materializes the probes (the instrument package would normally do
// this; re-implemented here to avoid an import cycle).
func instrumentForSpacing(t *testing.T, m *ir.Module, probeInterval int64) {
	t.Helper()
	res := Analyze(m, Options{ProbeInterval: probeInterval})
	for _, f := range m.Funcs {
		fr := res.Funcs[f.Name]
		if fr == nil {
			continue
		}
		byBlock := make(map[*ir.Block][]Mark)
		for _, mk := range fr.Marks {
			byBlock[mk.Block] = append(byBlock[mk.Block], mk)
		}
		for b, ms := range byBlock {
			// Insert in descending index order.
			for i := 0; i < len(ms); i++ {
				for j := i + 1; j < len(ms); j++ {
					if ms[j].Index > ms[i].Index {
						ms[i], ms[j] = ms[j], ms[i]
					}
				}
			}
			for _, mk := range ms {
				kind := ir.ProbeIR
				if mk.Loop {
					kind = ir.ProbeIRLoop
				}
				pi := &ir.ProbeInfo{Kind: kind, Inc: mk.Inc, IndVar: mk.IndVar, Base: mk.Base}
				if !mk.Loop {
					pi.IndVar, pi.Base = ir.NoReg, ir.NoReg
				}
				idx := mk.Index
				if idx > len(b.Instrs) {
					idx = len(b.Instrs)
				}
				b.Instrs = append(b.Instrs, ir.Instr{})
				copy(b.Instrs[idx+1:], b.Instrs[idx:])
				b.Instrs[idx] = ir.Instr{Op: ir.OpProbe, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg, Probe: pi}
			}
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("instrumented module invalid: %v", err)
	}
}

// Every instrumented function of every fuzz program must satisfy the
// probe-spacing invariant the analysis is supposed to establish.
func TestCheckSpacingOnFuzzPrograms(t *testing.T) {
	const probeInterval = 200
	for seed := uint64(1); seed <= 25; seed++ {
		fresh := fuzz.Generate(seed, fuzz.Options{WithExterns: seed%2 == 0})
		instrumentForSpacing(t, fresh, probeInterval)
		for _, f := range fresh.Funcs {
			if f.NoInstrument {
				continue
			}
			// Transparent (small) functions carry no probes by design;
			// their cost is bounded by the interval, so skip them.
			hasProbe := false
			for _, b := range f.Blocks {
				for i := range b.Instrs {
					if b.Instrs[i].Op == ir.OpProbe {
						hasProbe = true
					}
				}
			}
			if !hasProbe {
				continue
			}
			if err := CheckSpacing(f, 100, probeInterval); err != nil {
				t.Errorf("seed %d, @%s: %v\n%s", seed, f.Name, err, f)
			}
		}
	}
}

func TestCheckSpacingCatchesViolations(t *testing.T) {
	// A long probe-free loop must be flagged.
	m := ir.MustParse(`
func @f(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, 100000
  br %c, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  probe ir 300000
  ret %i
}
`)
	if err := CheckSpacing(m.FuncByName("f"), 100, 200); err == nil {
		t.Error("unprobed big loop not flagged")
	}
	// A long straightline stretch must be flagged too.
	m2 := ir.NewModule("t")
	f := m2.NewFunc("g", 0)
	b := ir.NewBuilder(f)
	x := b.Mov(1)
	for i := 0; i < 600; i++ {
		x = b.BinI(ir.OpAdd, x, 1)
	}
	b.B.Instrs = append(b.B.Instrs, ir.Instr{Op: ir.OpProbe, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg,
		Probe: &ir.ProbeInfo{Kind: ir.ProbeIR, Inc: 600, IndVar: ir.NoReg, Base: ir.NoReg}})
	b.Ret(x)
	f.Reindex()
	if err := CheckSpacing(f, 100, 200); err == nil {
		t.Error("600-IR probe-free prefix not flagged at budget 200")
	}
}
