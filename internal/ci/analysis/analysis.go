package analysis

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// Options configures the analysis phase.
type Options struct {
	// ProbeInterval is the compile-time maximum spacing between probes,
	// in IR instructions (§2.1).
	ProbeInterval int64
	// AllowableError bounds how different two branch arms may be while
	// still summarized by their mean (§3.3). The paper heuristically
	// sets it equal to the probe interval; zero means "same as
	// ProbeInterval".
	AllowableError int64
	// ExternCostIR is the heuristic IR cost charged for uninstrumented
	// external calls (§4; the paper uses 100).
	ExternCostIR int64
	// Imported holds function costs from separately compiled modules
	// (§2.6 modular compilation).
	Imported CostTable
	// DisableLoopTransform turns off the §3.4 rewrite (for ablations).
	DisableLoopTransform bool
	// DisableLoopClone turns off §3.5 cloning (for ablations).
	DisableLoopClone bool
	// MaxCloneBlocks bounds which loops count as "simple" for cloning;
	// zero means the default of 3 blocks.
	MaxCloneBlocks int
	// StageHook, when non-nil, observes each function right after an
	// analysis-side pipeline stage mutated it: "canonicalize" (§3.1
	// return unification, loop-simplify, critical-edge splitting),
	// "loop-transform" (§3.4) and "loop-clone" (§3.5). The hook is the
	// attachment point for the translation-validation sanitizer
	// (internal/sanitize); it must not mutate the function.
	StageHook StageHook
}

// StageHook observes a function after a named analysis stage.
type StageHook func(stage string, f *ir.Func)

// stage invokes the configured StageHook, if any.
func (o *Options) stage(name string, f *ir.Func) {
	if o.StageHook != nil {
		o.StageHook(name, f)
	}
}

func (o *Options) withDefaults() *Options {
	out := *o
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 1000
	}
	if out.AllowableError <= 0 {
		out.AllowableError = out.ProbeInterval
	}
	if out.ExternCostIR <= 0 {
		out.ExternCostIR = 100
	}
	if out.MaxCloneBlocks <= 0 {
		out.MaxCloneBlocks = 3
	}
	return &out
}

// FuncInfo is the exported per-function summary (written to cost files
// for modular compilation).
type FuncInfo struct {
	Name string `json:"name"`
	// Instrumented means the function self-accounts with internal
	// probes; call sites charge only the call instruction.
	Instrumented bool `json:"instrumented"`
	// Cost is the function's static cost; for instrumented functions it
	// is informational (the entry container cost when not reducible).
	Cost Cost `json:"cost"`
}

// CostTable maps function name to its exported summary.
type CostTable map[string]FuncInfo

// Mark is a probe insertion request for the instrumentation phase: a
// probe goes immediately before Block.Instrs[Index] (Index ==
// len(Instrs) means at the end of the block, before the terminator).
type Mark struct {
	Block *ir.Block
	Index int
	// Inc is the static IR increment; for loop marks it is the
	// per-induction-step increment.
	Inc int64
	// Loop marks a §3.4/§3.5 dynamic-increment probe computing
	// (IndVar-Base)*Inc.
	Loop         bool
	IndVar, Base ir.Reg
}

// FuncResult is the analysis output for one function.
type FuncResult struct {
	Fn           *ir.Func
	Instrumented bool
	Cost         Cost
	Marks        []Mark
	// Reduction exposes the container graph for tests and debugging.
	Reduction        *Reduction
	LoopsTransformed int
	LoopsCloned      int
}

// ModuleResult is the analysis output for a module.
type ModuleResult struct {
	Mod *ir.Module
	// Funcs maps function name to its result.
	Funcs map[string]*FuncResult
	// Costs is the full cost table (imported entries included), ready
	// for export (§2.6).
	Costs CostTable
	Opts  *Options
}

// Analyze canonicalizes and analyzes every function of m in call-graph
// order, applying loop transforms/cloning, and returns probe marks for
// the instrumentation phase. Analyze mutates m (canonicalization and
// loop rewrites); callers who need the original should Clone first.
func Analyze(m *ir.Module, opts Options) *ModuleResult {
	o := opts.withDefaults()
	res := &ModuleResult{
		Mod:   m,
		Funcs: make(map[string]*FuncResult),
		Costs: make(CostTable),
		Opts:  o,
	}
	for name, fi := range o.Imported {
		res.Costs[name] = fi
	}
	order, recursive := callOrder(m)
	for _, f := range order {
		fr := analyzeFunc(f, o, res.Costs, recursive[f.Name])
		res.Funcs[f.Name] = fr
		res.Costs[f.Name] = FuncInfo{Name: f.Name, Instrumented: fr.Instrumented, Cost: fr.Cost}
	}
	return res
}

// callOrder returns the module's functions with callees before callers
// and reports which functions participate in recursion.
func callOrder(m *ir.Module) ([]*ir.Func, map[string]bool) {
	recursive := make(map[string]bool)
	type state uint8
	const (
		unvisited state = iota
		visiting
		done
	)
	_ = unvisited
	st := make(map[string]state, len(m.Funcs))
	var order []*ir.Func
	var visit func(f *ir.Func)
	visit = func(f *ir.Func) {
		switch st[f.Name] {
		case visiting:
			recursive[f.Name] = true
			return
		case done:
			return
		}
		st[f.Name] = visiting
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op != ir.OpCall {
					continue
				}
				if callee := m.FuncByName(in.Callee); callee != nil {
					visit(callee)
					// Propagate recursion discovered through this edge.
					if st[callee.Name] == visiting {
						recursive[f.Name] = true
					}
				}
			}
		}
		st[f.Name] = done
		order = append(order, f)
	}
	// Deterministic root order.
	funcs := append([]*ir.Func(nil), m.Funcs...)
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name < funcs[j].Name })
	for _, f := range funcs {
		visit(f)
	}
	return order, recursive
}

// analyzer holds per-function analysis state.
type analyzer struct {
	f     *ir.Func
	g     *cfg.Graph
	lf    *cfg.LoopForest
	ri    *cfg.RegInfo
	opts  *Options
	costs CostTable
	res   *FuncResult
	// flushThreshold is the pending size below which residuals may be
	// dropped instead of flushed with a probe.
	flushThreshold int64
}

func analyzeFunc(f *ir.Func, opts *Options, costs CostTable, isRecursive bool) *FuncResult {
	// §3.1 pre-processing: unify returns and simplify loops. Critical
	// edges are split only if the rules get stuck — blanket splitting
	// would erase the triangle (2b) and self-loop (3c) patterns.
	cfg.UnifyReturns(f)
	cfg.LoopSimplify(f)
	a := newAnalyzer(f, opts, costs)
	if a.res.Reduction.Root() == nil && cfg.SplitCriticalEdges(f) {
		cfg.LoopSimplify(f)
		a = newAnalyzer(f, opts, costs)
	}
	opts.stage("canonicalize", f)
	a.res.Instrumented = false

	root := a.res.Reduction.Root()
	switch {
	case f.NoInstrument:
		// #pragma ci_probe disable: never probed; export best-known cost.
		if root != nil {
			a.res.Cost = root.Cost
		} else {
			a.res.Cost = Unknown()
		}
		return a.res
	case isRecursive:
		a.res.Cost = Unknown()
		a.res.Instrumented = true
	case root != nil && root.Cost.IsConst() && root.Cost.C <= opts.ProbeInterval && !a.hasBarrier(root):
		// Small constant-cost function: transparent to callers, no probes.
		a.res.Cost = root.Cost
		return a.res
	default:
		a.res.Instrumented = true
		if root != nil {
			a.res.Cost = root.Cost
		} else {
			// Not fully reducible: export the entry container's cost
			// (§3.3 function cost optimization) and instrument the rest.
			a.res.Cost = a.res.Reduction.Regions[0].C.Cost
		}
	}
	a.instrumentFunc()
	return a.res
}

func newAnalyzer(f *ir.Func, opts *Options, costs CostTable) *analyzer {
	f.Reindex()
	g := cfg.New(f)
	dom := cfg.Dominators(g)
	lf := cfg.FindLoops(g, dom)
	ri := cfg.AnalyzeRegs(f)
	a := &analyzer{
		f: f, g: g, lf: lf, ri: ri, opts: opts, costs: costs,
		flushThreshold: opts.AllowableError / 2,
	}
	a.res = &FuncResult{Fn: f}
	a.res.Reduction = reduce(f, g, lf, ri, opts, a.blockCost)
	return a
}

// rebuild refreshes CFG-derived state after a loop rewrite.
func (a *analyzer) rebuild() {
	a.f.Reindex()
	a.g = cfg.New(a.f)
	a.ri = cfg.AnalyzeRegs(a.f)
}

// instrCost returns the static cost contribution of one instruction and
// whether a probe barrier must follow it (extcall or a call whose cost
// the counter cannot otherwise account for).
func (a *analyzer) instrCost(in *ir.Instr) (Cost, bool) {
	switch in.Op {
	case ir.OpCall:
		fi, ok := a.costs[in.Callee]
		if !ok {
			// Callee not yet analyzed (recursion) — treated as
			// self-accounting.
			return Const(1), false
		}
		if fi.Instrumented {
			return Const(1), false
		}
		// Uninstrumented callee: charge its cost, substituting
		// argument values into parametric costs.
		cost := fi.Cost.Subst(func(p int) Cost {
			if p >= len(in.Args) {
				return Unknown()
			}
			arg := in.Args[p]
			if c, ok := a.ri.ConstValue(arg); ok {
				return Const(c)
			}
			if cp, ok := a.ri.ParamValue(arg); ok {
				return Affine(0, 1, cp)
			}
			return Unknown()
		})
		switch {
		case cost.IsConst() && cost.C <= a.opts.ProbeInterval:
			return cost.AddConst(1), false
		case cost.IsConst():
			// Known but too large to leave unprobed (NoInstrument
			// function with a big constant cost): probe right after.
			return cost.AddConst(1), true
		default:
			// Unknown at this site: use the extern heuristic and probe.
			return Const(1 + a.opts.ExternCostIR), true
		}
	case ir.OpExtCall:
		return Const(1 + a.opts.ExternCostIR), true
	case ir.OpProbe:
		return Const(0), false
	default:
		return Const(1), false
	}
}

// blockCost sums instruction costs (+1 for the terminator) and reports
// whether the block contains probe barriers.
func (a *analyzer) blockCost(b *ir.Block) (Cost, bool) {
	total := Const(1)
	barrier := false
	for i := range b.Instrs {
		c, bar := a.instrCost(&b.Instrs[i])
		total = total.Add(c)
		barrier = barrier || bar
	}
	return total, barrier
}

// hasBarrier reports whether any leaf under c is a barrier block.
func (a *analyzer) hasBarrier(c *Container) bool {
	if c.Kind == CBlock {
		return c.Barrier
	}
	for _, ch := range c.Children {
		if a.hasBarrier(ch) {
			return true
		}
	}
	return false
}

func (a *analyzer) mark(b *ir.Block, index int, inc int64) {
	a.res.Marks = append(a.res.Marks, Mark{Block: b, Index: index, Inc: inc})
}

func (a *analyzer) markLoop(b *ir.Block, index int, incPerStep int64, ind, base ir.Reg) {
	a.res.Marks = append(a.res.Marks, Mark{
		Block: b, Index: index, Inc: incPerStep, Loop: true, IndVar: ind, Base: base,
	})
}
