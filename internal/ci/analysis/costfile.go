package analysis

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file implements the exported cost files of §2.6: to support
// modular compilation, the pass exports per-function metadata from each
// build unit, which is imported while building dependent units.

// costFile is the serialized form of a cost table.
type costFile struct {
	Version int        `json:"version"`
	Funcs   []FuncInfo `json:"funcs"`
}

const costFileVersion = 1

// ExportCosts serializes the cost table for use by dependent build
// units.
func ExportCosts(t CostTable) ([]byte, error) {
	cf := costFile{Version: costFileVersion}
	names := make([]string, 0, len(t))
	for n := range t {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cf.Funcs = append(cf.Funcs, t[n])
	}
	return json.MarshalIndent(cf, "", "  ")
}

// ImportCosts parses a cost file produced by ExportCosts.
func ImportCosts(data []byte) (CostTable, error) {
	var cf costFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("analysis: parsing cost file: %w", err)
	}
	if cf.Version != costFileVersion {
		return nil, fmt.Errorf("analysis: cost file version %d, want %d", cf.Version, costFileVersion)
	}
	t := make(CostTable, len(cf.Funcs))
	for _, fi := range cf.Funcs {
		t[fi.Name] = fi
	}
	return t, nil
}
