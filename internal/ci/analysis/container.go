package analysis

import (
	"fmt"
	"strings"

	"repro/internal/cfg"
	"repro/internal/ir"
)

// CKind identifies which Figure 3 pattern produced a container.
type CKind uint8

const (
	// CBlock is a leaf container wrapping one basic block.
	CBlock CKind = iota
	// CChain is rule 1: a sequence of single-entry single-exit children.
	CChain
	// CDiamond is rule 2a: head, two arms, join.
	CDiamond
	// CTriangle is rule 2b: head, one arm, join.
	CTriangle
	// CLoopDo is rule 3a: two-node cycle exiting from the bottom node;
	// both children execute b+1 times.
	CLoopDo
	// CLoopWhile is rule 3b: two-node cycle exiting from the header;
	// the header executes b+1 times, the body b times.
	CLoopWhile
	// CLoopSelf is rule 3c: a single self-looping node executing b+1
	// times.
	CLoopSelf
)

var ckindNames = [...]string{
	CBlock: "block", CChain: "chain", CDiamond: "diamond",
	CTriangle: "triangle", CLoopDo: "loop3a", CLoopWhile: "loop3b",
	CLoopSelf: "loop3c",
}

// String names the container kind.
func (k CKind) String() string { return ckindNames[k] }

// Container is a node of the hierarchical abstraction built by the
// production-rule system (§3.2). Every container is a single-entry,
// single-exit region of the CFG.
type Container struct {
	Kind     CKind
	Children []*Container
	// Block is the wrapped basic block for CBlock leaves.
	Block *ir.Block
	// Entry and Exit are the region's entry and exit basic blocks.
	Entry, Exit *ir.Block
	// Cost is the evaluated cost (Table 6); for loop containers it
	// already includes the trip multiplication when trips are known.
	Cost Cost
	// Trips is the body execution count for loop containers.
	Trips Cost
	// Ind is the recognized induction variable for loop containers.
	Ind cfg.Induction
	// Loop is the natural loop for loop containers, when matched.
	Loop *cfg.Loop
	// Barrier marks leaves containing uninstrumentable calls (external
	// library calls / unknown-cost NoInstrument callees) after which a
	// probe must be placed (§3).
	Barrier bool
}

// IsLoop reports whether the container is one of the loop kinds.
func (c *Container) IsLoop() bool {
	return c.Kind == CLoopDo || c.Kind == CLoopWhile || c.Kind == CLoopSelf
}

// Header returns the loop-header child for loop containers: the child
// controlling the loop (the single child for CLoopSelf, the entry child
// otherwise).
func (c *Container) Header() *Container { return c.Children[0] }

// NumBlocks counts the basic blocks contained in the region.
func (c *Container) NumBlocks() int {
	if c.Kind == CBlock {
		return 1
	}
	n := 0
	for _, ch := range c.Children {
		n += ch.NumBlocks()
	}
	return n
}

// Dump renders the container tree for tests and debugging.
func (c *Container) Dump() string {
	var sb strings.Builder
	c.dump(&sb, 0)
	return sb.String()
}

func (c *Container) dump(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	if c.Kind == CBlock {
		fmt.Fprintf(sb, "block %s cost=%s", c.Block.Name, c.Cost)
		if c.Barrier {
			sb.WriteString(" barrier")
		}
		sb.WriteByte('\n')
		return
	}
	fmt.Fprintf(sb, "%s cost=%s", c.Kind, c.Cost)
	if c.IsLoop() {
		fmt.Fprintf(sb, " trips=%s", c.Trips)
	}
	sb.WriteByte('\n')
	for _, ch := range c.Children {
		ch.dump(sb, depth+1)
	}
}
