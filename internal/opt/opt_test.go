package opt

import (
	"testing"

	"repro/internal/ci/fuzz"
	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func run(t *testing.T, m *ir.Module, fn string, args ...int64) int64 {
	t.Helper()
	machine := vm.New(m, nil, 1)
	machine.LimitInstrs = 80_000_000
	th := machine.NewThread(0)
	rv, err := th.Run(fn, args...)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, m)
	}
	return rv
}

func TestConstantFolding(t *testing.T) {
	m := ir.MustParse(`
func @f() {
entry:
  %a = mov 6
  %b = mov 7
  %c = mul %a, %b
  %d = add %c, 8
  ret %d
}
`)
	f := m.FuncByName("f")
	s := Func(f)
	if s.Folded == 0 {
		t.Fatalf("nothing folded:\n%s", f)
	}
	if got := run(t, m, "f"); got != 50 {
		t.Errorf("result = %d, want 50", got)
	}
	// After folding + DCE the function should be tiny.
	if n := f.NumInstrs(); n > 3 {
		t.Errorf("instrs = %d after optimization, want <= 3\n%s", n, f)
	}
}

func TestConstantBranchFolding(t *testing.T) {
	m := ir.MustParse(`
func @f(%x) {
entry:
  %c = mov 1
  br %c, yes, no
yes:
  %r = add %x, 10
  ret %r
no:
  %r2 = add %x, 99
  ret %r2
}
`)
	f := m.FuncByName("f")
	Func(f)
	if got := run(t, m, "f", 5); got != 15 {
		t.Fatalf("result = %d, want 15", got)
	}
	// The dead arm must be gone.
	if f.BlockByName("no") != nil {
		t.Errorf("unreachable arm survived:\n%s", f)
	}
}

func TestDeadCodeElimination(t *testing.T) {
	m := ir.MustParse(`
func @f(%x) {
entry:
  %dead1 = mul %x, 3
  %dead2 = add %dead1, 4
  %live = add %x, 1
  %t = rdcyc
  ret %live
}
`)
	f := m.FuncByName("f")
	s := Func(f)
	if s.DeadRemoved < 3 {
		t.Errorf("DeadRemoved = %d, want >= 3 (two dead chains + rdcyc)\n%s", s.DeadRemoved, f)
	}
	if got := run(t, m, "f", 41); got != 42 {
		t.Errorf("result = %d", got)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := ir.MustParse(`
mem 16
extern @e cost 10
func @f(%x) {
entry:
  %v = mov 5
  store _, 3, %v
  %unusedload = load _, 3
  %unusedcall = call @g(%x)
  %unusedext = extcall @e(%x)
  %one = mov 1
  %unusedatomic = aadd _, 3, %one
  ret %x
}
func @g(%y) {
entry:
  %v = mov 9
  store _, 7, %v
  ret %y
}
`)
	f := m.FuncByName("f")
	Func(f)
	counts := map[ir.Opcode]int{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			counts[b.Instrs[i].Op]++
		}
	}
	if counts[ir.OpStore] != 1 || counts[ir.OpLoad] != 1 ||
		counts[ir.OpCall] != 1 || counts[ir.OpExtCall] != 1 || counts[ir.OpAtomicAdd] != 1 {
		t.Errorf("side-effecting ops removed: %v\n%s", counts, f)
	}
	run(t, m, "f", 1)
	// The callee's store must have happened.
	machine := vm.New(m, nil, 1)
	th := machine.NewThread(0)
	if _, err := th.Run("f", 1); err != nil {
		t.Fatal(err)
	}
	if machine.Mem[7] != 9 {
		t.Error("call side effect lost")
	}
}

func TestJumpThreadingAndMerging(t *testing.T) {
	m := ir.MustParse(`
func @f(%x) {
entry:
  jmp hop1
hop1:
  jmp hop2
hop2:
  %y = add %x, 1
  jmp tail
tail:
  %z = add %y, 1
  ret %z
}
`)
	f := m.FuncByName("f")
	s := Func(f)
	if got := run(t, m, "f", 1); got != 3 {
		t.Fatalf("result = %d", got)
	}
	if len(f.Blocks) != 1 {
		t.Errorf("blocks = %d after threading+merging, want 1 (%+v)\n%s", len(f.Blocks), s, f)
	}
}

func TestNoFoldAcrossNonDominatingDef(t *testing.T) {
	// %v's single definition sits on one branch arm; the join must not
	// treat it as a constant (the other path reads the zero value).
	m := ir.MustParse(`
func @f(%x) {
entry:
  %c = lt %x, 5
  br %c, def, join
def:
  %v = mov 77
  jmp join
join:
  %r = add %v, 1
  ret %r
}
`)
	orig0 := run(t, m.Clone(), "f", 10) // skips def: %v == 0 -> 1
	orig1 := run(t, m.Clone(), "f", 1)  // takes def: 78
	f := m.FuncByName("f")
	Func(f)
	if got := run(t, m, "f", 10); got != orig0 {
		t.Errorf("non-dominated path changed: %d, want %d\n%s", got, orig0, f)
	}
	if got := run(t, m, "f", 1); got != orig1 {
		t.Errorf("dominated path changed: %d, want %d", got, orig1)
	}
}

// The optimizer must preserve semantics on all workloads and shrink or
// hold the instruction count.
func TestOptimizePreservesWorkloads(t *testing.T) {
	for _, wl := range workloads.All {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			orig := wl.Build(1)
			want := run(t, orig, "main", 0)
			opt := wl.Build(1)
			Module(opt)
			if err := opt.Verify(); err != nil {
				t.Fatalf("optimized module invalid: %v", err)
			}
			if got := run(t, opt, "main", 0); got != want {
				t.Errorf("result changed: %d, want %d", got, want)
			}
		})
	}
}

// Differential fuzz: optimization preserves random-program semantics.
func TestOptimizeFuzz(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		src := fuzz.Generate(seed, fuzz.Options{WithExterns: seed%2 == 0})
		want := run(t, src.Clone(), "main", 1234)
		m := src.Clone()
		Module(m)
		if err := m.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := run(t, m, "main", 1234); got != want {
			t.Errorf("seed %d: result %d, want %d", seed, got, want)
		}
	}
}

func TestOptimizeIdempotentAtFixpoint(t *testing.T) {
	m := workloads.ByName("volrend").Build(1)
	Module(m)
	before := m.String()
	s := Module(m)
	if s.Folded+s.DeadRemoved+s.BlocksMerged+s.BlocksRemoved+s.JumpsThreaded != 0 {
		t.Errorf("second optimization pass still changed things: %+v", s)
	}
	if m.String() != before {
		t.Error("module text changed on second pass")
	}
}
