// Package opt is a small IR optimizer run ahead of the Compiler
// Interrupts analysis — the stand-in for the -O3 pipeline the paper's
// pass consumes. It implements:
//
//   - local constant/copy propagation and constant folding
//   - global folding of single-definition constant registers
//   - dead code elimination (pure defs with no uses)
//   - jump threading through empty forwarding blocks
//   - straight-line block merging
//   - unreachable block elimination
//
// Passes iterate to a fixpoint. Optimize never changes observable
// behavior: memory operations, calls and probes are preserved.
package opt

import (
	"repro/internal/cfg"
	"repro/internal/ir"
)

// Stats reports what Optimize did.
type Stats struct {
	Folded        int
	DeadRemoved   int
	BlocksMerged  int
	BlocksRemoved int
	JumpsThreaded int
}

// Module optimizes every function of m and returns aggregate stats.
func Module(m *ir.Module) Stats {
	var total Stats
	for _, f := range m.Funcs {
		s := Func(f)
		total.Folded += s.Folded
		total.DeadRemoved += s.DeadRemoved
		total.BlocksMerged += s.BlocksMerged
		total.BlocksRemoved += s.BlocksRemoved
		total.JumpsThreaded += s.JumpsThreaded
	}
	return total
}

// Func optimizes one function to a fixpoint.
func Func(f *ir.Func) Stats {
	var total Stats
	for pass := 0; pass < 10; pass++ {
		changed := false
		s := Stats{}
		if n := foldConstants(f); n > 0 {
			s.Folded += n
			changed = true
		}
		if n := eliminateDead(f); n > 0 {
			s.DeadRemoved += n
			changed = true
		}
		if n := threadJumps(f); n > 0 {
			s.JumpsThreaded += n
			changed = true
		}
		if n := mergeBlocks(f); n > 0 {
			s.BlocksMerged += n
			changed = true
		}
		if n := removeUnreachable(f); n > 0 {
			s.BlocksRemoved += n
			changed = true
		}
		total.Folded += s.Folded
		total.DeadRemoved += s.DeadRemoved
		total.BlocksMerged += s.BlocksMerged
		total.BlocksRemoved += s.BlocksRemoved
		total.JumpsThreaded += s.JumpsThreaded
		if !changed {
			break
		}
	}
	f.Reindex()
	return total
}

func evalBinary(op ir.Opcode, a, b int64) (int64, bool) {
	switch op {
	case ir.OpAdd:
		return a + b, true
	case ir.OpSub:
		return a - b, true
	case ir.OpMul:
		return a * b, true
	case ir.OpDiv:
		if b == 0 {
			return 0, true
		}
		return a / b, true
	case ir.OpRem:
		if b == 0 {
			return 0, true
		}
		return a % b, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		return a << (uint64(b) & 63), true
	case ir.OpShr:
		return a >> (uint64(b) & 63), true
	case ir.OpCmpEq:
		return b2i(a == b), true
	case ir.OpCmpNe:
		return b2i(a != b), true
	case ir.OpCmpLt:
		return b2i(a < b), true
	case ir.OpCmpLe:
		return b2i(a <= b), true
	case ir.OpCmpGt:
		return b2i(a > b), true
	case ir.OpCmpGe:
		return b2i(a >= b), true
	case ir.OpMin:
		if a < b {
			return a, true
		}
		return b, true
	case ir.OpMax:
		if a > b {
			return a, true
		}
		return b, true
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// foldConstants performs block-local constant/copy propagation plus a
// global pass over single-definition constant registers (found via the
// cfg reg analysis, so it is safe across blocks).
func foldConstants(f *ir.Func) int {
	folded := 0
	f.Reindex()
	ri := cfg.AnalyzeRegs(f)
	g := cfg.New(f)
	dom := cfg.Dominators(g)
	for _, b := range f.Blocks {
		// Block-local environment: register -> known constant. Any
		// redefinition invalidates; calls do not clobber registers in
		// this IR (callee frames are separate).
		local := make(map[ir.Reg]int64)
		instrIdx := 0
		// A single-definition constant is only usable where its
		// definition dominates the use (otherwise the use could read
		// the register's zero value before the definition runs).
		globalConst := func(r ir.Reg) (int64, bool) {
			v, ok := ri.ConstValue(r)
			if !ok {
				return 0, false
			}
			db, di, ok := ri.DefSite(r)
			if !ok {
				return 0, false
			}
			if db == b.Index {
				if di < instrIdx {
					return v, true
				}
				return 0, false
			}
			if dom.Dominates(db, b.Index) {
				return v, true
			}
			return 0, false
		}
		lookup := func(r ir.Reg) (int64, bool) {
			if r == ir.NoReg {
				return 0, false
			}
			if v, ok := local[r]; ok {
				return v, true
			}
			return globalConst(r)
		}
		for i := range b.Instrs {
			instrIdx = i
			in := &b.Instrs[i]
			switch {
			case in.Op == ir.OpMov && in.BImm:
				local[in.Dst] = in.Imm
				continue
			case in.Op == ir.OpMov:
				if v, ok := lookup(in.A); ok {
					in.BImm = true
					in.Imm = v
					in.A = ir.NoReg
					local[in.Dst] = v
					folded++
				} else {
					delete(local, in.Dst)
				}
				continue
			case in.Op.IsBinary():
				av, aok := lookup(in.A)
				var bv int64
				bok := false
				if in.BImm {
					bv, bok = in.Imm, true
				} else {
					bv, bok = lookup(in.B)
				}
				if aok && bok {
					if v, ok := evalBinary(in.Op, av, bv); ok {
						in.Op = ir.OpMov
						in.A = ir.NoReg
						in.B = ir.NoReg
						in.BImm = true
						in.Imm = v
						local[in.Dst] = v
						folded++
						continue
					}
				}
				// Partially fold: materialize a constant B operand.
				if !in.BImm && bok {
					in.B = ir.NoReg
					in.BImm = true
					in.Imm = bv
					folded++
				}
				delete(local, in.Dst)
				continue
			}
			if in.Dst != ir.NoReg {
				delete(local, in.Dst)
			}
		}
		// Fold a constant branch condition into an unconditional jump.
		instrIdx = len(b.Instrs)
		if b.Term.Kind == ir.TermBr {
			if v, ok := lookup(b.Term.Cond); ok {
				target := b.Term.Else
				if v != 0 {
					target = b.Term.Then
				}
				b.Term = ir.Terminator{Kind: ir.TermJmp, Then: target, Cond: ir.NoReg, Val: ir.NoReg}
				folded++
			}
		}
	}
	return folded
}

// hasSideEffects reports whether removing the instruction could change
// behavior even when its result is unused.
func hasSideEffects(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpStore, ir.OpAtomicAdd, ir.OpCall, ir.OpExtCall, ir.OpProbe:
		return true
	case ir.OpLoad:
		// Loads can fault on wild addresses; keep them.
		return true
	case ir.OpReadCycles:
		// Reading the cycle counter has a timing side effect only;
		// safe to drop when unused.
		return false
	}
	return false
}

// eliminateDead removes pure instructions whose destination is never
// read (including by terminators or probes), iterating within the
// pass.
func eliminateDead(f *ir.Func) int {
	removed := 0
	for {
		uses := make([]int, f.NumRegs)
		markUse := func(r ir.Reg) {
			if r != ir.NoReg {
				uses[r]++
			}
		}
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				switch in.Op {
				case ir.OpMov:
					if !in.BImm {
						markUse(in.A)
					}
				case ir.OpLoad:
					markUse(in.A)
				case ir.OpStore, ir.OpAtomicAdd:
					markUse(in.A)
					markUse(in.B)
				case ir.OpCall, ir.OpExtCall:
					for _, a := range in.Args {
						markUse(a)
					}
				case ir.OpProbe:
					if in.Probe != nil {
						markUse(in.Probe.IndVar)
						markUse(in.Probe.Base)
					}
				default:
					if in.Op.IsBinary() {
						markUse(in.A)
						if !in.BImm {
							markUse(in.B)
						}
					}
				}
			}
			markUse(b.Term.Cond)
			markUse(b.Term.Val)
		}
		// Parameters are observable (callers pass them); their defs can
		// still die, but a param register itself has no defining instr.
		changed := false
		for _, b := range f.Blocks {
			out := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				if in.Dst != ir.NoReg && uses[in.Dst] == 0 && !hasSideEffects(&in) {
					removed++
					changed = true
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		if !changed {
			return removed
		}
	}
}

// threadJumps retargets edges that pass through empty forwarding
// blocks (a block with no instructions whose terminator is an
// unconditional jump).
func threadJumps(f *ir.Func) int {
	forward := func(b *ir.Block) *ir.Block {
		seen := map[*ir.Block]bool{}
		for len(b.Instrs) == 0 && b.Term.Kind == ir.TermJmp && !seen[b] {
			seen[b] = true
			b = b.Term.Then
		}
		return b
	}
	n := 0
	for _, b := range f.Blocks {
		switch b.Term.Kind {
		case ir.TermJmp:
			if t := forward(b.Term.Then); t != b.Term.Then && t != b {
				b.Term.Then = t
				n++
			}
		case ir.TermBr:
			if t := forward(b.Term.Then); t != b.Term.Then && t != b {
				b.Term.Then = t
				n++
			}
			if t := forward(b.Term.Else); t != b.Term.Else && t != b {
				b.Term.Else = t
				n++
			}
		}
	}
	return n
}

// mergeBlocks appends a single-predecessor block into its unique
// unconditional predecessor.
func mergeBlocks(f *ir.Func) int {
	f.Reindex()
	g := cfg.New(f)
	merged := 0
	for _, b := range f.Blocks {
		for {
			if b.Term.Kind != ir.TermJmp {
				break
			}
			succ := b.Term.Then
			if succ == b || succ == f.Entry() {
				break
			}
			if len(g.Preds[succ.Index]) != 1 {
				break
			}
			b.Instrs = append(b.Instrs, succ.Instrs...)
			succ.Instrs = nil
			b.Term = succ.Term
			succ.Term = ir.Terminator{Kind: ir.TermJmp, Then: b, Cond: ir.NoReg, Val: ir.NoReg}
			// succ is now unreachable; a later pass removes it. Refresh
			// the graph before further merging through this block.
			f.Reindex()
			g = cfg.New(f)
			merged++
		}
	}
	return merged
}

// removeUnreachable drops blocks with no path from the entry.
func removeUnreachable(f *ir.Func) int {
	f.Reindex()
	g := cfg.New(f)
	out := f.Blocks[:0]
	removed := 0
	for _, b := range f.Blocks {
		if g.Reachable(b.Index) {
			out = append(out, b)
		} else {
			removed++
		}
	}
	f.Blocks = out
	f.Reindex()
	return removed
}
