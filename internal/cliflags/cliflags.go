// Package cliflags is the shared flag surface of the three CLIs
// (ciexp, cirun, cidump). Each tool used to re-declare -sanitize,
// -workers, -seed and friends with drifting defaults; here every flag
// has one registration helper, one default and one parser, so the
// tools stay in lockstep. The package also owns the CLI ends of the
// observability layer: -trace FILE and -metrics build one obs.Scope,
// and Finish writes the trace file / metrics report after the run.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ci/ciruntime"
	"repro/internal/ci/instrument"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/vm"
)

// DesignByName maps the CLI spellings to probe designs. cirun's
// historic names are the canonical ones.
var DesignByName = map[string]instrument.Design{
	"ci": instrument.CI, "ci-cycles": instrument.CICycles,
	"naive": instrument.Naive, "naive-cycles": instrument.NaiveCycles,
	"cd": instrument.CD, "cnb": instrument.CnB, "cnb-cycles": instrument.CnBCycles,
	"uintr": instrument.UserInterrupt,
}

// DesignNames returns the accepted -design spellings, sorted.
func DesignNames() []string {
	names := make([]string, 0, len(DesignByName))
	for n := range DesignByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseDesign resolves a -design value (case-insensitive).
func ParseDesign(name string) (instrument.Design, error) {
	d, ok := DesignByName[strings.ToLower(name)]
	if !ok {
		return 0, fmt.Errorf("unknown design %q (want one of %s)",
			name, strings.Join(DesignNames(), ", "))
	}
	return d, nil
}

// Flags carries the registered flag values. Only the Add* helpers a
// tool calls register flags; the rest stay at their zero values.
type Flags struct {
	fs *flag.FlagSet

	// AddDesign / AddCompile
	Design         string
	ProbeInterval  int64
	AllowableError int64

	// AddQuantum
	QuantumPolicy string

	// AddEngine / AddTier
	Workers   int
	StorePath string
	Sanitize  bool
	Tier      string

	// AddSeed / AddScale
	Seed  uint64
	Scale int

	// AddObs
	TracePath string
	Metrics   bool

	// AddSLO
	SLOP999Us    float64
	SLOMaxUs     float64
	MaxReject    float64
	SoakDuration int64

	// AddInterleave
	Interleave bool
	Bound      int

	// AddFleet
	Replicas    int
	Tenants     int
	LB          string
	HedgeMs     float64
	RetryBudget float64
	Zones       int
	Migrate     bool

	scope    *obs.Scope
	scopeSet bool
}

// New binds a Flags to a FlagSet (flag.CommandLine in the tools).
func New(fs *flag.FlagSet) *Flags {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &Flags{fs: fs}
}

// AddDesign registers -design.
func (f *Flags) AddDesign() *Flags {
	f.fs.StringVar(&f.Design, "design", "ci",
		"probe design: "+strings.Join(DesignNames(), ", "))
	return f
}

// AddCompile registers the compile-side parameters -probe-interval and
// -allowable-error with the shared defaults (250 IR; 0 = same as the
// probe interval).
func (f *Flags) AddCompile() *Flags {
	f.fs.Int64Var(&f.ProbeInterval, "probe-interval", 250, "compile-time probe interval (IR instructions)")
	f.fs.Int64Var(&f.AllowableError, "allowable-error", 0, "allowable error (0 = same as probe interval)")
	return f
}

// AddQuantum registers -quantum-policy.
func (f *Flags) AddQuantum() *Flags {
	f.fs.StringVar(&f.QuantumPolicy, "quantum-policy", "fixed",
		"handler interval control: fixed, aimd, feedback")
	return f
}

// ParseQuantum resolves the registered -quantum-policy value into a
// policy factory for core.WithQuantumPolicy. "fixed" returns nil (no
// policy installed; the interval never moves), so callers can pass the
// result straight through.
func (f *Flags) ParseQuantum() (func() ciruntime.QuantumPolicy, error) {
	return ParseQuantum(f.QuantumPolicy)
}

// ParseQuantum resolves a -quantum-policy value (case-insensitive).
func ParseQuantum(name string) (func() ciruntime.QuantumPolicy, error) {
	switch strings.ToLower(name) {
	case "", "fixed":
		return nil, nil
	case "aimd":
		return func() ciruntime.QuantumPolicy { return &ciruntime.AIMD{} }, nil
	case "feedback":
		return func() ciruntime.QuantumPolicy { return &ciruntime.FeedbackPID{} }, nil
	}
	return nil, fmt.Errorf("unknown quantum policy %q (want fixed, aimd or feedback)", name)
}

// AddEngine registers the experiment-engine flags -workers, -store,
// -sanitize and -tier.
func (f *Flags) AddEngine() *Flags {
	f.fs.IntVar(&f.Workers, "workers", 0, "sweep worker count (0 = GOMAXPROCS, 1 = serial)")
	f.fs.StringVar(&f.StorePath, "store", "", "incremental result store (BENCH_*.json); unchanged cells are skipped")
	f.AddSanitize()
	f.AddTier()
	return f
}

// AddTier registers -tier alone (cirun and cidump want it without the
// engine flags).
func (f *Flags) AddTier() *Flags {
	f.fs.StringVar(&f.Tier, "tier", "interpreter",
		"VM execution tier: interpreter (reference) or compiled (closure-threaded, cycle-exact)")
	return f
}

// ParseTier resolves the registered -tier flag value.
func (f *Flags) ParseTier() (vm.Tier, error) {
	return vm.ParseTier(f.Tier)
}

// AddSanitize registers -sanitize alone (cidump wants it without the
// engine flags).
func (f *Flags) AddSanitize() *Flags {
	f.fs.BoolVar(&f.Sanitize, "sanitize", false, "run stage-by-stage translation validation on every compile")
	return f
}

// AddSeed registers -seed.
func (f *Flags) AddSeed() *Flags {
	f.fs.Uint64Var(&f.Seed, "seed", 1, "deterministic seed (fault plans, fuzzing)")
	return f
}

// AddScale registers -scale.
func (f *Flags) AddScale() *Flags {
	f.fs.IntVar(&f.Scale, "scale", 1, "workload size multiplier")
	return f
}

// AddObs registers the observability flags -trace and -metrics.
func (f *Flags) AddObs() *Flags {
	f.fs.StringVar(&f.TracePath, "trace", "", "write a Chrome trace_event JSON file (load in chrome://tracing or Perfetto)")
	f.fs.BoolVar(&f.Metrics, "metrics", false, "print counters and histogram quantiles (p50/p90/p99) after the run")
	return f
}

// AddSLO registers the overload-plane guard flags -slo-p999us,
// -max-reject and -soak-duration. The defaults encode the acceptance
// bar of the load-ramp experiments: a 500 µs p999 ceiling and at most
// 10% rejections beyond the unavoidable excess (measured reject slop
// under admission runs ~8% above 1 - 1/multiplier).
func (f *Flags) AddSLO() *Flags {
	f.fs.Float64Var(&f.SLOP999Us, "slo-p999us", 500, "SLO: p99.9 latency ceiling in µs (0 disables the guard)")
	f.fs.Float64Var(&f.SLOMaxUs, "slo-maxus", 0, "SLO: worst-case inter-fire gap ceiling in µs (0 disables the guard)")
	f.fs.Float64Var(&f.MaxReject, "max-reject", 0.1, "SLO: max rejected fraction beyond the unavoidable excess load")
	f.fs.Int64Var(&f.SoakDuration, "soak-duration", 26_000_000, "soak: per-phase duration in cycles")
	return f
}

// AddInterleave registers the handler-interleaving-verifier flags
// -interleave and -bound.
func (f *Flags) AddInterleave() *Flags {
	f.fs.BoolVar(&f.Interleave, "interleave", false,
		"run the handler interleaving verifier (probe-schedule exploration + race table)")
	f.fs.IntVar(&f.Bound, "bound", 2, "interleave: context bound (max forced handler fires per schedule, 1-3)")
	return f
}

// AddFleet registers the fleet-experiment flags -replicas, -tenants,
// -lb, -hedge-ms, -retry-budget, -zones and -migrate.
func (f *Flags) AddFleet() *Flags {
	f.fs.IntVar(&f.Replicas, "replicas", 8, "fleet: cluster size (CI-polled server replicas)")
	f.fs.IntVar(&f.Tenants, "tenants", 4, "fleet: client tenant count (tenant 0 misbehaves at 4x its fair share)")
	f.fs.StringVar(&f.LB, "lb", "p2c", "fleet: balancer policy: rr, least, p2c")
	f.fs.Float64Var(&f.HedgeMs, "hedge-ms", 0.1, "fleet: hedge trigger floor in ms (0 disables hedging)")
	f.fs.Float64Var(&f.RetryBudget, "retry-budget", 0.1, "fleet: retry-budget deposit per injected request (0 disables retries)")
	f.fs.IntVar(&f.Zones, "zones", 1, "fleet: failure-domain count (replica i lives in zone i mod zones)")
	f.fs.BoolVar(&f.Migrate, "migrate", false, "fleet: drain queued work off crashed/ejected replicas and re-route it")
	return f
}

// FleetConfig builds the fleet configuration from the registered
// -replicas/-tenants/-lb/-hedge-ms/-retry-budget/-zones/-migrate and
// -seed values. Tenant 0 is the misbehaving tenant of the acceptance
// experiment; the load factor is set per sweep cell by the experiment.
func (f *Flags) FleetConfig(horizonCycles int64) (fleet.Config, error) {
	pol, err := fleet.ParsePolicy(f.LB)
	if err != nil {
		return fleet.Config{}, err
	}
	cfg := fleet.Config{
		Replicas:          f.Replicas,
		Tenants:           f.Tenants,
		Policy:            pol,
		Seed:              f.Seed,
		HorizonCycles:     horizonCycles,
		RetryBudgetFrac:   f.RetryBudget,
		HedgeDelayCycles:  int64(f.HedgeMs * 2.6e6),
		MisbehavingTenant: 0,
		Zones:             f.Zones,
		Migrate:           f.Migrate,
	}
	if f.RetryBudget <= 0 {
		cfg.RetryBudgetFrac = -1 // the config treats negative as "retries off"
	}
	return cfg, nil
}

// SLO builds the overload guard from the registered -slo-p999us and
// -max-reject values.
func (f *Flags) SLO() overload.SLO {
	return overload.SLO{P999Us: f.SLOP999Us, MaxRejectFrac: f.MaxReject}
}

// ParseDesign resolves the registered -design flag value.
func (f *Flags) ParseDesign() (instrument.Design, error) {
	return ParseDesign(f.Design)
}

// Scope returns the observability scope implied by -trace/-metrics:
// one enabled scope (memoized across calls) when either was given, the
// disabled nil scope otherwise.
func (f *Flags) Scope() *obs.Scope {
	if !f.scopeSet {
		f.scopeSet = true
		if f.TracePath != "" || f.Metrics {
			f.scope = obs.New(0)
		}
	}
	return f.scope
}

// Engine builds the experiment engine from -workers/-store/-sanitize
// and attaches the observability scope.
func (f *Flags) Engine() (*engine.Engine, error) {
	eng := engine.New(f.Workers)
	eng.SanitizeOnMiss = f.Sanitize
	if f.Tier != "" {
		tier, err := f.ParseTier()
		if err != nil {
			return nil, err
		}
		eng.Tier = tier
	}
	if f.StorePath != "" {
		store, err := engine.OpenStore(f.StorePath)
		if err != nil {
			return nil, err
		}
		eng.Store = store
	}
	eng.AttachObs(f.Scope())
	return eng, nil
}

// Finish flushes the observability outputs: the Chrome trace JSON to
// -trace's path and, with -metrics, the metrics report to w.
func (f *Flags) Finish(w io.Writer) error {
	scope := f.Scope()
	if f.TracePath != "" {
		if err := scope.WriteTraceFile(f.TracePath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d events, %d dropped)\n",
			f.TracePath, len(scope.Events()), scope.Dropped())
	}
	if f.Metrics {
		return scope.WriteMetrics(w)
	}
	return nil
}

// ParseArgs parses a comma-separated int64 list (the -args flag of
// cirun).
func ParseArgs(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	var out []int64
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(tok), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad argument %q", tok)
		}
		out = append(out, v)
	}
	return out, nil
}
