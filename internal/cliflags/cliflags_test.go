package cliflags

import (
	"flag"
	"strings"
	"testing"

	"repro/internal/ci/instrument"
)

func newFlags(t *testing.T, add func(f *Flags) *Flags, args ...string) *Flags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := add(New(fs))
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseDesignAcceptsAllSpellings(t *testing.T) {
	for name, want := range DesignByName {
		got, err := ParseDesign(name)
		if err != nil || got != want {
			t.Errorf("ParseDesign(%q) = %v, %v", name, got, err)
		}
		// Case-insensitive.
		if got, err := ParseDesign(strings.ToUpper(name)); err != nil || got != want {
			t.Errorf("ParseDesign(%q) = %v, %v", strings.ToUpper(name), got, err)
		}
	}
	if _, err := ParseDesign("bogus"); err == nil || !strings.Contains(err.Error(), "ci") {
		t.Errorf("ParseDesign(bogus) error should list valid names, got %v", err)
	}
}

func TestSharedDefaults(t *testing.T) {
	f := newFlags(t, func(f *Flags) *Flags {
		return f.AddDesign().AddCompile().AddEngine().AddSeed().AddScale().AddObs()
	})
	if f.Design != "ci" || f.ProbeInterval != 250 || f.AllowableError != 0 {
		t.Errorf("compile defaults: %+v", f)
	}
	if f.Workers != 0 || f.StorePath != "" || f.Sanitize {
		t.Errorf("engine defaults: %+v", f)
	}
	if f.Seed != 1 || f.Scale != 1 {
		t.Errorf("seed/scale defaults: %+v", f)
	}
	if f.TracePath != "" || f.Metrics {
		t.Errorf("obs defaults: %+v", f)
	}
	d, err := f.ParseDesign()
	if err != nil || d != instrument.CI {
		t.Errorf("default design = %v, %v", d, err)
	}
}

func TestScopeDisabledWithoutObsFlags(t *testing.T) {
	f := newFlags(t, func(f *Flags) *Flags { return f.AddObs() })
	if f.Scope().Enabled() {
		t.Error("scope enabled without -trace/-metrics")
	}
}

func TestScopeEnabledAndMemoized(t *testing.T) {
	f := newFlags(t, func(f *Flags) *Flags { return f.AddObs() }, "-metrics")
	s := f.Scope()
	if !s.Enabled() {
		t.Fatal("-metrics should enable the scope")
	}
	if f.Scope() != s {
		t.Error("Scope not memoized")
	}
	f2 := newFlags(t, func(f *Flags) *Flags { return f.AddObs() }, "-trace", "/tmp/x.json")
	if !f2.Scope().Enabled() {
		t.Error("-trace should enable the scope")
	}
}

func TestEngineWiresScopeObserver(t *testing.T) {
	f := newFlags(t, func(f *Flags) *Flags { return f.AddEngine().AddObs() },
		"-workers", "1", "-metrics")
	eng, err := f.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Obs != f.Scope() {
		t.Error("engine not attached to the CLI scope")
	}
	// A cache lookup must land in the scope's counters.
	if _, err := eng.Cache.Get("k", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Cache.Get("k", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if f.Scope().Counter("engine/cache_miss") != 1 || f.Scope().Counter("engine/cache_hit") != 1 {
		t.Errorf("cache counters: miss=%d hit=%d",
			f.Scope().Counter("engine/cache_miss"), f.Scope().Counter("engine/cache_hit"))
	}
}

func TestFinishWritesTraceAndMetrics(t *testing.T) {
	path := t.TempDir() + "/t.json"
	f := newFlags(t, func(f *Flags) *Flags { return f.AddObs() },
		"-trace", path, "-metrics")
	f.Scope().Count("x", 1)
	var sb strings.Builder
	if err := f.Finish(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x") {
		t.Errorf("metrics output lacks counter: %q", sb.String())
	}
}

func TestSLOFlags(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		p999      float64
		maxReject float64
		soak      int64
	}{
		{"defaults", nil, 500, 0.1, 26_000_000},
		{"tightened", []string{"-slo-p999us", "150", "-max-reject", "0.02"}, 150, 0.02, 26_000_000},
		{"disabled guard", []string{"-slo-p999us", "0", "-max-reject", "0"}, 0, 0, 26_000_000},
		{"long soak", []string{"-soak-duration", "520000000"}, 500, 0.1, 520_000_000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFlags(t, func(f *Flags) *Flags { return f.AddSLO() }, tc.args...)
			if f.SLOP999Us != tc.p999 || f.MaxReject != tc.maxReject || f.SoakDuration != tc.soak {
				t.Errorf("parsed %+v, want p999=%v maxReject=%v soak=%v",
					f, tc.p999, tc.maxReject, tc.soak)
			}
			slo := f.SLO()
			if slo.P999Us != tc.p999 || slo.MaxRejectFrac != tc.maxReject {
				t.Errorf("SLO() = %+v", slo)
			}
		})
	}
}

func TestFleetZoneFlags(t *testing.T) {
	f := newFlags(t, func(f *Flags) *Flags { return f.AddFleet() })
	if f.Zones != 1 || f.Migrate {
		t.Errorf("fleet defaults: zones=%d migrate=%t, want 1/false", f.Zones, f.Migrate)
	}
	cfg, err := f.FleetConfig(26_000_000)
	if err != nil || cfg.Zones != 1 || cfg.Migrate {
		t.Errorf("default FleetConfig: %+v, %v", cfg, err)
	}

	f = newFlags(t, func(f *Flags) *Flags { return f.AddFleet() },
		"-zones", "4", "-migrate", "-replicas", "16")
	cfg, err = f.FleetConfig(26_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Zones != 4 || !cfg.Migrate || cfg.Replicas != 16 {
		t.Errorf("FleetConfig = %+v, want zones=4 migrate=true replicas=16", cfg)
	}
}

func TestQuantumFlag(t *testing.T) {
	f := newFlags(t, func(f *Flags) *Flags { return f.AddQuantum() })
	if qp, err := f.ParseQuantum(); err != nil || qp != nil {
		t.Errorf("default -quantum-policy should resolve to a nil factory (err %v, nil=%t)", err, qp == nil)
	}
	for _, name := range []string{"aimd", "feedback", "AIMD"} {
		f := newFlags(t, func(f *Flags) *Flags { return f.AddQuantum() }, "-quantum-policy", name)
		qp, err := f.ParseQuantum()
		if err != nil || qp == nil {
			t.Errorf("-quantum-policy %s: nil=%t, err=%v", name, qp == nil, err)
			continue
		}
		if qp() == nil {
			t.Errorf("-quantum-policy %s: factory returned nil policy", name)
		}
	}
	if _, err := ParseQuantum("bogus"); err == nil {
		t.Error("ParseQuantum accepted an unknown policy")
	}
}

func TestParseArgs(t *testing.T) {
	got, err := ParseArgs("1, -2,3")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Errorf("ParseArgs = %v, %v", got, err)
	}
	if got, err := ParseArgs(""); err != nil || got != nil {
		t.Errorf("ParseArgs(empty) = %v, %v", got, err)
	}
	if _, err := ParseArgs("1,x"); err == nil {
		t.Error("ParseArgs accepted a non-integer")
	}
}
