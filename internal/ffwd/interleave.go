package ffwd

import (
	"fmt"

	"repro/internal/interleave"
	"repro/internal/ir"
)

// Interleave model: the DelegationCI design runs the delegation-server
// loop as a handler on the designated thread, so the shared words are
// the per-client request line and the server's response/state:
//
//	REQ    (0)  request argument line — main plain-writes a new
//	            request, handler reads it (FFWD's client line).
//	REQSEQ (1)  request sequence — main-side atomic add publishes;
//	            handler reads it to find unserved work.
//	DONE   (2)  server completion watermark — handler plain-writes,
//	            and main reads/rewrites it only inside ci_disable
//	            (the client's reap step).
//	C      (3)  the delegated fetch-and-add counter — handler-side
//	            atomic adds; main reads it at the end.
//
// Expected classes: REQ/REQSEQ observed, DONE protected, C atomic —
// zero unclassified. The CheckRun law is delegation conservation:
// every published request is served exactly once, so the counter
// equals the completion watermark and never exceeds the sequence.
const interleaveIR = `
module ffwd-ci
mem 64
extern @ci_disable cost 4
extern @ci_enable cost 4

func @main(%n) {
entry:
  %ciid = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, 200
  br %c, body, exit
body:
  store _, 0, %i
  %one = mov 1
  %o = aadd _, 1, %one
  %w = mul %i, 17
  %w = and %w, 1023
  extcall @ci_disable(%ciid)
  %d = load _, 2
  store _, 2, %d
  extcall @ci_enable(%ciid)
  %i = add %i, 1
  jmp head
exit:
  extcall @ci_disable(%ciid)
  %total = load _, 3
  extcall @ci_enable(%ciid)
  %z = mov 0
  ret %z
}

func @handler(%ir) {
entry:
  %r = load _, 0
  %s = load _, 1
  %d = load _, 2
  %c = lt %d, %s
  br %c, serve, done
serve:
  %todo = sub %s, %d
  %o1 = aadd _, 3, %todo
  store _, 2, %s
  jmp done
done:
  %z = mov 0
  ret %z
}
`

// InterleaveSpec returns the DelegationCI sharing-protocol model and
// verifier options for interleave.VerifyHandlers.
func InterleaveSpec() (*ir.Module, interleave.Options) {
	m := ir.MustParse(interleaveIR)
	opts := interleave.Options{
		RetOnly:  true,
		CheckRun: checkDelegation,
	}
	return m, opts
}

// checkDelegation is the conservation law for one run: served work
// equals the completion watermark (nothing lost, nothing double-
// served) and the watermark never passes the published sequence.
func checkDelegation(r *interleave.Run) error {
	seq, done, counter := r.Mem[1], r.Mem[2], r.Mem[3]
	if done > seq {
		return fmt.Errorf("served past the published sequence: done %d seq %d", done, seq)
	}
	if counter != done {
		return fmt.Errorf("counter %d != completion watermark %d (requests lost or double-served)", counter, done)
	}
	return nil
}
