package ffwd

import (
	"testing"

	"repro/internal/faults"
)

func TestAllDesignsRun(t *testing.T) {
	for _, d := range Designs {
		for _, threads := range []int{1, 8, 56} {
			r := Run(Config{Design: d, Threads: threads})
			if r.ThroughputMops <= 0 {
				t.Errorf("%v T=%d: throughput %v", d, threads, r.ThroughputMops)
			}
			if r.MeanLatency <= 0 {
				t.Errorf("%v T=%d: mean latency %v", d, threads, r.MeanLatency)
			}
		}
	}
}

func TestSingleThreadDegeneratesToDirectAccess(t *testing.T) {
	ded := Run(Config{Design: DelegationDedicated, Threads: 1})
	ci := Run(Config{Design: DelegationCI, Threads: 1})
	spin := Run(Config{Design: Spinlock, Threads: 1})
	if ded.ThroughputMops != ci.ThroughputMops || ded.ThroughputMops != spin.ThroughputMops {
		t.Errorf("single-thread rates differ: %v / %v / %v",
			ded.ThroughputMops, ci.ThroughputMops, spin.ThroughputMops)
	}
}

// Figure 7 headline shapes.
func TestFigure7Shape(t *testing.T) {
	// CI-designated delegation beats dedicated up to ~8 threads…
	for _, T := range []int{2, 4} {
		ded := Run(Config{Design: DelegationDedicated, Threads: T})
		ci := Run(Config{Design: DelegationCI, Threads: T})
		if ci.ThroughputMops <= ded.ThroughputMops {
			t.Errorf("T=%d: CI (%v) should beat dedicated (%v)", T, ci.ThroughputMops, ded.ThroughputMops)
		}
	}
	// …and the dedicated server wins beyond that.
	for _, T := range []int{16, 56} {
		ded := Run(Config{Design: DelegationDedicated, Threads: T})
		ci := Run(Config{Design: DelegationCI, Threads: T})
		if ded.ThroughputMops < ci.ThroughputMops {
			t.Errorf("T=%d: dedicated (%v) should beat CI (%v)", T, ded.ThroughputMops, ci.ThroughputMops)
		}
	}
	// Delegation crushes locks at high thread counts.
	ded56 := Run(Config{Design: DelegationDedicated, Threads: 56})
	for _, d := range []Design{Spinlock, TicketLock, MCS, PthreadMutex} {
		r := Run(Config{Design: d, Threads: 56})
		if r.ThroughputMops*3 > ded56.ThroughputMops {
			t.Errorf("%v at 56 threads (%v) too close to delegation (%v)",
				d, r.ThroughputMops, ded56.ThroughputMops)
		}
	}
	// Spin/ticket collapse with threads; MCS stays stable at ~4-5 Mops.
	spin8 := Run(Config{Design: Spinlock, Threads: 8})
	spin56 := Run(Config{Design: Spinlock, Threads: 56})
	if spin56.ThroughputMops > spin8.ThroughputMops/2 {
		t.Errorf("spinlock should collapse: %v -> %v", spin8.ThroughputMops, spin56.ThroughputMops)
	}
	mcs8 := Run(Config{Design: MCS, Threads: 8})
	mcs56 := Run(Config{Design: MCS, Threads: 56})
	if mcs56.ThroughputMops < 3.5 || mcs56.ThroughputMops > 6 {
		t.Errorf("MCS at 56 threads = %v Mops, want ~4-5", mcs56.ThroughputMops)
	}
	if mcs8.ThroughputMops != mcs56.ThroughputMops {
		t.Errorf("MCS should be flat: %v vs %v", mcs8.ThroughputMops, mcs56.ThroughputMops)
	}
}

// Figure 8 headline: delegation latency is essentially constant;
// locking spans orders of magnitude.
func TestFigure8Shape(t *testing.T) {
	ded := Run(Config{Design: DelegationDedicated, Threads: 56, RecordLatencies: true})
	ci := Run(Config{Design: DelegationCI, Threads: 56, RecordLatencies: true})
	spin := Run(Config{Design: Spinlock, Threads: 56, RecordLatencies: true})

	if spread := float64(ded.LatencySummary.P999) / float64(ded.LatencySummary.P10); spread > 3 {
		t.Errorf("dedicated delegation latency spread %.1fx, want near-constant", spread)
	}
	if spread := float64(ci.LatencySummary.P999) / float64(ci.LatencySummary.P10); spread > 3 {
		t.Errorf("CI delegation latency spread %.1fx, want near-constant", spread)
	}
	// Designated delegation increases latency modestly over dedicated.
	if ci.LatencySummary.P50 <= ded.LatencySummary.P50 {
		t.Error("CI delegation median should sit slightly above dedicated")
	}
	if ci.LatencySummary.P50 > 2*ded.LatencySummary.P50 {
		t.Error("CI delegation median should only be modestly higher")
	}
	// Locking spans from tens of cycles to far beyond 100k.
	if spin.LatencySummary.Max < 100_000 {
		t.Errorf("spinlock max latency %d, want >100k", spin.LatencySummary.Max)
	}
	if spread := float64(spin.LatencySummary.P999) / float64(spin.LatencySummary.P10); spread < 20 {
		t.Errorf("spinlock spread %.1fx, want wide", spread)
	}
}

func TestDeterministicSampling(t *testing.T) {
	a := Run(Config{Design: MCS, Threads: 16, RecordLatencies: true})
	b := Run(Config{Design: MCS, Threads: 16, RecordLatencies: true})
	if a.LatencySummary != b.LatencySummary {
		t.Error("same seed produced different distributions")
	}
}

// A stalled delegation server must degrade delegation to the MCS
// fallback — bounded latency, throughput between the MCS floor and the
// fault-free delegation ceiling — and leave the lock designs untouched.
func TestServerStallFallsBackToMCS(t *testing.T) {
	// Stalled ~half the time: 100k-cycle stalls every 100k cycles.
	plan := &faults.Plan{Seed: 5, ServerStallMeanGapCycles: 100_000, ServerStallCycles: 100_000}
	for _, d := range []Design{DelegationDedicated, DelegationCI} {
		clean := Run(Config{Design: d, Threads: 32, RecordLatencies: true})
		faulty := Run(Config{Design: d, Threads: 32, RecordLatencies: true, FaultPlan: plan})
		if faulty.FallbackFrac <= 0.4 || faulty.FallbackFrac >= 0.6 {
			t.Fatalf("%v: fallback frac = %v, want ~0.5", d, faulty.FallbackFrac)
		}
		if faulty.FallbackOps == 0 {
			t.Errorf("%v: no sampled op took the fallback path", d)
		}
		mcs := Run(Config{Design: MCS, Threads: 32})
		if faulty.ThroughputMops >= clean.ThroughputMops {
			t.Errorf("%v: stalls did not cost throughput: %v vs %v",
				d, faulty.ThroughputMops, clean.ThroughputMops)
		}
		if faulty.ThroughputMops < 0.4*mcs.ThroughputMops {
			t.Errorf("%v: degraded below the MCS floor: %v vs %v",
				d, faulty.ThroughputMops, mcs.ThroughputMops)
		}
		// Bounded degradation: the worst fallback op pays the detection
		// timeout plus a full MCS queue, never an unbounded wait.
		bound := int64(fallbackTimeout) + int64(float64(cs+2*xfer+320)*32) + 1
		if faulty.LatencySummary.Max > bound {
			t.Errorf("%v: fallback latency unbounded: max %d > %d",
				d, faulty.LatencySummary.Max, bound)
		}
	}
	// Lock designs ignore the plan entirely.
	a := Run(Config{Design: MCS, Threads: 32})
	b := Run(Config{Design: MCS, Threads: 32, FaultPlan: plan})
	if a != b {
		t.Error("MCS results perturbed by a delegation-server fault plan")
	}
}

func TestFallbackDeterministic(t *testing.T) {
	cfg := Config{Design: DelegationCI, Threads: 16, RecordLatencies: true,
		FaultPlan: faults.Uniform(31, 0.01)}
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("fallback runs differ:\n%+v\n%+v", a, b)
	}
}

// A single thread uses the direct-access bypass, so server stalls are
// irrelevant by construction.
func TestSingleThreadUnaffectedByStalls(t *testing.T) {
	plan := &faults.Plan{Seed: 5, ServerStallMeanGapCycles: 50_000, ServerStallCycles: 100_000}
	r := Run(Config{Design: DelegationCI, Threads: 1, FaultPlan: plan})
	if r.FallbackFrac != 0 || r.FallbackOps != 0 {
		t.Errorf("bypassed single thread took fallback: %+v", r)
	}
}
