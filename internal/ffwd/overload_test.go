package ffwd

import (
	"testing"

	"repro/internal/overload"
)

// At high thread counts the delegation server is saturated (demand far
// exceeds serverPerReq capacity). With the overload plane on, the
// overflow degrades to the MCS bypass instead of queueing: throughput
// must beat the plain serverCap clamp, and sampled ops must actually
// take the bypass path.
func TestSaturationFallbackBeatsClamp(t *testing.T) {
	for _, d := range []Design{DelegationDedicated, DelegationCI} {
		plain := Run(Config{Design: d, Threads: 48, Seed: 11})
		ovld := Run(Config{Design: d, Threads: 48, Seed: 11, Overload: &overload.Config{}})
		if ovld.SatFallbackFrac <= 0 {
			t.Errorf("%v: server not saturated at 48 threads (satFrac=%v)", d, ovld.SatFallbackFrac)
		}
		if ovld.SatFallbackOps == 0 {
			t.Errorf("%v: no sampled op took the bypass path", d)
		}
		if ovld.ThroughputMops <= plain.ThroughputMops {
			t.Errorf("%v: overflow bypass did not raise throughput: %.2f vs clamped %.2f Mops",
				d, ovld.ThroughputMops, plain.ThroughputMops)
		}
		// The bypass adds at most the MCS rate on top of the clamp.
		mcs := Run(Config{Design: MCS, Threads: 48, Seed: 11})
		if ovld.ThroughputMops > plain.ThroughputMops+mcs.ThroughputMops {
			t.Errorf("%v: bypass exceeds serverCap+MCS bound: %.2f > %.2f+%.2f Mops",
				d, ovld.ThroughputMops, plain.ThroughputMops, mcs.ThroughputMops)
		}
	}
}

// Below saturation the plane must be inert: identical result to a run
// without it, zero bypass accounting.
func TestSaturationFallbackInertBelowSaturation(t *testing.T) {
	// Two threads: one client's demand is far below serverCap.
	plain := Run(Config{Design: DelegationDedicated, Threads: 2, Seed: 11, RecordLatencies: true})
	ovld := Run(Config{Design: DelegationDedicated, Threads: 2, Seed: 11, RecordLatencies: true,
		Overload: &overload.Config{}})
	if plain != ovld {
		t.Errorf("plane below saturation changed the result:\n%+v\n%+v", plain, ovld)
	}
	if ovld.SatFallbackFrac != 0 || ovld.SatFallbackOps != 0 {
		t.Errorf("bypass accounting below saturation: frac=%v ops=%d",
			ovld.SatFallbackFrac, ovld.SatFallbackOps)
	}
	// Locking designs never consult the plane.
	lock := Run(Config{Design: MCS, Threads: 48, Seed: 11, Overload: &overload.Config{}})
	if lock.SatFallbackFrac != 0 || lock.SatFallbackOps != 0 {
		t.Errorf("locking design consulted the overload plane: %+v", lock)
	}
}

// Same seed + plane on: byte-identical results (the seeded bypass
// sample stream is deterministic).
func TestSaturationFallbackDeterministic(t *testing.T) {
	cfg := Config{Design: DelegationCI, Threads: 48, Seed: 11, RecordLatencies: true,
		Overload: &overload.Config{}}
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("overload runs differ:\n%+v\n%+v", a, b)
	}
}
