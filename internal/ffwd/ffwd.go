// Package ffwd models the §5.3 experiment: delegation in the style of
// FFWD — clients ship function calls to a server core through per-
// client cache lines — compared against lock-based synchronization on
// the classic fetch-and-add microbenchmark, across 1..56 threads.
//
// Designs:
//
//   - DelegationDedicated: one hardware thread is burned as the
//     delegation server, spinning over client request lines.
//   - DelegationCI: the server loop body runs as a Compiler Interrupt
//     handler on a "designated" application thread, which otherwise
//     executes client work — no dedicated core.
//   - Spinlock / TicketLock / MCS / PthreadMutex: locking baselines.
//
// The model is a contention model with stochastic sampling (costs are
// cache-line transfer latencies from the FFWD paper's methodology),
// not a full cache-coherence simulation; it reproduces the throughput
// scaling shapes and the latency distributions of Figures 7 and 8.
package ffwd

import (
	"fmt"

	"repro/internal/ci/ciruntime"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Design selects the synchronization design.
type Design int

const (
	DelegationDedicated Design = iota
	DelegationCI
	Spinlock
	TicketLock
	MCS
	PthreadMutex
)

var designNames = [...]string{
	DelegationDedicated: "delegation",
	DelegationCI:        "delegation-CI",
	Spinlock:            "spinlock",
	TicketLock:          "ticket",
	MCS:                 "MCS",
	PthreadMutex:        "mutex",
}

// String names the design.
func (d Design) String() string { return designNames[d] }

// Designs lists all designs in Figure 7's legend order.
var Designs = []Design{
	DelegationDedicated, DelegationCI, Spinlock, TicketLock, MCS, PthreadMutex,
}

// Model constants (cycles at 2.6 GHz, FFWD-style cost accounting).
const (
	xfer         = 100  // cross-core cache-line transfer
	localOp      = 26   // uncontended fetch-and-add (line in L1)
	cs           = 30   // critical-section body (increment + write-back)
	serverPerReq = 90   // server: read request line, apply, write response (amortized)
	scanPerLine  = 12   // server: poll one client line
	clientIssue  = 20   // client: write the request line
	delegBaseRTT = 700  // request line out + response line back + pipeline
	futexPath    = 3800 // mutex: contended futex wait/wake round trip
	// ciServerInterval is the designated-server polling period (the
	// paper finds 250-1000 IR ≈ a few hundred cycles works well).
	ciServerInterval    = 250
	ciHandlerInvoke     = 30
	ciClientOverheadPct = 5 // instrumentation overhead on client code
	// fallbackTimeout is how long a delegation client waits on an
	// unanswered request line before concluding the server is stalled
	// and retrying the operation under the shared MCS fallback lock
	// (the FFWD bypass API permits direct access when delegation is
	// unavailable). Clients probe the server line and resume
	// delegation as soon as it responds again.
	fallbackTimeout = 20_000
)

// Config parameterizes one run.
type Config struct {
	Design  Design
	Threads int
	// OpsPerThread bounds the sampled operations used for the latency
	// distribution (default 2000).
	OpsPerThread int
	// RecordLatencies enables the Figure 8 distribution.
	RecordLatencies bool
	Seed            uint64
	// FaultPlan optionally stalls the delegation server (descheduled or
	// wedged for ServerStallCycles at a mean gap of
	// ServerStallMeanGapCycles). Stalled-out operations time out after
	// fallbackTimeout and complete under the MCS fallback lock; only
	// the delegation designs are affected.
	FaultPlan *faults.Plan
	// Obs, when enabled, receives per-operation latency observations and
	// fallback-path counters on the "ffwd" trace category. It lives in
	// Config (not Result) so Result stays comparable with ==.
	Obs *obs.Scope
	// Overload enables the overload plane's brownout for the delegation
	// designs: when offered client demand exceeds the server's service
	// capacity, the overflow fraction of operations degrades from
	// delegation to the MCS bypass path instead of queueing on request
	// lines without bound. Like Obs it lives in Config so Result stays
	// comparable; only its presence matters here (the closed-form model
	// has no poll loop for the full controller to actuate).
	Overload *overload.Config
	// ServerIntervalCycles is the designated-server polling period for
	// DelegationCI (default 250 — the paper finds 250-1000 IR works
	// well).
	ServerIntervalCycles int64
	// Quantum, when non-nil, constructs an interval-control policy for
	// the designated server (see ciruntime.QuantumPolicy). The
	// closed-form model has no poll loop, so the policy is settled
	// analytically: it repeatedly observes the expected per-batch
	// handler cost at the current interval and the fixed point it
	// converges to becomes the effective polling period. Nil keeps the
	// configured interval (bit-identical runs).
	Quantum func() ciruntime.QuantumPolicy
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Threads < 1 {
		out.Threads = 1
	}
	if out.OpsPerThread <= 0 {
		out.OpsPerThread = 2000
	}
	if out.Seed == 0 {
		out.Seed = 11
	}
	if out.ServerIntervalCycles <= 0 {
		out.ServerIntervalCycles = ciServerInterval
	}
	return out
}

// Result reports one configuration's metrics.
type Result struct {
	Design  Design
	Threads int
	// ThroughputMops is total fetch-and-add operations per second, in
	// millions.
	ThroughputMops float64
	// MeanLatency is the average per-operation latency in cycles.
	MeanLatency float64
	// LatencySummary is the client-observed latency distribution
	// (cycles), when recording was requested.
	LatencySummary stats.Summary
	// FallbackFrac is the long-run fraction of time the delegation
	// server spends stalled (operations in that window go through the
	// MCS fallback); FallbackOps counts sampled operations that took
	// the fallback path.
	FallbackFrac float64
	FallbackOps  int64
	// SatFallbackFrac is the fraction of offered demand the overload
	// plane routed from delegation to the MCS bypass because the server
	// was saturated; SatFallbackOps counts sampled operations that took
	// that path. Both are zero unless Config.Overload is set.
	SatFallbackFrac float64
	SatFallbackOps  int64
	// ServerIntervalCycles is the effective designated-server polling
	// period (DelegationCI only): the configured interval, or the fixed
	// point the quantum policy settled to.
	ServerIntervalCycles int64
}

// Run evaluates one configuration.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	rng := sim.NewRNG(cfg.Seed)
	T := cfg.Threads
	var throughput float64 // ops per cycle
	var sample func() int64
	// The delegation designs record their offered demand and server
	// capacity (ops/cycle) so the overload plane below can see by how
	// much the server is saturated; zero for the locking designs.
	var delegDemand, delegCap float64
	// serverInterval is the effective DelegationCI polling period; zero
	// for every other design (and for the T==1 direct-access bypass).
	var serverInterval int64

	// MCS cost model, shared by the MCS design and the delegation
	// designs' stalled-server fallback path.
	mcsPer := float64(cs + localOp)
	if T > 1 {
		mcsPer = float64(cs + 2*xfer + 320) // local spin + queued handoff
	}
	mcsSample := func() int64 {
		if T == 1 {
			return cs + localOp
		}
		return int64(mcsPer * float64(1+rng.Intn(int64(T))))
	}

	switch cfg.Design {
	case DelegationDedicated:
		clients := T - 1
		if clients < 1 {
			// A single thread degenerates to direct access (the FFWD
			// API allows bypassing the server when CIs are disabled).
			clients = 1
			throughput = 1.0 / (localOp + cs)
			sample = func() int64 { return localOp + cs }
			break
		}
		lat := delegationLatency(clients)
		perClient := 1.0 / float64(clientIssue+lat)
		serverCap := 1.0 / float64(serverPerReq)
		delegDemand, delegCap = float64(clients)*perClient, serverCap
		throughput = minF(delegDemand, serverCap)
		sample = func() int64 {
			return lat + rng.Intn(2*scanPerLine*int64(clients)+1)
		}
	case DelegationCI:
		if T == 1 {
			// With CIs disabled a lone thread accesses the structure
			// directly through the FFWD bypass API.
			throughput = 1.0 / (localOp + cs)
			sample = func() int64 { return localOp + cs }
			break
		}
		interval := settleInterval(cfg, T)
		serverInterval = interval
		// All T threads run client code; one also hosts the server
		// loop in its CI handler. Requests wait for the next handler
		// firing (interval/2 on average) plus batch processing.
		lat := delegationLatency(T) + interval/2
		perClient := (1.0 - ciClientOverheadPct/100.0) / float64(clientIssue+lat)
		// The designated thread spends its handler time serving.
		serverShare := 1.0 - float64(ciHandlerInvoke)/float64(interval)
		serverCap := serverShare / float64(serverPerReq)
		delegDemand, delegCap = float64(T)*perClient, serverCap
		throughput = minF(delegDemand, serverCap)
		sample = func() int64 {
			return delegationLatency(T) + rng.Intn(2*scanPerLine*int64(T)+1) + rng.Intn(interval)
		}
	case Spinlock:
		// Line ping-pong: every acquisition pays a transfer that grows
		// with the number of contenders fighting for the line.
		per := float64(cs + localOp)
		if T > 1 {
			per = float64(cs) + float64(xfer)*float64(T)*0.9
		}
		throughput = 1.0 / per
		mean := per * float64(maxI(T-1, 1))
		sample = func() int64 {
			if T == 1 {
				return cs + localOp
			}
			// Unfair: occasionally immediate, mostly long waits.
			return 10 + rng.Exp(mean)
		}
	case TicketLock:
		per := float64(cs + localOp)
		if T > 1 {
			per = float64(cs) + float64(xfer)*float64(T)*1.25
		}
		throughput = 1.0 / per
		sample = func() int64 {
			if T == 1 {
				return cs + localOp
			}
			// FIFO: wait ≈ queue position × handoff.
			return int64(per * float64(1+rng.Intn(int64(T))))
		}
	case MCS:
		throughput = 1.0 / mcsPer
		sample = mcsSample
	case PthreadMutex:
		per := float64(cs + localOp + 12)
		if T > 1 {
			// Most acquisitions go through the contended futex path.
			per = float64(cs) + 0.85*futexPath + float64(xfer)
		}
		throughput = 1.0 / per
		mean := per * float64(maxI(T-1, 1))
		sample = func() int64 {
			if T == 1 {
				return cs + localOp + 12
			}
			return 40 + rng.Exp(mean)
		}
	}

	// Overload brownout: when the delegation server is the bottleneck
	// (offered demand exceeds its service capacity), the overload plane
	// stops clients from queueing the overflow on their request lines.
	// The excess fraction of operations degrades to the MCS bypass path
	// — the same direct-access escape hatch the stall fallback uses —
	// so the aggregate keeps the server at capacity AND makes progress
	// on the overflow under the lock, instead of clamping at serverCap.
	var satFallbackOps int64
	satFrac := 0.0
	if cfg.Overload != nil && delegDemand > delegCap && T > 1 {
		satFrac = 1.0 - delegCap/delegDemand
		throughput = delegCap + minF(delegDemand-delegCap, 1.0/mcsPer)
		srng := sim.NewRNG(cfg.Seed ^ 0x6f766c64736174) // "ovldsat" stream
		delegSample := sample
		sample = func() int64 {
			if srng.Float64() < satFrac {
				satFallbackOps++
				// The client sees response-line backpressure (one unanswered
				// round trip) before switching to the bypass lock.
				return delegationLatency(T) + clientIssue + mcsSample()
			}
			return delegSample()
		}
	}

	// A stalled delegation server degrades the delegation designs to
	// the MCS fallback for the stalled fraction of time: throughput
	// blends the two paths, and a fallback operation pays the timeout
	// that detected the stall plus the MCS acquisition.
	var fallbackOps int64
	fallbackFrac := 0.0
	delegated := cfg.Design == DelegationDedicated || cfg.Design == DelegationCI
	if delegated && T > 1 {
		fallbackFrac = cfg.FaultPlan.ServerStallFrac()
	}
	if fallbackFrac > 0 {
		throughput = (1-fallbackFrac)*throughput + fallbackFrac/mcsPer
		frng := sim.NewRNG(cfg.Seed ^ 0x66616c6c6261636b) // "fallback" stream
		delegSample := sample
		sample = func() int64 {
			if frng.Float64() < fallbackFrac {
				fallbackOps++
				return fallbackTimeout + mcsSample()
			}
			return delegSample()
		}
	}

	res := Result{
		Design:               cfg.Design,
		Threads:              T,
		ThroughputMops:       throughput * 2.6e9 / 1e6,
		FallbackFrac:         fallbackFrac,
		SatFallbackFrac:      satFrac,
		ServerIntervalCycles: serverInterval,
	}
	n := cfg.OpsPerThread
	if !cfg.RecordLatencies {
		n = 256 // enough for a stable mean
	}
	lats := make([]int64, 0, n)
	var sum float64
	for i := 0; i < n; i++ {
		l := sample()
		lats = append(lats, l)
		sum += float64(l)
	}
	res.MeanLatency = sum / float64(n)
	res.FallbackOps = fallbackOps
	res.SatFallbackOps = satFallbackOps
	if cfg.RecordLatencies {
		res.LatencySummary = stats.Summarize(lats)
	}
	if sc := cfg.Obs; sc != nil {
		name := cfg.Design.String()
		hist := "ffwd/op_latency_cycles/" + name
		for _, l := range lats {
			sc.Observe(hist, l)
		}
		sc.Count("ffwd/ops_sampled", int64(len(lats)))
		sc.Count("ffwd/fallback_ops", fallbackOps)
		sc.Count("ffwd/sat_fallback_ops", satFallbackOps)
		ts := sc.Tick()
		sc.Instant("ffwd", "run/"+name, int32(T), ts,
			obs.I("threads", int64(T)),
			obs.I("throughput_kops", int64(throughput*2.6e9/1e3)),
			obs.I("fallback_ops", fallbackOps))
	}
	return res
}

// settleInterval resolves the effective DelegationCI polling period.
// The closed-form model has no poll loop to adapt in, so the quantum
// policy is settled analytically: each step feeds the policy the
// expected per-batch handler cost at the current interval (requests
// accumulated over one period plus the invoke overhead) and adopts
// the interval it returns; the fixed point this converges to is the
// steady-state period an online run would settle at. A nil policy
// keeps the configured interval, bit-identical to prior behavior.
func settleInterval(cfg Config, T int) int64 {
	interval := cfg.ServerIntervalCycles
	if cfg.Quantum == nil {
		return interval
	}
	p := cfg.Quantum()
	p.Reset(interval)
	for i := 0; i < 64; i++ {
		lat := delegationLatency(T) + interval/2
		perClient := (1.0 - ciClientOverheadPct/100.0) / float64(clientIssue+lat)
		demand := float64(T) * perClient // offered ops/cycle at this interval
		batch := int64(demand*float64(interval))*serverPerReq + ciHandlerInvoke
		next, _ := p.Observe(batch, interval)
		if next < 1 {
			next = 1
		}
		interval = next
	}
	return interval
}

// delegationLatency is the request round trip seen by a client with
// the given number of active clients sharing the server.
func delegationLatency(clients int) int64 {
	return delegBaseRTT + scanPerLine*int64(clients)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-14s T=%-3d %8.2f Mops  mean %6.0f cy", r.Design, r.Threads, r.ThroughputMops, r.MeanLatency)
}
