// Package mtcp models the kernel-bypass networking experiment of §5.1:
// an epserver/epwget-style closed-loop HTTP workload (1 kB responses)
// on one server core, under three designs:
//
//   - Kernel: in-kernel networking — per-packet IRQ + syscall costs,
//     with IRQ-path contention that collapses at high connection counts.
//   - Orig: stock mTCP — a helper thread pinned to the application's
//     core runs the user-level TCP stack; coordination costs context
//     switches and futexes, and a busy application delays the helper by
//     up to a scheduler quantum.
//   - CI: mTCP with the helper thread replaced by a Compiler Interrupt
//     handler that runs the stack-loop body every interval (~2500
//     cycles), with no context switching and naturally batched packet
//     processing.
//
// The simulation runs one of the 16 server threads; reported
// throughput is aggregated across threads and capped by the 10 Gbps
// link.
package mtcp

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Mode selects the server design.
type Mode int

const (
	// Kernel is standard Linux networking.
	Kernel Mode = iota
	// Orig is stock mTCP (helper thread).
	Orig
	// CI is mTCP driven by Compiler Interrupts.
	CI
)

var modeNames = [...]string{Kernel: "kernel", Orig: "orig", CI: "CI"}

// String names the mode as the paper's legend does.
func (m Mode) String() string { return modeNames[m] }

// Cost constants (cycles at the 2.6 GHz model clock).
const (
	stackFixed = 1500  // per stack run: epoll/doorbell/timer bookkeeping
	stackPerRx = 3500  // user-level TCP receive path per packet
	stackPerTx = 3000  // user-level TCP transmit path per packet
	appPerReq  = 9000  // epserver parse + response construction
	ciHandler  = 60    // CI handler invocation overhead
	ctxSwitch  = 4000  // thread context switch
	appWake    = 15000 // futex wake + scheduler latency for a blocked app
	origPerReq = 60000 // orig: per-request locking, condvar/futex notification and
	// cache bouncing between app and helper threads (calibrated so stock
	// mTCP lands at the roughly-half-of-CI throughput the paper measured)
	helperPickup = 300       // helper poll-loop granularity when idle
	kIRQBase     = 18000     // kernel per-packet IRQ + softirq + skb path, uncontended
	kSyscall     = 9000      // recv/send syscall path
	quantum      = 2_600_000 // 1 ms scheduler quantum
	think        = 500       // client think time between response and next request
	reqBytes     = 128
	respBytes    = 1100 // 1 kB payload + headers
	ringSize     = 64
	rto          = 13_000_000 // 5 ms retransmission timeout
	numThreads   = 16
)

// ciAppSlowdownPct models the CI instrumentation overhead on the
// application code (per Figure 9's CI column).
const ciAppSlowdownPct = 4

// Config parameterizes one run.
type Config struct {
	Mode Mode
	// Conns is the number of concurrent connections served by this
	// core.
	Conns int
	// WorkCycles is per-request server compute (Figure 5 uses a 1M
	// iteration empty loop ≈ 1M cycles; Figure 4 uses 0).
	WorkCycles int64
	// IntervalCycles is the CI polling interval (default 2500).
	IntervalCycles int64
	// DurationCycles is the simulated time (default 26M ≈ 10 ms).
	DurationCycles int64
	Seed           uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Conns <= 0 {
		out.Conns = 1
	}
	if out.IntervalCycles <= 0 {
		out.IntervalCycles = 2500
	}
	if out.DurationCycles <= 0 {
		out.DurationCycles = 52_000_000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// Result reports one run's metrics.
type Result struct {
	Mode      Mode
	Conns     int
	Completed int64
	// ThroughputGbps is the 16-thread aggregate download throughput,
	// capped by the 10 Gbps link.
	ThroughputGbps float64
	// Latency percentiles in microseconds (request send to full
	// response).
	MeanLatencyUs, MedianLatencyUs, P99LatencyUs float64
	Drops, Retransmits                           int64
}

type request struct {
	conn      int
	remaining int64
}

type response struct {
	conn int
}

type server struct {
	cfg  Config
	eng  *sim.Engine
	rng  *sim.RNG
	link *netsim.Link
	nic  *netsim.NIC

	appQ []request
	txQ  []response

	sendTime  []int64 // per connection: when the outstanding request was first sent
	latencies []int64
	completed int64
	retx      int64
	warmup    int64

	// orig-mode state
	serverIdle bool

	// kernel-mode state
	coreFree      int64
	kernelPending int64
}

// Run simulates one configuration and returns its metrics.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	s := &server{
		cfg:      cfg,
		eng:      sim.NewEngine(),
		rng:      sim.NewRNG(cfg.Seed),
		link:     &netsim.Link{CyclesPerByte: netsim.CyclesPerByte10G, Propagation: 26000},
		nic:      netsim.NewNIC(ringSize),
		sendTime: make([]int64, cfg.Conns),
		warmup:   cfg.DurationCycles / 4,
	}
	s.serverIdle = true
	// Clients open their connections spread over the first ~20 µs.
	for c := 0; c < cfg.Conns; c++ {
		conn := c
		start := s.rng.Intn(50_000)
		s.eng.At(start, func() { s.sendRequest(conn) })
	}
	if cfg.Mode == CI {
		s.eng.At(cfg.IntervalCycles, func() { s.ciPoll() })
	}
	s.eng.Run(cfg.DurationCycles)
	return s.result()
}

// appCost is the server-side compute per request: inflated by the CI
// instrumentation overhead in CI mode; carrying the per-request queue
// locking and event-notification cost in orig mode.
func (s *server) appCost() int64 {
	c := appPerReq + s.cfg.WorkCycles
	switch s.cfg.Mode {
	case CI:
		c += c * ciAppSlowdownPct / 100
	case Orig:
		c += origPerReq
	}
	return c
}

// sendRequest issues the connection's next request from the client.
func (s *server) sendRequest(conn int) {
	now := s.eng.Now()
	s.sendTime[conn] = now
	s.scheduleArrival(conn, now+s.link.Delay(reqBytes), false)
}

// scheduleArrival delivers a request packet to the server NIC,
// retransmitting on ring overflow.
func (s *server) scheduleArrival(conn int, at int64, isRetx bool) {
	s.eng.At(at, func() {
		ok := s.nic.Push(netsim.Packet{Arrival: s.eng.Now(), Conn: conn, Bytes: reqBytes, Retransmit: isRetx})
		if !ok {
			s.retx++
			s.scheduleArrival(conn, s.eng.Now()+rto, true)
			return
		}
		if s.cfg.Mode != CI {
			s.onRxActivity()
		}
	})
}

// deliverResponse completes a request at the client and starts the
// next one (closed loop).
func (s *server) deliverResponse(conn int, txDone int64) {
	arrive := txDone + s.link.Delay(respBytes)
	s.eng.At(arrive, func() {
		now := s.eng.Now()
		if now > s.warmup {
			s.latencies = append(s.latencies, now-s.sendTime[conn])
			s.completed++
		}
		s.eng.At(now+think, func() { s.sendRequest(conn) })
	})
}

// ciPoll is the CI-mode stack run: the interrupt handler executes the
// mTCP stack-loop body, then the application consumes the remainder of
// the interval.
func (s *server) ciPoll() {
	t := s.eng.Now()
	cost := int64(ciHandler)
	pkts := s.nic.Drain(t, 0)
	if len(pkts) > 0 || len(s.txQ) > 0 {
		cost += stackFixed
	}
	cost += int64(len(pkts)) * stackPerRx
	for _, p := range pkts {
		s.appQ = append(s.appQ, request{conn: p.Conn, remaining: s.appCost()})
	}
	cost += int64(len(s.txQ)) * stackPerTx
	tEnd := t + cost
	for _, r := range s.txQ {
		s.deliverResponse(r.conn, tEnd)
	}
	s.txQ = s.txQ[:0]
	// Application budget until the next interrupt.
	budget := s.cfg.IntervalCycles
	s.runApp(&budget)
	s.eng.At(tEnd+s.cfg.IntervalCycles, func() { s.ciPoll() })
}

// runApp consumes application work from the queue within budget.
func (s *server) runApp(budget *int64) {
	for *budget > 0 && len(s.appQ) > 0 {
		r := &s.appQ[0]
		use := r.remaining
		if use > *budget {
			use = *budget
		}
		r.remaining -= use
		*budget -= use
		if r.remaining == 0 {
			s.txQ = append(s.txQ, response{conn: r.conn})
			s.appQ = s.appQ[:copy(s.appQ, s.appQ[1:])]
		}
	}
}

// onRxActivity wakes the orig-mode helper / kernel-mode IRQ path.
func (s *server) onRxActivity() {
	switch s.cfg.Mode {
	case Orig:
		if s.serverIdle {
			s.serverIdle = false
			s.eng.After(helperPickup, func() { s.helperStep() })
		}
	case Kernel:
		s.kernelRx()
	}
}

// helperStep is one run of the mTCP helper thread (orig mode).
func (s *server) helperStep() {
	t := s.eng.Now()
	cost := int64(stackFixed)
	pkts := s.nic.Drain(t, 0)
	cost += int64(len(pkts)) * stackPerRx
	for _, p := range pkts {
		s.appQ = append(s.appQ, request{conn: p.Conn, remaining: s.appCost()})
	}
	cost += int64(len(s.txQ)) * stackPerTx
	tEnd := t + cost
	for _, r := range s.txQ {
		s.deliverResponse(r.conn, tEnd)
	}
	s.txQ = s.txQ[:0]
	if len(s.appQ) == 0 {
		if s.nic.Pending() > 0 {
			s.eng.At(tEnd+helperPickup, func() { s.helperStep() })
		} else {
			// Helper spins on the NIC; the next arrival reschedules it.
			s.serverIdle = true
		}
		return
	}
	// Hand the core to the application: context switch plus the futex
	// wake + scheduler latency of unblocking it from epoll_wait.
	s.eng.At(tEnd+ctxSwitch+appWake, func() { s.appStep() })
}

// appStep runs the application for up to one scheduler quantum (orig
// mode). If the application exhausts its quantum with work remaining,
// the (always-runnable, spinning) helper thread receives its own fair
// CFS slice before the application resumes — a CPU-heavy application
// only ever gets ~half the core under stock mTCP.
func (s *server) appStep() {
	t := s.eng.Now()
	budget := int64(quantum)
	used := int64(quantum)
	s.runApp(&budget)
	used -= budget
	if len(s.appQ) > 0 {
		// Preempted: the helper gets a full slice.
		s.eng.At(t+used+ctxSwitch, func() { s.helperSlice() })
		return
	}
	// Blocked: the helper runs event-driven.
	s.eng.At(t+used+ctxSwitch, func() { s.helperStep() })
}

// helperSlice is the helper thread's fair scheduler slice while the
// application remains runnable: it drains the NIC and transmits, then
// spins out the remainder of its quantum.
func (s *server) helperSlice() {
	t := s.eng.Now()
	cost := int64(stackFixed)
	pkts := s.nic.Drain(t, 0)
	cost += int64(len(pkts)) * stackPerRx
	for _, p := range pkts {
		s.appQ = append(s.appQ, request{conn: p.Conn, remaining: s.appCost()})
	}
	cost += int64(len(s.txQ)) * stackPerTx
	tEnd := t + cost
	for _, r := range s.txQ {
		s.deliverResponse(r.conn, tEnd)
	}
	s.txQ = s.txQ[:0]
	s.eng.At(t+quantum+ctxSwitch, func() { s.appStep() })
}

// kernelRx charges the per-packet IRQ/softirq path and chains the
// request through the (FIFO) core. The IRQ cost grows with the
// connection count: the NIC steers flows onto 8 IRQ cores whose
// contention with the application cores collapses at high concurrency
// (the paper attributes the kernel curve\'s shape to exactly this).
func (s *server) kernelRx() {
	factor := 1 + float64(s.cfg.Conns*s.cfg.Conns)/(4*4)
	if factor > 12 {
		factor = 12
	}
	irq := int64(float64(kIRQBase) * factor)
	pkts := s.nic.Drain(s.eng.Now(), 0)
	for _, p := range pkts {
		conn := p.Conn
		if s.kernelPending > int64(ringSize) {
			// Softirq backlog overflow: the packet is lost and the
			// client retransmits after its timeout.
			s.retx++
			s.scheduleArrival(conn, s.eng.Now()+rto, true)
			continue
		}
		s.kernelPending++
		s.coreTask(irq, func(int64) {
			appCost := 2*kSyscall + s.appCost() + stackPerTx
			s.coreTask(appCost, func(end int64) {
				s.kernelPending--
				s.deliverResponse(conn, end)
			})
		})
	}
}

// coreTask serializes work on the single server core (kernel mode).
func (s *server) coreTask(cost int64, done func(end int64)) {
	start := s.eng.Now()
	if s.coreFree > start {
		start = s.coreFree
	}
	end := start + cost
	s.coreFree = end
	s.eng.At(end, func() { done(end) })
}

func (s *server) result() Result {
	cfg := s.cfg
	window := cfg.DurationCycles - s.warmup
	seconds := float64(window) / 2.6e9
	gbps := float64(s.completed) * respBytes * 8 * numThreads / seconds / 1e9
	if gbps > 9.4 {
		gbps = 9.4 // the 10 Gbps link (minus framing) is the ceiling
	}
	res := Result{
		Mode:           cfg.Mode,
		Conns:          cfg.Conns,
		Completed:      s.completed,
		ThroughputGbps: gbps,
		Drops:          s.nic.Dropped,
		Retransmits:    s.retx,
	}
	if len(s.latencies) > 0 {
		toUs := func(c int64) float64 { return float64(c) / 2600 }
		res.MeanLatencyUs = toUs(int64(stats.Mean(s.latencies)))
		res.MedianLatencyUs = toUs(stats.Median(s.latencies))
		res.P99LatencyUs = toUs(stats.Percentile(s.latencies, 99))
	}
	return res
}

// Sweep runs the Figure 4/5 connection sweep for one mode.
func Sweep(mode Mode, conns []int, workCycles int64) []Result {
	out := make([]Result, 0, len(conns))
	for _, c := range conns {
		out = append(out, Run(Config{Mode: mode, Conns: c, WorkCycles: workCycles}))
	}
	return out
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-7s conns=%-5d %6.2f Gbps  mean %7.1fµs  p50 %7.1fµs  p99 %8.1fµs  drops=%d",
		r.Mode, r.Conns, r.ThroughputGbps, r.MeanLatencyUs, r.MedianLatencyUs, r.P99LatencyUs, r.Drops)
}
