// Package mtcp models the kernel-bypass networking experiment of §5.1:
// an epserver/epwget-style closed-loop HTTP workload (1 kB responses)
// on one server core, under three designs:
//
//   - Kernel: in-kernel networking — per-packet IRQ + syscall costs,
//     with IRQ-path contention that collapses at high connection counts.
//   - Orig: stock mTCP — a helper thread pinned to the application's
//     core runs the user-level TCP stack; coordination costs context
//     switches and futexes, and a busy application delays the helper by
//     up to a scheduler quantum.
//   - CI: mTCP with the helper thread replaced by a Compiler Interrupt
//     handler that runs the stack-loop body every interval (~2500
//     cycles), with no context switching and naturally batched packet
//     processing.
//
// Loss recovery is client-driven: every request generation arms a
// retransmission timer with exponential backoff (rtoBase doubling up
// to rtoMax); after maxRetries unanswered transmissions the client
// aborts the request and reconnects. The server stack discards
// corrupted packets at checksum time and duplicate (retransmitted but
// already-accepted) generations at sequence-check time, so spurious
// retransmits cost only receive-path cycles, never duplicate
// application work. An optional fault plan injects packet loss/
// corruption/reordering at the NIC, app-side stall spikes, and
// CI-handler overrun spikes; with Config.Adaptive the CI polling
// interval backs off multiplicatively under overruns and re-tightens
// additively when the handler meets its budget again (AIMD).
//
// The simulation runs one of the 16 server threads; reported
// throughput is aggregated across threads and capped by the 10 Gbps
// link.
package mtcp

import (
	"fmt"

	"repro/internal/ci/ciruntime"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/overload"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Mode selects the server design.
type Mode int

const (
	// Kernel is standard Linux networking.
	Kernel Mode = iota
	// Orig is stock mTCP (helper thread).
	Orig
	// CI is mTCP driven by Compiler Interrupts.
	CI
)

var modeNames = [...]string{Kernel: "kernel", Orig: "orig", CI: "CI"}

// String names the mode as the paper's legend does.
func (m Mode) String() string { return modeNames[m] }

// Cost constants (cycles at the 2.6 GHz model clock).
const (
	stackFixed = 1500  // per stack run: epoll/doorbell/timer bookkeeping
	stackPerRx = 3500  // user-level TCP receive path per packet
	stackPerTx = 3000  // user-level TCP transmit path per packet
	appPerReq  = 9000  // epserver parse + response construction
	ciHandler  = 60    // CI handler invocation overhead
	ctxSwitch  = 4000  // thread context switch
	appWake    = 15000 // futex wake + scheduler latency for a blocked app
	origPerReq = 60000 // orig: per-request locking, condvar/futex notification and
	// cache bouncing between app and helper threads (calibrated so stock
	// mTCP lands at the roughly-half-of-CI throughput the paper measured)
	helperPickup = 300       // helper poll-loop granularity when idle
	kIRQBase     = 18000     // kernel per-packet IRQ + softirq + skb path, uncontended
	kSyscall     = 9000      // recv/send syscall path
	quantum      = 2_600_000 // 1 ms scheduler quantum
	think        = 500       // client think time between response and next request
	reqBytes     = 128
	respBytes    = 1100 // 1 kB payload + headers
	ringSize     = 64
	numThreads   = 16

	// Client retransmission: exponential backoff from rtoBase, capped
	// at rtoMax, aborting after maxRetries unanswered transmissions.
	rtoBase    = 13_000_000  // 5 ms initial retransmission timeout
	rtoMax     = 104_000_000 // 40 ms backoff cap
	maxRetries = 6

	// Overload-plane constants (CI mode with Config.Overload): a
	// rejected request is answered with a tiny NACK instead of a full
	// response; its client backs off before reissuing. Brownout defers
	// packets of connections with at least deferRetxThreshold observed
	// retransmits by one poll, giving fresh traffic the stack first.
	rejectNACKCycles   = 500
	nackBytes          = 64
	rejectBackoff      = 200_000 // client-side back-off after a NACK (~77 µs)
	deferRetxThreshold = 2
)

// ciAppSlowdownPct models the CI instrumentation overhead on the
// application code (per Figure 9's CI column).
const ciAppSlowdownPct = 4

// Config parameterizes one run.
type Config struct {
	Mode Mode
	// Conns is the number of concurrent connections served by this
	// core.
	Conns int
	// WorkCycles is per-request server compute (Figure 5 uses a 1M
	// iteration empty loop ≈ 1M cycles; Figure 4 uses 0).
	WorkCycles int64
	// IntervalCycles is the CI polling interval (default 2500).
	IntervalCycles int64
	// DurationCycles is the simulated time (default 26M ≈ 10 ms).
	DurationCycles int64
	Seed           uint64
	// FaultPlan optionally injects network faults (loss, corruption,
	// reordering), application stall spikes, and CI handler-overrun
	// spikes. Nil runs fault-free.
	FaultPlan *faults.Plan
	// Obs, when enabled, receives CI-poll spans, poll-cost histograms
	// and interval-adaptation instants on the "mtcp" trace category.
	Obs *obs.Scope
	// Adaptive enables AIMD adaptation of the CI polling interval
	// under handler overruns (CI mode only): overruns double the
	// interval up to 8x the configured value; sustained on-budget
	// polls re-tighten it additively. Shorthand for the classic AIMD
	// quantum policy (strict 1x overrun classification).
	Adaptive bool
	// Quantum, when non-nil, constructs the interval-control policy
	// for the CI polling loop (see ciruntime.QuantumPolicy): every
	// poll's handler cost is observed as the gap and the interval the
	// policy returns becomes the next polling period. Overrides
	// Adaptive. Brownout and breaker events still override/reset the
	// policy's interval exactly as they did the private AIMD.
	Quantum func() ciruntime.QuantumPolicy
	// Overload optionally enables the overload-control plane (CI mode
	// only), actuated from the CI poll: admission with deadline
	// propagation over the app-work backlog, NACKed rejections the
	// clients back off from, brownout that cancels the AIMD backoff
	// (polling *more* under pressure) and defers retransmit-heavy
	// connections by one poll, and a breaker whose trip resets the
	// adaptive interval to its base. Nil keeps the run bit-identical to
	// the pre-overload model.
	Overload *overload.Config
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Conns <= 0 {
		out.Conns = 1
	}
	if out.IntervalCycles <= 0 {
		out.IntervalCycles = 2500
	}
	if out.DurationCycles <= 0 {
		out.DurationCycles = 52_000_000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// Result reports one run's metrics.
type Result struct {
	Mode      Mode
	Conns     int
	Completed int64
	// ThroughputGbps is the 16-thread aggregate download throughput,
	// capped by the 10 Gbps link.
	ThroughputGbps float64
	// Latency percentiles in microseconds (request send to full
	// response).
	MeanLatencyUs, MedianLatencyUs, P99LatencyUs float64
	Drops, Retransmits                           int64
	// Issued counts client requests (unique generations, not
	// retransmits); Aborted counts requests given up after maxRetries;
	// Rejects counts requests the overload plane answered with a NACK
	// (0 with the plane disabled); Outstanding is the requests still in
	// flight at the end of the run.
	// Issued = CompletedAll + Aborted + Rejects + Outstanding, and
	// Outstanding never exceeds Conns (the closed loop keeps at most
	// one request per connection in flight).
	Issued, Aborted, Rejects, Outstanding int64
	// CompletedAll counts completions including the warmup window
	// (Completed excludes it).
	CompletedAll int64
	// Injected-fault accounting: Lost packets (wire ate them),
	// corrupted packets discarded at checksum, duplicate generations
	// discarded at sequence check, and kernel softirq backlog drops.
	Lost, CorruptDiscards, DupDiscards, BacklogDrops int64
	// Overruns counts CI polls whose handler cost exceeded the current
	// interval; FinalIntervalCycles is the AIMD interval at run end.
	Overruns            int64
	FinalIntervalCycles int64
	// Crashes counts whole-server crash/restart windows (CI mode, from
	// the fault plan's crash stream); CrashFailedPkts counts packets —
	// including in-flight retransmits — destroyed by a crash: wiped
	// from the dead ring or arriving while the server was down. They
	// are failed, not lost: the conservation identity stays exact
	// because every such packet's request is still resolved by its
	// client's RTO (retransmit or abort).
	Crashes, CrashFailedPkts int64
	// Overload is the admission plane's accounting (zero when the plane
	// is disabled).
	Overload overload.Snapshot
}

type request struct {
	conn      int
	gen       int64
	remaining int64
	// Overload-plane fields: the propagated deadline (0 = none) and
	// whether service has started (deadline-gated on first touch).
	deadline int64
	started  bool
}

type response struct {
	conn int
	gen  int64
}

type server struct {
	cfg  Config
	eng  *sim.Engine
	rng  *sim.RNG
	link *netsim.Link
	nic  *netsim.NIC

	appInj   *faults.Injector // app-side stall spikes
	ciInj    *faults.Injector // handler-overrun spikes
	crashInj *faults.Injector // whole-server crash/restart windows

	// Crash state (CI mode): while down the stack is dead — arriving
	// packets fail at the dead NIC (accounted, never silently lost) and
	// no polls run until the restart.
	down            bool
	crashes         int64
	crashFailedPkts int64
	crashNotStarted int64 // admitted-not-started requests killed by a crash

	appQ []request
	txQ  []response

	// Per-connection client state: current request generation, last
	// generation completed or aborted, and first-send time of the
	// current generation (for latency).
	gen      []int64
	ackedGen []int64
	sendTime []int64
	// Per-connection server state: last generation accepted by the
	// stack (duplicate suppression).
	seenGen []int64

	latencies    []int64
	completed    int64
	completedAll int64
	issued       int64
	aborted      int64
	retx         int64
	softDrops    int64
	corruptDisc  int64
	dupDisc      int64
	warmup       int64

	// CI-mode adaptive polling state: the installed quantum policy
	// (nil = fixed interval) and the interval currently in force.
	quantum     ciruntime.QuantumPolicy
	curInterval int64
	overruns    int64

	// CI-mode overload-plane state.
	ctl        *overload.Controller // nil = plane disabled
	deadline   int64                // Overload.DeadlineCycles (0 when off)
	appBacklog int64                // queued app work in cycles
	admitSeq   int64                // admission counter for priority tagging
	rejects    int64                // client-observed NACKs
	connRetx   []int64              // observed retransmits per connection
	deferQ     []netsim.Packet      // brownout-deferred packets (one poll)
	procBuf    []netsim.Packet      // scratch: deferred + fresh merge

	// orig-mode state
	serverIdle bool

	// kernel-mode state
	coreFree      int64
	kernelPending int64
}

// Run simulates one configuration and returns its metrics.
func Run(cfg Config) Result {
	r, _ := RunChecked(cfg)
	return r
}

// RunChecked is Run with a progress deadline on the event loop: a
// model bug or fault interaction that livelocks returns
// sim.ErrNoProgress (with partial metrics) instead of hanging.
func RunChecked(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	s := &server{
		cfg:      cfg,
		eng:      sim.NewEngine(),
		rng:      sim.NewRNG(cfg.Seed),
		link:     &netsim.Link{CyclesPerByte: netsim.CyclesPerByte10G, Propagation: 26000},
		nic:      netsim.NewNIC(ringSize),
		appInj:   faults.New(cfg.FaultPlan, "mtcp/app"),
		ciInj:    faults.New(cfg.FaultPlan, "mtcp/ci"),
		gen:      make([]int64, cfg.Conns),
		ackedGen: make([]int64, cfg.Conns),
		sendTime: make([]int64, cfg.Conns),
		seenGen:  make([]int64, cfg.Conns),
		warmup:   cfg.DurationCycles / 4,
	}
	s.nic.Faults = faults.New(cfg.FaultPlan, "mtcp/net")
	s.curInterval = cfg.IntervalCycles
	switch {
	case cfg.Quantum != nil:
		s.quantum = cfg.Quantum()
	case cfg.Adaptive:
		// The classic mtcp AIMD: strict 1x overrun classification
		// ("the handler cost exceeded its interval"), 8x cap, tighten
		// after 4 on-budget polls.
		s.quantum = &ciruntime.AIMD{OverrunFactor: 1}
	}
	if s.quantum != nil {
		s.quantum.Reset(cfg.IntervalCycles)
	}
	s.serverIdle = true
	if cfg.Mode == CI {
		s.crashInj = faults.New(cfg.FaultPlan, "mtcp/crash")
		if gap, down, ok := s.crashInj.NextCrash(); ok {
			s.eng.At(gap, func() { s.crashNow(down) })
		}
	}
	if cfg.Overload != nil && cfg.Mode == CI {
		oc := *cfg.Overload
		if oc.Name == "" {
			oc.Name = "mtcp/overload"
		}
		if oc.Obs == nil {
			oc.Obs = cfg.Obs
		}
		// A breaker trip means the regime changed: the backoff the
		// quantum policy learned under the old regime must not persist
		// into recovery.
		userHook := oc.OnStateChange
		oc.OnStateChange = func(from, to overload.State, now int64) {
			if to == overload.Open && s.quantum != nil {
				s.curInterval = cfg.IntervalCycles
				s.quantum.Reset(cfg.IntervalCycles)
			}
			if userHook != nil {
				userHook(from, to, now)
			}
		}
		s.ctl = overload.New(&oc)
		s.deadline = oc.DeadlineCycles
		s.connRetx = make([]int64, cfg.Conns)
	}
	// Clients open their connections spread over the first ~20 µs.
	for c := 0; c < cfg.Conns; c++ {
		conn := c
		start := s.rng.Intn(50_000)
		s.eng.At(start, func() { s.sendRequest(conn) })
	}
	if cfg.Mode == CI {
		s.eng.At(cfg.IntervalCycles, func() { s.ciPoll() })
	}
	_, err := s.eng.RunDeadline(cfg.DurationCycles, sim.Deadline{
		MaxEvents:   max(cfg.DurationCycles/10, 1_000_000),
		MaxSameTime: 1 << 17,
	})
	if err == nil {
		notStarted := s.crashNotStarted
		for _, r := range s.appQ {
			if !r.started {
				notStarted++
			}
		}
		err = s.ctl.Invariants(notStarted)
	}
	return s.result(), err
}

// appCost is the server-side compute per request: inflated by the CI
// instrumentation overhead in CI mode; carrying the per-request queue
// locking and event-notification cost in orig mode; plus any injected
// stall spike (page fault / slow syscall).
func (s *server) appCost() int64 {
	c := appPerReq + s.cfg.WorkCycles
	switch s.cfg.Mode {
	case CI:
		c += c * ciAppSlowdownPct / 100
	case Orig:
		c += origPerReq
	}
	return c + s.appInj.Stall()
}

// sendRequest issues the connection's next request from the client and
// arms its retransmission timer.
func (s *server) sendRequest(conn int) {
	now := s.eng.Now()
	s.issued++
	s.gen[conn]++
	g := s.gen[conn]
	s.sendTime[conn] = now
	s.transmit(conn, g, false)
	s.armRTO(conn, g, 0)
}

// transmit puts one request packet on the wire. Loss (injected or
// ring overflow) is silent; the client's RTO timer recovers. A packet
// reaching a crashed server fails at the dead NIC — explicitly
// accounted as crash-failed, never folded into wire loss.
func (s *server) transmit(conn int, gen int64, isRetx bool) {
	at := s.eng.Now() + s.link.Delay(reqBytes)
	s.eng.At(at, func() {
		if s.down {
			s.crashFailedPkts++
			return
		}
		ok := s.nic.Push(netsim.Packet{
			Arrival: s.eng.Now(), Conn: conn, Seq: gen,
			Bytes: reqBytes, Retransmit: isRetx,
		})
		if ok && s.cfg.Mode != CI {
			s.onRxActivity()
		}
	})
}

// crashNow kills the server process (CI mode): every packet in the
// ring — in-flight retransmits included — and all queued application
// and transmit work dies with it, each explicitly accounted so the
// conservation identity stays exact. The server restarts cold after
// the down window: connection state (duplicate-suppression
// generations) is gone, so post-restart retransmits of already-served
// generations are re-served and discarded client-side.
func (s *server) crashNow(downCycles int64) {
	now := s.eng.Now()
	s.crashes++
	s.crashFailedPkts += s.nic.Wipe() + int64(len(s.deferQ))
	s.deferQ = s.deferQ[:0]
	s.txQ = s.txQ[:0]
	for _, r := range s.appQ {
		if !r.started {
			s.crashNotStarted++
		}
	}
	s.appQ = s.appQ[:0]
	s.appBacklog = 0
	for i := range s.seenGen {
		s.seenGen[i] = 0
	}
	s.down = true
	s.eng.At(now+downCycles, func() { s.restart() })
	if gap, down, ok := s.crashInj.NextCrash(); ok {
		s.eng.At(now+downCycles+gap, func() { s.crashNow(down) })
	}
}

// restart brings the server back cold: polling resumes at the base
// interval, one interval after the process is up.
func (s *server) restart() {
	s.down = false
	s.curInterval = s.cfg.IntervalCycles
	if s.quantum != nil {
		s.quantum.Reset(s.cfg.IntervalCycles)
	}
	s.eng.At(s.eng.Now()+s.curInterval, func() { s.ciPoll() })
}

// rtoFor is the exponential-backoff timeout for the given attempt.
func rtoFor(attempt int) int64 {
	t := int64(rtoBase) << uint(attempt)
	if t > rtoMax || t <= 0 {
		t = rtoMax
	}
	return t
}

// armRTO schedules the retransmission timer for one transmission of
// (conn, gen). If the response arrives first the timer is a no-op;
// otherwise it retransmits with doubled backoff, and after maxRetries
// aborts the request and reconnects.
func (s *server) armRTO(conn int, gen int64, attempt int) {
	s.eng.After(rtoFor(attempt), func() {
		if s.ackedGen[conn] >= gen {
			return // answered (or already aborted)
		}
		if attempt >= maxRetries {
			s.aborted++
			s.ackedGen[conn] = gen
			now := s.eng.Now()
			s.ctl.Observe(now, now-s.sendTime[conn], true)
			// The client closes the connection and reopens: the
			// closed loop continues with a fresh request.
			s.eng.After(think, func() { s.sendRequest(conn) })
			return
		}
		s.retx++
		s.transmit(conn, gen, true)
		s.armRTO(conn, gen, attempt+1)
	})
}

// admit filters drained packets through checksum and duplicate
// suppression, returning the packets the stack accepts as new
// requests. Discards still cost receive-path cycles at the caller.
func (s *server) admit(pkts []netsim.Packet) []netsim.Packet {
	out := pkts[:0]
	for _, p := range pkts {
		if p.Corrupt {
			s.corruptDisc++
			continue
		}
		if p.Seq <= s.seenGen[p.Conn] {
			s.dupDisc++
			continue
		}
		s.seenGen[p.Conn] = p.Seq
		out = append(out, p)
	}
	return out
}

// deliverResponse completes a request at the client and starts the
// next one (closed loop). Stale responses (duplicate server work or a
// response overtaking an abort) are dropped at the client.
func (s *server) deliverResponse(conn int, gen int64, txDone int64) {
	arrive := txDone + s.link.Delay(respBytes)
	s.eng.At(arrive, func() {
		if s.ackedGen[conn] >= gen {
			return
		}
		s.ackedGen[conn] = gen
		now := s.eng.Now()
		s.ctl.Observe(now, now-s.sendTime[conn], false)
		s.completedAll++
		if now > s.warmup {
			s.latencies = append(s.latencies, now-s.sendTime[conn])
			s.completed++
		}
		s.eng.At(now+think, func() { s.sendRequest(conn) })
	})
}

// deliverReject answers a refused request with a tiny NACK: the client
// finishes the generation (so its RTO timer stands down), backs off,
// then continues the closed loop. Rejections are not service outcomes,
// so they feed neither the latency series nor the breaker window.
func (s *server) deliverReject(conn int, gen int64, txDone int64) {
	arrive := txDone + s.link.Delay(nackBytes)
	s.eng.At(arrive, func() {
		if s.ackedGen[conn] >= gen {
			return
		}
		s.ackedGen[conn] = gen
		s.rejects++
		now := s.eng.Now()
		s.eng.At(now+think+rejectBackoff, func() { s.sendRequest(conn) })
	})
}

// ciPoll is the CI-mode stack run: the interrupt handler executes the
// mTCP stack-loop body, then the application consumes the remainder of
// the interval. Under Config.Adaptive the polling interval reacts to
// handler overruns with AIMD; with the overload plane enabled the poll
// is also the control-loop tick — admission, brownout and breaker
// decisions all ride the CI handler's cadence.
func (s *server) ciPoll() {
	if s.down {
		return // the process died; restart schedules a fresh poll
	}
	t := s.eng.Now()
	s.ctl.Poll(t, s.appBacklog)
	cost := int64(ciHandler)
	cost += s.ciInj.Overrun() // injected handler-overrun spike
	pkts := s.nic.Drain(t, 0)
	if len(pkts) > 0 || len(s.txQ) > 0 || len(s.deferQ) > 0 {
		cost += stackFixed
	}
	cost += int64(len(pkts)) * stackPerRx
	proc := pkts
	if s.ctl.Enabled() {
		// Brownout deferral: previously deferred packets run first and
		// are never deferred twice; fresh packets from retransmit-heavy
		// connections wait one poll so fresh traffic gets the stack.
		proc = append(s.procBuf[:0], s.deferQ...)
		s.deferQ = s.deferQ[:0]
		brownout := s.ctl.BrownoutLevel() >= 1
		for _, p := range pkts {
			if p.Retransmit && !p.Corrupt {
				s.connRetx[p.Conn]++
			}
			if brownout && p.Retransmit && !p.Corrupt && s.connRetx[p.Conn] >= deferRetxThreshold {
				s.deferQ = append(s.deferQ, p)
				s.ctl.NoteDeferred()
				continue
			}
			proc = append(proc, p)
		}
		s.procBuf = proc
	}
	var nacks []response
	for _, p := range s.admit(proc) {
		if !s.ctl.Enabled() {
			s.appQ = append(s.appQ, request{conn: p.Conn, gen: p.Seq, remaining: s.appCost()})
			continue
		}
		ac := s.appCost()
		// The completion estimate dilutes the backlog by the app's duty
		// cycle: it only runs interval-out-of-every-period.
		est := s.appBacklog + ac
		if pe := s.ctl.PeriodEstCycles(); pe > s.curInterval {
			est = int64(float64(est) * float64(pe) / float64(s.curInterval))
		}
		v := s.ctl.Admit(t, overload.Request{
			Arrival: p.Arrival, EstDelayCycles: est,
			Prio: overload.PriorityOf(s.admitSeq),
		})
		s.admitSeq++
		if !v.Admitted() {
			cost += rejectNACKCycles
			nacks = append(nacks, response{conn: p.Conn, gen: p.Seq})
			continue
		}
		s.appQ = append(s.appQ, request{
			conn: p.Conn, gen: p.Seq, remaining: ac,
			deadline: p.Arrival + s.deadline,
		})
		s.appBacklog += ac
	}
	cost += int64(len(s.txQ)) * stackPerTx
	tEnd := t + cost
	for _, r := range s.txQ {
		s.deliverResponse(r.conn, r.gen, tEnd)
	}
	s.txQ = s.txQ[:0]
	for _, r := range nacks {
		s.deliverReject(r.conn, r.gen, tEnd)
	}
	// Application budget until the next interrupt.
	budget := s.curInterval
	s.runApp(&budget, tEnd)
	if s.quantum != nil {
		s.adaptInterval(cost)
	}
	s.brownoutInterval()
	if sc := s.cfg.Obs; sc != nil {
		sc.Span("mtcp", "ci-poll", 0, t, tEnd,
			obs.I("rx_pkts", int64(len(pkts))), obs.I("cost", cost))
		sc.Observe("mtcp/poll_cost_cycles", cost)
		sc.Count("mtcp/polls", 1)
		if cost > s.curInterval {
			sc.Count("mtcp/poll_overruns", 1)
		}
	}
	s.eng.At(tEnd+s.curInterval, func() { s.ciPoll() })
}

// brownoutInterval overrides the policy interval under brownout:
// pressure means polling *more* often, not less — level 1 cancels any
// learned backoff, level 2 halves the base interval so the stack
// drains queues at twice the cadence while the plane sheds load. The
// policy is reset alongside so it relearns from the new regime
// instead of carrying a stale streak.
func (s *server) brownoutInterval() {
	if !s.ctl.Enabled() || s.quantum == nil {
		return
	}
	base := s.cfg.IntervalCycles
	switch lvl := s.ctl.BrownoutLevel(); {
	case lvl >= 2:
		if s.curInterval != base/2 {
			s.curInterval = base / 2
			s.quantum.Reset(base)
		}
	case lvl == 1:
		if s.curInterval > base {
			s.curInterval = base
			s.quantum.Reset(base)
		}
	}
}

// adaptInterval feeds one poll's handler cost to the quantum policy
// as the observed gap and applies the interval it answers with. With
// the classic AIMD policy this reproduces the old private controller
// exactly: an overrunning handler doubles the interval (up to the 8x
// cap); consecutive on-budget polls shrink it additively back toward
// the target.
func (s *server) adaptInterval(handlerCost int64) {
	prev := s.curInterval
	next, overrun := s.quantum.Observe(handlerCost, s.curInterval)
	if overrun {
		s.overruns++
	}
	s.curInterval = next
	if sc := s.cfg.Obs; sc != nil && s.curInterval != prev {
		sc.Instant("mtcp", "adapt-interval", 0, s.eng.Now(),
			obs.I("from", prev), obs.I("to", s.curInterval))
		sc.Count("mtcp/interval_adaptations", 1)
	}
}

// runApp consumes application work from the queue within budget. With
// the overload plane enabled, service start is deadline-gated: a
// request whose head-of-queue turn comes more than one poll period
// past its propagated deadline is expired with a NACK instead of
// burning app cycles on a dead answer.
func (s *server) runApp(budget *int64, now int64) {
	for *budget > 0 && len(s.appQ) > 0 {
		r := &s.appQ[0]
		if !r.started {
			slack := s.curInterval
			if pe := s.ctl.PeriodEstCycles(); pe > slack {
				slack = pe
			}
			if !s.ctl.StartOrExpire(now, r.deadline, slack) {
				s.appBacklog -= r.remaining
				conn, gen := r.conn, r.gen
				s.appQ = s.appQ[:copy(s.appQ, s.appQ[1:])]
				s.deliverReject(conn, gen, now+rejectNACKCycles)
				continue
			}
			r.started = true
		}
		use := r.remaining
		if use > *budget {
			use = *budget
		}
		r.remaining -= use
		*budget -= use
		if s.ctl.Enabled() {
			s.appBacklog -= use
		}
		if r.remaining == 0 {
			s.txQ = append(s.txQ, response{conn: r.conn, gen: r.gen})
			s.appQ = s.appQ[:copy(s.appQ, s.appQ[1:])]
		}
	}
}

// onRxActivity wakes the orig-mode helper / kernel-mode IRQ path.
func (s *server) onRxActivity() {
	switch s.cfg.Mode {
	case Orig:
		if s.serverIdle {
			s.serverIdle = false
			s.eng.After(helperPickup, func() { s.helperStep() })
		}
	case Kernel:
		s.kernelRx()
	}
}

// helperStep is one run of the mTCP helper thread (orig mode).
func (s *server) helperStep() {
	t := s.eng.Now()
	cost := int64(stackFixed)
	pkts := s.nic.Drain(t, 0)
	cost += int64(len(pkts)) * stackPerRx
	for _, p := range s.admit(pkts) {
		s.appQ = append(s.appQ, request{conn: p.Conn, gen: p.Seq, remaining: s.appCost()})
	}
	cost += int64(len(s.txQ)) * stackPerTx
	tEnd := t + cost
	for _, r := range s.txQ {
		s.deliverResponse(r.conn, r.gen, tEnd)
	}
	s.txQ = s.txQ[:0]
	if len(s.appQ) == 0 {
		if s.nic.Pending() > 0 {
			s.eng.At(tEnd+helperPickup, func() { s.helperStep() })
		} else {
			// Helper spins on the NIC; the next arrival reschedules it.
			s.serverIdle = true
		}
		return
	}
	// Hand the core to the application: context switch plus the futex
	// wake + scheduler latency of unblocking it from epoll_wait.
	s.eng.At(tEnd+ctxSwitch+appWake, func() { s.appStep() })
}

// appStep runs the application for up to one scheduler quantum (orig
// mode). If the application exhausts its quantum with work remaining,
// the (always-runnable, spinning) helper thread receives its own fair
// CFS slice before the application resumes — a CPU-heavy application
// only ever gets ~half the core under stock mTCP.
func (s *server) appStep() {
	t := s.eng.Now()
	budget := int64(quantum)
	used := int64(quantum)
	s.runApp(&budget, t)
	used -= budget
	if len(s.appQ) > 0 {
		// Preempted: the helper gets a full slice.
		s.eng.At(t+used+ctxSwitch, func() { s.helperSlice() })
		return
	}
	// Blocked: the helper runs event-driven.
	s.eng.At(t+used+ctxSwitch, func() { s.helperStep() })
}

// helperSlice is the helper thread's fair scheduler slice while the
// application remains runnable: it drains the NIC and transmits, then
// spins out the remainder of its quantum.
func (s *server) helperSlice() {
	t := s.eng.Now()
	cost := int64(stackFixed)
	pkts := s.nic.Drain(t, 0)
	cost += int64(len(pkts)) * stackPerRx
	for _, p := range s.admit(pkts) {
		s.appQ = append(s.appQ, request{conn: p.Conn, gen: p.Seq, remaining: s.appCost()})
	}
	cost += int64(len(s.txQ)) * stackPerTx
	tEnd := t + cost
	for _, r := range s.txQ {
		s.deliverResponse(r.conn, r.gen, tEnd)
	}
	s.txQ = s.txQ[:0]
	s.eng.At(t+quantum+ctxSwitch, func() { s.appStep() })
}

// kernelRx charges the per-packet IRQ/softirq path and chains the
// request through the (FIFO) core. The IRQ cost grows with the
// connection count: the NIC steers flows onto 8 IRQ cores whose
// contention with the application cores collapses at high concurrency
// (the paper attributes the kernel curve's shape to exactly this).
func (s *server) kernelRx() {
	factor := 1 + float64(s.cfg.Conns*s.cfg.Conns)/(4*4)
	if factor > 12 {
		factor = 12
	}
	irq := int64(float64(kIRQBase) * factor)
	pkts := s.nic.Drain(s.eng.Now(), 0)
	for _, p := range s.admit(pkts) {
		conn, gen := p.Conn, p.Seq
		if s.kernelPending > int64(ringSize) {
			// Softirq backlog overflow: the packet is lost and the
			// client's RTO timer retransmits after its backoff.
			s.softDrops++
			continue
		}
		s.kernelPending++
		s.coreTask(irq, func(int64) {
			appCost := 2*kSyscall + s.appCost() + stackPerTx
			s.coreTask(appCost, func(end int64) {
				s.kernelPending--
				s.deliverResponse(conn, gen, end)
			})
		})
	}
}

// coreTask serializes work on the single server core (kernel mode).
func (s *server) coreTask(cost int64, done func(end int64)) {
	start := s.eng.Now()
	if s.coreFree > start {
		start = s.coreFree
	}
	end := start + cost
	s.coreFree = end
	s.eng.At(end, func() { done(end) })
}

func (s *server) result() Result {
	cfg := s.cfg
	window := cfg.DurationCycles - s.warmup
	seconds := float64(window) / 2.6e9
	gbps := float64(s.completed) * respBytes * 8 * numThreads / seconds / 1e9
	if gbps > 9.4 {
		gbps = 9.4 // the 10 Gbps link (minus framing) is the ceiling
	}
	res := Result{
		Mode:                cfg.Mode,
		Conns:               cfg.Conns,
		Completed:           s.completed,
		ThroughputGbps:      gbps,
		Drops:               s.nic.Dropped + s.softDrops,
		Retransmits:         s.retx,
		Issued:              s.issued,
		Aborted:             s.aborted,
		Rejects:             s.rejects,
		Outstanding:         s.issued - s.completedAll - s.aborted - s.rejects,
		CompletedAll:        s.completedAll,
		Lost:                s.nic.Lost,
		CorruptDiscards:     s.corruptDisc,
		DupDiscards:         s.dupDisc,
		BacklogDrops:        s.softDrops,
		Overruns:            s.overruns,
		FinalIntervalCycles: s.curInterval,
		Crashes:             s.crashes,
		CrashFailedPkts:     s.crashFailedPkts,
		Overload:            s.ctl.Snapshot(),
	}
	if len(s.latencies) > 0 {
		toUs := func(c int64) float64 { return float64(c) / 2600 }
		res.MeanLatencyUs = toUs(int64(stats.Mean(s.latencies)))
		res.MedianLatencyUs = toUs(stats.Median(s.latencies))
		res.P99LatencyUs = toUs(stats.Percentile(s.latencies, 99))
	}
	return res
}

// Sweep runs the Figure 4/5 connection sweep for one mode.
func Sweep(mode Mode, conns []int, workCycles int64) []Result {
	return SweepObs(mode, conns, workCycles, nil)
}

// SweepObs is Sweep with an observability scope threaded into every
// run's Config (nil scope = plain Sweep).
func SweepObs(mode Mode, conns []int, workCycles int64, scope *obs.Scope) []Result {
	out := make([]Result, 0, len(conns))
	for _, c := range conns {
		out = append(out, Run(Config{Mode: mode, Conns: c, WorkCycles: workCycles, Obs: scope}))
	}
	return out
}

// String renders a result row.
func (r Result) String() string {
	return fmt.Sprintf("%-7s conns=%-5d %6.2f Gbps  mean %7.1fµs  p50 %7.1fµs  p99 %8.1fµs  drops=%d",
		r.Mode, r.Conns, r.ThroughputGbps, r.MeanLatencyUs, r.MedianLatencyUs, r.P99LatencyUs, r.Drops)
}
