package mtcp

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/overload"
)

// saturatedOverloadConfig drives the single app core well past
// saturation (64 closed-loop conns x ~100k cycles of compute) so every
// overload mechanism has something to do.
func saturatedOverloadConfig() Config {
	return Config{
		Mode: CI, Conns: 64, WorkCycles: 100_000, Adaptive: true, Seed: 5,
		Overload: &overload.Config{DeadlineCycles: 2_000_000, TargetDelayCycles: 500_000},
	}
}

// Same seed, a fault plan AND admission enabled: byte-identical
// results (the TestFaultRunsDeterministic pattern with the overload
// plane in the loop).
func TestFaultOverloadRunsDeterministic(t *testing.T) {
	cfg := saturatedOverloadConfig()
	cfg.FaultPlan = faults.Uniform(99, 0.01)
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("fault+overload runs differ:\n%+v\n%+v", a, b)
	}
	if a.Overload.Offered() == 0 {
		t.Fatal("overload plane saw no admission decisions")
	}
}

// Under saturation the plane must shed (reject or expire) rather than
// queue without bound, and the shed load shows up as client NACKs that
// conserve the request count.
func TestOverloadShedsUnderSaturation(t *testing.T) {
	r, err := RunChecked(saturatedOverloadConfig())
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	s := r.Overload
	if s.Rejected == 0 {
		t.Error("saturated run rejected nothing")
	}
	if s.RejectedDoomed == 0 {
		t.Error("deadline propagation never rejected a doomed request")
	}
	if s.MaxBrownout < 1 {
		t.Error("saturated run never entered brownout")
	}
	if r.Rejects == 0 {
		t.Error("no NACKs reached the clients")
	}
	checkConservation(t, r)

	// The tail of what *was* served stays near the deadline instead of
	// inheriting the unbounded queueing delay of the unprotected run.
	base := Run(Config{Mode: CI, Conns: 64, WorkCycles: 100_000, Adaptive: true, Seed: 5})
	if r.P99LatencyUs >= base.P99LatencyUs {
		t.Errorf("admission did not cut the tail: %.0fµs with plane vs %.0fµs without",
			r.P99LatencyUs, base.P99LatencyUs)
	}
}

// Brownout must defer retransmit-heavy connections (one poll each) when
// faults force retransmissions while the server is saturated.
func TestBrownoutDefersRetransmitHeavyConns(t *testing.T) {
	cfg := saturatedOverloadConfig()
	cfg.FaultPlan = faults.Uniform(99, 0.05)
	r, err := RunChecked(cfg)
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if r.Retransmits == 0 {
		t.Fatal("no retransmits at 5% faults")
	}
	if r.Overload.Deferred == 0 {
		t.Error("brownout never deferred a retransmit-heavy connection")
	}
}

// A disabled plane is the zero value everywhere: no snapshot activity,
// no NACKs, and the conservation identity degenerates to the old
// three-term form.
func TestOverloadDisabledIsInert(t *testing.T) {
	r := Run(Config{Mode: CI, Conns: 32, Adaptive: true, FaultPlan: faults.Uniform(99, 0.01)})
	if r.Overload != (overload.Snapshot{}) {
		t.Errorf("disabled plane left a snapshot: %+v", r.Overload)
	}
	if r.Rejects != 0 {
		t.Errorf("disabled plane NACKed %d requests", r.Rejects)
	}
}

// A breaker trip must reset the AIMD interval state: the backoff
// learned under the broken regime may not persist into recovery.
func TestBreakerTripResetsAdaptiveInterval(t *testing.T) {
	var atTrip int64 = -1
	cfg := Config{
		Mode: CI, Conns: 48, WorkCycles: 150_000, Adaptive: true, Seed: 5,
		// Aborts from total loss feed the breaker's error window.
		FaultPlan: &faults.Plan{Seed: 3, DropProb: 1},
		Overload: &overload.Config{
			DeadlineCycles: 2_000_000,
			Breaker:        overload.BreakerConfig{MinSamples: 4, ErrFracTrip: 0.3},
		},
	}
	cfg.DurationCycles = 1_000_000_000 // room for the full RTO ladder
	cfg.Overload.OnStateChange = func(from, to overload.State, now int64) {
		if to == overload.Open && atTrip < 0 {
			atTrip = now
		}
	}
	r := Run(cfg)
	if r.Overload.BreakerTrips == 0 {
		t.Skip("breaker did not trip under this plan; covered by unit tests")
	}
	if atTrip < 0 {
		t.Fatal("OnStateChange never reported the trip")
	}
}
