package mtcp

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/overload"
)

func TestModesRunAndComplete(t *testing.T) {
	for _, m := range []Mode{Kernel, Orig, CI} {
		r := Run(Config{Mode: m, Conns: 16})
		if r.Completed == 0 {
			t.Errorf("%v: no completed requests", m)
		}
		if r.ThroughputGbps <= 0 || r.ThroughputGbps > 9.4 {
			t.Errorf("%v: throughput %v out of range", m, r.ThroughputGbps)
		}
		if r.MedianLatencyUs <= 0 {
			t.Errorf("%v: no latency recorded", m)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(Config{Mode: CI, Conns: 32})
	b := Run(Config{Mode: CI, Conns: 32})
	if a.Completed != b.Completed || a.MedianLatencyUs != b.MedianLatencyUs {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

// Figure 4 headline: CI-mTCP ≈ 2x stock mTCP throughput at saturation,
// with lower latency; kernel collapses at high connection counts.
func TestFigure4Shape(t *testing.T) {
	ci := Run(Config{Mode: CI, Conns: 64})
	orig := Run(Config{Mode: Orig, Conns: 64})
	if ci.ThroughputGbps < 1.6*orig.ThroughputGbps {
		t.Errorf("CI (%.2f) should be ~2x orig (%.2f)", ci.ThroughputGbps, orig.ThroughputGbps)
	}
	if ci.MedianLatencyUs >= orig.MedianLatencyUs {
		t.Errorf("CI latency (%.1f) should beat orig (%.1f)", ci.MedianLatencyUs, orig.MedianLatencyUs)
	}
	kLow := Run(Config{Mode: Kernel, Conns: 2})
	kHigh := Run(Config{Mode: Kernel, Conns: 128})
	if kHigh.ThroughputGbps > kLow.ThroughputGbps/2 {
		t.Errorf("kernel should collapse: low-conns %.2f vs high-conns %.2f",
			kLow.ThroughputGbps, kHigh.ThroughputGbps)
	}
	if kHigh.ThroughputGbps >= ci.ThroughputGbps {
		t.Error("kernel at high conns should be far below CI")
	}
}

// Figure 5 headline: with per-request compute, CI beats orig clearly
// and kernel tracks CI.
func TestFigure5Shape(t *testing.T) {
	const work = 1_000_000
	ci := Run(Config{Mode: CI, Conns: 16, WorkCycles: work})
	orig := Run(Config{Mode: Orig, Conns: 16, WorkCycles: work})
	kern := Run(Config{Mode: Kernel, Conns: 16, WorkCycles: work})
	if ci.ThroughputGbps < 1.5*orig.ThroughputGbps {
		t.Errorf("CI (%.3f) should clearly beat orig (%.3f) with compute work",
			ci.ThroughputGbps, orig.ThroughputGbps)
	}
	ratio := kern.ThroughputGbps / ci.ThroughputGbps
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("kernel (%.3f) should track CI (%.3f) under compute work",
			kern.ThroughputGbps, ci.ThroughputGbps)
	}
	if orig.MedianLatencyUs < ci.MedianLatencyUs {
		t.Error("orig latency should exceed CI latency under compute work")
	}
}

func TestThroughputScalesWithConns(t *testing.T) {
	lo := Run(Config{Mode: CI, Conns: 1})
	hi := Run(Config{Mode: CI, Conns: 8})
	if hi.ThroughputGbps <= lo.ThroughputGbps {
		t.Errorf("throughput must rise with connections: %.2f -> %.2f",
			lo.ThroughputGbps, hi.ThroughputGbps)
	}
}

func TestDropsTriggerRetransmits(t *testing.T) {
	r := Run(Config{Mode: Orig, Conns: 256})
	if r.Drops == 0 || r.Retransmits == 0 {
		t.Errorf("expected ring overflow at 256 conns: drops=%d retx=%d", r.Drops, r.Retransmits)
	}
}

func TestSweepCoversAllConns(t *testing.T) {
	conns := []int{1, 4, 16}
	rs := Sweep(CI, conns, 0)
	if len(rs) != len(conns) {
		t.Fatalf("sweep returned %d results", len(rs))
	}
	for i, r := range rs {
		if r.Conns != conns[i] || r.Mode != CI {
			t.Errorf("row %d = %+v", i, r)
		}
		if r.String() == "" {
			t.Error("empty row rendering")
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := Run(Config{Mode: CI})
	if r.Conns != 1 {
		t.Errorf("default conns = %d", r.Conns)
	}
}

// §5.1: "packet processing is more efficient in larger batches... the
// CI version polls the NIC periodically, based on the configured 2500
// cycle CI interval, resulting in larger batches... Longer CI intervals
// further improve efficiency" — at the cost of latency.
func TestLongerCIIntervalImprovesEfficiencyTradesLatency(t *testing.T) {
	// Use compute-bound requests so throughput is CPU-efficiency-bound
	// rather than link-bound, making the batching effect visible.
	// Efficiency: at CPU saturation, longer intervals amortize the
	// per-poll fixed costs over bigger batches.
	atLoad := func(interval int64) Result {
		return Run(Config{Mode: CI, Conns: 64, WorkCycles: 30000, IntervalCycles: interval})
	}
	short := atLoad(1000)
	long := atLoad(16000)
	if long.Completed <= short.Completed {
		t.Errorf("longer interval should complete more work: %d vs %d requests",
			long.Completed, short.Completed)
	}
	// Latency: at low load the poll delay dominates, so longer
	// intervals cost response time.
	idleShort := Run(Config{Mode: CI, Conns: 1, IntervalCycles: 1000})
	idleLong := Run(Config{Mode: CI, Conns: 1, IntervalCycles: 16000})
	if idleLong.MedianLatencyUs <= idleShort.MedianLatencyUs {
		t.Errorf("longer interval should raise low-load latency: %.1f vs %.1f µs",
			idleLong.MedianLatencyUs, idleShort.MedianLatencyUs)
	}
}

// Regression for the backoff path: at 1% injected packet loss the CI
// server must degrade smoothly — requests keep completing, conservation
// holds, retransmits recover nearly all losses, and throughput stays
// within a modest factor of the fault-free run.
func TestSmoothDegradationAtOnePercentLoss(t *testing.T) {
	base := Run(Config{Mode: CI, Conns: 32})
	r, err := RunChecked(Config{
		Mode: CI, Conns: 32,
		FaultPlan: &faults.Plan{Seed: 11, DropProb: 0.01},
	})
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if r.Lost == 0 {
		t.Fatal("no injected loss at 1%")
	}
	if r.Retransmits == 0 {
		t.Error("losses must trigger retransmits")
	}
	if r.Completed == 0 {
		t.Fatal("no completions under 1% loss")
	}
	if r.ThroughputGbps < 0.5*base.ThroughputGbps {
		t.Errorf("1%% loss should degrade gracefully: %.2f vs fault-free %.2f Gbps",
			r.ThroughputGbps, base.ThroughputGbps)
	}
	// With rtoBase backoff and maxRetries=6 the odds of aborting at 1%
	// loss are ~1e-12; any abort here means the backoff path is broken.
	if r.Aborted != 0 {
		t.Errorf("aborts at 1%% loss: %d", r.Aborted)
	}
	checkConservation(t, r)
}

func checkConservation(t *testing.T, r Result) {
	t.Helper()
	if r.Issued != r.CompletedAll+r.Aborted+r.Rejects+r.Outstanding {
		t.Errorf("request conservation: issued=%d completedAll=%d aborted=%d rejects=%d outstanding=%d",
			r.Issued, r.CompletedAll, r.Aborted, r.Rejects, r.Outstanding)
	}
	if r.Outstanding < 0 || r.Outstanding > int64(r.Conns) {
		t.Errorf("outstanding=%d out of [0, %d]", r.Outstanding, r.Conns)
	}
}

// The exponential backoff must abort (not retransmit forever) when the
// wire eats everything, and the closed loop must keep reissuing.
func TestTotalLossAbortsWithBackoffCap(t *testing.T) {
	r, err := RunChecked(Config{
		Mode: CI, Conns: 4,
		DurationCycles: 1_000_000_000, // 385 ms: enough for a full backoff ladder
		FaultPlan:      &faults.Plan{Seed: 3, DropProb: 1},
	})
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if r.CompletedAll != 0 {
		t.Errorf("completions despite 100%% loss: %d", r.CompletedAll)
	}
	if r.Aborted == 0 {
		t.Error("total loss must abort requests after maxRetries")
	}
	// Each aborted generation transmits 1 + maxRetries times.
	if want := r.Aborted * maxRetries; r.Retransmits < want {
		t.Errorf("retransmits=%d, want >= %d (maxRetries per abort)", r.Retransmits, want)
	}
	checkConservation(t, r)
}

// Same seed and plan ⇒ bit-identical results, fault injection included.
func TestFaultRunsDeterministic(t *testing.T) {
	cfg := Config{
		Mode: CI, Conns: 32, Adaptive: true,
		FaultPlan: faults.Uniform(99, 0.01),
	}
	a := Run(cfg)
	b := Run(cfg)
	if a != b {
		t.Errorf("fault runs differ:\n%+v\n%+v", a, b)
	}
}

// Corrupted packets are discarded at checksum time and recovered by
// retransmission; duplicates from spurious retransmits never reach the
// application twice.
func TestCorruptionDiscardAndDuplicateSuppression(t *testing.T) {
	r, err := RunChecked(Config{
		Mode: CI, Conns: 32,
		FaultPlan: &faults.Plan{Seed: 21, CorruptProb: 0.05},
	})
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if r.CorruptDiscards == 0 {
		t.Fatal("no corrupt discards at 5% corruption")
	}
	if r.Completed == 0 {
		t.Fatal("no completions under corruption")
	}
	checkConservation(t, r)
}

// Adaptive polling: injected handler-overrun spikes must back the
// interval off (bounded by the cap) and the backoff must re-tighten —
// and adaptation must stay off unless opted into.
func TestAdaptiveIntervalBacksOffUnderOverruns(t *testing.T) {
	plan := &faults.Plan{Seed: 7, OverrunProb: 0.5, OverrunCycles: 50_000}
	fixed := Run(Config{Mode: CI, Conns: 16, FaultPlan: plan})
	if fixed.FinalIntervalCycles != 2500 {
		t.Errorf("interval moved without Adaptive: %d", fixed.FinalIntervalCycles)
	}
	adaptive := Run(Config{Mode: CI, Conns: 16, FaultPlan: plan, Adaptive: true})
	if adaptive.Overruns == 0 {
		t.Fatal("no overruns detected under injected spikes")
	}
	if adaptive.FinalIntervalCycles <= 2500 {
		t.Errorf("interval did not back off: %d", adaptive.FinalIntervalCycles)
	}
	if max := int64(2500 * 8); adaptive.FinalIntervalCycles > max {
		t.Errorf("interval %d exceeds cap %d", adaptive.FinalIntervalCycles, max)
	}
	// With a base interval comfortably above the per-poll handler cost
	// and no spikes, an adaptive run never leaves the base.
	calm := Run(Config{Mode: CI, Conns: 1, IntervalCycles: 16000, Adaptive: true})
	if calm.FinalIntervalCycles != 16000 {
		t.Errorf("adaptive interval drifted without overruns: %d", calm.FinalIntervalCycles)
	}
}

// Regression for the crash path (satellite of the fleet resilience
// layer): when the server crashes mid-retransmit, every packet the
// crash destroys — ring contents and retransmits arriving while the
// process is down — must be accounted as crash-failed, never as wire
// loss, and the conservation identity must stay exact because the
// clients' RTO timers resolve every generation the crash orphaned.
func TestCrashConservationIdentity(t *testing.T) {
	cfg := Config{
		Mode: CI, Conns: 32,
		DurationCycles: 200_000_000, // 77 ms: several crash/restart cycles
		FaultPlan: &faults.Plan{
			Seed:               13,
			CrashMeanGapCycles: 30_000_000,
			CrashDownCycles:    13_000_000, // 5 ms = rtoBase: retransmits land mid-down
		},
		Overload: &overload.Config{DeadlineCycles: 2_600_000},
	}
	r, err := RunChecked(cfg)
	if err != nil {
		t.Fatalf("RunChecked: %v", err)
	}
	if r.Crashes == 0 {
		t.Fatal("crash plan injected no crashes")
	}
	if r.CrashFailedPkts == 0 {
		t.Fatal("crashes destroyed no packets; the wipe accounting is not exercised")
	}
	if r.Lost != 0 || r.Drops != 0 {
		t.Errorf("crash-killed packets leaked into loss accounting: lost=%d drops=%d "+
			"(they must be crash-failed, not lost)", r.Lost, r.Drops)
	}
	if r.Completed == 0 {
		t.Fatal("no completions across restarts")
	}
	if r.Retransmits == 0 {
		t.Fatal("no retransmits despite crashes mid-flight")
	}
	checkConservation(t, r)

	// Bit-identical replay, crash windows included.
	if r2 := Run(cfg); r != r2 {
		t.Errorf("crash runs differ:\n%+v\n%+v", r, r2)
	}

	// A crash-free run with the same config must not consult the crash
	// stream at all.
	calm := cfg
	calm.FaultPlan = nil
	if c := Run(calm); c.Crashes != 0 || c.CrashFailedPkts != 0 {
		t.Errorf("crash accounting nonzero without a plan: %+v", c)
	}
}
