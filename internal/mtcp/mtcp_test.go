package mtcp

import "testing"

func TestModesRunAndComplete(t *testing.T) {
	for _, m := range []Mode{Kernel, Orig, CI} {
		r := Run(Config{Mode: m, Conns: 16})
		if r.Completed == 0 {
			t.Errorf("%v: no completed requests", m)
		}
		if r.ThroughputGbps <= 0 || r.ThroughputGbps > 9.4 {
			t.Errorf("%v: throughput %v out of range", m, r.ThroughputGbps)
		}
		if r.MedianLatencyUs <= 0 {
			t.Errorf("%v: no latency recorded", m)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(Config{Mode: CI, Conns: 32})
	b := Run(Config{Mode: CI, Conns: 32})
	if a.Completed != b.Completed || a.MedianLatencyUs != b.MedianLatencyUs {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

// Figure 4 headline: CI-mTCP ≈ 2x stock mTCP throughput at saturation,
// with lower latency; kernel collapses at high connection counts.
func TestFigure4Shape(t *testing.T) {
	ci := Run(Config{Mode: CI, Conns: 64})
	orig := Run(Config{Mode: Orig, Conns: 64})
	if ci.ThroughputGbps < 1.6*orig.ThroughputGbps {
		t.Errorf("CI (%.2f) should be ~2x orig (%.2f)", ci.ThroughputGbps, orig.ThroughputGbps)
	}
	if ci.MedianLatencyUs >= orig.MedianLatencyUs {
		t.Errorf("CI latency (%.1f) should beat orig (%.1f)", ci.MedianLatencyUs, orig.MedianLatencyUs)
	}
	kLow := Run(Config{Mode: Kernel, Conns: 2})
	kHigh := Run(Config{Mode: Kernel, Conns: 128})
	if kHigh.ThroughputGbps > kLow.ThroughputGbps/2 {
		t.Errorf("kernel should collapse: low-conns %.2f vs high-conns %.2f",
			kLow.ThroughputGbps, kHigh.ThroughputGbps)
	}
	if kHigh.ThroughputGbps >= ci.ThroughputGbps {
		t.Error("kernel at high conns should be far below CI")
	}
}

// Figure 5 headline: with per-request compute, CI beats orig clearly
// and kernel tracks CI.
func TestFigure5Shape(t *testing.T) {
	const work = 1_000_000
	ci := Run(Config{Mode: CI, Conns: 16, WorkCycles: work})
	orig := Run(Config{Mode: Orig, Conns: 16, WorkCycles: work})
	kern := Run(Config{Mode: Kernel, Conns: 16, WorkCycles: work})
	if ci.ThroughputGbps < 1.5*orig.ThroughputGbps {
		t.Errorf("CI (%.3f) should clearly beat orig (%.3f) with compute work",
			ci.ThroughputGbps, orig.ThroughputGbps)
	}
	ratio := kern.ThroughputGbps / ci.ThroughputGbps
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("kernel (%.3f) should track CI (%.3f) under compute work",
			kern.ThroughputGbps, ci.ThroughputGbps)
	}
	if orig.MedianLatencyUs < ci.MedianLatencyUs {
		t.Error("orig latency should exceed CI latency under compute work")
	}
}

func TestThroughputScalesWithConns(t *testing.T) {
	lo := Run(Config{Mode: CI, Conns: 1})
	hi := Run(Config{Mode: CI, Conns: 8})
	if hi.ThroughputGbps <= lo.ThroughputGbps {
		t.Errorf("throughput must rise with connections: %.2f -> %.2f",
			lo.ThroughputGbps, hi.ThroughputGbps)
	}
}

func TestDropsTriggerRetransmits(t *testing.T) {
	r := Run(Config{Mode: Orig, Conns: 256})
	if r.Drops == 0 || r.Retransmits == 0 {
		t.Errorf("expected ring overflow at 256 conns: drops=%d retx=%d", r.Drops, r.Retransmits)
	}
}

func TestSweepCoversAllConns(t *testing.T) {
	conns := []int{1, 4, 16}
	rs := Sweep(CI, conns, 0)
	if len(rs) != len(conns) {
		t.Fatalf("sweep returned %d results", len(rs))
	}
	for i, r := range rs {
		if r.Conns != conns[i] || r.Mode != CI {
			t.Errorf("row %d = %+v", i, r)
		}
		if r.String() == "" {
			t.Error("empty row rendering")
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := Run(Config{Mode: CI})
	if r.Conns != 1 {
		t.Errorf("default conns = %d", r.Conns)
	}
}

// §5.1: "packet processing is more efficient in larger batches... the
// CI version polls the NIC periodically, based on the configured 2500
// cycle CI interval, resulting in larger batches... Longer CI intervals
// further improve efficiency" — at the cost of latency.
func TestLongerCIIntervalImprovesEfficiencyTradesLatency(t *testing.T) {
	// Use compute-bound requests so throughput is CPU-efficiency-bound
	// rather than link-bound, making the batching effect visible.
	// Efficiency: at CPU saturation, longer intervals amortize the
	// per-poll fixed costs over bigger batches.
	atLoad := func(interval int64) Result {
		return Run(Config{Mode: CI, Conns: 64, WorkCycles: 30000, IntervalCycles: interval})
	}
	short := atLoad(1000)
	long := atLoad(16000)
	if long.Completed <= short.Completed {
		t.Errorf("longer interval should complete more work: %d vs %d requests",
			long.Completed, short.Completed)
	}
	// Latency: at low load the poll delay dominates, so longer
	// intervals cost response time.
	idleShort := Run(Config{Mode: CI, Conns: 1, IntervalCycles: 1000})
	idleLong := Run(Config{Mode: CI, Conns: 1, IntervalCycles: 16000})
	if idleLong.MedianLatencyUs <= idleShort.MedianLatencyUs {
		t.Errorf("longer interval should raise low-load latency: %.1f vs %.1f µs",
			idleLong.MedianLatencyUs, idleShort.MedianLatencyUs)
	}
}
