package mtcp

import (
	"fmt"

	"repro/internal/interleave"
	"repro/internal/ir"
)

// InterleaveSpec is the IR model of the CI-mode sharing protocol that
// the interleaving verifier checks: the stack-loop handler produces
// received work into a single-producer single-consumer ring, and the
// application drains it. The full simulator is a discrete-event model,
// so the verifier runs this distilled protocol instead — the same
// word-level discipline mtcp's CI mode relies on:
//
//	HEAD    (0)  consumer cursor — main plain-writes it, but only
//	             inside ci_disable (the app's dequeue critical
//	             section); the handler reads it for occupancy.
//	TAIL    (1)  producer cursor — handler-side atomic add; main
//	             reads it under ci_disable when polling for work.
//	BACKLOG (2)  occupancy gauge — atomic adds from both sides.
//	RESULT  (3)  consumer-side accumulator (not shared).
//	ring (8..23) payload slots — handler plain-writes, main reads
//	             only under ci_disable (slots the consumer touches
//	             are outside the producer's window).
//
// Expected classes: HEAD observed, TAIL/BACKLOG atomic, slots
// protected — zero unclassified. Item k carries value 3k+1, so the
// CheckRun conservation law pins lost/duplicated items at any fire
// placement: RESULT must equal the exact sum of the HEAD items
// drained, and BACKLOG must equal TAIL-HEAD.
const interleaveIR = `
module mtcp-ci
mem 64
extern @ci_disable cost 4
extern @ci_enable cost 4

func @main(%n) {
entry:
  %ciid = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, 200
  br %c, body, exit
body:
  %w = mul %i, 17
  %w = and %w, 1023
  extcall @ci_disable(%ciid)
  %h = load _, 0
  %t = load _, 1
  %c2 = lt %h, %t
  br %c2, drain, cont
drain:
  %off = and %h, 15
  %slot = add %off, 8
  %v = load %slot, 0
  %o1 = aadd _, 3, %v
  %h1 = add %h, 1
  store _, 0, %h1
  %neg = mov -1
  %o2 = aadd _, 2, %neg
  jmp cont
cont:
  extcall @ci_enable(%ciid)
  %i = add %i, 1
  jmp head
exit:
  %z = mov 0
  ret %z
}

func @handler(%ir) {
entry:
  %h = load _, 0
  %t = load _, 1
  %occ = sub %t, %h
  %c = lt %occ, 16
  br %c, produce, done
produce:
  %off = and %t, 15
  %slot = add %off, 8
  %v = mul %t, 3
  %v = add %v, 1
  store %slot, 0, %v
  %one = mov 1
  %o1 = aadd _, 1, %one
  %o2 = aadd _, 2, %one
  jmp done
done:
  %z = mov 0
  ret %z
}
`

// InterleaveSpec returns the CI-mode sharing protocol model and the
// verifier options (conservation CheckRun included) for
// interleave.VerifyHandlers.
func InterleaveSpec() (*ir.Module, interleave.Options) {
	m := ir.MustParse(interleaveIR)
	opts := interleave.Options{
		// The ring protocol is placement-dependent by design (more
		// fires deliver more work), so equivalence is the constant
		// return plus the conservation law, not the store stream.
		RetOnly:  true,
		CheckRun: checkRing,
	}
	return m, opts
}

// checkRing is the conservation law for one run of the ring model:
// every produced item is either still queued or drained exactly once,
// and drained values sum to the closed form of 3k+1 over k < HEAD.
func checkRing(r *interleave.Run) error {
	head, tail := r.Mem[0], r.Mem[1]
	backlog, result := r.Mem[2], r.Mem[3]
	if head < 0 || tail < head {
		return fmt.Errorf("cursors out of order: head %d tail %d", head, tail)
	}
	if backlog != tail-head {
		return fmt.Errorf("backlog %d != tail-head %d", backlog, tail-head)
	}
	if want := 3*head*(head-1)/2 + head; result != want {
		return fmt.Errorf("result %d != drained sum %d (items lost or duplicated)", result, want)
	}
	return nil
}
