package overload

import "testing"

// Half-open probes are the breaker's own measurement traffic, bounded
// by HalfOpenProbes; charging them to the token bucket as well
// double-charges the plane (skewing reject fractions near the brownout
// boundary) and can starve the probe set when the bucket is empty —
// exactly when the breaker needs to learn whether the backend
// recovered. The table pins both directions: probes never consume
// tokens, normal closed-state admissions always do.
func TestHalfOpenProbeDoesNotConsumeToken(t *testing.T) {
	cases := []struct {
		name       string
		state      State
		tokens     float64
		probesLeft int64
		want       Verdict
		wantTokens float64
	}{
		{name: "closed admission charges the bucket", state: Closed,
			tokens: 2, want: Admit, wantTokens: 1},
		{name: "closed admission with empty bucket rejects", state: Closed,
			tokens: 0.5, want: RejectRate, wantTokens: 0.5},
		{name: "half-open probe leaves the bucket untouched", state: HalfOpen,
			tokens: 2, probesLeft: 4, want: Admit, wantTokens: 2},
		{name: "half-open probe admits even with an empty bucket", state: HalfOpen,
			tokens: 0, probesLeft: 4, want: Admit, wantTokens: 0},
		{name: "exhausted probe set still rejects", state: HalfOpen,
			tokens: 2, probesLeft: 0, want: RejectBreaker, wantTokens: 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(&Config{RatePerCycle: 1e-9, Burst: 8})
			c.breaker.state = tc.state
			c.breaker.probesLeft = tc.probesLeft
			c.tokens = tc.tokens
			c.lastRefill = 1000 // refill window of 0 cycles: no new tokens
			if got := c.Admit(1000, Request{Arrival: 1000}); got != tc.want {
				t.Fatalf("verdict = %v, want %v", got, tc.want)
			}
			if c.tokens != tc.wantTokens {
				t.Errorf("tokens after admission = %v, want %v", c.tokens, tc.wantTokens)
			}
		})
	}
}

// A full half-open probe cycle against an empty, never-refilling token
// bucket must close the breaker: every probe is admitted (none are
// token-charged) and the successes close the loop. Before the fix the
// first probe consumed the last fraction of a token and the rest were
// rejected as RejectRate, so the breaker could never close under
// sustained rate pressure.
func TestHalfOpenRecoveryWithEmptyBucket(t *testing.T) {
	c := New(&Config{
		RatePerCycle: 1e-12, // effectively no refill over the test horizon
		Burst:        1,
		Breaker:      BreakerConfig{HalfOpenProbes: 3, MinSamples: 1},
	})
	c.tokens = 0 // bucket already drained by prior overload
	c.breaker.state = HalfOpen
	c.breaker.probesLeft = 3
	now := int64(1_000_000)
	for i := 0; i < 3; i++ {
		if v := c.Admit(now, Request{Arrival: now}); v != Admit {
			t.Fatalf("probe %d verdict = %v, want admit", i, v)
		}
		c.Observe(now+100, 100, false)
		now += 1000
	}
	if got := c.BreakerState(); got != Closed {
		t.Fatalf("breaker state after successful probe set = %v, want closed", got)
	}
	if s := c.Snapshot(); s.RejectedRate != 0 {
		t.Errorf("probes were rate-rejected %d times; probes must bypass the bucket", s.RejectedRate)
	}
}
