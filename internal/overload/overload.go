// Package overload is the deterministic overload-control plane of the
// CI-polled server applications (mtcp, shenango, ffwd). The paper's
// headline property — frequent polling on a shared thread makes
// sub-interval control loops essentially free — is what this package
// exploits: every control decision (token refill, CoDel state, breaker
// transitions, brownout level) is actuated from the CI probe handler's
// poll, so the plane reacts within one polling interval of a load
// change without any dedicated control thread.
//
// One *Controller guards one serving app instance. It provides, in
// admission order:
//
//  1. circuit breaking — a rolling error/latency window (stats.LogHist
//     per window) trips the breaker open; after a cooldown it half-opens
//     and admits a bounded number of probe requests before closing;
//  2. deadline propagation with early rejection — every request carries
//     deadline = arrival + DeadlineCycles, and admission rejects a
//     request as doomed when the estimated queue delay already overruns
//     its deadline (cheaper to refuse now than to serve a dead answer);
//  3. CoDel-style queueing control — sustained queue delay above the
//     target enters a dropping state that sheds requests on the classic
//     inverse-sqrt schedule until the queue drains below target;
//  4. token-bucket rate admission — a hard ceiling on the admitted
//     request rate;
//  5. brownout shedding — a queue-delay-derived brownout level that the
//     apps translate into degradation actions (shenango parks the miner
//     and then sheds low-priority requests, mtcp tightens its adaptive
//     polling interval and defers retransmit-heavy connections, ffwd
//     routes saturation overflow through its MCS fallback path).
//
// Everything is deterministic: the controller consumes only the virtual
// timestamps its callers pass in and keeps no randomness, so two runs
// with equal seeds and plans produce bit-identical admission sequences.
// Like *obs.Scope, a nil *Controller is the disabled plane: every
// method is nil-receiver safe and admits everything, so call sites need
// no enabled-branches.
package overload

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Priority classifies a request for brownout shedding. Apps tag
// requests deterministically (see PriorityOf).
type Priority int

const (
	// High requests are shed only by rejection (rate/CoDel/deadline).
	High Priority = iota
	// Low requests are additionally shed at brownout ShedLowPrioLevel.
	Low
)

// PriorityOf deterministically classes the n-th request of a stream:
// every fourth request is Low, modelling the background/low-urgency
// share of a production mix without a random stream.
func PriorityOf(n int64) Priority {
	if n%4 == 3 {
		return Low
	}
	return High
}

// Verdict is one admission decision.
type Verdict int

const (
	Admit Verdict = iota
	RejectBreaker
	RejectDoomed
	RejectCoDel
	RejectRate
	ShedLowPrio
)

var verdictNames = [...]string{
	Admit: "admit", RejectBreaker: "reject-breaker", RejectDoomed: "reject-doomed",
	RejectCoDel: "reject-codel", RejectRate: "reject-rate", ShedLowPrio: "shed-lowprio",
}

// String names the verdict.
func (v Verdict) String() string { return verdictNames[v] }

// Admitted reports whether the request may be served.
func (v Verdict) Admitted() bool { return v == Admit }

// Request is one admission candidate.
type Request struct {
	// Arrival is the request's arrival timestamp; its deadline is
	// Arrival + Config.DeadlineCycles.
	Arrival int64
	// EstDelayCycles is the caller's estimate of the delay from now
	// until the request would complete service — queue wait plus
	// service. Admission rejects the request as doomed when
	// now + EstDelayCycles already overruns the deadline.
	EstDelayCycles int64
	// Prio selects brownout shedding eligibility.
	Prio Priority
}

// Config tunes one controller. The zero value of every field takes the
// documented default; a nil *Config disables the plane entirely.
type Config struct {
	// Name prefixes the obs counters/histograms ("overload" if empty).
	Name string
	// RatePerCycle is the token-bucket refill rate in requests per
	// cycle (requests/s ÷ 2.6e9). 0 disables rate admission.
	RatePerCycle float64
	// Burst is the bucket capacity in tokens (default 64).
	Burst float64
	// DeadlineCycles is the per-request deadline measured from arrival.
	// 0 disables deadline propagation and doomed rejection.
	DeadlineCycles int64
	// TargetDelayCycles is the CoDel queue-delay target (default
	// DeadlineCycles/4, or 26_000 when deadlines are off).
	TargetDelayCycles int64
	// WindowCycles is both the CoDel interval and the breaker's rolling
	// window length (default 1_300_000 ≈ 0.5 ms).
	WindowCycles int64
	// ShedLowPrioLevel is the brownout level at which Low-priority
	// requests are shed (default 2; shenango's level 1 parks the miner
	// first).
	ShedLowPrioLevel int
	// Breaker tunes the circuit breaker.
	Breaker BreakerConfig
	// OnStateChange observes breaker transitions; apps use it to snap
	// an adaptive polling interval back to base when the breaker trips
	// (see ciruntime.ResetQuantum).
	OnStateChange func(from, to State, now int64)
	// Obs receives admitted/rejected/shed counters, the queue-delay
	// histogram and breaker state spans (nil = silent).
	Obs *obs.Scope
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Name == "" {
		out.Name = "overload"
	}
	if out.Burst <= 0 {
		out.Burst = 64
	}
	if out.TargetDelayCycles <= 0 {
		if out.DeadlineCycles > 0 {
			out.TargetDelayCycles = out.DeadlineCycles / 4
		} else {
			out.TargetDelayCycles = 26_000
		}
	}
	if out.WindowCycles <= 0 {
		out.WindowCycles = 1_300_000
	}
	if out.ShedLowPrioLevel <= 0 {
		out.ShedLowPrioLevel = 2
	}
	out.Breaker = out.Breaker.withDefaults()
	return out
}

// Snapshot is the controller's cumulative accounting, embedded in the
// apps' Result structs (all value fields, so Results stay comparable
// with ==).
type Snapshot struct {
	// Admitted/Rejected/Shed partition admission outcomes; Offered is
	// their sum. Expired counts admitted requests dropped at service
	// start because their deadline had already passed; Deferred counts
	// brownout deferrals (mtcp's retransmit-heavy connections).
	Admitted, Rejected, Shed, Expired, Deferred int64
	// Per-cause rejection tallies (Rejected is their sum).
	RejectedRate, RejectedDoomed, RejectedCoDel, RejectedBreaker int64
	// Started counts admitted requests that began service; Completed
	// and Failed count Observe outcomes.
	Started, Completed, Failed int64
	// BreakerTrips counts Closed/HalfOpen → Open transitions;
	// FinalBreakerState is the state at snapshot time.
	BreakerTrips      int64
	FinalBreakerState State
	// MaxBrownout is the highest brownout level reached.
	MaxBrownout int
}

// Offered is the total number of admission decisions taken.
func (s Snapshot) Offered() int64 { return s.Admitted + s.Rejected + s.Shed }

// RejectFrac is the fraction of offered requests refused (rejected or
// shed); 0 when nothing was offered.
func (s Snapshot) RejectFrac() float64 {
	off := s.Offered()
	if off == 0 {
		return 0
	}
	return float64(s.Rejected+s.Shed) / float64(off)
}

// Controller is one app's overload-control plane. Nil is the disabled
// plane: every method no-ops and Admit admits.
type Controller struct {
	cfg Config
	sc  *obs.Scope

	snap Snapshot

	// token bucket
	tokens     float64
	lastRefill int64

	// CoDel state (the classic controller, driven from Admit's delay
	// estimates and Poll's queue-delay signal).
	firstAbove int64 // when delay first exceeded target (0 = below)
	dropping   bool
	dropNext   int64
	dropCount  int64

	// poll-period estimate (EWMA over Poll gaps), used by apps for
	// completion estimates.
	lastPoll   int64
	periodEst  int64
	havePeriod bool

	breaker breaker

	level int

	// invariant bookkeeping
	maxSlack     int64 // largest slack passed to StartOrExpire
	maxStartLate int64 // largest (start - deadline) among served requests
}

// New builds a controller, or returns the disabled nil controller when
// cfg is nil.
func New(cfg *Config) *Controller {
	if cfg == nil {
		return nil
	}
	c := &Controller{cfg: cfg.withDefaults()}
	c.sc = c.cfg.Obs
	c.tokens = c.cfg.Burst
	c.breaker.init(c.cfg.Breaker)
	return c
}

// Enabled reports whether the plane is active.
func (c *Controller) Enabled() bool { return c != nil }

// Snapshot returns the cumulative accounting.
func (c *Controller) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	s := c.snap
	s.FinalBreakerState = c.breaker.state
	return s
}

// BrownoutLevel returns the current brownout level (0 = normal).
func (c *Controller) BrownoutLevel() int {
	if c == nil {
		return 0
	}
	return c.level
}

// BreakerState returns the breaker's current state (Closed on a nil
// controller).
func (c *Controller) BreakerState() State {
	if c == nil {
		return Closed
	}
	return c.breaker.state
}

// PeriodEstCycles is the smoothed poll period (0 until two polls have
// been seen); apps add it to completion estimates for work finishing in
// a later poll.
func (c *Controller) PeriodEstCycles() int64 {
	if c == nil {
		return 0
	}
	return c.periodEst
}

// Poll is the control-loop tick, called from the CI probe handler (or
// the poll loop it hosts) once per polling interval. queueDelay is the
// instantaneous queue delay signal — the sojourn of the oldest queued
// request, or the backlog of queued work in cycles.
func (c *Controller) Poll(now, queueDelay int64) {
	if c == nil {
		return
	}
	if c.havePeriod {
		gap := now - c.lastPoll
		if c.periodEst == 0 {
			c.periodEst = gap
		} else {
			c.periodEst += (gap - c.periodEst) / 4 // EWMA, alpha 1/4
		}
	}
	c.havePeriod = true
	c.lastPoll = now

	c.sc.Observe(c.cfg.Name+"/queue_delay_cycles", queueDelay)
	c.codelSignal(now, queueDelay)
	c.breakerTick(now)
	c.brownoutTick(queueDelay)
}

// brownoutTick derives the brownout level from the queue-delay signal
// and the breaker state, with half-threshold hysteresis on the way
// down so the level does not flap across polls.
func (c *Controller) brownoutTick(queueDelay int64) {
	target := c.cfg.TargetDelayCycles
	next := c.level
	switch {
	case c.breaker.state == Open || queueDelay > 6*target:
		next = 2
	case queueDelay > 2*target || c.dropping:
		if c.level < 1 {
			next = 1
		}
	case queueDelay <= target: // hysteresis: drop only when well clear
		if c.level == 2 && queueDelay <= 3*target {
			next = 1
		}
		if queueDelay <= target {
			next = 0
		}
	}
	if next != c.level {
		c.sc.Count(c.cfg.Name+"/brownout_transitions", 1)
		c.sc.Instant("overload", c.cfg.Name+"/brownout", 0, c.lastPoll,
			obs.I("from", int64(c.level)), obs.I("to", int64(next)))
		c.level = next
	}
	if next > c.snap.MaxBrownout {
		c.snap.MaxBrownout = next
	}
}

// Admit takes one admission decision at virtual time now. Order:
// breaker, deadline (doomed), CoDel, token bucket, brownout shed. A nil
// controller admits everything.
func (c *Controller) Admit(now int64, rq Request) Verdict {
	if c == nil {
		return Admit
	}
	v := c.admit(now, rq)
	c.account(v)
	return v
}

func (c *Controller) admit(now int64, rq Request) Verdict {
	ok, probe := c.breaker.allow(c, now)
	if !ok {
		return RejectBreaker
	}
	if d := c.cfg.DeadlineCycles; d > 0 && now+rq.EstDelayCycles > rq.Arrival+d {
		return RejectDoomed
	}
	if c.codelDrop(now, rq.EstDelayCycles) {
		return RejectCoDel
	}
	// Half-open probes are the breaker's measurement traffic: they are
	// already bounded by HalfOpenProbes, so they bypass the token bucket
	// instead of double-charging it (see breaker.allow).
	if r := c.cfg.RatePerCycle; r > 0 && !probe {
		if dt := now - c.lastRefill; dt > 0 {
			c.tokens += float64(dt) * r
			if c.tokens > c.cfg.Burst {
				c.tokens = c.cfg.Burst
			}
			c.lastRefill = now
		}
		if c.tokens < 1 {
			return RejectRate
		}
		c.tokens--
	}
	if rq.Prio == Low && c.level >= c.cfg.ShedLowPrioLevel {
		return ShedLowPrio
	}
	return Admit
}

func (c *Controller) account(v Verdict) {
	switch v {
	case Admit:
		c.snap.Admitted++
	case ShedLowPrio:
		c.snap.Shed++
	default:
		c.snap.Rejected++
		switch v {
		case RejectRate:
			c.snap.RejectedRate++
		case RejectDoomed:
			c.snap.RejectedDoomed++
		case RejectCoDel:
			c.snap.RejectedCoDel++
		case RejectBreaker:
			c.snap.RejectedBreaker++
		}
	}
	c.sc.Count(c.cfg.Name+"/"+v.String(), 1)
}

// codelSignal updates the CoDel state machine from the per-poll queue
// delay: dropping mode ends as soon as the delay sinks below target.
func (c *Controller) codelSignal(now, delay int64) {
	if delay < c.cfg.TargetDelayCycles {
		c.firstAbove = 0
		if c.dropping {
			c.dropping = false
			c.sc.Count(c.cfg.Name+"/codel_exits", 1)
		}
		return
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.cfg.WindowCycles
	}
}

// codelDrop decides whether CoDel sheds this request: once the delay
// has stayed above target for a full window, requests are dropped on
// the inverse-sqrt schedule until the queue recovers.
func (c *Controller) codelDrop(now, estDelay int64) bool {
	if estDelay < c.cfg.TargetDelayCycles || c.firstAbove == 0 || now < c.firstAbove {
		return false
	}
	if !c.dropping {
		c.dropping = true
		c.dropCount = 0
		c.dropNext = now
	}
	if now < c.dropNext {
		return false
	}
	c.dropCount++
	c.dropNext = now + int64(float64(c.cfg.WindowCycles)/math.Sqrt(float64(c.dropCount)))
	return true
}

// StartOrExpire gates service start of an admitted request: serve when
// start is within deadline + slack (slack = the current poll interval,
// absorbing poll-boundary quantization), otherwise expire the request.
// This is what enforces the plane's core invariant — no admitted
// request ever begins service more than one poll interval past its
// propagated deadline; it is expired instead. Returns true to serve.
// Deadlines disabled (or a nil controller) always serve.
func (c *Controller) StartOrExpire(start, deadline, slack int64) bool {
	if c == nil {
		return true
	}
	if c.cfg.DeadlineCycles > 0 {
		if slack > c.maxSlack {
			c.maxSlack = slack
		}
		if start > deadline+slack {
			c.snap.Expired++
			c.breaker.observe(c, start, 0, true)
			c.sc.Count(c.cfg.Name+"/expired", 1)
			return false
		}
		if late := start - deadline; late > c.maxStartLate {
			c.maxStartLate = late
		}
	}
	c.snap.Started++
	return true
}

// NoteDeferred records one brownout deferral (mtcp's retransmit-heavy
// connections).
func (c *Controller) NoteDeferred() {
	if c == nil {
		return
	}
	c.snap.Deferred++
	c.sc.Count(c.cfg.Name+"/deferred", 1)
}

// Observe feeds one request outcome into the breaker's rolling window:
// its latency in cycles and whether it failed (timeout, abort, expiry).
func (c *Controller) Observe(now, latency int64, failed bool) {
	if c == nil {
		return
	}
	if failed {
		c.snap.Failed++
	} else {
		c.snap.Completed++
	}
	c.breaker.observe(c, now, latency, failed)
}

// Invariants is the sanitize-style oracle over the controller's
// accounting, checked after a run. inFlightNotStarted is the caller's
// independent count of admitted requests still queued unserved at run
// end.
func (c *Controller) Invariants(inFlightNotStarted int64) error {
	if c == nil {
		return nil
	}
	s := c.Snapshot()
	if got := s.Started + s.Expired + inFlightNotStarted; got != s.Admitted {
		return fmt.Errorf("overload: admission accounting broken: started=%d + expired=%d + inflight=%d != admitted=%d",
			s.Started, s.Expired, inFlightNotStarted, s.Admitted)
	}
	if sum := s.RejectedRate + s.RejectedDoomed + s.RejectedCoDel + s.RejectedBreaker; sum != s.Rejected {
		return fmt.Errorf("overload: rejection tallies %d do not sum to rejected=%d", sum, s.Rejected)
	}
	if c.maxStartLate > c.maxSlack {
		return fmt.Errorf("overload: deadline discipline broken: a served request started %d cycles past its deadline (max slack %d)",
			c.maxStartLate, c.maxSlack)
	}
	return nil
}

// SLO is the service-level objective the experiments and the soak
// harness assert as an invariant of an admission-enabled run.
type SLO struct {
	// P999Us bounds the tail latency of completed requests in
	// microseconds (0 = unchecked).
	P999Us float64
	// MaxRejectFrac bounds the refused fraction beyond the unavoidable
	// overload excess: at offered/capacity = m, a perfect controller
	// must refuse 1 - 1/m of requests; MaxRejectFrac is the tolerated
	// slop on top (0 = unchecked).
	MaxRejectFrac float64
}

// Check asserts the SLO against one run: its tail latency, refused
// fraction, and the unavoidable excess fraction max(0, 1 - cap/offered).
func (s SLO) Check(p999Us, rejectFrac, excessFrac float64) error {
	if excessFrac < 0 {
		excessFrac = 0
	}
	if s.P999Us > 0 && p999Us > s.P999Us {
		return fmt.Errorf("SLO: p99.9 %.1fµs exceeds bound %.1fµs", p999Us, s.P999Us)
	}
	if s.MaxRejectFrac > 0 && rejectFrac > excessFrac+s.MaxRejectFrac {
		return fmt.Errorf("SLO: reject fraction %.3f exceeds excess %.3f + tolerance %.3f",
			rejectFrac, excessFrac, s.MaxRejectFrac)
	}
	return nil
}
