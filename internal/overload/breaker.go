package overload

import (
	"repro/internal/obs"
	"repro/internal/stats"
)

// State is a circuit-breaker state.
type State int

const (
	// Closed admits normally while watching the rolling window.
	Closed State = iota
	// Open rejects everything until the cooldown elapses.
	Open
	// HalfOpen admits a bounded number of probe requests; one failure
	// reopens, a full set of successes closes.
	HalfOpen
)

var stateNames = [...]string{Closed: "closed", Open: "open", HalfOpen: "half-open"}

// String names the state.
func (s State) String() string { return stateNames[s] }

// BreakerConfig tunes the circuit breaker. Zero fields take the
// documented defaults; Disabled turns the breaker off entirely.
type BreakerConfig struct {
	Disabled bool
	// ErrFracTrip trips the breaker when a full window's failure
	// fraction exceeds it (default 0.5).
	ErrFracTrip float64
	// LatencyP99Cycles additionally trips the breaker when a window's
	// p99 latency (from the window's stats.LogHist) exceeds it
	// (0 = latency does not trip).
	LatencyP99Cycles int64
	// MinSamples is the minimum window population before the window is
	// judged at all (default 16).
	MinSamples int64
	// CooldownCycles is how long the breaker stays Open before probing
	// (default 4 × Config.WindowCycles).
	CooldownCycles int64
	// HalfOpenProbes is how many probe requests HalfOpen admits
	// (default 8).
	HalfOpenProbes int64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	out := c
	if out.ErrFracTrip <= 0 {
		out.ErrFracTrip = 0.5
	}
	if out.MinSamples <= 0 {
		out.MinSamples = 16
	}
	if out.HalfOpenProbes <= 0 {
		out.HalfOpenProbes = 8
	}
	return out
}

// breaker is the controller-internal circuit breaker: rolling
// error/latency windows judged at rotation time, Open with a cooldown,
// HalfOpen probing. All transitions happen on caller timestamps, so the
// breaker is as deterministic as the rest of the plane.
type breaker struct {
	cfg BreakerConfig

	state      State
	stateSince int64

	// current window accumulators, rotated by the controller's Poll
	// every WindowCycles.
	winStart int64
	winErr   int64
	winTotal int64
	winHist  stats.LogHist

	probesLeft   int64
	probeSuccess int64
}

func (b *breaker) init(cfg BreakerConfig) { b.cfg = cfg }

// cooldown resolves the configured or defaulted open duration.
func (b *breaker) cooldown(c *Controller) int64 {
	if b.cfg.CooldownCycles > 0 {
		return b.cfg.CooldownCycles
	}
	return 4 * c.cfg.WindowCycles
}

// transition moves the breaker, emitting the span of the state being
// left plus a transition instant, and counting trips.
func (b *breaker) transition(c *Controller, to State, now int64) {
	from := b.state
	if from == to {
		return
	}
	name := c.cfg.Name + "/breaker-" + from.String()
	c.sc.Span("overload", name, 0, b.stateSince, now)
	c.sc.Instant("overload", c.cfg.Name+"/breaker", 0, now,
		obs.S("from", from.String()), obs.S("to", to.String()))
	if to == Open {
		c.snap.BreakerTrips++
		c.sc.Count(c.cfg.Name+"/breaker_trips", 1)
	}
	b.state = to
	b.stateSince = now
	if to == HalfOpen {
		b.probesLeft = b.cfg.HalfOpenProbes
		b.probeSuccess = 0
	}
	if fn := c.cfg.OnStateChange; fn != nil {
		fn(from, to, now)
	}
}

// breakerTick runs the breaker's time-driven transitions and window
// rotation; called from Controller.Poll.
func (c *Controller) breakerTick(now int64) {
	b := &c.breaker
	if b.cfg.Disabled {
		return
	}
	if b.state == Open && now-b.stateSince >= b.cooldown(c) {
		b.transition(c, HalfOpen, now)
	}
	if b.state != Closed {
		// Only Closed judges windows; Open/HalfOpen discard the
		// accumulators so stale samples never re-trip on close.
		b.resetWindow(now)
		return
	}
	if now-b.winStart < c.cfg.WindowCycles {
		return
	}
	if b.winTotal >= b.cfg.MinSamples {
		errFrac := float64(b.winErr) / float64(b.winTotal)
		lat := b.winHist.Quantile(99)
		if errFrac > b.cfg.ErrFracTrip ||
			(b.cfg.LatencyP99Cycles > 0 && lat > b.cfg.LatencyP99Cycles) {
			b.transition(c, Open, now)
		}
	}
	b.resetWindow(now)
}

func (b *breaker) resetWindow(now int64) {
	b.winStart = now
	b.winErr = 0
	b.winTotal = 0
	b.winHist = stats.LogHist{}
}

// allow is the breaker's admission gate: Closed admits, Open rejects,
// HalfOpen admits while probe slots remain. probe reports that the
// admitted request is a half-open probe: probes are the breaker's own
// measurement traffic, so the controller must not additionally charge
// them to the token bucket (double-charging a probe both skews the
// reject fraction near the brownout boundary and can starve the probe
// set entirely when the bucket is empty — which is exactly when the
// breaker is trying to find out whether the backend recovered).
func (b *breaker) allow(c *Controller, now int64) (ok, probe bool) {
	if b.cfg.Disabled {
		return true, false
	}
	switch b.state {
	case Open:
		// Admission can arrive between polls; honor an elapsed cooldown
		// immediately so the first post-cooldown request probes.
		if now-b.stateSince >= b.cooldown(c) {
			b.transition(c, HalfOpen, now)
			return b.allow(c, now)
		}
		return false, false
	case HalfOpen:
		if b.probesLeft <= 0 {
			return false, false
		}
		b.probesLeft--
		return true, true
	default:
		return true, false
	}
}

// observe feeds one outcome into the window (Closed) or the probing
// verdict (HalfOpen).
func (b *breaker) observe(c *Controller, now, latency int64, failed bool) {
	if b.cfg.Disabled {
		return
	}
	switch b.state {
	case HalfOpen:
		if failed {
			b.transition(c, Open, now)
			return
		}
		b.probeSuccess++
		if b.probeSuccess >= b.cfg.HalfOpenProbes {
			b.transition(c, Closed, now)
		}
	case Closed:
		b.winTotal++
		if failed {
			b.winErr++
		} else {
			b.winHist.Add(latency)
		}
	}
}
