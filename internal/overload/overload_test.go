package overload

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// A nil controller is the disabled plane: everything admits, nothing
// panics, the snapshot stays zero.
func TestNilControllerIsDisabledPlane(t *testing.T) {
	var c *Controller
	if c.Enabled() {
		t.Fatal("nil controller reports enabled")
	}
	c.Poll(1000, 50_000)
	if v := c.Admit(2000, Request{Arrival: 0, EstDelayCycles: 1 << 40, Prio: Low}); v != Admit {
		t.Fatalf("nil controller verdict = %v, want admit", v)
	}
	if !c.StartOrExpire(1<<40, 0, 0) {
		t.Fatal("nil controller expired a request")
	}
	c.Observe(3000, 10, true)
	c.NoteDeferred()
	if err := c.Invariants(0); err != nil {
		t.Fatal(err)
	}
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil controller snapshot non-zero: %+v", s)
	}
	if c.BrownoutLevel() != 0 || c.BreakerState() != Closed || c.PeriodEstCycles() != 0 {
		t.Fatal("nil controller state not at rest")
	}
}

func TestTokenBucketCapsAdmittedRate(t *testing.T) {
	// 1 request per 1000 cycles, burst 4: a burst admits 4, then the
	// refill governs.
	c := New(&Config{RatePerCycle: 1.0 / 1000, Burst: 4})
	admitted := 0
	for i := 0; i < 10; i++ {
		if c.Admit(0, Request{}).Admitted() {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("burst admitted %d, want 4", admitted)
	}
	// 10k cycles later: 10 tokens accrued, capped at burst 4... the cap
	// applies to the bucket, so exactly 4 more admit.
	admitted = 0
	for i := 0; i < 10; i++ {
		if c.Admit(10_000, Request{}).Admitted() {
			admitted++
		}
	}
	if admitted != 4 {
		t.Fatalf("post-refill admitted %d, want 4 (burst cap)", admitted)
	}
	s := c.Snapshot()
	if s.RejectedRate != 12 || s.Admitted != 8 {
		t.Fatalf("snapshot %+v, want 8 admitted / 12 rate-rejected", s)
	}
}

func TestDoomedRequestsRejectedAtAdmission(t *testing.T) {
	c := New(&Config{DeadlineCycles: 100_000})
	// Estimated completion 150k past an arrival deadline of 100k: doomed.
	if v := c.Admit(50_000, Request{Arrival: 0, EstDelayCycles: 100_000}); v != RejectDoomed {
		t.Fatalf("verdict %v, want reject-doomed", v)
	}
	// Within deadline: admitted.
	if v := c.Admit(50_000, Request{Arrival: 0, EstDelayCycles: 40_000}); v != Admit {
		t.Fatalf("verdict %v, want admit", v)
	}
}

func TestCoDelEntersAndExitsDropping(t *testing.T) {
	cfg := &Config{TargetDelayCycles: 10_000, WindowCycles: 100_000}
	c := New(cfg)
	now := int64(0)
	poll := func(delay int64) {
		now += 8000
		c.Poll(now, delay)
	}
	// Below target: no drops ever.
	for i := 0; i < 20; i++ {
		poll(5000)
		if v := c.Admit(now, Request{EstDelayCycles: 5000}); v != Admit {
			t.Fatalf("dropped below target: %v", v)
		}
	}
	// Above target for more than one window: dropping starts.
	dropped := 0
	for i := 0; i < 40; i++ {
		poll(50_000)
		if v := c.Admit(now, Request{EstDelayCycles: 50_000}); v == RejectCoDel {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("CoDel never dropped under sustained over-target delay")
	}
	// Recovery: one below-target poll exits dropping.
	poll(1000)
	if v := c.Admit(now, Request{EstDelayCycles: 1000}); v != Admit {
		t.Fatalf("still dropping after recovery: %v", v)
	}
	if c.Snapshot().RejectedCoDel != int64(dropped) {
		t.Fatalf("codel tally mismatch: %d vs %d", c.Snapshot().RejectedCoDel, dropped)
	}
}

// The breaker must trip on a bad window, reject while open, half-open
// after the cooldown, and close after successful probes.
func TestBreakerLifecycle(t *testing.T) {
	var transitions []string
	cfg := &Config{
		WindowCycles: 100_000,
		Breaker:      BreakerConfig{ErrFracTrip: 0.5, MinSamples: 4, CooldownCycles: 400_000, HalfOpenProbes: 2},
		OnStateChange: func(from, to State, now int64) {
			transitions = append(transitions, from.String()+">"+to.String())
		},
	}
	c := New(cfg)
	now := int64(0)
	// A window full of failures trips it at the next rotation.
	for i := 0; i < 8; i++ {
		c.Observe(now, 1000, true)
	}
	now += 100_001
	c.Poll(now, 0)
	if c.BreakerState() != Open {
		t.Fatalf("state %v after bad window, want open", c.BreakerState())
	}
	if v := c.Admit(now, Request{}); v != RejectBreaker {
		t.Fatalf("open breaker verdict %v", v)
	}
	// Cooldown elapses: half-open, two probes pass, breaker closes.
	now += 400_001
	c.Poll(now, 0)
	if c.BreakerState() != HalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", c.BreakerState())
	}
	for i := 0; i < 2; i++ {
		if v := c.Admit(now, Request{}); v != Admit {
			t.Fatalf("half-open probe %d rejected: %v", i, v)
		}
	}
	if v := c.Admit(now, Request{}); v != RejectBreaker {
		t.Fatalf("extra half-open request admitted: %v", v)
	}
	c.Observe(now, 500, false)
	c.Observe(now, 500, false)
	if c.BreakerState() != Closed {
		t.Fatalf("state %v after successful probes, want closed", c.BreakerState())
	}
	if got := strings.Join(transitions, " "); got != "closed>open open>half-open half-open>closed" {
		t.Fatalf("transitions: %s", got)
	}
	if c.Snapshot().BreakerTrips != 1 {
		t.Fatalf("trips = %d, want 1", c.Snapshot().BreakerTrips)
	}
}

// A failed half-open probe reopens the breaker for a fresh cooldown.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	c := New(&Config{
		WindowCycles: 100_000,
		Breaker:      BreakerConfig{MinSamples: 2, CooldownCycles: 200_000},
	})
	for i := 0; i < 4; i++ {
		c.Observe(0, 1000, true)
	}
	c.Poll(100_001, 0)
	c.Poll(300_002, 0) // cooldown over: half-open
	if c.BreakerState() != HalfOpen {
		t.Fatalf("state %v, want half-open", c.BreakerState())
	}
	c.Observe(300_002, 1000, true)
	if c.BreakerState() != Open {
		t.Fatalf("state %v after failed probe, want open", c.BreakerState())
	}
	if c.Snapshot().BreakerTrips != 2 {
		t.Fatalf("trips = %d, want 2", c.Snapshot().BreakerTrips)
	}
}

func TestBrownoutLevelsAndLowPrioShedding(t *testing.T) {
	c := New(&Config{TargetDelayCycles: 10_000, ShedLowPrioLevel: 2})
	c.Poll(1000, 5000)
	if c.BrownoutLevel() != 0 {
		t.Fatalf("level %d at low delay", c.BrownoutLevel())
	}
	c.Poll(2000, 25_000) // > 2x target
	if c.BrownoutLevel() != 1 {
		t.Fatalf("level %d, want 1", c.BrownoutLevel())
	}
	// Level 1 sheds nothing yet.
	if v := c.Admit(2000, Request{Prio: Low}); v != Admit {
		t.Fatalf("low-prio shed at level 1: %v", v)
	}
	c.Poll(3000, 100_000) // > 6x target
	if c.BrownoutLevel() != 2 {
		t.Fatalf("level %d, want 2", c.BrownoutLevel())
	}
	if v := c.Admit(3000, Request{Prio: Low}); v != ShedLowPrio {
		t.Fatalf("low-prio not shed at level 2: %v", v)
	}
	if v := c.Admit(3000, Request{Prio: High}); v != Admit {
		t.Fatalf("high-prio shed: %v", v)
	}
	// Recovery steps back down with hysteresis.
	c.Poll(4000, 9000)
	c.Poll(5000, 9000)
	if c.BrownoutLevel() != 0 {
		t.Fatalf("level %d after recovery, want 0", c.BrownoutLevel())
	}
	if c.Snapshot().MaxBrownout != 2 {
		t.Fatalf("max brownout %d, want 2", c.Snapshot().MaxBrownout)
	}
}

func TestStartOrExpireEnforcesDeadlineDiscipline(t *testing.T) {
	c := New(&Config{DeadlineCycles: 50_000})
	const slack = 8000
	if v := c.Admit(0, Request{Arrival: 0, EstDelayCycles: 1000}); v != Admit {
		t.Fatal(v)
	}
	if !c.StartOrExpire(50_000+slack, 50_000, slack) {
		t.Fatal("start within slack expired")
	}
	if v := c.Admit(0, Request{Arrival: 0, EstDelayCycles: 1000}); v != Admit {
		t.Fatal(v)
	}
	if c.StartOrExpire(50_000+slack+1, 50_000, slack) {
		t.Fatal("start past deadline+slack served")
	}
	s := c.Snapshot()
	if s.Started != 1 || s.Expired != 1 {
		t.Fatalf("snapshot %+v, want 1 started / 1 expired", s)
	}
	if err := c.Invariants(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Invariants(3); err == nil {
		t.Fatal("invariants accepted bogus in-flight count")
	}
}

func TestPriorityOf(t *testing.T) {
	want := []Priority{High, High, High, Low, High, High, High, Low}
	for i, w := range want {
		if got := PriorityOf(int64(i)); got != w {
			t.Fatalf("PriorityOf(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestSLOCheck(t *testing.T) {
	slo := SLO{P999Us: 100, MaxRejectFrac: 0.05}
	if err := slo.Check(90, 0.04, 0); err != nil {
		t.Fatalf("healthy run violated SLO: %v", err)
	}
	if err := slo.Check(150, 0.01, 0); err == nil {
		t.Fatal("tail violation not caught")
	}
	if err := slo.Check(90, 0.30, 0); err == nil {
		t.Fatal("reject violation not caught")
	}
	// At 2x overload the unavoidable excess is 0.5: 52% rejects pass.
	if err := slo.Check(90, 0.52, 0.5); err != nil {
		t.Fatalf("excess-adjusted rejects flagged: %v", err)
	}
	if err := (SLO{}).Check(1e9, 1, 0); err != nil {
		t.Fatalf("zero SLO must check nothing: %v", err)
	}
}

// The whole plane is a pure function of its inputs: replaying an
// identical decision trace yields identical verdicts and snapshots.
func TestControllerDeterministic(t *testing.T) {
	run := func() ([]Verdict, Snapshot) {
		c := New(&Config{
			RatePerCycle: 1.0 / 5000, Burst: 8,
			DeadlineCycles: 80_000, TargetDelayCycles: 10_000, WindowCycles: 50_000,
			Breaker: BreakerConfig{MinSamples: 4, ErrFracTrip: 0.3},
		})
		var vs []Verdict
		now := int64(0)
		for i := 0; i < 500; i++ {
			now += 2000
			delay := int64((i % 37) * 2500)
			c.Poll(now, delay)
			v := c.Admit(now, Request{Arrival: now - delay, EstDelayCycles: delay, Prio: PriorityOf(int64(i))})
			vs = append(vs, v)
			if v.Admitted() {
				if c.StartOrExpire(now+delay/2, now-delay+80_000, 2000) {
					c.Observe(now+delay, delay+1000, i%11 == 0)
				}
			}
		}
		return vs, c.Snapshot()
	}
	v1, s1 := run()
	v2, s2 := run()
	if s1 != s2 {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d differs: %v vs %v", i, v1[i], v2[i])
		}
	}
	if s1.Offered() != 500 {
		t.Fatalf("offered %d, want 500", s1.Offered())
	}
}

// The controller emits its accounting onto the obs scope.
func TestObsCountersEmitted(t *testing.T) {
	sc := obs.New(0)
	c := New(&Config{Name: "app", RatePerCycle: 1.0 / 1000, Burst: 1, Obs: sc})
	c.Poll(1000, 2000)
	c.Admit(1000, Request{})
	c.Admit(1000, Request{})
	if got := sc.Counter("app/admit"); got != 1 {
		t.Fatalf("app/admit = %d, want 1", got)
	}
	if got := sc.Counter("app/reject-rate"); got != 1 {
		t.Fatalf("app/reject-rate = %d, want 1", got)
	}
	if h := sc.Hist("app/queue_delay_cycles"); h == nil || h.N() != 1 {
		t.Fatal("queue-delay histogram not recorded")
	}
}
