package workloads

import (
	"testing"

	"repro/internal/ci/analysis"
	"repro/internal/ci/instrument"
	"repro/internal/vm"
)

func TestAllWorkloadsBuildAndVerify(t *testing.T) {
	if len(All) != 28 {
		t.Fatalf("workload count = %d, want 28 (Table 7 rows)", len(All))
	}
	seen := map[string]bool{}
	suites := map[string]int{}
	for _, wl := range All {
		if seen[wl.Name] {
			t.Errorf("duplicate workload %q", wl.Name)
		}
		seen[wl.Name] = true
		suites[wl.Suite]++
		m := wl.Build(1)
		if err := m.Verify(); err != nil {
			t.Errorf("%s: %v", wl.Name, err)
		}
		if m.FuncByName("main") == nil || m.FuncByName("main").NumParams != 1 {
			t.Errorf("%s: main(%%tid) missing", wl.Name)
		}
	}
	if suites["splash2"] != 14 || suites["phoenix"] != 8 || suites["parsec"] != 6 {
		t.Errorf("suite sizes = %v, want splash2:14 phoenix:8 parsec:6", suites)
	}
}

func TestByName(t *testing.T) {
	if ByName("radix") == nil || ByName("radix").Suite != "splash2" {
		t.Error("ByName(radix) wrong")
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

func TestAllWorkloadsRunUninstrumented(t *testing.T) {
	for _, wl := range All {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			m := wl.Build(1)
			v := vm.New(m, nil, 1)
			v.LimitInstrs = 60_000_000
			th := v.NewThread(0)
			if _, err := th.Run("main", 0); err != nil {
				t.Fatalf("run: %v", err)
			}
			if th.Stats.Instrs < 50_000 {
				t.Errorf("only %d instructions; workload too small to measure", th.Stats.Instrs)
			}
			if th.Stats.Instrs > 40_000_000 {
				t.Errorf("%d instructions; workload too big for the harness", th.Stats.Instrs)
			}
		})
	}
}

// Instrumentation must not change any workload's result, for every
// probe design (exercises the full pipeline on all 28 programs).
func TestWorkloadSemanticsPreservedByCI(t *testing.T) {
	designs := []instrument.Design{instrument.CI, instrument.CICycles, instrument.CD, instrument.CnB}
	for _, wl := range All {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			base := wl.Build(1)
			v0 := vm.New(base, nil, 1)
			v0.LimitInstrs = 60_000_000
			th0 := v0.NewThread(0)
			want, err := th0.Run("main", 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range designs {
				m := wl.Build(1)
				if _, err := instrument.Instrument(m, instrument.Options{
					Design:   d,
					Analysis: analysis.Options{ProbeInterval: 250},
				}); err != nil {
					t.Fatalf("%v: %v", d, err)
				}
				v := vm.New(m, nil, 1)
				v.LimitInstrs = 120_000_000
				th := v.NewThread(0)
				th.RT.RegisterCI(5000, func(uint64) {})
				got, err := th.Run("main", 0)
				if err != nil {
					t.Fatalf("%v: %v", d, err)
				}
				if got != want {
					t.Errorf("%v changed result: %d, want %d", d, got, want)
				}
			}
		})
	}
}

// The CI counter must track executed IR across all workloads.
func TestCICounterFidelityAcrossWorkloads(t *testing.T) {
	for _, wl := range All {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			m := wl.Build(1)
			if _, err := instrument.Instrument(m, instrument.Options{
				Design:   instrument.CI,
				Analysis: analysis.Options{ProbeInterval: 250},
			}); err != nil {
				t.Fatal(err)
			}
			v := vm.New(m, nil, 1)
			v.LimitInstrs = 120_000_000
			th := v.NewThread(0)
			th.RT.RegisterCI(5000, func(uint64) {})
			if _, err := th.Run("main", 0); err != nil {
				t.Fatal(err)
			}
			// The counter's contract (§4) is executed IR plus the 100-IR
			// heuristic per uninstrumented external call.
			expected := th.Stats.Instrs + 100*th.Stats.ExtCalls
			ratio := float64(th.RT.InsCount()) / float64(expected)
			if ratio < 0.7 || ratio > 1.4 {
				t.Errorf("counted/expected IR ratio = %.3f, want within [0.7, 1.4]", ratio)
			}
		})
	}
}

func TestScaleGrowsWork(t *testing.T) {
	wl := ByName("histogram")
	instrs := func(scale int) int64 {
		m := wl.Build(scale)
		v := vm.New(m, nil, 1)
		v.LimitInstrs = 100_000_000
		th := v.NewThread(0)
		if _, err := th.Run("main", 0); err != nil {
			t.Fatal(err)
		}
		return th.Stats.Instrs
	}
	n1, n3 := instrs(1), instrs(3)
	if n3 < 2*n1 {
		t.Errorf("scale 3 (%d instrs) should be ~3x scale 1 (%d)", n3, n1)
	}
}

func TestThreadRegionsDisjoint(t *testing.T) {
	// Two threads run the same workload in the same VM; their regions
	// must not interfere (same per-thread results as solo runs for a
	// tid-independent workload).
	wl := ByName("matrix_multiply")
	m := wl.Build(1)
	v := vm.New(m, nil, 2)
	v.LimitInstrs = 100_000_000
	stats, err := v.RunParallel(2, "main", func(id int) []int64 { return []int64{int64(id)} }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Instrs != stats[1].Instrs {
		t.Errorf("threads executed different work: %d vs %d", stats[0].Instrs, stats[1].Instrs)
	}
}
