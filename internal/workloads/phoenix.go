package workloads

import "repro/internal/ir"

// reverseIndex: scan documents for link tokens; inner scan length is
// data dependent, with a library call per discovered link.
func reverseIndex(scale int) *ir.Module {
	w := newBench("reverse_index", 16384)
	w.M.DeclareExtern("index_insert", 120)
	b := w.B
	n := int64(2500 * scale)
	w.fill(n, 255)
	acc := b.Mov(0)
	b.ConstLoop(n, func(i ir.Reg) {
		ch := w.loadAt(i, 0)
		isLink := b.BinI(ir.OpCmpLt, ch, 10)
		w.ifThen(isLink, func() {
			// Scan the "URL" until a terminator-like byte.
			j := b.BinI(ir.OpAdd, i, 1)
			le := b.Mov(0)
			bound := b.BinI(ir.OpAdd, i, 24)
			w.whileLt(j, bound, func() {
				m := b.BinI(ir.OpAnd, j, 16383)
				c2 := w.loadAt(m, 0)
				b.BinTo(le, ir.OpAdd, le, c2)
				b.BinToI(j, ir.OpAdd, j, 1)
			})
			b.ExtCall("index_insert", le)
			b.BinTo(acc, ir.OpAdd, acc, le)
		})
	})
	return w.finish(acc)
}

// histogram: one long tight loop binning pixel values.
func histogram(scale int) *ir.Module {
	w := newBench("histogram", 32768)
	b := w.B
	n := int64(20000 * scale)
	w.fill(n, 255)
	acc := b.Mov(0)
	b.ConstLoop(n, func(i ir.Reg) {
		px := w.loadAt(i, 0)
		bucket := b.BinI(ir.OpShr, px, 2)
		slot := b.BinI(ir.OpAdd, bucket, 30000)
		cur := w.loadAt(slot, 0)
		cur1 := b.BinI(ir.OpAdd, cur, 1)
		w.storeAt(slot, 0, cur1)
		b.BinTo(acc, ir.OpAdd, acc, px)
	})
	return w.finish(acc)
}

// kmeans: iterations × points × clusters distance evaluation; the
// cluster loop is a small constant loop the analysis folds.
func kmeans(scale int) *ir.Module {
	w := newBench("kmeans", 16384)
	b := w.B
	points := int64(900 * scale)
	iters := int64(6)
	w.fill(points, 1023)
	acc := b.Mov(0)
	b.ConstLoop(iters, func(ir.Reg) {
		b.ConstLoop(points, func(p ir.Reg) {
			x := w.loadAt(p, 0)
			best := b.Mov(1 << 30)
			b.ConstLoop(8, func(k ir.Reg) {
				ck := b.BinI(ir.OpMul, k, 128)
				d := b.Bin(ir.OpSub, x, ck)
				d2 := b.Bin(ir.OpMul, d, d)
				b.BinTo(best, ir.OpMin, best, d2)
			})
			b.BinTo(acc, ir.OpAdd, acc, best)
		})
	})
	return w.finish(acc)
}

// pca: column means plus a triangular covariance accumulation.
func pca(scale int) *ir.Module {
	w := newBench("pca", 16384)
	b := w.B
	dim := int64(26 * scale)
	if dim > 60 {
		dim = 60
	}
	rows := int64(120)
	w.fill(dim*rows, 1023)
	acc := b.Mov(0)
	// Means.
	b.ConstLoop(dim, func(d ir.Reg) {
		sum := b.Mov(0)
		b.ConstLoop(rows, func(r ir.Reg) {
			idx := b.BinI(ir.OpMul, r, dim)
			idx2 := b.Bin(ir.OpAdd, idx, d)
			m := b.BinI(ir.OpAnd, idx2, 16383)
			v := w.loadAt(m, 0)
			b.BinTo(sum, ir.OpAdd, sum, v)
		})
		b.BinTo(acc, ir.OpAdd, acc, sum)
	})
	// Triangular covariance.
	dReg := b.Mov(dim)
	zero := b.Mov(0)
	b.CountedLoop(zero, dReg, 1, func(d1 ir.Reg) {
		d2 := b.MovR(d1)
		w.whileLt(d2, dReg, func() {
			cov := b.Mov(0)
			b.ConstLoop(rows, func(r ir.Reg) {
				idx := b.BinI(ir.OpMul, r, dim)
				i1 := b.Bin(ir.OpAdd, idx, d1)
				i2 := b.Bin(ir.OpAdd, idx, d2)
				m1 := b.BinI(ir.OpAnd, i1, 16383)
				m2 := b.BinI(ir.OpAnd, i2, 16383)
				v1 := w.loadAt(m1, 0)
				v2 := w.loadAt(m2, 0)
				pr := b.Bin(ir.OpMul, v1, v2)
				b.BinTo(cov, ir.OpAdd, cov, pr)
			})
			b.BinTo(acc, ir.OpXor, acc, cov)
			b.BinToI(d2, ir.OpAdd, d2, 1)
		})
	})
	return w.finish(acc)
}

// matrixMultiply: the classic triple loop with compile-time bounds.
func matrixMultiply(scale int) *ir.Module {
	w := newBench("matrix_multiply", 16384)
	b := w.B
	n := int64(44 * scale)
	if n > 70 {
		n = 70
	}
	w.fill(2*n*n, 1023)
	acc := b.Mov(0)
	b.ConstLoop(n, func(i ir.Reg) {
		b.ConstLoop(n, func(j ir.Reg) {
			sum := b.Mov(0)
			b.ConstLoop(n, func(k ir.Reg) {
				ri := b.BinI(ir.OpMul, i, n)
				ai := b.Bin(ir.OpAdd, ri, k)
				rk := b.BinI(ir.OpMul, k, n)
				bi := b.Bin(ir.OpAdd, rk, j)
				am := b.BinI(ir.OpAnd, ai, 16383)
				bm := b.BinI(ir.OpAnd, bi, 16383)
				av := w.loadAt(am, 0)
				bv := w.loadAt(bm, 0)
				p := b.Bin(ir.OpMul, av, bv)
				b.BinTo(sum, ir.OpAdd, sum, p)
			})
			b.BinTo(acc, ir.OpAdd, acc, sum)
		})
	})
	return w.finish(acc)
}

// stringMatch: many short comparisons whose length is only known at
// run time — the cloning (§3.5) showcase.
func stringMatch(scale int) *ir.Module {
	w := newBench("string_match", 16384)
	b := w.B
	n := int64(2000 * scale)
	w.fill(8192, 255)
	acc := b.Mov(0)
	b.ConstLoop(n, func(i ir.Reg) {
		// Key length 4..19, data dependent.
		h := b.BinI(ir.OpMul, i, 31)
		klen := b.BinI(ir.OpAnd, h, 15)
		klen4 := b.BinI(ir.OpAdd, klen, 4)
		j := b.Mov(0)
		matched := b.Mov(0)
		b.CountedLoop(j, klen4, 1, func(k ir.Reg) {
			ik := b.Bin(ir.OpAdd, i, k)
			m := b.BinI(ir.OpAnd, ik, 8191)
			c1 := w.loadAt(m, 0)
			c2 := b.BinI(ir.OpXor, c1, 85)
			b.BinTo(matched, ir.OpAdd, matched, c2)
		})
		b.BinTo(acc, ir.OpAdd, acc, matched)
	})
	return w.finish(acc)
}

// linearRegression: one tight accumulation loop over the sample array.
func linearRegression(scale int) *ir.Module {
	w := newBench("linear_regression", 32768)
	b := w.B
	n := int64(15000 * scale)
	w.fill(n, 4095)
	sx := b.Mov(0)
	sy := b.Mov(0)
	sxx := b.Mov(0)
	sxy := b.Mov(0)
	b.ConstLoop(n, func(i ir.Reg) {
		x := w.loadAt(i, 0)
		y := b.BinI(ir.OpAdd, x, 13)
		b.BinTo(sx, ir.OpAdd, sx, x)
		b.BinTo(sy, ir.OpAdd, sy, y)
		xx := b.Bin(ir.OpMul, x, x)
		b.BinTo(sxx, ir.OpAdd, sxx, xx)
		xy := b.Bin(ir.OpMul, x, y)
		b.BinTo(sxy, ir.OpAdd, sxy, xy)
	})
	r := b.Bin(ir.OpAdd, sx, sy)
	r2 := b.Bin(ir.OpXor, sxx, sxy)
	out := b.Bin(ir.OpAdd, r, r2)
	return w.finish(out)
}

// wordCount: branchy tokenizer state machine with a hash-table library
// call per word.
func wordCount(scale int) *ir.Module {
	w := newBench("word_count", 16384)
	w.M.DeclareExtern("hash_insert", 90)
	b := w.B
	n := int64(4000 * scale)
	w.fill(n, 127)
	acc := b.Mov(0)
	inWord := b.Mov(0)
	b.ConstLoop(n, func(i ir.Reg) {
		ch := w.loadAt(i, 0)
		isAlpha := b.BinI(ir.OpCmpGt, ch, 32)
		w.ifElse(isAlpha, func() {
			b.BinToI(inWord, ir.OpAdd, inWord, 1)
			v := b.BinI(ir.OpMul, ch, 31)
			b.BinTo(acc, ir.OpAdd, acc, v)
		}, func() {
			ended := b.BinI(ir.OpCmpGt, inWord, 0)
			w.ifThen(ended, func() {
				b.ExtCall("hash_insert", acc)
				b.Assign(inWord, 0)
			})
		})
	})
	return w.finish(acc)
}
