package workloads

import "repro/internal/ir"

// blackscholes: straight-line pricing math per option with two
// uninstrumented math-library calls each.
func blackscholes(scale int) *ir.Module {
	w := newBench("blackscholes", 16384)
	w.M.DeclareExtern("exp", 55)
	w.M.DeclareExtern("log", 50)
	b := w.B
	n := int64(6000 * scale)
	w.fill(n, 2047)
	acc := b.Mov(0)
	b.ConstLoop(n, func(i ir.Reg) {
		s := w.loadAt(i, 0)
		k := b.BinI(ir.OpAdd, s, 100)
		// Inline CNDF polynomial approximation (the hot path); the
		// library call happens only for the rare deep-in-the-money
		// branch below.
		t1 := b.BinI(ir.OpMul, s, 3)
		t2 := b.Bin(ir.OpSub, t1, k)
		t3 := b.BinI(ir.OpShr, t2, 2)
		t4 := b.Bin(ir.OpMul, t3, t3)
		p0 := b.BinI(ir.OpMul, t4, 7)
		p1 := b.BinI(ir.OpAdd, p0, 1330)
		p2 := b.Bin(ir.OpMul, p1, t3)
		p3 := b.BinI(ir.OpShr, p2, 5)
		p4 := b.BinI(ir.OpAdd, p3, 89)
		p5 := b.Bin(ir.OpMul, p4, t4)
		p6 := b.BinI(ir.OpShr, p5, 7)
		q0 := b.BinI(ir.OpMul, p6, 3)
		q1 := b.Bin(ir.OpAdd, q0, t4)
		q2 := b.BinI(ir.OpShr, q1, 2)
		rare := b.BinI(ir.OpAnd, q2, 63)
		isRare := b.BinI(ir.OpCmpEq, rare, 0)
		w.ifThen(isRare, func() {
			b.ExtCall("log", s)
			b.ExtCall("exp", q2)
		})
		d1 := b.BinI(ir.OpAdd, q2, 7)
		d2 := b.BinI(ir.OpMul, d1, 5)
		d3 := b.BinI(ir.OpShr, d2, 3)
		price := b.Bin(ir.OpSub, d3, t3)
		b.BinTo(acc, ir.OpAdd, acc, price)
	})
	return w.finish(acc)
}

// fluidanimate: grid cells with a fixed neighbor stencil and a
// distance cutoff branch per pair.
func fluidanimate(scale int) *ir.Module {
	w := newBench("fluidanimate", 16384)
	b := w.B
	cells := int64(900 * scale)
	w.fill(8192, 1023)
	acc := b.Mov(0)
	b.ConstLoop(cells, func(c ir.Reg) {
		b.ConstLoop(9, func(nb ir.Reg) {
			cn := b.Bin(ir.OpAdd, c, nb)
			m := b.BinI(ir.OpAnd, cn, 8191)
			p := w.loadAt(m, 0)
			q := w.loadAt(m, 1)
			d := b.Bin(ir.OpSub, p, q)
			d2 := b.Bin(ir.OpMul, d, d)
			near := b.BinI(ir.OpCmpLt, d2, 2000)
			w.ifElse(near, func() {
				f1 := b.BinI(ir.OpMul, d2, 3)
				f2 := b.BinI(ir.OpShr, f1, 4)
				b.BinTo(acc, ir.OpAdd, acc, f2)
			}, func() {
				b.BinToI(acc, ir.OpAdd, acc, 1)
			})
		})
	})
	return w.finish(acc)
}

// swaptions: Monte-Carlo style simulation — deep nesting of short
// loops with an inline xorshift generator.
func swaptions(scale int) *ir.Module {
	w := newBench("swaptions", 8192)
	b := w.B
	sims := int64(160 * scale)
	acc := b.Mov(0)
	seed := b.BinI(ir.OpAdd, w.Tid, 88172645463325252)
	b.ConstLoop(sims, func(s ir.Reg) {
		b.ConstLoop(20, func(step ir.Reg) {
			// xorshift update.
			x1 := b.BinI(ir.OpShl, seed, 13)
			b.BinTo(seed, ir.OpXor, seed, x1)
			x2 := b.BinI(ir.OpShr, seed, 7)
			b.BinTo(seed, ir.OpXor, seed, x2)
			x3 := b.BinI(ir.OpShl, seed, 17)
			b.BinTo(seed, ir.OpXor, seed, x3)
			// Short data-dependent inner discount loop (1..8 terms).
			terms := b.BinI(ir.OpAnd, seed, 7)
			terms1 := b.BinI(ir.OpAdd, terms, 1)
			j := b.Mov(0)
			b.CountedLoop(j, terms1, 1, func(k ir.Reg) {
				v := b.Bin(ir.OpAdd, seed, k)
				v2 := b.BinI(ir.OpShr, v, 5)
				b.BinTo(acc, ir.OpAdd, acc, v2)
			})
		})
	})
	return w.finish(acc)
}

// canneal: pointer chasing over a shuffled next-index array — long
// data-dependent chains with poor locality.
func canneal(scale int) *ir.Module {
	w := newBench("canneal", 32768)
	b := w.B
	n := int64(8192)
	hops := int64(9000 * scale)
	// next[i] = (i*5741 + 1) & (n-1): a full-cycle permutation walk.
	b.ConstLoop(n, func(i ir.Reg) {
		nx := b.BinI(ir.OpMul, i, 5741)
		nx1 := b.BinI(ir.OpAdd, nx, 1)
		nx2 := b.BinI(ir.OpAnd, nx1, n-1)
		addr := b.Bin(ir.OpAdd, w.Base, i)
		b.Store(addr, 0, nx2)
	})
	acc := b.Mov(0)
	cur := b.MovR(w.Tid)
	b.ConstLoop(hops, func(ir.Reg) {
		m := b.BinI(ir.OpAnd, cur, n-1)
		nxt := w.loadAt(m, 0)
		cost := b.Bin(ir.OpSub, nxt, cur)
		gain := b.BinI(ir.OpCmpGt, cost, 0)
		w.ifThen(gain, func() {
			b.BinTo(acc, ir.OpAdd, acc, cost)
		})
		b.AssignR(cur, nxt)
	})
	return w.finish(acc)
}

// streamcluster: points × centers with a fixed-dimension inner
// distance loop.
func streamcluster(scale int) *ir.Module {
	w := newBench("streamcluster", 16384)
	b := w.B
	points := int64(420 * scale)
	centers := int64(12)
	dim := int64(8)
	w.fill(8192, 1023)
	acc := b.Mov(0)
	b.ConstLoop(points, func(p ir.Reg) {
		best := b.Mov(1 << 30)
		b.ConstLoop(centers, func(c ir.Reg) {
			dist := b.Mov(0)
			b.ConstLoop(dim, func(d ir.Reg) {
				pi := b.BinI(ir.OpMul, p, dim)
				pid := b.Bin(ir.OpAdd, pi, d)
				pm := b.BinI(ir.OpAnd, pid, 8191)
				ci := b.BinI(ir.OpMul, c, dim)
				cid := b.Bin(ir.OpAdd, ci, d)
				cm := b.BinI(ir.OpAnd, cid, 8191)
				pv := w.loadAt(pm, 0)
				cv := w.loadAt(cm, 0)
				df := b.Bin(ir.OpSub, pv, cv)
				df2 := b.Bin(ir.OpMul, df, df)
				b.BinTo(dist, ir.OpAdd, dist, df2)
			})
			b.BinTo(best, ir.OpMin, best, dist)
		})
		b.BinTo(acc, ir.OpAdd, acc, best)
	})
	return w.finish(acc)
}

// dedup: content-defined chunking — a rolling hash with data-dependent
// chunk boundaries, then a compression library call per chunk.
func dedup(scale int) *ir.Module {
	w := newBench("dedup", 32768)
	w.M.DeclareExtern("compress", 260)
	b := w.B
	n := int64(9000 * scale)
	w.fill(n, 255)
	acc := b.Mov(0)
	hash := b.Mov(0)
	chunk := b.Mov(0)
	b.ConstLoop(n, func(i ir.Reg) {
		c := w.loadAt(i, 0)
		h1 := b.BinI(ir.OpMul, hash, 33)
		h2 := b.Bin(ir.OpAdd, h1, c)
		b.BinToI(hash, ir.OpAnd, h2, 65535)
		b.BinToI(chunk, ir.OpAdd, chunk, 1)
		low := b.BinI(ir.OpAnd, hash, 127)
		boundary := b.BinI(ir.OpCmpEq, low, 0)
		w.ifThen(boundary, func() {
			b.ExtCall("compress", chunk)
			b.BinTo(acc, ir.OpAdd, acc, chunk)
			b.Assign(chunk, 0)
		})
	})
	return w.finish(acc)
}
