package workloads

import "repro/internal/ir"

// waterNsquared: O(n²) pairwise interactions with a math-library call
// (sqrt) in the inner loop — frequent uninstrumented gaps.
func waterNsquared(scale int) *ir.Module {
	w := newBench("water-nsquared", 4096)
	w.M.DeclareExtern("sqrt", 40)
	b := w.B
	n := int64(96 * scale)
	w.fill(n*3, 1023)
	acc := b.Mov(0)
	zero := b.Mov(0)
	nReg := b.Mov(n)
	b.CountedLoop(zero, nReg, 1, func(i ir.Reg) {
		// Per-molecule library call (the O(n²) pair loop itself uses
		// inlined math, as the original does after compiling the inner
		// kernels with CIs).
		mi := w.loadAt(i, 0)
		b.ExtCall("sqrt", mi)
		j := b.BinI(ir.OpAdd, i, 1)
		w.whileLt(j, nReg, func() {
			xi := w.loadAt(i, 0)
			xj := w.loadAt(j, 0)
			d := b.Bin(ir.OpSub, xi, xj)
			d2 := b.Bin(ir.OpMul, d, d)
			// Inline Newton step standing in for 1/sqrt.
			g0 := b.BinI(ir.OpShr, d2, 1)
			g1 := b.BinI(ir.OpAdd, g0, 1)
			g2 := b.BinI(ir.OpDiv, d2, 3)
			inv := b.Bin(ir.OpAdd, g1, g2)
			f := b.BinI(ir.OpDiv, inv, 3)
			b.BinTo(acc, ir.OpAdd, acc, f)
			b.BinToI(j, ir.OpAdd, j, 1)
		})
	})
	return w.finish(acc)
}

// waterSpatial: small fixed-trip-count grid-cell loops (mostly folded
// by the analysis) over a 3D cell decomposition.
func waterSpatial(scale int) *ir.Module {
	w := newBench("water-spatial", 8192)
	b := w.B
	cells := int64(6)
	perCell := int64(8)
	steps := int64(40 * scale)
	w.fill(cells*cells*cells*perCell, 255)
	acc := b.Mov(0)
	b.ConstLoop(steps, func(ir.Reg) {
		b.ConstLoop(cells, func(cx ir.Reg) {
			b.ConstLoop(cells, func(cy ir.Reg) {
				b.ConstLoop(cells, func(cz ir.Reg) {
					cyz := b.Bin(ir.OpAdd, cy, cz)
					cell := b.Bin(ir.OpAdd, cx, cyz)
					b.ConstLoop(perCell, func(p ir.Reg) {
						idx := b.BinI(ir.OpMul, cell, 8)
						idx2 := b.Bin(ir.OpAdd, idx, p)
						masked := b.BinI(ir.OpAnd, idx2, 4095)
						v := w.loadAt(masked, 0)
						v2 := b.BinI(ir.OpMul, v, 3)
						v3 := b.BinI(ir.OpShr, v2, 1)
						b.BinTo(acc, ir.OpAdd, acc, v3)
					})
				})
			})
		})
	})
	return w.finish(acc)
}

// oceanCP: 2D red-black stencil sweeps with compile-time grid bounds —
// big constant-trip loops the transform chunked.
func oceanCP(scale int) *ir.Module {
	w := newBench("ocean-cp", 16384)
	b := w.B
	g := int64(110)
	sweeps := int64(8 * scale)
	w.fill(g*g, 8191)
	acc := b.Mov(0)
	b.ConstLoop(sweeps, func(ir.Reg) {
		b.ConstLoop(g-2, func(i0 ir.Reg) {
			i := b.BinI(ir.OpAdd, i0, 1)
			b.ConstLoop(g-2, func(j0 ir.Reg) {
				j := b.BinI(ir.OpAdd, j0, 1)
				row := b.BinI(ir.OpMul, i, g)
				idx := b.Bin(ir.OpAdd, row, j)
				up := w.loadAt(idx, -g)
				down := w.loadAt(idx, g)
				left := w.loadAt(idx, -1)
				right := w.loadAt(idx, 1)
				s1 := b.Bin(ir.OpAdd, up, down)
				s2 := b.Bin(ir.OpAdd, left, right)
				s := b.Bin(ir.OpAdd, s1, s2)
				avg := b.BinI(ir.OpShr, s, 2)
				w.storeAt(idx, 0, avg)
				b.BinTo(acc, ir.OpAdd, acc, avg)
			})
		})
	})
	return w.finish(acc)
}

// oceanNCP: the non-contiguous variant — column-major walks plus a
// data-dependent convergence loop (unknown trip count).
func oceanNCP(scale int) *ir.Module {
	w := newBench("ocean-ncp", 16384)
	b := w.B
	g := int64(96)
	w.fill(g*g, 8191)
	acc := b.Mov(0)
	iter := b.Mov(0)
	bound := b.Mov(int64(10 * scale))
	w.whileLt(iter, bound, func() {
		b.ConstLoop(g-2, func(j0 ir.Reg) {
			j := b.BinI(ir.OpAdd, j0, 1)
			b.ConstLoop(g-2, func(i0 ir.Reg) {
				i := b.BinI(ir.OpAdd, i0, 1)
				row := b.BinI(ir.OpMul, i, g)
				idx := b.Bin(ir.OpAdd, row, j)
				v := w.loadAt(idx, 0)
				nb := w.loadAt(idx, -g)
				d := b.Bin(ir.OpSub, v, nb)
				d2 := b.BinI(ir.OpShr, d, 1)
				w.storeAt(idx, 0, d2)
				b.BinTo(acc, ir.OpAdd, acc, d2)
			})
		})
		b.BinToI(iter, ir.OpAdd, iter, 1)
	})
	return w.finish(acc)
}

// barnes: recursive oct-tree descent (recursion defeats function-cost
// analysis) plus a per-body force loop.
func barnes(scale int) *ir.Module {
	w := newBench("barnes", 8192)
	b := w.B
	// walk(node, depth): recursive tree visit over the region.
	walk := w.M.NewFunc("walk", 3) // (base, node, depth)
	wb := ir.NewBuilder(walk)
	{
		base, node, depth := ir.Reg(0), ir.Reg(1), ir.Reg(2)
		done := wb.Block("done")
		rec := wb.Block("rec")
		c := wb.BinI(ir.OpCmpLe, depth, 0)
		wb.Br(c, done, rec)
		wb.SetBlock(done)
		wb.Ret(node)
		wb.SetBlock(rec)
		masked := wb.BinI(ir.OpAnd, node, 4095)
		addr := wb.Bin(ir.OpAdd, base, masked)
		v := wb.Load(addr, 0)
		odd := wb.BinI(ir.OpAnd, v, 1)
		d1 := wb.BinI(ir.OpSub, depth, 1)
		left := wb.BinI(ir.OpMul, node, 2)
		l := wb.Call("walk", base, left, d1)
		sum := wb.MovR(l)
		thenB := wb.Block("both")
		join := wb.Block("join")
		wb.Br(odd, thenB, join)
		wb.SetBlock(thenB)
		rightN := wb.BinI(ir.OpAdd, left, 1)
		r := wb.Call("walk", base, rightN, d1)
		wb.BinTo(sum, ir.OpAdd, sum, r)
		wb.Jmp(join)
		wb.SetBlock(join)
		wb.Ret(sum)
	}
	walk.Reindex()

	nBodies := int64(220 * scale)
	w.fill(4096, 2047)
	acc := b.Mov(0)
	b.ConstLoop(nBodies, func(i ir.Reg) {
		t := b.Call("walk", w.Base, i, b.Mov(9))
		// Short force-update loop per body.
		b.ConstLoop(12, func(k ir.Reg) {
			ik := b.Bin(ir.OpAdd, i, k)
			m := b.BinI(ir.OpAnd, ik, 4095)
			v := w.loadAt(m, 0)
			b.BinTo(acc, ir.OpAdd, acc, v)
		})
		b.BinTo(acc, ir.OpXor, acc, t)
	})
	return w.finish(acc)
}

// volrend: several unnested loops (the paper's Init_Opacity example)
// plus a data-dependent raycast with early exit.
func volrend(scale int) *ir.Module {
	w := newBench("volrend", 8192)
	b := w.B
	w.fill(4096, 255)
	acc := b.Mov(0)
	// Five unnested fixed loops, as in Init_Opacity.
	for k := 0; k < 5; k++ {
		b.ConstLoop(128, func(i ir.Reg) {
			v := b.BinI(ir.OpMul, i, int64(3+k))
			v2 := b.BinI(ir.OpAnd, v, 4095)
			u := w.loadAt(v2, 0)
			b.BinTo(acc, ir.OpAdd, acc, u)
		})
	}
	// Raycast: march until opacity saturates (data dependent).
	rays := int64(700 * scale)
	b.ConstLoop(rays, func(r ir.Reg) {
		pos := b.MovR(r)
		opacity := b.Mov(0)
		lim := b.Mov(255)
		w.whileLt(opacity, lim, func() {
			m := b.BinI(ir.OpAnd, pos, 4095)
			sample := w.loadAt(m, 0)
			contrib := b.BinI(ir.OpShr, sample, 3)
			contrib1 := b.BinI(ir.OpAdd, contrib, 7)
			b.BinTo(opacity, ir.OpAdd, opacity, contrib1)
			b.BinToI(pos, ir.OpAdd, pos, 17)
		})
		b.BinTo(acc, ir.OpAdd, acc, opacity)
	})
	return w.finish(acc)
}

// fmm: recursion over the interaction tree plus small constant
// multipole loops.
func fmm(scale int) *ir.Module {
	w := newBench("fmm", 8192)
	b := w.B
	interact := w.M.NewFunc("interact", 3) // (base, cell, depth)
	ib := ir.NewBuilder(interact)
	{
		base, cell, depth := ir.Reg(0), ir.Reg(1), ir.Reg(2)
		leaf := ib.Block("leaf")
		rec := ib.Block("rec")
		c := ib.BinI(ir.OpCmpLe, depth, 0)
		ib.Br(c, leaf, rec)
		ib.SetBlock(leaf)
		// Multipole evaluation: small fixed loop.
		sum := ib.Mov(0)
		ib.ConstLoop(6, func(k ir.Reg) {
			ck := ib.Bin(ir.OpAdd, cell, k)
			m := ib.BinI(ir.OpAnd, ck, 4095)
			a := ib.Bin(ir.OpAdd, base, m)
			v := ib.Load(a, 0)
			ib.BinTo(sum, ir.OpAdd, sum, v)
		})
		ib.Ret(sum)
		ib.SetBlock(rec)
		d1 := ib.BinI(ir.OpSub, depth, 1)
		c0 := ib.BinI(ir.OpMul, cell, 2)
		r0 := ib.Call("interact", base, c0, d1)
		c1 := ib.BinI(ir.OpAdd, c0, 1)
		r1 := ib.Call("interact", base, c1, d1)
		s := ib.Bin(ir.OpAdd, r0, r1)
		ib.Ret(s)
	}
	interact.Reindex()
	w.fill(4096, 511)
	acc := b.Mov(0)
	b.ConstLoop(int64(60*scale), func(i ir.Reg) {
		v := b.Call("interact", w.Base, i, b.Mov(7))
		b.BinTo(acc, ir.OpAdd, acc, v)
	})
	return w.finish(acc)
}

// raytrace: recursive bounces with branch-heavy shading.
func raytrace(scale int) *ir.Module {
	w := newBench("raytrace", 8192)
	b := w.B
	trace := w.M.NewFunc("trace", 3) // (base, ray, ttl)
	tb := ir.NewBuilder(trace)
	{
		base, ray, ttl := ir.Reg(0), ir.Reg(1), ir.Reg(2)
		miss := tb.Block("miss")
		hit := tb.Block("hit")
		c := tb.BinI(ir.OpCmpLe, ttl, 0)
		tb.Br(c, miss, hit)
		tb.SetBlock(miss)
		tb.Ret(ray)
		tb.SetBlock(hit)
		m := tb.BinI(ir.OpAnd, ray, 4095)
		a := tb.Bin(ir.OpAdd, base, m)
		obj := tb.Load(a, 0)
		refl := tb.BinI(ir.OpAnd, obj, 3)
		spec := tb.Block("spec")
		diff := tb.Block("diff")
		join := tb.Block("tjoin")
		out := tb.MovR(obj)
		cc := tb.BinI(ir.OpCmpEq, refl, 0)
		tb.Br(cc, spec, diff)
		tb.SetBlock(spec)
		nr := tb.BinI(ir.OpMul, ray, 3)
		nr2 := tb.BinI(ir.OpAdd, nr, 1)
		t1 := tb.BinI(ir.OpSub, ttl, 1)
		rv := tb.Call("trace", base, nr2, t1)
		tb.BinTo(out, ir.OpAdd, out, rv)
		tb.Jmp(join)
		tb.SetBlock(diff)
		sh := tb.BinI(ir.OpMul, obj, 7)
		sh2 := tb.BinI(ir.OpShr, sh, 2)
		tb.BinTo(out, ir.OpAdd, out, sh2)
		tb.Jmp(join)
		tb.SetBlock(join)
		tb.Ret(out)
	}
	trace.Reindex()
	w.fill(4096, 1023)
	acc := b.Mov(0)
	b.ConstLoop(int64(1500*scale), func(p ir.Reg) {
		v := b.Call("trace", w.Base, p, b.Mov(6))
		b.BinTo(acc, ir.OpXor, acc, v)
	})
	return w.finish(acc)
}

// radiosity: irregular iteration — the refinement loop's bound is
// re-loaded from memory every pass, defeating the loop transform.
func radiosity(scale int) *ir.Module {
	w := newBench("radiosity", 8192)
	b := w.B
	w.fill(4096, 511)
	// Seed the work counter.
	wc := b.Mov(int64(900 * scale))
	w.storeAt(b.Mov(4000), 0, wc)
	acc := b.Mov(0)
	i := b.Mov(0)
	// while i < mem[4000]: bound reloaded each iteration.
	head := b.Block("r.head")
	body := b.Block("r.body")
	exit := b.Block("r.exit")
	b.Jmp(head)
	b.SetBlock(head)
	bound := w.loadAt(b.Mov(4000), 0)
	c := b.Bin(ir.OpCmpLt, i, bound)
	b.Br(c, body, exit)
	b.SetBlock(body)
	// Interaction with visible-set branching.
	m := b.BinI(ir.OpAnd, i, 4095)
	e := w.loadAt(m, 0)
	vis := b.BinI(ir.OpAnd, e, 7)
	cv := b.BinI(ir.OpCmpLt, vis, 3)
	w.ifElse(cv, func() {
		b.ConstLoop(9, func(k ir.Reg) {
			ik := b.Bin(ir.OpAdd, i, k)
			mk := b.BinI(ir.OpAnd, ik, 4095)
			v := w.loadAt(mk, 0)
			b.BinTo(acc, ir.OpAdd, acc, v)
		})
	}, func() {
		v2 := b.BinI(ir.OpMul, e, 5)
		v3 := b.BinI(ir.OpShr, v2, 1)
		b.BinTo(acc, ir.OpAdd, acc, v3)
	})
	b.BinToI(i, ir.OpAdd, i, 1)
	b.Jmp(head)
	b.SetBlock(exit)
	return w.finish(acc)
}

// radix: counting-sort passes over a large key array — long tight
// constant-trip loops, the transform's best case.
func radix(scale int) *ir.Module {
	w := newBench("radix", 32768)
	b := w.B
	n := int64(6000 * scale)
	w.fill(n, 65535)
	acc := b.Mov(0)
	for pass := 0; pass < 4; pass++ {
		shift := int64(pass * 4)
		// Clear the 16 buckets at region offset 30000.
		b.ConstLoop(16, func(k ir.Reg) {
			kk := b.BinI(ir.OpAdd, k, 30000)
			z := b.Mov(0)
			w.storeAt(kk, 0, z)
		})
		// Count digits.
		b.ConstLoop(n, func(i ir.Reg) {
			key := w.loadAt(i, 0)
			d := b.BinI(ir.OpShr, key, shift)
			d2 := b.BinI(ir.OpAnd, d, 15)
			d3 := b.BinI(ir.OpAdd, d2, 30000)
			cur := w.loadAt(d3, 0)
			cur1 := b.BinI(ir.OpAdd, cur, 1)
			w.storeAt(d3, 0, cur1)
		})
		// Prefix sums of 16 buckets.
		b.ConstLoop(15, func(k ir.Reg) {
			k0 := b.BinI(ir.OpAdd, k, 30000)
			a0 := w.loadAt(k0, 0)
			a1 := w.loadAt(k0, 1)
			s := b.Bin(ir.OpAdd, a0, a1)
			w.storeAt(k0, 1, s)
			b.BinTo(acc, ir.OpAdd, acc, s)
		})
	}
	return w.finish(acc)
}

// fft: log-passes of butterflies; the inner trip count halves each
// pass (runtime-variable), exercising cloning.
func fft(scale int) *ir.Module {
	w := newBench("fft", 16384)
	b := w.B
	n := int64(2048)
	reps := int64(6 * scale)
	w.fill(n*2, 8191)
	acc := b.Mov(0)
	b.ConstLoop(reps, func(ir.Reg) {
		// butterfly passes: span = n/2, n/4, ..., 1
		spanv := b.Mov(n / 2)
		zero := b.Mov(0)
		w.whileLt(zero, spanv, func() {
			i := b.Mov(0)
			w.whileLt(i, spanv, func() {
				lo := w.loadAt(i, 0)
				hiIdx := b.Bin(ir.OpAdd, i, spanv)
				m := b.BinI(ir.OpAnd, hiIdx, 4095)
				hi := w.loadAt(m, 0)
				sum := b.Bin(ir.OpAdd, lo, hi)
				diff := b.Bin(ir.OpSub, lo, hi)
				w.storeAt(i, 0, sum)
				w.storeAt(m, 0, diff)
				b.BinTo(acc, ir.OpXor, acc, sum)
				b.BinToI(i, ir.OpAdd, i, 1)
			})
			b.BinToI(spanv, ir.OpDiv, spanv, 2)
		})
	})
	return w.finish(acc)
}

// luC: blocked LU — triangular loops whose bounds shrink with the
// outer induction variable (bound registers redefined per iteration).
func luC(scale int) *ir.Module {
	return luCommon("lu-c", scale, false)
}

// luNC: the non-contiguous variant with an extra indirection per
// element.
func luNC(scale int) *ir.Module {
	return luCommon("lu-nc", scale, true)
}

func luCommon(name string, scale int, indirect bool) *ir.Module {
	w := newBench(name, 16384)
	b := w.B
	g := int64(40 * scale)
	if g > 100 {
		g = 100
	}
	w.fill(g*g, 8191)
	acc := b.Mov(0)
	gReg := b.Mov(g)
	zero := b.Mov(0)
	b.CountedLoop(zero, gReg, 1, func(k ir.Reg) {
		i := b.BinI(ir.OpAdd, k, 1)
		w.whileLt(i, gReg, func() {
			j := b.BinI(ir.OpAdd, k, 1)
			w.whileLt(j, gReg, func() {
				row := b.BinI(ir.OpMul, i, g)
				idx := b.Bin(ir.OpAdd, row, j)
				m := b.BinI(ir.OpAnd, idx, 8191)
				var v ir.Reg
				if indirect {
					p := w.loadAt(m, 0)
					p2 := b.BinI(ir.OpAnd, p, 8191)
					v = w.loadAt(p2, 0)
				} else {
					v = w.loadAt(m, 0)
				}
				kr := b.BinI(ir.OpMul, k, g)
				kidx := b.Bin(ir.OpAdd, kr, j)
				km := b.BinI(ir.OpAnd, kidx, 8191)
				piv := w.loadAt(km, 0)
				upd := b.Bin(ir.OpSub, v, piv)
				upd2 := b.BinI(ir.OpShr, upd, 1)
				w.storeAt(m, 0, upd2)
				b.BinTo(acc, ir.OpAdd, acc, upd2)
				b.BinToI(j, ir.OpAdd, j, 1)
			})
			b.BinToI(i, ir.OpAdd, i, 1)
		})
	})
	return w.finish(acc)
}

// cholesky: triangular factorization with a sqrt library call per
// pivot.
func cholesky(scale int) *ir.Module {
	w := newBench("cholesky", 16384)
	w.M.DeclareExtern("sqrt", 40)
	b := w.B
	g := int64(34 * scale)
	if g > 90 {
		g = 90
	}
	w.fill(g*g, 8191)
	acc := b.Mov(0)
	gReg := b.Mov(g)
	zero := b.Mov(0)
	b.CountedLoop(zero, gReg, 1, func(k ir.Reg) {
		kk := b.BinI(ir.OpMul, k, g)
		kidx := b.Bin(ir.OpAdd, kk, k)
		km := b.BinI(ir.OpAnd, kidx, 8191)
		piv := w.loadAt(km, 0)
		b.ExtCall("sqrt", piv)
		i := b.BinI(ir.OpAdd, k, 1)
		w.whileLt(i, gReg, func() {
			j := b.MovR(k)
			iEnd := b.BinI(ir.OpAdd, i, 1)
			w.whileLt(j, iEnd, func() {
				row := b.BinI(ir.OpMul, i, g)
				idx := b.Bin(ir.OpAdd, row, j)
				m := b.BinI(ir.OpAnd, idx, 8191)
				v := w.loadAt(m, 0)
				v2 := b.Bin(ir.OpSub, v, piv)
				v3 := b.BinI(ir.OpShr, v2, 2)
				w.storeAt(m, 0, v3)
				b.BinTo(acc, ir.OpAdd, acc, v3)
				b.BinToI(j, ir.OpAdd, j, 1)
			})
			b.BinToI(i, ir.OpAdd, i, 1)
		})
	})
	return w.finish(acc)
}
