// Package workloads provides the 28 synthetic benchmark programs
// standing in for the SPLASH-2, Phoenix and Parsec applications of
// Table 7. Each program is generated as IR with the control-flow
// character of its namesake — tight counting loops (radix), triangular
// factorization loops (lu), recursive tree walks (barnes), data-
// dependent scanning (string_match, dedup), math-library external
// calls (blackscholes, water) — because the CI evaluation depends on
// control-flow shape, not on the numeric results.
//
// Every program exposes `main(%tid)`: benchmarks run it on 1..32 VM
// threads with disjoint memory regions per thread (cross-thread
// communication, where the original is synchronization-heavy, is
// modeled with atomic counters).
package workloads

import (
	"fmt"

	"repro/internal/ir"
)

// Workload describes one benchmark program generator.
type Workload struct {
	// Name matches the Table 7 row.
	Name string
	// Suite is "splash2", "phoenix" or "parsec".
	Suite string
	// Build generates the program at the given scale (1 = the default
	// benchmark size; higher values lengthen the run roughly linearly).
	Build func(scale int) *ir.Module
}

// All lists the workloads in Table 7 order.
var All = []Workload{
	{"water-nsquared", "splash2", waterNsquared},
	{"water-spatial", "splash2", waterSpatial},
	{"ocean-cp", "splash2", oceanCP},
	{"ocean-ncp", "splash2", oceanNCP},
	{"barnes", "splash2", barnes},
	{"volrend", "splash2", volrend},
	{"fmm", "splash2", fmm},
	{"raytrace", "splash2", raytrace},
	{"radiosity", "splash2", radiosity},
	{"radix", "splash2", radix},
	{"fft", "splash2", fft},
	{"lu-c", "splash2", luC},
	{"lu-nc", "splash2", luNC},
	{"cholesky", "splash2", cholesky},
	{"reverse_index", "phoenix", reverseIndex},
	{"histogram", "phoenix", histogram},
	{"kmeans", "phoenix", kmeans},
	{"pca", "phoenix", pca},
	{"matrix_multiply", "phoenix", matrixMultiply},
	{"string_match", "phoenix", stringMatch},
	{"linear_regression", "phoenix", linearRegression},
	{"word_count", "phoenix", wordCount},
	{"blackscholes", "parsec", blackscholes},
	{"fluidanimate", "parsec", fluidanimate},
	{"swaptions", "parsec", swaptions},
	{"canneal", "parsec", canneal},
	{"streamcluster", "parsec", streamcluster},
	{"dedup", "parsec", dedup},
}

// ByName returns the named workload, or nil.
func ByName(name string) *Workload {
	for i := range All {
		if All[i].Name == name {
			return &All[i]
		}
	}
	return nil
}

// maxThreads is the number of per-thread memory regions provisioned.
const maxThreads = 64

// bench wraps module construction: a module with `main(%tid)`, a
// per-thread memory region of span words (base register precomputed),
// and the shared ir.Builder.
type bench struct {
	M    *ir.Module
	F    *ir.Func
	B    *ir.Builder
	Span int64
	// Base = tid*Span: the thread's region start.
	Base ir.Reg
	// Tid is the thread-id parameter register.
	Tid ir.Reg
}

func newBench(name string, span int64) *bench {
	m := ir.NewModule(name)
	m.MemWords = span * maxThreads
	f := m.NewFunc("main", 1)
	b := ir.NewBuilder(f)
	base := b.BinI(ir.OpMul, 0, span)
	return &bench{M: m, F: f, B: b, Span: span, Base: base, Tid: 0}
}

// finish seals main with `ret result`, reindexes and verifies.
func (w *bench) finish(result ir.Reg) *ir.Module {
	w.B.Ret(result)
	w.F.Reindex()
	if err := w.M.Verify(); err != nil {
		panic(fmt.Sprintf("workloads: %s does not verify: %v", w.M.Name, err))
	}
	return w.M
}

// fill seeds words [0,n) of the thread region with a cheap pseudo-
// random pattern (data the benchmark then consumes).
func (w *bench) fill(n int64, mask int64) {
	b := w.B
	b.ConstLoop(n, func(i ir.Reg) {
		h := b.BinI(ir.OpMul, i, 2654435761)
		h2 := b.BinI(ir.OpShr, h, 7)
		v := b.BinI(ir.OpAnd, h2, mask)
		addr := b.Bin(ir.OpAdd, w.Base, i)
		b.Store(addr, 0, v)
	})
}

// loadAt emits a load of region word (idx + off).
func (w *bench) loadAt(idx ir.Reg, off int64) ir.Reg {
	addr := w.B.Bin(ir.OpAdd, w.Base, idx)
	return w.B.Load(addr, off)
}

// storeAt emits a store to region word (idx + off).
func (w *bench) storeAt(idx ir.Reg, off int64, v ir.Reg) {
	addr := w.B.Bin(ir.OpAdd, w.Base, idx)
	w.B.Store(addr, off, v)
}

// whileLt emits `for ; *i < bound; ` with body cb; the caller advances
// the induction variable inside cb. Returns after positioning the
// builder at the exit block.
func (w *bench) whileLt(i, bound ir.Reg, cb func()) {
	b := w.B
	head := b.Block("w.head")
	body := b.Block("w.body")
	exit := b.Block("w.exit")
	b.Jmp(head)
	b.SetBlock(head)
	c := b.Bin(ir.OpCmpLt, i, bound)
	b.Br(c, body, exit)
	b.SetBlock(body)
	cb()
	b.Jmp(head)
	b.SetBlock(exit)
}

// ifThen emits `if cond { then() }`.
func (w *bench) ifThen(cond ir.Reg, then func()) {
	b := w.B
	tb := b.Block("if.then")
	join := b.Block("if.join")
	b.Br(cond, tb, join)
	b.SetBlock(tb)
	then()
	b.Jmp(join)
	b.SetBlock(join)
}

// ifElse emits `if cond { then() } else { els() }`.
func (w *bench) ifElse(cond ir.Reg, then, els func()) {
	b := w.B
	tb := b.Block("ie.then")
	eb := b.Block("ie.else")
	join := b.Block("ie.join")
	b.Br(cond, tb, eb)
	b.SetBlock(tb)
	then()
	b.Jmp(join)
	b.SetBlock(eb)
	els()
	b.Jmp(join)
	b.SetBlock(join)
}
