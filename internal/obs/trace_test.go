package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenScope builds a deterministic scope exercising every event
// shape the trace writer handles: spans, instants, string and integer
// args, escaping, multiple categories and threads.
func goldenScope() *obs.Scope {
	s := obs.New(0)
	s.Span("vm", "run/main", 0, 0, 12500, obs.I("instrs", 5000), obs.I("probes", 20))
	s.Span("vm", "probe-fire", 0, 250, 310, obs.S("fn", "main"), obs.S("block", "loop"), obs.I("fired", 1))
	s.Instant("vm", "hw-interrupt", 1, 4000, obs.I("cost", 4800))
	s.Instant("engine", "cache-miss", 0, 1, obs.S("key", `mod/"quoted"\path`))
	s.Instant("engine", "cache-hit", 0, 2, obs.S("key", "mod/plain"))
	s.Span("mtcp", "ci-poll", 0, 5000, 7600, obs.I("rx_pkts", 3), obs.I("cost", 2600))
	s.Instant("compile", "stage/instrument", 0, 3)
	// More args than the per-event capacity: the excess is dropped.
	s.Instant("vm", "overfull", 2, 9000,
		obs.I("a", 1), obs.I("b", 2), obs.I("c", 3), obs.I("d", 4), obs.I("e", 5))
	return s
}

func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenScope().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from golden file.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// The emitted document must be valid JSON in the Chrome trace_event
// schema: a traceEvents array whose entries carry name/ph/ts/pid/tid,
// with dur on complete events.
func TestWriteTraceIsValidChromeJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenScope().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("not valid JSON:\n%s", buf.Bytes())
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.OtherData["dropped_events"] != "0" {
		t.Errorf("dropped_events = %q", doc.OtherData["dropped_events"])
	}
	var spans, instants, meta int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.Dur == nil {
				t.Errorf("span %q lacks dur", ev.Name)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
		if ev.Name == "" || ev.TS == nil && ev.Ph != "M" {
			t.Errorf("malformed event %+v", ev)
		}
	}
	if spans != 3 || instants != 5 || meta == 0 {
		t.Errorf("spans=%d instants=%d meta=%d", spans, instants, meta)
	}
	// Events of the same category share a pid; different categories get
	// different pids (category = trace process).
	pids := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		if p, ok := pids[ev.Cat]; ok && p != ev.PID {
			t.Errorf("category %q spans pids %d and %d", ev.Cat, p, ev.PID)
		}
		pids[ev.Cat] = ev.PID
	}
	if len(pids) != 4 {
		t.Errorf("got %d categories, want 4", len(pids))
	}
	// Arg overflow is truncated to capacity, not dropped entirely.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "overfull" && len(ev.Args) != 4 {
			t.Errorf("overfull event kept %d args, want 4", len(ev.Args))
		}
	}
}

func TestWriteTraceNilScope(t *testing.T) {
	var buf bytes.Buffer
	if err := obs.Disabled().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil-scope trace is not valid JSON: %s", buf.Bytes())
	}
}

func TestWriteTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := goldenScope().WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Error("trace file is not valid JSON")
	}
}
