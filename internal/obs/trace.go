// Chrome trace_event JSON rendering. The output loads directly in
// chrome://tracing and Perfetto: one process per event category (with
// process_name metadata), thread IDs taken from Event.TID, and
// timestamps in virtual cycles reported as microseconds.
package obs

import (
	"bufio"
	"io"
	"os"
	"sort"
	"strconv"
)

// WriteTrace renders the retained events as a Chrome trace_event JSON
// object: {"traceEvents":[...],"displayTimeUnit":"ns"}. Categories are
// mapped to trace "processes" in order of first appearance so related
// events group together in the viewer.
func (s *Scope) WriteTrace(w io.Writer) error {
	var evs []Event
	var dropped int64
	if s != nil {
		s.mu.Lock()
		evs = s.eventsLocked()
		dropped = s.dropped
		s.mu.Unlock()
	}

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"traceEvents":[`)

	// Assign pids per category by first appearance.
	pids := map[string]int{}
	var cats []string
	for _, ev := range evs {
		if _, ok := pids[ev.Cat]; !ok {
			pids[ev.Cat] = len(pids) + 1
			cats = append(cats, ev.Cat)
		}
	}

	first := true
	emit := func(f func(b *bufio.Writer)) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		f(bw)
	}

	for _, cat := range cats {
		pid := pids[cat]
		emit(func(b *bufio.Writer) {
			b.WriteString(`{"name":"process_name","ph":"M","pid":`)
			b.WriteString(strconv.Itoa(pid))
			b.WriteString(`,"tid":0,"args":{"name":`)
			writeJSONString(b, cat)
			b.WriteString(`}}`)
		})
	}

	for i := range evs {
		ev := &evs[i]
		emit(func(b *bufio.Writer) {
			b.WriteString(`{"name":`)
			writeJSONString(b, ev.Name)
			b.WriteString(`,"cat":`)
			writeJSONString(b, ev.Cat)
			b.WriteString(`,"ph":"`)
			b.WriteByte(ev.Ph)
			b.WriteString(`","ts":`)
			b.WriteString(strconv.FormatInt(ev.TS, 10))
			if ev.Ph == 'X' {
				b.WriteString(`,"dur":`)
				b.WriteString(strconv.FormatInt(ev.Dur, 10))
			}
			if ev.Ph == 'i' {
				// Thread-scoped instants render as small arrows.
				b.WriteString(`,"s":"t"`)
			}
			b.WriteString(`,"pid":`)
			b.WriteString(strconv.Itoa(pids[ev.Cat]))
			b.WriteString(`,"tid":`)
			b.WriteString(strconv.FormatInt(int64(ev.TID), 10))
			if ev.NArg > 0 {
				b.WriteString(`,"args":{`)
				for j := 0; j < int(ev.NArg); j++ {
					if j > 0 {
						b.WriteByte(',')
					}
					a := &ev.Args[j]
					writeJSONString(b, a.Key)
					b.WriteByte(':')
					if a.IsStr {
						writeJSONString(b, a.Str)
					} else {
						b.WriteString(strconv.FormatInt(a.Val, 10))
					}
				}
				b.WriteByte('}')
			}
			b.WriteByte('}')
		})
	}

	bw.WriteString(`],"displayTimeUnit":"ns","otherData":{"dropped_events":"`)
	bw.WriteString(strconv.FormatInt(dropped, 10))
	bw.WriteString(`"}}`)
	bw.WriteByte('\n')
	return bw.Flush()
}

// WriteTraceFile writes the trace to path, creating or truncating it.
func (s *Scope) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSONString writes v as a JSON string literal, escaping the
// characters RFC 8259 requires. Event names and categories are ASCII
// identifiers in practice; anything below 0x20 falls back to \u00XX.
func writeJSONString(b *bufio.Writer, v string) {
	b.WriteByte('"')
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c >= 0x20:
			b.WriteByte(c)
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c == '\r':
			b.WriteString(`\r`)
		default:
			const hex = "0123456789abcdef"
			b.WriteString(`\u00`)
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xf])
		}
	}
	b.WriteByte('"')
}

// sortedKeys is shared by the metrics writer for deterministic output.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
