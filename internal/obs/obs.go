// Package obs is the unified observability layer: a ring-buffered
// event tracer that renders Chrome trace_event JSON, composable named
// counters and log-scaled histograms built on internal/stats, and
// profiling hooks that attribute fired probes back to their IR
// function/block.
//
// One *Scope is threaded through the VM, the experiment engine and the
// application models. The zero value of the *pointer* is the disabled
// scope: every method is nil-receiver safe and a nil scope does
// nothing, so layers hold a plain *Scope field and call it
// unconditionally. Hot paths that would otherwise build variadic
// argument slices must still guard with s.Enabled() — the nil-receiver
// no-op does not stop the caller from allocating the arguments.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// maxEventArgs is the per-event argument capacity. Events carry a
// fixed-size array so recording never allocates per event once the
// ring exists; excess arguments are dropped.
const maxEventArgs = 4

// DefaultRingCap is the event-ring capacity used when New is given a
// non-positive one. At ~100 bytes/event this bounds a scope to a few
// MB while keeping the tail of a full figure sweep.
const DefaultRingCap = 1 << 16

// Arg is one key/value annotation on an event. Exactly one of Str
// (IsStr=true) or Val is meaningful.
type Arg struct {
	Key   string
	Str   string
	Val   int64
	IsStr bool
}

// I builds an integer-valued Arg.
func I(key string, v int64) Arg { return Arg{Key: key, Val: v} }

// S builds a string-valued Arg.
func S(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// Event is one trace entry. Ph follows the Chrome trace_event phase
// codes used here: 'X' complete (span with Dur), 'i' instant.
type Event struct {
	Cat  string
	Name string
	Ph   byte
	TS   int64
	Dur  int64
	TID  int32
	NArg int8
	Args [maxEventArgs]Arg
}

// siteKey identifies a probe site by its IR coordinates. It is a
// comparable struct so the hot-path map lookup needs no string
// concatenation.
type siteKey struct {
	Fn, Block string
}

// SiteStat is the per-probe-site profile: how often the site's probe
// executed and how often it actually fired the handler.
type SiteStat struct {
	Fn, Block   string
	Hits, Fired int64
}

// Scope is one observability session. All methods are safe for
// concurrent use and safe on a nil receiver (nil = disabled).
type Scope struct {
	mu      sync.Mutex
	ring    []Event
	next    int // ring write cursor
	wrapped bool
	dropped int64

	counters map[string]int64
	hists    map[string]*stats.LogHist
	sites    map[siteKey]*SiteStat

	clock atomic.Int64
}

// New returns an enabled Scope whose event ring keeps the most recent
// ringCap events (DefaultRingCap if ringCap <= 0). Counters,
// histograms and site profiles are unbounded by the ring.
func New(ringCap int) *Scope {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Scope{
		ring:     make([]Event, 0, ringCap),
		counters: map[string]int64{},
		hists:    map[string]*stats.LogHist{},
		sites:    map[siteKey]*SiteStat{},
	}
}

// Disabled returns the disabled scope: nil. Spelled as a constructor
// so call sites read as intent rather than as a forgotten field.
func Disabled() *Scope { return nil }

// Enabled reports whether the scope records anything. Hot paths use
// this to skip building event arguments entirely.
func (s *Scope) Enabled() bool { return s != nil }

// Tick returns a fresh monotonically increasing timestamp for layers
// that have no virtual clock of their own (engine cache, CLI startup).
// Ticks share the event timeline, so clockless events still order
// correctly among themselves. Returns 0 on a disabled scope.
func (s *Scope) Tick() int64 {
	if s == nil {
		return 0
	}
	return s.clock.Add(1)
}

// Advance moves the tick clock to at least ts, so subsequent Tick
// values sort after events stamped from a virtual clock.
func (s *Scope) Advance(ts int64) {
	if s == nil {
		return
	}
	for {
		cur := s.clock.Load()
		if cur >= ts || s.clock.CompareAndSwap(cur, ts) {
			return
		}
	}
}

func (s *Scope) record(ev Event) {
	s.mu.Lock()
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, ev)
	} else if cap(s.ring) > 0 {
		// Full: overwrite the oldest event.
		s.ring[s.next] = ev
		s.next++
		if s.next == cap(s.ring) {
			s.next = 0
		}
		s.wrapped = true
		s.dropped++
	}
	s.mu.Unlock()
}

func fillArgs(ev *Event, args []Arg) {
	n := len(args)
	if n > maxEventArgs {
		n = maxEventArgs
	}
	ev.NArg = int8(n)
	copy(ev.Args[:], args[:n])
}

// Instant records a point event ('i') at virtual time ts.
func (s *Scope) Instant(cat, name string, tid int32, ts int64, args ...Arg) {
	if s == nil {
		return
	}
	ev := Event{Cat: cat, Name: name, Ph: 'i', TS: ts, TID: tid}
	fillArgs(&ev, args)
	s.record(ev)
}

// Span records a complete event ('X') covering [ts, end].
func (s *Scope) Span(cat, name string, tid int32, ts, end int64, args ...Arg) {
	if s == nil {
		return
	}
	dur := end - ts
	if dur < 0 {
		dur = 0
	}
	ev := Event{Cat: cat, Name: name, Ph: 'X', TS: ts, Dur: dur, TID: tid}
	fillArgs(&ev, args)
	s.record(ev)
}

// Count adds delta to the named counter.
func (s *Scope) Count(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counters[name] += delta
	s.mu.Unlock()
}

// Counter returns the current value of the named counter.
func (s *Scope) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Observe records one sample into the named log-scaled histogram.
func (s *Scope) Observe(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	h := s.hists[name]
	if h == nil {
		h = &stats.LogHist{}
		s.hists[name] = h
	}
	h.Add(v)
	s.mu.Unlock()
}

// Hist returns a snapshot copy of the named histogram, or nil if no
// sample was ever observed under that name.
func (s *Scope) Hist(name string) *stats.LogHist {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.hists[name]
	if h == nil {
		return nil
	}
	cp := *h
	return &cp
}

// SiteHit attributes one probe execution to IR site fn/block; fired
// marks executions that actually invoked the interrupt handler. The
// fn/block strings come from long-lived IR structures, so recording
// them allocates only on the first hit of a new site.
func (s *Scope) SiteHit(fn, block string, fired bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	st := s.sites[siteKey{fn, block}]
	if st == nil {
		st = &SiteStat{Fn: fn, Block: block}
		s.sites[siteKey{fn, block}] = st
	}
	st.Hits++
	if fired {
		st.Fired++
	}
	s.mu.Unlock()
}

// HotSites returns up to n probe sites ordered by descending hit
// count, ties broken by fn/block name for determinism. n <= 0 returns
// all sites.
func (s *Scope) HotSites(n int) []SiteStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]SiteStat, 0, len(s.sites))
	for _, st := range s.sites {
		out = append(out, *st)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Block < out[j].Block
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Dropped returns how many events were overwritten by ring wraparound.
func (s *Scope) Dropped() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Events returns the retained events oldest-first (a copy).
func (s *Scope) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eventsLocked()
}

func (s *Scope) eventsLocked() []Event {
	if !s.wrapped {
		return append([]Event(nil), s.ring...)
	}
	out := make([]Event, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}
