package obs_test

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestDisabledScopeIsNilAndInert(t *testing.T) {
	s := obs.Disabled()
	if s != nil || s.Enabled() {
		t.Fatal("Disabled() must be the nil scope")
	}
	// Every method must be a no-op on the nil receiver.
	s.Instant("c", "n", 0, 1)
	s.Span("c", "n", 0, 1, 2)
	s.Count("k", 1)
	s.Observe("h", 5)
	s.SiteHit("f", "b", true)
	s.Advance(100)
	if s.Tick() != 0 || s.Counter("k") != 0 || s.Hist("h") != nil ||
		s.Dropped() != 0 || s.Events() != nil || s.HotSites(0) != nil {
		t.Error("nil scope leaked state")
	}
}

// The tentpole's zero-cost-when-disabled property: calling the full
// observability surface on a disabled scope must not allocate. (Hot
// paths additionally guard with Enabled() so variadic args are never
// even built; this checks the layer itself stays allocation-free.)
func TestDisabledScopeAllocatesNothing(t *testing.T) {
	s := obs.Disabled()
	n := testing.AllocsPerRun(1000, func() {
		s.Instant("vm", "probe-fire", 3, 42, obs.I("fired", 1))
		s.Span("vm", "handler", 3, 42, 99, obs.I("cost", 57), obs.S("fn", "main"))
		s.Count("vm/probes", 1)
		s.Observe("vm/handler_gap", 4980)
		s.SiteHit("main", "loop", true)
		s.Tick()
		s.Advance(100)
	})
	if n != 0 {
		t.Errorf("disabled scope allocated %.1f times per run, want 0", n)
	}
}

func TestRingWrapKeepsNewestAndCountsDropped(t *testing.T) {
	s := obs.New(4)
	for i := int64(1); i <= 7; i++ {
		s.Instant("c", "e", 0, i)
	}
	evs := s.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(4 + i); ev.TS != want {
			t.Errorf("event %d TS = %d, want %d (oldest-first)", i, ev.TS, want)
		}
	}
	if d := s.Dropped(); d != 3 {
		t.Errorf("dropped = %d, want 3", d)
	}
}

func TestCountersAndHistograms(t *testing.T) {
	s := obs.New(0)
	s.Count("a", 2)
	s.Count("a", 3)
	if v := s.Counter("a"); v != 5 {
		t.Errorf("counter = %d, want 5", v)
	}
	for i := int64(1); i <= 100; i++ {
		s.Observe("lat", i)
	}
	h := s.Hist("lat")
	if h == nil || h.N() != 100 {
		t.Fatalf("hist snapshot missing or wrong count: %v", h)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	// The snapshot is a copy: further observations must not affect it.
	s.Observe("lat", 1000)
	if h.N() != 100 {
		t.Error("Hist returned a live reference, not a snapshot")
	}
}

func TestHotSitesOrderingAndTruncation(t *testing.T) {
	s := obs.New(0)
	for i := 0; i < 5; i++ {
		s.SiteHit("f1", "hot", i%2 == 0)
	}
	for i := 0; i < 3; i++ {
		s.SiteHit("f2", "warm", false)
	}
	s.SiteHit("f1", "cold", true)
	sites := s.HotSites(2)
	if len(sites) != 2 {
		t.Fatalf("got %d sites, want 2", len(sites))
	}
	if sites[0].Fn != "f1" || sites[0].Block != "hot" || sites[0].Hits != 5 || sites[0].Fired != 3 {
		t.Errorf("hottest site = %+v", sites[0])
	}
	if sites[1].Fn != "f2" || sites[1].Hits != 3 {
		t.Errorf("second site = %+v", sites[1])
	}
	if all := s.HotSites(0); len(all) != 3 {
		t.Errorf("HotSites(0) = %d sites, want all 3", len(all))
	}
}

func TestTickAdvanceMonotonic(t *testing.T) {
	s := obs.New(0)
	if a, b := s.Tick(), s.Tick(); b <= a {
		t.Errorf("ticks not increasing: %d then %d", a, b)
	}
	s.Advance(1000)
	if v := s.Tick(); v <= 1000 {
		t.Errorf("tick after Advance(1000) = %d", v)
	}
	s.Advance(5) // must not move the clock backwards
	if v := s.Tick(); v <= 1000 {
		t.Errorf("Advance moved the clock backwards: %d", v)
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	s := obs.New(0)
	s.Span("c", "n", 0, 100, 40)
	evs := s.Events()
	if len(evs) != 1 || evs[0].Dur != 0 {
		t.Errorf("events = %+v, want one span with dur 0", evs)
	}
}

func TestWriteMetricsReport(t *testing.T) {
	s := obs.New(0)
	s.Count("engine/cache_hit", 7)
	for i := int64(0); i < 1000; i++ {
		s.Observe("run/interval_error_cycles", i-500)
	}
	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"engine/cache_hit", "7", "run/interval_error_cycles", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics report lacks %q:\n%s", want, out)
		}
	}
	// Disabled scope still writes a (trivial) report rather than failing.
	sb.Reset()
	if err := obs.Disabled().WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "disabled") {
		t.Errorf("disabled metrics report = %q", sb.String())
	}
}

func TestWriteHotSites(t *testing.T) {
	s := obs.New(0)
	s.SiteHit("main", "loop", true)
	s.SiteHit("main", "loop", false)
	var sb strings.Builder
	if err := s.WriteHotSites(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "main") || !strings.Contains(out, "loop") {
		t.Errorf("hot-sites table lacks the site:\n%s", out)
	}
}
