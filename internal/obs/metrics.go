// Plain-text metrics rendering: counters, histogram quantiles and the
// hottest-probe-sites table. This is the -metrics / cidump -hot
// surface; EXPERIMENTS.md documents how the interval-error histograms
// here reproduce the paper's accuracy CDFs.
package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteMetrics renders all counters and histograms in deterministic
// (sorted) order. Histograms report the quantiles the paper's accuracy
// figures use: p50/p90/p99 plus exact min/max and mean.
func (s *Scope) WriteMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if s == nil {
		fmt.Fprintln(bw, "# obs: disabled scope (no metrics recorded)")
		return bw.Flush()
	}
	s.mu.Lock()
	counters := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	hists := make(map[string]*stHist, len(s.hists))
	for k, h := range s.hists {
		cp := *h
		hists[k] = &stHist{cp.N(), cp.Min(), cp.Quantile(50), cp.Quantile(90), cp.Quantile(99), cp.Max(), cp.Mean()}
	}
	nsites := len(s.sites)
	dropped := s.dropped
	s.mu.Unlock()

	if len(counters) > 0 {
		fmt.Fprintln(bw, "# counters")
		for _, k := range sortedKeys(counters) {
			fmt.Fprintf(bw, "%-40s %d\n", k, counters[k])
		}
	}
	if len(hists) > 0 {
		fmt.Fprintln(bw, "# histograms")
		fmt.Fprintf(bw, "%-40s %10s %10s %10s %10s %10s %10s %12s\n",
			"name", "n", "min", "p50", "p90", "p99", "max", "mean")
		for _, k := range sortedKeys(hists) {
			h := hists[k]
			fmt.Fprintf(bw, "%-40s %10d %10d %10d %10d %10d %10d %12.1f\n",
				k, h.n, h.min, h.p50, h.p90, h.p99, h.max, h.mean)
		}
	}
	if nsites > 0 {
		fmt.Fprintf(bw, "# probe sites: %d distinct (see cidump -hot for the table)\n", nsites)
	}
	if dropped > 0 {
		fmt.Fprintf(bw, "# trace ring dropped %d event(s)\n", dropped)
	}
	return bw.Flush()
}

type stHist struct {
	n, min, p50, p90, p99, max int64
	mean                       float64
}

// WriteHotSites renders the hottest-probe-sites profile table: up to n
// sites by descending probe executions, with fire counts and fire
// rate. This is the cidump -hot surface.
func (s *Scope) WriteHotSites(w io.Writer, n int) error {
	bw := bufio.NewWriter(w)
	sites := s.HotSites(n)
	if len(sites) == 0 {
		fmt.Fprintln(bw, "# obs: no probe sites recorded")
		return bw.Flush()
	}
	fmt.Fprintf(bw, "%-24s %-16s %12s %12s %9s\n", "function", "block", "probe execs", "fires", "fire rate")
	for _, st := range sites {
		rate := 0.0
		if st.Hits > 0 {
			rate = float64(st.Fired) / float64(st.Hits)
		}
		fmt.Fprintf(bw, "%-24s %-16s %12d %12d %8.4f%%\n", st.Fn, st.Block, st.Hits, st.Fired, rate*100)
	}
	return bw.Flush()
}
