package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sampleProgram = `
module sample
mem 1024
extern @print cost 120
extern @read cost 4000 blocking

; computes sum of 0..n-1 and prints it
func @main(%n) {
entry:
  %sum = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n        # loop condition
  br %c, body, done
body:
  %sum = add %sum, %i
  %i = add %i, 1
  jmp head
done:
  %r = call @scale(%sum)
  extcall @print(%r)
  ret %r
}

func @scale(%x) noinstrument {
entry:
  %y = mul %x, 2
  ret %y
}
`

func TestParseSample(t *testing.T) {
	m, err := Parse(sampleProgram)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Name != "sample" {
		t.Errorf("module name = %q", m.Name)
	}
	if m.MemWords != 1024 {
		t.Errorf("MemWords = %d", m.MemWords)
	}
	if len(m.Externs) != 2 {
		t.Fatalf("externs = %d, want 2", len(m.Externs))
	}
	if !m.Externs["read"].Blocking || m.Externs["read"].Cost != 4000 {
		t.Errorf("extern read = %+v", m.Externs["read"])
	}
	main := m.FuncByName("main")
	if main == nil || main.NumParams != 1 {
		t.Fatalf("main = %+v", main)
	}
	if len(main.Blocks) != 4 {
		t.Errorf("main blocks = %d, want 4", len(main.Blocks))
	}
	scale := m.FuncByName("scale")
	if scale == nil || !scale.NoInstrument {
		t.Errorf("scale should carry noinstrument")
	}
}

func TestParsePrintRoundTrip(t *testing.T) {
	m := MustParse(sampleProgram)
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if m2.String() != text {
		t.Errorf("round trip not stable:\n-- first --\n%s\n-- second --\n%s", text, m2.String())
	}
}

func TestParseProbeRoundTrip(t *testing.T) {
	src := `
module p
func @f(%n) {
entry:
  probe ir 250
  probe cycles 500
  probe event 1
  %k = mov 0
  probe irloop 7 %n %k
  ret
}
`
	m := MustParse(src)
	text := m.String()
	m2 := MustParse(text)
	if m2.String() != text {
		t.Fatalf("probe round trip unstable:\n%s\nvs\n%s", text, m2.String())
	}
	f := m.FuncByName("f")
	probes := 0
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == OpProbe {
			probes++
			if in.Probe.Kind == ProbeIRLoop && (in.Probe.IndVar == NoReg || in.Probe.Base == NoReg) {
				t.Error("loop probe lost registers")
			}
		}
	}
	if probes != 4 {
		t.Errorf("parsed %d probes, want 4", probes)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown opcode", "func @f() {\nentry:\n %x = frob 1\n ret\n}", "unknown opcode"},
		{"unknown label", "func @f() {\nentry:\n jmp nowhere\n}", "unknown block label"},
		{"missing brace", "func @f() {\nentry:\n ret\n", "missing closing"},
		{"instr after term", "func @f() {\nentry:\n ret\n %x = mov 1\n}", "after terminator"},
		{"instr before label", "func @f() {\n %x = mov 1\nentry:\n ret\n}", "before any block"},
		{"duplicate label", "func @f() {\nentry:\n ret\nentry:\n ret\n}", "duplicate block label"},
		{"duplicate func", "func @f() {\nentry:\n ret\n}\nfunc @f() {\nentry:\n ret\n}", "duplicate function"},
		{"bad extern", "extern @x price 4", "usage: extern"},
		{"bad mem", "mem lots", "bad memory size"},
		{"bad br arity", "func @f() {\nentry:\n br %c, a\n}", "usage: br"},
		{"store immediate value", "func @f() {\nentry:\n store _, 0, 5\n ret\n}", "expected register"},
		{"call undefined", "func @f() {\nentry:\n call @g()\n ret\n}", "undefined function"},
		{"unterminated block", "func @f() {\nentry:\n %x = mov 1\nnext:\n ret\n}", "lacks a terminator"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseNamedAndNumericRegisters(t *testing.T) {
	src := `
func @f(%a) {
entry:
  %1 = mov 5
  %x = add %a, %1
  ret %x
}
`
	m := MustParse(src)
	f := m.FuncByName("f")
	// %a is param reg 0, %1 is numeric reg 1, %x allocated fresh (2).
	add := f.Blocks[0].Instrs[1]
	if add.A != 0 || add.B != 1 || add.Dst != 2 {
		t.Errorf("add operands = dst %d, a %d, b %d; want 2, 0, 1", add.Dst, add.A, add.B)
	}
}

// randomModule builds a random but always-valid module, for the
// round-trip property test.
func randomModule(r *rand.Rand) *Module {
	m := NewModule("rnd")
	m.MemWords = 256
	m.DeclareExtern("ext0", 50+r.Int63n(500))
	nf := 1 + r.Intn(3)
	for fi := 0; fi < nf; fi++ {
		f := m.NewFunc("f"+string(rune('a'+fi)), r.Intn(3))
		if f.NumParams == 0 {
			f.NumRegs = 1 // ensure at least one register exists for operands
		}
		b := NewBuilder(f)
		var blocks []*Block
		blocks = append(blocks, b.B)
		extra := r.Intn(3)
		for i := 0; i < extra; i++ {
			blocks = append(blocks, b.Block(""))
		}
		for bi, blk := range blocks {
			b.SetBlock(blk)
			n := r.Intn(5)
			last := Reg(0)
			for i := 0; i < n; i++ {
				switch r.Intn(5) {
				case 0:
					last = b.Mov(r.Int63n(100))
				case 1:
					last = b.BinI(OpAdd, last, r.Int63n(10))
				case 2:
					last = b.Load(NoReg, r.Int63n(256))
				case 3:
					b.Store(NoReg, r.Int63n(256), last)
				case 4:
					last = b.ExtCall("ext0", last)
				}
			}
			// Terminate: last block rets, others jump/branch forward to
			// avoid infinite loops in any later interpretation.
			if bi == len(blocks)-1 {
				b.Ret(last)
			} else if r.Intn(2) == 0 {
				b.Jmp(blocks[bi+1])
			} else {
				t := blocks[bi+1]
				e := blocks[len(blocks)-1]
				b.Br(last, t, e)
			}
		}
		f.Reindex()
	}
	return m
}

func TestQuickParsePrintRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModule(r)
		if err := m.Verify(); err != nil {
			t.Logf("random module does not verify: %v", err)
			return false
		}
		text := m.String()
		m2, err := Parse(text)
		if err != nil {
			t.Logf("reparse failed: %v\n%s", err, text)
			return false
		}
		return m2.String() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestImportsParsePrintAndLink(t *testing.T) {
	lib := MustParse(`
module libm
mem 256
func @scale(%x) {
entry:
  %y = mul %x, 3
  ret %y
}
`)
	app := MustParse(`
module app
mem 1024
import @scale
func @main(%n) {
entry:
  %r = call @scale(%n)
  ret %r
}
`)
	if !app.Imports["scale"] {
		t.Fatal("import not recorded")
	}
	text := app.String()
	if !strings.Contains(text, "import @scale") {
		t.Errorf("printer lost import:\n%s", text)
	}
	reparsed := MustParse(text)
	if !reparsed.Imports["scale"] {
		t.Error("round trip lost import")
	}
	linked, err := Link("prog", app, lib)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if linked.FuncByName("scale") == nil || linked.FuncByName("main") == nil {
		t.Error("linked module missing functions")
	}
	if linked.MemWords != 1024 {
		t.Errorf("MemWords = %d, want max(256,1024)", linked.MemWords)
	}
}

func TestLinkErrors(t *testing.T) {
	lib := MustParse("func @f() {\nentry:\n ret\n}")
	dup := MustParse("func @f() {\nentry:\n ret\n}")
	if _, err := Link("p", lib, dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate link err = %v", err)
	}
	app := MustParse("import @missing\nfunc @main() {\nentry:\n call @missing()\n ret\n}")
	if _, err := Link("p", app); err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Errorf("unresolved link err = %v", err)
	}
	e1 := MustParse("extern @x cost 5\nfunc @a() {\nentry:\n extcall @x()\n ret\n}")
	e2 := MustParse("extern @x cost 9\nfunc @b() {\nentry:\n extcall @x()\n ret\n}")
	if _, err := Link("p", e1, e2); err == nil || !strings.Contains(err.Error(), "conflicting extern") {
		t.Errorf("conflicting extern err = %v", err)
	}
}

func TestCallToUndeclaredImportFails(t *testing.T) {
	_, err := Parse("func @main() {\nentry:\n call @ghost()\n ret\n}")
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Errorf("err = %v", err)
	}
}

// FuzzParse exercises the parser with arbitrary input: it must never
// panic, and anything it accepts must verify, print, and reparse to
// the same text.
func FuzzParse(f *testing.F) {
	f.Add(sampleProgram)
	f.Add("func @f() {\nentry:\n ret\n}")
	f.Add("import @x\nextern @y cost 5\nmem 64")
	f.Add("func @f(%a) {\nentry:\n %b = add %a, 1\n br %b, entry, e\ne:\n ret %b\n}")
	f.Add("probe ir 5")
	f.Add("func @f() {")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		if verr := m.Verify(); verr != nil {
			t.Fatalf("accepted module does not verify: %v\n%s", verr, src)
		}
		text := m.String()
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("printer output does not reparse: %v\n%s", err, text)
		}
		if m2.String() != text {
			t.Fatalf("round trip unstable:\n%s\nvs\n%s", text, m2.String())
		}
	})
}
