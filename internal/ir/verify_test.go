package ir

import (
	"strings"
	"testing"
)

// verifySrc is a clean two-function module that every corruption case
// below starts from. It parses (and therefore verifies) before each
// mutation is applied.
const verifySrc = `
func @main(%n) {
entry:
  %a = add %n, 1
  %b = call @helper(%a)
  jmp out
out:
  ret %b
}
func @helper(%x) {
entry:
  %y = mul %x, 2
  ret %y
}
`

// TestVerifyErrorPaths corrupts a valid module through the API (the
// parser refuses to produce malformed modules, so these states can only
// arise from buggy transforms) and asserts each corruption yields its
// own distinct diagnostic.
func TestVerifyErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(m *Module)
		want    string
	}{
		{
			name: "duplicate function",
			corrupt: func(m *Module) {
				dup := m.NewFunc("helper", 1)
				b := dup.NewBlock("entry")
				b.Term = Terminator{Kind: TermRet, Val: 0}
			},
			want: "ir: duplicate function @helper",
		},
		{
			name: "stale block index",
			corrupt: func(m *Module) {
				m.FuncByName("main").Blocks[1].Index = 7
			},
			want: `ir: @main: block "out" has stale index 7 (want 1); call Reindex`,
		},
		{
			name: "out-of-range register",
			corrupt: func(m *Module) {
				f := m.FuncByName("main")
				f.Blocks[0].Instrs[0].Dst = Reg(99)
			},
			want: `ir: @main: block "entry": dst register 99 out of range [0,`,
		},
		{
			name: "dangling callee",
			corrupt: func(m *Module) {
				f := m.FuncByName("main")
				f.Blocks[0].Instrs[1].Callee = "ghost"
			},
			want: `ir: @main: block "entry": call to undefined function @ghost`,
		},
		{
			name: "empty function body",
			corrupt: func(m *Module) {
				m.FuncByName("helper").Blocks = nil
			},
			want: "ir: @helper: empty function body",
		},
		{
			name: "missing terminator",
			corrupt: func(m *Module) {
				m.FuncByName("main").Blocks[0].Term = Terminator{}
			},
			want: `ir: @main: block "entry" lacks a terminator`,
		},
		{
			name: "jump outside function",
			corrupt: func(m *Module) {
				m.FuncByName("main").Blocks[0].Term.Then = m.FuncByName("helper").Blocks[0]
			},
			want: `ir: @main: block "entry" jumps outside the function`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := MustParse(verifySrc)
			if err := m.Verify(); err != nil {
				t.Fatalf("base module must verify before corruption: %v", err)
			}
			tc.corrupt(m)
			err := m.Verify()
			if err == nil {
				t.Fatalf("corrupted module verified cleanly:\n%s", m)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Verify() = %q, want substring %q", err, tc.want)
			}
		})
	}
}

// TestVerifyMessagesAreDistinct guards against error-path collapse: each
// corruption class must produce a distinguishable message, or a future
// triage session cannot tell failures apart.
func TestVerifyMessagesAreDistinct(t *testing.T) {
	corruptions := map[string]func(m *Module){
		"dup": func(m *Module) {
			f := m.NewFunc("main", 0)
			b := f.NewBlock("e")
			b.Term = Terminator{Kind: TermRet, Val: NoReg}
		},
		"stale":   func(m *Module) { m.FuncByName("main").Blocks[1].Index = 3 },
		"reg":     func(m *Module) { m.FuncByName("main").Blocks[0].Instrs[0].A = Reg(50) },
		"dangled": func(m *Module) { m.FuncByName("main").Blocks[0].Instrs[1].Callee = "nope" },
	}
	seen := make(map[string]string)
	for label, corrupt := range corruptions {
		m := MustParse(verifySrc)
		corrupt(m)
		err := m.Verify()
		if err == nil {
			t.Fatalf("%s: corrupted module verified cleanly", label)
		}
		msg := err.Error()
		if prev, ok := seen[msg]; ok {
			t.Errorf("corruptions %s and %s produce the identical message %q", prev, label, msg)
		}
		seen[msg] = label
	}
}
