package ir

import "fmt"

// Builder provides a convenient API for emitting instructions into a
// function, one block at a time. All emit methods append to the current
// block; terminator methods seal it.
type Builder struct {
	F *Func
	B *Block
}

// NewBuilder returns a builder positioned at the function's entry
// block, creating one named "entry" if the function is empty.
func NewBuilder(f *Func) *Builder {
	b := &Builder{F: f}
	if len(f.Blocks) == 0 {
		b.B = f.NewBlock("entry")
	} else {
		b.B = f.Blocks[0]
	}
	return b
}

// Block creates a new block with the given name without switching to it.
func (bl *Builder) Block(name string) *Block { return bl.F.NewBlock(name) }

// SetBlock repositions the builder at block b.
func (bl *Builder) SetBlock(b *Block) { bl.B = b }

func (bl *Builder) emit(in Instr) Reg {
	if bl.B.Term.Kind != TermNone {
		panic(fmt.Sprintf("ir: emitting into terminated block %q in %q", bl.B.Name, bl.F.Name))
	}
	bl.B.Instrs = append(bl.B.Instrs, in)
	return in.Dst
}

// Mov emits Dst = imm and returns Dst.
func (bl *Builder) Mov(imm int64) Reg {
	return bl.emit(Instr{Op: OpMov, Dst: bl.F.NewReg(), Imm: imm, BImm: true})
}

// MovR emits Dst = a and returns Dst.
func (bl *Builder) MovR(a Reg) Reg {
	return bl.emit(Instr{Op: OpMov, Dst: bl.F.NewReg(), A: a})
}

// Assign emits dst = imm into an existing register.
func (bl *Builder) Assign(dst Reg, imm int64) {
	bl.emit(Instr{Op: OpMov, Dst: dst, Imm: imm, BImm: true})
}

// AssignR emits dst = a into an existing register.
func (bl *Builder) AssignR(dst, a Reg) {
	bl.emit(Instr{Op: OpMov, Dst: dst, A: a})
}

// Bin emits Dst = a op b and returns Dst.
func (bl *Builder) Bin(op Opcode, a, b Reg) Reg {
	if !op.IsBinary() {
		panic("ir: Bin requires a binary opcode, got " + op.String())
	}
	return bl.emit(Instr{Op: op, Dst: bl.F.NewReg(), A: a, B: b})
}

// BinI emits Dst = a op imm and returns Dst.
func (bl *Builder) BinI(op Opcode, a Reg, imm int64) Reg {
	if !op.IsBinary() {
		panic("ir: BinI requires a binary opcode, got " + op.String())
	}
	return bl.emit(Instr{Op: op, Dst: bl.F.NewReg(), A: a, Imm: imm, BImm: true})
}

// BinTo emits dst = a op b into an existing register.
func (bl *Builder) BinTo(dst Reg, op Opcode, a, b Reg) {
	bl.emit(Instr{Op: op, Dst: dst, A: a, B: b})
}

// BinToI emits dst = a op imm into an existing register.
func (bl *Builder) BinToI(dst Reg, op Opcode, a Reg, imm int64) {
	bl.emit(Instr{Op: op, Dst: dst, A: a, Imm: imm, BImm: true})
}

// Load emits Dst = Mem[base + off] and returns Dst. Pass NoReg as base
// for an absolute address.
func (bl *Builder) Load(base Reg, off int64) Reg {
	return bl.emit(Instr{Op: OpLoad, Dst: bl.F.NewReg(), A: base, Imm: off})
}

// Store emits Mem[base + off] = val. Pass NoReg as base for an absolute
// address.
func (bl *Builder) Store(base Reg, off int64, val Reg) {
	bl.emit(Instr{Op: OpStore, A: base, Imm: off, B: val})
}

// AtomicAdd emits Dst = Mem[base+off]; Mem[base+off] += val atomically.
func (bl *Builder) AtomicAdd(base Reg, off int64, val Reg) Reg {
	return bl.emit(Instr{Op: OpAtomicAdd, Dst: bl.F.NewReg(), A: base, Imm: off, B: val})
}

// Call emits Dst = callee(args...) and returns Dst.
func (bl *Builder) Call(callee string, args ...Reg) Reg {
	return bl.emit(Instr{Op: OpCall, Dst: bl.F.NewReg(), Callee: callee, Args: args})
}

// CallVoid emits callee(args...) discarding the return value.
func (bl *Builder) CallVoid(callee string, args ...Reg) {
	bl.emit(Instr{Op: OpCall, Dst: NoReg, Callee: callee, Args: args})
}

// ExtCall emits Dst = extern callee(args...) and returns Dst.
func (bl *Builder) ExtCall(callee string, args ...Reg) Reg {
	return bl.emit(Instr{Op: OpExtCall, Dst: bl.F.NewReg(), Callee: callee, Args: args})
}

// ReadCycles emits Dst = cycle counter and returns Dst.
func (bl *Builder) ReadCycles() Reg {
	return bl.emit(Instr{Op: OpReadCycles, Dst: bl.F.NewReg()})
}

// Jmp terminates the current block with an unconditional jump.
func (bl *Builder) Jmp(t *Block) {
	bl.B.Term = Terminator{Kind: TermJmp, Then: t, Cond: NoReg, Val: NoReg}
}

// Br terminates the current block with a conditional branch.
func (bl *Builder) Br(cond Reg, then, els *Block) {
	bl.B.Term = Terminator{Kind: TermBr, Cond: cond, Then: then, Else: els, Val: NoReg}
}

// Ret terminates the current block returning val (NoReg for void).
func (bl *Builder) Ret(val Reg) {
	bl.B.Term = Terminator{Kind: TermRet, Val: val, Cond: NoReg}
}

// CountedLoop emits a canonical counted loop
//
//	for i := from; i < to; i += step { body(i) }
//
// calling body with the builder positioned in the loop body block and
// the induction register. After CountedLoop returns, the builder is
// positioned in the exit block. from/to are registers; step must be a
// positive immediate.
func (bl *Builder) CountedLoop(from, to Reg, step int64, body func(i Reg)) {
	if step <= 0 {
		panic("ir: CountedLoop requires positive step")
	}
	head := bl.Block("loop.head")
	bodyB := bl.Block("loop.body")
	exit := bl.Block("loop.exit")

	i := bl.MovR(from)
	bl.Jmp(head)

	bl.SetBlock(head)
	c := bl.Bin(OpCmpLt, i, to)
	bl.Br(c, bodyB, exit)

	bl.SetBlock(bodyB)
	body(i)
	bl.BinToI(i, OpAdd, i, step)
	bl.Jmp(head)

	bl.SetBlock(exit)
}

// ConstLoop is CountedLoop with immediate bounds [0, n).
func (bl *Builder) ConstLoop(n int64, body func(i Reg)) {
	from := bl.Mov(0)
	to := bl.Mov(n)
	bl.CountedLoop(from, to, 1, body)
}
