package ir

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the module in the textual IR syntax accepted by Parse.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n", m.Name)
	if m.MemWords > 0 {
		fmt.Fprintf(&sb, "mem %d\n", m.MemWords)
	}
	imports := make([]string, 0, len(m.Imports))
	for name := range m.Imports {
		imports = append(imports, name)
	}
	sort.Strings(imports)
	for _, name := range imports {
		fmt.Fprintf(&sb, "import @%s\n", name)
	}
	names := make([]string, 0, len(m.Externs))
	for name := range m.Externs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := m.Externs[name]
		fmt.Fprintf(&sb, "extern @%s cost %d", e.Name, e.Cost)
		if e.Blocking {
			sb.WriteString(" blocking")
		}
		sb.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		sb.WriteByte('\n')
		f.write(&sb)
	}
	return sb.String()
}

// String renders a single function in textual IR syntax.
func (f *Func) String() string {
	var sb strings.Builder
	f.write(&sb)
	return sb.String()
}

func (f *Func) write(sb *strings.Builder) {
	fmt.Fprintf(sb, "func @%s(", f.Name)
	for i := 0; i < f.NumParams; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%%%d", i)
	}
	sb.WriteString(")")
	if f.NoInstrument {
		sb.WriteString(" noinstrument")
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "%s:\n", b.Name)
		for i := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(b.Instrs[i].String())
			sb.WriteByte('\n')
		}
		sb.WriteString("  ")
		sb.WriteString(b.Term.String())
		sb.WriteByte('\n')
	}
	sb.WriteString("}\n")
}

func regStr(r Reg) string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("%%%d", r)
}

// String renders one instruction in textual IR syntax.
func (in *Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpMov:
		if in.BImm {
			return fmt.Sprintf("%s = mov %d", regStr(in.Dst), in.Imm)
		}
		return fmt.Sprintf("%s = mov %s", regStr(in.Dst), regStr(in.A))
	case OpLoad:
		return fmt.Sprintf("%s = load %s, %d", regStr(in.Dst), regStr(in.A), in.Imm)
	case OpStore:
		return fmt.Sprintf("store %s, %d, %s", regStr(in.A), in.Imm, regStr(in.B))
	case OpAtomicAdd:
		return fmt.Sprintf("%s = aadd %s, %d, %s", regStr(in.Dst), regStr(in.A), in.Imm, regStr(in.B))
	case OpCall, OpExtCall:
		var args []string
		for _, a := range in.Args {
			args = append(args, regStr(a))
		}
		callee := fmt.Sprintf("%s @%s(%s)", in.Op, in.Callee, strings.Join(args, ", "))
		if in.Dst == NoReg {
			return callee
		}
		return fmt.Sprintf("%s = %s", regStr(in.Dst), callee)
	case OpReadCycles:
		return fmt.Sprintf("%s = rdcyc", regStr(in.Dst))
	case OpProbe:
		p := in.Probe
		s := fmt.Sprintf("probe %s %d", p.Kind, p.Inc)
		if p.Kind == ProbeIRLoop || p.Kind == ProbeCyclesLoop {
			s += fmt.Sprintf(" %s %s", regStr(p.IndVar), regStr(p.Base))
		}
		return s
	default:
		if in.Op.IsBinary() {
			if in.BImm {
				return fmt.Sprintf("%s = %s %s, %d", regStr(in.Dst), in.Op, regStr(in.A), in.Imm)
			}
			return fmt.Sprintf("%s = %s %s, %s", regStr(in.Dst), in.Op, regStr(in.A), regStr(in.B))
		}
		return fmt.Sprintf("?%s", in.Op)
	}
}

// String renders the terminator in textual IR syntax.
func (t *Terminator) String() string {
	switch t.Kind {
	case TermJmp:
		return fmt.Sprintf("jmp %s", t.Then.Name)
	case TermBr:
		return fmt.Sprintf("br %s, %s, %s", regStr(t.Cond), t.Then.Name, t.Else.Name)
	case TermRet:
		if t.Val == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret %s", regStr(t.Val))
	default:
		return "<unterminated>"
	}
}
