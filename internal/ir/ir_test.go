package ir

import (
	"strings"
	"testing"
)

func buildCountedLoopModule(t *testing.T, n int64) *Module {
	t.Helper()
	m := NewModule("test")
	m.MemWords = 64
	f := m.NewFunc("main", 0)
	b := NewBuilder(f)
	sum := b.Mov(0)
	b.ConstLoop(n, func(i Reg) {
		b.BinTo(sum, OpAdd, sum, i)
	})
	b.Ret(sum)
	f.Reindex()
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return m
}

func TestBuilderCountedLoop(t *testing.T) {
	m := buildCountedLoopModule(t, 10)
	f := m.FuncByName("main")
	if f == nil {
		t.Fatal("main not found")
	}
	if got := len(f.Blocks); got != 4 {
		t.Fatalf("blocks = %d, want 4 (entry, head, body, exit)", got)
	}
	if f.Entry().Name != "entry" {
		t.Errorf("entry block name = %q", f.Entry().Name)
	}
	// Entry ends in a jump to the loop head.
	if f.Entry().Term.Kind != TermJmp {
		t.Errorf("entry terminator = %v, want jmp", f.Entry().Term.Kind)
	}
	head := f.BlockByName("loop.head")
	if head == nil || head.Term.Kind != TermBr {
		t.Fatalf("loop.head missing or not a branch")
	}
}

func TestBlockSuccs(t *testing.T) {
	m := buildCountedLoopModule(t, 3)
	f := m.FuncByName("main")
	head := f.BlockByName("loop.head")
	succs := head.Succs(nil)
	if len(succs) != 2 {
		t.Fatalf("head succs = %d, want 2", len(succs))
	}
	if succs[0].Name != "loop.body" || succs[1].Name != "loop.exit" {
		t.Errorf("head succs = %s, %s", succs[0].Name, succs[1].Name)
	}
	exit := f.BlockByName("loop.exit")
	if got := exit.Succs(nil); len(got) != 0 {
		t.Errorf("ret block has %d succs, want 0", len(got))
	}
}

func TestNewBlockUniqueNames(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", 0)
	a := f.NewBlock("x")
	b := f.NewBlock("x")
	c := f.NewBlock("x")
	if a.Name == b.Name || b.Name == c.Name || a.Name == c.Name {
		t.Errorf("duplicate block names: %q %q %q", a.Name, b.Name, c.Name)
	}
}

func TestEmitIntoTerminatedBlockPanics(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", 0)
	b := NewBuilder(f)
	b.Ret(NoReg)
	defer func() {
		if recover() == nil {
			t.Error("expected panic when emitting into a terminated block")
		}
	}()
	b.Mov(1)
}

func TestCloneIsDeep(t *testing.T) {
	m := buildCountedLoopModule(t, 5)
	m.DeclareExtern("lib", 123)
	c := m.Clone()
	if err := c.Verify(); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	if c.String() != m.String() {
		t.Fatalf("clone differs from original:\n-- original --\n%s\n-- clone --\n%s", m, c)
	}
	// Mutating the clone must not affect the original.
	cf := c.FuncByName("main")
	cf.Blocks[0].Instrs[0].Imm = 999
	cf.NoInstrument = true
	c.Externs["lib"].Cost = 1
	if m.FuncByName("main").Blocks[0].Instrs[0].Imm == 999 {
		t.Error("instruction mutation leaked into original")
	}
	if m.FuncByName("main").NoInstrument {
		t.Error("attribute mutation leaked into original")
	}
	if m.Externs["lib"].Cost != 123 {
		t.Error("extern mutation leaked into original")
	}
	// Clone terminators must point at clone blocks, not originals.
	orig := make(map[*Block]bool)
	for _, b := range m.FuncByName("main").Blocks {
		orig[b] = true
	}
	for _, b := range cf.Blocks {
		if b.Term.Then != nil && orig[b.Term.Then] {
			t.Error("clone terminator points into original function")
		}
	}
}

func TestCloneCopiesProbes(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", 0)
	b := NewBuilder(f)
	entry := b.B
	entry.Instrs = append(entry.Instrs, Instr{Op: OpProbe, Dst: NoReg, A: NoReg, B: NoReg,
		Probe: &ProbeInfo{Kind: ProbeIR, Inc: 42, IndVar: NoReg, Base: NoReg}})
	b.Ret(NoReg)
	c := m.Clone()
	cp := c.FuncByName("f").Blocks[0].Instrs[0].Probe
	if cp == f.Blocks[0].Instrs[0].Probe {
		t.Fatal("probe info aliased between clone and original")
	}
	cp.Inc = 7
	if f.Blocks[0].Instrs[0].Probe.Inc != 42 {
		t.Error("probe mutation leaked into original")
	}
}

func TestNumInstrs(t *testing.T) {
	m := buildCountedLoopModule(t, 3)
	f := m.FuncByName("main")
	want := 0
	for _, b := range f.Blocks {
		want += len(b.Instrs) + 1
	}
	if got := f.NumInstrs(); got != want {
		t.Errorf("NumInstrs = %d, want %d", got, want)
	}
	if f.NumInstrs() < 7 {
		t.Errorf("NumInstrs = %d, suspiciously small for a loop", f.NumInstrs())
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Module
		want  string
	}{
		{
			name: "unterminated block",
			build: func() *Module {
				m := NewModule("t")
				f := m.NewFunc("f", 0)
				f.NewBlock("entry")
				return m
			},
			want: "lacks a terminator",
		},
		{
			name: "register out of range",
			build: func() *Module {
				m := NewModule("t")
				f := m.NewFunc("f", 0)
				b := f.NewBlock("entry")
				b.Instrs = append(b.Instrs, Instr{Op: OpMov, Dst: 5, BImm: true, A: NoReg, B: NoReg})
				b.Term = Terminator{Kind: TermRet, Val: NoReg, Cond: NoReg}
				return m
			},
			want: "out of range",
		},
		{
			name: "call to undefined function",
			build: func() *Module {
				m := NewModule("t")
				f := m.NewFunc("f", 0)
				b := NewBuilder(f)
				b.CallVoid("nosuch")
				b.Ret(NoReg)
				return m
			},
			want: "undefined function",
		},
		{
			name: "call arity mismatch",
			build: func() *Module {
				m := NewModule("t")
				g := m.NewFunc("g", 2)
				gb := NewBuilder(g)
				gb.Ret(NoReg)
				f := m.NewFunc("f", 0)
				b := NewBuilder(f)
				x := b.Mov(1)
				b.CallVoid("g", x)
				b.Ret(NoReg)
				return m
			},
			want: "want 2",
		},
		{
			name: "extcall to undeclared extern",
			build: func() *Module {
				m := NewModule("t")
				f := m.NewFunc("f", 0)
				b := NewBuilder(f)
				b.ExtCall("mystery")
				b.Ret(NoReg)
				return m
			},
			want: "undeclared extern",
		},
		{
			name: "branch without condition",
			build: func() *Module {
				m := NewModule("t")
				f := m.NewFunc("f", 0)
				e := f.NewBlock("entry")
				x := f.NewBlock("x")
				x.Term = Terminator{Kind: TermRet, Val: NoReg, Cond: NoReg}
				e.Term = Terminator{Kind: TermBr, Cond: NoReg, Then: x, Else: x, Val: NoReg}
				return m
			},
			want: "requires a condition",
		},
		{
			name: "duplicate function",
			build: func() *Module {
				m := NewModule("t")
				for i := 0; i < 2; i++ {
					f := m.NewFunc("f", 0)
					b := NewBuilder(f)
					b.Ret(NoReg)
				}
				return m
			},
			want: "duplicate function",
		},
		{
			name: "stale block index",
			build: func() *Module {
				m := NewModule("t")
				f := m.NewFunc("f", 0)
				b := NewBuilder(f)
				b.Ret(NoReg)
				f.Blocks[0].Index = 3
				return m
			},
			want: "stale index",
		},
		{
			name: "loop probe missing registers",
			build: func() *Module {
				m := NewModule("t")
				f := m.NewFunc("f", 0)
				e := f.NewBlock("entry")
				e.Instrs = append(e.Instrs, Instr{Op: OpProbe, Dst: NoReg, A: NoReg, B: NoReg,
					Probe: &ProbeInfo{Kind: ProbeIRLoop, Inc: 3, IndVar: NoReg, Base: NoReg}})
				e.Term = Terminator{Kind: TermRet, Val: NoReg, Cond: NoReg}
				return m
			},
			want: "loop probe requires",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Verify()
			if err == nil {
				t.Fatalf("Verify passed, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Verify error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op := Opcode(0); op < Opcode(NumOpcodes); op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if !OpAdd.IsBinary() || !OpMax.IsBinary() || !OpCmpGe.IsBinary() {
		t.Error("IsBinary misses arithmetic/compare opcodes")
	}
	if OpMov.IsBinary() || OpLoad.IsBinary() || OpProbe.IsBinary() {
		t.Error("IsBinary wrongly includes non-binary opcodes")
	}
}
