package ir

import (
	"errors"
	"fmt"
)

// Verify checks module-level structural invariants: every function
// verifies, call targets exist (function or extern), and block indices
// are consistent.
func (m *Module) Verify() error {
	var errs []error
	seen := make(map[string]bool)
	for _, f := range m.Funcs {
		if seen[f.Name] {
			errs = append(errs, fmt.Errorf("ir: duplicate function @%s", f.Name))
		}
		seen[f.Name] = true
		if err := f.Verify(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Verify checks function-level invariants: non-empty body, terminated
// blocks with in-function targets, consistent indices, register
// operands within NumRegs, and resolvable callees.
func (f *Func) Verify() error {
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("ir: @%s: "+format, append([]any{f.Name}, args...)...))
	}
	if len(f.Blocks) == 0 {
		fail("empty function body")
		return errors.Join(errs...)
	}
	if f.NumParams > f.NumRegs {
		fail("NumParams %d exceeds NumRegs %d", f.NumParams, f.NumRegs)
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	checkReg := func(b *Block, r Reg, what string) {
		if r == NoReg {
			return
		}
		if r < 0 || int(r) >= f.NumRegs {
			fail("block %q: %s register %d out of range [0,%d)", b.Name, what, r, f.NumRegs)
		}
	}
	for i, b := range f.Blocks {
		if b.Index != i {
			fail("block %q has stale index %d (want %d); call Reindex", b.Name, b.Index, i)
		}
		for j := range b.Instrs {
			in := &b.Instrs[j]
			switch in.Op {
			case OpNop:
			case OpMov:
				checkReg(b, in.Dst, "dst")
				if !in.BImm {
					checkReg(b, in.A, "src")
				}
			case OpLoad:
				checkReg(b, in.Dst, "dst")
				checkReg(b, in.A, "base")
			case OpStore:
				checkReg(b, in.A, "base")
				checkReg(b, in.B, "value")
				if in.B == NoReg {
					fail("block %q: store requires a value register", b.Name)
				}
			case OpAtomicAdd:
				checkReg(b, in.Dst, "dst")
				checkReg(b, in.A, "base")
				checkReg(b, in.B, "value")
			case OpCall:
				target := f.Mod.FuncByName(in.Callee)
				switch {
				case target != nil:
					if len(in.Args) != target.NumParams {
						fail("block %q: call @%s with %d args, want %d", b.Name, in.Callee, len(in.Args), target.NumParams)
					}
				case f.Mod.Imports[in.Callee]:
					// Cross-module call: arity checked at link time.
				default:
					fail("block %q: call to undefined function @%s", b.Name, in.Callee)
				}
				checkReg(b, in.Dst, "dst")
				for _, a := range in.Args {
					checkReg(b, a, "arg")
				}
			case OpExtCall:
				if _, ok := f.Mod.Externs[in.Callee]; !ok {
					fail("block %q: extcall to undeclared extern @%s", b.Name, in.Callee)
				}
				checkReg(b, in.Dst, "dst")
				for _, a := range in.Args {
					checkReg(b, a, "arg")
				}
			case OpReadCycles:
				checkReg(b, in.Dst, "dst")
			case OpProbe:
				if in.Probe == nil {
					fail("block %q: probe without ProbeInfo", b.Name)
					continue
				}
				if in.Probe.Kind == ProbeIRLoop || in.Probe.Kind == ProbeCyclesLoop {
					checkReg(b, in.Probe.IndVar, "probe indvar")
					checkReg(b, in.Probe.Base, "probe base")
					if in.Probe.IndVar == NoReg || in.Probe.Base == NoReg {
						fail("block %q: loop probe requires indvar and base registers", b.Name)
					}
				}
			default:
				if in.Op.IsBinary() {
					checkReg(b, in.Dst, "dst")
					checkReg(b, in.A, "lhs")
					if !in.BImm {
						checkReg(b, in.B, "rhs")
					}
				} else {
					fail("block %q: unknown opcode %d", b.Name, in.Op)
				}
			}
		}
		switch b.Term.Kind {
		case TermNone:
			fail("block %q lacks a terminator", b.Name)
		case TermJmp:
			if !inFunc[b.Term.Then] {
				fail("block %q jumps outside the function", b.Name)
			}
		case TermBr:
			checkReg(b, b.Term.Cond, "branch cond")
			if b.Term.Cond == NoReg {
				fail("block %q: br requires a condition register", b.Name)
			}
			if !inFunc[b.Term.Then] || !inFunc[b.Term.Else] {
				fail("block %q branches outside the function", b.Name)
			}
		case TermRet:
			checkReg(b, b.Term.Val, "return value")
		}
	}
	return errors.Join(errs...)
}
