package ir

import "fmt"

// Link merges separately built modules into one executable module: the
// §2.6 modular-compilation story's final step. Function and extern
// names must be unique across inputs; every imported function must be
// defined by one of the linked modules. The result uses the largest
// declared data-memory size. Input modules are not modified.
func Link(name string, mods ...*Module) (*Module, error) {
	out := NewModule(name)
	for _, m := range mods {
		c := m.Clone()
		for _, f := range c.Funcs {
			if out.FuncByName(f.Name) != nil {
				return nil, fmt.Errorf("ir: link: duplicate function @%s", f.Name)
			}
			f.Mod = out
			out.Funcs = append(out.Funcs, f)
		}
		for n, e := range c.Externs {
			if prev, ok := out.Externs[n]; ok {
				if prev.Cost != e.Cost || prev.Blocking != e.Blocking {
					return nil, fmt.Errorf("ir: link: conflicting extern @%s", n)
				}
				continue
			}
			out.Externs[n] = e
		}
		if c.MemWords > out.MemWords {
			out.MemWords = c.MemWords
		}
	}
	// All imports must now resolve to definitions.
	for _, m := range mods {
		for name := range m.Imports {
			if out.FuncByName(name) == nil {
				return nil, fmt.Errorf("ir: link: unresolved import @%s", name)
			}
		}
	}
	if err := out.Verify(); err != nil {
		return nil, fmt.Errorf("ir: link: %w", err)
	}
	return out, nil
}
