// Package ir defines the intermediate representation that the Compiler
// Interrupts pipeline analyzes, transforms and instruments.
//
// The IR is a small register machine, deliberately LLVM-flavored but
// non-SSA: each function owns a set of int64 virtual registers (function
// parameters occupy registers 0..NumParams-1), organized into basic
// blocks ending in explicit terminators. Memory is a flat, module-wide
// array of int64 words shared by all threads of a VM run.
//
// The package provides the core types, a Builder for programmatic
// construction, a textual parser and printer (see parse.go, print.go),
// and a structural verifier (verify.go).
package ir

import "fmt"

// Reg identifies a virtual register within a function. Parameters are
// registers 0..NumParams-1. NoReg marks an absent operand.
type Reg int32

// NoReg is the sentinel for "no register" (e.g. a void return value).
const NoReg Reg = -1

// Opcode enumerates IR instructions.
type Opcode uint8

// Instruction opcodes. Binary operations compute Dst = A op B, where the
// B operand is the immediate Imm when BImm is set.
const (
	OpNop Opcode = iota
	// OpMov copies A (or Imm when BImm) into Dst.
	OpMov
	OpAdd
	OpSub
	OpMul
	OpDiv // signed; division by zero yields 0 in the VM
	OpRem // signed; remainder by zero yields 0 in the VM
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	// Comparisons produce 0 or 1 in Dst. All are signed.
	OpCmpEq
	OpCmpNe
	OpCmpLt
	OpCmpLe
	OpCmpGt
	OpCmpGe
	// OpMin/OpMax are used by the loop transform (§3.4) to bound inner
	// trip counts: Dst = min/max(A, B|Imm).
	OpMin
	OpMax
	// OpLoad reads Dst = Mem[A + Imm]; with A == NoReg the address is
	// the absolute word offset Imm.
	OpLoad
	// OpStore writes Mem[A + Imm] = B; with A == NoReg the address is
	// absolute.
	OpStore
	// OpAtomicAdd performs Dst = Mem[A+Imm]; Mem[A+Imm] += B atomically
	// with respect to other VM threads.
	OpAtomicAdd
	// OpCall invokes Callee (a function in the same module) with Args;
	// the callee's return value lands in Dst (NoReg discards it).
	OpCall
	// OpExtCall invokes an uninstrumented external function declared in
	// the module's extern table. The VM charges its declared cost; the
	// compiler cannot see inside it (it models it as ExternCostIR).
	OpExtCall
	// OpReadCycles reads the virtual cycle counter into Dst (the
	// llvm.readcyclecounter intrinsic of the paper).
	OpReadCycles
	// OpProbe is inserted by the instrumentation phase (§4); its
	// behaviour is described by the attached ProbeInfo.
	OpProbe
	numOpcodes
)

// NumOpcodes is the number of defined opcodes (for cost tables).
const NumOpcodes = int(numOpcodes)

var opNames = [...]string{
	OpNop: "nop", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpCmpEq: "eq", OpCmpNe: "ne",
	OpCmpLt: "lt", OpCmpLe: "le", OpCmpGt: "gt", OpCmpGe: "ge",
	OpMin: "min", OpMax: "max", OpLoad: "load", OpStore: "store",
	OpAtomicAdd: "aadd", OpCall: "call", OpExtCall: "extcall",
	OpReadCycles: "rdcyc", OpProbe: "probe",
}

// String returns the mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsBinary reports whether op is a two-operand arithmetic, logic,
// comparison, or min/max operation.
func (op Opcode) IsBinary() bool {
	return op >= OpAdd && op <= OpMax
}

// ProbeKind distinguishes the probe designs of §4 and §5.4.
type ProbeKind uint8

const (
	// ProbeIR is the pure-IR probe (design "CI", Table 3): add Inc to
	// the thread-local instruction counter and fire handlers when it
	// passes the next-interrupt threshold.
	ProbeIR ProbeKind = iota
	// ProbeIRLoop is the §3.4 loop-transform probe: the increment is
	// (IndVar - Base) * Inc, computed from the induction variable.
	ProbeIRLoop
	// ProbeCycles is the IR-gated cycle-counter probe ("CI-Cycles"):
	// advance the IR count by Inc; when it passes the gate, read the
	// cycle counter and fire if the cycle interval has elapsed.
	ProbeCycles
	// ProbeCyclesLoop combines ProbeIRLoop accounting with the
	// cycle-counter gate.
	ProbeCyclesLoop
	// ProbeEvent counts discrete events ("CnB": calls and back-edges);
	// handlers fire every threshold events.
	ProbeEvent
	// ProbeEventCycles reads the cycle counter on every event
	// ("CnB-Cycles").
	ProbeEventCycles
)

var probeKindNames = [...]string{
	ProbeIR: "ir", ProbeIRLoop: "irloop", ProbeCycles: "cycles",
	ProbeCyclesLoop: "cyclesloop", ProbeEvent: "event",
	ProbeEventCycles: "eventcycles",
}

// String returns the probe kind name used by the printer.
func (k ProbeKind) String() string {
	if int(k) < len(probeKindNames) {
		return probeKindNames[k]
	}
	return fmt.Sprintf("probekind(%d)", uint8(k))
}

// ProbeInfo describes an instrumentation probe attached to an OpProbe
// instruction.
type ProbeInfo struct {
	Kind ProbeKind
	// Inc is the statically computed IR-instruction increment (for
	// ProbeIR*), the per-iteration body cost (for Probe*Loop), or the
	// event weight (for ProbeEvent*).
	Inc int64
	// IndVar and Base are the loop-transform registers: the increment
	// contributed is (IndVar - Base) * Inc.
	IndVar Reg
	Base   Reg
}

// Instr is a single IR instruction.
//
// Operand conventions:
//   - binary ops:    Dst = A op (BImm ? Imm : B)
//   - OpMov:         Dst = (BImm ? Imm : A)
//   - OpLoad:        Dst = Mem[A + Imm]        (A may be NoReg)
//   - OpStore:       Mem[A + Imm] = B          (A may be NoReg)
//   - OpAtomicAdd:   Dst = Mem[A+Imm]; Mem[A+Imm] += B
//   - OpCall/OpExtCall: Dst = Callee(Args...)
//   - OpProbe:       see Probe
type Instr struct {
	Op     Opcode
	Dst    Reg
	A, B   Reg
	Imm    int64
	BImm   bool
	Callee string
	Args   []Reg
	Probe  *ProbeInfo
}

// TermKind enumerates block terminators.
type TermKind uint8

const (
	// TermNone marks an unterminated block (invalid in a verified
	// function).
	TermNone TermKind = iota
	// TermJmp is an unconditional jump to Then.
	TermJmp
	// TermBr branches to Then when Cond != 0, else to Else.
	TermBr
	// TermRet returns Val (NoReg for void) from the function.
	TermRet
)

// Terminator ends a basic block.
type Terminator struct {
	Kind       TermKind
	Cond       Reg
	Then, Else *Block
	Val        Reg
}

// Block is a basic block: a run of instructions ended by a terminator.
type Block struct {
	Name   string
	Instrs []Instr
	Term   Terminator
	// Index is the block's position in Func.Blocks; it is maintained by
	// Func.Reindex and used as a dense key by analyses.
	Index int
}

// Succs appends the block's successor blocks to dst and returns it.
func (b *Block) Succs(dst []*Block) []*Block {
	switch b.Term.Kind {
	case TermJmp:
		dst = append(dst, b.Term.Then)
	case TermBr:
		dst = append(dst, b.Term.Then, b.Term.Else)
	}
	return dst
}

// Func is an IR function.
type Func struct {
	Name      string
	NumParams int
	// NumRegs is the number of virtual registers allocated, including
	// parameters. Grows via NewReg.
	NumRegs int
	// Blocks holds the function body; Blocks[0] is the entry block.
	Blocks []*Block
	// NoInstrument corresponds to "#pragma ci_probe disable": the
	// instrumentation phase must not add probes to this function.
	NoInstrument bool
	// Mod is the owning module.
	Mod *Module
}

// Entry returns the function's entry block, or nil for an empty body.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// NewBlock appends a new, empty, unterminated block with the given name
// (made unique if needed) and returns it.
func (f *Func) NewBlock(name string) *Block {
	if name == "" {
		name = fmt.Sprintf("b%d", len(f.Blocks))
	}
	if f.blockByName(name) != nil {
		base := name
		for i := 1; ; i++ {
			name = fmt.Sprintf("%s.%d", base, i)
			if f.blockByName(name) == nil {
				break
			}
		}
	}
	b := &Block{Name: name, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

func (f *Func) blockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// BlockByName returns the block with the given name, or nil.
func (f *Func) BlockByName(name string) *Block { return f.blockByName(name) }

// Reindex renumbers Block.Index to match slice positions. Transforms
// that add, remove or reorder blocks must call it before analyses run.
func (f *Func) Reindex() {
	for i, b := range f.Blocks {
		b.Index = i
	}
}

// NumInstrs returns the total instruction count across all blocks
// (terminators count as one instruction each, as in LLVM IR).
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs) + 1
	}
	return n
}

// Extern declares an external, uninstrumented function (a stand-in for
// a C library function or a system call). Its Cost is what the VM
// charges per call; the compiler never sees it and must model such
// calls heuristically (§4: 100 IR instructions).
type Extern struct {
	Name string
	// Cost is the VM cycle cost of one call.
	Cost int64
	// Blocking marks calls during which the thread is suspended (e.g.
	// a blocking system call); interval-accuracy statistics attribute
	// the whole cost to one uninstrumentable gap either way, but
	// blocking calls additionally defer pending hardware interrupts.
	Blocking bool
}

// Module is a compilation unit: functions plus extern declarations and
// a flat data-memory size.
type Module struct {
	Name  string
	Funcs []*Func
	// Externs maps extern name to its declaration.
	Externs map[string]*Extern
	// Imports names functions defined in other build units (§2.6
	// modular compilation): calls to them verify here and resolve at
	// link time (ir.Link).
	Imports map[string]bool
	// MemWords is the size, in int64 words, of the module's flat data
	// memory.
	MemWords int64
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, Externs: make(map[string]*Extern), Imports: make(map[string]bool)}
}

// DeclareImport registers a cross-module function import.
func (m *Module) DeclareImport(name string) { m.Imports[name] = true }

// NewFunc creates a function with the given name and parameter count
// and adds it to the module.
func (m *Module) NewFunc(name string, numParams int) *Func {
	f := &Func{Name: name, NumParams: numParams, NumRegs: numParams, Mod: m}
	m.Funcs = append(m.Funcs, f)
	return f
}

// FuncByName returns the named function, or nil.
func (m *Module) FuncByName(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// DeclareExtern registers an external function with the given VM cost.
func (m *Module) DeclareExtern(name string, cost int64) *Extern {
	e := &Extern{Name: name, Cost: cost}
	m.Externs[name] = e
	return e
}

// Clone returns a deep copy of the module. Instrumentation operates on
// clones so one parsed/built program can be compiled under many
// configurations.
func (m *Module) Clone() *Module {
	nm := NewModule(m.Name)
	nm.MemWords = m.MemWords
	for name, e := range m.Externs {
		c := *e
		nm.Externs[name] = &c
	}
	for name := range m.Imports {
		nm.Imports[name] = true
	}
	for _, f := range m.Funcs {
		nf := nm.NewFunc(f.Name, f.NumParams)
		nf.NumRegs = f.NumRegs
		nf.NoInstrument = f.NoInstrument
		// First create all blocks so terminators can point at them.
		for _, b := range f.Blocks {
			nb := nf.NewBlock(b.Name)
			nb.Instrs = make([]Instr, len(b.Instrs))
			for i, ins := range b.Instrs {
				ci := ins
				if ins.Args != nil {
					ci.Args = append([]Reg(nil), ins.Args...)
				}
				if ins.Probe != nil {
					p := *ins.Probe
					ci.Probe = &p
				}
				nb.Instrs[i] = ci
			}
		}
		for i, b := range f.Blocks {
			nb := nf.Blocks[i]
			nb.Term = b.Term
			if b.Term.Then != nil {
				nb.Term.Then = nf.Blocks[b.Term.Then.Index]
			}
			if b.Term.Else != nil {
				nb.Term.Else = nf.Blocks[b.Term.Else.Index]
			}
		}
		nf.Reindex()
	}
	return nm
}
