package ir

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntax or semantic error with its source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ir: parse error at line %d: %s", e.Line, e.Msg)
}

type parser struct {
	mod  *Module
	line int

	// per-function state
	fn      *Func
	regs    map[string]Reg
	cur     *Block
	pending []pendingTerm
}

type pendingTerm struct {
	line  int
	block *Block
	kind  TermKind
	cond  Reg
	val   Reg
	then  string
	els   string
}

// Parse reads a module in the textual IR syntax produced by
// Module.String. The result is verified before being returned.
func Parse(src string) (*Module, error) {
	p := &parser{mod: NewModule("m")}
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		p.line++
		if err := p.parseLine(sc.Text()); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.fn != nil {
		return nil, p.errf("missing closing '}' for func @%s", p.fn.Name)
	}
	if err := p.mod.Verify(); err != nil {
		return nil, err
	}
	return p.mod, nil
}

// MustParse is Parse that panics on error; for tests and fixed programs.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func tokenize(line string) []string {
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		line = line[:i]
	}
	r := strings.NewReplacer("(", " ", ")", " ", ",", " ", "=", " = ")
	return strings.Fields(r.Replace(line))
}

func (p *parser) parseLine(raw string) error {
	toks := tokenize(raw)
	if len(toks) == 0 {
		return nil
	}
	if p.fn == nil {
		return p.parseTopLevel(toks)
	}
	return p.parseBody(toks)
}

func (p *parser) parseTopLevel(toks []string) error {
	switch toks[0] {
	case "module":
		if len(toks) != 2 {
			return p.errf("usage: module <name>")
		}
		p.mod.Name = toks[1]
	case "mem":
		if len(toks) != 2 {
			return p.errf("usage: mem <words>")
		}
		n, err := strconv.ParseInt(toks[1], 10, 64)
		if err != nil || n < 0 {
			return p.errf("bad memory size %q", toks[1])
		}
		p.mod.MemWords = n
	case "import":
		if len(toks) != 2 || !strings.HasPrefix(toks[1], "@") {
			return p.errf("usage: import @name")
		}
		p.mod.DeclareImport(toks[1][1:])
	case "extern":
		// extern @name cost N [blocking]
		if len(toks) < 4 || toks[2] != "cost" || !strings.HasPrefix(toks[1], "@") {
			return p.errf("usage: extern @name cost <n> [blocking]")
		}
		cost, err := strconv.ParseInt(toks[3], 10, 64)
		if err != nil || cost < 0 {
			return p.errf("bad extern cost %q", toks[3])
		}
		e := p.mod.DeclareExtern(toks[1][1:], cost)
		if len(toks) == 5 && toks[4] == "blocking" {
			e.Blocking = true
		} else if len(toks) > 4 {
			return p.errf("unexpected tokens after extern declaration")
		}
	case "func":
		return p.parseFuncHeader(toks)
	default:
		return p.errf("unexpected token %q at top level", toks[0])
	}
	return nil
}

func (p *parser) parseFuncHeader(toks []string) error {
	// func @name %a %b ... [noinstrument] {
	if len(toks) < 3 || !strings.HasPrefix(toks[1], "@") || toks[len(toks)-1] != "{" {
		return p.errf("usage: func @name(%%p0, ...) [noinstrument] {")
	}
	name := toks[1][1:]
	if p.mod.FuncByName(name) != nil {
		return p.errf("duplicate function @%s", name)
	}
	body := toks[2 : len(toks)-1]
	noInstr := false
	if n := len(body); n > 0 && body[n-1] == "noinstrument" {
		noInstr = true
		body = body[:n-1]
	}
	p.fn = p.mod.NewFunc(name, len(body))
	p.fn.NoInstrument = noInstr
	p.regs = make(map[string]Reg)
	p.cur = nil
	p.pending = nil
	for i, t := range body {
		if !strings.HasPrefix(t, "%") {
			return p.errf("bad parameter %q", t)
		}
		p.regs[t[1:]] = Reg(i)
	}
	return nil
}

// reg resolves a register token (%name or %number or _), allocating
// registers for new names.
func (p *parser) reg(tok string) (Reg, error) {
	if tok == "_" {
		return NoReg, nil
	}
	if !strings.HasPrefix(tok, "%") {
		return NoReg, p.errf("expected register, got %q", tok)
	}
	name := tok[1:]
	if n, err := strconv.Atoi(name); err == nil {
		for Reg(n) >= Reg(p.fn.NumRegs) {
			p.fn.NewReg()
		}
		return Reg(n), nil
	}
	if r, ok := p.regs[name]; ok {
		return r, nil
	}
	r := p.fn.NewReg()
	p.regs[name] = r
	return r, nil
}

// regOrImm resolves a token to either a register or an immediate.
func (p *parser) regOrImm(tok string) (r Reg, imm int64, isImm bool, err error) {
	if strings.HasPrefix(tok, "%") || tok == "_" {
		r, err = p.reg(tok)
		return r, 0, false, err
	}
	imm, perr := strconv.ParseInt(tok, 10, 64)
	if perr != nil {
		return NoReg, 0, false, p.errf("expected register or immediate, got %q", tok)
	}
	return NoReg, imm, true, nil
}

func (p *parser) imm(tok string) (int64, error) {
	v, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return 0, p.errf("expected immediate, got %q", tok)
	}
	return v, nil
}

var opcodeByName = func() map[string]Opcode {
	m := make(map[string]Opcode)
	for op := Opcode(0); op < Opcode(NumOpcodes); op++ {
		m[op.String()] = op
	}
	return m
}()

var probeKindByName = func() map[string]ProbeKind {
	m := make(map[string]ProbeKind)
	for k := ProbeIR; k <= ProbeEventCycles; k++ {
		m[k.String()] = k
	}
	return m
}()

func (p *parser) parseBody(toks []string) error {
	if toks[0] == "}" {
		if len(p.fn.Blocks) == 0 {
			return p.errf("function @%s has no blocks", p.fn.Name)
		}
		if err := p.resolveTerms(); err != nil {
			return err
		}
		p.fn.Reindex()
		p.fn = nil
		return nil
	}
	// Block label?
	if len(toks) == 1 && strings.HasSuffix(toks[0], ":") {
		name := strings.TrimSuffix(toks[0], ":")
		if p.fn.blockByName(name) != nil {
			return p.errf("duplicate block label %q", name)
		}
		p.cur = p.fn.NewBlock(name)
		return nil
	}
	if p.cur == nil {
		return p.errf("instruction before any block label")
	}
	if p.cur.Term.Kind != TermNone {
		// The terminator was recorded pending; real terminators are
		// resolved at '}', so Term.Kind stays TermNone until then.
		return p.errf("instruction after terminator in block %q", p.cur.Name)
	}
	return p.parseInstrOrTerm(toks)
}

func (p *parser) haveTerm(b *Block) bool {
	for _, pt := range p.pending {
		if pt.block == b {
			return true
		}
	}
	return false
}

func (p *parser) parseInstrOrTerm(toks []string) error {
	if p.haveTerm(p.cur) {
		return p.errf("instruction after terminator in block %q", p.cur.Name)
	}
	switch toks[0] {
	case "jmp":
		if len(toks) != 2 {
			return p.errf("usage: jmp <label>")
		}
		p.pending = append(p.pending, pendingTerm{line: p.line, block: p.cur, kind: TermJmp, then: toks[1], cond: NoReg, val: NoReg})
		return nil
	case "br":
		if len(toks) != 4 {
			return p.errf("usage: br %%cond, <then>, <else>")
		}
		c, err := p.reg(toks[1])
		if err != nil {
			return err
		}
		p.pending = append(p.pending, pendingTerm{line: p.line, block: p.cur, kind: TermBr, cond: c, then: toks[2], els: toks[3], val: NoReg})
		return nil
	case "ret":
		val := NoReg
		if len(toks) == 2 {
			v, err := p.reg(toks[1])
			if err != nil {
				return err
			}
			val = v
		} else if len(toks) > 2 {
			return p.errf("usage: ret [%%val]")
		}
		p.pending = append(p.pending, pendingTerm{line: p.line, block: p.cur, kind: TermRet, val: val, cond: NoReg})
		return nil
	}
	in, err := p.parseInstr(toks)
	if err != nil {
		return err
	}
	p.cur.Instrs = append(p.cur.Instrs, in)
	return nil
}

func (p *parser) parseInstr(toks []string) (Instr, error) {
	var dst Reg = NoReg
	if len(toks) >= 2 && toks[1] == "=" {
		d, err := p.reg(toks[0])
		if err != nil {
			return Instr{}, err
		}
		dst = d
		toks = toks[2:]
		if len(toks) == 0 {
			return Instr{}, p.errf("missing opcode after '='")
		}
	}
	opName := toks[0]
	args := toks[1:]
	op, ok := opcodeByName[opName]
	if !ok {
		return Instr{}, p.errf("unknown opcode %q", opName)
	}
	switch {
	case op == OpNop:
		return Instr{Op: OpNop, Dst: NoReg, A: NoReg, B: NoReg}, nil
	case op == OpMov:
		if len(args) != 1 {
			return Instr{}, p.errf("usage: %%d = mov <reg|imm>")
		}
		r, imm, isImm, err := p.regOrImm(args[0])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpMov, Dst: dst, A: r, B: NoReg, Imm: imm, BImm: isImm}, nil
	case op.IsBinary():
		if len(args) != 2 {
			return Instr{}, p.errf("usage: %%d = %s %%a, <reg|imm>", opName)
		}
		a, err := p.reg(args[0])
		if err != nil {
			return Instr{}, err
		}
		b, imm, isImm, err := p.regOrImm(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: op, Dst: dst, A: a, B: b, Imm: imm, BImm: isImm}, nil
	case op == OpLoad:
		if len(args) != 2 {
			return Instr{}, p.errf("usage: %%d = load <base|_>, <off>")
		}
		a, err := p.reg(args[0])
		if err != nil {
			return Instr{}, err
		}
		off, err := p.imm(args[1])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpLoad, Dst: dst, A: a, B: NoReg, Imm: off}, nil
	case op == OpStore:
		if len(args) != 3 {
			return Instr{}, p.errf("usage: store <base|_>, <off>, %%val")
		}
		a, err := p.reg(args[0])
		if err != nil {
			return Instr{}, err
		}
		off, err := p.imm(args[1])
		if err != nil {
			return Instr{}, err
		}
		v, err := p.reg(args[2])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpStore, Dst: NoReg, A: a, B: v, Imm: off}, nil
	case op == OpAtomicAdd:
		if len(args) != 3 {
			return Instr{}, p.errf("usage: %%d = aadd <base|_>, <off>, %%val")
		}
		a, err := p.reg(args[0])
		if err != nil {
			return Instr{}, err
		}
		off, err := p.imm(args[1])
		if err != nil {
			return Instr{}, err
		}
		v, err := p.reg(args[2])
		if err != nil {
			return Instr{}, err
		}
		return Instr{Op: OpAtomicAdd, Dst: dst, A: a, B: v, Imm: off}, nil
	case op == OpCall || op == OpExtCall:
		if len(args) < 1 || !strings.HasPrefix(args[0], "@") {
			return Instr{}, p.errf("usage: [%%d =] %s @name(args...)", opName)
		}
		callee := args[0][1:]
		var regs []Reg
		for _, t := range args[1:] {
			r, err := p.reg(t)
			if err != nil {
				return Instr{}, err
			}
			regs = append(regs, r)
		}
		return Instr{Op: op, Dst: dst, A: NoReg, B: NoReg, Callee: callee, Args: regs}, nil
	case op == OpReadCycles:
		if len(args) != 0 {
			return Instr{}, p.errf("usage: %%d = rdcyc")
		}
		return Instr{Op: OpReadCycles, Dst: dst, A: NoReg, B: NoReg}, nil
	case op == OpProbe:
		if len(args) < 2 {
			return Instr{}, p.errf("usage: probe <kind> <inc> [%%ind %%base]")
		}
		kind, ok := probeKindByName[args[0]]
		if !ok {
			return Instr{}, p.errf("unknown probe kind %q", args[0])
		}
		inc, err := p.imm(args[1])
		if err != nil {
			return Instr{}, err
		}
		pi := &ProbeInfo{Kind: kind, Inc: inc, IndVar: NoReg, Base: NoReg}
		if kind == ProbeIRLoop || kind == ProbeCyclesLoop {
			if len(args) != 4 {
				return Instr{}, p.errf("loop probe requires %%ind and %%base")
			}
			if pi.IndVar, err = p.reg(args[2]); err != nil {
				return Instr{}, err
			}
			if pi.Base, err = p.reg(args[3]); err != nil {
				return Instr{}, err
			}
		} else if len(args) != 2 {
			return Instr{}, p.errf("usage: probe <kind> <inc>")
		}
		return Instr{Op: OpProbe, Dst: NoReg, A: NoReg, B: NoReg, Probe: pi}, nil
	}
	return Instr{}, p.errf("unhandled opcode %q", opName)
}

func (p *parser) resolveTerms() error {
	terminated := make(map[*Block]bool)
	for _, pt := range p.pending {
		t := Terminator{Kind: pt.kind, Cond: pt.cond, Val: pt.val}
		switch pt.kind {
		case TermJmp, TermBr:
			t.Then = p.fn.blockByName(pt.then)
			if t.Then == nil {
				p.line = pt.line
				return p.errf("unknown block label %q", pt.then)
			}
			if pt.kind == TermBr {
				t.Else = p.fn.blockByName(pt.els)
				if t.Else == nil {
					p.line = pt.line
					return p.errf("unknown block label %q", pt.els)
				}
			}
		}
		pt.block.Term = t
		terminated[pt.block] = true
	}
	for _, b := range p.fn.Blocks {
		if !terminated[b] {
			return p.errf("block %q in @%s lacks a terminator", b.Name, p.fn.Name)
		}
	}
	return nil
}
