// Compiled execution tier: pre-decodes ir.Module functions into
// closure-threaded code — a flat []op instruction stream per function,
// dispatched as `for pc >= 0 { pc = code[pc](fr) }` — with the common
// instruction pairs the corpus exhibits fused into superinstructions
// (compare+branch, load+arith, arith+store) and the untaken-probe
// check specialized down to a single counter compare
// (ciruntime.ProbeIRDue / ProbeCyclesDue).
//
// The tier is cycle-exact with the interpreter: every Stats field
// (Cycles, Instrs, Probes, fires, cycle reads) matches bit for bit at
// every observation point. The rules that make that hold:
//
//   - Only "simple" ops (mov and the binary ALU group) are
//     batch-charged, at segment start; they cannot fault, observe, or
//     reach the CI runtime, so no observation point can see a partial
//     segment.
//   - Every op that can fault or observe (memory ops, call, extcall,
//     rdcyc, probe) charges in exact interpreter order, including the
//     one rand() draw per memory op that feeds the cache-miss model.
//   - Fused pairs preserve the interpreter's interleaving of charges,
//     fault checks and observer calls; fusion only removes dispatch.
//
// Deopt rules: a thread with an OnProbe hook (forced-fire schedules),
// an attached trace, or an enabled obs scope falls back to the
// interpreter at Run/CallHandler entry — those surfaces observe
// per-instruction state the fast path does not materialize. The
// OnStore/OnLoad/OnAtomic observers are supported natively (nil-checked
// on memory ops only), so the differential oracle compares real
// compiled execution, not a deopt shadow.
package vm

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/ir"
)

// Tier selects a VM execution engine.
type Tier int

const (
	// TierInterpreter is the switch-dispatch interpreter — the default
	// and the reference semantics.
	TierInterpreter Tier = iota
	// TierCompiled is the closure-threaded compiled tier.
	TierCompiled
)

// String returns the CLI spelling of the tier.
func (t Tier) String() string {
	if t == TierCompiled {
		return "compiled"
	}
	return "interpreter"
}

// ParseTier resolves a -tier flag value (case-insensitive).
func ParseTier(s string) (Tier, error) {
	switch strings.ToLower(s) {
	case "", "interp", "interpreter":
		return TierInterpreter, nil
	case "compiled":
		return TierCompiled, nil
	}
	return 0, fmt.Errorf("vm: unknown tier %q (want interpreter or compiled)", s)
}

// MiscompileForTest, when set before a VM first compiles its module,
// makes fused compare+branch epilogues skip the terminator cycle
// charge — a deliberate cycle-only miscompile (memory and control flow
// stay correct). The tier-differential harness uses it to prove the
// stat-parity oracle catches pure cycle drift and to exercise the
// ddmin shrinker. Never set outside tests.
var MiscompileForTest bool

// op is one compiled instruction unit: execute against the frame and
// return the next pc, or -1 to stop (return or error — fr.err
// distinguishes).
type op func(fr *frame) int

// frame is a compiled activation record. Frames live in the thread's
// depth-indexed pool so steady-state execution is allocation-free.
type frame struct {
	t    *Thread
	regs []int64
	ret  int64
	err  error
}

// cfunc is one compiled function.
type cfunc struct {
	name      string
	numParams int
	numRegs   int
	// zeroRegs is the entry live-in set (see liveInRegs): the only
	// registers pushFrame must zero when recycling a pooled frame.
	zeroRegs []int32
	code     []op
}

// compiledModule caches the compiled form of a module; built at most
// once per VM (under VM.compileOnce), shared by all threads. Closures
// capture only immutable compile-time state (cost constants, IR
// metadata, callee pointers) and reach all mutable state through the
// frame's thread, so concurrent threads are safe.
type compiledModule struct {
	funcs map[string]*cfunc
}

// compiledMod returns the module's compiled form, building it on first
// use.
func (vm *VM) compiledMod() *compiledModule {
	vm.compileOnce.Do(func() { vm.compiled = compileModule(vm.Mod, vm.Model) })
	return vm.compiled
}

// unitKind classifies one compiled unit (possibly a fused pair).
type unitKind uint8

const (
	uSimple unitKind = iota // mov or binary ALU: batchable
	uLoad
	uStore
	uAtomic
	uCall
	uExtCall
	uReadCycles
	uProbe
	uLoadArith  // superinstruction: load feeding the next ALU op
	uArithStore // superinstruction: ALU op feeding the next store's value
	uBad        // unknown opcode: charges, then errors (interpreter parity)
)

// unit is one dispatch slot before emission: the primary instruction
// and, for fused kinds, the consumed second instruction.
type unit struct {
	kind unitKind
	a    *ir.Instr
	b    *ir.Instr
}

// selectUnits groups a block's instructions into compiled units,
// applying the superinstruction fusion rules greedily left to right,
// and returns the compare instruction to fuse into the branch epilogue
// (nil when the terminator is not fusable). Nops are dropped entirely
// (the interpreter never counts them) and do not break fusion.
func selectUnits(b *ir.Block) ([]unit, *ir.Instr) {
	var units []unit
	ins := b.Instrs
	for i := 0; i < len(ins); {
		if ins[i].Op == ir.OpNop {
			i++
			continue
		}
		in := &ins[i]
		j := i + 1
		for j < len(ins) && ins[j].Op == ir.OpNop {
			j++
		}
		var nx *ir.Instr
		if j < len(ins) {
			nx = &ins[j]
		}
		switch {
		case in.Op == ir.OpLoad && nx != nil && nx.Op.IsBinary() && in.Dst != ir.NoReg &&
			(nx.A == in.Dst || (!nx.BImm && nx.B == in.Dst)):
			units = append(units, unit{kind: uLoadArith, a: in, b: nx})
			i = j + 1
			continue
		case in.Op.IsBinary() && nx != nil && nx.Op == ir.OpStore && nx.B == in.Dst:
			units = append(units, unit{kind: uArithStore, a: in, b: nx})
			i = j + 1
			continue
		}
		switch {
		case in.Op == ir.OpMov || in.Op.IsBinary():
			units = append(units, unit{kind: uSimple, a: in})
		case in.Op == ir.OpLoad:
			units = append(units, unit{kind: uLoad, a: in})
		case in.Op == ir.OpStore:
			units = append(units, unit{kind: uStore, a: in})
		case in.Op == ir.OpAtomicAdd:
			units = append(units, unit{kind: uAtomic, a: in})
		case in.Op == ir.OpCall:
			units = append(units, unit{kind: uCall, a: in})
		case in.Op == ir.OpExtCall:
			units = append(units, unit{kind: uExtCall, a: in})
		case in.Op == ir.OpReadCycles:
			units = append(units, unit{kind: uReadCycles, a: in})
		case in.Op == ir.OpProbe:
			units = append(units, unit{kind: uProbe, a: in})
		default:
			units = append(units, unit{kind: uBad, a: in})
		}
		i = j
	}
	if b.Term.Kind == ir.TermBr && len(units) > 0 {
		last := units[len(units)-1]
		if last.kind == uSimple && last.a.Op >= ir.OpCmpEq && last.a.Op <= ir.OpCmpGe &&
			last.a.Dst == b.Term.Cond {
			return units[:len(units)-1], last.a
		}
	}
	return units, nil
}

// FusiblePairs counts, per superinstruction kind, how many pairs the
// compiled tier fuses across the module: compare+branch epilogues,
// load+arith, and arith+store. The fuzz corpus's generation-coverage
// assertion uses it to guarantee the differential oracle exercises
// every fused path rather than vacuously passing on unfused code.
func FusiblePairs(m *ir.Module) (cmpBr, loadArith, arithStore int) {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			units, cb := selectUnits(b)
			if cb != nil {
				cmpBr++
			}
			for _, u := range units {
				switch u.kind {
				case uLoadArith:
					loadArith++
				case uArithStore:
					arithStore++
				}
			}
		}
	}
	return cmpBr, loadArith, arithStore
}

// compileModule compiles every function of the module against the cost
// model. Functions are compiled in two phases — shells first, then
// code — so OpCall closures can capture callee shells before their
// code exists (recursion, forward references).
func compileModule(mod *ir.Module, model *CostModel) *compiledModule {
	cm := &compiledModule{funcs: make(map[string]*cfunc, len(mod.Funcs))}
	for _, f := range mod.Funcs {
		if len(f.Blocks) == 0 {
			continue // fall back to the interpreter's behavior
		}
		cm.funcs[f.Name] = &cfunc{name: f.Name, numParams: f.NumParams, numRegs: f.NumRegs}
	}
	for _, f := range mod.Funcs {
		if cf := cm.funcs[f.Name]; cf != nil {
			compileFunc(cf, f, mod, model, cm)
		}
	}
	return cm
}

// blockPlan is one block's compilation plan from the layout pass.
type blockPlan struct {
	units []unit
	cmpBr *ir.Instr // compare fused into the branch epilogue, or nil
	pc    int       // pc of the block's first unit (or its epilogue)
}

func compileFunc(cf *cfunc, f *ir.Func, mod *ir.Module, model *CostModel, cm *compiledModule) {
	// Layout pass: select units per block and assign pcs. Every block
	// gets exactly len(units)+1 slots — the +1 is the terminator
	// epilogue (fused with the trailing compare when cmpBr is set).
	plans := make([]blockPlan, len(f.Blocks))
	pcOf := make(map[*ir.Block]int, len(f.Blocks))
	planOf := make(map[*ir.Block]*blockPlan, len(f.Blocks))
	pc := 0
	for i, b := range f.Blocks {
		units, cb := selectUnits(b)
		plans[i] = blockPlan{units: units, cmpBr: cb, pc: pc}
		pcOf[b] = pc
		planOf[b] = &plans[i]
		pc += len(units) + 1
	}

	// Superblock pass: each canonical head⇄body loop gets one extra pc
	// slot holding the batched loop closure (see superblock.go). Jumps
	// INTO the head land on the superblock (emitCtx.entry); the head's
	// plain pc stays addressable as the superblock's bail target.
	type sbCand struct {
		head, body *ir.Block
		cmp        *ir.Instr
		bp         *blockPlan
		pc         int
	}
	var cands []sbCand
	superPC := make(map[*ir.Block]int)
	for i, b := range f.Blocks {
		if body, bp := superblockBody(b, &plans[i], planOf); body != nil {
			superPC[b] = pc
			cands = append(cands, sbCand{head: b, body: body, cmp: plans[i].cmpBr, bp: bp, pc: pc})
			pc++
		}
	}
	code := make([]op, pc)

	// Emission pass.
	ec := &emitCtx{f: f, mod: mod, model: model, cm: cm, pcOf: pcOf, superPC: superPC}
	for i, b := range f.Blocks {
		p := plans[i]
		emitBlock(ec, b, p, code)
	}
	for _, c := range cands {
		code[c.pc] = emitSuperblock(ec, c.head, c.body, c.cmp, c.bp)
	}
	cf.code = code
	cf.zeroRegs = liveInRegs(f)
}

type emitCtx struct {
	f       *ir.Func
	mod     *ir.Module
	model   *CostModel
	cm      *compiledModule
	pcOf    map[*ir.Block]int
	superPC map[*ir.Block]int
}

// entry resolves a jump target: superblocked heads are entered through
// their loop closure, everything else at its first plain slot.
func (ec *emitCtx) entry(b *ir.Block) int {
	if pc, ok := ec.superPC[b]; ok {
		return pc
	}
	return ec.pcOf[b]
}

// emitBlock emits the block's units and epilogue into code. Maximal
// runs of uSimple units are batch-charged at the run's first slot
// (cycles and instruction counts folded into one pair of adds); all
// other units charge themselves in interpreter order.
func emitBlock(ec *emitCtx, b *ir.Block, p blockPlan, code []op) {
	units := p.units
	pc := p.pc
	for i := 0; i < len(units); {
		if units[i].kind != uSimple {
			code[pc] = emitUnit(ec, b, units[i], pc+1)
			pc++
			i++
			continue
		}
		// Segment of simple ops: charge the whole run up front.
		j := i
		var segCycles int64
		for j < len(units) && units[j].kind == uSimple {
			segCycles += ec.model.OpCost[units[j].a.Op]
			j++
		}
		segInstrs := int64(j - i)
		first := compileCompute(units[i].a, pc+1)
		code[pc] = chargedOp(segCycles, segInstrs, first)
		pc++
		for k := i + 1; k < j; k++ {
			code[pc] = compileCompute(units[k].a, pc+1)
			pc++
		}
		i = j
	}
	code[pc] = emitEpilogue(ec, b, p.cmpBr)
}

// chargedOp prefixes inner with a batch charge for a whole simple-op
// segment.
func chargedOp(cycles, instrs int64, inner op) op {
	return func(fr *frame) int {
		t := fr.t
		t.Stats.Cycles += cycles
		t.Stats.Instrs += instrs
		return inner(fr)
	}
}

// compileCompute emits the compute-only closure for a mov or binary
// ALU instruction — no charging (the segment head batch-charged it).
// Each opcode × operand shape gets its own specialized closure so the
// hot path runs no switch and no ir.Instr loads.
func compileCompute(in *ir.Instr, next int) op {
	dst, a := int(in.Dst), int(in.A)
	imm := in.Imm
	if in.Op == ir.OpMov {
		if in.BImm {
			return func(fr *frame) int { fr.regs[dst] = imm; return next }
		}
		return func(fr *frame) int { fr.regs[dst] = fr.regs[a]; return next }
	}
	if in.BImm {
		switch in.Op {
		case ir.OpAdd:
			return func(fr *frame) int { fr.regs[dst] = fr.regs[a] + imm; return next }
		case ir.OpSub:
			return func(fr *frame) int { fr.regs[dst] = fr.regs[a] - imm; return next }
		case ir.OpMul:
			return func(fr *frame) int { fr.regs[dst] = fr.regs[a] * imm; return next }
		case ir.OpDiv:
			return func(fr *frame) int {
				var out int64
				if imm != 0 {
					out = fr.regs[a] / imm
				}
				fr.regs[dst] = out
				return next
			}
		case ir.OpRem:
			return func(fr *frame) int {
				var out int64
				if imm != 0 {
					out = fr.regs[a] % imm
				}
				fr.regs[dst] = out
				return next
			}
		case ir.OpAnd:
			return func(fr *frame) int { fr.regs[dst] = fr.regs[a] & imm; return next }
		case ir.OpOr:
			return func(fr *frame) int { fr.regs[dst] = fr.regs[a] | imm; return next }
		case ir.OpXor:
			return func(fr *frame) int { fr.regs[dst] = fr.regs[a] ^ imm; return next }
		case ir.OpShl:
			sh := uint64(imm) & 63
			return func(fr *frame) int { fr.regs[dst] = fr.regs[a] << sh; return next }
		case ir.OpShr:
			sh := uint64(imm) & 63
			return func(fr *frame) int { fr.regs[dst] = fr.regs[a] >> sh; return next }
		case ir.OpCmpEq:
			return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] == imm); return next }
		case ir.OpCmpNe:
			return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] != imm); return next }
		case ir.OpCmpLt:
			return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] < imm); return next }
		case ir.OpCmpLe:
			return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] <= imm); return next }
		case ir.OpCmpGt:
			return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] > imm); return next }
		case ir.OpCmpGe:
			return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] >= imm); return next }
		case ir.OpMin:
			return func(fr *frame) int { fr.regs[dst] = min(fr.regs[a], imm); return next }
		case ir.OpMax:
			return func(fr *frame) int { fr.regs[dst] = max(fr.regs[a], imm); return next }
		}
	}
	bb := int(in.B)
	switch in.Op {
	case ir.OpAdd:
		return func(fr *frame) int { fr.regs[dst] = fr.regs[a] + fr.regs[bb]; return next }
	case ir.OpSub:
		return func(fr *frame) int { fr.regs[dst] = fr.regs[a] - fr.regs[bb]; return next }
	case ir.OpMul:
		return func(fr *frame) int { fr.regs[dst] = fr.regs[a] * fr.regs[bb]; return next }
	case ir.OpDiv:
		return func(fr *frame) int {
			var out int64
			if bv := fr.regs[bb]; bv != 0 {
				out = fr.regs[a] / bv
			}
			fr.regs[dst] = out
			return next
		}
	case ir.OpRem:
		return func(fr *frame) int {
			var out int64
			if bv := fr.regs[bb]; bv != 0 {
				out = fr.regs[a] % bv
			}
			fr.regs[dst] = out
			return next
		}
	case ir.OpAnd:
		return func(fr *frame) int { fr.regs[dst] = fr.regs[a] & fr.regs[bb]; return next }
	case ir.OpOr:
		return func(fr *frame) int { fr.regs[dst] = fr.regs[a] | fr.regs[bb]; return next }
	case ir.OpXor:
		return func(fr *frame) int { fr.regs[dst] = fr.regs[a] ^ fr.regs[bb]; return next }
	case ir.OpShl:
		return func(fr *frame) int { fr.regs[dst] = fr.regs[a] << (uint64(fr.regs[bb]) & 63); return next }
	case ir.OpShr:
		return func(fr *frame) int { fr.regs[dst] = fr.regs[a] >> (uint64(fr.regs[bb]) & 63); return next }
	case ir.OpCmpEq:
		return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] == fr.regs[bb]); return next }
	case ir.OpCmpNe:
		return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] != fr.regs[bb]); return next }
	case ir.OpCmpLt:
		return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] < fr.regs[bb]); return next }
	case ir.OpCmpLe:
		return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] <= fr.regs[bb]); return next }
	case ir.OpCmpGt:
		return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] > fr.regs[bb]); return next }
	case ir.OpCmpGe:
		return func(fr *frame) int { fr.regs[dst] = b2i(fr.regs[a] >= fr.regs[bb]); return next }
	case ir.OpMin:
		return func(fr *frame) int { fr.regs[dst] = min(fr.regs[a], fr.regs[bb]); return next }
	case ir.OpMax:
		return func(fr *frame) int { fr.regs[dst] = max(fr.regs[a], fr.regs[bb]); return next }
	}
	// Unreachable for verified modules; keep a defensive closure.
	opc := in.Op
	return func(fr *frame) int {
		fr.err = fmt.Errorf("vm: unhandled opcode %v", opc)
		return -1
	}
}

// memFault builds the interpreter's exact out-of-bounds error.
func (t *Thread) memFault(addr int64) error {
	return fmt.Errorf("vm: %w: address %d (mem size %d)", ErrMemFault, addr, len(t.VM.Mem))
}

// emitUnit emits one non-simple unit.
func emitUnit(ec *emitCtx, b *ir.Block, u unit, next int) op {
	in := u.a
	m := ec.model
	fname, bname := ec.f.Name, b.Name
	switch u.kind {
	case uLoad:
		loadCost := m.OpCost[ir.OpLoad]
		dst, aReg, off := int(in.Dst), in.A, in.Imm
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			t.Stats.Cycles += t.memCost(loadCost)
			addr := off
			if aReg != ir.NoReg {
				addr += fr.regs[aReg]
			}
			if uint64(addr) >= uint64(len(t.VM.Mem)) {
				fr.err = t.memFault(addr)
				return -1
			}
			v := t.VM.Mem[addr]
			fr.regs[dst] = v
			if t.OnLoad != nil {
				t.OnLoad(fname, bname, addr, v)
			}
			return next
		}
	case uStore:
		storeCost := m.OpCost[ir.OpStore]
		vReg, aReg, off := int(in.B), in.A, in.Imm
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			t.Stats.Cycles += t.memCost(storeCost)
			addr := off
			if aReg != ir.NoReg {
				addr += fr.regs[aReg]
			}
			if uint64(addr) >= uint64(len(t.VM.Mem)) {
				fr.err = t.memFault(addr)
				return -1
			}
			v := fr.regs[vReg]
			t.VM.Mem[addr] = v
			if t.OnStore != nil {
				t.OnStore(fname, bname, addr, v)
			}
			return next
		}
	case uAtomic:
		aaddCost := m.OpCost[ir.OpAtomicAdd]
		dst, vReg, aReg, off := in.Dst, int(in.B), in.A, in.Imm
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			t.Stats.Cycles += t.memCost(aaddCost)
			addr := off
			if aReg != ir.NoReg {
				addr += fr.regs[aReg]
			}
			if uint64(addr) >= uint64(len(t.VM.Mem)) {
				fr.err = t.memFault(addr)
				return -1
			}
			add := fr.regs[vReg]
			old := atomic.AddInt64(&t.VM.Mem[addr], add) - add
			if dst != ir.NoReg {
				fr.regs[dst] = old
			}
			if t.OnAtomic != nil {
				t.OnAtomic(fname, bname, addr, old, add)
			} else if t.OnStore != nil {
				t.OnStore(fname, bname, addr, old+add)
			}
			return next
		}
	case uLoadArith:
		loadCost := m.OpCost[ir.OpLoad]
		arithCost := m.OpCost[u.b.Op]
		dst, aReg, off := int(in.Dst), in.A, in.Imm
		arith := compileCompute(u.b, next)
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			t.Stats.Cycles += t.memCost(loadCost)
			addr := off
			if aReg != ir.NoReg {
				addr += fr.regs[aReg]
			}
			if uint64(addr) >= uint64(len(t.VM.Mem)) {
				fr.err = t.memFault(addr)
				return -1
			}
			v := t.VM.Mem[addr]
			fr.regs[dst] = v
			if t.OnLoad != nil {
				t.OnLoad(fname, bname, addr, v)
			}
			t.Stats.Instrs++
			t.Stats.Cycles += arithCost
			return arith(fr)
		}
	case uArithStore:
		arithCost := m.OpCost[in.Op]
		storeCost := m.OpCost[ir.OpStore]
		st := u.b
		vReg, aReg, off := int(st.B), st.A, st.Imm
		arith := compileCompute(in, next)
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			t.Stats.Cycles += arithCost
			arith(fr)
			t.Stats.Instrs++
			t.Stats.Cycles += t.memCost(storeCost)
			addr := off
			if aReg != ir.NoReg {
				addr += fr.regs[aReg]
			}
			if uint64(addr) >= uint64(len(t.VM.Mem)) {
				fr.err = t.memFault(addr)
				return -1
			}
			v := fr.regs[vReg]
			t.VM.Mem[addr] = v
			if t.OnStore != nil {
				t.OnStore(fname, bname, addr, v)
			}
			return next
		}
	case uCall:
		callCost := m.OpCost[ir.OpCall]
		callee := ec.cm.funcs[in.Callee]
		calleeName := in.Callee
		argRegs := in.Args
		dst := in.Dst
		if callee == nil {
			return func(fr *frame) int {
				t := fr.t
				t.Stats.Instrs++
				t.Stats.Cycles += callCost
				fr.err = fmt.Errorf("vm: call to unknown function %q", calleeName)
				return -1
			}
		}
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			t.Stats.Cycles += callCost
			nfr, err := t.pushFrame(callee)
			if err != nil {
				fr.err = err
				return -1
			}
			for k, r := range argRegs {
				nfr.regs[k] = fr.regs[r]
			}
			code := callee.code
			pc := 0
			for pc >= 0 {
				pc = code[pc](nfr)
			}
			t.depth--
			if nfr.err != nil {
				fr.err = nfr.err
				return -1
			}
			if dst != ir.NoReg {
				fr.regs[dst] = nfr.ret
			}
			return next
		}
	case uExtCall:
		instr := in
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			if err := t.execExtCall(instr, fr.regs); err != nil {
				fr.err = err
				return -1
			}
			return next
		}
	case uReadCycles:
		cost := m.OpCost[ir.OpReadCycles]
		dst := int(in.Dst)
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			t.Stats.Cycles += cost
			fr.regs[dst] = t.Stats.Cycles
			return next
		}
	case uProbe:
		return emitProbe(ec, in.Probe, next)
	default: // uBad
		cost := m.OpCost[in.Op]
		opc := in.Op
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			t.Stats.Cycles += cost
			fr.err = fmt.Errorf("vm: unhandled opcode %v", opc)
			return -1
		}
	}
}

// emitProbe specializes the probe check into the dispatch loop: the
// untaken path of the IR designs is Probes++, the ProbeBase charge, and
// ciruntime's single counter compare; everything else lives in the
// taken helpers. The thread is guaranteed OnProbe-free and obs-free
// here (deopt rules), so the interpreter's forced-fire and profiling
// arms are statically absent.
func emitProbe(ec *emitCtx, p *ir.ProbeInfo, next int) op {
	probeBase := ec.model.ProbeBase
	switch p.Kind {
	case ir.ProbeIR:
		inc := p.Inc
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Probes++
			t.Stats.Cycles += probeBase
			if !t.RT.ProbeIRDue(inc, t.Stats.Cycles) {
				return next
			}
			return t.probeIRTaken(fr, next)
		}
	case ir.ProbeIRLoop:
		pinc, indVar, base := p.Inc, p.IndVar, p.Base
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Probes++
			t.Stats.Cycles += probeBase
			iters := fr.regs[indVar] - fr.regs[base]
			if iters < 0 {
				iters = 0
			}
			if !t.RT.ProbeIRDue(iters*pinc, t.Stats.Cycles) {
				return next
			}
			return t.probeIRTaken(fr, next)
		}
	case ir.ProbeCycles:
		inc := p.Inc
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Probes++
			t.Stats.Cycles += probeBase
			if !t.RT.ProbeCyclesDue(inc, t.Stats.Cycles) {
				return next
			}
			return t.probeCyclesTaken(fr, next)
		}
	case ir.ProbeCyclesLoop:
		pinc, indVar, base := p.Inc, p.IndVar, p.Base
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Probes++
			t.Stats.Cycles += probeBase
			iters := fr.regs[indVar] - fr.regs[base]
			if iters < 0 {
				iters = 0
			}
			if !t.RT.ProbeCyclesDue(iters*pinc, t.Stats.Cycles) {
				return next
			}
			return t.probeCyclesTaken(fr, next)
		}
	case ir.ProbeEvent:
		inc := p.Inc
		return func(fr *frame) int {
			return fr.t.probeEvent(fr, inc, next)
		}
	default: // ir.ProbeEventCycles
		return func(fr *frame) int {
			return fr.t.probeEventCycles(fr, next)
		}
	}
}

// probeIRTaken is the taken half of a compiled IR probe, charging and
// guarding exactly as the interpreter's execProbe does.
func (t *Thread) probeIRTaken(fr *frame, next int) int {
	before := t.Stats.Cycles
	prev := t.inHandler
	t.inHandler = true
	fired := t.RT.FireDueIR(t.Stats.Cycles)
	t.inHandler = prev
	if err := t.checkOverrun(t.Stats.Cycles-before, max(fired, 1), "CI"); err != nil {
		fr.err = err
		return -1
	}
	if fired > 0 {
		m := t.model
		t.Stats.ProbesTaken++
		t.Stats.HandlerCalls += int64(fired)
		t.Stats.Cycles += m.ProbeTakenExtra + int64(fired)*m.HandlerInvoke
	}
	return next
}

// probeCyclesTaken is the taken half of a compiled CI-Cycles probe.
func (t *Thread) probeCyclesTaken(fr *frame, next int) int {
	m := t.model
	before := t.Stats.Cycles
	prev := t.inHandler
	t.inHandler = true
	reads, fired := t.RT.FireDueCycles(t.Stats.Cycles)
	t.inHandler = prev
	if err := t.checkOverrun(t.Stats.Cycles-before, max(fired, 1), "CI"); err != nil {
		fr.err = err
		return -1
	}
	t.Stats.CycleReads += int64(reads)
	t.Stats.Cycles += int64(reads) * m.CycleRead
	if fired > 0 {
		t.Stats.ProbesTaken++
		t.Stats.HandlerCalls += int64(fired)
		t.Stats.Cycles += m.ProbeTakenExtra + int64(fired)*m.HandlerInvoke
	}
	return next
}

// probeEvent mirrors the interpreter's ProbeEvent arm (no cheap gate:
// every event reaches the runtime, as in the CnB design).
func (t *Thread) probeEvent(fr *frame, inc int64, next int) int {
	m := t.model
	t.Stats.Probes++
	t.Stats.Cycles += m.ProbeBase
	before := t.Stats.Cycles
	prev := t.inHandler
	t.inHandler = true
	fired := t.RT.ProbeEvent(inc, t.Stats.Cycles)
	t.inHandler = prev
	if err := t.checkOverrun(t.Stats.Cycles-before, max(fired, 1), "CI"); err != nil {
		fr.err = err
		return -1
	}
	if fired > 0 {
		t.Stats.ProbesTaken++
		t.Stats.HandlerCalls += int64(fired)
		t.Stats.Cycles += m.ProbeTakenExtra + int64(fired)*m.HandlerInvoke
	}
	return next
}

// probeEventCycles mirrors the interpreter's ProbeEventCycles arm.
func (t *Thread) probeEventCycles(fr *frame, next int) int {
	m := t.model
	t.Stats.Probes++
	before := t.Stats.Cycles
	prev := t.inHandler
	t.inHandler = true
	reads, fired := t.RT.ProbeEventCycles(t.Stats.Cycles)
	t.inHandler = prev
	if err := t.checkOverrun(t.Stats.Cycles-before, max(fired, 1), "CI"); err != nil {
		fr.err = err
		return -1
	}
	t.Stats.CycleReads += int64(reads)
	t.Stats.Cycles += m.ProbeBase + int64(reads)*m.CycleRead
	if fired > 0 {
		t.Stats.ProbesTaken++
		t.Stats.HandlerCalls += int64(fired)
		t.Stats.Cycles += m.ProbeTakenExtra + int64(fired)*m.HandlerInvoke
	}
	return next
}

// emitEpilogue emits the block-end slot: terminator charge, step
// budget, hardware interrupts, then control transfer — fused with the
// trailing compare when cmpBr is set, so tight loop back edges execute
// one closure per iteration tail.
func emitEpilogue(ec *emitCtx, b *ir.Block, cmpBr *ir.Instr) op {
	m := ec.model
	termCost := m.TermCost
	fname := ec.f.Name
	if cmpBr != nil {
		cmpCost := m.OpCost[cmpBr.Op]
		cond := int(cmpBr.Dst)
		thenPC, elsePC := ec.entry(b.Term.Then), ec.entry(b.Term.Else)
		cmp := compileCompute(cmpBr, 0)
		broken := MiscompileForTest
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Instrs++
			t.Stats.Cycles += cmpCost
			cmp(fr)
			if !broken {
				t.Stats.Cycles += termCost
			}
			t.Stats.Instrs++
			if t.limit > 0 && t.Stats.Instrs > t.limit {
				fr.err = fmt.Errorf("vm: %w: instruction limit %d in %q", ErrStepBudget, t.limit, fname)
				return -1
			}
			if t.VM.HW != nil {
				if err := t.checkHW(); err != nil {
					fr.err = err
					return -1
				}
			}
			if fr.regs[cond] != 0 {
				return thenPC
			}
			return elsePC
		}
	}
	switch b.Term.Kind {
	case ir.TermJmp:
		thenPC := ec.entry(b.Term.Then)
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Cycles += termCost
			t.Stats.Instrs++
			if t.limit > 0 && t.Stats.Instrs > t.limit {
				fr.err = fmt.Errorf("vm: %w: instruction limit %d in %q", ErrStepBudget, t.limit, fname)
				return -1
			}
			if t.VM.HW != nil {
				if err := t.checkHW(); err != nil {
					fr.err = err
					return -1
				}
			}
			return thenPC
		}
	case ir.TermBr:
		cond := int(b.Term.Cond)
		thenPC, elsePC := ec.entry(b.Term.Then), ec.entry(b.Term.Else)
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Cycles += termCost
			t.Stats.Instrs++
			if t.limit > 0 && t.Stats.Instrs > t.limit {
				fr.err = fmt.Errorf("vm: %w: instruction limit %d in %q", ErrStepBudget, t.limit, fname)
				return -1
			}
			if t.VM.HW != nil {
				if err := t.checkHW(); err != nil {
					fr.err = err
					return -1
				}
			}
			if fr.regs[cond] != 0 {
				return thenPC
			}
			return elsePC
		}
	case ir.TermRet:
		val := b.Term.Val
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Cycles += termCost
			t.Stats.Instrs++
			if t.limit > 0 && t.Stats.Instrs > t.limit {
				fr.err = fmt.Errorf("vm: %w: instruction limit %d in %q", ErrStepBudget, t.limit, fname)
				return -1
			}
			if t.VM.HW != nil {
				if err := t.checkHW(); err != nil {
					fr.err = err
					return -1
				}
			}
			if val != ir.NoReg {
				fr.ret = fr.regs[val]
			} else {
				fr.ret = 0
			}
			return -1
		}
	default:
		bname := b.Name
		return func(fr *frame) int {
			t := fr.t
			t.Stats.Cycles += termCost
			t.Stats.Instrs++
			if t.limit > 0 && t.Stats.Instrs > t.limit {
				fr.err = fmt.Errorf("vm: %w: instruction limit %d in %q", ErrStepBudget, t.limit, fname)
				return -1
			}
			if t.VM.HW != nil {
				if err := t.checkHW(); err != nil {
					fr.err = err
					return -1
				}
			}
			fr.err = fmt.Errorf("vm: unterminated block %q in %q", bname, fname)
			return -1
		}
	}
}

// pushFrame takes a frame from the thread's depth-indexed pool,
// sizing its register file for cf and zeroing the entry live-in set.
// The caller decrements t.depth when the frame's dispatch loop exits.
func (t *Thread) pushFrame(cf *cfunc) (*frame, error) {
	t.depth++
	if t.depth > maxDepth {
		t.depth--
		return nil, fmt.Errorf("vm: %w: depth exceeds %d in %q", ErrCallDepth, maxDepth, cf.name)
	}
	if len(t.frames) < t.depth {
		t.frames = append(t.frames, &frame{t: t})
	}
	fr := t.frames[t.depth-1]
	if cap(fr.regs) < cf.numRegs {
		// Fresh allocation: already all-zero.
		fr.regs = make([]int64, cf.numRegs)
	} else {
		// Recycled frame: zero only the entry live-in registers. Every
		// other register is written before any possible read (liveInRegs),
		// so leftover values from the frame's previous occupant are
		// unobservable and parity with the interpreter's zeroed file holds.
		regs := fr.regs[:cf.numRegs]
		for _, r := range cf.zeroRegs {
			regs[r] = 0
		}
		fr.regs = regs
	}
	fr.ret = 0
	fr.err = nil
	return fr, nil
}

// callCompiled runs cf on the compiled tier: pooled frame, argument
// copy, then the closure-threaded dispatch loop.
func (t *Thread) callCompiled(cf *cfunc, args []int64) (int64, error) {
	fr, err := t.pushFrame(cf)
	if err != nil {
		return 0, err
	}
	copy(fr.regs, args)
	code := cf.code
	pc := 0
	for pc >= 0 {
		pc = code[pc](fr)
	}
	t.depth--
	if fr.err != nil {
		return 0, fr.err
	}
	return fr.ret, nil
}
