package vm

import "errors"

// This file defines the VM watchdog layer: typed errors for every
// abnormal termination so callers (and the translation-validation
// sanitizer in internal/sanitize) can distinguish a budget artifact
// from a genuine fault with errors.Is, instead of matching message
// strings or recovering panics.

var (
	// ErrStepBudget is returned when a thread exceeds its per-run
	// instruction budget (VM.LimitInstrs). Budget exhaustion is an
	// artifact of the harness, not a program fault; differential oracles
	// treat it as "inconclusive", never as a divergence.
	ErrStepBudget = errors.New("step budget exceeded")

	// ErrMemFault is returned for loads, stores and atomics whose
	// effective address falls outside the module's flat data memory.
	ErrMemFault = errors.New("memory access out of bounds")

	// ErrHandlerReentrancy is returned when an interrupt handler (CI or
	// hardware) re-enters the VM via Thread.Run. Handlers run logically
	// at interrupt level on the same thread; re-entering the interpreter
	// from one would interleave two register frames on one virtual clock.
	ErrHandlerReentrancy = errors.New("interrupt handler re-entered the VM")

	// ErrHandlerOverrun is returned when the cycles an interrupt handler
	// bills via Thread.Charge exceed VM.MaxHandlerCycles for a single
	// probe or interrupt delivery — the runaway-handler guard.
	ErrHandlerOverrun = errors.New("interrupt handler overran its cycle budget")

	// ErrCallDepth is returned when the call stack exceeds the VM's
	// fixed recursion limit.
	ErrCallDepth = errors.New("call depth limit exceeded")
)
