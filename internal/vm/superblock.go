// Loop superblocks for the compiled tier.
//
// The instrumentation pass leaves the hottest code in the module in one
// canonical shape: a two-block self-loop whose head is a lone fused
// compare+branch and whose body is straight-line ALU and memory code
// ending in a jump back to the head (the chunked inner loops of every
// design, plus every uninstrumented counted loop the builder emits).
// Closure-threaded dispatch pays an indirect call and two Stats
// read-modify-writes per unit even on that shape, which caps the tier
// near interpreter speed. A superblock collapses the whole loop into
// ONE closure that keeps cycle, instruction, and rng accumulators in
// locals and dispatches the body through a flat µop array.
//
// Exactness is preserved, not approximated:
//
//   - Static charges (ALU costs, terminator costs, the head compare)
//     are batched per iteration. The per-memory-op rand() draw cannot
//     be batched away — but its value depends only on the draw COUNT,
//     never on what was charged between draws, so drawing it inline in
//     body order reproduces the interpreter's sequence bit for bit.
//   - Batching is invisible because every point at which the thread's
//     state can be observed mid-iteration — a memory fault or an
//     OnLoad/OnStore/OnAtomic callback — carries compile-time
//     correction constants (cycCorr/insCorr): the statics batched ahead
//     of that point are subtracted before the flush, so Stats match the
//     interpreter's op-by-op totals exactly, even for observers that
//     read Stats from inside the callback.
//   - The step budget is honored by bailing to the plain closure path
//     while the state is still clean (before the head executes)
//     whenever the next iteration could cross the limit; the plain
//     epilogue then trips at the exact instruction the interpreter
//     would. Armed hardware interrupts bail the same way at entry,
//     since checkHW must see flushed cycles at every block end.
//   - MiscompileForTest applies to the superblock's head exactly as it
//     does to the plain fused compare+branch epilogue, so the
//     tier-differential harness's planted cycle drift survives the fast
//     path.
//
// Loops containing probes, calls, extcalls, or rdcyc never become
// superblocks (those units observe or advance state the batching would
// have to unwind); they run on the plain closure path unchanged.
package vm

import (
	"sync/atomic"

	"repro/internal/ir"
)

// Superblock µop kinds. RR = register-register, RI = register-immediate.
const (
	sbMovI uint8 = iota
	sbMovR
	sbAddRR
	sbSubRR
	sbMulRR
	sbDivRR
	sbRemRR
	sbAndRR
	sbOrRR
	sbXorRR
	sbShlRR
	sbShrRR
	sbEqRR
	sbNeRR
	sbLtRR
	sbLeRR
	sbGtRR
	sbGeRR
	sbMinRR
	sbMaxRR
	sbAddRI
	sbSubRI
	sbMulRI
	sbDivRI // imm != 0 guaranteed at build time (imm == 0 folds to sbMovI 0)
	sbRemRI // imm != 0 guaranteed at build time
	sbAndRI
	sbOrRI
	sbXorRI
	sbShlRI // imm pre-masked to &63
	sbShrRI // imm pre-masked to &63
	sbEqRI
	sbNeRI
	sbLtRI
	sbLeRI
	sbGtRI
	sbGeRI
	sbMinRI
	sbMaxRI
	sbLoad
	sbStore
	sbAtomic
)

// sop is one superblock µop. For memory ops, cost is the static base
// cost and cycCorr/insCorr are the statics batched ahead of this op's
// fault/observer point that a mid-iteration flush must subtract.
type sop struct {
	kind      uint8
	dst, a, b int32
	imm       int64
	cost      int64
	cycCorr   int64
	insCorr   int64
}

// sbALU translates a mov or binary-ALU instruction into its µop,
// normalizing immediates the same way compileCompute does (shift masks,
// divide-by-zero-immediate folding to zero).
func sbALU(in *ir.Instr) sop {
	u := sop{dst: int32(in.Dst), a: int32(in.A), b: int32(in.B), imm: in.Imm}
	if in.Op == ir.OpMov {
		if in.BImm {
			u.kind = sbMovI
		} else {
			u.kind = sbMovR
		}
		return u
	}
	if in.BImm {
		switch in.Op {
		case ir.OpAdd:
			u.kind = sbAddRI
		case ir.OpSub:
			u.kind = sbSubRI
		case ir.OpMul:
			u.kind = sbMulRI
		case ir.OpDiv:
			if in.Imm == 0 {
				return sop{kind: sbMovI, dst: int32(in.Dst), imm: 0}
			}
			u.kind = sbDivRI
		case ir.OpRem:
			if in.Imm == 0 {
				return sop{kind: sbMovI, dst: int32(in.Dst), imm: 0}
			}
			u.kind = sbRemRI
		case ir.OpAnd:
			u.kind = sbAndRI
		case ir.OpOr:
			u.kind = sbOrRI
		case ir.OpXor:
			u.kind = sbXorRI
		case ir.OpShl:
			u.kind, u.imm = sbShlRI, int64(uint64(in.Imm)&63)
		case ir.OpShr:
			u.kind, u.imm = sbShrRI, int64(uint64(in.Imm)&63)
		case ir.OpCmpEq:
			u.kind = sbEqRI
		case ir.OpCmpNe:
			u.kind = sbNeRI
		case ir.OpCmpLt:
			u.kind = sbLtRI
		case ir.OpCmpLe:
			u.kind = sbLeRI
		case ir.OpCmpGt:
			u.kind = sbGtRI
		case ir.OpCmpGe:
			u.kind = sbGeRI
		case ir.OpMin:
			u.kind = sbMinRI
		case ir.OpMax:
			u.kind = sbMaxRI
		}
		return u
	}
	switch in.Op {
	case ir.OpAdd:
		u.kind = sbAddRR
	case ir.OpSub:
		u.kind = sbSubRR
	case ir.OpMul:
		u.kind = sbMulRR
	case ir.OpDiv:
		u.kind = sbDivRR
	case ir.OpRem:
		u.kind = sbRemRR
	case ir.OpAnd:
		u.kind = sbAndRR
	case ir.OpOr:
		u.kind = sbOrRR
	case ir.OpXor:
		u.kind = sbXorRR
	case ir.OpShl:
		u.kind = sbShlRR
	case ir.OpShr:
		u.kind = sbShrRR
	case ir.OpCmpEq:
		u.kind = sbEqRR
	case ir.OpCmpNe:
		u.kind = sbNeRR
	case ir.OpCmpLt:
		u.kind = sbLtRR
	case ir.OpCmpLe:
		u.kind = sbLeRR
	case ir.OpCmpGt:
		u.kind = sbGtRR
	case ir.OpCmpGe:
		u.kind = sbGeRR
	case ir.OpMin:
		u.kind = sbMinRR
	case ir.OpMax:
		u.kind = sbMaxRR
	}
	return u
}

// superblockBody reports whether head can anchor a superblock given its
// plan (a lone fused compare+branch) and, if so, returns the body block.
// The body must be the branch's then-target, jump straight back to the
// head, and contain only batchable unit kinds.
func superblockBody(head *ir.Block, p *blockPlan, planOf map[*ir.Block]*blockPlan) (*ir.Block, *blockPlan) {
	if p.cmpBr == nil || len(p.units) != 0 {
		return nil, nil
	}
	body := head.Term.Then
	if body == nil || body == head {
		return nil, nil
	}
	bp := planOf[body]
	if bp == nil || body.Term.Kind != ir.TermJmp || body.Term.Then != head {
		return nil, nil
	}
	for _, u := range bp.units {
		switch u.kind {
		case uSimple, uLoad, uStore, uAtomic, uLoadArith, uArithStore:
		default:
			return nil, nil
		}
	}
	return body, bp
}

// Superblocks counts the loops the compiled tier turns into
// superblocks across the module. The fuzz corpus's generation-coverage
// assertion uses it the same way it uses FusiblePairs: to guarantee the
// differential oracle exercises the batched loop path rather than
// vacuously passing on code that never enters it.
func Superblocks(m *ir.Module) int {
	n := 0
	for _, f := range m.Funcs {
		planOf := make(map[*ir.Block]*blockPlan, len(f.Blocks))
		plans := make([]blockPlan, len(f.Blocks))
		for i, b := range f.Blocks {
			units, cb := selectUnits(b)
			plans[i] = blockPlan{units: units, cmpBr: cb}
			planOf[b] = &plans[i]
		}
		for _, b := range f.Blocks {
			if body, _ := superblockBody(b, planOf[b], planOf); body != nil {
				n++
			}
		}
	}
	return n
}

// emitSuperblock compiles one head⇄body loop into a single closure.
// See the package comment at the top of this file for the exactness
// argument; the layout of the charging code mirrors emitUnit and the
// fused emitEpilogue arm op for op.
func emitSuperblock(ec *emitCtx, head, body *ir.Block, cmp *ir.Instr, bp *blockPlan) op {
	m := ec.model
	broken := MiscompileForTest
	headStatic := m.OpCost[cmp.Op]
	if !broken {
		headStatic += m.TermCost
	}

	// Pass 1: per-iteration body totals (units plus the jump back).
	var bodyStatic, bodyIns int64
	for _, u := range bp.units {
		switch u.kind {
		case uSimple:
			bodyStatic += m.OpCost[u.a.Op]
			bodyIns++
		case uLoad, uStore, uAtomic:
			bodyIns++
		case uLoadArith:
			bodyStatic += m.OpCost[u.b.Op]
			bodyIns += 2
		case uArithStore:
			bodyStatic += m.OpCost[u.a.Op]
			bodyIns += 2
		}
	}
	bodyStatic += m.TermCost
	bodyIns++

	// Pass 2: µops, with each memory op's correction constants computed
	// against the interpreter's charge order (earned = charged by the
	// time that op's fault check / observer callback runs).
	var uops []sop
	var es, ei int64 // statics and instrs earned so far within the body
	memUop := func(kind uint8, dst, base, val ir.Reg, off, cost int64) {
		uops = append(uops, sop{
			kind: kind, dst: int32(dst), a: int32(base), b: int32(val),
			imm: off, cost: cost,
			cycCorr: bodyStatic - es,
			insCorr: bodyIns - (ei + 1),
		})
	}
	for _, u := range bp.units {
		switch u.kind {
		case uSimple:
			uops = append(uops, sbALU(u.a))
			es += m.OpCost[u.a.Op]
			ei++
		case uLoad:
			memUop(sbLoad, u.a.Dst, u.a.A, ir.NoReg, u.a.Imm, m.OpCost[ir.OpLoad])
			ei++
		case uStore:
			memUop(sbStore, ir.NoReg, u.a.A, u.a.B, u.a.Imm, m.OpCost[ir.OpStore])
			ei++
		case uAtomic:
			memUop(sbAtomic, u.a.Dst, u.a.A, u.a.B, u.a.Imm, m.OpCost[ir.OpAtomicAdd])
			ei++
		case uLoadArith:
			// Load charges and observes first; the fused ALU op's charge
			// lands after the callback, so it is unearned at that point.
			memUop(sbLoad, u.a.Dst, u.a.A, ir.NoReg, u.a.Imm, m.OpCost[ir.OpLoad])
			uops = append(uops, sbALU(u.b))
			es += m.OpCost[u.b.Op]
			ei += 2
		case uArithStore:
			// The ALU op charges and computes before the store's fault
			// check, so both of the pair's instruction charges are earned
			// at the store's observation point.
			uops = append(uops, sbALU(u.a))
			es += m.OpCost[u.a.Op]
			ei++
			memUop(sbStore, ir.NoReg, u.b.A, u.b.B, u.b.Imm, m.OpCost[ir.OpStore])
			ei++
		}
	}

	cu := sbALU(cmp)
	cond := int(cmp.Dst)
	plainPC := ec.pcOf[head]
	elsePC := ec.entry(head.Term.Else)
	fname, bname := ec.f.Name, body.Name
	missLo := m.MissP2
	missHi := m.MissP2 + m.MissP1
	missC1, missC2 := m.MissCost1, m.MissCost2
	iterIns := 2 + bodyIns

	return func(fr *frame) int {
		t := fr.t
		if t.VM.HW != nil {
			// checkHW needs flushed cycles at every block end; run armed
			// threads on the plain path.
			return plainPC
		}
		limited := t.limit > 0
		var rem int64
		if limited {
			rem = t.limit - t.Stats.Instrs
		}
		regs := fr.regs
		mem := t.VM.Mem
		rng := t.rng
		var cyc, ins int64
		for {
			if limited && ins+iterIns > rem {
				// The next iteration could cross the budget: flush and let
				// the plain epilogues trip at the exact instruction.
				break
			}
			cyc += headStatic
			ins += 2
			var cv int64
			switch cu.kind {
			case sbEqRR:
				cv = b2i(regs[cu.a] == regs[cu.b])
			case sbNeRR:
				cv = b2i(regs[cu.a] != regs[cu.b])
			case sbLtRR:
				cv = b2i(regs[cu.a] < regs[cu.b])
			case sbLeRR:
				cv = b2i(regs[cu.a] <= regs[cu.b])
			case sbGtRR:
				cv = b2i(regs[cu.a] > regs[cu.b])
			case sbGeRR:
				cv = b2i(regs[cu.a] >= regs[cu.b])
			case sbEqRI:
				cv = b2i(regs[cu.a] == cu.imm)
			case sbNeRI:
				cv = b2i(regs[cu.a] != cu.imm)
			case sbLtRI:
				cv = b2i(regs[cu.a] < cu.imm)
			case sbLeRI:
				cv = b2i(regs[cu.a] <= cu.imm)
			case sbGtRI:
				cv = b2i(regs[cu.a] > cu.imm)
			case sbGeRI:
				cv = b2i(regs[cu.a] >= cu.imm)
			}
			regs[cond] = cv
			if cv == 0 {
				t.Stats.Cycles += cyc
				t.Stats.Instrs += ins
				t.rng = rng
				return elsePC
			}
			cyc += bodyStatic
			ins += bodyIns
			for ui := range uops {
				u := &uops[ui]
				switch u.kind {
				case sbMovI:
					regs[u.dst] = u.imm
				case sbMovR:
					regs[u.dst] = regs[u.a]
				case sbAddRR:
					regs[u.dst] = regs[u.a] + regs[u.b]
				case sbSubRR:
					regs[u.dst] = regs[u.a] - regs[u.b]
				case sbMulRR:
					regs[u.dst] = regs[u.a] * regs[u.b]
				case sbDivRR:
					var out int64
					if bv := regs[u.b]; bv != 0 {
						out = regs[u.a] / bv
					}
					regs[u.dst] = out
				case sbRemRR:
					var out int64
					if bv := regs[u.b]; bv != 0 {
						out = regs[u.a] % bv
					}
					regs[u.dst] = out
				case sbAndRR:
					regs[u.dst] = regs[u.a] & regs[u.b]
				case sbOrRR:
					regs[u.dst] = regs[u.a] | regs[u.b]
				case sbXorRR:
					regs[u.dst] = regs[u.a] ^ regs[u.b]
				case sbShlRR:
					regs[u.dst] = regs[u.a] << (uint64(regs[u.b]) & 63)
				case sbShrRR:
					regs[u.dst] = regs[u.a] >> (uint64(regs[u.b]) & 63)
				case sbEqRR:
					regs[u.dst] = b2i(regs[u.a] == regs[u.b])
				case sbNeRR:
					regs[u.dst] = b2i(regs[u.a] != regs[u.b])
				case sbLtRR:
					regs[u.dst] = b2i(regs[u.a] < regs[u.b])
				case sbLeRR:
					regs[u.dst] = b2i(regs[u.a] <= regs[u.b])
				case sbGtRR:
					regs[u.dst] = b2i(regs[u.a] > regs[u.b])
				case sbGeRR:
					regs[u.dst] = b2i(regs[u.a] >= regs[u.b])
				case sbMinRR:
					regs[u.dst] = min(regs[u.a], regs[u.b])
				case sbMaxRR:
					regs[u.dst] = max(regs[u.a], regs[u.b])
				case sbAddRI:
					regs[u.dst] = regs[u.a] + u.imm
				case sbSubRI:
					regs[u.dst] = regs[u.a] - u.imm
				case sbMulRI:
					regs[u.dst] = regs[u.a] * u.imm
				case sbDivRI:
					regs[u.dst] = regs[u.a] / u.imm
				case sbRemRI:
					regs[u.dst] = regs[u.a] % u.imm
				case sbAndRI:
					regs[u.dst] = regs[u.a] & u.imm
				case sbOrRI:
					regs[u.dst] = regs[u.a] | u.imm
				case sbXorRI:
					regs[u.dst] = regs[u.a] ^ u.imm
				case sbShlRI:
					regs[u.dst] = regs[u.a] << uint64(u.imm)
				case sbShrRI:
					regs[u.dst] = regs[u.a] >> uint64(u.imm)
				case sbEqRI:
					regs[u.dst] = b2i(regs[u.a] == u.imm)
				case sbNeRI:
					regs[u.dst] = b2i(regs[u.a] != u.imm)
				case sbLtRI:
					regs[u.dst] = b2i(regs[u.a] < u.imm)
				case sbLeRI:
					regs[u.dst] = b2i(regs[u.a] <= u.imm)
				case sbGtRI:
					regs[u.dst] = b2i(regs[u.a] > u.imm)
				case sbGeRI:
					regs[u.dst] = b2i(regs[u.a] >= u.imm)
				case sbMinRI:
					regs[u.dst] = min(regs[u.a], u.imm)
				case sbMaxRI:
					regs[u.dst] = max(regs[u.a], u.imm)
				case sbLoad:
					rng += 0x9e3779b97f4a7c15
					z := rng
					z ^= z >> 30
					z *= 0xbf58476d1ce4e5b9
					z ^= z >> 27
					z *= 0x94d049bb133111eb
					z ^= z >> 31
					c := u.cost
					if r := int64(z & 1023); r < missLo {
						c += missC2
					} else if r < missHi {
						c += missC1
					}
					if t.memMul != 1 {
						c = int64(float64(c) * t.memMul)
					}
					cyc += c
					addr := u.imm
					if u.a >= 0 {
						addr += regs[u.a]
					}
					if uint64(addr) >= uint64(len(mem)) {
						t.Stats.Cycles += cyc - u.cycCorr
						t.Stats.Instrs += ins - u.insCorr
						t.rng = rng
						fr.err = t.memFault(addr)
						return -1
					}
					v := mem[addr]
					regs[u.dst] = v
					if t.OnLoad != nil {
						t.Stats.Cycles += cyc - u.cycCorr
						t.Stats.Instrs += ins - u.insCorr
						cyc, ins = u.cycCorr, u.insCorr
						t.rng = rng
						t.OnLoad(fname, bname, addr, v)
						rng = t.rng
						if limited {
							rem = t.limit - t.Stats.Instrs
						}
					}
				case sbStore:
					rng += 0x9e3779b97f4a7c15
					z := rng
					z ^= z >> 30
					z *= 0xbf58476d1ce4e5b9
					z ^= z >> 27
					z *= 0x94d049bb133111eb
					z ^= z >> 31
					c := u.cost
					if r := int64(z & 1023); r < missLo {
						c += missC2
					} else if r < missHi {
						c += missC1
					}
					if t.memMul != 1 {
						c = int64(float64(c) * t.memMul)
					}
					cyc += c
					addr := u.imm
					if u.a >= 0 {
						addr += regs[u.a]
					}
					if uint64(addr) >= uint64(len(mem)) {
						t.Stats.Cycles += cyc - u.cycCorr
						t.Stats.Instrs += ins - u.insCorr
						t.rng = rng
						fr.err = t.memFault(addr)
						return -1
					}
					v := regs[u.b]
					mem[addr] = v
					if t.OnStore != nil {
						t.Stats.Cycles += cyc - u.cycCorr
						t.Stats.Instrs += ins - u.insCorr
						cyc, ins = u.cycCorr, u.insCorr
						t.rng = rng
						t.OnStore(fname, bname, addr, v)
						rng = t.rng
						if limited {
							rem = t.limit - t.Stats.Instrs
						}
					}
				case sbAtomic:
					rng += 0x9e3779b97f4a7c15
					z := rng
					z ^= z >> 30
					z *= 0xbf58476d1ce4e5b9
					z ^= z >> 27
					z *= 0x94d049bb133111eb
					z ^= z >> 31
					c := u.cost
					if r := int64(z & 1023); r < missLo {
						c += missC2
					} else if r < missHi {
						c += missC1
					}
					if t.memMul != 1 {
						c = int64(float64(c) * t.memMul)
					}
					cyc += c
					addr := u.imm
					if u.a >= 0 {
						addr += regs[u.a]
					}
					if uint64(addr) >= uint64(len(mem)) {
						t.Stats.Cycles += cyc - u.cycCorr
						t.Stats.Instrs += ins - u.insCorr
						t.rng = rng
						fr.err = t.memFault(addr)
						return -1
					}
					add := regs[u.b]
					old := atomic.AddInt64(&mem[addr], add) - add
					if u.dst >= 0 {
						regs[u.dst] = old
					}
					if t.OnAtomic != nil || t.OnStore != nil {
						t.Stats.Cycles += cyc - u.cycCorr
						t.Stats.Instrs += ins - u.insCorr
						cyc, ins = u.cycCorr, u.insCorr
						t.rng = rng
						if t.OnAtomic != nil {
							t.OnAtomic(fname, bname, addr, old, add)
						} else {
							t.OnStore(fname, bname, addr, old+add)
						}
						rng = t.rng
						if limited {
							rem = t.limit - t.Stats.Instrs
						}
					}
				}
			}
		}
		t.Stats.Cycles += cyc
		t.Stats.Instrs += ins
		t.rng = rng
		return plainPC
	}
}
