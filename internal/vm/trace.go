package vm

import (
	"fmt"
	"strings"
)

// TraceKind classifies a traced event.
type TraceKind uint8

const (
	// TraceProbe is a probe execution that fired at least one handler.
	TraceProbe TraceKind = iota
	// TraceHandler is a CI handler invocation.
	TraceHandler
	// TraceHW is a hardware interrupt delivery.
	TraceHW
	// TraceExtCall is an external (uninstrumented) call.
	TraceExtCall
)

var traceKindNames = [...]string{
	TraceProbe: "probe", TraceHandler: "handler", TraceHW: "hw-int",
	TraceExtCall: "extcall",
}

// String names the event kind.
func (k TraceKind) String() string { return traceKindNames[k] }

// TraceEvent is one timeline entry.
type TraceEvent struct {
	Kind TraceKind
	// Cycle is the virtual time of the event.
	Cycle int64
	// Detail carries the event payload: IR delta for handlers, cost for
	// external calls.
	Detail int64
	// Name is the extern name for TraceExtCall.
	Name string
}

// Trace is a bounded ring buffer of VM events. Attach one to a thread
// with Thread.AttachTrace; it records handler fires, hardware
// interrupts and external calls with negligible simulation cost.
type Trace struct {
	cap    int
	events []TraceEvent
	// Dropped counts events lost to the ring bound.
	Dropped int64
}

// NewTrace returns a trace holding up to capacity events (default 4096).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Trace{cap: capacity}
}

func (tr *Trace) add(e TraceEvent) {
	if len(tr.events) >= tr.cap {
		copy(tr.events, tr.events[1:])
		tr.events[len(tr.events)-1] = e
		tr.Dropped++
		return
	}
	tr.events = append(tr.events, e)
}

// Events returns the recorded timeline, oldest first.
func (tr *Trace) Events() []TraceEvent { return tr.events }

// String renders the timeline with inter-event gaps.
func (tr *Trace) String() string {
	var sb strings.Builder
	var last int64
	for _, e := range tr.events {
		fmt.Fprintf(&sb, "%12d (+%7d) %-8s", e.Cycle, e.Cycle-last, e.Kind)
		switch e.Kind {
		case TraceHandler:
			fmt.Fprintf(&sb, " ir=%d", e.Detail)
		case TraceExtCall:
			fmt.Fprintf(&sb, " @%s cost=%d", e.Name, e.Detail)
		case TraceHW:
			fmt.Fprintf(&sb, " cost=%d", e.Detail)
		}
		sb.WriteByte('\n')
		last = e.Cycle
	}
	if tr.Dropped > 0 {
		fmt.Fprintf(&sb, "(%d earlier events dropped)\n", tr.Dropped)
	}
	return sb.String()
}

// AttachTrace starts recording this thread's interrupt-relevant events
// into tr. Call before Run.
func (t *Thread) AttachTrace(tr *Trace) {
	t.trace = tr
	prev := t.RT.OnFire
	t.RT.OnFire = func(id int, irDelta uint64, gap int64) {
		tr.add(TraceEvent{Kind: TraceHandler, Cycle: t.Stats.Cycles, Detail: int64(irDelta)})
		if prev != nil {
			prev(id, irDelta, gap)
		}
	}
}
