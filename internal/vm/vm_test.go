package vm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ci/analysis"
	"repro/internal/ci/instrument"
	"repro/internal/ir"
)

// forEachTier runs the test body once per execution tier, so the
// compiled tier inherits the full conformance surface of the
// interpreter rather than a parallel copy.
func forEachTier(t *testing.T, f func(t *testing.T, tier Tier)) {
	for _, tier := range []Tier{TierInterpreter, TierCompiled} {
		t.Run(tier.String(), func(t *testing.T) { f(t, tier) })
	}
}

// newVM is New plus tier selection, for tests.
func newVM(m *ir.Module, model *CostModel, threads int, tier Tier) *VM {
	v := New(m, model, threads)
	v.Tier = tier
	return v
}

func run(t *testing.T, tier Tier, m *ir.Module, fn string, args ...int64) (int64, *Thread) {
	t.Helper()
	v := newVM(m, nil, 1, tier)
	v.LimitInstrs = 50_000_000
	th := v.NewThread(0)
	rv, err := th.Run(fn, args...)
	if err != nil {
		t.Fatalf("Run(%s): %v", fn, err)
	}
	return rv, th
}

func TestArithmeticAndControlFlow(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`)
		rv, th := run(t, tier, m, "main", 100)
		if rv != 4950 {
			t.Errorf("sum 0..99 = %d, want 4950", rv)
		}
		if th.Stats.Instrs < 500 || th.Stats.Cycles < th.Stats.Instrs {
			t.Errorf("stats implausible: %+v", th.Stats)
		}
	})
}

func TestRecursionAndCalls(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
func @fib(%n) {
entry:
  %c = lt %n, 2
  br %c, base, rec
base:
  ret %n
rec:
  %a = sub %n, 1
  %r1 = call @fib(%a)
  %b = sub %n, 2
  %r2 = call @fib(%b)
  %s = add %r1, %r2
  ret %s
}
`)
		rv, _ := run(t, tier, m, "fib", 15)
		if rv != 610 {
			t.Errorf("fib(15) = %d, want 610", rv)
		}
	})
}

func TestMemoryOps(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
mem 128
func @main() {
entry:
  %v = mov 42
  %base = mov 10
  store %base, 5, %v
  %r = load %base, 5
  %old = aadd %base, 5, %v
  %r2 = load %base, 5
  %sum = add %r, %r2
  ret %sum
}
`)
		rv, _ := run(t, tier, m, "main")
		if rv != 42+84 {
			t.Errorf("got %d, want 126", rv)
		}
	})
}

func TestMinMaxDivByZero(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
func @main(%a, %b) {
entry:
  %mn = min %a, %b
  %mx = max %a, %b
  %z = mov 0
  %d = div %a, %z
  %r = rem %a, %z
  %s = add %mn, %mx
  %s = add %s, %d
  %s = add %s, %r
  ret %s
}
`)
		rv, _ := run(t, tier, m, "main", 3, 9)
		if rv != 12 {
			t.Errorf("got %d, want 12 (min+max, div/rem by zero = 0)", rv)
		}
	})
}

func TestMemoryFault(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
mem 8
func @main() {
entry:
  %x = load _, 99
  ret %x
}
`)
		v := newVM(m, nil, 1, tier)
		th := v.NewThread(0)
		if _, err := th.Run("main"); !errors.Is(err, ErrMemFault) {
			t.Errorf("err = %v, want ErrMemFault", err)
		}
	})
}

func TestInstrLimit(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
func @main() {
entry:
  jmp entry
}
`)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 1000
		th := v.NewThread(0)
		if _, err := th.Run("main"); !errors.Is(err, ErrStepBudget) {
			t.Errorf("err = %v, want ErrStepBudget", err)
		}
	})
}

func TestDeterminism(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		src := `
mem 4096
func @main(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %a = and %i, 1023
  %v = load %a, 0
  %v = add %v, %i
  store %a, 0, %v
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
		cycles := func() int64 {
			m := ir.MustParse(src)
			_, th := run(t, tier, m, "main", 5000)
			return th.Stats.Cycles
		}
		if a, b := cycles(), cycles(); a != b {
			t.Errorf("non-deterministic cycles: %d vs %d", a, b)
		}
	})
}

func TestExtCallChargesCost(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
extern @slow cost 5000
func @main() {
entry:
  extcall @slow()
  ret
}
`)
		_, th := run(t, tier, m, "main")
		if th.Stats.Cycles < 5000 {
			t.Errorf("cycles = %d, want >= 5000", th.Stats.Cycles)
		}
		if th.Stats.ExtCalls != 1 {
			t.Errorf("ExtCalls = %d", th.Stats.ExtCalls)
		}
	})
}

func TestHWInterrupts(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		src := `
func @main(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
		base := func() int64 {
			m := ir.MustParse(src)
			_, th := run(t, tier, m, "main", 200000)
			return th.Stats.Cycles
		}()
		m := ir.MustParse(src)
		v := newVM(m, nil, 1, tier)
		fired := 0
		v.HW = &HWConfig{IntervalCycles: 5000, Handler: func(t *Thread) { fired++ }}
		th := v.NewThread(0)
		if _, err := th.Run("main", 200000); err != nil {
			t.Fatal(err)
		}
		if fired == 0 || th.Stats.HWInterrupts != int64(fired) {
			t.Fatalf("HW interrupts = %d / stat %d", fired, th.Stats.HWInterrupts)
		}
		// Overhead must be roughly interrupts * HWInterruptCost.
		over := th.Stats.Cycles - base
		wantMin := int64(fired) * v.Model.HWInterruptCost
		if over < wantMin {
			t.Errorf("overhead %d < interrupts*cost %d", over, wantMin)
		}
		// With cost 40000 per 5000-cycle interval, slowdown should be ~9x.
		slow := float64(th.Stats.Cycles) / float64(base)
		if slow < 5 || slow > 15 {
			t.Errorf("HW slowdown = %.1fx, want ~9x", slow)
		}
	})
}

// Semantic preservation: every instrumentation design must leave
// program results unchanged. This exercises the loop transform and
// cloning surgery end to end, on both execution tiers.
func TestInstrumentationPreservesSemantics(t *testing.T) {
	programs := []struct {
		name string
		src  string
		fn   string
		args []int64
		want int64
	}{
		{
			name: "param loop sum",
			src: `
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`,
			fn: "main", args: []int64{10000}, want: 49995000,
		},
		{
			name: "le loop with step 3",
			src: `
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = le %i, %n
  br %c, body, exit
body:
  %s = add %s, 1
  %i = add %i, 3
  jmp head
exit:
  ret %s
}
`,
			fn: "main", args: []int64{29999}, want: 10000,
		},
		{
			name: "nested loops",
			src: `
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp ohead
ohead:
  %c = lt %i, %n
  br %c, obody, oexit
obody:
  %j = mov 0
  jmp ihead
ihead:
  %c2 = lt %j, 200
  br %c2, ibody, iexit
ibody:
  %s = add %s, 1
  %j = add %j, 1
  jmp ihead
iexit:
  %i = add %i, 1
  jmp ohead
oexit:
  ret %s
}
`,
			fn: "main", args: []int64{300}, want: 60000,
		},
		{
			name: "calls inside loop",
			src: `
func @sq(%x) {
entry:
  %y = mul %x, %x
  ret %y
}
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %q = call @sq(%i)
  %s = add %s, %q
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`,
			fn: "main", args: []int64{1000}, want: 332833500,
		},
		{
			name: "branchy loop",
			src: `
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %b = and %i, 1
  br %b, odd, even
odd:
  %s = add %s, 3
  jmp cont
even:
  %s = add %s, 1
  jmp cont
cont:
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`,
			fn: "main", args: []int64{10000}, want: 20000,
		},
		{
			name: "runtime-small loop (clone fast path)",
			src: `
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, 2
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`,
			fn: "main", args: []int64{7}, want: 14,
		},
	}
	forEachTier(t, func(t *testing.T, tier Tier) {
		for _, p := range programs {
			for _, d := range instrument.Designs {
				t.Run(fmt.Sprintf("%s/%s", p.name, d), func(t *testing.T) {
					m := ir.MustParse(p.src)
					_, err := instrument.Instrument(m, instrument.Options{
						Design:   d,
						Analysis: analysis.Options{ProbeInterval: 150},
					})
					if err != nil {
						t.Fatalf("instrument: %v", err)
					}
					v := newVM(m, nil, 1, tier)
					v.LimitInstrs = 50_000_000
					th := v.NewThread(0)
					th.RT.RegisterCI(5000, func(uint64) {})
					got, err := th.Run(p.fn, p.args...)
					if err != nil {
						t.Fatalf("run: %v\n%s", err, m)
					}
					if got != p.want {
						t.Errorf("result = %d, want %d\n%s", got, p.want, m)
					}
				})
			}
		}
	})
}

// Tier parity: the compiled tier must reproduce the interpreter's
// Stats struct byte for byte — cycles, instruction counts, probe
// counters, handler calls, cycle reads — along with the return value
// and handler fire count, across every instrumentation design. This is
// the in-package complement of the sanitize corpus oracle.
func TestTierStatParity(t *testing.T) {
	src := `
mem 4096
extern @lib cost 900
func @mix(%x) {
entry:
  %a = and %x, 1023
  %v = load %a, 0
  %v = add %v, %x
  store %a, 0, %v
  %old = aadd _, 0, %x
  %y = mul %x, 3
  ret %y
}
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %w = call @mix(%i)
  %s = add %s, %w
  %b = and %i, 255
  %e = eq %b, 0
  br %e, ext, cont
ext:
  extcall @lib()
  jmp cont
cont:
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`
	type result struct {
		rv    int64
		stats Stats
		fires uint64
	}
	exec := func(t *testing.T, tier Tier, d instrument.Design) result {
		t.Helper()
		m := ir.MustParse(src)
		if _, err := instrument.Instrument(m, instrument.Options{
			Design:   d,
			Analysis: analysis.Options{ProbeInterval: 150},
		}); err != nil {
			t.Fatal(err)
		}
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 50_000_000
		th := v.NewThread(0)
		var fires uint64
		th.RT.RegisterCI(2000, func(uint64) { fires++ })
		rv, err := th.Run("main", 20000)
		if err != nil {
			t.Fatal(err)
		}
		return result{rv: rv, stats: th.Stats, fires: fires}
	}
	for _, d := range instrument.Designs {
		t.Run(string(d), func(t *testing.T) {
			ref := exec(t, TierInterpreter, d)
			got := exec(t, TierCompiled, d)
			if got != ref {
				t.Errorf("tier divergence:\n interp  %+v\n compiled %+v", ref, got)
			}
		})
	}
}

// Counter fidelity: for the CI design, the runtime's instruction count
// must track the instructions actually executed within a bounded
// relative error — this validates the statically computed increments,
// the loop transform and cloning arithmetic.
func TestCICounterTracksExecution(t *testing.T) {
	srcs := map[string]struct {
		src  string
		args []int64
	}{
		"param loop": {`
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`, []int64{100000}},
		"nested with calls": {`
func @work(%x) {
entry:
  %a = mul %x, 3
  %b = add %a, 1
  %c = xor %b, %x
  ret %c
}
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %w = call @work(%i)
  %s = add %s, %w
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`, []int64{50000}},
	}
	forEachTier(t, func(t *testing.T, tier Tier) {
		for name, tc := range srcs {
			t.Run(name, func(t *testing.T) {
				m := ir.MustParse(tc.src)
				_, err := instrument.Instrument(m, instrument.Options{
					Design:   instrument.CI,
					Analysis: analysis.Options{ProbeInterval: 200},
				})
				if err != nil {
					t.Fatal(err)
				}
				v := newVM(m, nil, 1, tier)
				v.LimitInstrs = 100_000_000
				th := v.NewThread(0)
				th.RT.RegisterCI(1000, func(uint64) {})
				if _, err := th.Run("main", tc.args...); err != nil {
					t.Fatal(err)
				}
				counted := float64(th.RT.InsCount())
				actual := float64(th.Stats.Instrs)
				ratio := counted / actual
				if ratio < 0.85 || ratio > 1.15 {
					t.Errorf("counted %v vs executed %v IR (ratio %.3f), want within 15%%",
						counted, actual, ratio)
				}
			})
		}
	})
}

// Handler firing interval: with a tuned IR-per-cycle ratio, CI handlers
// should fire near the requested cycle interval.
func TestCIIntervalAccuracy(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		src := `
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %i
  %s = xor %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`
		// Profiling run to measure IR per cycle.
		m0 := ir.MustParse(src)
		_, th0 := run(t, tier, m0, "main", 100000)
		irPerCycle := float64(th0.Stats.Instrs) / float64(th0.Stats.Cycles)

		m := ir.MustParse(src)
		if _, err := instrument.Instrument(m, instrument.Options{
			Design:   instrument.CI,
			Analysis: analysis.Options{ProbeInterval: 200},
		}); err != nil {
			t.Fatal(err)
		}
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 100_000_000
		th := v.NewThread(0)
		th.RT.IRPerCycle = irPerCycle
		th.RT.RecordIntervals = true
		id := th.RT.RegisterCI(5000, func(uint64) {})
		if _, err := th.Run("main", 1_000_000); err != nil {
			t.Fatal(err)
		}
		ivs := th.RT.Intervals(id)
		if len(ivs) < 100 {
			t.Fatalf("only %d intervals recorded", len(ivs))
		}
		// Median within 40% of the 5000-cycle target.
		med := median(ivs)
		if med < 3000 || med > 9000 {
			t.Errorf("median interval = %d cycles, want ~5000", med)
		}
	})
}

func median(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func TestRunParallelAtomicCounter(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
mem 64
func @main(%n) {
entry:
  %one = mov 1
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %old = aadd _, 0, %one
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`)
		v := newVM(m, nil, 8, tier)
		v.LimitInstrs = 10_000_000
		stats, err := v.RunParallel(8, "main", func(id int) []int64 { return []int64{1000} }, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v.Mem[0] != 8000 {
			t.Errorf("shared counter = %d, want 8000", v.Mem[0])
		}
		for i, s := range stats {
			if s.Cycles == 0 || s.Instrs == 0 {
				t.Errorf("thread %d has empty stats", i)
			}
		}
	})
}

func TestContentionScalesMemoryCost(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		src := `
mem 1024
func @main(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %a = and %i, 511
  %v = load %a, 0
  store %a, 0, %v
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
		cyc := func(threads int) int64 {
			m := ir.MustParse(src)
			v := newVM(m, nil, threads, tier)
			v.LimitInstrs = 10_000_000
			th := v.NewThread(0)
			rv, err := th.Run("main", 20000)
			if err != nil || rv != 20000 {
				t.Fatalf("run: %v rv=%d", err, rv)
			}
			return th.Stats.Cycles
		}
		c1, c32 := cyc(1), cyc(32)
		if c32 <= c1 {
			t.Errorf("32-thread contention did not increase cycles: %d vs %d", c32, c1)
		}
		ratio := float64(c32) / float64(c1)
		if ratio < 1.3 || ratio > 5 {
			t.Errorf("contention ratio = %.2f, want ~1.5-4", ratio)
		}
	})
}

// §2.2: a program brackets its critical sections with
// ci_disable(0)/ci_enable(0) so no handler can run while the "lock" is
// held — the pattern the paper recommends for lock implementations.
// The handler records a violation whenever it observes the lock flag.
func TestCriticalSectionDisablesHandlers(t *testing.T) {
	src := `
mem 16
extern @ci_disable cost 4
extern @ci_enable cost 4
func @main(%protect) {
entry:
  %one = mov 1
  %zero = mov 0
  %ciid = mov 0
  %i = mov 0
  %n = mov 4000
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  br %protect, guarded, raw
guarded:
  extcall @ci_disable(%ciid)
  jmp crit
raw:
  jmp crit
crit:
  store _, 0, %one
  %w = mov 0
  jmp critloop
critloop:
  %wc = lt %w, 40
  br %wc, critbody, critdone
critbody:
  %w = add %w, 1
  jmp critloop
critdone:
  store _, 0, %zero
  br %protect, unguard, cont
unguard:
  extcall @ci_enable(%ciid)
  jmp cont
cont:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`
	forEachTier(t, func(t *testing.T, tier Tier) {
		run := func(protect int64) (violations, fires int64) {
			m := ir.MustParse(src)
			if _, err := instrument.Instrument(m, instrument.Options{
				Design:   instrument.CI,
				Analysis: analysis.Options{ProbeInterval: 50},
			}); err != nil {
				t.Fatal(err)
			}
			v := newVM(m, nil, 1, tier)
			v.LimitInstrs = 50_000_000
			th := v.NewThread(0)
			th.RT.RegisterCI(300, func(uint64) {
				fires++
				if v.Mem[0] != 0 {
					violations++
				}
			})
			if _, err := th.Run("main", protect); err != nil {
				t.Fatal(err)
			}
			return violations, fires
		}
		rawViolations, rawFires := run(0)
		if rawFires == 0 {
			t.Fatal("handler never fired")
		}
		if rawViolations == 0 {
			t.Fatal("unprotected run should observe handler fires inside the critical section")
		}
		guardViolations, guardFires := run(1)
		if guardFires == 0 {
			t.Fatal("protected run silenced the handler entirely")
		}
		if guardViolations != 0 {
			t.Errorf("ci_disable/ci_enable leaked %d handler fires into critical sections", guardViolations)
		}
	})
}

// Hardware interrupts coalesce across blocking system calls but fire
// mid-call inside ordinary library calls.
func TestHWInterruptsAndExternCalls(t *testing.T) {
	src := `
extern @lib cost 50000
extern @syscall cost 50000 blocking
func @main(%blocking) {
entry:
  br %blocking, s, l
s:
  extcall @syscall()
  ret
l:
  extcall @lib()
  ret
}
`
	forEachTier(t, func(t *testing.T, tier Tier) {
		count := func(blocking int64) int64 {
			m := ir.MustParse(src)
			v := newVM(m, nil, 1, tier)
			v.HW = &HWConfig{IntervalCycles: 10000}
			th := v.NewThread(0)
			if _, err := th.Run("main", blocking); err != nil {
				t.Fatal(err)
			}
			return th.Stats.HWInterrupts
		}
		lib := count(0)
		sys := count(1)
		if lib < 4 {
			t.Errorf("library call should take ~5 mid-call interrupts, got %d", lib)
		}
		if sys != 1 {
			t.Errorf("blocking syscall should coalesce to 1 delivery, got %d", sys)
		}
	})
}

// RearmHW pushes the watchdog deadline: with the handler re-arming on
// every CI fire, a probe-dense program never takes a hardware
// interrupt.
func TestRearmHWWatchdogStaysQuiet(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
func @main(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`)
		if _, err := instrument.Instrument(m, instrument.Options{
			Design:   instrument.CI,
			Analysis: analysis.Options{ProbeInterval: 100},
		}); err != nil {
			t.Fatal(err)
		}
		v := newVM(m, nil, 1, tier)
		var th *Thread
		v.HW = &HWConfig{IntervalCycles: 10000, Handler: func(t *Thread) { t.RearmHW() }}
		th = v.NewThread(0)
		th.RT.RegisterCI(2000, func(uint64) { th.RearmHW() })
		if _, err := th.Run("main", 500000); err != nil {
			t.Fatal(err)
		}
		if th.Stats.HandlerCalls < 100 {
			t.Fatalf("CI handler barely fired: %d", th.Stats.HandlerCalls)
		}
		if th.Stats.HWInterrupts != 0 {
			t.Errorf("watchdog fired %d times despite constant re-arming", th.Stats.HWInterrupts)
		}
	})
}

func TestTraceTimeline(t *testing.T) {
	// Attaching a trace deopts the compiled tier to the interpreter;
	// running both tiers pins that the fallback preserves the timeline.
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
extern @lib cost 3000
func @main(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  extcall @lib()
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`)
		if _, err := instrument.Instrument(m, instrument.Options{
			Design:   instrument.CI,
			Analysis: analysis.Options{ProbeInterval: 100},
		}); err != nil {
			t.Fatal(err)
		}
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 10_000_000
		th := v.NewThread(0)
		tr := NewTrace(64)
		th.AttachTrace(tr)
		th.RT.RegisterCI(2000, func(uint64) {})
		if _, err := th.Run("main", 200); err != nil {
			t.Fatal(err)
		}
		var handlers, extcalls int
		var lastCycle int64 = -1
		for _, e := range tr.Events() {
			if e.Cycle < lastCycle {
				t.Fatalf("trace not time-ordered: %d after %d", e.Cycle, lastCycle)
			}
			lastCycle = e.Cycle
			switch e.Kind {
			case TraceHandler:
				handlers++
				if e.Detail <= 0 {
					t.Error("handler event without IR delta")
				}
			case TraceExtCall:
				extcalls++
				if e.Name != "lib" || e.Detail != 3000 {
					t.Errorf("extcall event = %+v", e)
				}
			}
		}
		if handlers == 0 || extcalls == 0 {
			t.Fatalf("timeline missing events: handlers=%d extcalls=%d", handlers, extcalls)
		}
		// The ring must bound memory: 200 extcalls exceed capacity 64.
		if len(tr.Events()) > 64 {
			t.Errorf("ring exceeded capacity: %d", len(tr.Events()))
		}
		if tr.Dropped == 0 {
			t.Error("expected drops with a small ring")
		}
		if s := tr.String(); !strings.Contains(s, "extcall") || !strings.Contains(s, "dropped") {
			t.Errorf("rendering incomplete:\n%s", s)
		}
	})
}
