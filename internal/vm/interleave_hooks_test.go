package vm

// The interleaving verifier's VM surface: the OnLoad/OnAtomic access
// taps, the OnProbe forced-fire schedule driver, and CallHandler for
// handlers whose body is IR in the module. These tests pin the exact
// semantics internal/interleave builds on.

import (
	"errors"
	"testing"

	"repro/internal/ci/analysis"
	"repro/internal/ci/instrument"
	"repro/internal/ir"
)

func TestOnLoadObservesCommittedReads(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
mem 16
func @main() {
entry:
  %v = mov 7
  %base = mov 2
  store %base, 1, %v
  %r = load %base, 1
  %r2 = load _, 9
  %s = add %r, %r2
  ret %s
}
`)
		v := newVM(m, nil, 1, tier)
		th := v.NewThread(0)
		type ev struct {
			fn, block string
			addr, val int64
		}
		var got []ev
		th.OnLoad = func(fn, block string, addr, val int64) {
			got = append(got, ev{fn, block, addr, val})
		}
		rv, err := th.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if rv != 7 {
			t.Fatalf("rv = %d, want 7", rv)
		}
		want := []ev{{"main", "entry", 3, 7}, {"main", "entry", 9, 0}}
		if len(got) != len(want) {
			t.Fatalf("OnLoad events = %+v, want %+v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}

func TestOnAtomicRefinesOnStoreForAtomicAdds(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
mem 8
func @main() {
entry:
  %v = mov 5
  store _, 0, %v
  %old = aadd _, 0, %v
  %o2 = aadd _, 3, %v
  ret %old
}
`)
		v := newVM(m, nil, 1, tier)
		th := v.NewThread(0)
		var stores, atomics []int64
		th.OnStore = func(fn, block string, addr, val int64) {
			stores = append(stores, addr, val)
		}
		th.OnAtomic = func(fn, block string, addr, old, add int64) {
			atomics = append(atomics, addr, old, add)
		}
		if _, err := th.Run("main"); err != nil {
			t.Fatal(err)
		}
		// The plain store still reports via OnStore; both atomics report
		// old/add via OnAtomic and are absent from the OnStore stream.
		if len(stores) != 2 || stores[0] != 0 || stores[1] != 5 {
			t.Errorf("OnStore stream = %v, want only the plain store [0 5]", stores)
		}
		wantAtomics := []int64{0, 5, 5, 3, 0, 5}
		if len(atomics) != len(wantAtomics) {
			t.Fatalf("OnAtomic stream = %v, want %v", atomics, wantAtomics)
		}
		for i := range wantAtomics {
			if atomics[i] != wantAtomics[i] {
				t.Fatalf("OnAtomic stream = %v, want %v", atomics, wantAtomics)
			}
		}
	})
}

func TestOnStoreStillSeesAtomicsWithoutOnAtomic(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
mem 8
func @main() {
entry:
  %v = mov 5
  %old = aadd _, 0, %v
  ret %old
}
`)
		v := newVM(m, nil, 1, tier)
		th := v.NewThread(0)
		var vals []int64
		th.OnStore = func(fn, block string, addr, val int64) { vals = append(vals, val) }
		if _, err := th.Run("main"); err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || vals[0] != 5 {
			t.Errorf("OnStore without OnAtomic = %v, want committed value [5]", vals)
		}
	})
}

// Satellite: the load path must stay allocation-free when OnLoad is
// nil. A single frame allocation (the register file) is the whole
// budget for a run with thousands of loads — allocations must not
// scale with load count.
func TestLoadPathNoAllocsWhenOnLoadDisabled(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
mem 4096
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %v = load %i, 0
  %s = add %s, %v
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`)
		v := newVM(m, nil, 1, tier)
		th := v.NewThread(0)
		if _, err := th.Run("main", 4096); err != nil { // warm-up
			t.Fatal(err)
		}
		n := testing.AllocsPerRun(100, func() {
			if _, err := th.Run("main", 4096); err != nil {
				t.Fatal(err)
			}
		})
		if n > 1 {
			t.Errorf("load-heavy run allocated %.2f times with OnLoad disabled, want <= 1 (the register frame)", n)
		}
	})
}

// interleaveProbeModule returns a CI-instrumented module whose main
// runs a plain compute loop, plus a @handler function that bumps a
// counter word at mem[0] through its own IR (which itself contains
// probes after instrumentation).
func interleaveProbeModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.MustParse(`
mem 16
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
func @handler() {
entry:
  %one = mov 1
  %old = aadd _, 0, %one
  ret %old
}
`)
	if _, err := instrument.Instrument(m, instrument.Options{
		Design:   instrument.CI,
		Analysis: analysis.Options{ProbeInterval: 50},
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOnProbeForcedFiresDriveSchedules(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := interleaveProbeModule(t)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 1_000_000
		th := v.NewThread(0)

		fires := 0
		th.RT.RegisterCI(1<<40, func(uint64) { // cadence never due
			fires++
			if _, err := th.CallHandler("handler"); err != nil {
				t.Fatalf("CallHandler: %v", err)
			}
		})

		site := 0
		schedule := map[int]int{3: 1, 7: 2} // fire once at site 3, twice at site 7
		th.OnProbe = func() int {
			site++
			return schedule[site]
		}
		if _, err := th.Run("main", 2000); err != nil {
			t.Fatal(err)
		}
		if fires != 3 {
			t.Fatalf("forced fires = %d, want 3 (1 at site 3 + 2 at site 7)", fires)
		}
		if v.Mem[0] != 3 {
			t.Errorf("handler IR ran %d times, want 3", v.Mem[0])
		}
		if th.Stats.HandlerCalls != 3 || th.Stats.ProbesTaken != 2 {
			t.Errorf("stats = %+v, want 3 handler calls over 2 firing probes", th.Stats)
		}
		if site == 0 {
			t.Fatal("OnProbe never consulted")
		}
	})
}

func TestOnProbeNotConsultedFromHandlerContext(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := interleaveProbeModule(t)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 1_000_000
		th := v.NewThread(0)

		inHandlerSites := 0
		firing := false
		th.RT.RegisterCI(1<<40, func(uint64) {
			firing = true
			// The handler body is IR with probes of its own; none of them
			// may advance the main-context site ordinal.
			if _, err := th.CallHandler("handler"); err != nil {
				t.Fatalf("CallHandler: %v", err)
			}
			firing = false
		})
		site := 0
		th.OnProbe = func() int {
			if firing {
				inHandlerSites++
			}
			site++
			if site == 5 {
				return 1
			}
			return 0
		}
		if _, err := th.Run("main", 2000); err != nil {
			t.Fatal(err)
		}
		if inHandlerSites != 0 {
			t.Errorf("OnProbe consulted %d times from handler context, want 0", inHandlerSites)
		}
	})
}

func TestForcedFiresRespectCiDisable(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
mem 16
extern @ci_disable cost 4
extern @ci_enable cost 4
func @main() {
entry:
  %ciid = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, 200
  br %c, body, exit
body:
  extcall @ci_disable(%ciid)
  %j = mov 0
  jmp inner
inner:
  %jc = lt %j, 20
  br %jc, ibody, idone
ibody:
  %j = add %j, 1
  jmp inner
idone:
  extcall @ci_enable(%ciid)
  %i = add %i, 1
  jmp head
exit:
  ret %i
}
`)
		if _, err := instrument.Instrument(m, instrument.Options{
			Design:   instrument.CI,
			Analysis: analysis.Options{ProbeInterval: 20},
		}); err != nil {
			t.Fatal(err)
		}
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 1_000_000
		th := v.NewThread(0)
		fires := 0
		th.RT.RegisterCI(1<<40, func(uint64) { fires++ })
		feasible, infeasible := 0, 0
		th.OnProbe = func() int {
			if th.RT.CanFire() {
				feasible++
			} else {
				infeasible++
			}
			return 1 // ask for a forced fire everywhere; disabled regions must drop it
		}
		if _, err := th.Run("main"); err != nil {
			t.Fatal(err)
		}
		if infeasible == 0 {
			t.Fatal("no probe sites inside ci_disable regions; test module lost its critical sections")
		}
		if fires != feasible {
			t.Errorf("forced fires = %d, want exactly the %d feasible sites (%d infeasible dropped)",
				fires, feasible, infeasible)
		}
	})
}

func TestCallHandlerKeepsReentrancyGuard(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := interleaveProbeModule(t)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 1_000_000
		th := v.NewThread(0)

		var runErr error
		called := false
		th.RT.RegisterCI(1<<40, func(uint64) {
			called = true
			if _, err := th.CallHandler("handler"); err != nil {
				t.Errorf("CallHandler from handler context: %v", err)
			}
			_, runErr = th.Run("handler") // full Run must still be refused
		})
		th.OnProbe = func() int { return 1 }
		if _, err := th.Run("main", 100); err != nil {
			t.Fatal(err)
		}
		if !called {
			t.Fatal("handler never fired")
		}
		if !errors.Is(runErr, ErrHandlerReentrancy) {
			t.Errorf("Run from handler = %v, want ErrHandlerReentrancy", runErr)
		}
	})
}

func TestCallHandlerRejectsUnknownAndArity(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := interleaveProbeModule(t)
		v := newVM(m, nil, 1, tier)
		th := v.NewThread(0)
		if _, err := th.CallHandler("nope"); err == nil {
			t.Error("CallHandler(unknown) succeeded")
		}
		if _, err := th.CallHandler("handler", 1, 2); err == nil {
			t.Error("CallHandler with wrong arity succeeded")
		}
	})
}

func TestForcedFireOverrunSurfaces(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := interleaveProbeModule(t)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 1_000_000
		v.MaxHandlerCycles = 10
		th := v.NewThread(0)
		th.RT.RegisterCI(1<<40, func(uint64) { th.Charge(1000) })
		th.OnProbe = func() int { return 1 }
		_, err := th.Run("main", 2000)
		if !errors.Is(err, ErrHandlerOverrun) {
			t.Errorf("overrunning forced fire = %v, want ErrHandlerOverrun", err)
		}
	})
}
