package vm

import (
	"errors"
	"testing"

	"repro/internal/ir"
)

// loopSrc runs forever; probed variants drive the CI runtime.
const loopSrc = `
mem 64
func @main(%n) {
entry:
  %i = mov 0
  jmp head
head:
  %i = add %i, 1
  store _, 3, %i
  %c = lt %i, %n
  br %c, head, exit
exit:
  ret %i
}
`

func TestWatchdogStepBudgetTyped(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(loopSrc)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 500
		th := v.NewThread(0)
		_, err := th.Run("main", 1_000_000)
		if !errors.Is(err, ErrStepBudget) {
			t.Fatalf("err = %v, want ErrStepBudget", err)
		}
	})
}

func TestWatchdogMemBoundsTyped(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		for _, src := range []string{
			"mem 8\nfunc @main() {\nentry:\n  %x = load _, 99\n  ret %x\n}\n",
			"mem 8\nfunc @main() {\nentry:\n  %x = mov 7\n  store _, -1, %x\n  ret %x\n}\n",
			"mem 8\nfunc @main() {\nentry:\n  %x = mov 7\n  %o = aadd _, 1000, %x\n  ret %o\n}\n",
		} {
			m := ir.MustParse(src)
			th := newVM(m, nil, 1, tier).NewThread(0)
			if _, err := th.Run("main"); !errors.Is(err, ErrMemFault) {
				t.Errorf("err = %v, want ErrMemFault\n%s", err, src)
			}
		}
	})
}

// instrumentLoop gives loopSrc a probe in the loop body so handlers
// actually fire.
func probedLoop(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.MustParse(loopSrc)
	b := m.FuncByName("main").BlockByName("head")
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpProbe, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg,
		Probe: &ir.ProbeInfo{Kind: ir.ProbeIR, Inc: 5, IndVar: ir.NoReg, Base: ir.NoReg}})
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWatchdogHandlerReentrancyTyped(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := probedLoop(t)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 100_000
		th := v.NewThread(0)
		var reentryErr error
		th.RT.RegisterCI(200, func(uint64) {
			if _, err := th.Run("main", 1); err != nil && reentryErr == nil {
				reentryErr = err
			}
		})
		if _, err := th.Run("main", 5000); err != nil {
			t.Fatalf("outer run failed: %v", err)
		}
		if !errors.Is(reentryErr, ErrHandlerReentrancy) {
			t.Fatalf("reentrant Run: err = %v, want ErrHandlerReentrancy", reentryErr)
		}
	})
}

func TestWatchdogHandlerOverrunTyped(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := probedLoop(t)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 1_000_000
		v.MaxHandlerCycles = 1000
		th := v.NewThread(0)
		th.RT.RegisterCI(200, func(uint64) { th.Charge(50_000) })
		_, err := th.Run("main", 100_000)
		if !errors.Is(err, ErrHandlerOverrun) {
			t.Fatalf("err = %v, want ErrHandlerOverrun", err)
		}
	})
}

func TestWatchdogOverrunDisabledByDefault(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := probedLoop(t)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 1_000_000
		th := v.NewThread(0)
		th.RT.RegisterCI(200, func(uint64) { th.Charge(50_000) })
		if _, err := th.Run("main", 2000); err != nil {
			t.Fatalf("MaxHandlerCycles=0 must not enforce a budget: %v", err)
		}
	})
}

func TestWatchdogHWHandlerGuards(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(loopSrc)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 1_000_000
		v.MaxHandlerCycles = 100
		var reentryErr error
		var th *Thread
		v.HW = &HWConfig{IntervalCycles: 5000, Handler: func(ht *Thread) {
			if _, err := th.Run("main", 1); err != nil && reentryErr == nil {
				reentryErr = err
			}
			ht.Charge(10_000)
		}}
		th = v.NewThread(0)
		_, err := th.Run("main", 200_000)
		if !errors.Is(err, ErrHandlerOverrun) {
			t.Fatalf("err = %v, want ErrHandlerOverrun", err)
		}
		if !errors.Is(reentryErr, ErrHandlerReentrancy) {
			t.Fatalf("reentrant Run from HW handler: err = %v, want ErrHandlerReentrancy", reentryErr)
		}
	})
}

func TestWatchdogCallDepthTyped(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := ir.MustParse(`
func @main(%n) {
entry:
  %r = call @main(%n)
  ret %r
}
`)
		th := newVM(m, nil, 1, tier).NewThread(0)
		if _, err := th.Run("main", 1); !errors.Is(err, ErrCallDepth) {
			t.Fatalf("err = %v, want ErrCallDepth", err)
		}
	})
}

// The store observer sees every committed write in order, with probes
// contributing nothing.
func TestOnStoreObserver(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier Tier) {
		m := probedLoop(t)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 100_000
		th := v.NewThread(0)
		th.RT.RegisterCI(200, func(uint64) {})
		var n int64
		var lastVal int64
		th.OnStore = func(fn, block string, addr, val int64) {
			if fn != "main" || block != "head" || addr != 3 {
				t.Fatalf("OnStore(%q,%q,%d,%d) unexpected", fn, block, addr, val)
			}
			n++
			lastVal = val
		}
		rv, err := th.Run("main", 100)
		if err != nil {
			t.Fatal(err)
		}
		if n != 100 || lastVal != rv {
			t.Errorf("observed %d stores (last=%d), want 100 ending at %d", n, lastVal, rv)
		}
	})
}
