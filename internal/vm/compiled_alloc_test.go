package vm

// Allocation discipline of the compiled tier: once a thread has warmed
// its frame pool, a whole run — dispatch, probes, memory ops, nested
// calls — must be 0-alloc with observers disabled. Attaching an
// observer surface deopts the thread to the interpreter and must not
// corrupt stats while doing so.

import (
	"testing"

	"repro/internal/ci/analysis"
	"repro/internal/ci/instrument"
	"repro/internal/ir"
	"repro/internal/obs"
)

const compiledAllocSrc = `
mem 4096
func @leaf(%x) {
entry:
  %a = and %x, 1023
  %v = load %a, 0
  %v = add %v, %x
  store %a, 0, %v
  %y = mul %x, 3
  ret %y
}
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %w = call @leaf(%i)
  %s = add %s, %w
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`

func compiledAllocModule(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.MustParse(compiledAllocSrc)
	if _, err := instrument.Instrument(m, instrument.Options{
		Design:   instrument.CI,
		Analysis: analysis.Options{ProbeInterval: 100},
	}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompiledFastPathZeroAlloc(t *testing.T) {
	m := compiledAllocModule(t)
	v := newVM(m, nil, 1, TierCompiled)
	v.LimitInstrs = 50_000_000
	th := v.NewThread(0)
	th.RT.RegisterCI(2000, func(uint64) {})
	// Warm up: first run compiles the module and grows the frame pool.
	if _, err := th.Run("main", 5000); err != nil {
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(20, func() {
		if _, err := th.Run("main", 5000); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("compiled run allocated %.2f times with observers disabled, want 0", n)
	}
	if th.Stats.ProbesTaken == 0 || th.Stats.HandlerCalls == 0 {
		t.Fatalf("measurement missed the probe fire path: %+v", th.Stats)
	}
}

// Enabling an observer surface mid-stream deopts the thread to the
// interpreter; the deopted run must produce exactly the stat deltas the
// interpreter produces, and detaching must return to the compiled tier
// with no drift in either direction.
func TestCompiledObserverDeoptKeepsStatsExact(t *testing.T) {
	const iters = 3000
	statDelta := func(t *testing.T, tier Tier, scope *obs.Scope) (Stats, int64) {
		t.Helper()
		m := compiledAllocModule(t)
		v := newVM(m, nil, 1, tier)
		v.Obs = scope
		v.LimitInstrs = 50_000_000
		th := v.NewThread(0)
		th.RT.RegisterCI(2000, func(uint64) {})
		rv, err := th.Run("main", iters)
		if err != nil {
			t.Fatal(err)
		}
		return th.Stats, rv
	}

	// obs-enabled compiled run: deopts, and must match the interpreter's
	// obs-enabled run exactly (the interpreter is the reference for the
	// observer surfaces).
	refObs, refObsRV := statDelta(t, TierInterpreter, obs.New(0))
	gotObs, gotObsRV := statDelta(t, TierCompiled, obs.New(0))
	if gotObs != refObs || gotObsRV != refObsRV {
		t.Errorf("deopted compiled run drifted from interpreter:\n interp  %+v rv=%d\n compiled %+v rv=%d",
			refObs, refObsRV, gotObs, gotObsRV)
	}

	// A single thread must transition deopt -> fast path -> deopt
	// without stats corruption. Drive the identical phase sequence
	// through an interpreter thread and a compiled thread (whose middle
	// phase runs the fast path) and require byte-identical Stats at
	// every phase boundary — the CI runtime state carries across runs,
	// so equality here proves the transition leaves no residue.
	phases := func(t *testing.T, tier Tier) []Stats {
		t.Helper()
		m := compiledAllocModule(t)
		v := newVM(m, nil, 1, tier)
		v.LimitInstrs = 50_000_000
		th := v.NewThread(0)
		th.RT.RegisterCI(2000, func(uint64) {})
		var snaps []Stats
		for phase := 0; phase < 3; phase++ {
			if phase == 1 {
				th.OnProbe = nil // fast path on the compiled tier
			} else {
				th.OnProbe = func() int { return 1 } // forces the interpreter
			}
			if _, err := th.Run("main", iters); err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, th.Stats)
		}
		return snaps
	}
	want := phases(t, TierInterpreter)
	got := phases(t, TierCompiled)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("phase %d stats drift:\n interp  %+v\n compiled %+v", i, want[i], got[i])
		}
	}
}
