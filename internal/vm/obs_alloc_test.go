package vm

// Zero-cost-when-disabled property of the observability layer: the
// probe-fire path must not allocate when the VM has no obs scope.
// execProbe is driven directly so the measurement isolates the probe
// path from the interpreter loop's own setup.

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/obs"
)

func probeFixture(scope *obs.Scope) (*Thread, *ir.Func, *ir.Block, *ir.ProbeInfo, []int64) {
	m := ir.MustParse(`
func @main() {
entry:
  %z = mov 0
  ret %z
}
`)
	v := New(m, nil, 1)
	v.Obs = scope
	th := v.NewThread(0)
	th.RT.RegisterCI(100, func(uint64) {})
	f := m.Funcs[0]
	b := f.Blocks[0]
	p := &ir.ProbeInfo{Kind: ir.ProbeIR, Inc: 50, IndVar: ir.NoReg, Base: ir.NoReg}
	return th, f, b, p, make([]int64, 4)
}

func TestProbeFirePathNoAllocsWhenObsDisabled(t *testing.T) {
	th, f, b, p, regs := probeFixture(nil)
	// Warm up: the first fires touch ciruntime's interval bookkeeping.
	for i := 0; i < 100; i++ {
		if err := th.execProbe(f, b, p, regs); err != nil {
			t.Fatal(err)
		}
	}
	n := testing.AllocsPerRun(1000, func() {
		if err := th.execProbe(f, b, p, regs); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("probe-fire path allocated %.2f times per probe with obs disabled, want 0", n)
	}
	if th.Stats.ProbesTaken == 0 {
		t.Fatal("probes never fired; the measurement missed the fire path")
	}
}

func TestProbeFirePathRecordsWhenObsEnabled(t *testing.T) {
	scope := obs.New(0)
	th, f, b, p, regs := probeFixture(scope)
	for i := 0; i < 100; i++ {
		if err := th.execProbe(f, b, p, regs); err != nil {
			t.Fatal(err)
		}
	}
	sites := scope.HotSites(0)
	if len(sites) != 1 || sites[0].Fn != "main" || sites[0].Block != "entry" {
		t.Fatalf("sites = %+v", sites)
	}
	if sites[0].Hits != 100 || sites[0].Fired == 0 {
		t.Errorf("site stats = %+v, want 100 hits and some fires", sites[0])
	}
	var fires int
	for _, ev := range scope.Events() {
		if ev.Name == "probe-fire" {
			fires++
		}
	}
	if fires == 0 {
		t.Error("no probe-fire spans recorded")
	}
	if scope.Hist("vm/handler_window_cycles") == nil {
		t.Error("handler-window histogram missing")
	}
}
