// Package vm executes IR programs on a virtual machine with an
// explicit cycle cost model. It is the substitute for the paper's
// x86 testbed: all overhead, accuracy, throughput and latency numbers
// are measured in deterministic virtual cycles, and the machine
// provides both Compiler Interrupt probes and a hardware
// (performance-counter) interrupt mode for the Figure 12 comparison.
package vm

import (
	"math"

	"repro/internal/ir"
)

// CostModel assigns virtual cycle costs to instruction execution.
type CostModel struct {
	// OpCost is the base cost per opcode. Loads and stores additionally
	// go through the memory model below.
	OpCost [ir.NumOpcodes]int64
	// TermCost is charged per executed terminator.
	TermCost int64
	// MemContention multiplies memory-op cost as a function of the
	// number of threads sharing the machine; this is what shrinks the
	// *relative* cost of (ALU-only) probes in multi-threaded runs.
	MemContention func(threads int) float64
	// Cache-miss model: per memory op, with probability MissP1/1024 add
	// MissCost1 cycles, with probability MissP2/1024 add MissCost2
	// (modelling L2/LLC misses and the resulting interval jitter).
	MissP1, MissP2       int64
	MissCost1, MissCost2 int64

	// ProbeBase is the cost of executing an untaken IR probe
	// (increment + compare + untaken branch on a thread-local counter).
	ProbeBase int64
	// ProbeTakenExtra is charged when a probe passes its gate and runs
	// the handler-dispatch logic.
	ProbeTakenExtra int64
	// HandlerInvoke is the cost of invoking one handler (the call, the
	// bookkeeping, update_nextint) — the handler body itself bills its
	// own work via Thread.Charge.
	HandlerInvoke int64
	// CycleRead is the cost of reading the cycle counter (RDTSC-like).
	CycleRead int64

	// HWInterruptCost is the total per-interrupt cost of a hardware
	// performance-counter interrupt: trap, kernel perf handling, signal
	// delivery and sigreturn (§2.4).
	HWInterruptCost int64
	// HWTrapCost is the portion of HWInterruptCost paid before the
	// handler runs (trap + kernel entry + signal setup); the rest is
	// paid on the way out (sigreturn). Delivery latency experiments see
	// only the pre-handler part.
	HWTrapCost int64

	// UIntrCost is the total per-delivery cost of a hardware user-level
	// interrupt (uintr): user-mode vector delivery plus uiret, no
	// kernel transition and no probe instructions anywhere in the code.
	// Two orders of magnitude cheaper than a perf-counter interrupt,
	// but still well above a probe.
	UIntrCost int64
	// UIntrLatency is the fixed delivery latency paid before the
	// handler runs (the interrupt message crossing the uncore and the
	// vector dispatch); the rest of UIntrCost is the return path. This
	// is the deterministic worst-case-response knob of the uintr
	// design.
	UIntrLatency int64
}

// Default returns the calibrated default cost model. The absolute
// numbers are loosely modeled on a Skylake-class core; what matters for
// the reproduction is their ratios (probe ≈ a few cycles, hardware
// interrupt ≈ tens of thousands).
func Default() *CostModel {
	m := &CostModel{}
	for op := 0; op < ir.NumOpcodes; op++ {
		m.OpCost[op] = 1
	}
	m.OpCost[ir.OpMul] = 3
	m.OpCost[ir.OpDiv] = 12
	m.OpCost[ir.OpRem] = 12
	m.OpCost[ir.OpLoad] = 4
	m.OpCost[ir.OpStore] = 2
	m.OpCost[ir.OpAtomicAdd] = 20
	m.OpCost[ir.OpCall] = 4
	m.OpCost[ir.OpExtCall] = 0 // the extern declaration carries the cost
	m.OpCost[ir.OpReadCycles] = 8
	m.OpCost[ir.OpNop] = 0
	m.TermCost = 1
	m.MemContention = func(threads int) float64 {
		if threads <= 1 {
			return 1
		}
		return 1 + 0.44*math.Log2(float64(threads))
	}
	m.MissP1, m.MissCost1 = 96, 18  // ~9.4% "L2 miss"
	m.MissP2, m.MissCost2 = 10, 220 // ~1% "LLC miss"
	m.ProbeBase = 5
	m.ProbeTakenExtra = 6
	m.HandlerInvoke = 24
	m.CycleRead = 9
	m.HWInterruptCost = 40000
	m.HWTrapCost = 6000
	m.UIntrCost = 300
	m.UIntrLatency = 100
	return m
}
