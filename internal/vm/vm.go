package vm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ci/ciruntime"
	"repro/internal/ir"
	"repro/internal/obs"
)

// HWConfig enables hardware (performance-counter) interrupts: every
// IntervalCycles of a thread's virtual time, the machine charges the
// model's HWInterruptCost and invokes Handler. This is the baseline CIs
// are compared against in Figure 12. With User set the same machinery
// models user-level interrupts (uintr): delivery skips the kernel, the
// per-delivery cost drops to the model's UIntrCost (split at
// UIntrLatency), and deliveries count as UIntrs instead of
// HWInterrupts.
type HWConfig struct {
	IntervalCycles int64
	// Handler runs in interrupt context; it may call Thread.Charge to
	// bill its own work.
	Handler func(t *Thread)
	// User marks the interrupt source as a hardware user-level
	// interrupt: cost defaults switch to UIntrCost/UIntrLatency and
	// Stats.UIntrs counts the deliveries.
	User bool
	// Cost and TrapCost, when positive, override the cost model's
	// per-delivery total and pre-handler split for this config — the
	// delivery-latency knob of the uintr design axis.
	Cost     int64
	TrapCost int64
}

// costs resolves the per-delivery total and pre-handler split for this
// config against the model's defaults.
func (hw *HWConfig) costs(m *CostModel) (total, pre int64) {
	total, pre = m.HWInterruptCost, m.HWTrapCost
	if hw.User {
		total, pre = m.UIntrCost, m.UIntrLatency
	}
	if hw.Cost > 0 {
		total = hw.Cost
	}
	if hw.TrapCost > 0 {
		pre = hw.TrapCost
	}
	if pre <= 0 || pre > total {
		pre = total
	}
	return total, pre
}

// VM is a virtual machine instance: a module, a cost model, flat shared
// memory and a thread count (used by the contention model).
type VM struct {
	Mod     *ir.Module
	Model   *CostModel
	Threads int
	Mem     []int64
	// HW, when non-nil, enables hardware interrupts on all threads.
	HW *HWConfig
	// LimitInstrs aborts a run after this many executed IR instructions
	// per thread (0 = no limit); a guard against accidental infinite
	// loops in tests. Exceeding it returns an error wrapping
	// ErrStepBudget.
	LimitInstrs int64
	// MaxHandlerCycles bounds the cycles an interrupt handler may bill
	// (via Thread.Charge) per delivery; 0 disables the guard. Exceeding
	// it returns an error wrapping ErrHandlerOverrun.
	MaxHandlerCycles int64
	// Obs, when enabled, receives probe-site profiles, handler spans,
	// external-call spans and hardware-interrupt instants from every
	// thread. Nil (the default) is the disabled scope and keeps the
	// probe-fire path allocation-free.
	Obs *obs.Scope
	// Tier selects the execution engine: TierInterpreter (the default,
	// and the reference semantics) or TierCompiled, which pre-decodes
	// the module into closure-threaded code with fused superinstructions
	// and a single-compare untaken-probe path. The compiled tier is
	// cycle-exact — Stats match the interpreter bit for bit — and
	// threads with an OnProbe hook, an attached trace, or an enabled obs
	// scope transparently deoptimize back to the interpreter (see
	// compiled.go for the deopt rules).
	Tier Tier

	compileOnce sync.Once
	compiled    *compiledModule
}

// New creates a VM for the module with the given cost model (nil for
// Default) and thread count (minimum 1).
func New(mod *ir.Module, model *CostModel, threads int) *VM {
	if model == nil {
		model = Default()
	}
	if threads < 1 {
		threads = 1
	}
	mem := mod.MemWords
	if mem < 1 {
		mem = 1
	}
	return &VM{Mod: mod, Model: model, Threads: threads, Mem: make([]int64, mem)}
}

// Stats aggregates one thread's execution counters.
type Stats struct {
	// Cycles is the thread's virtual time.
	Cycles int64
	// Instrs counts executed IR instructions (probes excluded).
	Instrs int64
	// Probes / ProbesTaken count probe executions and probes that fired
	// at least one handler.
	Probes      int64
	ProbesTaken int64
	// HandlerCalls counts handler invocations (CI or hardware).
	HandlerCalls int64
	// CycleReads counts cycle-counter reads performed by probes.
	CycleReads int64
	// ExtCalls counts external (uninstrumented) calls.
	ExtCalls int64
	// HWInterrupts counts hardware interrupts delivered.
	HWInterrupts int64
	// UIntrs counts user-level interrupts delivered (HWConfig.User).
	UIntrs int64
}

// Thread executes IR on the VM. Each thread has its own virtual clock,
// register frames, CI runtime and RNG; memory is shared.
type Thread struct {
	VM    *VM
	ID    int
	RT    *ciruntime.Runtime
	Stats Stats
	// OnStore, when non-nil, observes every committed memory write
	// (stores and atomic adds) with the enclosing function and block
	// names, the word address and the value written. It is the
	// observable-effect tap the differential oracle compares baseline
	// and instrumented runs on; probes never trigger it. Observers must
	// not mutate VM state.
	OnStore func(fn, block string, addr, val int64)
	// OnLoad is the load-side twin of OnStore: it observes every
	// committed memory read with the value that was read. The
	// interleaving verifier (internal/interleave) needs both sides of
	// the access trace to find handler/main races; the differential
	// oracle keeps using OnStore alone. Nil (the default) keeps the
	// load path allocation-free. Note that the implicit read half of an
	// atomic add reports through OnAtomic/OnStore, not here.
	OnLoad func(fn, block string, addr, val int64)
	// OnAtomic, when non-nil, refines OnStore for atomic adds: it
	// receives the value before the add and the addend separately, and
	// the atomic is then NOT reported to OnStore. Observers that only
	// care about the committed value (the differential oracle) leave it
	// nil and keep seeing atomics through OnStore; the race detector
	// sets it to tell commutative read-modify-writes apart from plain
	// stores without shadow-memory reconstruction.
	OnAtomic func(fn, block string, addr, old, add int64)
	// OnProbe, when non-nil, is consulted at every probe executed in
	// main (non-handler) context, before the cadence logic runs. The
	// return value is the number of forced handler sweeps to deliver at
	// this probe site via the CI runtime's FireAll — the interleaving
	// explorer's schedule driver. Return 0 for "no forced fire here".
	// Probes reached from handler IR (via CallHandler) never consult it,
	// so site ordinals are stable under schedule perturbation.
	OnProbe func() int

	model      *CostModel
	memMul     float64
	rng        uint64
	nextHW     int64
	hwOverhead int64
	trace      *Trace
	obs        *obs.Scope
	inExt      bool
	inHandler  bool
	depth      int
	limit      int64
	funcMap    map[string]*ir.Func
	// frames is the compiled tier's register-frame pool, indexed by call
	// depth − 1. Pointers are stable (each frame is allocated once, the
	// first time its depth is reached), so frames in flight across a
	// nested dispatch loop stay valid while deeper calls extend the pool.
	frames []*frame
}

// NewThread creates thread id with a fresh CI runtime whose clock is
// the thread's virtual cycle counter.
func (vm *VM) NewThread(id int) *Thread {
	t := &Thread{
		VM:     vm,
		ID:     id,
		RT:     ciruntime.New(),
		model:  vm.Model,
		memMul: vm.Model.MemContention(vm.Threads),
		rng:    uint64(id)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3,
		limit:  vm.LimitInstrs,
		obs:    vm.Obs,
	}
	if vm.HW != nil {
		t.nextHW = vm.HW.IntervalCycles
	}
	t.funcMap = make(map[string]*ir.Func, len(vm.Mod.Funcs))
	for _, f := range vm.Mod.Funcs {
		t.funcMap[f.Name] = f
	}
	return t
}

// Now returns the thread's virtual time in cycles.
func (t *Thread) Now() int64 { return t.Stats.Cycles }

// RearmHW pushes the next hardware-interrupt deadline one full
// interval into the future. In watchdog (hybrid CI+HW) mode the CI
// handler calls this on every fire, so the hardware timer only
// triggers when compiler interrupts have gone quiet — e.g. during long
// uninstrumented gaps.
func (t *Thread) RearmHW() {
	if hw := t.VM.HW; hw != nil {
		t.nextHW = t.Stats.Cycles - t.hwOverhead + hw.IntervalCycles
	}
}

// Charge bills extra cycles to the thread (used by interrupt handlers
// to account for their own work).
func (t *Thread) Charge(cycles int64) { t.Stats.Cycles += cycles }

// Run executes the named function with the given arguments and returns
// its result.
func (t *Thread) Run(fn string, args ...int64) (int64, error) {
	if t.inHandler {
		return 0, fmt.Errorf("vm: %w: Run(%q) from interrupt context", ErrHandlerReentrancy, fn)
	}
	f := t.funcMap[fn]
	if f == nil {
		return 0, fmt.Errorf("vm: no function %q", fn)
	}
	if len(args) != f.NumParams {
		return 0, fmt.Errorf("vm: %q takes %d args, got %d", fn, f.NumParams, len(args))
	}
	return t.exec(f, args)
}

// exec routes execution to the selected tier. The compiled tier only
// runs when no deopt-forcing observer is attached: OnProbe (forced-fire
// schedules), an attached trace, and an enabled obs scope all need the
// interpreter's full observation surface, so those threads fall back
// per run. OnStore/OnLoad/OnAtomic are supported natively by the
// compiled closures and do not deopt.
func (t *Thread) exec(f *ir.Func, args []int64) (int64, error) {
	if t.VM.Tier == TierCompiled && t.OnProbe == nil && t.trace == nil && t.obs == nil {
		if cf := t.VM.compiledMod().funcs[f.Name]; cf != nil {
			return t.callCompiled(cf, args)
		}
	}
	return t.call(f, args)
}

func (t *Thread) rand() uint64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// memCost models a load/store: base plus stochastic cache misses, all
// scaled by the contention factor (more threads sharing the memory
// system slow every memory operation, including miss handling).
func (t *Thread) memCost(base int64) int64 {
	c := base
	r := int64(t.rand() & 1023)
	m := t.model
	if r < m.MissP2 {
		c += m.MissCost2
	} else if r < m.MissP2+m.MissP1 {
		c += m.MissCost1
	}
	if t.memMul == 1 {
		// Exact: int64(float64(c)*1.0) == c for any cost in range, so
		// single-threaded runs skip the float round trip entirely.
		return c
	}
	return int64(float64(c) * t.memMul)
}

func (t *Thread) memAddr(regs []int64, base ir.Reg, off int64) (int64, error) {
	addr := off
	if base != ir.NoReg {
		addr += regs[base]
	}
	if addr < 0 || addr >= int64(len(t.VM.Mem)) {
		return 0, fmt.Errorf("vm: %w: address %d (mem size %d)", ErrMemFault, addr, len(t.VM.Mem))
	}
	return addr, nil
}

// checkHW delivers due hardware interrupts. Scheduling is against
// "work cycles" (total minus interrupt overhead): a performance-counter
// interrupt counts user work, not the trap/kernel/signal cost of
// delivering the previous interrupt.
func (t *Thread) checkHW() error {
	hw := t.VM.HW
	if hw == nil {
		return nil
	}
	for t.Stats.Cycles-t.hwOverhead >= t.nextHW {
		total, pre := hw.costs(t.model)
		post := total - pre
		t.Stats.Cycles += pre
		t.hwOverhead += pre
		if hw.User {
			t.Stats.UIntrs++
		} else {
			t.Stats.HWInterrupts++
		}
		t.Stats.HandlerCalls++
		if t.trace != nil {
			t.trace.add(TraceEvent{Kind: TraceHW, Cycle: t.Stats.Cycles, Detail: total})
		}
		if t.obs != nil {
			name := "hw-interrupt"
			if hw.User {
				name = "uintr"
			}
			t.obs.Instant("vm", name, int32(t.ID), t.Stats.Cycles,
				obs.I("cost", total))
		}
		// Default periodic schedule first, so a handler calling RearmHW
		// (watchdog mode) can override it.
		t.nextHW += hw.IntervalCycles
		if hw.Handler != nil {
			before := t.Stats.Cycles
			prev := t.inHandler
			t.inHandler = true
			hw.Handler(t)
			t.inHandler = prev
			if err := t.checkOverrun(t.Stats.Cycles-before, 1, "hardware"); err != nil {
				return err
			}
		}
		t.Stats.Cycles += post
		t.hwOverhead += post
		if t.inExt {
			// During a blocking call, coalesce to a single delivery.
			if t.nextHW <= t.Stats.Cycles-t.hwOverhead {
				t.nextHW = t.Stats.Cycles - t.hwOverhead + hw.IntervalCycles
			}
			return nil
		}
	}
	return nil
}

// checkOverrun enforces MaxHandlerCycles: charged is what handlers
// billed during one delivery window that invoked fired handlers.
func (t *Thread) checkOverrun(charged int64, fired int, kind string) error {
	max := t.VM.MaxHandlerCycles
	if max <= 0 || charged <= max*int64(fired) {
		return nil
	}
	return fmt.Errorf("vm: %w: %s handler billed %d cycles (budget %d x %d fires)",
		ErrHandlerOverrun, kind, charged, max, fired)
}

const maxDepth = 4096

func (t *Thread) call(f *ir.Func, args []int64) (int64, error) {
	t.depth++
	if t.depth > maxDepth {
		t.depth--
		return 0, fmt.Errorf("vm: %w: depth exceeds %d in %q", ErrCallDepth, maxDepth, f.Name)
	}
	defer func() { t.depth-- }()

	regs := make([]int64, f.NumRegs)
	copy(regs, args)
	m := t.model
	b := f.Blocks[0]
	for {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case ir.OpProbe:
				if err := t.execProbe(f, b, in.Probe, regs); err != nil {
					return 0, err
				}
				continue
			case ir.OpNop:
				continue
			}
			t.Stats.Instrs++
			switch in.Op {
			case ir.OpMov:
				t.Stats.Cycles += m.OpCost[ir.OpMov]
				if in.BImm {
					regs[in.Dst] = in.Imm
				} else {
					regs[in.Dst] = regs[in.A]
				}
			case ir.OpLoad:
				t.Stats.Cycles += t.memCost(m.OpCost[ir.OpLoad])
				addr, err := t.memAddr(regs, in.A, in.Imm)
				if err != nil {
					return 0, err
				}
				regs[in.Dst] = t.VM.Mem[addr]
				if t.OnLoad != nil {
					t.OnLoad(f.Name, b.Name, addr, regs[in.Dst])
				}
			case ir.OpStore:
				t.Stats.Cycles += t.memCost(m.OpCost[ir.OpStore])
				addr, err := t.memAddr(regs, in.A, in.Imm)
				if err != nil {
					return 0, err
				}
				t.VM.Mem[addr] = regs[in.B]
				if t.OnStore != nil {
					t.OnStore(f.Name, b.Name, addr, regs[in.B])
				}
			case ir.OpAtomicAdd:
				t.Stats.Cycles += t.memCost(m.OpCost[ir.OpAtomicAdd])
				addr, err := t.memAddr(regs, in.A, in.Imm)
				if err != nil {
					return 0, err
				}
				old := atomic.AddInt64(&t.VM.Mem[addr], regs[in.B]) - regs[in.B]
				if in.Dst != ir.NoReg {
					regs[in.Dst] = old
				}
				if t.OnAtomic != nil {
					t.OnAtomic(f.Name, b.Name, addr, old, regs[in.B])
				} else if t.OnStore != nil {
					t.OnStore(f.Name, b.Name, addr, old+regs[in.B])
				}
			case ir.OpCall:
				t.Stats.Cycles += m.OpCost[ir.OpCall]
				callee := t.funcMap[in.Callee]
				if callee == nil {
					return 0, fmt.Errorf("vm: call to unknown function %q", in.Callee)
				}
				cargs := make([]int64, len(in.Args))
				for k, r := range in.Args {
					cargs[k] = regs[r]
				}
				rv, err := t.call(callee, cargs)
				if err != nil {
					return 0, err
				}
				if in.Dst != ir.NoReg {
					regs[in.Dst] = rv
				}
			case ir.OpExtCall:
				if err := t.execExtCall(in, regs); err != nil {
					return 0, err
				}
			case ir.OpReadCycles:
				t.Stats.Cycles += m.OpCost[ir.OpReadCycles]
				regs[in.Dst] = t.Stats.Cycles
			default:
				t.Stats.Cycles += m.OpCost[in.Op]
				var bv int64
				if in.BImm {
					bv = in.Imm
				} else {
					bv = regs[in.B]
				}
				av := regs[in.A]
				var out int64
				switch in.Op {
				case ir.OpAdd:
					out = av + bv
				case ir.OpSub:
					out = av - bv
				case ir.OpMul:
					out = av * bv
				case ir.OpDiv:
					if bv != 0 {
						out = av / bv
					}
				case ir.OpRem:
					if bv != 0 {
						out = av % bv
					}
				case ir.OpAnd:
					out = av & bv
				case ir.OpOr:
					out = av | bv
				case ir.OpXor:
					out = av ^ bv
				case ir.OpShl:
					out = av << (uint64(bv) & 63)
				case ir.OpShr:
					out = av >> (uint64(bv) & 63)
				case ir.OpCmpEq:
					out = b2i(av == bv)
				case ir.OpCmpNe:
					out = b2i(av != bv)
				case ir.OpCmpLt:
					out = b2i(av < bv)
				case ir.OpCmpLe:
					out = b2i(av <= bv)
				case ir.OpCmpGt:
					out = b2i(av > bv)
				case ir.OpCmpGe:
					out = b2i(av >= bv)
				case ir.OpMin:
					out = min(av, bv)
				case ir.OpMax:
					out = max(av, bv)
				default:
					return 0, fmt.Errorf("vm: unhandled opcode %v", in.Op)
				}
				regs[in.Dst] = out
			}
		}
		// Block finished: terminator, limits, hardware interrupts.
		t.Stats.Cycles += m.TermCost
		t.Stats.Instrs++
		if t.limit > 0 && t.Stats.Instrs > t.limit {
			return 0, fmt.Errorf("vm: %w: instruction limit %d in %q", ErrStepBudget, t.limit, f.Name)
		}
		if err := t.checkHW(); err != nil {
			return 0, err
		}
		switch b.Term.Kind {
		case ir.TermJmp:
			b = b.Term.Then
		case ir.TermBr:
			if regs[b.Term.Cond] != 0 {
				b = b.Term.Then
			} else {
				b = b.Term.Else
			}
		case ir.TermRet:
			if b.Term.Val == ir.NoReg {
				return 0, nil
			}
			return regs[b.Term.Val], nil
		default:
			return 0, fmt.Errorf("vm: unterminated block %q in %q", b.Name, f.Name)
		}
	}
}

// execExtCall executes one external (uninstrumented) call — shared
// verbatim by both execution tiers so the libci intrinsics, blocking
// coalescing, and mid-call hardware-interrupt delivery stay
// tier-independent. The caller has already counted the instruction.
func (t *Thread) execExtCall(in *ir.Instr, regs []int64) error {
	// libci intrinsics (Table 2): programs call
	// ci_disable/ci_enable as externs; the VM routes them
	// to the thread's CI runtime. ciid comes from the
	// first argument (0 = all handlers, per §2.2).
	if in.Callee == "ci_disable" || in.Callee == "ci_enable" {
		t.Stats.Cycles += 4
		ciid := 0
		if len(in.Args) > 0 {
			ciid = int(regs[in.Args[0]])
		}
		if in.Callee == "ci_disable" {
			t.RT.Disable(ciid)
		} else {
			t.RT.Enable(ciid)
		}
		if in.Dst != ir.NoReg {
			regs[in.Dst] = 0
		}
		return nil
	}
	ext := t.VM.Mod.Externs[in.Callee]
	if ext == nil {
		return fmt.Errorf("vm: extcall to unknown extern %q", in.Callee)
	}
	t.Stats.ExtCalls++
	if t.trace != nil {
		t.trace.add(TraceEvent{Kind: TraceExtCall, Cycle: t.Stats.Cycles, Detail: ext.Cost, Name: ext.Name})
	}
	extStart := t.Stats.Cycles
	if ext.Blocking {
		// Blocking system call: interrupts are deferred and
		// coalesce to a single delivery at completion.
		t.inExt = true
		t.Stats.Cycles += ext.Cost
		err := t.checkHW()
		t.inExt = false
		if err != nil {
			return err
		}
	} else if t.VM.HW != nil {
		// Uninstrumented library code still takes hardware
		// interrupts mid-call: deliver them at their
		// deadlines inside the call.
		remaining := ext.Cost
		for remaining > 0 {
			until := t.nextHW - (t.Stats.Cycles - t.hwOverhead)
			if until > remaining {
				t.Stats.Cycles += remaining
				break
			}
			if until < 0 {
				until = 0
			}
			t.Stats.Cycles += until
			remaining -= until
			if err := t.checkHW(); err != nil {
				return err
			}
		}
	} else {
		t.Stats.Cycles += ext.Cost
	}
	if t.obs != nil {
		t.obs.Span("vm", "extcall", int32(t.ID), extStart, t.Stats.Cycles,
			obs.S("callee", ext.Name))
	}
	if in.Dst != ir.NoReg {
		regs[in.Dst] = 0
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// execProbe runs one probe instruction, charging model costs and
// driving the CI runtime. CI handlers fire inside the RT.Probe* calls;
// the thread is marked as being in interrupt context for their
// duration so re-entering Run is caught, and any cycles they bill via
// Charge are checked against the overrun budget. f and b identify the
// probe's IR site for the observability profile; every obs call is
// guarded on t.obs so the disabled path stays allocation-free.
func (t *Thread) execProbe(f *ir.Func, b *ir.Block, p *ir.ProbeInfo, regs []int64) error {
	m := t.model
	t.Stats.Probes++
	var forced int
	if t.OnProbe != nil && !t.inHandler {
		forced = t.OnProbe()
	}
	probeStart := t.Stats.Cycles
	inc := p.Inc
	switch p.Kind {
	case ir.ProbeIRLoop, ir.ProbeCyclesLoop:
		iters := regs[p.IndVar] - regs[p.Base]
		if iters < 0 {
			iters = 0
		}
		inc = iters * p.Inc
	}
	var fired, reads int
	switch p.Kind {
	case ir.ProbeIR, ir.ProbeIRLoop:
		t.Stats.Cycles += m.ProbeBase
		before := t.Stats.Cycles
		prev := t.inHandler
		t.inHandler = true
		fired = t.RT.ProbeIR(inc, t.Stats.Cycles)
		t.inHandler = prev
		if err := t.checkOverrun(t.Stats.Cycles-before, max(fired, 1), "CI"); err != nil {
			return err
		}
	case ir.ProbeCycles, ir.ProbeCyclesLoop:
		t.Stats.Cycles += m.ProbeBase
		before := t.Stats.Cycles
		prev := t.inHandler
		t.inHandler = true
		reads, fired = t.RT.ProbeCycles(inc, t.Stats.Cycles)
		t.inHandler = prev
		if err := t.checkOverrun(t.Stats.Cycles-before, max(fired, 1), "CI"); err != nil {
			return err
		}
		t.Stats.CycleReads += int64(reads)
		t.Stats.Cycles += int64(reads) * m.CycleRead
	case ir.ProbeEvent:
		t.Stats.Cycles += m.ProbeBase
		before := t.Stats.Cycles
		prev := t.inHandler
		t.inHandler = true
		fired = t.RT.ProbeEvent(inc, t.Stats.Cycles)
		t.inHandler = prev
		if err := t.checkOverrun(t.Stats.Cycles-before, max(fired, 1), "CI"); err != nil {
			return err
		}
	case ir.ProbeEventCycles:
		before := t.Stats.Cycles
		prev := t.inHandler
		t.inHandler = true
		reads, fired = t.RT.ProbeEventCycles(t.Stats.Cycles)
		t.inHandler = prev
		if err := t.checkOverrun(t.Stats.Cycles-before, max(fired, 1), "CI"); err != nil {
			return err
		}
		t.Stats.CycleReads += int64(reads)
		t.Stats.Cycles += m.ProbeBase + int64(reads)*m.CycleRead
	}
	if fired > 0 {
		t.Stats.ProbesTaken++
		t.Stats.HandlerCalls += int64(fired)
		t.Stats.Cycles += m.ProbeTakenExtra + int64(fired)*m.HandlerInvoke
	}
	if forced > 0 {
		n, err := t.forceFire(forced)
		if err != nil {
			return err
		}
		if n > 0 && fired == 0 {
			t.Stats.ProbesTaken++
		}
		fired += n
	}
	if t.obs != nil {
		t.obs.SiteHit(f.Name, b.Name, fired > 0)
		if fired > 0 {
			t.obs.Span("vm", "probe-fire", int32(t.ID), probeStart, t.Stats.Cycles,
				obs.S("fn", f.Name), obs.S("block", b.Name), obs.I("fired", int64(fired)))
			t.obs.Observe("vm/handler_window_cycles", t.Stats.Cycles-probeStart)
		}
	}
	return nil
}

// forceFire delivers n unconditional handler sweeps at the current
// probe site on behalf of OnProbe — the interleaving explorer's
// schedule driver. Each sweep fires every currently-enabled handler
// through the runtime's FireAll, under the same interrupt-context and
// overrun guards as cadence fires (kind "forced" in the overrun
// error). Sweeps that find every handler disabled deliver nothing;
// the caller learns the delivered count from its own fire observers.
func (t *Thread) forceFire(n int) (int, error) {
	m := t.model
	total := 0
	for k := 0; k < n; k++ {
		before := t.Stats.Cycles
		prev := t.inHandler
		t.inHandler = true
		fired := t.RT.FireAll(t.Stats.Cycles)
		t.inHandler = prev
		if err := t.checkOverrun(t.Stats.Cycles-before, max(fired, 1), "forced"); err != nil {
			return total, err
		}
		if fired > 0 {
			t.Stats.HandlerCalls += int64(fired)
			t.Stats.Cycles += m.ProbeTakenExtra + int64(fired)*m.HandlerInvoke
			total += fired
		}
	}
	return total, nil
}

// CallHandler executes the named IR function in interrupt context, on
// behalf of a registered handler closure. Run refuses to re-enter the
// interpreter from a handler (ErrHandlerReentrancy) because it would
// start a fresh top-level frame on the same virtual clock; CallHandler
// is the sanctioned path for handlers whose body is itself IR in the
// module — it keeps the thread marked as in interrupt context, so
// probes executed by the handler's own code never consult OnProbe and
// a nested Run attempt still trips the reentrancy guard.
func (t *Thread) CallHandler(fn string, args ...int64) (int64, error) {
	f := t.funcMap[fn]
	if f == nil {
		return 0, fmt.Errorf("vm: no function %q", fn)
	}
	if len(args) != f.NumParams {
		return 0, fmt.Errorf("vm: %q takes %d args, got %d", fn, f.NumParams, len(args))
	}
	prev := t.inHandler
	t.inHandler = true
	rv, err := t.exec(f, args)
	t.inHandler = prev
	return rv, err
}

// RunParallel executes fn on n threads concurrently, calling args(id)
// for each thread's arguments and setup(t) — which may register CI
// handlers — before each thread starts. It returns the per-thread
// stats. Shared-memory programs must confine cross-thread communication
// to atomic operations.
func (vm *VM) RunParallel(n int, fn string, args func(id int) []int64, setup func(t *Thread)) ([]Stats, error) {
	stats := make([]Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th := vm.NewThread(id)
			if setup != nil {
				setup(th)
			}
			_, err := th.Run(fn, args(id)...)
			errs[id] = err
			stats[id] = th.Stats
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}
