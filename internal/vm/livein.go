// Entry-liveness analysis for the compiled tier's frame pooling.
//
// The interpreter allocates a fresh (zeroed) register file per call;
// the compiled tier reuses pooled frames, so a recycled frame starts
// with whatever the previous occupant left behind. Zeroing the whole
// file per call is what the pool was supposed to avoid — on
// call-heavy workloads the memclr dominates the profile. Instead,
// compileFunc computes the function's live-in register set (registers
// some path can read before writing) with a standard backward
// dataflow over the CFG, and pushFrame zeroes only those. Registers
// outside the set are written before every possible read, so the
// garbage they hold is unobservable and parity with the interpreter's
// all-zero file is exact. The IR has no indirect register addressing,
// which is what makes the use/def sets syntactically complete.
package vm

import "repro/internal/ir"

// regSet is a dense bitset over a function's virtual registers.
type regSet []uint64

func newRegSet(numRegs int) regSet { return make(regSet, (numRegs+63)/64) }

func (s regSet) add(r ir.Reg) {
	if r != ir.NoReg {
		s[uint32(r)>>6] |= 1 << (uint32(r) & 63)
	}
}

func (s regSet) has(r ir.Reg) bool {
	return r != ir.NoReg && s[uint32(r)>>6]&(1<<(uint32(r)&63)) != 0
}

// orInto folds o into s, reporting whether s changed.
func (s regSet) orInto(o regSet) bool {
	changed := false
	for i, w := range o {
		if s[i]|w != s[i] {
			s[i] |= w
			changed = true
		}
	}
	return changed
}

// instrRegs reports the registers one instruction reads (use) and
// writes (def), in the exact order the interpreter and the compiled
// closures touch them. Loop-probe closures read their induction and
// base registers; unknown opcodes halt with an error before touching
// any register, so they contribute nothing.
func instrRegs(in *ir.Instr, use, def func(ir.Reg)) {
	switch {
	case in.Op == ir.OpNop:
	case in.Op == ir.OpProbe:
		if p := in.Probe; p != nil && (p.Kind == ir.ProbeIRLoop || p.Kind == ir.ProbeCyclesLoop) {
			use(p.IndVar)
			use(p.Base)
		}
	case in.Op == ir.OpMov:
		if !in.BImm {
			use(in.A)
		}
		def(in.Dst)
	case in.Op.IsBinary():
		use(in.A)
		if !in.BImm {
			use(in.B)
		}
		def(in.Dst)
	case in.Op == ir.OpLoad:
		use(in.A) // NoReg (absolute address) is ignored by the sets
		def(in.Dst)
	case in.Op == ir.OpStore:
		use(in.A)
		use(in.B)
	case in.Op == ir.OpAtomicAdd:
		use(in.A)
		use(in.B)
		def(in.Dst)
	case in.Op == ir.OpCall, in.Op == ir.OpExtCall:
		for _, r := range in.Args {
			use(r)
		}
		def(in.Dst)
	case in.Op == ir.OpReadCycles:
		def(in.Dst)
	}
}

// liveInRegs computes the live-in set of f's entry block: every
// register some path from entry can read before writing. Classic
// backward may-analysis — per-block gen (read before written) and
// kill (written) sets, then liveIn = gen ∪ (liveOut \ kill) iterated
// to fixpoint — returned as a sorted index list for pushFrame.
func liveInRegs(f *ir.Func) []int32 {
	n := len(f.Blocks)
	gen := make([]regSet, n)
	kill := make([]regSet, n)
	liveIn := make([]regSet, n)
	for i, b := range f.Blocks {
		g, k := newRegSet(f.NumRegs), newRegSet(f.NumRegs)
		for j := range b.Instrs {
			instrRegs(&b.Instrs[j],
				func(r ir.Reg) {
					if !k.has(r) {
						g.add(r)
					}
				},
				k.add)
		}
		switch b.Term.Kind {
		case ir.TermBr:
			if !k.has(b.Term.Cond) {
				g.add(b.Term.Cond)
			}
		case ir.TermRet:
			if !k.has(b.Term.Val) {
				g.add(b.Term.Val)
			}
		}
		gen[i], kill[i] = g, k
		liveIn[i] = newRegSet(f.NumRegs)
		copy(liveIn[i], g)
	}
	// Local block index: the analysis runs on a module other VMs may be
	// executing concurrently, so it must not touch shared Block.Index.
	idx := make(map[*ir.Block]int, n)
	for i, b := range f.Blocks {
		idx[b] = i
	}
	var succs []*ir.Block
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			liveOut := newRegSet(f.NumRegs)
			succs = b.Succs(succs[:0])
			for _, s := range succs {
				liveOut.orInto(liveIn[idx[s]])
			}
			// liveIn[i] |= liveOut \ kill[i]
			in := liveIn[i]
			k := kill[i]
			for w := range liveOut {
				add := liveOut[w] &^ k[w]
				if in[w]|add != in[w] {
					in[w] |= add
					changed = true
				}
			}
		}
	}
	var out []int32
	entry := liveIn[0]
	for r := 0; r < f.NumRegs; r++ {
		if entry.has(ir.Reg(r)) {
			out = append(out, int32(r))
		}
	}
	return out
}
