package fleet

import (
	"fmt"

	"repro/internal/overload"
	"repro/internal/sim"
)

// HealthIntervalCycles is the balancer's probe cadence: 130_000
// cycles = 50 µs, five epochs.
const HealthIntervalCycles = 130_000

// backend is the balancer's view of one replica: a health breaker
// (an overload.Controller used breaker-only) plus an outstanding
// counter for load estimates.
type backend struct {
	hc          *overload.Controller
	outstanding int64
	ejections   int64
	readmits    int64
}

// balancer routes attempts to replicas: per-tenant rate gates first
// (isolating a misbehaving tenant to its own share), then a policy
// pick over healthy backends. Health is judged from synthetic probes:
// a probe fails while the replica is down and carries the replica's
// queue-delay signal, so crashed replicas trip the breaker on
// failures and gray-slow replicas trip it on latency outliers. An
// ejected (Open) backend receives no traffic until the cooldown
// half-opens it; half-open backends re-admit a bounded number of real
// requests as probes before closing.
type balancer struct {
	cfg Config
	bk  []backend
	rng *sim.RNG // p2c sampling; consumed serially only

	tenants       []*overload.Controller
	tenantRejects []int64

	// Failure-domain bookkeeping: zoneOf labels each backend, zoneOpen
	// counts each zone's currently-ejected backends (maintained by the
	// breaker state-change hook), and a zone with at least half its
	// backends ejected is treated as suffering a correlated outage —
	// its survivors are deprioritized too.
	zoneOf   []int
	zoneSize []int
	zoneOpen []int

	// drainPending marks backends whose breaker opened since the last
	// migration barrier; the serial phase drains their queues.
	drainPending []bool

	// pick scratch, reused across calls to keep the serial phase
	// allocation-light.
	routable, zHealthy, zFailing []int

	rrNext     int
	nextHealth int64

	probes, probeFailures     int64
	tenantRejected, unrouted  int64
	migrated, migrationFailed int64
}

func newBalancer(c Config) *balancer {
	b := &balancer{
		cfg: c,
		rng: sim.NewRNG(c.Seed ^ 0x6c62), // "lb"
	}
	b.bk = make([]backend, c.Replicas)
	b.zoneOf = make([]int, c.Replicas)
	b.zoneSize = make([]int, c.Zones)
	b.zoneOpen = make([]int, c.Zones)
	b.drainPending = make([]bool, c.Replicas)
	for i := range b.bk {
		i := i
		b.zoneOf[i] = i % c.Zones
		b.zoneSize[b.zoneOf[i]]++
		b.bk[i].hc = overload.New(&overload.Config{
			Name:         fmt.Sprintf("fleet/lb%d", i),
			WindowCycles: 5 * HealthIntervalCycles,
			Breaker: overload.BreakerConfig{
				// 5 probes per window; a down replica fails them all,
				// a gray replica pushes the probe latency signal past
				// the deadline.
				ErrFracTrip:      0.4,
				MinSamples:       3,
				LatencyP99Cycles: c.DeadlineCycles,
				CooldownCycles:   2 * c.DeadlineCycles,
				HalfOpenProbes:   4,
			},
			OnStateChange: func(from, to overload.State, now int64) {
				if to == overload.Open {
					b.bk[i].ejections++
					b.zoneOpen[b.zoneOf[i]]++
					b.drainPending[i] = true
				}
				if from == overload.Open {
					b.zoneOpen[b.zoneOf[i]]--
				}
				if from == overload.HalfOpen && to == overload.Closed {
					b.bk[i].readmits++
				}
			},
		})
	}
	// Per-tenant rate gates: each tenant gets its fair share of the
	// cluster's analytic capacity plus 25% headroom, so well-behaved
	// tenants never hit their gate while a misbehaving tenant's excess
	// is shed at the door instead of inside the replicas.
	perCycle := float64(c.Replicas) / meanDemandCycles
	share := 1.25 * perCycle / float64(c.Tenants)
	b.tenants = make([]*overload.Controller, c.Tenants)
	b.tenantRejects = make([]int64, c.Tenants)
	for i := range b.tenants {
		b.tenants[i] = overload.New(&overload.Config{
			Name:         fmt.Sprintf("fleet/tenant%d", i),
			RatePerCycle: share,
			Burst:        256,
			Breaker:      overload.BreakerConfig{Disabled: true},
		})
	}
	return b
}

// tenantAdmit runs one attempt through its tenant's rate gate.
func (b *balancer) tenantAdmit(a *attempt) bool {
	v := b.tenants[a.tenant].Admit(a.arrival, overload.Request{Arrival: a.arrival})
	if !v.Admitted() {
		b.tenantRejects[a.tenant]++
		return false
	}
	return true
}

// healthTick probes every backend at the probe cadence: failure while
// the replica is down, latency from its queue-delay signal; the poll
// drives the breaker's cooldown and window rotation.
func (b *balancer) healthTick(f *fleetState, t int64) {
	if t < b.nextHealth {
		return
	}
	b.nextHealth = t + HealthIntervalCycles
	for i := range b.bk {
		down := f.replicas[i].isDown(t)
		lat := f.replicas[i].oldestSojourn(t)
		b.probes++
		if down {
			b.probeFailures++
		}
		b.bk[i].hc.Observe(t, lat, down)
		b.bk[i].hc.Poll(t, lat)
	}
}

// estDelay is the balancer-side queue estimate for one backend.
func (b *balancer) estDelay(i int) int64 {
	return int64(float64(b.bk[i].outstanding) * meanDemandCycles)
}

// takeDrain consumes backend i's pending-drain mark (set when its
// breaker opened), returning whether a migration drain is due.
func (b *balancer) takeDrain(i int) bool {
	d := b.drainPending[i]
	b.drainPending[i] = false
	return d
}

// zoneDown reports whether zone z looks like a correlated outage: at
// least half its backends are ejected. Its surviving backends are
// deprioritized too — in a real failure domain the survivors share
// the failing power/network and are the next to go.
func (b *balancer) zoneDown(z int) bool {
	return b.zoneOpen[z]*2 >= b.zoneSize[z]
}

// usable reports whether backend i may receive the attempt now:
// Closed always, HalfOpen only by consuming one of its bounded
// real-request probe slots, Open never.
func (b *balancer) usable(i int, now int64) bool {
	switch b.bk[i].hc.BreakerState() {
	case overload.Open:
		return false
	case overload.HalfOpen:
		return b.bk[i].hc.Admit(now, overload.Request{Arrival: now}).Admitted()
	}
	return true
}

// pick chooses a replica for one attempt under the configured policy.
// The policy ranks candidates; the first usable one (healthy, or
// half-open with a probe slot left) wins. Returns false when no
// backend can take the attempt.
func (b *balancer) pick(f *fleetState, a *attempt) (int, bool) {
	n := len(b.bk)
	order := make([]int, 0, n)
	switch b.cfg.Policy {
	case RoundRobin:
		for k := 0; k < n; k++ {
			order = append(order, (b.rrNext+k)%n)
		}
		b.rrNext = (b.rrNext + 1) % n
	case LeastLoaded:
		for k := 0; k < n; k++ {
			order = append(order, k)
		}
		// stable selection sort by outstanding (n is small)
		for i := 0; i < len(order); i++ {
			best := i
			for j := i + 1; j < len(order); j++ {
				if b.bk[order[j]].outstanding < b.bk[order[best]].outstanding {
					best = j
				}
			}
			order[i], order[best] = order[best], order[i]
		}
	case P2CDeadline:
		// Candidates are sampled over routable (non-Open) backends
		// only, and always with exactly two draws: the second draw
		// ranges over m-1 slots and is shifted past the first, so no
		// rejection loop and no draw is ever spent on an ejected
		// backend. Ejection windows therefore never shift the seeded
		// stream's alignment and cross-policy runs stay comparable.
		routable := b.routable[:0]
		for k := 0; k < n; k++ {
			if b.bk[k].hc.BreakerState() != overload.Open {
				routable = append(routable, k)
			}
		}
		b.routable = routable
		if m := len(routable); m >= 2 {
			ii := int(b.rng.Intn(int64(m)))
			jj := int(b.rng.Intn(int64(m - 1)))
			if jj >= ii {
				jj++
			}
			i, j := routable[ii], routable[jj]
			remaining := a.reqArrival + b.cfg.DeadlineCycles - a.arrival
			di, dj := b.estDelay(i), b.estDelay(j)
			first, second := i, j
			if dj < di {
				first, second = j, i
				di, dj = dj, di
			}
			// Deadline awareness: if the lighter pick cannot fit the
			// remaining budget but the heavier one can (it is half-open
			// fresh, say), prefer the one that fits.
			if di > remaining && dj <= remaining {
				first, second = second, first
			}
			order = append(order, first, second)
			for _, k := range routable {
				if k != i && k != j {
					order = append(order, k)
				}
			}
		} else if m == 1 {
			order = append(order, routable[0])
		}
	}
	if b.cfg.Zones > 1 {
		order = b.preferSurvivingZones(order)
	}
	for _, i := range order {
		if i == a.exclude && len(order) > 1 {
			continue
		}
		if b.usable(i, a.arrival) {
			return i, true
		}
	}
	return 0, false
}

// preferSurvivingZones stably partitions the policy's candidate order
// so backends in surviving zones come before backends in zones under
// correlated outage, preserving the policy's own ranking within each
// class. All three policies therefore steer around a zone outage
// while keeping their discipline intact.
func (b *balancer) preferSurvivingZones(order []int) []int {
	healthy := b.zHealthy[:0]
	failing := b.zFailing[:0]
	for _, i := range order {
		if b.zoneDown(b.zoneOf[i]) {
			failing = append(failing, i)
		} else {
			healthy = append(healthy, i)
		}
	}
	b.zHealthy, b.zFailing = healthy, failing
	if len(healthy) == 0 || len(failing) == 0 {
		return order
	}
	copy(order, healthy)
	copy(order[len(healthy):], failing)
	return order
}

// noteRouted records one attempt handed to backend i.
func (b *balancer) noteRouted(i int) { b.bk[i].outstanding++ }

// noteOutcome returns one attempt's slot and, while the backend is
// half-open, feeds the real outcome to the health breaker (the
// bounded re-admission probes).
func (b *balancer) noteOutcome(o *outcome, now int64) {
	i := o.att.replica
	b.bk[i].outstanding--
	if b.bk[i].hc.BreakerState() == overload.HalfOpen {
		b.bk[i].hc.Observe(now, o.at-o.att.arrival, o.status == stFailed)
	}
}

func (b *balancer) fill(res *Result) {
	res.Probes = b.probes
	res.ProbeFailures = b.probeFailures
	res.TenantRejected = b.tenantRejected
	res.LBUnrouted = b.unrouted
	res.Migrated = b.migrated
	res.MigrationFailed = b.migrationFailed
	for i := range b.bk {
		res.PerReplica[i].Ejections = b.bk[i].ejections
		res.PerReplica[i].Readmissions = b.bk[i].readmits
		res.Ejections += b.bk[i].ejections
		res.Readmissions += b.bk[i].readmits
	}
	for i, n := range b.tenantRejects {
		res.PerTenant[i].Rejected = n
	}
}
