package fleet

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/overload"
)

// attemptKind classifies an attempt within its request.
type attemptKind int8

const (
	kindFirst attemptKind = iota
	kindRetry
	kindHedge
)

// attempt is one routed try of a request. Attempts are created in
// serial phases and owned by exactly one replica between barriers.
type attempt struct {
	id         int64
	reqID      int64
	tenant     int32
	kind       attemptKind
	replica    int   // set at routing
	exclude    int   // replica to avoid (hedges shun their primary); -1 = none
	arrival    int64 // attempt send time
	reqArrival int64 // original request arrival (deadline base)
	demand     int64 // service demand in cycles
}

// status is an attempt's terminal state.
type status int8

const (
	stServed status = iota
	stRejected
	stExpired
	stFailed // crash-killed or refused while the replica was down
	stCancelled
)

// outcome is one attempt's terminal record, produced by a replica (or
// by the balancer for unrouted attempts) and settled by the clients.
type outcome struct {
	att    attempt
	at     int64
	status status
}

// replica is one CI-polled server: a single serving core with an
// overload-controller admission plane, polled every
// PollIntervalCycles, subject to seeded crash and gray-failure
// windows. All fields are replica-owned between barriers; the serial
// phases read them only at barriers.
type replica struct {
	id   int
	zone int
	cfg  Config
	ctrl *overload.Controller
	inj  *faults.Injector

	inbox   []attempt
	cancels []int64
	outbox  []outcome

	q         []attempt // admitted, not yet started (FIFO)
	qDemand   int64     // sum of queued demands
	cur       attempt
	busy      bool
	busyUntil int64

	// migrateOut parks queued-but-unstarted attempts a crash diverted
	// (when Config.Migrate is on) until the next barrier's migration
	// phase drains them. The serial phase also appends an ejected
	// replica's queue here before re-routing.
	migrateOut []attempt

	nextPoll int64

	// fault windows: next onset timestamps (-1 = none pending).
	nextCrashAt int64
	crashDown   int64
	downUntil   int64
	nextGrayAt  int64
	grayDur     int64
	grayFactor  float64
	grayUntil   int64

	// correlated zone outage windows, shared read-only with the zone's
	// other replicas and consumed via private cursors.
	zoneCrash      []zoneWindow
	zoneGray       []zoneWindow
	zcIdx, zgIdx   int
	zoneGrayUntil  int64
	zoneGrayFactor float64

	crashes, graySlows     int64
	zoneCrashes, zoneGrays int64
	refused                int64
	crashKilled            int64
	// admitted-but-never-started attempts removed from the queue by a
	// crash, a hedge cancellation, or a migration drain; they feed the
	// overload plane's admission identity alongside the still-queued
	// count.
	killedNotStarted    int64
	cancelledNotStarted int64
	migratedNotStarted  int64
	migratedOut         int64
}

func newReplica(id, zone int, cfg Config, inj *faults.Injector, zoneCrash, zoneGray []zoneWindow) *replica {
	r := &replica{
		id:        id,
		zone:      zone,
		cfg:       cfg,
		inj:       inj,
		zoneCrash: zoneCrash,
		zoneGray:  zoneGray,
		ctrl: overload.New(&overload.Config{
			Name:           fmt.Sprintf("fleet/replica%d", id),
			DeadlineCycles: cfg.DeadlineCycles,
			// The balancer's per-backend health breaker owns ejection;
			// a second breaker inside the replica would fight it.
			Breaker: overload.BreakerConfig{Disabled: true},
		}),
		nextCrashAt: -1,
		nextGrayAt:  -1,
		grayFactor:  1,
	}
	if gap, down, ok := r.inj.NextCrash(); ok {
		r.nextCrashAt, r.crashDown = gap, down
	}
	if gap, dur, factor, ok := r.inj.NextGraySlow(); ok {
		r.nextGrayAt, r.grayDur, r.grayFactor = gap, dur, factor
	}
	return r
}

// isDown reports whether the replica is crashed at time t (read by
// the balancer's health probes at barriers).
func (r *replica) isDown(t int64) bool { return t < r.downUntil }

// oldestSojourn is the queue-delay signal at time t: how long the
// oldest queued attempt has waited (0 with an empty queue).
func (r *replica) oldestSojourn(t int64) int64 {
	if len(r.q) == 0 {
		return 0
	}
	return t - r.q[0].arrival
}

// inFlight counts admitted attempts not yet terminal, including work
// parked for migration that never reached a barrier.
func (r *replica) inFlight() int64 {
	n := int64(len(r.q) + len(r.migrateOut))
	if r.busy {
		n++
	}
	return n
}

// step runs the replica over [t0, t1): applies pending cancels,
// admits inbox arrivals in time order, and serves the queue, all
// interleaved with crash onsets, gray-failure onsets and control
// polls in strict event order.
func (r *replica) step(t0, t1 int64) {
	for _, id := range r.cancels {
		for i := range r.q {
			if r.q[i].id == id {
				r.qDemand -= r.q[i].demand
				r.cancelledNotStarted++
				r.emit(outcome{att: r.q[i], at: t0, status: stCancelled})
				r.q = append(r.q[:i], r.q[i+1:]...)
				break
			}
		}
	}
	r.cancels = r.cancels[:0]

	for _, a := range r.inbox {
		at := a.arrival
		if at < t0 {
			at = t0
		}
		r.advance(at)
		r.admit(a, at)
	}
	r.inbox = r.inbox[:0]
	r.advance(t1)
}

// admit takes one arrival's admission decision at time at.
func (r *replica) admit(a attempt, at int64) {
	if r.isDown(at) {
		r.refused++
		r.emit(outcome{att: a, at: at, status: stFailed})
		return
	}
	est := r.qDemand + a.demand
	if r.busy {
		est += r.busyUntil - at
	}
	v := r.ctrl.Admit(at, overload.Request{
		Arrival:        a.reqArrival,
		EstDelayCycles: est,
		Prio:           overload.PriorityOf(a.id),
	})
	if !v.Admitted() {
		r.emit(outcome{att: a, at: at, status: stRejected})
		return
	}
	r.q = append(r.q, a)
	r.qDemand += a.demand
	r.startNext(at)
}

// advance plays out all events strictly before t: completions, crash
// onsets, gray onsets, and control polls, in time order.
func (r *replica) advance(t int64) {
	for {
		ev := t
		kind := 0 // 0 none, 1 completion, 2 crash, 3 gray, 4 poll, 5 zone crash, 6 zone gray
		if r.busy && r.busyUntil < ev {
			ev, kind = r.busyUntil, 1
		}
		if r.nextCrashAt >= 0 && r.nextCrashAt < ev {
			ev, kind = r.nextCrashAt, 2
		}
		if r.nextGrayAt >= 0 && r.nextGrayAt < ev {
			ev, kind = r.nextGrayAt, 3
		}
		if r.zcIdx < len(r.zoneCrash) && r.zoneCrash[r.zcIdx].at < ev {
			ev, kind = r.zoneCrash[r.zcIdx].at, 5
		}
		if r.zgIdx < len(r.zoneGray) && r.zoneGray[r.zgIdx].at < ev {
			ev, kind = r.zoneGray[r.zgIdx].at, 6
		}
		if r.nextPoll < ev {
			ev, kind = r.nextPoll, 4
		}
		switch kind {
		case 0:
			return
		case 1:
			r.emit(outcome{att: r.cur, at: r.busyUntil, status: stServed})
			r.ctrl.Observe(r.busyUntil, r.busyUntil-r.cur.arrival, false)
			r.busy = false
			r.startNext(r.busyUntil)
		case 2:
			r.crash(ev)
		case 3:
			r.graySlows++
			r.grayUntil = ev + r.grayDur
			if gap, dur, factor, ok := r.inj.NextGraySlow(); ok {
				r.nextGrayAt, r.grayDur, r.grayFactor = r.grayUntil+gap, dur, factor
			} else {
				r.nextGrayAt = -1
			}
		case 4:
			r.ctrl.Poll(ev, r.oldestSojourn(ev))
			r.nextPoll = ev + PollIntervalCycles
		case 5:
			w := r.zoneCrash[r.zcIdx]
			r.zcIdx++
			r.zoneCrashes++
			r.failover(ev, ev+w.dur)
		case 6:
			w := r.zoneGray[r.zgIdx]
			r.zgIdx++
			r.zoneGrays++
			if until := ev + w.dur; until > r.zoneGrayUntil {
				r.zoneGrayUntil = until
			}
			r.zoneGrayFactor = w.factor
		}
	}
}

// crash is a per-replica crash onset: shared failover handling, then
// the next onset is scheduled past recovery from the injector.
func (r *replica) crash(at int64) {
	r.crashes++
	r.failover(at, at+r.crashDown)
	if gap, down, ok := r.inj.NextCrash(); ok {
		r.nextCrashAt, r.crashDown = r.downUntil+gap, down
	} else {
		r.nextCrashAt = -1
	}
}

// failover handles a crash instant (replica class or zone class): the
// in-service attempt always dies at the crash (explicitly accounted,
// never silently lost); queued-but-unstarted attempts either die with
// it or — with migration on — park in migrateOut for the next
// barrier's drain. The replica goes down until at least `until`
// (overlapping windows extend, never shorten, the outage).
func (r *replica) failover(at, until int64) {
	if r.busy {
		r.emit(outcome{att: r.cur, at: at, status: stFailed})
		r.ctrl.Observe(at, at-r.cur.arrival, true)
		r.crashKilled++
		r.busy = false
	}
	if r.cfg.Migrate {
		r.migrateOut = append(r.migrateOut, r.q...)
	} else {
		for _, a := range r.q {
			r.emit(outcome{att: a, at: at, status: stFailed})
		}
		r.crashKilled += int64(len(r.q))
		r.killedNotStarted += int64(len(r.q))
	}
	r.q = r.q[:0]
	r.qDemand = 0

	if until > r.downUntil {
		r.downUntil = until
	}
	// The restarted process polls fresh from recovery.
	r.nextPoll = r.downUntil + PollIntervalCycles
}

// startNext begins service of the queue head at time now, expiring
// dead-on-arrival work via the overload plane's deadline discipline.
func (r *replica) startNext(now int64) {
	for !r.busy && len(r.q) > 0 {
		a := r.q[0]
		r.q = r.q[1:]
		r.qDemand -= a.demand
		if !r.ctrl.StartOrExpire(now, a.reqArrival+r.cfg.DeadlineCycles, PollIntervalCycles) {
			r.emit(outcome{att: a, at: now, status: stExpired})
			continue
		}
		d := a.demand
		if now < r.grayUntil {
			d = int64(float64(d) * r.grayFactor)
		}
		// An overlapping correlated zone slowdown compounds with the
		// replica's own gray window.
		if now < r.zoneGrayUntil {
			d = int64(float64(d) * r.zoneGrayFactor)
		}
		r.cur = a
		r.busy = true
		r.busyUntil = now + d
	}
}

func (r *replica) emit(o outcome) { r.outbox = append(r.outbox, o) }

// stats summarizes the replica for the Result.
func (r *replica) stats() ReplicaStats {
	s := r.ctrl.Snapshot()
	return ReplicaStats{
		Zone:           r.zone,
		Admitted:       s.Admitted,
		Served:         s.Completed,
		Expired:        s.Expired,
		Rejected:       s.Rejected + s.Shed,
		Refused:        r.refused,
		Crashes:        r.crashes,
		CrashKilled:    r.crashKilled,
		GraySlows:      r.graySlows,
		ZoneCrashes:    r.zoneCrashes,
		ZoneGrays:      r.zoneGrays,
		MigratedOut:    r.migratedOut,
		StrandedQueued: r.killedNotStarted,
	}
}

// checkInvariants runs the overload plane's accounting oracle with
// the replica's independent count of admitted-never-started attempts:
// still queued (or parked for migration) at run end, killed unstarted
// by a crash, cancelled unstarted by a hedge twin, or drained off by
// migration.
func (r *replica) checkInvariants() error {
	return r.ctrl.Invariants(int64(len(r.q)+len(r.migrateOut)) +
		r.killedNotStarted + r.cancelledNotStarted + r.migratedNotStarted)
}
