// Package fleet is the multi-server resilience layer: N CI-polled
// server replicas behind a health-checked load balancer, driven by an
// open-loop multi-tenant client population with heavy-tailed service
// demands. It composes the repo's existing planes — internal/overload
// controllers guard each replica's admission and the balancer's
// per-backend health breakers and per-tenant rate isolation;
// internal/faults seeds whole-replica crash/restart and gray-failure
// (slow-replica) windows — into one deterministic cluster simulation.
//
// Resilience machinery on top of plain load balancing:
//
//   - health checks with outlier ejection and half-open re-admission
//     (the overload package's breaker, one Controller per backend);
//   - per-tenant retries with exponential backoff, bounded by a
//     cluster-wide retry budget so retries can never storm: at deposit
//     fraction f per first attempt, retry amplification is bounded by
//     1 + f (+ the hedge fraction) by construction;
//   - hedged requests after a p99-derived delay with first-wins
//     cancellation; a hedge whose twin also completes is accounted as
//     a hedge-duplicate, never double-counted as a served request;
//   - a conservation oracle proving every injected request and every
//     attempt is accounted exactly once.
//
// Execution is bulk-synchronous: virtual time advances in fixed
// epochs; serial barrier phases (arrival generation, routing, health
// checks, outcome delivery) alternate with parallel per-replica steps
// that touch only replica-owned state, sharded across an
// engine.ShardRunner. Replica state is statically owned and every
// random stream is consumed either serially or by its owning replica,
// so reports are byte-identical at any worker count and workers=1
// degenerates to the plain serial loop.
package fleet

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/stats"
)

// CyclesPerUs converts model cycles to microseconds (2.6 GHz clock).
const CyclesPerUs = 2600.0

// EpochCycles is the BSP step length: 26_000 cycles = 10 µs, ten CI
// polling intervals at the paper's 2500-cycle default.
const EpochCycles = 26_000

// PollIntervalCycles is the replica-local control-loop cadence inside
// an epoch, matching the CI probe discipline (~2500 cycles; 2600 here
// so an epoch holds a whole number of polls).
const PollIntervalCycles = 2600

// meanDemandCycles is the analytic mean of the bounded-Pareto service
// demand (xm=2500, H=250_000, alpha=1.5): ~6756 cycles per request.
const meanDemandCycles = 6756.0

// DefaultDeadlineCycles is the per-request deadline a zero
// Config.DeadlineCycles takes (~1 ms at the 2.6 GHz model clock).
const DefaultDeadlineCycles = 2_600_000

// Policy selects the balancer's routing discipline.
type Policy int

const (
	// RoundRobin cycles over healthy replicas.
	RoundRobin Policy = iota
	// LeastLoaded picks the healthy replica with the fewest
	// outstanding attempts.
	LeastLoaded
	// P2CDeadline samples two healthy replicas and keeps the one with
	// the lower estimated queue delay, preferring a candidate whose
	// estimate still fits the attempt's remaining deadline budget.
	P2CDeadline
)

var policyNames = [...]string{RoundRobin: "rr", LeastLoaded: "least", P2CDeadline: "p2c"}

// String names the policy (the -lb flag vocabulary).
func (p Policy) String() string { return policyNames[p] }

// ParsePolicy maps a -lb flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	for i, n := range policyNames {
		if s == n {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("fleet: unknown balancer policy %q (want rr, least, or p2c)", s)
}

// Config tunes one fleet run. Zero fields take the documented
// defaults.
type Config struct {
	// Replicas is the cluster size (default 8).
	Replicas int
	// Tenants is the client population size (default 4).
	Tenants int
	// Policy is the balancer's routing discipline (default P2CDeadline).
	Policy Policy
	// Seed roots every random stream of the run.
	Seed uint64

	// HorizonCycles is the injection horizon (default 130_000_000 ≈
	// 50 ms); the run then drains until all work resolves (bounded by
	// DrainCycles, default 4 × DeadlineCycles... see run loop).
	HorizonCycles int64
	// LoadFactor scales offered load against the cluster's analytic
	// capacity (default 0.8; 1.2 is the overloaded soak point).
	LoadFactor float64

	// DeadlineCycles is the per-request deadline from first injection
	// (default 2_600_000 ≈ 1 ms), propagated to replica admission.
	DeadlineCycles int64

	// MaxRetries bounds retries per request (default 2; 0 disables,
	// -1 forces 0).
	MaxRetries int
	// RetryBudgetFrac is the cluster retry-budget deposit per injected
	// request (default 0.1; negative disables retries entirely).
	RetryBudgetFrac float64

	// HedgeDelayCycles enables hedged requests: a second attempt is
	// sent when the first has been outstanding for
	// max(HedgeDelayCycles, observed p99 latency). 0 disables hedging.
	HedgeDelayCycles int64
	// HedgeBudgetFrac is the hedge-budget deposit per injected request
	// (default 0.05).
	HedgeBudgetFrac float64

	// Faults seeds crash and gray-failure windows. CrashReplicas
	// limits how many replicas (0..CrashReplicas-1) are subject to the
	// plan (default: all when a plan is set).
	Faults        *faults.Plan
	CrashReplicas int

	// Zones is the number of failure domains (default 1). Replica i
	// lives in zone i % Zones. The fault plan's zone classes
	// (ZoneCrashMeanGapCycles / ZoneGrayMeanGapCycles) draw one
	// correlated outage schedule per zone, applied to every replica in
	// it, and the balancer prefers candidates from surviving zones.
	// OutageZones limits how many zones (0..OutageZones-1) are subject
	// to the plan's zone classes (default: all), mirroring
	// CrashReplicas for the per-replica classes.
	Zones       int
	OutageZones int

	// Migrate enables cross-replica work migration: queued-but-
	// unstarted attempts on a crashed or ejected replica are drained at
	// the next barrier and re-routed through the balancer with their
	// original deadlines and tenant accounting intact, instead of dying
	// into the retry path.
	Migrate bool

	// MisbehavingTenant, when >= 0, marks one tenant that offers
	// MisbehaveFactor (default 4) times its fair share and retries
	// without backoff. Per-tenant rate isolation at the balancer keeps
	// it from consuming the other tenants' capacity. Default -1 (none);
	// the zero value of the struct therefore needs NewConfig or
	// withDefaults to see "none".
	MisbehavingTenant int
	MisbehaveFactor   float64
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 8
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.HorizonCycles <= 0 {
		c.HorizonCycles = 130_000_000
	}
	if c.LoadFactor <= 0 {
		c.LoadFactor = 0.8
	}
	if c.DeadlineCycles <= 0 {
		c.DeadlineCycles = DefaultDeadlineCycles
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBudgetFrac == 0 {
		c.RetryBudgetFrac = 0.1
	}
	if c.RetryBudgetFrac < 0 {
		c.RetryBudgetFrac = 0
	}
	if c.HedgeBudgetFrac <= 0 {
		c.HedgeBudgetFrac = 0.05
	}
	if c.Faults.Enabled() && c.CrashReplicas <= 0 {
		c.CrashReplicas = c.Replicas
	}
	if c.Zones <= 0 {
		c.Zones = 1
	}
	if c.Zones > c.Replicas {
		c.Zones = c.Replicas
	}
	if c.OutageZones <= 0 || c.OutageZones > c.Zones {
		c.OutageZones = c.Zones
	}
	if c.MisbehaveFactor <= 1 {
		c.MisbehaveFactor = 4
	}
	return c
}

// CapacityRPS is the cluster's analytic service capacity in requests
// per second: one serving core per replica at the mean demand.
func CapacityRPS(replicas int) float64 {
	return float64(replicas) * 2.6e9 / meanDemandCycles
}

// TenantStats is one tenant's view of the run.
type TenantStats struct {
	Injected, Served, ServedLate, Failed int64
	Rejected                             int64 // attempts refused by the tenant's rate gate
	P99Us, P999Us                        float64
	Misbehaving                          bool
}

// ReplicaStats is one replica's view of the run.
type ReplicaStats struct {
	Zone                                int
	Admitted, Served, Expired, Rejected int64
	Refused                             int64 // attempts that arrived while the replica was down
	Crashes                             int64
	CrashKilled                         int64 // admitted attempts killed by a crash
	GraySlows                           int64
	ZoneCrashes, ZoneGrays              int64 // correlated zone-outage windows experienced
	MigratedOut                         int64 // queued attempts drained off this replica
	StrandedQueued                      int64 // queued attempts a crash killed instead of migrating
	Ejections, Readmissions             int64
}

// Result is one fleet run's complete accounting. All fields are
// values (slices of value structs), so two Results from equal
// configurations compare equal with reflect.DeepEqual and hash to the
// same Fingerprint at any worker count.
type Result struct {
	Cfg struct {
		Replicas, Tenants int
		Policy            Policy
		Seed              uint64
		LoadFactor        float64
		Zones             int
		Migrate           bool
	}

	// Request-level conservation: Injected = Served + ServedLate +
	// FailedPerm + InFlightEnd.
	Injected, Served, ServedLate, FailedPerm, InFlightEnd int64

	// Attempt-level conservation: Attempts = Injected + Retries +
	// Hedges, and Attempts = AttemptServed + AttemptRejected +
	// AttemptExpired + AttemptFailed + AttemptCancelled +
	// AttemptInFlight.
	Attempts, Retries, Hedges                     int64
	AttemptServed, AttemptRejected, AttemptFailed int64
	AttemptExpired, AttemptCancelled              int64
	AttemptInFlight                               int64

	// HedgeDuplicates counts served attempts whose request had already
	// completed (folded inside AttemptServed); HedgeWins counts
	// requests completed by their hedge.
	HedgeDuplicates, HedgeWins int64
	// RetryDenied / HedgeDenied count budget refusals.
	RetryDenied, HedgeDenied int64

	// Balancer accounting.
	Probes, ProbeFailures, Ejections, Readmissions int64
	TenantRejected                                 int64 // attempts shed by per-tenant rate gates
	LBUnrouted                                     int64 // attempts with no admitting replica

	// Migration accounting: Migrated attempts were drained off a dying
	// replica and re-routed; MigrationFailed ones found no admitting
	// replica and fell back into the retry path as failures. Both sum
	// to the replicas' MigratedOut drain count.
	Migrated, MigrationFailed int64

	// Fault accounting. ZoneCrashes/ZoneGrays count correlated
	// per-replica outage windows from the plan's zone classes,
	// separately from the independent per-replica classes.
	Crashes, GraySlows     int64
	ZoneCrashes, ZoneGrays int64

	// Latency of completed requests (injection → first completion).
	P50Us, P99Us, P999Us, MaxUs float64
	// GoodputRPS is in-deadline completions per second of injection
	// horizon.
	GoodputRPS float64

	PerTenant  []TenantStats
	PerReplica []ReplicaStats

	// InvariantErrs carries any per-replica overload-plane accounting
	// violations (empty on a healthy run; deterministic, so it is part
	// of the fingerprint).
	InvariantErrs []string
}

// Amplification is Attempts/Injected — the retry-storm metric the
// budget bounds at 1 + RetryBudgetFrac + HedgeBudgetFrac.
func (r *Result) Amplification() float64 {
	if r.Injected == 0 {
		return 0
	}
	return float64(r.Attempts) / float64(r.Injected)
}

// Fingerprint hashes the full accounting for byte-identity checks
// across worker counts.
func (r *Result) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(fmt.Sprintf("%+v", *r))
	return h
}

// drainEnd bounds the run: up to 16 deadlines past the horizon so
// every attempt reaches a terminal state; whatever is left is
// InFlightEnd. Zone outage schedules are drawn out to the same bound.
func (c Config) drainEnd() int64 { return c.HorizonCycles + 16*c.DeadlineCycles }

// Run executes one fleet soak on the pool's workers. A nil pool runs
// serially.
func Run(cfg Config, pool *engine.Pool) *Result {
	c := cfg.withDefaults()
	f := newFleetState(c)
	runner := engine.NewShardRunner(pool, c.Replicas)
	defer runner.Close()

	drainEnd := c.drainEnd()
	for t := int64(0); t < drainEnd; t += EpochCycles {
		f.serialPhase(t)
		runner.Step(func(i int) { f.replicas[i].step(t, t+EpochCycles) })
		f.collect(t + EpochCycles)
		if t >= c.HorizonCycles && f.outstanding == 0 {
			break
		}
	}
	return f.result(c)
}

// fleetState is the serial-phase view of the whole cluster.
type fleetState struct {
	cfg      Config
	replicas []*replica
	lb       *balancer
	cl       *clients

	outstanding int64 // requests injected but not yet terminal
	latHist     stats.LogHist
	reqLat      []int64 // completed-request latencies for exact tails
}

func newFleetState(c Config) *fleetState {
	f := &fleetState{cfg: c}
	zoneCrash, zoneGray := zoneSchedules(c)
	f.replicas = make([]*replica, c.Replicas)
	for i := range f.replicas {
		var inj *faults.Injector
		if i < c.CrashReplicas {
			inj = faults.New(c.Faults, fmt.Sprintf("fleet/replica%d", i))
		}
		z := i % c.Zones
		f.replicas[i] = newReplica(i, z, c, inj, zoneCrash[z], zoneGray[z])
	}
	f.lb = newBalancer(c)
	f.cl = newClients(c)
	return f
}

// zoneWindow is one scheduled correlated outage for a whole zone:
// factor 0 is a crash window (the zone's replicas go down for dur),
// factor > 0 is a gray window (their service demands stretch by it).
type zoneWindow struct {
	at, dur int64
	factor  float64
}

// zoneSchedules pre-draws each zone's correlated outage windows from
// its own injector stream ("fleet/zone<z>"), out to the run's drain
// bound. Drawing the whole schedule up front keeps the parallel phase
// free of shared RNG state: replicas in a zone share the read-only
// window slice and consume it with private cursors, so reports stay
// byte-identical at any worker count. Onsets are spaced from the end
// of the previous window, like the per-replica classes.
func zoneSchedules(c Config) (crash, gray [][]zoneWindow) {
	crash = make([][]zoneWindow, c.Zones)
	gray = make([][]zoneWindow, c.Zones)
	end := c.drainEnd()
	for z := 0; z < c.Zones && z < c.OutageZones; z++ {
		inj := faults.New(c.Faults, fmt.Sprintf("fleet/zone%d", z))
		for t := int64(0); ; {
			gap, down, ok := inj.NextZoneCrash()
			if !ok {
				break
			}
			t += gap
			if t >= end {
				break
			}
			crash[z] = append(crash[z], zoneWindow{at: t, dur: down})
			t += down
		}
		for t := int64(0); ; {
			gap, dur, factor, ok := inj.NextZoneGraySlow()
			if !ok {
				break
			}
			t += gap
			if t >= end {
				break
			}
			gray[z] = append(gray[z], zoneWindow{at: t, dur: dur, factor: factor})
			t += dur
		}
	}
	return crash, gray
}

// serialPhase runs one epoch's barrier work at epoch start t: deliver
// due retries/hedges, generate fresh arrivals, run health checks, and
// route every attempt due this epoch into replica inboxes.
func (f *fleetState) serialPhase(t int64) {
	f.lb.healthTick(f, t)
	f.migrateDrained(t)
	var due []attempt
	if t < f.cfg.HorizonCycles {
		due = f.cl.arrivals(t, t+EpochCycles)
		f.outstanding += int64(len(due))
	}
	due = append(due, f.cl.dueRetries(t+EpochCycles)...)
	due = append(due, f.cl.dueHedges(t, f.hedgeDelay())...)
	sort.Slice(due, func(i, j int) bool {
		if due[i].arrival != due[j].arrival {
			return due[i].arrival < due[j].arrival
		}
		return due[i].id < due[j].id
	})
	for i := range due {
		f.route(&due[i])
	}
	f.cl.flushCancels(f.replicas)
}

// migrateDrained is the migration barrier phase: queued-but-unstarted
// attempts on a freshly-ejected backend, plus attempts a crash parked
// in its replica's migrate box during the last epoch, are drained in
// replica-index order and re-routed through the balancer. The attempt
// keeps its identity — original deadline base, tenant, demand — so
// tenant accounting and the conservation identities are untouched: a
// migrated attempt is the same attempt, admitted once at the source
// (never started there) and once at the target. An attempt whose
// hedge twin already completed has a cancellation pending; migration
// honors it at the source instead of re-routing a dead twin, so a
// request can never be double-served through migration.
func (f *fleetState) migrateDrained(t int64) {
	for i, r := range f.replicas {
		drain := f.lb.takeDrain(i)
		if !f.cfg.Migrate {
			continue
		}
		if drain && len(r.q) > 0 {
			r.migrateOut = append(r.migrateOut, r.q...)
			r.q = r.q[:0]
			r.qDemand = 0
		}
		for _, a := range r.migrateOut {
			f.lb.bk[i].outstanding--
			if f.cl.takeCancel(a.id) {
				r.cancelledNotStarted++
				f.deliver(outcome{att: a, at: t, status: stCancelled})
				continue
			}
			r.migratedOut++
			r.migratedNotStarted++
			f.rerouteMigrated(a, i, t)
		}
		r.migrateOut = r.migrateOut[:0]
	}
}

// rerouteMigrated re-routes one drained attempt at barrier time t,
// excluding its dying source. The tenant rate gate is skipped — the
// attempt was already admitted once and re-charging it would punish
// tenants for infrastructure failures. A failed migration (no
// admitting replica anywhere) becomes an attempt failure and feeds the
// normal retry path.
func (f *fleetState) rerouteMigrated(a attempt, from int, t int64) {
	a.arrival = t
	a.exclude = from
	r, ok := f.lb.pick(f, &a)
	if !ok {
		f.lb.migrationFailed++
		f.deliver(outcome{att: a, at: t, status: stFailed})
		return
	}
	a.replica = r
	f.lb.migrated++
	f.lb.noteRouted(r)
	f.cl.bindReplica(a.reqID, a.id, r)
	f.replicas[r].inbox = append(f.replicas[r].inbox, a)
}

// route sends one attempt through the tenant rate gate and the
// balancer into a replica inbox; refusals become immediate outcomes.
func (f *fleetState) route(a *attempt) {
	f.cl.noteAttempt(a)
	if !f.lb.tenantAdmit(a) {
		f.deliver(outcome{att: *a, at: a.arrival, status: stRejected})
		f.lb.tenantRejected++
		return
	}
	r, ok := f.lb.pick(f, a)
	if !ok {
		f.lb.unrouted++
		f.deliver(outcome{att: *a, at: a.arrival, status: stRejected})
		return
	}
	a.replica = r
	f.lb.noteRouted(r)
	f.cl.bindReplica(a.reqID, a.id, r)
	f.replicas[r].inbox = append(f.replicas[r].inbox, *a)
}

// collect drains every replica outbox at the epoch barrier and feeds
// the outcomes to the balancer and the client population.
func (f *fleetState) collect(now int64) {
	for _, r := range f.replicas {
		for _, o := range r.outbox {
			f.lb.noteOutcome(&o, now)
			f.deliver(o)
		}
		r.outbox = r.outbox[:0]
	}
}

// deliver hands one terminal attempt outcome to the client layer,
// which settles the request (completion, retry, hedge bookkeeping).
func (f *fleetState) deliver(o outcome) {
	done, lat := f.cl.settle(o)
	if done {
		f.outstanding--
		if lat >= 0 {
			f.latHist.Add(lat)
			f.reqLat = append(f.reqLat, lat)
		}
	}
}

// hedgeDelay is the current hedge trigger: the configured floor or
// the observed p99 request latency, whichever is larger.
func (f *fleetState) hedgeDelay() int64 {
	d := f.cfg.HedgeDelayCycles
	if d <= 0 {
		return 0
	}
	if p99 := f.latHist.Quantile(99); p99 > d {
		d = p99
	}
	return d
}

func (f *fleetState) result(c Config) *Result {
	res := &Result{}
	res.Cfg.Replicas = c.Replicas
	res.Cfg.Tenants = c.Tenants
	res.Cfg.Policy = c.Policy
	res.Cfg.Seed = c.Seed
	res.Cfg.LoadFactor = c.LoadFactor
	res.Cfg.Zones = c.Zones
	res.Cfg.Migrate = c.Migrate

	for _, r := range f.replicas {
		st := r.stats()
		res.PerReplica = append(res.PerReplica, st)
		res.Crashes += st.Crashes
		res.GraySlows += st.GraySlows
		res.ZoneCrashes += st.ZoneCrashes
		res.ZoneGrays += st.ZoneGrays
		res.AttemptInFlight += r.inFlight()
		if err := r.checkInvariants(); err != nil {
			res.InvariantErrs = append(res.InvariantErrs, err.Error())
		}
	}
	f.cl.fill(res)
	f.lb.fill(res)
	res.InFlightEnd = f.outstanding

	if len(f.reqLat) > 0 {
		s := stats.Summarize(f.reqLat)
		res.P50Us = float64(s.P50) / CyclesPerUs
		res.P99Us = float64(s.P99) / CyclesPerUs
		res.P999Us = float64(s.P999) / CyclesPerUs
		res.MaxUs = float64(s.Max) / CyclesPerUs
	}
	res.GoodputRPS = float64(res.Served) / (float64(c.HorizonCycles) / 2.6e9)
	return res
}
