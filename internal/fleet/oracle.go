package fleet

import "fmt"

// Conservation is the run's accounting oracle: every injected request
// and every attempt must be accounted exactly once. It cross-checks
// the client-side tallies against the independent per-replica
// controller snapshots, so a lost or double-counted attempt anywhere
// in the pipeline breaks an identity. Returns nil when every identity
// balances.
func (r *Result) Conservation() error {
	// Request level: injected = completed (in or past deadline) +
	// permanently failed + still in flight at run end.
	if got := r.Served + r.ServedLate + r.FailedPerm + r.InFlightEnd; got != r.Injected {
		return fmt.Errorf("fleet: request conservation broken: served=%d + late=%d + failed=%d + inflight=%d != injected=%d",
			r.Served, r.ServedLate, r.FailedPerm, r.InFlightEnd, r.Injected)
	}

	// Attempt provenance: every attempt is a first send, a retry, or a
	// hedge.
	if got := r.Injected + r.Retries + r.Hedges; got != r.Attempts {
		return fmt.Errorf("fleet: attempt provenance broken: injected=%d + retries=%d + hedges=%d != attempts=%d",
			r.Injected, r.Retries, r.Hedges, r.Attempts)
	}

	// Attempt disposition: every attempt reaches exactly one terminal
	// state (hedge duplicates are served attempts of already-completed
	// requests, folded inside AttemptServed).
	if got := r.AttemptServed + r.AttemptRejected + r.AttemptExpired +
		r.AttemptFailed + r.AttemptCancelled + r.AttemptInFlight; got != r.Attempts {
		return fmt.Errorf("fleet: attempt disposition broken: served=%d + rejected=%d + expired=%d + failed=%d + cancelled=%d + inflight=%d != attempts=%d",
			r.AttemptServed, r.AttemptRejected, r.AttemptExpired,
			r.AttemptFailed, r.AttemptCancelled, r.AttemptInFlight, r.Attempts)
	}

	// Cross-checks against the replicas' own overload controllers.
	var served, expired, rejected, refused, killed int64
	for _, st := range r.PerReplica {
		served += st.Served
		expired += st.Expired
		rejected += st.Rejected
		refused += st.Refused
		killed += st.CrashKilled
	}
	if served != r.AttemptServed {
		return fmt.Errorf("fleet: served cross-check broken: replicas completed %d, clients settled %d",
			served, r.AttemptServed)
	}
	if expired != r.AttemptExpired {
		return fmt.Errorf("fleet: expired cross-check broken: replicas expired %d, clients settled %d",
			expired, r.AttemptExpired)
	}
	if got := rejected + r.TenantRejected + r.LBUnrouted; got != r.AttemptRejected {
		return fmt.Errorf("fleet: rejected cross-check broken: replica=%d + tenant=%d + unrouted=%d != settled %d",
			rejected, r.TenantRejected, r.LBUnrouted, r.AttemptRejected)
	}
	if got := refused + killed; got != r.AttemptFailed {
		return fmt.Errorf("fleet: failed cross-check broken: refused=%d + crash-killed=%d != settled %d",
			refused, killed, r.AttemptFailed)
	}

	if r.HedgeDuplicates > r.Hedges+r.Retries {
		return fmt.Errorf("fleet: %d hedge duplicates exceed %d hedges + %d retries",
			r.HedgeDuplicates, r.Hedges, r.Retries)
	}
	for _, e := range r.InvariantErrs {
		return fmt.Errorf("fleet: replica overload invariant: %s", e)
	}
	return nil
}
