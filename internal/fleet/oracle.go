package fleet

import "fmt"

// Conservation is the run's accounting oracle: every injected request
// and every attempt must be accounted exactly once. It cross-checks
// the client-side tallies against the independent per-replica
// controller snapshots, so a lost or double-counted attempt anywhere
// in the pipeline breaks an identity. Returns nil when every identity
// balances.
func (r *Result) Conservation() error {
	// Request level: injected = completed (in or past deadline) +
	// permanently failed + still in flight at run end.
	if got := r.Served + r.ServedLate + r.FailedPerm + r.InFlightEnd; got != r.Injected {
		return fmt.Errorf("fleet: request conservation broken: served=%d + late=%d + failed=%d + inflight=%d != injected=%d",
			r.Served, r.ServedLate, r.FailedPerm, r.InFlightEnd, r.Injected)
	}

	// Attempt provenance: every attempt is a first send, a retry, or a
	// hedge.
	if got := r.Injected + r.Retries + r.Hedges; got != r.Attempts {
		return fmt.Errorf("fleet: attempt provenance broken: injected=%d + retries=%d + hedges=%d != attempts=%d",
			r.Injected, r.Retries, r.Hedges, r.Attempts)
	}

	// Attempt disposition: every attempt reaches exactly one terminal
	// state (hedge duplicates are served attempts of already-completed
	// requests, folded inside AttemptServed).
	if got := r.AttemptServed + r.AttemptRejected + r.AttemptExpired +
		r.AttemptFailed + r.AttemptCancelled + r.AttemptInFlight; got != r.Attempts {
		return fmt.Errorf("fleet: attempt disposition broken: served=%d + rejected=%d + expired=%d + failed=%d + cancelled=%d + inflight=%d != attempts=%d",
			r.AttemptServed, r.AttemptRejected, r.AttemptExpired,
			r.AttemptFailed, r.AttemptCancelled, r.AttemptInFlight, r.Attempts)
	}

	// Served-exactly-once: every completed request has exactly one
	// winning served attempt; every other served attempt of a done
	// request is a hedge duplicate. Migration preserves attempt
	// identity, so a migrated attempt racing its hedge twin cannot
	// create a second win.
	if got := r.Served + r.ServedLate + r.HedgeDuplicates; got != r.AttemptServed {
		return fmt.Errorf("fleet: served-once broken: served=%d + late=%d + dup=%d != attempt-served=%d",
			r.Served, r.ServedLate, r.HedgeDuplicates, r.AttemptServed)
	}

	// Cross-checks against the replicas' own overload controllers.
	var served, expired, rejected, refused, killed int64
	var migratedOut, stranded int64
	for _, st := range r.PerReplica {
		served += st.Served
		expired += st.Expired
		rejected += st.Rejected
		refused += st.Refused
		killed += st.CrashKilled
		migratedOut += st.MigratedOut
		stranded += st.StrandedQueued
	}
	if served != r.AttemptServed {
		return fmt.Errorf("fleet: served cross-check broken: replicas completed %d, clients settled %d",
			served, r.AttemptServed)
	}
	if expired != r.AttemptExpired {
		return fmt.Errorf("fleet: expired cross-check broken: replicas expired %d, clients settled %d",
			expired, r.AttemptExpired)
	}
	if got := rejected + r.TenantRejected + r.LBUnrouted; got != r.AttemptRejected {
		return fmt.Errorf("fleet: rejected cross-check broken: replica=%d + tenant=%d + unrouted=%d != settled %d",
			rejected, r.TenantRejected, r.LBUnrouted, r.AttemptRejected)
	}
	if got := refused + killed + r.MigrationFailed; got != r.AttemptFailed {
		return fmt.Errorf("fleet: failed cross-check broken: refused=%d + crash-killed=%d + migration-failed=%d != settled %d",
			refused, killed, r.MigrationFailed, r.AttemptFailed)
	}

	// Migration disposition: every attempt drained off a replica was
	// either re-routed or failed, exactly once. (Drained attempts
	// whose hedge twin already won are cancelled at the source and
	// never enter the drain count.)
	if got := r.Migrated + r.MigrationFailed; got != migratedOut {
		return fmt.Errorf("fleet: migration disposition broken: migrated=%d + failed=%d != drained %d",
			r.Migrated, r.MigrationFailed, migratedOut)
	}
	// With migration on, a crash may only kill in-service work; a
	// queued-but-unstarted attempt dying with its replica means the
	// drain stranded it.
	if r.Cfg.Migrate && stranded != 0 {
		return fmt.Errorf("fleet: migration stranded %d queued attempts", stranded)
	}

	if r.HedgeDuplicates > r.Hedges+r.Retries {
		return fmt.Errorf("fleet: %d hedge duplicates exceed %d hedges + %d retries",
			r.HedgeDuplicates, r.Hedges, r.Retries)
	}
	for _, e := range r.InvariantErrs {
		return fmt.Errorf("fleet: replica overload invariant: %s", e)
	}
	return nil
}
