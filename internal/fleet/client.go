package fleet

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Bounded-Pareto service demand (cycles): xm=2500 (one polling
// interval of work), H=250_000, alpha=1.5 — heavy-tailed with
// analytic mean ~6756 cycles (meanDemandCycles).
const (
	paretoXm    = 2500.0
	paretoH     = 250_000.0
	paretoAlpha = 1.5
)

func paretoDemand(rng *sim.RNG) int64 {
	u := rng.Float64()
	ratio := math.Pow(paretoXm/paretoH, paretoAlpha)
	x := paretoXm / math.Pow(1-u*(1-ratio), 1/paretoAlpha)
	return int64(x)
}

// retryBackoffBase is the first-retry backoff (~50 µs), doubling per
// retry with a small deterministic jitter.
const retryBackoffBase = 130_000

// outAtt is one in-flight attempt of a request.
type outAtt struct {
	id      int64
	replica int
}

// request is one client request's settlement state.
type request struct {
	arrival int64
	tenant  int32
	demand  int64
	retries int
	hedged  bool
	done    bool
	live    int // attempts in flight or scheduled
	out     []outAtt
}

// scheduled is a future retry in the retry heap.
type scheduled struct {
	at  int64
	att attempt
}

type retryHeap []scheduled

func (h retryHeap) Len() int { return len(h) }
func (h retryHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].att.id < h[j].att.id
}
func (h retryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *retryHeap) Push(x interface{}) { *h = append(*h, x.(scheduled)) }
func (h *retryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// hedgeEntry tracks a first attempt awaiting its hedge trigger.
type hedgeEntry struct {
	sendTime int64
	reqID    int64
}

type cancelMsg struct {
	replica int
	attID   int64
}

type tenantAcc struct {
	injected, served, servedLate, failed int64
	lats                                 []int64
	misbehaving                          bool
}

// clients is the open-loop multi-tenant population: per-tenant
// Poisson arrivals with bounded-Pareto demands, retry policies under
// a cluster retry budget, and hedging under a hedge budget. All state
// is serial-phase-owned.
type clients struct {
	cfg  Config
	rngs []*sim.RNG
	next []int64   // next arrival time per tenant
	mean []float64 // mean inter-arrival per tenant (cycles)

	nextReqID, nextAttID int64
	reqs                 map[int64]*request
	retryQ               retryHeap
	hedgeQ               []hedgeEntry
	cancels              []cancelMsg

	retryBudget, hedgeBudget float64

	perTenant []tenantAcc

	injected, served, servedLate, failedPerm      int64
	attempts, retries, hedges                     int64
	attServed, attRejected, attExpired, attFailed int64
	attCancelled                                  int64
	hedgeDup, hedgeWins, retryDenied, hedgeDenied int64
}

// budgetCap bounds accumulated unused budget so bursts stay bounded;
// total withdrawals can never exceed total deposits regardless.
const budgetCap = 1000

func newClients(c Config) *clients {
	cl := &clients{
		cfg:       c,
		reqs:      make(map[int64]*request),
		perTenant: make([]tenantAcc, c.Tenants),
	}
	// Fair share: LoadFactor × cluster capacity, split evenly; the
	// misbehaving tenant offers MisbehaveFactor times its share.
	totalPerCycle := c.LoadFactor * float64(c.Replicas) / meanDemandCycles
	share := totalPerCycle / float64(c.Tenants)
	for i := 0; i < c.Tenants; i++ {
		rate := share
		if i == c.MisbehavingTenant {
			rate *= c.MisbehaveFactor
			cl.perTenant[i].misbehaving = true
		}
		cl.rngs = append(cl.rngs, sim.NewRNG(c.Seed^uint64(0x74656e616e74)^uint64(i)<<32))
		cl.mean = append(cl.mean, 1/rate)
		cl.next = append(cl.next, cl.rngs[i].Exp(1/rate))
	}
	return cl
}

// arrivals generates every fresh request arriving in [t0, t1), merged
// across tenants in (arrival, id) order.
func (cl *clients) arrivals(t0, t1 int64) []attempt {
	var out []attempt
	for i := 0; i < cl.cfg.Tenants; i++ {
		for cl.next[i] < t1 {
			at := cl.next[i]
			cl.next[i] = at + cl.rngs[i].Exp(cl.mean[i])
			if at < t0 {
				at = t0 // catch-up after a long idle stretch
			}
			cl.nextReqID++
			cl.nextAttID++
			d := paretoDemand(cl.rngs[i])
			cl.reqs[cl.nextReqID] = &request{arrival: at, tenant: int32(i), demand: d}
			out = append(out, attempt{
				id: cl.nextAttID, reqID: cl.nextReqID, tenant: int32(i),
				kind: kindFirst, exclude: -1, arrival: at, reqArrival: at, demand: d,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].arrival != out[j].arrival {
			return out[i].arrival < out[j].arrival
		}
		return out[i].id < out[j].id
	})
	return out
}

// dueRetries pops every scheduled retry due before t1, clamping send
// times into the current epoch.
func (cl *clients) dueRetries(t1 int64) []attempt {
	var out []attempt
	for len(cl.retryQ) > 0 && cl.retryQ[0].at < t1 {
		s := heap.Pop(&cl.retryQ).(scheduled)
		a := s.att
		if a.arrival < t1-EpochCycles {
			a.arrival = t1 - EpochCycles
		}
		out = append(out, a)
	}
	return out
}

// dueHedges walks the hedge FIFO at time t: any first attempt
// outstanding longer than the hedge delay gets one hedge to a
// different replica, budget permitting.
func (cl *clients) dueHedges(t, delay int64) []attempt {
	if delay <= 0 {
		return nil
	}
	var out []attempt
	for len(cl.hedgeQ) > 0 && cl.hedgeQ[0].sendTime+delay <= t {
		e := cl.hedgeQ[0]
		cl.hedgeQ = cl.hedgeQ[1:]
		rq, ok := cl.reqs[e.reqID]
		if !ok || rq.done || rq.hedged || len(rq.out) == 0 {
			continue
		}
		if cl.hedgeBudget < 1 {
			cl.hedgeDenied++
			continue
		}
		cl.hedgeBudget--
		rq.hedged = true
		cl.nextAttID++
		out = append(out, attempt{
			id: cl.nextAttID, reqID: e.reqID, tenant: rq.tenant,
			kind: kindHedge, exclude: rq.out[0].replica,
			arrival: t, reqArrival: rq.arrival, demand: rq.demand,
		})
	}
	return out
}

// noteAttempt counts one attempt entering the system and registers it
// with its request.
func (cl *clients) noteAttempt(a *attempt) {
	cl.attempts++
	rq := cl.reqs[a.reqID]
	if a.kind != kindRetry {
		rq.live++ // retries were counted live when scheduled
	}
	rq.out = append(rq.out, outAtt{id: a.id, replica: -1})
	switch a.kind {
	case kindFirst:
		cl.injected++
		cl.perTenant[a.tenant].injected++
		cl.retryBudget = math.Min(cl.retryBudget+cl.cfg.RetryBudgetFrac, budgetCap)
		cl.hedgeBudget = math.Min(cl.hedgeBudget+cl.cfg.HedgeBudgetFrac, budgetCap)
		if cl.cfg.HedgeDelayCycles > 0 {
			cl.hedgeQ = append(cl.hedgeQ, hedgeEntry{sendTime: a.arrival, reqID: a.reqID})
		}
	case kindRetry:
		cl.retries++
	case kindHedge:
		cl.hedges++
	}
}

// bindReplica records where an attempt was routed (for hedge
// cancellation).
func (cl *clients) bindReplica(reqID, attID int64, replica int) {
	rq := cl.reqs[reqID]
	for i := range rq.out {
		if rq.out[i].id == attID {
			rq.out[i].replica = replica
			return
		}
	}
}

// settle applies one terminal attempt outcome. It returns whether the
// request itself just completed, and the request latency in cycles
// (-1 for a permanent failure).
func (cl *clients) settle(o outcome) (doneNow bool, lat int64) {
	rq := cl.reqs[o.att.reqID]
	rq.live--
	for i := range rq.out {
		if rq.out[i].id == o.att.id {
			rq.out = append(rq.out[:i], rq.out[i+1:]...)
			break
		}
	}
	lat = -1
	switch o.status {
	case stServed:
		cl.attServed++
		if rq.done {
			cl.hedgeDup++
		} else {
			rq.done = true
			doneNow = true
			lat = o.at - rq.arrival
			acc := &cl.perTenant[rq.tenant]
			acc.lats = append(acc.lats, lat)
			if lat <= cl.cfg.DeadlineCycles {
				cl.served++
				acc.served++
			} else {
				cl.servedLate++
				acc.servedLate++
			}
			if o.att.kind == kindHedge {
				cl.hedgeWins++
			}
			// First-wins cancellation of the twin attempt.
			for _, other := range rq.out {
				if other.replica >= 0 {
					cl.cancels = append(cl.cancels, cancelMsg{replica: other.replica, attID: other.id})
				}
			}
		}
	case stCancelled:
		cl.attCancelled++
	case stRejected, stExpired, stFailed:
		switch o.status {
		case stRejected:
			cl.attRejected++
		case stExpired:
			cl.attExpired++
		case stFailed:
			cl.attFailed++
		}
		if !rq.done {
			cl.maybeRetry(rq, &o)
			if rq.live == 0 {
				rq.done = true
				doneNow = true
				cl.failedPerm++
				cl.perTenant[rq.tenant].failed++
			}
		}
	}
	if rq.done && rq.live == 0 {
		delete(cl.reqs, o.att.reqID)
	}
	return doneNow, lat
}

// maybeRetry schedules one retry for a failed attempt when the
// per-request limit and the cluster retry budget allow it. The
// misbehaving tenant retries without backoff; everyone else backs off
// exponentially with deterministic jitter.
func (cl *clients) maybeRetry(rq *request, o *outcome) {
	if rq.retries >= cl.cfg.MaxRetries || cl.cfg.RetryBudgetFrac <= 0 {
		return
	}
	if cl.retryBudget < 1 {
		cl.retryDenied++
		return
	}
	cl.retryBudget--
	backoff := int64(0)
	if !cl.perTenant[rq.tenant].misbehaving {
		backoff = retryBackoffBase << uint(rq.retries)
		backoff += cl.rngs[rq.tenant].Intn(backoff / 2)
	}
	rq.retries++
	rq.live++ // stays live while the retry waits in the heap
	cl.nextAttID++
	a := attempt{
		id: cl.nextAttID, reqID: o.att.reqID, tenant: rq.tenant,
		kind: kindRetry, exclude: o.att.replica,
		arrival: o.at + backoff, reqArrival: rq.arrival, demand: rq.demand,
	}
	heap.Push(&cl.retryQ, scheduled{at: a.arrival, att: a})
}

// takeCancel removes a pending cancellation for the attempt, if one
// is queued, and reports whether it was found. The migration drain
// consults it so an attempt whose hedge twin already completed is
// cancelled at the source instead of re-routed — migration can never
// double-serve a request.
func (cl *clients) takeCancel(attID int64) bool {
	for i := range cl.cancels {
		if cl.cancels[i].attID == attID {
			cl.cancels = append(cl.cancels[:i], cl.cancels[i+1:]...)
			return true
		}
	}
	return false
}

// flushCancels delivers queued hedge cancellations into replica
// cancel boxes for the next step.
func (cl *clients) flushCancels(replicas []*replica) {
	for _, c := range cl.cancels {
		replicas[c.replica].cancels = append(replicas[c.replica].cancels, c.attID)
	}
	cl.cancels = cl.cancels[:0]
}

func (cl *clients) fill(res *Result) {
	res.Injected = cl.injected
	res.Served = cl.served
	res.ServedLate = cl.servedLate
	res.FailedPerm = cl.failedPerm
	res.Attempts = cl.attempts
	res.Retries = cl.retries
	res.Hedges = cl.hedges
	res.AttemptServed = cl.attServed
	res.AttemptRejected = cl.attRejected
	res.AttemptExpired = cl.attExpired
	res.AttemptFailed = cl.attFailed
	res.AttemptCancelled = cl.attCancelled
	res.HedgeDuplicates = cl.hedgeDup
	res.HedgeWins = cl.hedgeWins
	res.RetryDenied = cl.retryDenied
	res.HedgeDenied = cl.hedgeDenied
	for i := range cl.perTenant {
		acc := &cl.perTenant[i]
		ts := TenantStats{
			Injected: acc.injected, Served: acc.served,
			ServedLate: acc.servedLate, Failed: acc.failed,
			Misbehaving: acc.misbehaving,
		}
		if len(acc.lats) > 0 {
			ts.P99Us = float64(stats.Percentile(acc.lats, 99)) / CyclesPerUs
			ts.P999Us = float64(stats.Percentile(acc.lats, 99.9)) / CyclesPerUs
		}
		res.PerTenant = append(res.PerTenant, ts)
	}
}
