package fleet

import (
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
)

// testConfig is a moderately loaded cluster with every resilience
// mechanism exercised: crashes and gray failures on the first two
// replicas, hedging, and a misbehaving tenant.
func testConfig() Config {
	return Config{
		Replicas:      4,
		Tenants:       4,
		Policy:        P2CDeadline,
		Seed:          42,
		HorizonCycles: 26_000_000, // 10 ms
		LoadFactor:    0.8,
		Faults: &faults.Plan{
			Seed:                  42,
			CrashMeanGapCycles:    8_000_000,
			CrashDownCycles:       1_300_000,
			GraySlowMeanGapCycles: 10_000_000,
			GraySlowCycles:        2_600_000,
			GraySlowFactor:        8,
		},
		CrashReplicas:     2,
		HedgeDelayCycles:  260_000,
		MisbehavingTenant: 1,
	}
}

func TestFleetConservation(t *testing.T) {
	res := Run(testConfig(), engine.NewPool(1))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.Injected < 5_000 {
		t.Fatalf("only %d requests injected; workload generator broken", res.Injected)
	}
	if res.Served == 0 {
		t.Fatal("no requests served")
	}
	if res.Crashes == 0 {
		t.Fatal("crash plan injected no crashes")
	}
	if res.AttemptFailed == 0 {
		t.Fatal("crashes killed no attempts; crash accounting is not being exercised")
	}
	if res.Hedges == 0 {
		t.Fatal("no hedges sent")
	}
	if res.Retries == 0 {
		t.Fatal("no retries sent")
	}
	if amp := res.Amplification(); amp > 1.15+1e-9 {
		t.Fatalf("retry amplification %.3f exceeds the 1.15 budget bound", amp)
	}
}

func TestFleetWorkerCountByteIdentity(t *testing.T) {
	cfg := testConfig()
	base := Run(cfg, engine.NewPool(1))
	for _, workers := range []int{2, 4, 8} {
		got := Run(cfg, engine.NewPool(workers))
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d result diverges from serial:\nserial: %+v\ngot:    %+v", workers, base, got)
		}
		if base.Fingerprint() != got.Fingerprint() {
			t.Fatalf("workers=%d fingerprint %x != serial %x", workers, got.Fingerprint(), base.Fingerprint())
		}
	}
	if nilPool := Run(cfg, nil); !reflect.DeepEqual(base, nilPool) {
		t.Fatal("nil-pool run diverges from serial")
	}
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	cfg := testConfig()
	a := Run(cfg, engine.NewPool(4))
	b := Run(cfg, engine.NewPool(4))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identically-seeded runs diverge")
	}
	cfg.Seed = 43
	if c := Run(cfg, engine.NewPool(4)); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical runs")
	}
}

// Crashing one replica mid-soak must degrade goodput gracefully: the
// balancer ejects the dead replica, retries absorb the killed
// attempts, and cluster goodput stays within 80% of the no-crash run
// while retry amplification stays inside the budget bound.
func TestFleetCrashFailoverGoodput(t *testing.T) {
	base := Config{
		Replicas:      4,
		Tenants:       4,
		Policy:        P2CDeadline,
		Seed:          7,
		HorizonCycles: 26_000_000,
		LoadFactor:    1.2,
	}
	noCrash := Run(base, engine.NewPool(2))
	if err := noCrash.Conservation(); err != nil {
		t.Fatal(err)
	}

	crashed := base
	crashed.Faults = &faults.Plan{
		Seed:               7,
		CrashMeanGapCycles: 6_000_000,
		CrashDownCycles:    2_600_000,
	}
	crashed.CrashReplicas = 1
	res := Run(crashed, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("no crashes occurred")
	}
	if res.Ejections == 0 {
		t.Fatal("balancer never ejected the crashing replica")
	}
	if res.Readmissions == 0 {
		t.Fatal("balancer never re-admitted the recovered replica")
	}
	if ratio := res.GoodputRPS / noCrash.GoodputRPS; ratio < 0.80 {
		t.Fatalf("crash-soak goodput is %.1f%% of the no-crash run (want >= 80%%): %f vs %f rps",
			100*ratio, res.GoodputRPS, noCrash.GoodputRPS)
	}
	if amp := res.Amplification(); amp > 1.15+1e-9 {
		t.Fatalf("retry amplification %.3f exceeds 1.15", amp)
	}
}

// One tenant offering 4x its fair share must not wreck the others:
// the per-tenant rate gates shed its excess at the door, so
// well-behaved tenants keep their served fraction and tail latency.
func TestFleetTenantIsolation(t *testing.T) {
	cfg := Config{
		Replicas:          4,
		Tenants:           4,
		Policy:            P2CDeadline,
		Seed:              11,
		HorizonCycles:     26_000_000,
		LoadFactor:        0.9,
		MisbehavingTenant: 0,
	}
	res := Run(cfg, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	bad := res.PerTenant[0]
	if !bad.Misbehaving {
		t.Fatal("tenant 0 not marked misbehaving")
	}
	if bad.Rejected == 0 {
		t.Fatal("misbehaving tenant's excess was never shed at its rate gate")
	}
	deadlineUs := float64(withDefaultDeadline(cfg)) / CyclesPerUs
	for i := 1; i < cfg.Tenants; i++ {
		ts := res.PerTenant[i]
		if ts.Injected == 0 {
			t.Fatalf("tenant %d injected nothing", i)
		}
		servedFrac := float64(ts.Served) / float64(ts.Injected)
		if servedFrac < 0.95 {
			t.Errorf("well-behaved tenant %d served only %.1f%% of its requests", i, 100*servedFrac)
		}
		if ts.P999Us > deadlineUs {
			t.Errorf("well-behaved tenant %d p99.9 %.0fµs exceeds the %0.fµs deadline", i, ts.P999Us, deadlineUs)
		}
	}
}

func withDefaultDeadline(c Config) int64 { return c.withDefaults().DeadlineCycles }

// A gray-slow replica must be caught by the latency outlier detector
// even though it keeps answering probes.
func TestFleetGrayFailureEjection(t *testing.T) {
	cfg := Config{
		Replicas:      4,
		Tenants:       2,
		Policy:        LeastLoaded,
		Seed:          5,
		HorizonCycles: 26_000_000,
		LoadFactor:    0.9,
		Faults: &faults.Plan{
			Seed:                  5,
			GraySlowMeanGapCycles: 5_000_000,
			GraySlowCycles:        5_200_000,
			GraySlowFactor:        16,
		},
		CrashReplicas: 1,
	}
	res := Run(cfg, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.GraySlows == 0 {
		t.Fatal("no gray-failure windows occurred")
	}
	if res.Ejections == 0 {
		t.Fatal("gray-slow replica was never ejected despite latency outliers")
	}
}

// Hedges are bounded by the hedge budget, cancel their twin on first
// completion, and duplicates are accounted exactly once.
func TestFleetHedgingAccounting(t *testing.T) {
	cfg := testConfig()
	res := Run(cfg, engine.NewPool(2))
	if res.Hedges == 0 {
		t.Fatal("no hedges under a heavy-tailed workload with hedging enabled")
	}
	maxHedges := int64(float64(res.Injected)*cfg.withDefaults().HedgeBudgetFrac) + budgetCap
	if res.Hedges > maxHedges {
		t.Fatalf("%d hedges exceed the budget bound %d", res.Hedges, maxHedges)
	}
	if res.HedgeDuplicates > res.Hedges+res.Retries {
		t.Fatalf("%d duplicates exceed %d hedges + %d retries", res.HedgeDuplicates, res.Hedges, res.Retries)
	}
	if res.AttemptCancelled == 0 {
		t.Fatal("first-wins cancellation never removed a queued twin")
	}
}

// Every routing policy must satisfy the oracle and spread load over
// all replicas.
func TestFleetPolicies(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastLoaded, P2CDeadline} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{
				Replicas:      4,
				Tenants:       2,
				Policy:        pol,
				Seed:          9,
				HorizonCycles: 13_000_000,
				LoadFactor:    0.7,
			}
			res := Run(cfg, engine.NewPool(2))
			if err := res.Conservation(); err != nil {
				t.Fatal(err)
			}
			for i, st := range res.PerReplica {
				if st.Admitted == 0 {
					t.Errorf("policy %v starved replica %d", pol, i)
				}
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastLoaded, P2CDeadline} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted a bogus policy")
	}
}
