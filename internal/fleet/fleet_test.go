package fleet

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/overload"
	"repro/internal/sim"
)

// testConfig is a moderately loaded cluster with every resilience
// mechanism exercised: crashes and gray failures on the first two
// replicas, hedging, and a misbehaving tenant.
func testConfig() Config {
	return Config{
		Replicas:      4,
		Tenants:       4,
		Policy:        P2CDeadline,
		Seed:          42,
		HorizonCycles: 26_000_000, // 10 ms
		LoadFactor:    0.8,
		Faults: &faults.Plan{
			Seed:                  42,
			CrashMeanGapCycles:    8_000_000,
			CrashDownCycles:       1_300_000,
			GraySlowMeanGapCycles: 10_000_000,
			GraySlowCycles:        2_600_000,
			GraySlowFactor:        8,
		},
		CrashReplicas:     2,
		HedgeDelayCycles:  260_000,
		MisbehavingTenant: 1,
	}
}

func TestFleetConservation(t *testing.T) {
	res := Run(testConfig(), engine.NewPool(1))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.Injected < 5_000 {
		t.Fatalf("only %d requests injected; workload generator broken", res.Injected)
	}
	if res.Served == 0 {
		t.Fatal("no requests served")
	}
	if res.Crashes == 0 {
		t.Fatal("crash plan injected no crashes")
	}
	if res.AttemptFailed == 0 {
		t.Fatal("crashes killed no attempts; crash accounting is not being exercised")
	}
	if res.Hedges == 0 {
		t.Fatal("no hedges sent")
	}
	if res.Retries == 0 {
		t.Fatal("no retries sent")
	}
	if amp := res.Amplification(); amp > 1.15+1e-9 {
		t.Fatalf("retry amplification %.3f exceeds the 1.15 budget bound", amp)
	}
}

// zoneConfig composes every failure class at once: independent
// per-replica crashes, correlated whole-zone crash and gray windows
// over 4 zones, hedging, and migration.
func zoneConfig() Config {
	return Config{
		Replicas:      8,
		Tenants:       4,
		Zones:         4,
		Migrate:       true,
		Policy:        P2CDeadline,
		Seed:          42,
		HorizonCycles: 26_000_000,
		LoadFactor:    0.9,
		Faults: &faults.Plan{
			Seed:                   42,
			CrashMeanGapCycles:     9_000_000,
			CrashDownCycles:        1_300_000,
			ZoneCrashMeanGapCycles: 10_000_000,
			ZoneCrashDownCycles:    2_600_000,
			ZoneGrayMeanGapCycles:  12_000_000,
			ZoneGrayCycles:         2_600_000,
			ZoneGrayFactor:         8,
		},
		CrashReplicas:    2,
		HedgeDelayCycles: 260_000,
	}
}

func TestFleetWorkerCountByteIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"base", testConfig()},
		{"zones+migration", zoneConfig()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			base := Run(tc.cfg, engine.NewPool(1))
			for _, workers := range []int{2, 4, 8} {
				got := Run(tc.cfg, engine.NewPool(workers))
				if !reflect.DeepEqual(base, got) {
					t.Fatalf("workers=%d result diverges from serial:\nserial: %+v\ngot:    %+v", workers, base, got)
				}
				if base.Fingerprint() != got.Fingerprint() {
					t.Fatalf("workers=%d fingerprint %x != serial %x", workers, got.Fingerprint(), base.Fingerprint())
				}
			}
			if nilPool := Run(tc.cfg, nil); !reflect.DeepEqual(base, nilPool) {
				t.Fatal("nil-pool run diverges from serial")
			}
		})
	}
}

func TestFleetDeterministicAcrossRuns(t *testing.T) {
	cfg := testConfig()
	a := Run(cfg, engine.NewPool(4))
	b := Run(cfg, engine.NewPool(4))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identically-seeded runs diverge")
	}
	cfg.Seed = 43
	if c := Run(cfg, engine.NewPool(4)); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical runs")
	}
}

// Crashing one replica mid-soak must degrade goodput gracefully: the
// balancer ejects the dead replica, retries absorb the killed
// attempts, and cluster goodput stays within 80% of the no-crash run
// while retry amplification stays inside the budget bound.
func TestFleetCrashFailoverGoodput(t *testing.T) {
	base := Config{
		Replicas:      4,
		Tenants:       4,
		Policy:        P2CDeadline,
		Seed:          7,
		HorizonCycles: 26_000_000,
		LoadFactor:    1.2,
	}
	noCrash := Run(base, engine.NewPool(2))
	if err := noCrash.Conservation(); err != nil {
		t.Fatal(err)
	}

	crashed := base
	crashed.Faults = &faults.Plan{
		Seed:               7,
		CrashMeanGapCycles: 6_000_000,
		CrashDownCycles:    2_600_000,
	}
	crashed.CrashReplicas = 1
	res := Run(crashed, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.Crashes == 0 {
		t.Fatal("no crashes occurred")
	}
	if res.Ejections == 0 {
		t.Fatal("balancer never ejected the crashing replica")
	}
	if res.Readmissions == 0 {
		t.Fatal("balancer never re-admitted the recovered replica")
	}
	if ratio := res.GoodputRPS / noCrash.GoodputRPS; ratio < 0.80 {
		t.Fatalf("crash-soak goodput is %.1f%% of the no-crash run (want >= 80%%): %f vs %f rps",
			100*ratio, res.GoodputRPS, noCrash.GoodputRPS)
	}
	if amp := res.Amplification(); amp > 1.15+1e-9 {
		t.Fatalf("retry amplification %.3f exceeds 1.15", amp)
	}
}

// One tenant offering 4x its fair share must not wreck the others:
// the per-tenant rate gates shed its excess at the door, so
// well-behaved tenants keep their served fraction and tail latency.
func TestFleetTenantIsolation(t *testing.T) {
	cfg := Config{
		Replicas:          4,
		Tenants:           4,
		Policy:            P2CDeadline,
		Seed:              11,
		HorizonCycles:     26_000_000,
		LoadFactor:        0.9,
		MisbehavingTenant: 0,
	}
	res := Run(cfg, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	bad := res.PerTenant[0]
	if !bad.Misbehaving {
		t.Fatal("tenant 0 not marked misbehaving")
	}
	if bad.Rejected == 0 {
		t.Fatal("misbehaving tenant's excess was never shed at its rate gate")
	}
	deadlineUs := float64(withDefaultDeadline(cfg)) / CyclesPerUs
	for i := 1; i < cfg.Tenants; i++ {
		ts := res.PerTenant[i]
		if ts.Injected == 0 {
			t.Fatalf("tenant %d injected nothing", i)
		}
		servedFrac := float64(ts.Served) / float64(ts.Injected)
		if servedFrac < 0.95 {
			t.Errorf("well-behaved tenant %d served only %.1f%% of its requests", i, 100*servedFrac)
		}
		if ts.P999Us > deadlineUs {
			t.Errorf("well-behaved tenant %d p99.9 %.0fµs exceeds the %0.fµs deadline", i, ts.P999Us, deadlineUs)
		}
	}
}

func withDefaultDeadline(c Config) int64 { return c.withDefaults().DeadlineCycles }

// A gray-slow replica must be caught by the latency outlier detector
// even though it keeps answering probes.
func TestFleetGrayFailureEjection(t *testing.T) {
	cfg := Config{
		Replicas:      4,
		Tenants:       2,
		Policy:        LeastLoaded,
		Seed:          5,
		HorizonCycles: 26_000_000,
		LoadFactor:    0.9,
		Faults: &faults.Plan{
			Seed:                  5,
			GraySlowMeanGapCycles: 5_000_000,
			GraySlowCycles:        5_200_000,
			GraySlowFactor:        16,
		},
		CrashReplicas: 1,
	}
	res := Run(cfg, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.GraySlows == 0 {
		t.Fatal("no gray-failure windows occurred")
	}
	if res.Ejections == 0 {
		t.Fatal("gray-slow replica was never ejected despite latency outliers")
	}
}

// Hedges are bounded by the hedge budget, cancel their twin on first
// completion, and duplicates are accounted exactly once.
func TestFleetHedgingAccounting(t *testing.T) {
	cfg := testConfig()
	res := Run(cfg, engine.NewPool(2))
	if res.Hedges == 0 {
		t.Fatal("no hedges under a heavy-tailed workload with hedging enabled")
	}
	maxHedges := int64(float64(res.Injected)*cfg.withDefaults().HedgeBudgetFrac) + budgetCap
	if res.Hedges > maxHedges {
		t.Fatalf("%d hedges exceed the budget bound %d", res.Hedges, maxHedges)
	}
	if res.HedgeDuplicates > res.Hedges+res.Retries {
		t.Fatalf("%d duplicates exceed %d hedges + %d retries", res.HedgeDuplicates, res.Hedges, res.Retries)
	}
	if res.AttemptCancelled == 0 {
		t.Fatal("first-wins cancellation never removed a queued twin")
	}
}

// Every routing policy must satisfy the oracle and spread load over
// all replicas.
func TestFleetPolicies(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastLoaded, P2CDeadline} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{
				Replicas:      4,
				Tenants:       2,
				Policy:        pol,
				Seed:          9,
				HorizonCycles: 13_000_000,
				LoadFactor:    0.7,
			}
			res := Run(cfg, engine.NewPool(2))
			if err := res.Conservation(); err != nil {
				t.Fatal(err)
			}
			for i, st := range res.PerReplica {
				if st.Admitted == 0 {
					t.Errorf("policy %v starved replica %d", pol, i)
				}
			}
		})
	}
}

// Migration must save queued work from a crash-looping replica: the
// drain re-routes it instead of failing it into the retry path, no
// queued attempt is ever stranded, and total attempt failures drop
// against the no-migration run.
func TestFleetMigrationSavesQueuedWork(t *testing.T) {
	base := Config{
		Replicas:      4,
		Tenants:       4,
		Policy:        P2CDeadline,
		Seed:          7,
		HorizonCycles: 26_000_000,
		LoadFactor:    1.2,
		Faults: &faults.Plan{
			Seed:               7,
			CrashMeanGapCycles: 6_000_000,
			CrashDownCycles:    2_600_000,
		},
		CrashReplicas: 1,
	}
	noMig := Run(base, engine.NewPool(2))
	if err := noMig.Conservation(); err != nil {
		t.Fatal(err)
	}
	var stranded int64
	for _, st := range noMig.PerReplica {
		stranded += st.StrandedQueued
	}
	if stranded == 0 {
		t.Fatal("no-migration run stranded no queued attempts; the scenario is not exercising the drain")
	}

	mig := base
	mig.Migrate = true
	res := Run(mig, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.Migrated == 0 {
		t.Fatal("migration enabled but no attempt was migrated")
	}
	for i, st := range res.PerReplica {
		if st.StrandedQueued != 0 {
			t.Errorf("replica %d stranded %d queued attempts with migration on", i, st.StrandedQueued)
		}
	}
	if res.AttemptFailed >= noMig.AttemptFailed {
		t.Errorf("migration did not reduce attempt failures: %d with vs %d without",
			res.AttemptFailed, noMig.AttemptFailed)
	}
	if amp := res.Amplification(); amp > 1.15+1e-9 {
		t.Fatalf("retry amplification %.3f exceeds 1.15 with migration on", amp)
	}
}

// Correlated zone outages must hit every replica of a zone in
// lockstep, compose with the independent per-replica classes, and
// keep the conservation oracle green.
func TestFleetZoneOutage(t *testing.T) {
	cfg := zoneConfig()
	res := Run(cfg, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	if res.ZoneCrashes == 0 {
		t.Fatal("zone crash plan injected no zone crash windows")
	}
	if res.ZoneGrays == 0 {
		t.Fatal("zone gray plan injected no zone gray windows")
	}
	if res.Crashes == 0 {
		t.Fatal("composing zone classes suppressed the per-replica crash class")
	}
	if res.Migrated == 0 {
		t.Fatal("zone outages migrated no queued work")
	}
	for i, st := range res.PerReplica {
		if want := i % cfg.Zones; st.Zone != want {
			t.Errorf("replica %d labeled zone %d, want %d", i, st.Zone, want)
		}
	}
	// Replicas sharing a zone consume the same pre-drawn window
	// schedule, so their zone-outage counts match exactly.
	for i := cfg.Zones; i < cfg.Replicas; i++ {
		tw := res.PerReplica[i%cfg.Zones]
		if res.PerReplica[i].ZoneCrashes != tw.ZoneCrashes || res.PerReplica[i].ZoneGrays != tw.ZoneGrays {
			t.Errorf("replica %d zone windows (%d crash, %d gray) diverge from zone twin (%d, %d)",
				i, res.PerReplica[i].ZoneCrashes, res.PerReplica[i].ZoneGrays, tw.ZoneCrashes, tw.ZoneGrays)
		}
	}
}

// With a zone mostly down, the balancer must steer traffic to
// surviving zones: the down zone's healthy sibling is deprioritized
// (a half-ejected failure domain is suspect), so it admits far less
// than replicas in untouched zones. Without zone labels the same
// sibling takes a full share.
func TestFleetZonePreference(t *testing.T) {
	base := Config{
		Replicas:      8,
		Tenants:       2,
		Zones:         4,
		Policy:        RoundRobin,
		Seed:          13,
		HorizonCycles: 26_000_000,
		LoadFactor:    0.7,
		Faults: &faults.Plan{
			Seed:               13,
			CrashMeanGapCycles: 1_000_000,
			CrashDownCycles:    5_200_000,
		},
		CrashReplicas: 1, // replica 0 crash-loops; zone 0 = {0, 4}
	}
	res := Run(base, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	sibling := res.PerReplica[4].Admitted // healthy, but in the failing zone
	other := res.PerReplica[2].Admitted   // healthy zone
	if sibling*2 >= other {
		t.Errorf("zone preference did not deprioritize the failing zone's sibling: %d admitted vs %d in a healthy zone",
			sibling, other)
	}

	flat := base
	flat.Zones = 1
	res = Run(flat, engine.NewPool(2))
	if err := res.Conservation(); err != nil {
		t.Fatal(err)
	}
	sibling = res.PerReplica[4].Admitted
	other = res.PerReplica[2].Admitted
	if sibling*2 < other {
		t.Errorf("without zone labels replica 4 should take a full share: %d admitted vs %d", sibling, other)
	}
}

// P2C candidate sampling must consume exactly two RNG draws per pick
// while two or more backends are routable, zero draws when fewer —
// and never a draw for an ejected (Open) backend — so ejection
// windows cannot shift the seeded stream.
func TestFleetP2CSamplingStream(t *testing.T) {
	trip := func(b *balancer, i int) {
		for k := int64(0); k < 6; k++ {
			b.bk[i].hc.Observe(k*HealthIntervalCycles, 0, true)
			b.bk[i].hc.Poll(k*HealthIntervalCycles, 0)
		}
		if b.bk[i].hc.BreakerState() != overload.Open {
			t.Fatalf("backend %d breaker did not open under forced failures", i)
		}
	}
	pickN := func(b *balancer, n int, wantAvoid int) {
		for k := 0; k < n; k++ {
			a := attempt{exclude: -1, arrival: int64(k), reqArrival: int64(k)}
			r, ok := b.pick(nil, &a)
			if !ok {
				t.Fatal("pick found no backend")
			}
			if wantAvoid >= 0 && r == wantAvoid {
				t.Fatalf("pick chose ejected backend %d", r)
			}
		}
	}
	cfg := Config{Replicas: 4, Policy: P2CDeadline, Seed: 99}.withDefaults()

	b := newBalancer(cfg)
	twin := sim.NewRNG(cfg.Seed ^ 0x6c62)
	trip(b, 0)
	pickN(b, 40, 0) // 3 routable: exactly 2 draws per pick
	for k := 0; k < 2*40; k++ {
		twin.Uint64()
	}
	if got, want := b.rng.Uint64(), twin.Uint64(); got != want {
		t.Fatalf("with an ejected backend the p2c stream drifted: next draw %x, want %x", got, want)
	}

	b = newBalancer(cfg)
	twin = sim.NewRNG(cfg.Seed ^ 0x6c62)
	trip(b, 0)
	trip(b, 1)
	trip(b, 2)
	pickN(b, 40, 0) // 1 routable: no draws at all
	if got, want := b.rng.Uint64(), twin.Uint64(); got != want {
		t.Fatalf("single-routable picks consumed RNG draws: next draw %x, want %x", got, want)
	}
}

// Hedge × migration interaction, swept over crash timing: a hedged
// attempt whose primary is migrated off a dying replica must resolve
// first-wins with exactly one served disposition per request —
// AttemptServed = Served + ServedLate + HedgeDuplicates holds in
// every scenario, and nothing queued is ever stranded.
func TestFleetHedgeMigrationInteraction(t *testing.T) {
	for _, gap := range []int64{2_000_000, 4_000_000, 6_000_000, 9_000_000} {
		gap := gap
		t.Run(fmt.Sprintf("crashGap=%d", gap), func(t *testing.T) {
			cfg := Config{
				Replicas:      4,
				Tenants:       2,
				Policy:        P2CDeadline,
				Seed:          21,
				HorizonCycles: 26_000_000,
				LoadFactor:    1.0,
				Migrate:       true,
				Faults: &faults.Plan{
					Seed:               21,
					CrashMeanGapCycles: gap,
					CrashDownCycles:    2_600_000,
				},
				CrashReplicas:    2,
				HedgeDelayCycles: 130_000,
			}
			res := Run(cfg, engine.NewPool(2))
			if err := res.Conservation(); err != nil {
				t.Fatal(err)
			}
			if res.Hedges == 0 {
				t.Fatal("no hedges under an aggressive hedge delay")
			}
			if res.Migrated == 0 {
				t.Fatal("no attempts migrated under a crash-looping plan")
			}
			if got := res.Served + res.ServedLate + res.HedgeDuplicates; got != res.AttemptServed {
				t.Fatalf("served-once identity broken: served=%d + late=%d + dup=%d != attempt-served=%d",
					res.Served, res.ServedLate, res.HedgeDuplicates, res.AttemptServed)
			}
			for i, st := range res.PerReplica {
				if st.StrandedQueued != 0 {
					t.Errorf("replica %d stranded %d queued attempts", i, st.StrandedQueued)
				}
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for _, pol := range []Policy{RoundRobin, LeastLoaded, P2CDeadline} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted a bogus policy")
	}
}
