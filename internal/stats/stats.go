// Package stats provides the small statistical toolkit used by the
// evaluation harness: percentiles, means, geometric means and compact
// distribution summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy. It panics on an empty slice.
func Percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return percentileSorted(s, p)
}

func percentileSorted(s []int64, p float64) int64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	// The epsilon guards against float artifacts like 99.9/100*1000
	// evaluating to 999.0000000000001.
	rank := int(math.Ceil(p/100*float64(len(s)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Median returns the 50th percentile.
func Median(xs []int64) int64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean.
func Mean(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// MeanF returns the arithmetic mean of float64 values.
func MeanF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; zero and
// negative inputs are skipped.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// MedianF returns the median of float64 values.
func MedianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Summary captures the distribution percentiles the paper reports
// (Figure 10: median with 10-90 spread and labeled outer percentiles).
type Summary struct {
	N                   int
	Min, Max            int64
	P1, P10, P25, P50   int64
	P75, P90, P99, P999 int64
	MeanVal             float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []int64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return Summary{
		N:       len(s),
		Min:     s[0],
		Max:     s[len(s)-1],
		P1:      percentileSorted(s, 1),
		P10:     percentileSorted(s, 10),
		P25:     percentileSorted(s, 25),
		P50:     percentileSorted(s, 50),
		P75:     percentileSorted(s, 75),
		P90:     percentileSorted(s, 90),
		P99:     percentileSorted(s, 99),
		P999:    percentileSorted(s, 99.9),
		MeanVal: Mean(s),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d p10=%d p50=%d p90=%d p99=%d p99.9=%d max=%d mean=%.1f",
		s.N, s.Min, s.P10, s.P50, s.P90, s.P99, s.P999, s.Max, s.MeanVal)
}

// Histogram counts values into log2-spaced buckets, for latency
// distribution plots (Figure 8).
type Histogram struct {
	// Buckets[i] counts values v with 2^i <= v < 2^(i+1); Buckets[0]
	// also counts v < 1.
	Buckets [64]int64
	Total   int64
}

// Add records one value.
func (h *Histogram) Add(v int64) {
	h.Total++
	if v < 1 {
		h.Buckets[0]++
		return
	}
	h.Buckets[63-bitsLeadingZeros(uint64(v))]++
}

func bitsLeadingZeros(x uint64) int {
	n := 0
	for x&(1<<63) == 0 {
		x <<= 1
		n++
		if n == 64 {
			break
		}
	}
	return n
}

// Fraction returns the share of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.Total)
}
