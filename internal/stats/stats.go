// Package stats provides the small statistical toolkit used by the
// evaluation harness: percentiles, means, geometric means and compact
// distribution summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy. It panics on an empty slice.
func Percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return percentileSorted(s, p)
}

func percentileSorted(s []int64, p float64) int64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	// The epsilon guards against float artifacts like 99.9/100*1000
	// evaluating to 999.0000000000001.
	rank := int(math.Ceil(p/100*float64(len(s)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Median returns the 50th percentile.
func Median(xs []int64) int64 { return Percentile(xs, 50) }

// Mean returns the arithmetic mean.
func Mean(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// MeanF returns the arithmetic mean of float64 values.
func MeanF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; zero and
// negative inputs are skipped.
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// MedianF returns the median of float64 values.
func MedianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Summary captures the distribution percentiles the paper reports
// (Figure 10: median with 10-90 spread and labeled outer percentiles).
type Summary struct {
	N                   int
	Min, Max            int64
	P1, P10, P25, P50   int64
	P75, P90, P99, P999 int64
	MeanVal             float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []int64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return Summary{
		N:       len(s),
		Min:     s[0],
		Max:     s[len(s)-1],
		P1:      percentileSorted(s, 1),
		P10:     percentileSorted(s, 10),
		P25:     percentileSorted(s, 25),
		P50:     percentileSorted(s, 50),
		P75:     percentileSorted(s, 75),
		P90:     percentileSorted(s, 90),
		P99:     percentileSorted(s, 99),
		P999:    percentileSorted(s, 99.9),
		MeanVal: Mean(s),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d p10=%d p50=%d p90=%d p99=%d p99.9=%d max=%d mean=%.1f",
		s.N, s.Min, s.P10, s.P50, s.P90, s.P99, s.P999, s.Max, s.MeanVal)
}

// logHistSub is the number of linear sub-buckets per octave of a
// LogHist: values below logHistSub are counted exactly; above it the
// relative bucket width is 1/logHistSub (~3% quantile error).
const logHistSub = 32

// logHistBuckets is one side's bucket count: 59 octaves (5..63) of
// logHistSub sub-buckets on top of the exact region.
const logHistBuckets = 59*logHistSub + logHistSub

// LogHist is a log-scaled histogram over signed int64 samples: log2
// octaves refined by linear sub-buckets (HDR-histogram style), with a
// mirrored negative side and exact min/max tracking. It is the
// fixed-footprint accumulator behind the observability layer's
// p50/p90/p99/max metrics — Add is O(1) and allocation-free, so it can
// sit on handler-fire paths, unlike Summarize which retains every
// sample.
type LogHist struct {
	pos, neg [logHistBuckets]int64
	total    int64
	sum      float64
	min, max int64
}

// logBucket maps v >= 0 to its bucket index. Values below logHistSub
// map exactly to themselves; larger values map to
// (octave-5)*32 + top-6-bits, giving ~3% resolution.
func logBucket(v int64) int {
	if v < logHistSub {
		return int(v)
	}
	b := 63 - bitsLeadingZeros(uint64(v)) // floor(log2 v), >= 5
	return (b-5)*logHistSub + int(v>>uint(b-5))
}

// logBucketLow returns the smallest value mapping to bucket idx.
func logBucketLow(idx int) int64 {
	if idx < 2*logHistSub {
		return int64(idx)
	}
	shift := idx/logHistSub - 1
	sub := idx - shift*logHistSub
	return int64(sub) << uint(shift)
}

// Add records one sample.
func (h *LogHist) Add(v int64) {
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.total++
	h.sum += float64(v)
	if v < 0 {
		h.neg[logBucket(-v)]++
		return
	}
	h.pos[logBucket(v)]++
}

// N returns the number of recorded samples.
func (h *LogHist) N() int64 { return h.total }

// Min and Max return the exact extremes of the recorded samples (0 on
// an empty histogram).
func (h *LogHist) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

func (h *LogHist) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean of the recorded samples.
func (h *LogHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile returns the p-th percentile (0..100) by nearest rank over
// the buckets, reporting a bucket's lower edge. The extremes are
// exact: p<=0 returns Min, p>=100 returns Max, and interior answers
// are clamped into [Min, Max]. Returns 0 on an empty histogram.
func (h *LogHist) Quantile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	// Negative side from most negative upward.
	for i := logHistBuckets - 1; i >= 0; i-- {
		if c := h.neg[i]; c > 0 {
			seen += c
			if seen >= rank {
				return clamp(-logBucketLow(i), h.min, h.max)
			}
		}
	}
	for i := 0; i < logHistBuckets; i++ {
		if c := h.pos[i]; c > 0 {
			seen += c
			if seen >= rank {
				return clamp(logBucketLow(i), h.min, h.max)
			}
		}
	}
	return h.max
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// String renders the histogram's headline quantiles on one line.
func (h *LogHist) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f",
		h.N(), h.Min(), h.Quantile(50), h.Quantile(90), h.Quantile(99), h.Max(), h.Mean())
}

// Histogram counts values into log2-spaced buckets, for latency
// distribution plots (Figure 8).
type Histogram struct {
	// Buckets[i] counts values v with 2^i <= v < 2^(i+1); Buckets[0]
	// also counts v < 1.
	Buckets [64]int64
	Total   int64
}

// Add records one value.
func (h *Histogram) Add(v int64) {
	h.Total++
	if v < 1 {
		h.Buckets[0]++
		return
	}
	h.Buckets[63-bitsLeadingZeros(uint64(v))]++
}

func bitsLeadingZeros(x uint64) int {
	n := 0
	for x&(1<<63) == 0 {
		x <<= 1
		n++
		if n == 64 {
			break
		}
	}
	return n
}

// Fraction returns the share of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.Total)
}
