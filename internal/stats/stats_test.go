package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []int64{5, 1, 4, 2, 3}
	if got := Median(xs); got != 3 {
		t.Errorf("median = %d, want 3", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("p100 = %d, want 5", got)
	}
	if got := Percentile(xs, 20); got != 1 {
		t.Errorf("p20 = %d, want 1", got)
	}
	// Input must not be reordered.
	if xs[0] != 5 || xs[4] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMeans(t *testing.T) {
	if got := Mean([]int64{2, 4, 6}); got != 4 {
		t.Errorf("mean = %v", got)
	}
	if got := MeanF([]float64{1.5, 2.5}); got != 2 {
		t.Errorf("meanf = %v", got)
	}
	if got := GeoMean([]float64{1, 4, 16}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean = %v, want 4", got)
	}
	if got := GeoMean([]float64{0, -3}); got != 0 {
		t.Errorf("geomean of nonpositives = %v, want 0", got)
	}
	if got := MedianF([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("medianf even = %v", got)
	}
	if got := MedianF([]float64{7, 1, 3}); got != 3 {
		t.Errorf("medianf odd = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]int64, 1000)
	for i := range xs {
		xs[i] = int64(i + 1) // 1..1000
	}
	s := Summarize(xs)
	if s.N != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Errorf("summary = %+v", s)
	}
	if s.P50 != 500 || s.P90 != 900 || s.P999 != 999 {
		t.Errorf("percentiles = p50 %d p90 %d p999 %d", s.P50, s.P90, s.P999)
	}
	if math.Abs(s.MeanVal-500.5) > 1e-9 {
		t.Errorf("mean = %v", s.MeanVal)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	h.Add(0)
	h.Add(1)
	h.Add(2)
	h.Add(3)
	h.Add(1024)
	if h.Total != 5 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Buckets[0] != 2 { // 0 and 1
		t.Errorf("bucket0 = %d, want 2", h.Buckets[0])
	}
	if h.Buckets[1] != 2 { // 2 and 3
		t.Errorf("bucket1 = %d, want 2", h.Buckets[1])
	}
	if h.Buckets[10] != 1 { // 1024
		t.Errorf("bucket10 = %d, want 1", h.Buckets[10])
	}
	if got := h.Fraction(1); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("fraction = %v", got)
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n%100) + 1
		xs := make([]int64, m)
		for i := range xs {
			xs[i] = r.Int63n(10000) - 5000
		}
		prev := Percentile(xs, 0)
		for p := 5.0; p <= 100; p += 5 {
			cur := Percentile(xs, p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
