package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistExactBelowLinearRange(t *testing.T) {
	var h LogHist
	for v := int64(0); v < 32; v++ {
		h.Add(v)
	}
	if h.N() != 32 || h.Min() != 0 || h.Max() != 31 {
		t.Fatalf("n=%d min=%d max=%d", h.N(), h.Min(), h.Max())
	}
	// Values below logHistSub land in dedicated buckets, so quantiles
	// are exact: nearest-rank p50 of 0..31 is the 16th smallest, 15.
	if q := h.Quantile(50); q != 15 {
		t.Errorf("p50 = %d, want 15", q)
	}
	if q := h.Quantile(100); q != 31 {
		t.Errorf("p100 = %d, want 31", q)
	}
}

func TestLogHistNegativeValues(t *testing.T) {
	var h LogHist
	for v := int64(-100); v <= 100; v++ {
		h.Add(v)
	}
	if h.Min() != -100 || h.Max() != 100 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if q := h.Quantile(50); q < -5 || q > 5 {
		t.Errorf("p50 = %d, want ~0", q)
	}
	if q := h.Quantile(1); q > -90 {
		t.Errorf("p1 = %d, want near -100", q)
	}
	if q := h.Quantile(99); q < 90 {
		t.Errorf("p99 = %d, want near 100", q)
	}
	if m := h.Mean(); m < -1 || m > 1 {
		t.Errorf("mean = %f, want 0", m)
	}
}

// The histogram's bucketing is log-scaled with 32 sub-buckets per
// octave, so any quantile is within ~3.2% relative error of the exact
// nearest-rank value.
func TestLogHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h LogHist
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over [1, ~1e9], mimicking latency-like data.
		v := int64(1) << uint(rng.Intn(30))
		v += rng.Int63n(v)
		h.Add(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{1, 10, 50, 90, 99, 99.9} {
		rank := int(p / 100 * float64(len(vals)))
		if rank >= len(vals) {
			rank = len(vals) - 1
		}
		exact := vals[rank]
		got := h.Quantile(p)
		relErr := float64(got-exact) / float64(exact)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 0.05 {
			t.Errorf("p%v = %d, exact %d (rel err %.3f)", p, got, exact, relErr)
		}
	}
}

func TestLogHistBucketRoundTrip(t *testing.T) {
	// logBucketLow(logBucket(v)) must never exceed v, and the bucket
	// width must stay within 1/32 of the value (one sub-bucket).
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1<<40 + 12345} {
		idx := logBucket(v)
		low := logBucketLow(idx)
		if low > v {
			t.Errorf("bucketLow(%d) = %d > value", v, low)
		}
		if v >= 32 && float64(v-low) > float64(v)/32+1 {
			t.Errorf("bucket width too coarse at %d: low=%d", v, low)
		}
	}
}

func TestLogHistEmpty(t *testing.T) {
	var h LogHist
	if h.N() != 0 || h.Quantile(50) != 0 || h.Mean() != 0 {
		t.Errorf("empty hist not zero-valued: n=%d p50=%d mean=%f",
			h.N(), h.Quantile(50), h.Mean())
	}
}
