// Package sim provides the discrete-event simulation kernel shared by
// the application models (mTCP, Shenango, FFWD): a deterministic RNG,
// an event queue in virtual cycles, and distribution helpers.
package sim

import (
	"container/heap"
	"errors"
	"math"
)

// RNG is a deterministic splitmix64 generator.
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n).
func (r *RNG) Intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean,
// in integer cycles (at least 1).
func (r *RNG) Exp(mean float64) int64 {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	v := int64(-mean * math.Log(1-u))
	if v < 1 {
		v = 1
	}
	return v
}

// Event is a scheduled callback.
type Event struct {
	Time int64
	Fn   func()
	// seq breaks ties deterministically (FIFO at equal times).
	seq uint64
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator over virtual
// cycles.
type Engine struct {
	now   int64
	seq   uint64
	queue eventHeap
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in cycles.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn at absolute time t (clamped to now).
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.queue, &Event{Time: t, Fn: fn, seq: e.seq})
}

// After schedules fn delay cycles from now.
func (e *Engine) After(delay int64, fn func()) { e.At(e.now+delay, fn) }

// Run processes events until the queue is empty or time reaches limit.
// Returns the number of events processed.
func (e *Engine) Run(limit int64) int {
	n, _ := e.RunDeadline(limit, Deadline{})
	return n
}

// ErrNoProgress reports an event loop that exceeded its progress
// deadline: either too many events in total, or too many events at a
// single instant (a livelock — callbacks rescheduling each other with
// zero delay never advance virtual time, so a plain Run would spin
// forever).
var ErrNoProgress = errors.New("sim: event loop exceeded its progress deadline")

// Deadline bounds an event-loop run so that a faulty model returns an
// error instead of hanging. Zero fields are unlimited.
type Deadline struct {
	// MaxEvents caps the total number of events processed.
	MaxEvents int64
	// MaxSameTime caps consecutive events processed without virtual
	// time advancing.
	MaxSameTime int64
}

// RunDeadline is Run with a progress deadline: it stops with
// ErrNoProgress as soon as either bound is exceeded, leaving the
// engine's queue and clock where they were (so the caller can report
// partial state).
func (e *Engine) RunDeadline(limit int64, d Deadline) (int, error) {
	n := 0
	var sameTime int64
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.Time > limit {
			break
		}
		if d.MaxEvents > 0 && int64(n) >= d.MaxEvents {
			return n, ErrNoProgress
		}
		if ev.Time == e.now {
			sameTime++
			if d.MaxSameTime > 0 && sameTime > d.MaxSameTime {
				return n, ErrNoProgress
			}
		} else {
			sameTime = 0
		}
		heap.Pop(&e.queue)
		e.now = ev.Time
		ev.Fn()
		n++
	}
	if e.now < limit {
		e.now = limit
	}
	return n, nil
}

// Pending reports whether events remain scheduled.
func (e *Engine) Pending() bool { return len(e.queue) > 0 }
