package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide too often: %d/100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(9)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("digit %d count %d, want ~1000", d, c)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Error("Intn of non-positive should be 0")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Exp(1000)
		if v < 1 {
			t.Fatalf("Exp returned %d < 1", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	if mean < 900 || mean > 1100 {
		t.Errorf("Exp mean = %v, want ~1000", mean)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.At(10, func() { order = append(order, 11) }) // FIFO at equal times
	n := e.Run(100)
	if n != 4 {
		t.Fatalf("processed %d events", n)
	}
	want := []int{1, 11, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 100 {
		t.Errorf("Now = %d after Run(100)", e.Now())
	}
}

func TestEngineLimitStopsProcessing(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(200, func() { fired = true })
	e.Run(100)
	if fired {
		t.Error("event beyond limit fired")
	}
	if !e.Pending() {
		t.Error("event should remain pending")
	}
	e.Run(300)
	if !fired {
		t.Error("event did not fire after extending the limit")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(5, tick)
		}
	}
	e.After(5, tick)
	e.Run(1000)
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if e.Now() != 1000 {
		t.Errorf("Now = %d", e.Now())
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	e := NewEngine()
	var at int64 = -1
	e.At(50, func() {
		e.At(10, func() { at = e.Now() }) // in the past: clamp to now
	})
	e.Run(100)
	if at != 50 {
		t.Errorf("past event ran at %d, want clamped to 50", at)
	}
}

// A callback chain that reschedules itself with zero delay never
// advances virtual time; the deadline must convert that livelock into
// an error instead of spinning forever.
func TestRunDeadlineStopsLivelock(t *testing.T) {
	e := NewEngine()
	var spin func()
	spin = func() { e.After(0, spin) } // livelock: time never advances
	e.After(10, spin)
	n, err := e.RunDeadline(1000, Deadline{MaxSameTime: 500})
	if err != ErrNoProgress {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if n < 500 {
		t.Errorf("processed %d events before the deadline, want ≥500", n)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %d, want stuck at 10", e.Now())
	}
}

func TestRunDeadlineMaxEvents(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() { e.After(1, tick) } // unbounded but time-advancing
	e.After(1, tick)
	n, err := e.RunDeadline(1<<40, Deadline{MaxEvents: 1000})
	if err != ErrNoProgress {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if n != 1000 {
		t.Errorf("processed %d events, want exactly 1000", n)
	}
}

func TestRunDeadlineCleanRunNoError(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(int64(i), func() { count++ })
	}
	n, err := e.RunDeadline(100, Deadline{MaxEvents: 1000, MaxSameTime: 100})
	if err != nil || n != 10 || count != 10 {
		t.Errorf("n=%d count=%d err=%v", n, count, err)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %d", e.Now())
	}
}

// Many events at one instant are fine as long as they stay under the
// same-time bound; the counter must reset when time advances.
func TestRunDeadlineSameTimeResets(t *testing.T) {
	e := NewEngine()
	for step := int64(1); step <= 20; step++ {
		for i := 0; i < 50; i++ {
			e.At(step, func() {})
		}
	}
	if _, err := e.RunDeadline(100, Deadline{MaxSameTime: 60}); err != nil {
		t.Fatalf("bursts below the bound errored: %v", err)
	}
}

// Property: events always fire in non-decreasing time order.
func TestQuickEngineMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(uint64(seed))
		e := NewEngine()
		var last int64 = -1
		ok := true
		for i := 0; i < 50; i++ {
			e.At(r.Intn(1000), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				if r.Float64() < 0.5 {
					e.After(r.Intn(100), func() {
						if e.Now() < last {
							ok = false
						}
						last = e.Now()
					})
				}
			})
		}
		e.Run(5000)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
