package core

import (
	"testing"

	"repro/internal/ci/instrument"
	"repro/internal/obs"
)

// End-to-end observability wiring: compiling and running with an
// enabled scope must record compile-stage instants, a per-thread run
// span, probe-site attribution and the interval-error histograms the
// -metrics report is built from.
func TestCompileRunWithObsScope(t *testing.T) {
	scope := obs.New(0)
	prog, err := CompileText(loopSrc,
		WithDesign(instrument.CI), WithProbeInterval(200), WithObs(scope))
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run("main",
		WithArgv(500000), WithInterval(5000), WithLimit(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].HandlerCalls == 0 {
		t.Fatal("handler never fired; nothing to observe")
	}

	var stages, runSpans, probeFires int
	for _, ev := range scope.Events() {
		switch {
		case ev.Cat == "compile":
			stages++
		case ev.Cat == "core" && ev.Name == "run/main":
			runSpans++
		case ev.Cat == "vm" && ev.Name == "probe-fire":
			probeFires++
		}
	}
	if stages == 0 {
		t.Error("no compile-stage events")
	}
	if runSpans != 1 {
		t.Errorf("run spans = %d, want 1", runSpans)
	}
	if probeFires == 0 {
		t.Error("no probe-fire spans")
	}

	gap := scope.Hist("run/handler_gap_cycles")
	errH := scope.Hist("run/interval_error_cycles")
	if gap == nil || errH == nil {
		t.Fatal("interval histograms missing")
	}
	// The error histogram is the gap data re-based to the 5000-cycle
	// target (bucketing makes the two quantiles agree only within the
	// histogram's ~3% relative resolution).
	gp, ep := gap.Quantile(50), errH.Quantile(50)
	if diff := gp - 5000 - ep; diff > gp/16 || diff < -gp/16 {
		t.Errorf("interval-error p50 = %d, gap p50 = %d; want error = gap - 5000", ep, gp)
	}
	if int64(gap.N()) != res.Stats[0].HandlerCalls-1 {
		t.Errorf("gap samples = %d, handler calls = %d (first fire must be skipped)",
			gap.N(), res.Stats[0].HandlerCalls)
	}

	if sites := scope.HotSites(0); len(sites) == 0 {
		t.Error("no probe sites attributed")
	}
}

// A program compiled with a scope but run without one must fall back
// to the compile-time scope (Program.obs), and a nil scope must leave
// the run unobserved without failing.
func TestRunScopeFallback(t *testing.T) {
	scope := obs.New(0)
	prog, err := CompileText(loopSrc,
		WithDesign(instrument.CI), WithProbeInterval(200), WithObs(scope))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run("main", WithArgv(100000), WithInterval(5000), WithLimit(10_000_000)); err != nil {
		t.Fatal(err)
	}
	if len(scope.Events()) == 0 {
		t.Error("run did not fall back to the compile-time scope")
	}

	plain, err := CompileText(loopSrc, WithDesign(instrument.CI), WithProbeInterval(200))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Run("main", WithArgv(100000), WithInterval(5000), WithLimit(10_000_000)); err != nil {
		t.Fatal(err)
	}
}

// ConfigOf resolves options into the Config an engine cache key is
// built from; later options must override earlier ones.
func TestConfigOfResolution(t *testing.T) {
	cfg := ConfigOf(
		WithDesign(instrument.CI),
		WithProbeInterval(100),
		WithProbeInterval(250),
		WithAllowableError(80))
	if cfg.Design != instrument.CI || cfg.ProbeIntervalIR != 250 || cfg.AllowableErrorIR != 80 {
		t.Errorf("resolved config = %+v", cfg)
	}
	if got := ConfigOf(); got.Design != 0 || got.ProbeIntervalIR != 0 || got.ImportedCosts != nil {
		t.Errorf("ConfigOf() = %+v, want zero", got)
	}
}
