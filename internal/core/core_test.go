package core

import (
	"strings"
	"testing"

	"repro/internal/ci/analysis"
	"repro/internal/ci/instrument"
	"repro/internal/ir"
	"repro/internal/vm"
	"repro/internal/workloads"
)

const loopSrc = `
func @main(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`

func TestCompileTextAndRun(t *testing.T) {
	prog, err := CompileText(loopSrc, WithDesign(instrument.CI), WithProbeInterval(200))
	if err != nil {
		t.Fatal(err)
	}
	fires := 0
	res, err := prog.Run("main",
		WithThreads(1),
		WithArgv(200000),
		WithInterval(5000),
		WithHandler(func(uint64) { fires++ }),
		WithLimit(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Returns[0] != 19999900000 {
		t.Errorf("result = %d", res.Returns[0])
	}
	if fires == 0 {
		t.Error("handler never fired")
	}
	if res.Stats[0].Probes == 0 {
		t.Error("no probes executed")
	}
}

func TestCompileDoesNotMutateSource(t *testing.T) {
	src := ir.MustParse(loopSrc)
	before := src.String()
	if _, err := Compile(src, WithDesign(instrument.CI), WithProbeInterval(100)); err != nil {
		t.Fatal(err)
	}
	if src.String() != before {
		t.Error("Compile mutated the source module")
	}
}

func TestCompileRejectsInvalidModule(t *testing.T) {
	m := ir.NewModule("bad")
	f := m.NewFunc("f", 0)
	f.NewBlock("entry") // unterminated
	if _, err := Compile(m); err == nil {
		t.Error("Compile accepted an invalid module")
	}
}

func TestExportCosts(t *testing.T) {
	prog, err := CompileText(loopSrc, WithDesign(instrument.CI), WithProbeInterval(100))
	if err != nil {
		t.Fatal(err)
	}
	data, err := prog.ExportCosts()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "main") {
		t.Errorf("cost file lacks main: %s", data)
	}
	// Non-CI designs have no cost table.
	progN, err := CompileText(loopSrc, WithDesign(instrument.Naive))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := progN.ExportCosts(); err == nil {
		t.Error("Naive design should not export costs")
	}
}

func TestProfileMeasuresIRPerCycle(t *testing.T) {
	src := ir.MustParse(loopSrc)
	ipc, err := Profile(src, "main", []int64{100000}, 1, nil, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0 || ipc > 4 {
		t.Errorf("IR/cycle = %v, implausible", ipc)
	}
}

func TestRunMultiThreads(t *testing.T) {
	wl := workloads.ByName("histogram")
	prog, err := Compile(wl.Build(1), WithDesign(instrument.CI), WithProbeInterval(250))
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run("main", WithThreads(4), WithInterval(5000), WithLimit(60_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("stats for %d threads", len(res.Stats))
	}
	for i, s := range res.Stats {
		if s.Instrs == 0 {
			t.Errorf("thread %d idle", i)
		}
	}
}

func TestRunRecordsIntervals(t *testing.T) {
	prog, err := CompileText(loopSrc, WithDesign(instrument.CI), WithProbeInterval(200))
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run("main",
		WithArgv(500000),
		WithInterval(5000),
		WithRecordIntervals(true),
		WithLimit(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Intervals[0]) < 10 {
		t.Errorf("only %d intervals recorded", len(res.Intervals[0]))
	}
}

func TestRunUnknownFunction(t *testing.T) {
	prog, err := CompileText(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run("nosuch"); err == nil {
		t.Error("Run accepted unknown function")
	}
}

func TestCompileWithOptimizer(t *testing.T) {
	src := `
func @main(%n) {
entry:
  %a = mov 6
  %b = mul %a, 7
  %dead = add %b, 99
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %b
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`
	plain, err := CompileText(src, WithDesign(instrument.CI), WithProbeInterval(200))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := CompileText(src, WithDesign(instrument.CI), WithProbeInterval(200), WithOptimize(true))
	if err != nil {
		t.Fatal(err)
	}
	args := core_testArgs(1000)
	rp, err := plain.Run("main", WithArgs(args), WithLimit(10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	ro, err := opt.Run("main", WithArgs(args), WithLimit(10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if rp.Returns[0] != ro.Returns[0] {
		t.Errorf("optimizer changed result: %d vs %d", rp.Returns[0], ro.Returns[0])
	}
	if ro.Stats[0].Instrs >= rp.Stats[0].Instrs {
		t.Errorf("optimizer did not shrink execution: %d vs %d instrs",
			ro.Stats[0].Instrs, rp.Stats[0].Instrs)
	}
}

func core_testArgs(n int64) func(int) []int64 {
	return func(int) []int64 { return []int64{n} }
}

// End-to-end §2.6 modular compilation: a library unit is compiled with
// CIs and exports its cost file; the application unit imports the
// library's functions and costs, is compiled separately, and the two
// instrumented units link into one executable whose behavior matches a
// monolithic build.
func TestModularCompilationEndToEnd(t *testing.T) {
	libSrc := `
module libm
func @scale(%x) {
entry:
  %y = mul %x, 3
  %z = add %y, 1
  ret %z
}
func @heavy(%n) {
entry:
  %s = mov 0
  %i = mov 0
  jmp head
head:
  %c = lt %i, %n
  br %c, body, exit
body:
  %s = add %s, %i
  %i = add %i, 1
  jmp head
exit:
  ret %s
}
`
	appSrc := `
module app
import @scale
import @heavy
func @main(%n) {
entry:
  %a = call @scale(%n)
  %b = call @heavy(%a)
  ret %b
}
`
	lib, err := CompileText(libSrc,
		WithDesign(instrument.CI),
		WithProbeInterval(150))
	if err != nil {
		t.Fatal(err)
	}
	costData, err := lib.ExportCosts()
	if err != nil {
		t.Fatal(err)
	}
	imported, err := analysis.ImportCosts(costData)
	if err != nil {
		t.Fatal(err)
	}
	// scale is tiny: it must be exported transparent (uninstrumented,
	// constant cost) so the app folds it at the call site; heavy must
	// be exported as self-instrumenting.
	if imported["scale"].Instrumented || !imported["scale"].Cost.IsConst() {
		t.Errorf("scale export = %+v, want transparent const", imported["scale"])
	}
	if !imported["heavy"].Instrumented {
		t.Errorf("heavy export = %+v, want instrumented", imported["heavy"])
	}
	app, err := CompileText(appSrc,
		WithDesign(instrument.CI),
		WithProbeInterval(150),
		WithImportedCosts(imported))
	if err != nil {
		t.Fatal(err)
	}
	linked, err := ir.Link("prog", app.Mod, lib.Mod)
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(linked, nil, 1)
	machine.LimitInstrs = 50_000_000
	th := machine.NewThread(0)
	th.RT.RegisterCI(5000, func(uint64) {})
	got, err := th.Run("main", 10000)
	if err != nil {
		t.Fatal(err)
	}
	// Monolithic reference.
	mono := ir.MustParse("module m\n" + libSrc[len("\nmodule libm\n"):] + appSrc[strings.Index(appSrc, "func @main"):])
	ref := vm.New(mono, nil, 1)
	ref.LimitInstrs = 50_000_000
	rth := ref.NewThread(0)
	want, err := rth.Run("main", 10000)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("linked result = %d, want %d", got, want)
	}
	// Counter fidelity must hold across the module boundary.
	ratio := float64(th.RT.InsCount()) / float64(th.Stats.Instrs)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("cross-module counter ratio = %.3f", ratio)
	}
}
