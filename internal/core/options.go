// Functional-options surface for Compile/Run. Config remains a plain
// struct for callers that build configurations programmatically (via
// the CompileConfig entry point), but the canonical API is
//
//	prog, err := core.Compile(src,
//	    core.WithDesign(instrument.CI),
//	    core.WithProbeInterval(250),
//	    core.WithObs(scope))
//	res, err := prog.Run("main",
//	    core.WithThreads(8),
//	    core.WithInterval(5000))
//
// Options apply in order; later options override earlier ones.
package core

import (
	"repro/internal/ci/analysis"
	"repro/internal/ci/ciruntime"
	"repro/internal/ci/instrument"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// settings is the resolved option state: compile config, run config,
// the observability scope shared by both phases, and an optional
// compile interceptor.
type settings struct {
	cfg      Config
	rc       RunConfig
	obs      *obs.Scope
	sanitize SanitizeFunc
	// tierSet marks an explicit WithTier so Program.Run can distinguish
	// "override the compiled-in tier" from the zero value.
	tierSet bool
}

// Option configures Compile and/or Run. Compile ignores run-only
// options and vice versa, so one option slice can serve both phases.
type Option func(*settings)

// SanitizeFunc intercepts compilation: when installed via WithSanitize,
// Compile delegates to it with the resolved Config. The sanitize
// package's Checked adapter routes this through full translation
// validation without core importing it (which would cycle).
type SanitizeFunc func(src *ir.Module, cfg Config) (*Program, error)

func resolve(opts []Option) settings {
	var st settings
	for _, o := range opts {
		if o != nil {
			o(&st)
		}
	}
	return st
}

// ConfigOf resolves opts to the compile-side Config — the canonical
// way to derive cache keys or feed struct-based entry points (e.g.
// sanitize.CompileChecked) from an option list.
func ConfigOf(opts ...Option) Config { return resolve(opts).cfg }

// RunConfigOf resolves opts to the run-side RunConfig.
func RunConfigOf(opts ...Option) RunConfig { return resolve(opts).rc }

// WithDesign selects the probe design.
func WithDesign(d instrument.Design) Option {
	return func(s *settings) { s.cfg.Design = d }
}

// WithProbeInterval sets the compile-time probe interval in IR
// instructions.
func WithProbeInterval(n int64) Option {
	return func(s *settings) { s.cfg.ProbeIntervalIR = n }
}

// WithAllowableError bounds branch-arm summarization (§3.3).
func WithAllowableError(n int64) Option {
	return func(s *settings) { s.cfg.AllowableErrorIR = n }
}

// WithExternCost sets the heuristic cost of uninstrumented calls (§4).
func WithExternCost(n int64) Option {
	return func(s *settings) { s.cfg.ExternCostIR = n }
}

// WithImportedCosts supplies cost files from other build units (§2.6).
func WithImportedCosts(t analysis.CostTable) Option {
	return func(s *settings) { s.cfg.ImportedCosts = t }
}

// WithLoopTransform enables or disables the §3.4 loop transform
// (enabled by default; disable for ablations).
func WithLoopTransform(on bool) Option {
	return func(s *settings) { s.cfg.DisableLoopTransform = !on }
}

// WithLoopClone enables or disables the §3.5 loop clone.
func WithLoopClone(on bool) Option {
	return func(s *settings) { s.cfg.DisableLoopClone = !on }
}

// WithOptimize runs the IR optimizer before the CI analysis.
func WithOptimize(on bool) Option {
	return func(s *settings) { s.cfg.Optimize = on }
}

// WithDebugVerify re-verifies the IR after every pipeline stage.
func WithDebugVerify(on bool) Option {
	return func(s *settings) { s.cfg.DebugVerify = on }
}

// WithFuncStageHook observes each function after every analysis-side
// rewrite.
func WithFuncStageHook(h analysis.StageHook) Option {
	return func(s *settings) { s.cfg.FuncStageHook = h }
}

// WithModStageHook observes the module at the instrumentation pipeline
// points.
func WithModStageHook(h instrument.ModStageHook) Option {
	return func(s *settings) { s.cfg.ModStageHook = h }
}

// WithTier selects the VM execution tier: vm.TierInterpreter (the
// default and the reference semantics) or vm.TierCompiled (the
// closure-threaded compiled tier, cycle-exact with the interpreter).
// The tier participates in compile-side Config so engine cache keys
// separate tiers; at Run it selects the machine's engine. A run-time
// WithTier overrides the tier the program was compiled with.
func WithTier(t vm.Tier) Option {
	return func(s *settings) {
		s.cfg.Tier = t
		s.tierSet = true
	}
}

// WithSanitize installs a compile interceptor, typically
// sanitize.Checked(...), that routes compilation through translation
// validation.
func WithSanitize(fn SanitizeFunc) Option {
	return func(s *settings) { s.sanitize = fn }
}

// WithObs attaches an observability scope to both phases: Compile
// emits stage-transition instants, Run attaches the scope to the VM
// (probe-site profile, handler spans) and records interval-error and
// handler-latency histograms. A nil scope is the disabled default.
func WithObs(scope *obs.Scope) Option {
	return func(s *settings) { s.obs = scope }
}

// WithThreads runs the entry function on n VM threads.
func WithThreads(n int) Option {
	return func(s *settings) { s.rc.Threads = n }
}

// WithArgs supplies per-thread argument vectors.
func WithArgs(fn func(id int) []int64) Option {
	return func(s *settings) { s.rc.Args = fn }
}

// WithArgv passes the same fixed arguments to every thread.
func WithArgv(vals ...int64) Option {
	return func(s *settings) {
		s.rc.Args = func(int) []int64 { return vals }
	}
}

// WithInterval registers the run handler with this CI interval
// (cycles) on every thread.
func WithInterval(cycles int64) Option {
	return func(s *settings) { s.rc.IntervalCycles = cycles }
}

// WithHandler sets the interrupt handler registered by WithInterval.
func WithHandler(h func(irSinceLast uint64)) Option {
	return func(s *settings) { s.rc.Handler = h }
}

// WithIRPerCycle tunes the runtime's IR-to-cycle ratio.
func WithIRPerCycle(f float64) Option {
	return func(s *settings) { s.rc.IRPerCycle = f }
}

// WithQuantumPolicy installs an interval-control policy on the run
// handler registered by WithInterval: each thread gets a fresh policy
// from make, observing every inter-fire gap and steering the next
// interval (see ciruntime.QuantumPolicy). Nil (the default) keeps the
// interval fixed. Ignored by the UserInterrupt design, whose cadence
// is a hardware timer rather than a probe-driven runtime.
func WithQuantumPolicy(make func() ciruntime.QuantumPolicy) Option {
	return func(s *settings) { s.rc.Quantum = make }
}

// WithRecordIntervals records inter-fire gaps on handler id 1.
func WithRecordIntervals(on bool) Option {
	return func(s *settings) { s.rc.RecordIntervals = on }
}

// WithModel overrides the VM cost model.
func WithModel(m *vm.CostModel) Option {
	return func(s *settings) { s.rc.Model = m }
}

// WithLimit bounds per-thread execution in executed instructions.
func WithLimit(n int64) Option {
	return func(s *settings) { s.rc.LimitInstrs = n }
}
