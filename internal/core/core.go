// Package core is the public driver of the Compiler Interrupts
// library: it ties together canonicalization, the analysis phase (§3),
// the instrumentation phase (§4) and the virtual machine, behind a
// small API mirroring how the paper's LLVM pass is used.
//
// Typical usage (functional options; see options.go):
//
//	prog, err := core.CompileText(src,
//	    core.WithDesign(instrument.CI),
//	    core.WithProbeInterval(250))
//	stats, err := prog.Run("main",
//	    core.WithInterval(5000),
//	    core.WithHandler(func(irDelta uint64) { ... }))
//
// The Config struct remains for programmatic construction and reaches
// the same path via CompileConfig.
package core

import (
	"fmt"

	"repro/internal/ci/analysis"
	"repro/internal/ci/ciruntime"
	"repro/internal/ci/instrument"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/vm"
)

// Config selects the instrumentation design and analysis parameters.
type Config struct {
	// Design is the probe design (instrument.CI by default).
	Design instrument.Design
	// ProbeIntervalIR is the compile-time probe interval in IR
	// instructions (default 1000).
	ProbeIntervalIR int64
	// AllowableErrorIR bounds branch-arm summarization (§3.3); defaults
	// to the probe interval, as the paper chooses heuristically.
	AllowableErrorIR int64
	// ExternCostIR is the heuristic cost of uninstrumented calls (§4;
	// default 100).
	ExternCostIR int64
	// ImportedCosts supplies cost files from other build units (§2.6).
	ImportedCosts analysis.CostTable
	// DisableLoopTransform / DisableLoopClone switch off the §3.4/§3.5
	// rewrites, for ablation studies.
	DisableLoopTransform bool
	DisableLoopClone     bool
	// Optimize runs the IR optimizer (package opt) before the CI
	// analysis, mirroring the paper's use of -O3 IR.
	Optimize bool
	// Tier selects the VM execution tier at run time (interpreter by
	// default). It lives in the compile-side Config so engine cache
	// keys and ConfigOf-derived identities separate tiers.
	Tier vm.Tier
	// DebugVerify re-verifies the IR after every pipeline stage and
	// fails compilation at the first stage that corrupts it.
	DebugVerify bool
	// FuncStageHook observes each function after every analysis-side
	// rewrite ("canonicalize", "loop-transform", "loop-clone").
	FuncStageHook analysis.StageHook
	// ModStageHook observes the module at the instrumentation pipeline
	// points ("input", "analysis", "probes"). Both hooks feed the
	// translation-validation sanitizer (internal/sanitize).
	ModStageHook instrument.ModStageHook
}

// Program is a compiled (instrumented) module ready to run on the VM.
type Program struct {
	// Mod is the instrumented module.
	Mod *ir.Module
	// Source is the pristine module the program was compiled from.
	Source *ir.Module
	// Instr reports what the instrumentation phase did.
	Instr *instrument.Result
	cfg   Config
	obs   *obs.Scope
}

// Compile clones src and instruments the clone per the resolved
// options. src itself is not modified. With WithSanitize the
// compilation is delegated to the installed interceptor (translation
// validation); with WithObs each pipeline stage emits a trace instant
// and the scope carries over to Run.
func Compile(src *ir.Module, opts ...Option) (*Program, error) {
	st := resolve(opts)
	if st.sanitize != nil {
		p, err := st.sanitize(src, st.cfg)
		if err != nil {
			return nil, err
		}
		if p.obs == nil {
			p.obs = st.obs
		}
		return p, nil
	}
	cfg := st.cfg
	if scope := st.obs; scope.Enabled() {
		inner := cfg.ModStageHook
		cfg.ModStageHook = func(stage string, m *ir.Module) {
			scope.Instant("compile", "stage/"+stage, 0, scope.Tick())
			if inner != nil {
				inner(stage, m)
			}
		}
	}
	if err := src.Verify(); err != nil {
		return nil, fmt.Errorf("core: input module invalid: %w", err)
	}
	m := src.Clone()
	if cfg.Optimize {
		opt.Module(m)
	}
	res, err := instrument.Instrument(m, instrument.Options{
		Design: cfg.Design,
		Analysis: analysis.Options{
			ProbeInterval:        cfg.ProbeIntervalIR,
			AllowableError:       cfg.AllowableErrorIR,
			ExternCostIR:         cfg.ExternCostIR,
			Imported:             cfg.ImportedCosts,
			DisableLoopTransform: cfg.DisableLoopTransform,
			DisableLoopClone:     cfg.DisableLoopClone,
			StageHook:            cfg.FuncStageHook,
		},
		DebugVerify: cfg.DebugVerify,
		StageHook:   cfg.ModStageHook,
	})
	if err != nil {
		return nil, err
	}
	return &Program{Mod: m, Source: src, Instr: res, cfg: st.cfg, obs: st.obs}, nil
}

// CompileConfig compiles src from a programmatically built Config —
// the struct entry point for callers (like the sanitize interceptor)
// that assemble configurations as values rather than option lists.
// Equivalent to Compile with the matching fine-grained options.
func CompileConfig(src *ir.Module, cfg Config, opts ...Option) (*Program, error) {
	withCfg := func(s *settings) { s.cfg = cfg }
	return Compile(src, append([]Option{withCfg}, opts...)...)
}

// CompileText parses textual IR and compiles it.
func CompileText(src string, opts ...Option) (*Program, error) {
	m, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(m, opts...)
}

// ExportCosts serializes the program's function cost table for
// dependent build units (§2.6). Only meaningful for CI designs.
func (p *Program) ExportCosts() ([]byte, error) {
	if p.Instr.Analysis == nil {
		return nil, fmt.Errorf("core: design %v exports no cost table", p.cfg.Design)
	}
	return analysis.ExportCosts(p.Instr.Analysis.Costs)
}

// RunConfig configures a VM run of a compiled program.
type RunConfig struct {
	// Threads runs the entry function on this many VM threads (default
	// 1); Args(id) supplies per-thread arguments (default: thread id).
	Threads int
	Args    func(id int) []int64
	// IntervalCycles registers Handler with this CI interval on every
	// thread. Zero skips registration. Under the UserInterrupt design
	// the same value is the hardware timer cadence instead.
	IntervalCycles int64
	Handler        func(irSinceLast uint64)
	// Quantum, when non-nil, makes one fresh interval-control policy
	// per thread and installs it on the run handler (see
	// ciruntime.QuantumPolicy and WithQuantumPolicy).
	Quantum func() ciruntime.QuantumPolicy
	// IRPerCycle tunes the runtime's IR-to-cycle ratio; zero keeps the
	// paper's default of 4. Use Profile to measure it.
	IRPerCycle float64
	// RecordIntervals records inter-fire gaps on handler id 1.
	RecordIntervals bool
	// Model overrides the VM cost model.
	Model *vm.CostModel
	// LimitInstrs bounds per-thread execution (0 = none).
	LimitInstrs int64
}

// RunResult aggregates a run.
type RunResult struct {
	// Stats holds per-thread VM statistics.
	Stats []vm.Stats
	// Intervals holds recorded handler gaps (cycles) per thread, when
	// RecordIntervals was set.
	Intervals [][]int64
	// Returns holds each thread's return value.
	Returns []int64
}

// Run executes the program's function fn under the configured VM. The
// observability scope defaults to the one given at Compile time; a
// WithObs among opts overrides it for this run.
func (p *Program) Run(fn string, opts ...Option) (*RunResult, error) {
	st := resolve(opts)
	rc := st.rc
	scope := st.obs
	if scope == nil {
		scope = p.obs
	}
	threads := rc.Threads
	if threads < 1 {
		threads = 1
	}
	args := rc.Args
	if args == nil {
		args = func(id int) []int64 { return []int64{int64(id)} }
	}
	f := p.Mod.FuncByName(fn)
	if f == nil {
		return nil, fmt.Errorf("core: no function %q", fn)
	}
	if f.NumParams == 0 {
		args = func(int) []int64 { return nil }
	}
	machine := vm.New(p.Mod, rc.Model, threads)
	machine.LimitInstrs = rc.LimitInstrs
	machine.Obs = scope
	machine.Tier = p.cfg.Tier
	if st.tierSet {
		machine.Tier = st.cfg.Tier
	}
	res := &RunResult{
		Stats:     make([]vm.Stats, threads),
		Intervals: make([][]int64, threads),
		Returns:   make([]int64, threads),
	}
	// Under the UserInterrupt design the run handler is delivered by
	// the VM's user-level interrupt timer instead of probe-driven CI
	// registration: the code carries no probes, so the cadence, gap
	// recording and interval-error metrics all come from the hardware
	// delivery path.
	uintr := p.cfg.Design == instrument.UserInterrupt && rc.IntervalCycles > 0
	// Sequential execution keeps interval recording and return values
	// simple and deterministic; the contention model already accounts
	// for the thread count. Threads are virtual-time independent.
	for id := 0; id < threads; id++ {
		var uintrGaps []int64
		if uintr {
			h := rc.Handler
			target := rc.IntervalCycles
			record := rc.RecordIntervals
			var lastFire, lastInstrs int64
			first := true
			machine.HW = &vm.HWConfig{
				IntervalCycles: rc.IntervalCycles,
				User:           true,
				Handler: func(t *vm.Thread) {
					now := t.Now()
					gap := now - lastFire
					lastFire = now
					irDelta := uint64(t.Stats.Instrs - lastInstrs)
					lastInstrs = t.Stats.Instrs
					if record {
						uintrGaps = append(uintrGaps, gap)
					}
					if first {
						// The first delivery's gap spans thread start to
						// first interrupt, not a steady-state interval.
						first = false
					} else if scope.Enabled() {
						scope.Observe("run/handler_gap_cycles", gap)
						scope.Observe("run/interval_error_cycles", gap-target)
					}
					if h != nil {
						h(irDelta)
					}
				},
			}
		}
		th := machine.NewThread(id)
		if rc.IRPerCycle > 0 {
			th.RT.IRPerCycle = rc.IRPerCycle
		}
		th.RT.RecordIntervals = rc.RecordIntervals
		if scope.Enabled() && rc.IntervalCycles > 0 && !uintr {
			target := rc.IntervalCycles
			first := true
			th.RT.OnFire = func(hid int, irDelta uint64, gap int64) {
				if first {
					// The first fire's gap spans registration to
					// first interrupt, not a steady-state interval.
					first = false
					return
				}
				scope.Observe("run/handler_gap_cycles", gap)
				scope.Observe("run/interval_error_cycles", gap-target)
			}
		}
		hid := 0
		if rc.IntervalCycles > 0 && !uintr {
			h := rc.Handler
			if h == nil {
				h = func(uint64) {}
			}
			hid = th.RT.RegisterCI(rc.IntervalCycles, h)
			if rc.Quantum != nil {
				th.RT.SetPolicy(hid, rc.Quantum())
			}
		}
		rv, err := th.Run(fn, args(id)...)
		if err != nil {
			return nil, fmt.Errorf("core: thread %d: %w", id, err)
		}
		res.Returns[id] = rv
		res.Stats[id] = th.Stats
		if hid != 0 {
			res.Intervals[id] = th.RT.Intervals(hid)
		}
		if uintr {
			res.Intervals[id] = uintrGaps
		}
		if scope.Enabled() {
			scope.Span("core", "run/"+fn, int32(id), 0, th.Stats.Cycles,
				obs.I("instrs", th.Stats.Instrs),
				obs.I("probes", th.Stats.Probes),
				obs.I("handler_calls", th.Stats.HandlerCalls))
			scope.Advance(th.Stats.Cycles)
		}
	}
	return res, nil
}

// Profile measures the program's achieved IR-per-cycle ratio with a
// short uninstrumented run — the per-application tuning of §4
// (footnote 3). Run it on the *source* module so probes don't skew the
// ratio.
func Profile(src *ir.Module, fn string, args []int64, threads int, model *vm.CostModel, limit int64) (float64, error) {
	machine := vm.New(src, model, threads)
	machine.LimitInstrs = limit
	th := machine.NewThread(0)
	if _, err := th.Run(fn, args...); err != nil {
		return 0, err
	}
	if th.Stats.Cycles == 0 {
		return 0, fmt.Errorf("core: empty profile run")
	}
	return float64(th.Stats.Instrs) / float64(th.Stats.Cycles), nil
}
