package core

import (
	"reflect"
	"testing"

	"repro/internal/ci/ciruntime"
	"repro/internal/ci/instrument"
	"repro/internal/obs"
)

// The UserInterrupt design must insert no probes: delivery comes from
// the VM's user-level interrupt timer, the handler still runs on its
// cadence, and the run result carries the recorded gaps and the UIntr
// delivery counter instead of probe statistics.
func TestUserInterruptRunDeliversWithoutProbes(t *testing.T) {
	prog, err := CompileText(loopSrc, WithDesign(instrument.UserInterrupt))
	if err != nil {
		t.Fatal(err)
	}
	if prog.Instr.Probes != 0 {
		t.Fatalf("uintr module carries %d probes, want 0", prog.Instr.Probes)
	}
	fires := 0
	res, err := prog.Run("main",
		WithArgv(500000),
		WithInterval(5000),
		WithHandler(func(uint64) { fires++ }),
		WithRecordIntervals(true),
		WithLimit(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats[0]
	if s.Probes != 0 {
		t.Errorf("probes executed = %d, want 0", s.Probes)
	}
	if s.UIntrs == 0 || s.HandlerCalls == 0 || fires == 0 {
		t.Errorf("no deliveries: UIntrs=%d HandlerCalls=%d fires=%d", s.UIntrs, s.HandlerCalls, fires)
	}
	if s.UIntrs != s.HandlerCalls {
		t.Errorf("UIntrs=%d vs HandlerCalls=%d, want equal", s.UIntrs, s.HandlerCalls)
	}
	if s.HWInterrupts != 0 {
		t.Errorf("HWInterrupts=%d under the uintr design, want 0", s.HWInterrupts)
	}
	if int64(len(res.Intervals[0])) != s.UIntrs {
		t.Errorf("recorded %d gaps for %d deliveries", len(res.Intervals[0]), s.UIntrs)
	}
}

// The uintr run must feed the same interval histograms the CI designs
// feed, skipping the first delivery's meaningless gap.
func TestUserInterruptObsHistograms(t *testing.T) {
	scope := obs.New(0)
	prog, err := CompileText(loopSrc, WithDesign(instrument.UserInterrupt), WithObs(scope))
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run("main",
		WithArgv(500000), WithInterval(5000), WithLimit(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	gap := scope.Hist("run/handler_gap_cycles")
	errH := scope.Hist("run/interval_error_cycles")
	if gap == nil || errH == nil {
		t.Fatal("interval histograms missing under the uintr design")
	}
	if int64(gap.N()) != res.Stats[0].UIntrs-1 {
		t.Errorf("gap samples = %d, deliveries = %d (first must be skipped)",
			gap.N(), res.Stats[0].UIntrs)
	}
}

// WithQuantumPolicy installs a fresh policy per thread, and seeded
// policy-driven runs are deterministic: identical invocations return
// identical recorded gap sequences.
func TestQuantumPolicyRunDeterministic(t *testing.T) {
	prog, err := CompileText(loopSrc, WithDesign(instrument.CI), WithProbeInterval(200))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *RunResult {
		res, err := prog.Run("main",
			WithThreads(2),
			WithArgv(500000),
			WithInterval(5000),
			WithQuantumPolicy(func() ciruntime.QuantumPolicy { return &ciruntime.FeedbackPID{} }),
			WithRecordIntervals(true),
			WithLimit(50_000_000))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Intervals, b.Intervals) {
		t.Error("two identical policy-driven runs recorded different gap sequences")
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Error("two identical policy-driven runs diverged in Stats")
	}
	if len(a.Intervals[0]) == 0 {
		t.Error("no gaps recorded under the quantum policy")
	}
}
