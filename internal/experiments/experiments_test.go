package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ci/instrument"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// testEngine runs cells on several workers even on small machines so
// the parallel paths are exercised under -race.
func testEngine() *engine.Engine { return engine.New(4) }

func TestMeasureBaseline(t *testing.T) {
	wl := workloads.ByName("histogram")
	base, err := MeasureBaseline(wl, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles <= 0 || base.Instrs <= 0 {
		t.Fatalf("baseline = %+v", base)
	}
	if base.IRPerCycle <= 0.1 || base.IRPerCycle > 2 {
		t.Errorf("IR/cycle = %v, implausible", base.IRPerCycle)
	}
	base32, err := MeasureBaseline(wl, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if base32.Cycles <= base.Cycles {
		t.Error("32-thread contention should slow the baseline")
	}
}

// The headline ordering of Figures 9/11: CI ≈ CI-Cycles < CnB < CD ≈
// Naive, and everything shrinks with 32 threads.
func TestOverheadOrdering(t *testing.T) {
	names := []string{"radix", "volrend", "kmeans", "fluidanimate", "streamcluster", "word_count"}
	designs := []instrument.Design{instrument.CI, instrument.CnB, instrument.Naive}
	eng := testEngine()
	med := func(threads int) map[instrument.Design]float64 {
		per := make(map[instrument.Design][]float64)
		for _, n := range names {
			wl := workloads.ByName(n)
			base, err := BaselineCached(eng, wl, 1, threads)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range designs {
				row, err := MeasureOverhead(eng, wl, d, base, 1, threads, 5000, false)
				if err != nil {
					t.Fatal(err)
				}
				if row.Overhead < 0 {
					t.Errorf("%s/%v: negative overhead %v", n, d, row.Overhead)
				}
				per[d] = append(per[d], row.Overhead)
			}
		}
		out := make(map[instrument.Design]float64)
		for d, xs := range per {
			out[d] = stats.MedianF(xs)
		}
		return out
	}
	m1 := med(1)
	if !(m1[instrument.CI] < m1[instrument.CnB] && m1[instrument.CnB] < m1[instrument.Naive]) {
		t.Errorf("1-thread ordering violated: CI=%.3f CnB=%.3f Naive=%.3f",
			m1[instrument.CI], m1[instrument.CnB], m1[instrument.Naive])
	}
	m32 := med(32)
	for _, d := range designs {
		if m32[d] >= m1[d] {
			t.Errorf("%v: overhead should shrink at 32 threads (%.3f -> %.3f)", d, m1[d], m32[d])
		}
	}
}

// Figure 12's shape: hardware interrupts collapse at short intervals
// (≈10x at 5k cycles), CI stays nearly flat, and hardware wins only at
// very long intervals.
func TestFigure12Shape(t *testing.T) {
	pts, cerrs, err := MeasureFigure12(testEngine(), 1, []int64{2000, 5000, 500000},
		[]string{"radix", "histogram", "volrend", "barnes"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cerrs) > 0 {
		t.Fatalf("cell errors: %v", cerrs)
	}
	byInterval := map[int64]SweepPoint{}
	for _, p := range pts {
		byInterval[p.IntervalCycles] = p
	}
	if hw := byInterval[5000].HWSlowdown; hw < 5 || hw > 15 {
		t.Errorf("HW slowdown at 5k = %.1fx, want ~9x", hw)
	}
	if ci := byInterval[2000].CISlowdown; ci > 1.6 {
		t.Errorf("CI slowdown at 2k = %.2fx, want small", ci)
	}
	if byInterval[2000].HWSlowdown < 10*byInterval[2000].CISlowdown {
		t.Error("CI should be ~10-100x cheaper than HW at 2k cycles")
	}
	p5 := byInterval[500000]
	if p5.HWSlowdown > p5.CISlowdown {
		t.Errorf("HW should win at 500k cycles: HW %.2fx vs CI %.2fx",
			p5.HWSlowdown, p5.CISlowdown)
	}
}

// Accuracy calibration drives each design's median error toward zero.
func TestAccuracyCalibration(t *testing.T) {
	eng := testEngine()
	wl := workloads.ByName("ocean-cp")
	base, err := BaselineCached(eng, wl, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []instrument.Design{instrument.CI, instrument.Naive, instrument.CnB} {
		row, err := MeasureOverhead(eng, wl, d, base, 1, 1, 5000, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(row.Intervals) < 50 {
			t.Fatalf("%v: only %d intervals", d, len(row.Intervals))
		}
		med := stats.Median(row.Intervals)
		if med < 3500 || med > 6500 {
			t.Errorf("%v: calibrated median interval %d, want ~5000", d, med)
		}
	}
}

func TestCICyclesNeverEarly(t *testing.T) {
	eng := testEngine()
	wl := workloads.ByName("swaptions")
	base, err := BaselineCached(eng, wl, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	row, err := MeasureOverhead(eng, wl, instrument.CICycles, base, 1, 1, 5000, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range row.Intervals {
		if g < 5000 {
			t.Fatalf("CI-Cycles fired early: %d < 5000", g)
		}
	}
}

func TestTable7Full(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all 28 workloads at 2 thread counts")
	}
	rows, geo, cerrs := MeasureTable7(testEngine(), 1)
	if len(cerrs) > 0 {
		t.Fatalf("cell errors: %v", cerrs)
	}
	if len(rows) != 28 {
		t.Fatalf("rows = %d, want 28", len(rows))
	}
	for _, r := range rows {
		if r.PTms1 <= 0 || r.CI1 < 1 || r.N1 < r.CI1*0.95 {
			t.Errorf("%s: PT=%.2f CI=%.2f N=%.2f", r.Workload, r.PTms1, r.CI1, r.N1)
		}
	}
	if geo.CI1 <= 1 || geo.N1 <= geo.CI1 {
		t.Errorf("geo-means: CI %.3f, Naive %.3f", geo.CI1, geo.N1)
	}
	if geo.CI32 >= geo.CI1 || geo.N32 >= geo.N1 {
		t.Errorf("32-thread geo-means should shrink: CI %.3f->%.3f N %.3f->%.3f",
			geo.CI1, geo.CI32, geo.N1, geo.N32)
	}
}

func TestPrintersProduceRows(t *testing.T) {
	var sb strings.Builder
	if err := PrintFigure7(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if err := PrintFigure8(&sb, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 7", "delegation", "MCS", "Figure 8", "spinlock"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

// The hybrid watchdog (§5.4 future work) must bound late interrupts on
// gap-heavy programs and stay inert on gap-free ones.
func TestHybridWatchdog(t *testing.T) {
	rows, cerrs := MeasureHybrid(testEngine(), []string{"syscall-gaps", "word_count"}, 5000, 2.0, 1)
	if len(cerrs) > 0 {
		t.Fatalf("cell errors: %v", cerrs)
	}
	gaps := rows[0]
	if gaps.WatchdogFires == 0 {
		t.Fatal("watchdog never fired on syscall-gaps")
	}
	if gaps.HybridMax >= gaps.CIMax/2 {
		t.Errorf("hybrid max late error %d should be far below CI-only %d",
			gaps.HybridMax, gaps.CIMax)
	}
	// Bounded at roughly deadline (2x target) + trap cost.
	if gaps.HybridMax > 20000 {
		t.Errorf("hybrid max late error %d exceeds the watchdog bound", gaps.HybridMax)
	}
	wc := rows[1]
	if wc.WatchdogFires != 0 {
		t.Errorf("watchdog fired %d times on a gap-free workload", wc.WatchdogFires)
	}
	if wc.HybridOverhead > wc.CIOverhead*1.02+0.005 {
		t.Errorf("hybrid overhead %v should match CI %v when the watchdog is idle",
			wc.HybridOverhead, wc.CIOverhead)
	}
}

// §3.3: the allowable-error parameter's impact is negligible beyond
// ~500 IR, and larger settings can only remove probes.
func TestAllowableErrorStudy(t *testing.T) {
	pts, cerrs := MeasureAllowableError(testEngine(), []int64{50, 500, 2000}, 1)
	if len(cerrs) > 0 {
		t.Fatalf("cell errors: %v", cerrs)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	p500, p2000 := pts[1], pts[2]
	if d := p2000.MedianOverhead - p500.MedianOverhead; d > 0.01 || d < -0.01 {
		t.Errorf("overhead changes past 500 IR: %.3f vs %.3f", p500.MedianOverhead, p2000.MedianOverhead)
	}
	diff := p2000.MedianAbsError - p500.MedianAbsError
	if diff < 0 {
		diff = -diff
	}
	if diff > 250 {
		t.Errorf("accuracy changes past 500 IR: %d vs %d cycles", p500.MedianAbsError, p2000.MedianAbsError)
	}
	if pts[0].Probes < pts[1].Probes {
		t.Errorf("larger allowable error should not add probes: %d -> %d", pts[0].Probes, pts[1].Probes)
	}
}

// §5.4: CI reduces dynamic probe executions by more than 50% versus
// Naive in the vast majority of workloads.
func TestProbeExecutionReduction(t *testing.T) {
	rows, cerrs := MeasureProbeCounts(testEngine(), 1, 5000)
	if len(cerrs) > 0 {
		t.Fatalf("cell errors: %v", cerrs)
	}
	over50 := 0
	for _, r := range rows {
		if r.CIProbes >= r.NaiveProbes {
			t.Errorf("%s: CI executes more probes than Naive (%d vs %d)",
				r.Workload, r.CIProbes, r.NaiveProbes)
		}
		if r.Reduction > 0.5 {
			over50++
		}
		if r.TakenRate <= 0 || r.TakenRate > 0.6 {
			t.Errorf("%s: CI taken rate %.2f implausible", r.Workload, r.TakenRate)
		}
	}
	if over50 < len(rows)*2/3 {
		t.Errorf("only %d/%d workloads above 50%% probe reduction", over50, len(rows))
	}
}

// The chaos sweep's invariants — determinism, conservation, bounded
// degradation, progress — must hold at every standard rate, and the
// printer must render a row per (subsystem, rate) cell.
func TestChaosInvariantsHold(t *testing.T) {
	rows := RunChaos(1, ChaosRates)
	if want := 3 * len(ChaosRates); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	sawRecovery := false
	for _, r := range rows {
		if len(r.Violations) > 0 {
			t.Errorf("%s @ %g: %v", r.Subsystem, r.Rate, r.Violations)
		}
		if r.Rate == 0 && r.Recovered != 0 {
			t.Errorf("%s @ 0: recovery activity without faults (%d)", r.Subsystem, r.Recovered)
		}
		if r.Rate == 0.01 && r.Recovered > 0 {
			sawRecovery = true
		}
	}
	if !sawRecovery {
		t.Error("no subsystem exercised a recovery path at 1% faults")
	}
	var buf bytes.Buffer
	if err := PrintChaos(&buf, 1, []float64{0.01}); err != nil {
		t.Fatalf("PrintChaos: %v", err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("all invariants hold")) {
		t.Errorf("unexpected chaos output:\n%s", buf.String())
	}
}

// The -metrics acceptance path: running the Figure 10 accuracy sweep
// with an obs-attached engine must populate a per-design interval-error
// histogram for every plotted probe design, and the metrics report must
// surface their quantiles.
func TestFigure10PopulatesIntervalErrorMetrics(t *testing.T) {
	eng := testEngine()
	scope := obs.New(0)
	eng.AttachObs(scope)
	var out bytes.Buffer
	if err := PrintFigure10(&out, eng, 1); err != nil {
		t.Fatal(err)
	}
	designs := []instrument.Design{
		instrument.CI, instrument.CICycles, instrument.CnB,
		instrument.CD, instrument.Naive,
	}
	for _, d := range designs {
		h := scope.Hist("interval_error/" + d.String())
		if h == nil || h.N() == 0 {
			t.Errorf("no interval-error samples for design %s", d)
		}
	}
	var report strings.Builder
	if err := scope.WriteMetrics(&report); err != nil {
		t.Fatal(err)
	}
	rep := report.String()
	for _, want := range []string{"interval_error/CI", "interval_error/Naive", "p50", "p90", "p99"} {
		if !strings.Contains(rep, want) {
			t.Errorf("metrics report lacks %q", want)
		}
	}
}
