package experiments

import (
	"fmt"
	"io"

	"repro/internal/faults"
	"repro/internal/ffwd"
	"repro/internal/mtcp"
	"repro/internal/shenango"
)

// This file is the chaos experiment: every subsystem runs under a
// uniform fault plan at increasing fault rates, and the run is judged
// against the graceful-degradation invariants rather than against the
// paper's figures:
//
//  1. determinism — the same seed and plan produce bit-identical
//     results on a re-run;
//  2. conservation — every issued request and pushed packet is
//     accounted for exactly once (completed, aborted, dropped, lost or
//     still outstanding);
//  3. bounded degradation — tail latency under faults stays within a
//     fixed factor of the fault-free run, and throughput above a fixed
//     floor, because every loss path has a recovery mechanism
//     (retransmission, re-steering, MCS fallback);
//  4. progress — no run hangs: the simulators' event-loop deadlines
//     return errors instead of spinning, and none may fire.

// ChaosRates is the standard sweep: fault-free, 0.1%, 1%.
var ChaosRates = []float64{0, 0.001, 0.01}

// chaosBounds are the degradation invariants' constants: under any
// swept fault rate, p99-class tails may grow at most tailFactor x the
// fault-free tail and throughput may fall at most to throughputFloor x
// the fault-free rate.
const (
	chaosTailFactor      = 50.0
	chaosThroughputFloor = 0.4
)

// ChaosRow is one (subsystem, rate) cell of the sweep.
type ChaosRow struct {
	Subsystem string
	Rate      float64
	// Throughput and TailUs are the subsystem's headline metric and
	// p99-class tail latency under the plan.
	Throughput float64
	TailUs     float64
	// Recovered summarizes the fault-recovery activity observed
	// (retransmits, re-steers or fallback ops, by subsystem).
	Recovered int64
	// Violations lists every invariant the run broke (empty = pass).
	Violations []string
}

func (r ChaosRow) ok() string {
	if len(r.Violations) == 0 {
		return "ok"
	}
	return fmt.Sprintf("VIOLATED: %v", r.Violations)
}

// RunChaos sweeps all three systems applications across the given
// fault rates and checks the invariants at every point. The returned
// rows carry any violations; err is non-nil only when the harness
// itself fails (it never converts violations into errors — callers
// decide, so the printer can show a full table).
func RunChaos(seed uint64, rates []float64) []ChaosRow {
	if len(rates) == 0 {
		rates = ChaosRates
	}
	var rows []ChaosRow
	for _, rate := range rates {
		rows = append(rows, chaosMTCP(seed, rate), chaosShenango(seed, rate), chaosFFWD(seed, rate))
	}
	return rows
}

func chaosMTCP(seed uint64, rate float64) ChaosRow {
	cfg := mtcp.Config{
		Mode: mtcp.CI, Conns: 32, Adaptive: true,
		Seed: seed, FaultPlan: faults.Uniform(seed, rate),
	}
	row := ChaosRow{Subsystem: "mtcp", Rate: rate}
	r, err := mtcp.RunChecked(cfg)
	row.Throughput = r.ThroughputGbps
	row.TailUs = r.P99LatencyUs
	row.Recovered = r.Retransmits
	if err != nil {
		row.Violations = append(row.Violations, fmt.Sprintf("progress: %v", err))
	}
	if r2, _ := mtcp.RunChecked(cfg); r2 != r {
		row.Violations = append(row.Violations, "determinism: re-run differs")
	}
	if r.Issued != r.CompletedAll+r.Aborted+r.Rejects+r.Outstanding || r.Outstanding < 0 || r.Outstanding > int64(cfg.Conns) {
		row.Violations = append(row.Violations,
			fmt.Sprintf("conservation: issued=%d completed=%d aborted=%d rejects=%d outstanding=%d",
				r.Issued, r.CompletedAll, r.Aborted, r.Rejects, r.Outstanding))
	}
	if rate > 0 {
		base, _ := mtcp.RunChecked(mtcp.Config{Mode: mtcp.CI, Conns: 32, Adaptive: true, Seed: seed})
		row.Violations = append(row.Violations, boundedDegradation(
			r.ThroughputGbps, base.ThroughputGbps, r.P99LatencyUs, base.P99LatencyUs)...)
	}
	return row
}

func chaosShenango(seed uint64, rate float64) ChaosRow {
	cfg := shenango.Config{
		Kind: shenango.CIHosted, OfferedLoad: 200e3,
		Seed: seed, FaultPlan: faults.Uniform(seed, rate),
	}
	row := ChaosRow{Subsystem: "shenango", Rate: rate}
	r, err := shenango.RunChecked(cfg)
	row.Throughput = r.AchievedLoad
	row.TailUs = r.P999Us
	row.Recovered = r.ReSteers
	if err != nil {
		row.Violations = append(row.Violations, fmt.Sprintf("progress: %v", err))
	}
	if r2, _ := shenango.RunChecked(cfg); r2 != r {
		row.Violations = append(row.Violations, "determinism: re-run differs")
	}
	if rate > 0 {
		base, _ := shenango.RunChecked(shenango.Config{Kind: shenango.CIHosted, OfferedLoad: 200e3, Seed: seed})
		row.Violations = append(row.Violations, boundedDegradation(
			r.AchievedLoad, base.AchievedLoad, r.P999Us, base.P999Us)...)
	}
	return row
}

func chaosFFWD(seed uint64, rate float64) ChaosRow {
	cfg := ffwd.Config{
		Design: ffwd.DelegationCI, Threads: 32, RecordLatencies: true,
		Seed: seed, FaultPlan: faults.Uniform(seed, rate),
	}
	row := ChaosRow{Subsystem: "ffwd", Rate: rate}
	r := ffwd.Run(cfg)
	row.Throughput = r.ThroughputMops
	row.TailUs = float64(r.LatencySummary.Max) / 2600
	row.Recovered = r.FallbackOps
	if r2 := ffwd.Run(cfg); r2 != r {
		row.Violations = append(row.Violations, "determinism: re-run differs")
	}
	if rate > 0 {
		base := ffwd.Run(ffwd.Config{Design: ffwd.DelegationCI, Threads: 32, RecordLatencies: true, Seed: seed})
		mcs := ffwd.Run(ffwd.Config{Design: ffwd.MCS, Threads: 32, Seed: seed})
		// ffwd degrades toward the MCS fallback, so its floor is
		// relative to MCS, not to fault-free delegation.
		if r.ThroughputMops < chaosThroughputFloor*mcs.ThroughputMops {
			row.Violations = append(row.Violations,
				fmt.Sprintf("degradation: %.2f Mops below MCS floor %.2f", r.ThroughputMops, mcs.ThroughputMops))
		}
		baseTail := float64(base.LatencySummary.Max) / 2600
		if row.TailUs > chaosTailFactor*baseTail {
			row.Violations = append(row.Violations,
				fmt.Sprintf("degradation: tail %.1fµs exceeds %gx fault-free %.1fµs",
					row.TailUs, chaosTailFactor, baseTail))
		}
	}
	return row
}

// boundedDegradation checks invariant 3 against a fault-free baseline.
func boundedDegradation(tput, baseTput, tail, baseTail float64) []string {
	var v []string
	if tput < chaosThroughputFloor*baseTput {
		v = append(v, fmt.Sprintf("degradation: throughput %.3g below %.2fx fault-free %.3g",
			tput, chaosThroughputFloor, baseTput))
	}
	if baseTail > 0 && tail > chaosTailFactor*baseTail {
		v = append(v, fmt.Sprintf("degradation: tail %.1fµs exceeds %gx fault-free %.1fµs",
			tail, chaosTailFactor, baseTail))
	}
	return v
}

// PrintChaos runs the sweep and renders the invariant table. It
// returns an error if any invariant was violated, so `ciexp chaos`
// exits non-zero on a broken degradation path.
func PrintChaos(w io.Writer, seed uint64, rates []float64) error {
	fmt.Fprintf(w, "Chaos sweep (seed %d): graceful degradation under uniform fault plans\n", seed)
	fmt.Fprintf(w, "%-10s %-7s %12s %12s %10s  %s\n",
		"subsystem", "rate", "throughput", "tail(µs)", "recovered", "invariants")
	rows := RunChaos(seed, rates)
	bad := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-7.3g %12.3f %12.1f %10d  %s\n",
			r.Subsystem, r.Rate, r.Throughput, r.TailUs, r.Recovered, r.ok())
		bad += len(r.Violations)
	}
	if bad > 0 {
		return fmt.Errorf("chaos: %d invariant violation(s)", bad)
	}
	fmt.Fprintln(w, "all invariants hold: determinism, conservation, bounded degradation, progress")
	return nil
}
