package experiments

import (
	"fmt"
	"time"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/vm"
)

// TierSteps is the tier speed comparison over a workload set: host
// wall-clock execution rates (simulated IR instructions per host
// second) for the interpreter and the compiled tier running the same
// instrumented programs, plus their ratio. Cycle accounting is
// identical across tiers by construction, so the comparison is pure
// dispatch efficiency.
type TierSteps struct {
	// Workloads is the number of programs in the set.
	Workloads int
	// Instrs is the simulated instruction count of one full pass over
	// the set (equal for both tiers — checked, not assumed).
	Instrs int64
	// InterpStepsPerSec / CompiledStepsPerSec are the measured rates.
	InterpStepsPerSec   float64
	CompiledStepsPerSec float64
	// Speedup is CompiledStepsPerSec / InterpStepsPerSec.
	Speedup float64
}

// MeasureTierSteps compiles the named Table-7 workloads (CI design,
// 250-IR probes) and runs each once per tier on a raw VM with a
// 5000-cycle no-op CI handler, timing the host-side execution. It
// fails if the tiers disagree on the executed instruction count —
// a speed measurement on diverging semantics would be meaningless.
func MeasureTierSteps(eng *engine.Engine, names []string, scale int) (TierSteps, error) {
	sel, err := WorkloadsByName(names)
	if err != nil {
		return TierSteps{}, err
	}
	progs := make([]*core.Program, len(sel))
	for i, wl := range sel {
		progs[i], err = CompileCached(eng, wl, scale,
			core.WithDesign(instrument.CI), core.WithProbeInterval(250))
		if err != nil {
			return TierSteps{}, fmt.Errorf("%s: %w", wl.Name, err)
		}
	}
	run := func(tier vm.Tier) (int64, time.Duration, error) {
		// Best of three passes: the VM is deterministic, so the instruction
		// count is identical across passes and the minimum wall-clock is the
		// least host-noise-contaminated measurement.
		var best time.Duration
		var instrs int64
		for rep := 0; rep < 3; rep++ {
			var passInstrs int64
			var elapsed time.Duration
			for i, prog := range progs {
				machine := vm.New(prog.Mod, nil, 1)
				machine.Tier = tier
				machine.LimitInstrs = 400_000_000
				th := machine.NewThread(0)
				th.RT.RegisterCI(5000, func(uint64) {})
				start := time.Now()
				if _, err := th.Run("main", 0); err != nil {
					return 0, 0, fmt.Errorf("%s under %s: %w", sel[i].Name, tier, err)
				}
				elapsed += time.Since(start)
				passInstrs += th.Stats.Instrs
			}
			if rep == 0 || elapsed < best {
				best = elapsed
			}
			instrs = passInstrs
		}
		return instrs, best, nil
	}
	iInstrs, iElapsed, err := run(vm.TierInterpreter)
	if err != nil {
		return TierSteps{}, err
	}
	cInstrs, cElapsed, err := run(vm.TierCompiled)
	if err != nil {
		return TierSteps{}, err
	}
	if iInstrs != cInstrs {
		return TierSteps{}, fmt.Errorf("tier drift: interpreter executed %d instructions, compiled %d", iInstrs, cInstrs)
	}
	out := TierSteps{
		Workloads:           len(sel),
		Instrs:              iInstrs,
		InterpStepsPerSec:   float64(iInstrs) / iElapsed.Seconds(),
		CompiledStepsPerSec: float64(cInstrs) / cElapsed.Seconds(),
	}
	out.Speedup = out.CompiledStepsPerSec / out.InterpStepsPerSec
	return out, nil
}
