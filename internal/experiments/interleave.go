package experiments

import (
	"fmt"
	"io"

	"repro/internal/ci/fuzz"
	"repro/internal/engine"
	"repro/internal/ffwd"
	"repro/internal/interleave"
	"repro/internal/ir"
	"repro/internal/mtcp"
	"repro/internal/shenango"
)

// This file drives the handler interleaving verifier from the
// experiment CLI: every app sharing-protocol model plus a fuzz corpus
// with generated handlers goes through record → detect → explore, and
// the sweep fails on any unclassified race or non-commutative
// schedule. It is the sweep behind `ciexp interleave` and the
// interleave smoke gate in verify.sh.

// InterleaveRow is one verified module's summary.
type InterleaveRow struct {
	Name string
	// Feasible / Total count fire-capable and executed probe sites.
	Feasible, Total int64
	// Schedules is the number of explored forced-fire schedules.
	Schedules int
	// Shared counts classified shared addresses; ByClass the verdicts.
	Shared  int
	ByClass map[interleave.Class]int
	// Racy / NonCommute are the failure counts (0/0 = clean).
	Racy, NonCommute int
	// Undelivered / Inconclusive are exploration caveats, reported so
	// thin coverage is never silent.
	Undelivered, Inconclusive int
	// Detail is the first failure detail, if any.
	Detail string
}

func interleaveRow(name string, rep *interleave.Report) InterleaveRow {
	row := InterleaveRow{
		Name:     name,
		Feasible: int64(rep.FeasibleSites), Total: rep.TotalSites,
		Schedules:   rep.Schedules,
		Shared:      len(rep.Addrs),
		ByClass:     make(map[interleave.Class]int),
		Racy:        len(rep.Unclassified()),
		NonCommute:  len(rep.NonCommute),
		Undelivered: rep.Undelivered, Inconclusive: rep.Inconclusive,
	}
	for _, a := range rep.Addrs {
		row.ByClass[a.Class]++
	}
	for _, a := range rep.Unclassified() {
		row.Detail = fmt.Sprintf("word %d RACY (main %s, handler %s)", a.Addr, a.MainSite, a.HandlerSite)
		break
	}
	if row.Detail == "" && len(rep.NonCommute) > 0 {
		nc := rep.NonCommute[0]
		row.Detail = fmt.Sprintf("fire@%v: %s", nc.Schedule, nc.Detail)
	}
	return row
}

// interleaveSpec is one module to verify: an app protocol model or a
// fuzz-corpus program.
type interleaveSpec struct {
	name string
	mod  *ir.Module
	opts interleave.Options
}

// appInterleaveSpecs returns the three systems applications' CI
// sharing-protocol models.
func appInterleaveSpecs() []interleaveSpec {
	mm, mo := mtcp.InterleaveSpec()
	sm, so := shenango.InterleaveSpec()
	fm, fo := ffwd.InterleaveSpec()
	return []interleaveSpec{
		{"mtcp/ring", mm, mo},
		{"shenango/iokernel", sm, so},
		{"ffwd/delegation", fm, fo},
	}
}

// RunInterleaveSweep verifies the three app models and `seeds` fuzz
// programs with generated handlers at the given context bound. One
// module is one engine cell; the whole sweep shards across the engine
// pool, and each cell's own exploration runs serially so results are
// byte-identical at any worker count.
func RunInterleaveSweep(eng *engine.Engine, seeds, bound int) ([]InterleaveRow, []CellError) {
	specs := appInterleaveSpecs()
	for i := 0; i < seeds; i++ {
		seed := uint64(i + 1)
		opts := interleave.Options{
			ContextBound: bound,
			LimitInstrs:  5_000_000,
			MaxSchedules: 300,
		}
		specs = append(specs, interleaveSpec{
			name: fmt.Sprintf("fuzz/seed%d", seed),
			mod:  fuzz.Generate(seed, fuzz.Options{MaxDepth: 2, MaxStmts: 4, WithHandler: true}),
			opts: opts,
		})
	}
	for i := range specs {
		specs[i].opts.ContextBound = bound
	}
	rows, errs := engine.Map(eng.Pool, len(specs), func(i int) (InterleaveRow, error) {
		rep, err := interleave.VerifyHandlers(specs[i].mod, engine.Serial(), specs[i].opts)
		if err != nil {
			return InterleaveRow{Name: specs[i].name}, err
		}
		return interleaveRow(specs[i].name, rep), nil
	})
	return rows, cellErrors(errs, func(i int) string { return "interleave/" + specs[i].name })
}

// PrintInterleave renders the interleaving sweep and returns an error
// when any module has an unclassified race or a non-commutative
// schedule. quick shrinks the fuzz corpus for smoke-test use.
func PrintInterleave(w io.Writer, eng *engine.Engine, bound int, quick bool) error {
	seeds := 20
	if quick {
		seeds = 6
	}
	fmt.Fprintf(w, "Handler interleaving sweep: 3 app models + %d fuzz programs, context bound %d\n", seeds, bound)
	rows, errs := RunInterleaveSweep(eng, seeds, bound)
	fmt.Fprintf(w, "%-20s%10s%11s%8s%6s%12s%13s\n",
		"module", "feasible", "schedules", "shared", "racy", "noncommute", "undelivered")
	bad := 0
	for _, r := range rows {
		if r.Name == "" {
			continue
		}
		fmt.Fprintf(w, "%-20s%7d/%-4d%9d%8d%6d%12d%13d\n",
			r.Name, r.Feasible, r.Total, r.Schedules, r.Shared, r.Racy, r.NonCommute, r.Undelivered)
		if r.Racy > 0 || r.NonCommute > 0 {
			bad++
			fmt.Fprintf(w, "  first failure: %s\n", r.Detail)
		}
	}
	if err := renderCellErrors(w, errs); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("interleave: %d module(s) with interleaving hazards", bad)
	}
	fmt.Fprintln(w, "interleave: all handler placements commute, no unclassified races")
	return nil
}
