package experiments

import (
	"fmt"
	"io"

	"repro/internal/ci/ciruntime"
	"repro/internal/engine"
	"repro/internal/overload"
	"repro/internal/shenango"
)

// This file is the load-ramp / brownout experiment: shenango's
// CI-hosted IOKernel swept across offered-load multiples of its
// saturating capacity, with the overload-control plane off and on.
// The figure it produces is the paper's robustness counterpart to
// Fig. 4: without admission the 99.9th percentile diverges as soon as
// load exceeds capacity; with admission (deadline propagation + early
// rejection actuated from the CI probe handler) the tail stays flat
// and goodput holds near capacity, with the excess refused cheaply.

// RampSaturatingLoad is the offered load that saturates the CI-hosted
// IOKernel: one request costs two steered packets (ingress + egress),
// so capacity ≈ 2.6 GHz / (2 × 600 cycles) ≈ 2.17 M requests/s.
const RampSaturatingLoad = 2.6e9 / 1200.0

// RampMults is the standard sweep, in multiples of RampSaturatingLoad.
var RampMults = []float64{0.8, 1.0, 1.5, 2.0}

// RampDeadlineCycles is the propagated client deadline used by the
// ramp and soak experiments (~77 µs at 2.6 GHz).
const RampDeadlineCycles = 200_000

// RampOperationalFrac is the fraction of RampSaturatingLoad the
// CI-hosted IOKernel can actually serve: the raw steering bound ignores
// the fixed per-poll handler cost and the (cheap but non-zero) reject
// NACKs, which together eat ~12% of the budget. The SLO's "unavoidable
// excess" is measured against this operational capacity, not the raw
// bound — at exactly 1.0x offered load a correct controller already
// must refuse ~12%.
const RampOperationalFrac = 0.88

// RampExcess is the load fraction a perfect controller must refuse at
// the given offered-load multiple: max(0, 1 - operational/mult).
func RampExcess(mult float64) float64 {
	if mult <= 0 {
		return 0
	}
	e := 1 - RampOperationalFrac/mult
	if e < 0 {
		return 0
	}
	return e
}

// RampOverloadConfig is the tuned shenango admission configuration the
// ramp, soak and regression tests share. Deadline-based early
// rejection is the load-shedding mechanism: the token bucket stays
// disabled so the control loop is purely feedback-driven.
func RampOverloadConfig() *overload.Config {
	return &overload.Config{DeadlineCycles: RampDeadlineCycles}
}

// RampRow is one (load multiple, admission) cell of the sweep.
type RampRow struct {
	// Mult is the offered load in multiples of RampSaturatingLoad.
	Mult float64
	// Admission reports whether the overload plane was enabled.
	Admission bool
	// Res is the full shenango result, including the overload snapshot.
	Res shenango.Result
}

// GoodputFrac is the achieved load as a fraction of the saturating
// capacity.
func (r RampRow) GoodputFrac() float64 { return r.Res.AchievedLoad / RampSaturatingLoad }

// MeasureLoadRamp sweeps shenango (CIHosted) across mults × {admission
// off, on}. One run is one engine cell; rows come back ordered by
// (mult, admission-off-first). A non-nil quantum factory installs an
// adaptive handler-interval policy (AIMD / feedback PID) in every
// cell's CI runtime; nil keeps the paper's fixed interval.
func MeasureLoadRamp(eng *engine.Engine, seed uint64, durationCycles int64, mults []float64, quantum func() ciruntime.QuantumPolicy) ([]RampRow, []CellError) {
	if len(mults) == 0 {
		mults = RampMults
	}
	n := 2 * len(mults)
	cells, errs := engine.Map(eng.Pool, n, func(i int) (RampRow, error) {
		mult := mults[i/2]
		admit := i%2 == 1
		cfg := shenango.Config{
			Kind:           shenango.CIHosted,
			OfferedLoad:    mult * RampSaturatingLoad,
			Seed:           seed,
			DurationCycles: durationCycles,
			Quantum:        quantum,
		}
		if admit {
			cfg.Overload = RampOverloadConfig()
		}
		res, err := shenango.RunChecked(cfg)
		if err != nil {
			return RampRow{}, err
		}
		return RampRow{Mult: mult, Admission: admit, Res: res}, nil
	})
	cellErrs := cellErrors(errs, func(i int) string {
		return fmt.Sprintf("ramp/%.1fx/admit=%t", mults[i/2], i%2 == 1)
	})
	rows := make([]RampRow, 0, n)
	for i, row := range cells {
		if errs[i] == nil {
			rows = append(rows, row)
		}
	}
	return rows, cellErrs
}

// PrintRamp runs the sweep and renders the figure table, then checks
// the SLO against every admission-enabled row with RampExcess(mult) as
// the unavoidable refusal fraction. A zero SLO checks nothing;
// violations and failed cells return an error so `ciexp ramp` exits
// non-zero. A non-nil quantum factory (-quantum-policy aimd|feedback)
// runs the whole ramp under that adaptive handler-interval policy —
// the SLO guards must hold regardless of how the interval controller
// moves the probe quantum.
func PrintRamp(w io.Writer, eng *engine.Engine, seed uint64, durationCycles int64, slo overload.SLO, quantum func() ciruntime.QuantumPolicy) error {
	fmt.Fprintf(w, "Load ramp (seed %d): shenango+CI under offered load vs %.2f M req/s capacity\n",
		seed, RampSaturatingLoad/1e6)
	fmt.Fprintf(w, "%-6s %-6s %10s %9s %10s %8s %7s %7s %6s\n",
		"load", "admit", "goodput", "p50(µs)", "p99.9(µs)", "reject", "shed", "miner", "brown")
	rows, cellErrs := MeasureLoadRamp(eng, seed, durationCycles, nil, quantum)
	var violations []string
	for _, r := range rows {
		s := r.Res.Overload
		fmt.Fprintf(w, "%-6.1f %-6t %9.2f%% %9.1f %10.1f %7.1f%% %7d %6.0f%% %6d\n",
			r.Mult, r.Admission, 100*r.GoodputFrac(), r.Res.MedianUs, r.Res.P999Us,
			100*s.RejectFrac(), s.Shed, 100*r.Res.MinerHashRate, s.MaxBrownout)
		if r.Admission {
			if err := slo.Check(r.Res.P999Us, s.RejectFrac(), RampExcess(r.Mult)); err != nil {
				violations = append(violations, fmt.Sprintf("%.1fx: %v", r.Mult, err))
			}
		}
	}
	for _, v := range violations {
		fmt.Fprintf(w, "SLO violation at %s\n", v)
	}
	if err := renderCellErrors(w, cellErrs); err != nil {
		return err
	}
	if len(violations) > 0 {
		return fmt.Errorf("ramp: %d SLO violation(s)", len(violations))
	}
	return nil
}
