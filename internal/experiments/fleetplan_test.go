package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The `cidump -fleet` schedule dump is golden-tested: the plan is
// drawn from seeded injector streams, so its text is a pure function
// of (seed, replicas, zones, horizon, migrate) and any drift means
// either the stream layout or the rendering changed — both worth a
// deliberate -update.
func TestPrintFleetPlanGolden(t *testing.T) {
	var buf bytes.Buffer
	PrintFleetPlan(&buf, 1, 8, 4, 26_000_000, true)
	golden := filepath.Join("testdata", "fleet_plan.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("fleet plan drifted from golden file (rerun with -update if intended):\ngot:\n%s\nwant:\n%s",
			buf.Bytes(), want)
	}
}

// The zone and migration columns are structural, not incidental: every
// replica line carries its failure domain, the header reflects the
// migration mode, and the zone-outage schedule appears exactly when
// zones > 1.
func TestPrintFleetPlanZoneColumns(t *testing.T) {
	var zoned bytes.Buffer
	PrintFleetPlan(&zoned, 1, 8, 4, 26_000_000, true)
	out := zoned.String()
	if !strings.Contains(out, "migration on") {
		t.Errorf("migrate=true plan lacks the migration column:\n%s", out)
	}
	for _, want := range []string{"replica 0 (zone 0):", "replica 5 (zone 1):", "zone outage plan (4 zones"} {
		if !strings.Contains(out, want) {
			t.Errorf("zoned plan lacks %q:\n%s", want, out)
		}
	}

	var flat bytes.Buffer
	PrintFleetPlan(&flat, 1, 4, 1, 26_000_000, false)
	if s := flat.String(); strings.Contains(s, "zone outage plan") || !strings.Contains(s, "migration off") {
		t.Errorf("flat plan should omit the zone schedule and note migration off:\n%s", s)
	}
}
