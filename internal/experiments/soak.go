package experiments

import (
	"fmt"
	"io"

	"repro/internal/ci/ciruntime"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/mtcp"
	"repro/internal/overload"
	"repro/internal/shenango"
)

// This file is the soak experiment: a scripted load ramp — underload,
// saturation, 2x overload, recovery — with chaos fault plans composed
// into the overloaded phases, run with the admission plane on and
// judged against the SLO guard in every phase. It answers the question
// the one-shot ramp cannot: does the overload plane hold its bounds
// while conditions *change* (brownout must engage and release, the
// breaker must not latch, recovery phases must see the tail come back
// down), and does it stay deterministic with faults in the loop?

// SoakPhase is one scripted phase of the soak: an offered-load multiple
// of RampSaturatingLoad with a uniform fault rate composed in.
type SoakPhase struct {
	Mult      float64
	FaultRate float64
}

// SoakPhases is the standard script: ramp up into 2x overload under
// faults, then back down to verify recovery.
var SoakPhases = []SoakPhase{
	{Mult: 0.5, FaultRate: 0},
	{Mult: 1.0, FaultRate: 0.001},
	{Mult: 2.0, FaultRate: 0.01},
	{Mult: 1.2, FaultRate: 0.001},
	{Mult: 0.8, FaultRate: 0},
}

// soakQuickPhases is the -quick subset: saturation and overload only.
var soakQuickPhases = []SoakPhase{
	{Mult: 1.0, FaultRate: 0.001},
	{Mult: 2.0, FaultRate: 0.01},
}

// SoakRow is one phase's outcome. Violations lists every guard the
// phase broke (empty = pass); it is computed deterministically inside
// the cell so rows shard cleanly across workers.
type SoakRow struct {
	Phase int
	SoakPhase
	Res        shenango.Result
	Violations []string
}

// RunSoak executes the phases on the engine (one phase = one cell) with
// the admission plane on, checking per phase: the run's own invariants
// (shenango's conservation oracle plus the overload plane's accounting
// oracle via RunChecked), determinism under the composed fault plan,
// and the SLO with the phase's unavoidable excess. A non-nil quantum
// factory runs every phase under that adaptive handler-interval policy.
func RunSoak(eng *engine.Engine, seed uint64, phaseDuration int64, phases []SoakPhase, slo overload.SLO, quantum func() ciruntime.QuantumPolicy) ([]SoakRow, []CellError) {
	if len(phases) == 0 {
		phases = SoakPhases
	}
	cells, errs := engine.Map(eng.Pool, len(phases), func(i int) (SoakRow, error) {
		p := phases[i]
		cfg := shenango.Config{
			Kind:           shenango.CIHosted,
			OfferedLoad:    p.Mult * RampSaturatingLoad,
			Seed:           seed + uint64(i),
			DurationCycles: phaseDuration,
			Overload:       RampOverloadConfig(),
			Quantum:        quantum,
		}
		if p.FaultRate > 0 {
			cfg.FaultPlan = faults.Uniform(seed+uint64(i), p.FaultRate)
		}
		row := SoakRow{Phase: i, SoakPhase: p}
		res, err := shenango.RunChecked(cfg)
		if err != nil {
			return row, err
		}
		row.Res = res
		if res2, _ := shenango.RunChecked(cfg); res2 != res {
			row.Violations = append(row.Violations, "determinism: re-run differs")
		}
		if err := slo.Check(res.P999Us, res.Overload.RejectFrac(), RampExcess(p.Mult)); err != nil {
			row.Violations = append(row.Violations, err.Error())
		}
		if p.Mult >= 2 && res.Overload.MaxBrownout < 1 {
			row.Violations = append(row.Violations, "brownout never engaged at 2x load")
		}
		return row, nil
	})
	cellErrs := cellErrors(errs, func(i int) string {
		return fmt.Sprintf("soak/phase%d/%.1fx", i, phases[i].Mult)
	})
	rows := make([]SoakRow, 0, len(phases))
	for i, row := range cells {
		if errs[i] == nil {
			rows = append(rows, row)
		}
	}
	return rows, cellErrs
}

// soakMTCP is the companion mtcp cell: the CI server saturated by
// compute-heavy closed-loop clients under 1% loss with the plane on.
// It must shed via NACKs, conserve every request, and stay
// deterministic.
func soakMTCP(seed uint64, duration int64) []string {
	cfg := mtcp.Config{
		Mode: mtcp.CI, Conns: 64, WorkCycles: 100_000, Adaptive: true,
		Seed: seed, DurationCycles: duration,
		FaultPlan: faults.Uniform(seed, 0.01),
		Overload:  &overload.Config{DeadlineCycles: 2_000_000, TargetDelayCycles: 500_000},
	}
	var v []string
	r, err := mtcp.RunChecked(cfg)
	if err != nil {
		return append(v, fmt.Sprintf("progress: %v", err))
	}
	if r2, _ := mtcp.RunChecked(cfg); r2 != r {
		v = append(v, "determinism: re-run differs")
	}
	if r.Issued != r.CompletedAll+r.Aborted+r.Rejects+r.Outstanding {
		v = append(v, fmt.Sprintf("conservation: issued=%d completedAll=%d aborted=%d rejects=%d outstanding=%d",
			r.Issued, r.CompletedAll, r.Aborted, r.Rejects, r.Outstanding))
	}
	if r.Overload.Rejected == 0 || r.Rejects == 0 {
		v = append(v, "saturated mtcp never shed (no rejects/NACKs)")
	}
	return v
}

// PrintSoak runs the scripted soak and renders the per-phase table,
// then the mtcp companion verdict. Any violated guard in any phase
// returns an error, so `ciexp soak` exits non-zero.
func PrintSoak(w io.Writer, eng *engine.Engine, seed uint64, phaseDuration int64, slo overload.SLO, quick bool, quantum func() ciruntime.QuantumPolicy) error {
	phases := SoakPhases
	if quick {
		phases = soakQuickPhases
	}
	fmt.Fprintf(w, "Soak (seed %d, %d phases x %.1f ms): chaos + load ramp under the overload plane\n",
		seed, len(phases), float64(phaseDuration)/2.6e6)
	fmt.Fprintf(w, "%-6s %-6s %-7s %10s %10s %8s %6s  %s\n",
		"phase", "load", "faults", "goodput", "p99.9(µs)", "reject", "brown", "guards")
	rows, cellErrs := RunSoak(eng, seed, phaseDuration, phases, slo, quantum)
	bad := 0
	for _, r := range rows {
		s := r.Res.Overload
		verdict := "ok"
		if len(r.Violations) > 0 {
			verdict = fmt.Sprintf("VIOLATED: %v", r.Violations)
			bad += len(r.Violations)
		}
		fmt.Fprintf(w, "%-6d %-6.1f %-7.3g %9.2f%% %10.1f %7.1f%% %6d  %s\n",
			r.Phase, r.Mult, r.FaultRate, 100*r.Res.AchievedLoad/RampSaturatingLoad,
			r.Res.P999Us, 100*s.RejectFrac(), s.MaxBrownout, verdict)
	}
	mv := soakMTCP(seed, 2*phaseDuration)
	if len(mv) == 0 {
		fmt.Fprintln(w, "mtcp saturation companion: ok")
	} else {
		fmt.Fprintf(w, "mtcp saturation companion: VIOLATED: %v\n", mv)
		bad += len(mv)
	}
	if err := renderCellErrors(w, cellErrs); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("soak: %d guard violation(s)", bad)
	}
	fmt.Fprintln(w, "all phases within SLO; determinism, conservation and brownout guards hold")
	return nil
}
