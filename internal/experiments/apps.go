package experiments

import (
	"fmt"
	"io"

	"repro/internal/ffwd"
	"repro/internal/mtcp"
	"repro/internal/obs"
	"repro/internal/shenango"
)

// mtcpConns is the Figure 4/5 x axis: concurrent connections per
// server thread.
var mtcpConns = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

func printMTCP(w io.Writer, scope *obs.Scope, title string, work int64) error {
	fmt.Fprintln(w, title)
	for _, mode := range []mtcp.Mode{mtcp.Kernel, mtcp.Orig, mtcp.CI} {
		for _, r := range mtcp.SweepObs(mode, mtcpConns, work, scope) {
			fmt.Fprintln(w, r)
		}
	}
	return nil
}

// PrintFigure4 renders the mTCP throughput/latency comparison
// (epserver/epwget, 1 kB responses, no server-side compute). The scope
// (nil = disabled) collects the app models' scheduling-decision trace
// events and latency histograms.
func PrintFigure4(w io.Writer, scope *obs.Scope) error {
	return printMTCP(w, scope, "Figure 4: mTCP epserver/epwget, 10 Gbps, 16 threads", 0)
}

// PrintFigure5 renders the mTCP comparison with a 1M-cycle compute
// loop per request (an application-server-like workload).
func PrintFigure5(w io.Writer, scope *obs.Scope) error {
	return printMTCP(w, scope, "Figure 5: mTCP with 1M-cycle work per request", 1_000_000)
}

// PrintFigure6 renders the Shenango comparison: memcached latency vs
// offered load for the dedicated-core IOKernel and CI IOKernels at
// three intervals, plus the CPUMiner hash rate on the IOKernel core.
func PrintFigure6(w io.Writer, scope *obs.Scope) error {
	fmt.Fprintln(w, "Figure 6: Shenango memcached latency and CPUMiner hash rate")
	loads := []float64{50e3, 100e3, 200e3, 400e3, 600e3, 800e3}
	cfgs := []shenango.Config{
		{Kind: shenango.Dedicated},
		{Kind: shenango.CIHosted, IntervalCycles: 2000},
		{Kind: shenango.CIHosted, IntervalCycles: 8000},
		{Kind: shenango.CIHosted, IntervalCycles: 64000},
		{Kind: shenango.Pthreads},
		{Kind: shenango.PthreadsShared},
	}
	for _, cfg := range cfgs {
		for _, load := range loads {
			c := cfg
			c.OfferedLoad = load
			c.Obs = scope
			r := shenango.Run(c)
			fmt.Fprintln(w, r)
		}
	}
	return nil
}

// PrintFigure7 renders the fetch-and-add throughput scaling of
// delegation (dedicated and CI-designated) against lock designs.
func PrintFigure7(w io.Writer, scope *obs.Scope) error {
	fmt.Fprintln(w, "Figure 7: fetch-and-add throughput (Mops) vs threads")
	threads := []int{1, 2, 4, 8, 16, 24, 32, 40, 48, 56}
	fmt.Fprintf(w, "%-10s", "threads")
	for _, d := range ffwd.Designs {
		fmt.Fprintf(w, "%14s", d)
	}
	fmt.Fprintln(w)
	for _, t := range threads {
		fmt.Fprintf(w, "%-10d", t)
		for _, d := range ffwd.Designs {
			r := ffwd.Run(ffwd.Config{Design: d, Threads: t, Obs: scope})
			fmt.Fprintf(w, "%14.2f", r.ThroughputMops)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// PrintFigure8 renders the client request latency distribution at 56
// threads.
func PrintFigure8(w io.Writer, scope *obs.Scope) error {
	fmt.Fprintln(w, "Figure 8: client request latency distribution (cycles), 56 threads")
	for _, d := range []ffwd.Design{ffwd.DelegationDedicated, ffwd.DelegationCI, ffwd.MCS, ffwd.Spinlock} {
		r := ffwd.Run(ffwd.Config{Design: d, Threads: 56, RecordLatencies: true, Obs: scope})
		s := r.LatencySummary
		fmt.Fprintf(w, "%-22s p10=%-8d p50=%-8d p90=%-8d p99=%-9d p99.9=%-9d max=%d\n",
			d.String(), s.P10, s.P50, s.P90, s.P99, s.P999, s.Max)
	}
	return nil
}
