package experiments

import (
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/fleet"
)

// This file is the fleet crash-soak experiment: N CI-polled replicas
// behind the health-checked balancer, swept across offered-load
// factors with and without a mid-soak crash plan on replica 0. The
// headline row is the overloaded soak point (1.2x capacity) with one
// replica crashing repeatedly and tenant 0 misbehaving: the resilience
// guards assert that goodput degrades gracefully (>= 80% of the
// no-crash run), retry amplification stays inside the budget bound
// (<= 1.15x), well-behaved tenants keep their p99.9 SLO, and the
// conservation oracle balances exactly — byte-identical at any
// -workers count.

// FleetLoadFactors is the standard sweep, in multiples of the
// cluster's analytic capacity.
var FleetLoadFactors = []float64{0.6, 0.9, 1.2}

// FleetSoakLoad is the overloaded soak point whose crash/no-crash pair
// the resilience guards are checked against.
const FleetSoakLoad = 1.2

// Fleet resilience guards (the acceptance bar of the crash-soak
// headline).
const (
	// FleetGoodputFloor is the minimum crash-run goodput as a fraction
	// of the no-crash run at the same load.
	FleetGoodputFloor = 0.80
	// FleetAmpCeiling bounds retry amplification (attempts/injected);
	// the retry + hedge budgets guarantee it by construction.
	FleetAmpCeiling = 1.15
	// FleetZoneGoodputFloor is the zone-outage bar: with one of four
	// zones crash-looping and migration draining its queues, goodput
	// must stay within 90% of the no-outage run.
	FleetZoneGoodputFloor = 0.90
	// FleetZoneCount is the standard failure-domain count.
	FleetZoneCount = 4
)

// FleetCrashPlan is the standard mid-soak crash plan: exponentially
// spaced whole-replica crashes (mean gap ~2.3 ms) with a 1 ms cold
// restart, applied to replica 0 only.
func FleetCrashPlan(seed uint64) *faults.Plan {
	return &faults.Plan{
		Seed:               seed,
		CrashMeanGapCycles: 6_000_000,
		CrashDownCycles:    2_600_000,
	}
}

// FleetZonePlan is the standard correlated-outage plan: one zone
// (zone 0) crash-loops with exponentially spaced whole-zone outages
// (mean gap ~5 ms) and a 0.5 ms correlated restart — roughly a 20%
// outage duty cycle on a quarter of the cluster at the standard seed
// (the breaker's recovery lag stretches each window's effective
// downtime past the raw schedule).
func FleetZonePlan(seed uint64) *faults.Plan {
	return &faults.Plan{
		Seed:                   seed,
		ZoneCrashMeanGapCycles: 13_000_000,
		ZoneCrashDownCycles:    1_300_000,
	}
}

// FleetZoneConfig derives the zone-outage soak from a base config: the
// canonical cluster shape (two replicas per zone across four zones —
// the headline is a fixed experiment, so it does not inherit
// -replicas) at the overloaded soak point with migration on; the
// outage cell applies FleetZonePlan to zone 0 only.
func FleetZoneConfig(base fleet.Config, outage bool) fleet.Config {
	cfg := base
	cfg.Replicas = 2 * FleetZoneCount
	cfg.LoadFactor = FleetSoakLoad
	cfg.Zones = FleetZoneCount
	cfg.Migrate = true
	cfg.Faults = nil
	cfg.CrashReplicas = 0
	if outage {
		cfg.Faults = FleetZonePlan(base.Seed)
		cfg.OutageZones = 1
	}
	return cfg
}

// FleetRow is one (load factor, crash plan) cell of the sweep.
type FleetRow struct {
	// Load is the offered load in multiples of cluster capacity.
	Load float64
	// Crash reports whether the crash plan was applied to replica 0.
	Crash bool
	// Res is the full fleet accounting.
	Res *fleet.Result
}

// MeasureFleetRamp sweeps the fleet across loads × {no-crash, crash}.
// One run is one engine cell; every cell's conservation oracle is
// checked before the row is returned. Rows come back ordered by
// (load, no-crash-first).
func MeasureFleetRamp(eng *engine.Engine, base fleet.Config, loads []float64) ([]FleetRow, []CellError) {
	if len(loads) == 0 {
		loads = FleetLoadFactors
	}
	n := 2 * len(loads)
	cells, errs := engine.Map(eng.Pool, n, func(i int) (FleetRow, error) {
		cfg := base
		cfg.LoadFactor = loads[i/2]
		crash := i%2 == 1
		if crash {
			cfg.Faults = FleetCrashPlan(base.Seed)
			cfg.CrashReplicas = 1
		}
		res := fleet.Run(cfg, nil)
		if err := res.Conservation(); err != nil {
			return FleetRow{}, err
		}
		return FleetRow{Load: loads[i/2], Crash: crash, Res: res}, nil
	})
	cellErrs := cellErrors(errs, func(i int) string {
		return fmt.Sprintf("fleet/%.1fx/crash=%t", loads[i/2], i%2 == 1)
	})
	rows := make([]FleetRow, 0, n)
	for i, row := range cells {
		if errs[i] == nil {
			rows = append(rows, row)
		}
	}
	return rows, cellErrs
}

// MeasureFleetZone runs the zone-outage pair: the no-outage and
// zone-0-crash-looping soaks at the overloaded load point, both with
// 4 zones and migration on. Each cell's conservation oracle (which
// includes the migration identities) is checked before returning.
func MeasureFleetZone(eng *engine.Engine, base fleet.Config) (noOutage, outage *fleet.Result, cellErrs []CellError) {
	cells, errs := engine.Map(eng.Pool, 2, func(i int) (*fleet.Result, error) {
		res := fleet.Run(FleetZoneConfig(base, i == 1), nil)
		if err := res.Conservation(); err != nil {
			return nil, err
		}
		return res, nil
	})
	cellErrs = cellErrors(errs, func(i int) string {
		return fmt.Sprintf("fleet/zone/outage=%t", i == 1)
	})
	return cells[0], cells[1], cellErrs
}

// CheckFleetZone judges the zone-outage pair: the outage must have
// happened and been drained by migration with nothing stranded, and
// the cluster must ride through it — goodput within the zone floor of
// the no-outage run, amplification inside the budget bound.
func CheckFleetZone(noOutage, outage *fleet.Result) []string {
	var v []string
	if noOutage == nil || outage == nil {
		return []string{"zone pair incomplete (a cell failed)"}
	}
	if outage.ZoneCrashes == 0 {
		v = append(v, "zone plan injected no zone outages")
	}
	if outage.Migrated == 0 {
		v = append(v, "zone outages migrated no queued work")
	}
	var stranded int64
	for _, st := range outage.PerReplica {
		stranded += st.StrandedQueued
	}
	if stranded != 0 {
		v = append(v, fmt.Sprintf("migration stranded %d queued attempts", stranded))
	}
	if ratio := outage.GoodputRPS / noOutage.GoodputRPS; ratio < FleetZoneGoodputFloor {
		v = append(v, fmt.Sprintf("zone-outage goodput %.1f%% of no-outage run (floor %.0f%%)",
			100*ratio, 100*FleetZoneGoodputFloor))
	}
	if amp := outage.Amplification(); amp > FleetAmpCeiling+1e-9 {
		v = append(v, fmt.Sprintf("retry amplification %.3f exceeds %.2f under zone outage",
			amp, FleetAmpCeiling))
	}
	return v
}

// FleetScaleConfig is the `-scale`-keyed large-cluster soak: 64
// replicas in 4 zones at capacity load with migration on and zone 0
// crash-looping. Scale multiplies the 26M-cycle (10 ms) base horizon;
// the canonical scale 42 injects ~10.3M requests over ~420 ms of
// virtual time.
func FleetScaleConfig(seed uint64, scale int64) fleet.Config {
	return fleet.Config{
		Replicas:      64,
		Tenants:       8,
		Zones:         FleetZoneCount,
		Policy:        fleet.P2CDeadline,
		Seed:          seed,
		HorizonCycles: scale * 26_000_000,
		LoadFactor:    1.0,
		Migrate:       true,
		Faults:        FleetZonePlan(seed),
		OutageZones:   1,
	}
}

// FleetScaleTarget is the canonical -scale for the 10M-request soak.
const FleetScaleTarget = 42

// PrintFleetScale runs the scale soak twice — serially and on the
// engine's worker pool — and proves the two reports byte-identical,
// the conservation identities intact, and the injection volume at the
// advertised scale. The scale proof of the migration + zone layer.
func PrintFleetScale(w io.Writer, eng *engine.Engine, seed uint64, scale int64) error {
	cfg := FleetScaleConfig(seed, scale)
	fmt.Fprintf(w, "fleet scale soak (seed %d, scale %d): %d replicas / %d zones, %.0f ms horizon\n",
		seed, scale, cfg.Replicas, cfg.Zones, float64(cfg.HorizonCycles)/2.6e6)
	serial := fleet.Run(cfg, nil)
	if err := serial.Conservation(); err != nil {
		return fmt.Errorf("fleet scale: %w", err)
	}
	// The identity is about shard count, not physical cores: on a
	// single-core host the engine pool degenerates to one worker, so
	// force a multi-worker pool to keep the sharded replica phase
	// genuinely different from the serial discipline.
	pool := eng.Pool
	if pool == nil || pool.Workers() <= 1 {
		pool = engine.NewPool(4)
	}
	parallel := fleet.Run(cfg, pool)
	if serial.Fingerprint() != parallel.Fingerprint() {
		return fmt.Errorf("fleet scale: report diverges across worker counts: %x (workers) != %x (serial)",
			parallel.Fingerprint(), serial.Fingerprint())
	}
	fmt.Fprintf(w, "  injected %.2fM requests, goodput %.2fM rps, migrated %d (failed %d), zone outages %d\n",
		float64(serial.Injected)/1e6, serial.GoodputRPS/1e6,
		serial.Migrated, serial.MigrationFailed, serial.ZoneCrashes)
	fmt.Fprintf(w, "  byte-identical at -workers 1 vs %d: fingerprint %x\n", pool.Workers(), serial.Fingerprint())
	if serial.Injected < 10_000_000 && scale >= FleetScaleTarget {
		return fmt.Errorf("fleet scale: only %d requests injected at scale %d (want >= 10M)", serial.Injected, scale)
	}
	return nil
}

// CheckFleetSoak judges the crash/no-crash pair at the soak load
// against the resilience guards, returning one string per violation.
// deadlineUs is the per-request deadline (the well-behaved tenants'
// p99.9 SLO bound).
func CheckFleetSoak(noCrash, crash *fleet.Result, deadlineUs float64) []string {
	var v []string
	if noCrash == nil || crash == nil {
		return []string{"soak pair incomplete (a cell failed)"}
	}
	if crash.Crashes == 0 {
		v = append(v, "crash plan injected no crashes")
	}
	if crash.Ejections == 0 {
		v = append(v, "balancer never ejected the crashing replica")
	}
	if crash.Readmissions == 0 {
		v = append(v, "balancer never re-admitted the recovered replica")
	}
	if ratio := crash.GoodputRPS / noCrash.GoodputRPS; ratio < FleetGoodputFloor {
		v = append(v, fmt.Sprintf("crash goodput %.1f%% of no-crash run (floor %.0f%%)",
			100*ratio, 100*FleetGoodputFloor))
	}
	for _, r := range []*fleet.Result{noCrash, crash} {
		if amp := r.Amplification(); amp > FleetAmpCeiling+1e-9 {
			v = append(v, fmt.Sprintf("retry amplification %.3f exceeds %.2f (crash=%t)",
				amp, FleetAmpCeiling, r.Crashes > 0))
		}
	}
	for i, ts := range crash.PerTenant {
		if ts.Misbehaving {
			continue
		}
		if ts.P999Us > deadlineUs {
			v = append(v, fmt.Sprintf("well-behaved tenant %d p99.9 %.0fµs exceeds the %.0fµs deadline SLO",
				i, ts.P999Us, deadlineUs))
		}
	}
	return v
}

// fleetDeadlineUs resolves the per-request deadline of a config in µs.
func fleetDeadlineUs(base fleet.Config) float64 {
	d := base.DeadlineCycles
	if d <= 0 {
		d = fleet.DefaultDeadlineCycles
	}
	return float64(d) / fleet.CyclesPerUs
}

// PrintFleet runs the sweep and renders the figure table, then judges
// the soak-load crash/no-crash pair against the resilience guards and
// re-runs the crash soak on the engine's own worker pool to prove the
// report is byte-identical at -workers 1 vs N. It then runs the
// zone-outage pair (1-of-4 zones crash-looping with migration on)
// against the zone guards, and — when scale > 1 — the `-scale`-keyed
// 64-replica soak. Violations and failed cells return an error so
// `ciexp fleet` exits non-zero. With quick, only the soak load runs
// (the verify.sh smoke).
func PrintFleet(w io.Writer, eng *engine.Engine, base fleet.Config, quick bool, scale int64) error {
	loads := FleetLoadFactors
	if quick {
		loads = []float64{FleetSoakLoad}
	}
	fmt.Fprintf(w, "Fleet soak (seed %d): %d replicas (%s), %d tenants, capacity %.2f M req/s\n",
		base.Seed, base.Replicas, base.Policy, base.Tenants, fleet.CapacityRPS(base.Replicas)/1e6)
	fmt.Fprintf(w, "%-6s %-6s %9s %8s %9s %10s %8s %8s %6s %6s %7s\n",
		"load", "crash", "goodput", "p50(µs)", "p99.9(µs)", "max(µs)", "retries", "hedges", "amp", "eject", "failed")
	rows, cellErrs := MeasureFleetRamp(eng, base, loads)
	var noCrash, crash *fleet.Result
	for _, r := range rows {
		res := r.Res
		fmt.Fprintf(w, "%-6.1f %-6t %8.2fM %8.1f %9.1f %10.1f %8d %8d %6.3f %6d %7d\n",
			r.Load, r.Crash, res.GoodputRPS/1e6, res.P50Us, res.P999Us, res.MaxUs,
			res.Retries, res.Hedges, res.Amplification(), res.Ejections, res.AttemptFailed)
		if r.Load == FleetSoakLoad {
			if r.Crash {
				crash = res
			} else {
				noCrash = res
			}
		}
	}
	violations := CheckFleetSoak(noCrash, crash, fleetDeadlineUs(base))
	if crash != nil {
		// Worker-count byte identity: the sweep cells above ran under
		// the serial discipline; the same soak on the pool's workers
		// must produce the identical report.
		cfg := base
		cfg.LoadFactor = FleetSoakLoad
		cfg.Faults = FleetCrashPlan(base.Seed)
		cfg.CrashReplicas = 1
		if again := fleet.Run(cfg, eng.Pool); again.Fingerprint() != crash.Fingerprint() {
			violations = append(violations, fmt.Sprintf(
				"crash soak diverges across worker counts: fingerprint %x != serial %x",
				again.Fingerprint(), crash.Fingerprint()))
		}
	}
	// Zone-outage headline: 1-of-4 zones crash-looping at the soak
	// load with migration draining its queues.
	noOutage, outage, zoneErrs := MeasureFleetZone(eng, base)
	cellErrs = append(cellErrs, zoneErrs...)
	if noOutage != nil && outage != nil {
		fmt.Fprintf(w, "zone outage (%d zones, zone 0 crash-looping, migration on):\n", FleetZoneCount)
		for _, p := range []struct {
			name string
			res  *fleet.Result
		}{{"no-outage", noOutage}, {"outage", outage}} {
			fmt.Fprintf(w, "  %-10s goodput %.2fM rps, p99.9 %.1fµs, zone crashes %d, migrated %d (failed %d), amp %.3f\n",
				p.name, p.res.GoodputRPS/1e6, p.res.P999Us, p.res.ZoneCrashes,
				p.res.Migrated, p.res.MigrationFailed, p.res.Amplification())
		}
		fmt.Fprintf(w, "  goodput under outage: %.1f%% of no-outage (floor %.0f%%)\n",
			100*outage.GoodputRPS/noOutage.GoodputRPS, 100*FleetZoneGoodputFloor)
	}
	violations = append(violations, CheckFleetZone(noOutage, outage)...)

	for _, v := range violations {
		fmt.Fprintf(w, "resilience violation: %s\n", v)
	}
	if err := renderCellErrors(w, cellErrs); err != nil {
		return err
	}
	if len(violations) > 0 {
		return fmt.Errorf("fleet: %d resilience violation(s)", len(violations))
	}
	if scale > 1 {
		return PrintFleetScale(w, eng, base.Seed, scale)
	}
	return nil
}

// PrintFleetPlan renders the seeded fault schedule `ciexp fleet`'s
// crash cells will experience: per replica, every crash window
// (onset, recovery) inside the horizon, drawn exactly as the replicas
// draw them (next onset is spaced from recovery, not from the previous
// onset), each replica labeled with its failure-domain zone and
// whether a migration drain would save its queue. The crash cells
// apply the plan to replica 0 only; the other replicas' streams are
// shown for exploration with -replicas > 1 sweeps. With zones > 1 the
// zone-outage schedules (FleetZonePlan, zone 0 only — the `ciexp
// fleet` zone cell) are shown too. The debugging window into the
// fleet fault plan (cidump -fleet).
func PrintFleetPlan(w io.Writer, seed uint64, replicas, zones int, horizonCycles int64, migrate bool) {
	if zones <= 0 {
		zones = 1
	}
	plan := FleetCrashPlan(seed)
	fmt.Fprintf(w, "fleet crash plan (seed %d, horizon %.1f ms): mean gap %.1f ms, down %.1f ms, migration %s\n",
		seed, float64(horizonCycles)/2.6e6,
		float64(plan.CrashMeanGapCycles)/2.6e6, float64(plan.CrashDownCycles)/2.6e6,
		map[bool]string{true: "on (queued work drains at crash)", false: "off (queued work dies into retries)"}[migrate])
	for i := 0; i < replicas; i++ {
		inj := faults.New(plan, fmt.Sprintf("fleet/replica%d", i))
		fmt.Fprintf(w, "replica %d (zone %d):", i, i%zones)
		t, n := int64(0), 0
		for {
			gap, down, ok := inj.NextCrash()
			if !ok || t+gap >= horizonCycles {
				break
			}
			t += gap
			fmt.Fprintf(w, " [%.2f–%.2f ms]", float64(t)/2.6e6, float64(t+down)/2.6e6)
			t += down
			n++
		}
		if n == 0 {
			fmt.Fprintf(w, " (no crashes inside the horizon)")
		}
		fmt.Fprintln(w)
	}
	if zones <= 1 {
		return
	}
	zplan := FleetZonePlan(seed)
	fmt.Fprintf(w, "zone outage plan (%d zones, zone 0 only): mean gap %.1f ms, down %.1f ms\n",
		zones, float64(zplan.ZoneCrashMeanGapCycles)/2.6e6, float64(zplan.ZoneCrashDownCycles)/2.6e6)
	inj := faults.New(zplan, "fleet/zone0")
	fmt.Fprintf(w, "zone 0 (replicas")
	for i := 0; i < replicas; i++ {
		if i%zones == 0 {
			fmt.Fprintf(w, " %d", i)
		}
	}
	fmt.Fprintf(w, "):")
	t, n := int64(0), 0
	for {
		gap, down, ok := inj.NextZoneCrash()
		if !ok || t+gap >= horizonCycles {
			break
		}
		t += gap
		fmt.Fprintf(w, " [%.2f–%.2f ms]", float64(t)/2.6e6, float64(t+down)/2.6e6)
		t += down
		n++
	}
	if n == 0 {
		fmt.Fprintf(w, " (no zone outages inside the horizon)")
	}
	fmt.Fprintln(w)
}
