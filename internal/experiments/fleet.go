package experiments

import (
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/fleet"
)

// This file is the fleet crash-soak experiment: N CI-polled replicas
// behind the health-checked balancer, swept across offered-load
// factors with and without a mid-soak crash plan on replica 0. The
// headline row is the overloaded soak point (1.2x capacity) with one
// replica crashing repeatedly and tenant 0 misbehaving: the resilience
// guards assert that goodput degrades gracefully (>= 80% of the
// no-crash run), retry amplification stays inside the budget bound
// (<= 1.15x), well-behaved tenants keep their p99.9 SLO, and the
// conservation oracle balances exactly — byte-identical at any
// -workers count.

// FleetLoadFactors is the standard sweep, in multiples of the
// cluster's analytic capacity.
var FleetLoadFactors = []float64{0.6, 0.9, 1.2}

// FleetSoakLoad is the overloaded soak point whose crash/no-crash pair
// the resilience guards are checked against.
const FleetSoakLoad = 1.2

// Fleet resilience guards (the acceptance bar of the crash-soak
// headline).
const (
	// FleetGoodputFloor is the minimum crash-run goodput as a fraction
	// of the no-crash run at the same load.
	FleetGoodputFloor = 0.80
	// FleetAmpCeiling bounds retry amplification (attempts/injected);
	// the retry + hedge budgets guarantee it by construction.
	FleetAmpCeiling = 1.15
)

// FleetCrashPlan is the standard mid-soak crash plan: exponentially
// spaced whole-replica crashes (mean gap ~2.3 ms) with a 1 ms cold
// restart, applied to replica 0 only.
func FleetCrashPlan(seed uint64) *faults.Plan {
	return &faults.Plan{
		Seed:               seed,
		CrashMeanGapCycles: 6_000_000,
		CrashDownCycles:    2_600_000,
	}
}

// FleetRow is one (load factor, crash plan) cell of the sweep.
type FleetRow struct {
	// Load is the offered load in multiples of cluster capacity.
	Load float64
	// Crash reports whether the crash plan was applied to replica 0.
	Crash bool
	// Res is the full fleet accounting.
	Res *fleet.Result
}

// MeasureFleetRamp sweeps the fleet across loads × {no-crash, crash}.
// One run is one engine cell; every cell's conservation oracle is
// checked before the row is returned. Rows come back ordered by
// (load, no-crash-first).
func MeasureFleetRamp(eng *engine.Engine, base fleet.Config, loads []float64) ([]FleetRow, []CellError) {
	if len(loads) == 0 {
		loads = FleetLoadFactors
	}
	n := 2 * len(loads)
	cells, errs := engine.Map(eng.Pool, n, func(i int) (FleetRow, error) {
		cfg := base
		cfg.LoadFactor = loads[i/2]
		crash := i%2 == 1
		if crash {
			cfg.Faults = FleetCrashPlan(base.Seed)
			cfg.CrashReplicas = 1
		}
		res := fleet.Run(cfg, nil)
		if err := res.Conservation(); err != nil {
			return FleetRow{}, err
		}
		return FleetRow{Load: loads[i/2], Crash: crash, Res: res}, nil
	})
	cellErrs := cellErrors(errs, func(i int) string {
		return fmt.Sprintf("fleet/%.1fx/crash=%t", loads[i/2], i%2 == 1)
	})
	rows := make([]FleetRow, 0, n)
	for i, row := range cells {
		if errs[i] == nil {
			rows = append(rows, row)
		}
	}
	return rows, cellErrs
}

// CheckFleetSoak judges the crash/no-crash pair at the soak load
// against the resilience guards, returning one string per violation.
// deadlineUs is the per-request deadline (the well-behaved tenants'
// p99.9 SLO bound).
func CheckFleetSoak(noCrash, crash *fleet.Result, deadlineUs float64) []string {
	var v []string
	if noCrash == nil || crash == nil {
		return []string{"soak pair incomplete (a cell failed)"}
	}
	if crash.Crashes == 0 {
		v = append(v, "crash plan injected no crashes")
	}
	if crash.Ejections == 0 {
		v = append(v, "balancer never ejected the crashing replica")
	}
	if crash.Readmissions == 0 {
		v = append(v, "balancer never re-admitted the recovered replica")
	}
	if ratio := crash.GoodputRPS / noCrash.GoodputRPS; ratio < FleetGoodputFloor {
		v = append(v, fmt.Sprintf("crash goodput %.1f%% of no-crash run (floor %.0f%%)",
			100*ratio, 100*FleetGoodputFloor))
	}
	for _, r := range []*fleet.Result{noCrash, crash} {
		if amp := r.Amplification(); amp > FleetAmpCeiling+1e-9 {
			v = append(v, fmt.Sprintf("retry amplification %.3f exceeds %.2f (crash=%t)",
				amp, FleetAmpCeiling, r.Crashes > 0))
		}
	}
	for i, ts := range crash.PerTenant {
		if ts.Misbehaving {
			continue
		}
		if ts.P999Us > deadlineUs {
			v = append(v, fmt.Sprintf("well-behaved tenant %d p99.9 %.0fµs exceeds the %.0fµs deadline SLO",
				i, ts.P999Us, deadlineUs))
		}
	}
	return v
}

// fleetDeadlineUs resolves the per-request deadline of a config in µs.
func fleetDeadlineUs(base fleet.Config) float64 {
	d := base.DeadlineCycles
	if d <= 0 {
		d = fleet.DefaultDeadlineCycles
	}
	return float64(d) / fleet.CyclesPerUs
}

// PrintFleet runs the sweep and renders the figure table, then judges
// the soak-load crash/no-crash pair against the resilience guards and
// re-runs the crash soak on the engine's own worker pool to prove the
// report is byte-identical at -workers 1 vs N. Violations and failed
// cells return an error so `ciexp fleet` exits non-zero. With quick,
// only the soak load runs (the verify.sh smoke).
func PrintFleet(w io.Writer, eng *engine.Engine, base fleet.Config, quick bool) error {
	loads := FleetLoadFactors
	if quick {
		loads = []float64{FleetSoakLoad}
	}
	fmt.Fprintf(w, "Fleet soak (seed %d): %d replicas (%s), %d tenants, capacity %.2f M req/s\n",
		base.Seed, base.Replicas, base.Policy, base.Tenants, fleet.CapacityRPS(base.Replicas)/1e6)
	fmt.Fprintf(w, "%-6s %-6s %9s %8s %9s %10s %8s %8s %6s %6s %7s\n",
		"load", "crash", "goodput", "p50(µs)", "p99.9(µs)", "max(µs)", "retries", "hedges", "amp", "eject", "failed")
	rows, cellErrs := MeasureFleetRamp(eng, base, loads)
	var noCrash, crash *fleet.Result
	for _, r := range rows {
		res := r.Res
		fmt.Fprintf(w, "%-6.1f %-6t %8.2fM %8.1f %9.1f %10.1f %8d %8d %6.3f %6d %7d\n",
			r.Load, r.Crash, res.GoodputRPS/1e6, res.P50Us, res.P999Us, res.MaxUs,
			res.Retries, res.Hedges, res.Amplification(), res.Ejections, res.AttemptFailed)
		if r.Load == FleetSoakLoad {
			if r.Crash {
				crash = res
			} else {
				noCrash = res
			}
		}
	}
	violations := CheckFleetSoak(noCrash, crash, fleetDeadlineUs(base))
	if crash != nil {
		// Worker-count byte identity: the sweep cells above ran under
		// the serial discipline; the same soak on the pool's workers
		// must produce the identical report.
		cfg := base
		cfg.LoadFactor = FleetSoakLoad
		cfg.Faults = FleetCrashPlan(base.Seed)
		cfg.CrashReplicas = 1
		if again := fleet.Run(cfg, eng.Pool); again.Fingerprint() != crash.Fingerprint() {
			violations = append(violations, fmt.Sprintf(
				"crash soak diverges across worker counts: fingerprint %x != serial %x",
				again.Fingerprint(), crash.Fingerprint()))
		}
	}
	for _, v := range violations {
		fmt.Fprintf(w, "resilience violation: %s\n", v)
	}
	if err := renderCellErrors(w, cellErrs); err != nil {
		return err
	}
	if len(violations) > 0 {
		return fmt.Errorf("fleet: %d resilience violation(s)", len(violations))
	}
	return nil
}

// PrintFleetPlan renders the seeded fault schedule `ciexp fleet`'s
// crash cells will experience: per replica, every crash window
// (onset, recovery) inside the horizon, drawn exactly as the replicas
// draw them (next onset is spaced from recovery, not from the previous
// onset). The crash cells apply the plan to replica 0 only; the other
// replicas' streams are shown for exploration with -replicas > 1
// sweeps. The debugging window into the fleet fault plan (cidump
// -fleet).
func PrintFleetPlan(w io.Writer, seed uint64, replicas int, horizonCycles int64) {
	plan := FleetCrashPlan(seed)
	fmt.Fprintf(w, "fleet crash plan (seed %d, horizon %.1f ms): mean gap %.1f ms, down %.1f ms\n",
		seed, float64(horizonCycles)/2.6e6,
		float64(plan.CrashMeanGapCycles)/2.6e6, float64(plan.CrashDownCycles)/2.6e6)
	for i := 0; i < replicas; i++ {
		inj := faults.New(plan, fmt.Sprintf("fleet/replica%d", i))
		fmt.Fprintf(w, "replica %d:", i)
		t, n := int64(0), 0
		for {
			gap, down, ok := inj.NextCrash()
			if !ok || t+gap >= horizonCycles {
				break
			}
			t += gap
			fmt.Fprintf(w, " [%.2f–%.2f ms]", float64(t)/2.6e6, float64(t+down)/2.6e6)
			t += down
			n++
		}
		if n == 0 {
			fmt.Fprintf(w, " (no crashes inside the horizon)")
		}
		fmt.Fprintln(w)
	}
}
