package experiments

import (
	"fmt"
	"io"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// This file implements the hybrid CI/hardware-interrupt design the
// paper names as promising future work (§5.4: "a hybrid CI/hardware-
// interrupt solution may offer the best of both worlds, but we did not
// explore this in depth"): pure-IR compiler interrupts provide the
// cheap common case, while a hardware watchdog timer — re-armed by
// every CI delivery — fires only when compiler interrupts go quiet
// (system calls, uninstrumented library code), bounding the late tail.

// HybridRow compares CI-only and hybrid interval accuracy/overhead on
// one workload.
type HybridRow struct {
	Workload string
	// P99 late error (cycles above target) for CI alone and hybrid.
	CIP99, HybridP99 int64
	// Max late error.
	CIMax, HybridMax int64
	// Overhead vs the uninstrumented baseline.
	CIOverhead, HybridOverhead float64
	// WatchdogFires counts hardware deliveries in the hybrid run.
	WatchdogFires int64
}

// MeasureHybrid runs the comparison at the given target interval with
// the watchdog deadline at deadlineMult × target. One program is one
// engine cell; a failing program is reported without losing the rest.
func MeasureHybrid(eng *engine.Engine, names []string, target int64, deadlineMult float64, scale int) ([]HybridRow, []CellError) {
	cells, errs := engine.Map(eng.Pool, len(names), func(i int) (HybridRow, error) {
		return measureHybridOne(eng, names[i], target, deadlineMult, scale)
	})
	var rows []HybridRow
	for i, row := range cells {
		if errs[i] == nil {
			rows = append(rows, row)
		}
	}
	return rows, cellErrors(errs, func(i int) string { return "hybrid/" + names[i] })
}

// measureHybridOne runs one program's CI-only vs hybrid comparison.
func measureHybridOne(eng *engine.Engine, name string, target int64, deadlineMult float64, scale int) (HybridRow, error) {
	src, err := hybridProgram(name, scale)
	if err != nil {
		return HybridRow{}, err
	}
	baseMachine := newMachine(eng, src, nil, 1)
	baseMachine.LimitInstrs = runLimit
	baseThread := baseMachine.NewThread(0)
	if _, err := baseThread.Run("main", 0); err != nil {
		return HybridRow{}, err
	}
	base := Baseline{
		Workload:   name,
		Threads:    1,
		Cycles:     baseThread.Stats.Cycles,
		Instrs:     baseThread.Stats.Instrs,
		IRPerCycle: float64(baseThread.Stats.Instrs) / float64(baseThread.Stats.Cycles),
	}
	prog, err := core.Compile(src,
		core.WithDesign(instrument.CI), core.WithProbeInterval(ProbeIntervalIR))
	if err != nil {
		return HybridRow{}, err
	}
	row := HybridRow{Workload: name}

	runOne := func(hybrid bool) (stats.Summary, float64, int64, error) {
		// The watchdog is a plain timer interrupt into a user
		// handler (timer_create/SIGEV), far cheaper than the
		// PMU-overflow signal path of Figure 12: ~10k cycles
		// total, ~4k of it before the handler runs.
		model := vm.Default()
		model.HWInterruptCost = 10000
		model.HWTrapCost = 4000
		machine := newMachine(eng, prog.Mod, model, 1)
		machine.LimitInstrs = runLimit
		var gaps []int64
		var lastFire int64
		var th *vm.Thread
		deliver := func() {
			now := th.Now()
			gaps = append(gaps, now-lastFire)
			lastFire = now
			th.Charge(HandlerWorkCycles)
		}
		if hybrid {
			machine.HW = &vm.HWConfig{
				IntervalCycles: int64(deadlineMult * float64(target)),
				Handler: func(t *vm.Thread) {
					deliver()
					t.RearmHW()
				},
			}
		}
		th = machine.NewThread(0)
		th.RT.IRPerCycle = base.IRPerCycle
		th.RT.RegisterCI(target, func(uint64) {
			deliver()
			if hybrid {
				th.RearmHW()
			}
		})
		if _, err := th.Run("main", 0); err != nil {
			return stats.Summary{}, 0, 0, err
		}
		errs := make([]int64, 0, len(gaps))
		for _, g := range gaps {
			errs = append(errs, g-target)
		}
		if len(errs) == 0 {
			errs = []int64{0}
		}
		over := float64(th.Stats.Cycles)/float64(base.Cycles) - 1
		return stats.Summarize(errs), over, th.Stats.HWInterrupts, nil
	}

	ciSum, ciOver, _, err := runOne(false)
	if err != nil {
		return HybridRow{}, err
	}
	hySum, hyOver, hwFires, err := runOne(true)
	if err != nil {
		return HybridRow{}, err
	}
	row.CIP99, row.HybridP99 = ciSum.P99, hySum.P99
	row.CIMax, row.HybridMax = ciSum.Max, hySum.Max
	row.CIOverhead, row.HybridOverhead = ciOver, hyOver
	row.WatchdogFires = hwFires
	return row, nil
}

// hybridProgram resolves a Table-7 workload name or the synthetic
// "syscall-gaps" program whose long uninstrumented calls create the
// exact tails the watchdog exists for.
func hybridProgram(name string, scale int) (*ir.Module, error) {
	if name == "syscall-gaps" {
		return syscallGaps(scale), nil
	}
	wl := workloads.ByName(name)
	if wl == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	return wl.Build(scale), nil
}

// syscallGaps is a service-style loop that periodically enters a long
// uninstrumented library call (~60k cycles — a page-cache read, say):
// pure CIs go quiet for the whole call (and the 100-IR heuristic barely
// advances the counter), so interrupts 12x the target late are
// structural. The watchdog bounds them.
func syscallGaps(scale int) *ir.Module {
	m := ir.NewModule("syscall-gaps")
	m.MemWords = 4096
	m.DeclareExtern("page_read", 60000)
	f := m.NewFunc("main", 1)
	b := ir.NewBuilder(f)
	acc := b.Mov(0)
	b.ConstLoop(int64(300*scale), func(i ir.Reg) {
		// ~40k cycles of instrumented work...
		b.ConstLoop(4000, func(j ir.Reg) {
			v := b.Bin(ir.OpAdd, i, j)
			v2 := b.BinI(ir.OpXor, v, 12345)
			b.BinTo(acc, ir.OpAdd, acc, v2)
		})
		// ...then one long uninstrumented call.
		b.ExtCall("page_read", acc)
	})
	b.Ret(acc)
	f.Reindex()
	if err := m.Verify(); err != nil {
		panic(err)
	}
	return m
}

// hybridWorkloads are the gap-prone programs where the watchdog
// matters: external library calls and long uninstrumented stretches.
var hybridWorkloads = []string{
	"syscall-gaps", "blackscholes", "dedup", "word_count",
	"reverse_index", "barnes", "swaptions",
}

// PrintHybrid renders the future-work hybrid comparison.
func PrintHybrid(w io.Writer, eng *engine.Engine, scale int) error {
	rows, errs := MeasureHybrid(eng, hybridWorkloads, 5000, 2.0, scale)
	fmt.Fprintln(w, "Hybrid CI + hardware watchdog (paper §5.4 future work), 5000-cycle target")
	fmt.Fprintf(w, "%-18s%12s%12s%12s%12s%10s%10s%10s\n",
		"workload", "CI p99 err", "hyb p99", "CI max", "hyb max", "CI ovh", "hyb ovh", "hw fires")
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s%12d%12d%12d%12d%9.1f%%%9.1f%%%10d\n",
			r.Workload, r.CIP99, r.HybridP99, r.CIMax, r.HybridMax,
			r.CIOverhead*100, r.HybridOverhead*100, r.WatchdogFires)
	}
	return renderCellErrors(w, errs)
}
