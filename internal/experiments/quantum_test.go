package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
)

// quantumNames is the determinism subset: two workloads keep the sweep
// fast enough for every `go test` while still sharding across workers.
var quantumNames = []string{"radix", "histogram"}

// The adaptivity sweep must be deterministic at any worker count: every
// variant re-seeds the request-class stream, so the figure — rows,
// aggregates and rendered table — is byte-identical at -workers 1 vs N.
func TestQuantumWorkerDeterminism(t *testing.T) {
	var figs []*QuantumFigure
	for _, workers := range []int{1, 4} {
		fig, err := MeasureQuantum(engine.New(workers), 1, quantumNames)
		if err != nil {
			t.Fatal(err)
		}
		if len(fig.Errs) > 0 {
			t.Fatalf("workers=%d: quantum cells failed: %v", workers, fig.Errs)
		}
		figs = append(figs, fig)
	}
	if !reflect.DeepEqual(figs[0].Rows, figs[1].Rows) {
		t.Errorf("per-workload rows differ between workers=1 and workers=4:\n%v\nvs\n%v",
			figs[0].Rows, figs[1].Rows)
	}
	if !reflect.DeepEqual(figs[0].Agg, figs[1].Agg) {
		t.Errorf("aggregate rows differ between workers=1 and workers=4:\n%v\nvs\n%v",
			figs[0].Agg, figs[1].Agg)
	}
}

// Every variant of the figure must fire and produce steady-state gap
// samples — a variant with zero fires means its delivery mechanism
// never engaged and the comparison is vacuous.
func TestQuantumAllVariantsFire(t *testing.T) {
	fig, err := MeasureQuantum(engine.New(0), 1, quantumNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Errs) > 0 {
		t.Fatalf("quantum cells failed: %v", fig.Errs)
	}
	for _, r := range fig.Agg {
		if r.Fires == 0 {
			t.Errorf("%s/%s: zero handler fires", r.Design, r.Policy)
		}
		if r.MeanGap <= 0 {
			t.Errorf("%s/%s: mean gap %.0f, want positive", r.Design, r.Policy, r.MeanGap)
		}
	}
	// The fixed policy and the interrupt designs never classify
	// overruns; the adaptive CI policies must have seen some at 2x load,
	// or the backoff paths went untested.
	for _, r := range fig.Agg {
		switch {
		case r.Policy == "fixed" || r.Policy == "-":
			if r.Overruns != 0 {
				t.Errorf("%s/%s: %d overruns from a policy-free variant", r.Design, r.Policy, r.Overruns)
			}
		case r.Design == "CI" && r.Policy == "aimd":
			if r.Overruns == 0 {
				t.Errorf("CI/aimd saw no overruns at %.1fx load", QuantumLoadMult)
			}
		}
	}
}

// CheckQuantum's gates, exercised on fabricated aggregates so both the
// passing and each failing direction are pinned without a full sweep.
func TestCheckQuantumGates(t *testing.T) {
	mk := func(fixedP999, fbP999 int64, fixedOvh, aimdOvh, fbOvh float64) *QuantumFigure {
		return &QuantumFigure{
			Workloads: []string{"w"},
			Agg: []QuantumRow{
				{Design: "CI", Policy: "fixed", P999Err: fixedP999, Overhead: fixedOvh},
				{Design: "CI", Policy: "aimd", P999Err: fixedP999, Overhead: aimdOvh},
				{Design: "CI", Policy: "feedback", P999Err: fbP999, Overhead: fbOvh},
			},
		}
	}
	if bad := mk(25000, 23000, 0.03, 0.03, 0.04).CheckQuantum(); len(bad) != 0 {
		t.Errorf("healthy figure flagged: %v", bad)
	}
	if bad := mk(23000, 25000, 0.03, 0.03, 0.03).CheckQuantum(); len(bad) != 1 ||
		!strings.Contains(bad[0], "p99.9") {
		t.Errorf("regressed controller not flagged: %v", bad)
	}
	if bad := mk(25000, 23000, 0.03, 0.08, 0.03).CheckQuantum(); len(bad) != 1 ||
		!strings.Contains(bad[0], "aimd") {
		t.Errorf("over-budget aimd row not flagged: %v", bad)
	}
	if bad := (&QuantumFigure{}).CheckQuantum(); len(bad) != 1 {
		t.Errorf("empty sweep must report an ungateable figure: %v", bad)
	}
}

// PrintQuantum renders one row per variant and returns nil on a healthy
// sweep — the smoke contract verify.sh leans on.
func TestPrintQuantumQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick sweep in -short mode")
	}
	var buf bytes.Buffer
	if err := PrintQuantum(&buf, engine.New(0), 1, true); err != nil {
		t.Fatalf("quick quantum sweep failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, v := range QuantumVariants {
		if !strings.Contains(out, v.Design) {
			t.Errorf("rendered table lacks a %s row:\n%s", v.Design, out)
		}
	}
	if !strings.Contains(out, "feedback") || !strings.Contains(out, "UIntr") {
		t.Errorf("rendered table lacks the feedback or UIntr rows:\n%s", out)
	}
}
