// Package experiments regenerates every table and figure of the
// paper's evaluation (§5) on the VM substrate: the overhead and
// interval-accuracy microbenchmarks over the 28 workloads (Figures
// 9-12, Table 7) and, via the app simulators, the mTCP, Shenango and
// FFWD results (Figures 4-8).
//
// The sweeps run on the parallel experiment engine (internal/engine):
// each (workload × design × interval) cell is virtual-time independent,
// so cells are sharded across a bounded worker pool, instrumented
// modules and baseline runs are memoized across cells, and results
// merge in input order — output is byte-identical at any worker count,
// and a single-worker engine reproduces the legacy serial pipeline
// exactly.
package experiments

import (
	"fmt"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// HandlerWorkCycles models the paper's measurement handler ("collects
// statistics using RDTSCP and nothing else").
const HandlerWorkCycles = 25

// runLimit bounds every experiment run.
const runLimit = 400_000_000

// Baseline holds one workload's uninstrumented reference run.
type Baseline struct {
	Workload   string
	Threads    int
	Cycles     int64
	Instrs     int64
	IRPerCycle float64
}

// MeasureBaseline runs the workload uninstrumented on one
// representative thread of a T-thread machine (threads are
// virtual-time independent; the contention model carries the thread
// count) and returns the reference cycles and the profiled IR/cycle
// ratio used to tune the CI runtime (§4 footnote 3).
func MeasureBaseline(wl *workloads.Workload, scale, threads int) (Baseline, error) {
	return runBaseline(nil, wl.Build(scale), wl.Name, threads)
}

// runBaseline measures the uninstrumented module m (shared read-only
// when it comes from the engine cache).
func runBaseline(eng *engine.Engine, m *ir.Module, name string, threads int) (Baseline, error) {
	machine := newMachine(eng, m, nil, threads)
	machine.LimitInstrs = runLimit
	th := machine.NewThread(0)
	if _, err := th.Run("main", 0); err != nil {
		return Baseline{}, fmt.Errorf("%s baseline: %w", name, err)
	}
	return Baseline{
		Workload:   name,
		Threads:    threads,
		Cycles:     th.Stats.Cycles,
		Instrs:     th.Stats.Instrs,
		IRPerCycle: float64(th.Stats.Instrs) / float64(th.Stats.Cycles),
	}, nil
}

// OverheadRow is one (workload, design) overhead measurement.
type OverheadRow struct {
	Workload string
	Design   instrument.Design
	Threads  int
	// Norm is instrumented runtime normalized to the uninstrumented
	// baseline (Table 7's CI / N columns).
	Norm float64
	// Overhead is Norm-1 (Figure 9/11's y axis).
	Overhead float64
	Cycles   int64
	Probes   int64
	Taken    int64
	Handler  int64
	// Intervals holds the measured inter-interrupt gaps in cycles when
	// recording was requested.
	Intervals []int64
}

// MeasureOverhead instruments the workload with the design, tuned for
// the target cycle interval, and measures its runtime against the
// baseline. When record is set, a calibration pass first adjusts the
// design's ratio so its median interval lands near the target — the
// paper's §5.4 methodology ("we tune the interrupt interval for each
// method to approximate a target interval in cycles"). The compiled
// module is memoized in eng (nil runs uncached) and shared read-only
// across cells.
func MeasureOverhead(eng *engine.Engine, wl *workloads.Workload, d instrument.Design, base Baseline,
	scale, threads int, intervalCycles int64, record bool) (OverheadRow, error) {

	prog, err := CompileCached(eng, wl, scale,
		core.WithDesign(d), core.WithProbeInterval(ProbeIntervalIR))
	if err != nil {
		return OverheadRow{}, fmt.Errorf("%s/%v: %w", wl.Name, d, err)
	}
	irPerCycle := base.IRPerCycle
	eventScale := 1.0
	if record {
		cal := func() (int64, error) {
			machine := newMachine(eng, prog.Mod, nil, threads)
			machine.LimitInstrs = runLimit
			th := machine.NewThread(0)
			th.RT.IRPerCycle = irPerCycle
			th.RT.RecordIntervals = true
			th.RT.EventsPerInterval = func(ic int64) int64 {
				n := int64(float64(ic) * irPerCycle / 20 * eventScale)
				if n < 1 {
					n = 1
				}
				return n
			}
			id := th.RT.RegisterCI(intervalCycles, func(uint64) { th.Charge(HandlerWorkCycles) })
			if _, err := th.Run("main", 0); err != nil {
				return 0, err
			}
			ivs := th.RT.Intervals(id)
			if len(ivs) == 0 {
				return intervalCycles, nil
			}
			return stats.Median(ivs), nil
		}
		for pass := 0; pass < 2; pass++ {
			med, err := cal()
			if err != nil {
				return OverheadRow{}, fmt.Errorf("%s/%v calibration: %w", wl.Name, d, err)
			}
			if med <= 0 {
				break
			}
			s := float64(med) / float64(intervalCycles)
			if s > 0.95 && s < 1.05 {
				break
			}
			switch d {
			case instrument.CnB, instrument.CnBCycles:
				eventScale /= s
			default:
				irPerCycle /= s
			}
		}
	}
	machine := newMachine(eng, prog.Mod, nil, threads)
	machine.LimitInstrs = runLimit
	// The measured run (not the calibration passes) feeds the
	// observability scope: probe-site profile, handler spans.
	if eng != nil {
		machine.Obs = eng.Obs
	}
	th := machine.NewThread(0)
	th.RT.IRPerCycle = irPerCycle
	th.RT.RecordIntervals = record
	th.RT.EventsPerInterval = func(ic int64) int64 {
		n := int64(float64(ic) * irPerCycle / 20 * eventScale)
		if n < 1 {
			n = 1
		}
		return n
	}
	id := th.RT.RegisterCI(intervalCycles, func(uint64) { th.Charge(HandlerWorkCycles) })
	if _, err := th.Run("main", 0); err != nil {
		return OverheadRow{}, fmt.Errorf("%s/%v: %w", wl.Name, d, err)
	}
	row := OverheadRow{
		Workload: wl.Name,
		Design:   d,
		Threads:  threads,
		Norm:     float64(th.Stats.Cycles) / float64(base.Cycles),
		Cycles:   th.Stats.Cycles,
		Probes:   th.Stats.Probes,
		Taken:    th.Stats.ProbesTaken,
		Handler:  th.Stats.HandlerCalls,
	}
	row.Overhead = row.Norm - 1
	if record {
		row.Intervals = th.RT.Intervals(id)
	}
	return row, nil
}

// ProbeIntervalIR is the compile-time probe interval used across the
// evaluation.
const ProbeIntervalIR = 250

// FigureOverhead computes Figure 9 (threads=1) or Figure 11
// (threads=32): per-workload overhead for each design at a 5,000-cycle
// target interval.
type FigureOverhead struct {
	Threads        int
	IntervalCycles int64
	Designs        []instrument.Design
	// Rows[workload][design index]
	Rows map[string][]OverheadRow
	// Medians[design index] is the median overhead across workloads.
	Medians []float64
	// Errs collects failed workload cells; their rows are absent and
	// excluded from the medians.
	Errs []CellError
}

// MeasureFigureOverhead runs the Figure 9/11 sweep over all workloads.
func MeasureFigureOverhead(eng *engine.Engine, threads, scale int, designs []instrument.Design) *FigureOverhead {
	return MeasureFigureOverheadSel(eng, threads, scale, designs, AllWorkloads())
}

// MeasureFigureOverheadSel runs the Figure 9/11 sweep over a workload
// selection. Each workload is one engine cell: its baseline plus one
// measured run per design, skipped wholesale on a store hit.
func MeasureFigureOverheadSel(eng *engine.Engine, threads, scale int, designs []instrument.Design,
	sel []*workloads.Workload) *FigureOverhead {

	fig := &FigureOverhead{
		Threads:        threads,
		IntervalCycles: 5000,
		Designs:        designs,
		Rows:           make(map[string][]OverheadRow),
	}
	cells, errs := engine.Map(eng.Pool, len(sel), func(i int) ([]OverheadRow, error) {
		wl := sel[i]
		key := fmt.Sprintf("overhead/t%d/%s", threads, wl.Name)
		hash := engine.Hash("overhead", engine.ModuleFingerprint(SourceModule(eng, wl, scale)),
			scale, threads, designs, fig.IntervalCycles, ProbeIntervalIR, HandlerWorkCycles, runLimit)
		rows, _, err := engine.CellDo(eng, key, hash, func() ([]OverheadRow, error) {
			base, err := BaselineCached(eng, wl, scale, threads)
			if err != nil {
				return nil, err
			}
			rows := make([]OverheadRow, 0, len(designs))
			for _, d := range designs {
				row, err := MeasureOverhead(eng, wl, d, base, scale, threads, fig.IntervalCycles, false)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
			return rows, nil
		})
		return rows, err
	})
	perDesign := make([][]float64, len(designs))
	for i, rows := range cells {
		if errs[i] != nil {
			continue
		}
		fig.Rows[sel[i].Name] = rows
		for di, row := range rows {
			perDesign[di] = append(perDesign[di], row.Overhead)
		}
	}
	fig.Errs = cellErrors(errs, func(i int) string { return "overhead/" + sel[i].Name })
	fig.Medians = make([]float64, len(designs))
	for di := range designs {
		fig.Medians[di] = stats.MedianF(perDesign[di])
	}
	return fig
}

// AccuracyRow is one workload's interval-error distribution (Figure 10).
type AccuracyRow struct {
	Workload string
	Design   instrument.Design
	// Errors summarizes (gap - target) in cycles.
	Errors stats.Summary
	// MedianError is the signed median error.
	MedianError int64
}

// MeasureFigureAccuracy computes Figure 10: interval error percentiles
// per workload at a 5,000-cycle target, single thread. One workload
// (all designs) is one engine cell; failed cells are reported, not
// fatal.
func MeasureFigureAccuracy(eng *engine.Engine, scale int, designs []instrument.Design) ([]AccuracyRow, []CellError) {
	const target = 5000
	sel := AllWorkloads()
	cells, errs := engine.Map(eng.Pool, len(sel), func(i int) ([]AccuracyRow, error) {
		wl := sel[i]
		key := "accuracy/" + wl.Name
		hash := engine.Hash("accuracy", engine.ModuleFingerprint(SourceModule(eng, wl, scale)),
			scale, designs, int64(target), ProbeIntervalIR, HandlerWorkCycles, runLimit)
		return cellDoAccuracy(eng, key, hash, wl, scale, designs, target)
	})
	var out []AccuracyRow
	for i, rows := range cells {
		if errs[i] == nil {
			out = append(out, rows...)
		}
	}
	return out, cellErrors(errs, func(i int) string { return "accuracy/" + sel[i].Name })
}

func cellDoAccuracy(eng *engine.Engine, key, hash string, wl *workloads.Workload,
	scale int, designs []instrument.Design, target int64) ([]AccuracyRow, error) {

	rows, _, err := engine.CellDo(eng, key, hash, func() ([]AccuracyRow, error) {
		base, err := BaselineCached(eng, wl, scale, 1)
		if err != nil {
			return nil, err
		}
		var out []AccuracyRow
		for _, d := range designs {
			row, err := MeasureOverhead(eng, wl, d, base, scale, 1, target, true)
			if err != nil {
				return nil, err
			}
			errsCy := make([]int64, 0, len(row.Intervals))
			for _, gap := range row.Intervals {
				errsCy = append(errsCy, gap-target)
			}
			if len(errsCy) == 0 {
				errsCy = []int64{0}
			}
			var scope *obs.Scope
			if eng != nil {
				scope = eng.Obs
			}
			if scope.Enabled() {
				// Feed the per-design interval-error histograms behind
				// ciexp -metrics (absolute error, paper-CDF style, plus
				// the signed distribution). Store-skipped cells don't
				// reach here — re-run without -store for full metrics.
				name := "interval_error/" + d.String()
				for _, e := range errsCy {
					scope.Observe(name, e)
					if e < 0 {
						e = -e
					}
					scope.Observe("interval_abs_error/"+d.String(), e)
				}
			}
			sum := stats.Summarize(errsCy)
			out = append(out, AccuracyRow{
				Workload:    wl.Name,
				Design:      d,
				Errors:      sum,
				MedianError: sum.P50,
			})
		}
		return out, nil
	})
	return rows, err
}

// SweepPoint is one (interval, kind) aggregate of Figure 12.
type SweepPoint struct {
	IntervalCycles int64
	// CISlowdown / HWSlowdown are the median slowdown factors across
	// workloads for compiler interrupts and hardware interrupts.
	CISlowdown float64
	HWSlowdown float64
	// CIAll / HWAll hold the per-workload factors (the overlaid points
	// in the paper's plot).
	CIAll, HWAll []float64
}

// fig12Cell is one workload's slowdown vectors across the interval
// sweep (the store unit of Figure 12).
type fig12Cell struct {
	CI, HW []float64
}

// MeasureFigure12 sweeps the interrupt interval and compares CI against
// hardware (performance-counter) interrupts across all workloads. One
// workload (all intervals) is one engine cell. The error return is
// reserved for configuration mistakes (unknown workload names);
// per-cell run failures land in the CellError list.
func MeasureFigure12(eng *engine.Engine, scale int, intervals []int64, names []string) ([]SweepPoint, []CellError, error) {
	if len(intervals) == 0 {
		intervals = []int64{500, 1000, 2000, 5000, 10000, 20000, 50000, 100000, 500000}
	}
	sel := AllWorkloads()
	if len(names) > 0 {
		var err error
		sel, err = WorkloadsByName(names)
		if err != nil {
			return nil, nil, err
		}
	}
	cells, errs := engine.Map(eng.Pool, len(sel), func(i int) (fig12Cell, error) {
		wl := sel[i]
		key := "fig12/" + wl.Name
		hash := engine.Hash("fig12", engine.ModuleFingerprint(SourceModule(eng, wl, scale)),
			scale, intervals, ProbeIntervalIR, HandlerWorkCycles, runLimit)
		cell, _, err := engine.CellDo(eng, key, hash, func() (fig12Cell, error) {
			return measureFig12Workload(eng, wl, scale, intervals)
		})
		return cell, err
	})
	out := make([]SweepPoint, len(intervals))
	for ii, interval := range intervals {
		pt := SweepPoint{IntervalCycles: interval}
		for i, cell := range cells {
			if errs[i] != nil {
				continue
			}
			pt.CIAll = append(pt.CIAll, cell.CI[ii])
			pt.HWAll = append(pt.HWAll, cell.HW[ii])
		}
		pt.CISlowdown = stats.MedianF(pt.CIAll)
		pt.HWSlowdown = stats.MedianF(pt.HWAll)
		out[ii] = pt
	}
	return out, cellErrors(errs, func(i int) string { return "fig12/" + sel[i].Name }), nil
}

// measureFig12Workload runs one workload's CI and hardware-interrupt
// slowdowns across every interval, reusing the memoized baseline,
// CI-instrumented module and uninstrumented source module.
func measureFig12Workload(eng *engine.Engine, wl *workloads.Workload, scale int, intervals []int64) (fig12Cell, error) {
	base, err := BaselineCached(eng, wl, scale, 1)
	if err != nil {
		return fig12Cell{}, err
	}
	prog, err := CompileCached(eng, wl, scale,
		core.WithDesign(instrument.CI), core.WithProbeInterval(ProbeIntervalIR))
	if err != nil {
		return fig12Cell{}, err
	}
	hwMod := SourceModule(eng, wl, scale)
	cell := fig12Cell{
		CI: make([]float64, 0, len(intervals)),
		HW: make([]float64, 0, len(intervals)),
	}
	for _, interval := range intervals {
		// CI run.
		machine := newMachine(eng, prog.Mod, nil, 1)
		machine.LimitInstrs = runLimit
		th := machine.NewThread(0)
		th.RT.IRPerCycle = base.IRPerCycle
		th.RT.RegisterCI(interval, func(uint64) { th.Charge(HandlerWorkCycles) })
		if _, err := th.Run("main", 0); err != nil {
			return fig12Cell{}, fmt.Errorf("%s CI@%d: %w", wl.Name, interval, err)
		}
		cell.CI = append(cell.CI, float64(th.Stats.Cycles)/float64(base.Cycles))

		// Hardware-interrupt run on the uninstrumented program.
		hwMachine := newMachine(eng, hwMod, nil, 1)
		hwMachine.LimitInstrs = runLimit
		hwMachine.HW = &vm.HWConfig{
			IntervalCycles: interval,
			Handler:        func(t *vm.Thread) { t.Charge(HandlerWorkCycles) },
		}
		hth := hwMachine.NewThread(0)
		if _, err := hth.Run("main", 0); err != nil {
			return fig12Cell{}, fmt.Errorf("%s HW@%d: %w", wl.Name, interval, err)
		}
		cell.HW = append(cell.HW, float64(hth.Stats.Cycles)/float64(base.Cycles))
	}
	return cell, nil
}

// Table7Row mirrors one row of Table 7.
type Table7Row struct {
	Workload string
	// PTms1/PTms32 are the uninstrumented ("pthreads") runtimes in
	// virtual milliseconds at a 2.6 GHz model clock.
	PTms1, PTms32 float64
	// CI1, N1, CI32, N32 are normalized runtimes.
	CI1, N1, CI32, N32 float64
}

// ModelGHz converts virtual cycles to milliseconds for Table 7's
// absolute column.
const ModelGHz = 2.6

// MeasureTable7 reproduces Table 7: per-workload absolute baseline
// runtime plus normalized CI and Naive runtimes for 1 and 32 threads,
// with the geo-mean row. One workload is one engine cell; failed cells
// drop out of the table and the geo-mean.
func MeasureTable7(eng *engine.Engine, scale int) ([]Table7Row, Table7Row, []CellError) {
	sel := AllWorkloads()
	cells, errs := engine.Map(eng.Pool, len(sel), func(i int) (Table7Row, error) {
		wl := sel[i]
		key := "table7/" + wl.Name
		hash := engine.Hash("table7", engine.ModuleFingerprint(SourceModule(eng, wl, scale)),
			scale, ProbeIntervalIR, HandlerWorkCycles, runLimit)
		row, _, err := engine.CellDo(eng, key, hash, func() (Table7Row, error) {
			return measureTable7Workload(eng, wl, scale)
		})
		return row, err
	})
	var rows []Table7Row
	var ci1s, n1s, ci32s, n32s []float64
	for i, row := range cells {
		if errs[i] != nil {
			continue
		}
		rows = append(rows, row)
		ci1s = append(ci1s, row.CI1)
		n1s = append(n1s, row.N1)
		ci32s = append(ci32s, row.CI32)
		n32s = append(n32s, row.N32)
	}
	g := Table7Row{
		Workload: "geo-mean",
		CI1:      stats.GeoMean(ci1s),
		N1:       stats.GeoMean(n1s),
		CI32:     stats.GeoMean(ci32s),
		N32:      stats.GeoMean(n32s),
	}
	return rows, g, cellErrors(errs, func(i int) string { return "table7/" + sel[i].Name })
}

func measureTable7Workload(eng *engine.Engine, wl *workloads.Workload, scale int) (Table7Row, error) {
	row := Table7Row{Workload: wl.Name}
	for _, threads := range []int{1, 32} {
		base, err := BaselineCached(eng, wl, scale, threads)
		if err != nil {
			return row, err
		}
		ci, err := MeasureOverhead(eng, wl, instrument.CI, base, scale, threads, 5000, false)
		if err != nil {
			return row, err
		}
		nv, err := MeasureOverhead(eng, wl, instrument.Naive, base, scale, threads, 5000, false)
		if err != nil {
			return row, err
		}
		ms := float64(base.Cycles) / (ModelGHz * 1e6)
		if threads == 1 {
			row.PTms1, row.CI1, row.N1 = ms, ci.Norm, nv.Norm
		} else {
			row.PTms32, row.CI32, row.N32 = ms, ci.Norm, nv.Norm
		}
	}
	return row, nil
}
