// Package experiments regenerates every table and figure of the
// paper's evaluation (§5) on the VM substrate: the overhead and
// interval-accuracy microbenchmarks over the 28 workloads (Figures
// 9-12, Table 7) and, via the app simulators, the mTCP, Shenango and
// FFWD results (Figures 4-8).
package experiments

import (
	"fmt"

	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// HandlerWorkCycles models the paper's measurement handler ("collects
// statistics using RDTSCP and nothing else").
const HandlerWorkCycles = 25

// runLimit bounds every experiment run.
const runLimit = 400_000_000

// Baseline holds one workload's uninstrumented reference run.
type Baseline struct {
	Workload   string
	Threads    int
	Cycles     int64
	Instrs     int64
	IRPerCycle float64
}

// MeasureBaseline runs the workload uninstrumented on one
// representative thread of a T-thread machine (threads are
// virtual-time independent; the contention model carries the thread
// count) and returns the reference cycles and the profiled IR/cycle
// ratio used to tune the CI runtime (§4 footnote 3).
func MeasureBaseline(wl *workloads.Workload, scale, threads int) (Baseline, error) {
	m := wl.Build(scale)
	machine := vm.New(m, nil, threads)
	machine.LimitInstrs = runLimit
	th := machine.NewThread(0)
	if _, err := th.Run("main", 0); err != nil {
		return Baseline{}, fmt.Errorf("%s baseline: %w", wl.Name, err)
	}
	return Baseline{
		Workload:   wl.Name,
		Threads:    threads,
		Cycles:     th.Stats.Cycles,
		Instrs:     th.Stats.Instrs,
		IRPerCycle: float64(th.Stats.Instrs) / float64(th.Stats.Cycles),
	}, nil
}

// OverheadRow is one (workload, design) overhead measurement.
type OverheadRow struct {
	Workload string
	Design   instrument.Design
	Threads  int
	// Norm is instrumented runtime normalized to the uninstrumented
	// baseline (Table 7's CI / N columns).
	Norm float64
	// Overhead is Norm-1 (Figure 9/11's y axis).
	Overhead float64
	Cycles   int64
	Probes   int64
	Taken    int64
	Handler  int64
	// Intervals holds the measured inter-interrupt gaps in cycles when
	// recording was requested.
	Intervals []int64
}

// MeasureOverhead instruments the workload with the design, tuned for
// the target cycle interval, and measures its runtime against the
// baseline. When record is set, a calibration pass first adjusts the
// design's ratio so its median interval lands near the target — the
// paper's §5.4 methodology ("we tune the interrupt interval for each
// method to approximate a target interval in cycles").
func MeasureOverhead(wl *workloads.Workload, d instrument.Design, base Baseline,
	scale, threads int, intervalCycles int64, record bool) (OverheadRow, error) {

	m := wl.Build(scale)
	prog, err := core.Compile(m, core.Config{Design: d, ProbeIntervalIR: ProbeIntervalIR})
	if err != nil {
		return OverheadRow{}, fmt.Errorf("%s/%v: %w", wl.Name, d, err)
	}
	irPerCycle := base.IRPerCycle
	eventScale := 1.0
	if record {
		cal := func() (int64, error) {
			machine := vm.New(prog.Mod, nil, threads)
			machine.LimitInstrs = runLimit
			th := machine.NewThread(0)
			th.RT.IRPerCycle = irPerCycle
			th.RT.RecordIntervals = true
			th.RT.EventsPerInterval = func(ic int64) int64 {
				n := int64(float64(ic) * irPerCycle / 20 * eventScale)
				if n < 1 {
					n = 1
				}
				return n
			}
			id := th.RT.RegisterCI(intervalCycles, func(uint64) { th.Charge(HandlerWorkCycles) })
			if _, err := th.Run("main", 0); err != nil {
				return 0, err
			}
			ivs := th.RT.Intervals(id)
			if len(ivs) == 0 {
				return intervalCycles, nil
			}
			return stats.Median(ivs), nil
		}
		for pass := 0; pass < 2; pass++ {
			med, err := cal()
			if err != nil {
				return OverheadRow{}, fmt.Errorf("%s/%v calibration: %w", wl.Name, d, err)
			}
			if med <= 0 {
				break
			}
			s := float64(med) / float64(intervalCycles)
			if s > 0.95 && s < 1.05 {
				break
			}
			switch d {
			case instrument.CnB, instrument.CnBCycles:
				eventScale /= s
			default:
				irPerCycle /= s
			}
		}
	}
	machine := vm.New(prog.Mod, nil, threads)
	machine.LimitInstrs = runLimit
	th := machine.NewThread(0)
	th.RT.IRPerCycle = irPerCycle
	th.RT.RecordIntervals = record
	th.RT.EventsPerInterval = func(ic int64) int64 {
		n := int64(float64(ic) * irPerCycle / 20 * eventScale)
		if n < 1 {
			n = 1
		}
		return n
	}
	id := th.RT.RegisterCI(intervalCycles, func(uint64) { th.Charge(HandlerWorkCycles) })
	if _, err := th.Run("main", 0); err != nil {
		return OverheadRow{}, fmt.Errorf("%s/%v: %w", wl.Name, d, err)
	}
	row := OverheadRow{
		Workload: wl.Name,
		Design:   d,
		Threads:  threads,
		Norm:     float64(th.Stats.Cycles) / float64(base.Cycles),
		Cycles:   th.Stats.Cycles,
		Probes:   th.Stats.Probes,
		Taken:    th.Stats.ProbesTaken,
		Handler:  th.Stats.HandlerCalls,
	}
	row.Overhead = row.Norm - 1
	if record {
		row.Intervals = th.RT.Intervals(id)
	}
	return row, nil
}

// ProbeIntervalIR is the compile-time probe interval used across the
// evaluation.
const ProbeIntervalIR = 250

// FigureOverhead computes Figure 9 (threads=1) or Figure 11
// (threads=32): per-workload overhead for each design at a 5,000-cycle
// target interval.
type FigureOverhead struct {
	Threads        int
	IntervalCycles int64
	Designs        []instrument.Design
	// Rows[workload][design index]
	Rows map[string][]OverheadRow
	// Medians[design index] is the median overhead across workloads.
	Medians []float64
}

// MeasureFigureOverhead runs the Figure 9/11 sweep.
func MeasureFigureOverhead(threads, scale int, designs []instrument.Design) (*FigureOverhead, error) {
	fig := &FigureOverhead{
		Threads:        threads,
		IntervalCycles: 5000,
		Designs:        designs,
		Rows:           make(map[string][]OverheadRow),
	}
	perDesign := make([][]float64, len(designs))
	for i := range workloads.All {
		wl := &workloads.All[i]
		base, err := MeasureBaseline(wl, scale, threads)
		if err != nil {
			return nil, err
		}
		rows := make([]OverheadRow, 0, len(designs))
		for di, d := range designs {
			row, err := MeasureOverhead(wl, d, base, scale, threads, fig.IntervalCycles, false)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			perDesign[di] = append(perDesign[di], row.Overhead)
		}
		fig.Rows[wl.Name] = rows
	}
	fig.Medians = make([]float64, len(designs))
	for di := range designs {
		fig.Medians[di] = stats.MedianF(perDesign[di])
	}
	return fig, nil
}

// AccuracyRow is one workload's interval-error distribution (Figure 10).
type AccuracyRow struct {
	Workload string
	Design   instrument.Design
	// Errors summarizes (gap - target) in cycles.
	Errors stats.Summary
	// MedianError is the signed median error.
	MedianError int64
}

// MeasureFigureAccuracy computes Figure 10: interval error percentiles
// per workload at a 5,000-cycle target, single thread.
func MeasureFigureAccuracy(scale int, designs []instrument.Design) ([]AccuracyRow, error) {
	const target = 5000
	var out []AccuracyRow
	for i := range workloads.All {
		wl := &workloads.All[i]
		base, err := MeasureBaseline(wl, scale, 1)
		if err != nil {
			return nil, err
		}
		for _, d := range designs {
			row, err := MeasureOverhead(wl, d, base, scale, 1, target, true)
			if err != nil {
				return nil, err
			}
			errs := make([]int64, 0, len(row.Intervals))
			for _, gap := range row.Intervals {
				errs = append(errs, gap-target)
			}
			if len(errs) == 0 {
				errs = []int64{0}
			}
			sum := stats.Summarize(errs)
			out = append(out, AccuracyRow{
				Workload:    wl.Name,
				Design:      d,
				Errors:      sum,
				MedianError: sum.P50,
			})
		}
	}
	return out, nil
}

// SweepPoint is one (interval, kind) aggregate of Figure 12.
type SweepPoint struct {
	IntervalCycles int64
	// CISlowdown / HWSlowdown are the median slowdown factors across
	// workloads for compiler interrupts and hardware interrupts.
	CISlowdown float64
	HWSlowdown float64
	// CIAll / HWAll hold the per-workload factors (the overlaid points
	// in the paper's plot).
	CIAll, HWAll []float64
}

// MeasureFigure12 sweeps the interrupt interval and compares CI against
// hardware (performance-counter) interrupts across all workloads.
func MeasureFigure12(scale int, intervals []int64, names []string) ([]SweepPoint, error) {
	if len(intervals) == 0 {
		intervals = []int64{500, 1000, 2000, 5000, 10000, 20000, 50000, 100000, 500000}
	}
	sel := workloads.All
	if len(names) > 0 {
		sel = nil
		for _, n := range names {
			wl := workloads.ByName(n)
			if wl == nil {
				return nil, fmt.Errorf("unknown workload %q", n)
			}
			sel = append(sel, *wl)
		}
	}
	type prep struct {
		wl   *workloads.Workload
		base Baseline
		mod  *ir.Module // CI-instrumented module, compiled once
	}
	preps := make([]prep, 0, len(sel))
	for i := range sel {
		wl := &sel[i]
		base, err := MeasureBaseline(wl, scale, 1)
		if err != nil {
			return nil, err
		}
		prog, err := core.Compile(wl.Build(scale), core.Config{
			Design: instrument.CI, ProbeIntervalIR: ProbeIntervalIR,
		})
		if err != nil {
			return nil, err
		}
		preps = append(preps, prep{wl: wl, base: base, mod: prog.Mod})
	}
	var out []SweepPoint
	for _, interval := range intervals {
		pt := SweepPoint{IntervalCycles: interval}
		for _, p := range preps {
			// CI run.
			machine := vm.New(p.mod, nil, 1)
			machine.LimitInstrs = runLimit
			th := machine.NewThread(0)
			th.RT.IRPerCycle = p.base.IRPerCycle
			th.RT.RegisterCI(interval, func(uint64) { th.Charge(HandlerWorkCycles) })
			if _, err := th.Run("main", 0); err != nil {
				return nil, err
			}
			pt.CIAll = append(pt.CIAll, float64(th.Stats.Cycles)/float64(p.base.Cycles))

			// Hardware-interrupt run on the uninstrumented program.
			hwMod := p.wl.Build(scale)
			hwMachine := vm.New(hwMod, nil, 1)
			hwMachine.LimitInstrs = runLimit
			hwMachine.HW = &vm.HWConfig{
				IntervalCycles: interval,
				Handler:        func(t *vm.Thread) { t.Charge(HandlerWorkCycles) },
			}
			hth := hwMachine.NewThread(0)
			if _, err := hth.Run("main", 0); err != nil {
				return nil, err
			}
			pt.HWAll = append(pt.HWAll, float64(hth.Stats.Cycles)/float64(p.base.Cycles))
		}
		pt.CISlowdown = stats.MedianF(pt.CIAll)
		pt.HWSlowdown = stats.MedianF(pt.HWAll)
		out = append(out, pt)
	}
	return out, nil
}

// Table7Row mirrors one row of Table 7.
type Table7Row struct {
	Workload string
	// PTms1/PTms32 are the uninstrumented ("pthreads") runtimes in
	// virtual milliseconds at a 2.6 GHz model clock.
	PTms1, PTms32 float64
	// CI1, N1, CI32, N32 are normalized runtimes.
	CI1, N1, CI32, N32 float64
}

// ModelGHz converts virtual cycles to milliseconds for Table 7's
// absolute column.
const ModelGHz = 2.6

// MeasureTable7 reproduces Table 7: per-workload absolute baseline
// runtime plus normalized CI and Naive runtimes for 1 and 32 threads,
// with the geo-mean row.
func MeasureTable7(scale int) ([]Table7Row, Table7Row, error) {
	var rows []Table7Row
	var g Table7Row
	var ci1s, n1s, ci32s, n32s []float64
	for i := range workloads.All {
		wl := &workloads.All[i]
		row := Table7Row{Workload: wl.Name}
		for _, threads := range []int{1, 32} {
			base, err := MeasureBaseline(wl, scale, threads)
			if err != nil {
				return nil, g, err
			}
			ci, err := MeasureOverhead(wl, instrument.CI, base, scale, threads, 5000, false)
			if err != nil {
				return nil, g, err
			}
			nv, err := MeasureOverhead(wl, instrument.Naive, base, scale, threads, 5000, false)
			if err != nil {
				return nil, g, err
			}
			ms := float64(base.Cycles) / (ModelGHz * 1e6)
			if threads == 1 {
				row.PTms1, row.CI1, row.N1 = ms, ci.Norm, nv.Norm
			} else {
				row.PTms32, row.CI32, row.N32 = ms, ci.Norm, nv.Norm
			}
		}
		ci1s = append(ci1s, row.CI1)
		n1s = append(n1s, row.N1)
		ci32s = append(ci32s, row.CI32)
		n32s = append(n32s, row.N32)
		rows = append(rows, row)
	}
	g = Table7Row{
		Workload: "geo-mean",
		CI1:      stats.GeoMean(ci1s),
		N1:       stats.GeoMean(n1s),
		CI32:     stats.GeoMean(ci32s),
		N32:      stats.GeoMean(n32s),
	}
	return rows, g, nil
}
