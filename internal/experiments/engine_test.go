package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ci/instrument"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// detSubset is the workload selection the determinism tests sweep: big
// enough to exercise cross-cell cache sharing, small enough to run on
// every `go test`.
func detSubset(t *testing.T) []*workloads.Workload {
	t.Helper()
	sel, err := WorkloadsByName([]string{"radix", "histogram", "volrend", "kmeans"})
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

func renderOverheadSubset(t *testing.T, eng *engine.Engine) string {
	t.Helper()
	designs := []instrument.Design{instrument.CI, instrument.CnB, instrument.Naive}
	fig := MeasureFigureOverheadSel(eng, 1, 1, designs, detSubset(t))
	var buf bytes.Buffer
	fig.Render(&buf)
	if err := renderCellErrors(&buf, fig.Errs); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// The tentpole determinism claim: the sweep's rendered output is
// byte-identical at every worker count, and no cached module is
// mutated along the way.
func TestEngineWorkerDeterminism(t *testing.T) {
	var outputs []string
	for _, workers := range []int{1, 8, 3} {
		eng := engine.New(workers)
		outputs = append(outputs, renderOverheadSubset(t, eng))
		if err := VerifyCachedModules(eng); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
	for i, out := range outputs[1:] {
		if out != outputs[0] {
			t.Errorf("output at workers=%d differs from workers=1:\n%s\nvs\n%s",
				[]int{8, 3}[i], out, outputs[0])
		}
	}

	// ...and identical to the committed golden file, so the serial
	// pipeline's exact numbers are pinned across refactors. Refresh
	// with: go test ./internal/experiments/ -run Determinism -update
	golden := filepath.Join("testdata", "overhead_subset.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(outputs[0]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if outputs[0] != string(want) {
		t.Errorf("output drifted from golden file (rerun with -update if intended):\ngot:\n%s\nwant:\n%s",
			outputs[0], want)
	}
}

// Re-running a sweep against a populated store must skip every
// unchanged cell and still produce identical results.
func TestStoreSkipsUnchangedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_overhead.json")
	run := func() (string, int64, int64) {
		store, err := engine.OpenStore(path)
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(4)
		eng.Store = store
		out := renderOverheadSubset(t, eng)
		if err := store.Save(); err != nil {
			t.Fatal(err)
		}
		hits, misses := store.Skipped()
		return out, hits, misses
	}
	first, hits, misses := run()
	if hits != 0 || misses == 0 {
		t.Fatalf("cold run: %d hits / %d misses, want 0 hits", hits, misses)
	}
	second, hits, misses := run()
	if misses != 0 || hits == 0 {
		t.Errorf("warm run: %d hits / %d misses, want all hits", hits, misses)
	}
	if second != first {
		t.Errorf("store replay changed the output:\n%s\nvs\n%s", second, first)
	}
}

// faultingWorkload builds a program whose main immediately loads from
// address -1: compilation succeeds, every VM run faults.
func faultingWorkload() *workloads.Workload {
	return &workloads.Workload{
		Name:  "boom",
		Suite: "synthetic",
		Build: func(scale int) *ir.Module {
			m := ir.NewModule("boom")
			m.MemWords = 8
			f := m.NewFunc("main", 1)
			b := ir.NewBuilder(f)
			addr := b.Mov(-1)
			v := b.Load(addr, 0)
			b.Ret(v)
			f.Reindex()
			if err := m.Verify(); err != nil {
				panic(err)
			}
			return m
		},
	}
}

// One failing cell must cost exactly its own row: the rest of the
// sweep completes, the error is reported per cell, and the footer only
// appears when something actually failed.
func TestSweepPartialFailure(t *testing.T) {
	good, err := WorkloadsByName([]string{"radix", "histogram"})
	if err != nil {
		t.Fatal(err)
	}
	sel := []*workloads.Workload{good[0], faultingWorkload(), good[1]}
	designs := []instrument.Design{instrument.CI, instrument.Naive}
	fig := MeasureFigureOverheadSel(engine.New(4), 1, 1, designs, sel)

	if len(fig.Errs) != 1 {
		t.Fatalf("cell errors = %v, want exactly one", fig.Errs)
	}
	if ce := fig.Errs[0]; !strings.Contains(ce.Cell, "boom") || ce.Err == "" {
		t.Errorf("cell error %+v does not identify the failing cell", ce)
	}
	for _, name := range []string{"radix", "histogram"} {
		rows, ok := fig.Rows[name]
		if !ok || len(rows) != len(designs) {
			t.Errorf("surviving workload %s lost its rows (%v)", name, rows)
		}
	}
	if _, ok := fig.Rows["boom"]; ok {
		t.Error("failed cell produced rows")
	}
	for _, m := range fig.Medians {
		if m <= 0 {
			t.Errorf("medians over surviving cells = %v, want positive", fig.Medians)
		}
	}

	var buf bytes.Buffer
	if err := renderCellErrors(&buf, fig.Errs); err == nil {
		t.Error("renderCellErrors must return an aggregate error for a failed sweep")
	}
	out := buf.String()
	if !strings.Contains(out, "1 sweep cell(s) failed") || !strings.Contains(out, "boom") {
		t.Errorf("error footer missing or anonymous:\n%s", out)
	}

	// A clean sweep writes no footer at all — that is what keeps
	// success output byte-identical to the legacy pipeline.
	buf.Reset()
	if err := renderCellErrors(&buf, nil); err != nil || buf.Len() != 0 {
		t.Errorf("clean sweep rendered a footer: err=%v output=%q", err, buf.String())
	}
}

// The same partial-failure contract on the probe-count sweep, whose
// cells go through CellDo: the store must not record failed cells.
func TestPartialFailureNotStored(t *testing.T) {
	store, err := engine.OpenStore(filepath.Join(t.TempDir(), "BENCH_x.json"))
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(2)
	eng.Store = store
	sel := []*workloads.Workload{faultingWorkload()}
	fig := MeasureFigureOverheadSel(eng, 1, 1, []instrument.Design{instrument.CI}, sel)
	if len(fig.Errs) != 1 {
		t.Fatalf("errs = %v", fig.Errs)
	}
	if keys := store.Keys(); len(keys) != 0 {
		t.Errorf("failed cells were persisted: %v", keys)
	}
}
