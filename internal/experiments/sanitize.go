package experiments

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/ci/fuzz"
	"repro/internal/ci/instrument"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sanitize"
	"repro/internal/vm"
)

// This file drives the translation-validation sanitizer from the
// experiment CLI: a fuzz sweep that compiles random programs under the
// full stage checks and the differential execution oracle, plus a
// stage-checked compile of every paper workload. It is the sweep behind
// `ciexp sanitize` and the smoke gate in verify.sh.

// sanitizeDesigns is the oracle design set: the two CI variants, the
// CoreDet-style and naive-balance baselines, and the probe-free
// user-interrupt design (whose oracle run proves the uninstrumented
// module is untouched). The remaining designs are covered by the fuzz
// package's differential tests. An array (not a slice) so the per-cell
// verdict arrays below can be sized from it at compile time.
var sanitizeDesigns = [...]instrument.Design{
	instrument.CI, instrument.CICycles, instrument.CD, instrument.CnB,
	instrument.UserInterrupt,
}

// SanitizeRow aggregates one design's verdicts over the fuzz sweep.
type SanitizeRow struct {
	Design string
	// Programs is the number of fuzz programs compiled.
	Programs int
	// Clean counts programs that passed both stage checks and oracle.
	Clean int
	// Inconclusive counts oracle runs that hit the step budget.
	Inconclusive int
	// StageErrors counts static stage-check failures.
	StageErrors int
	// Divergences counts differential-oracle failures.
	Divergences int
	// TierChecked / TierDivergences count tier-differential oracle runs
	// (compiled vs interpreter, stat parity included) and their
	// failures. Only populated when the engine's tier is the compiled
	// one; the sweep output is unchanged otherwise.
	TierChecked     int
	TierDivergences int
	// FirstFailure is the first stage error or divergence, if any.
	FirstFailure string
}

// sanitizeVerdict classifies one (seed, design) compile+oracle outcome.
type sanitizeVerdict int

const (
	verdictClean sanitizeVerdict = iota
	verdictInconclusive
	verdictStageError
	verdictDivergence
)

type sanitizeCell struct {
	Verdicts [len(sanitizeDesigns)]sanitizeVerdict
	Failures [len(sanitizeDesigns)]string
	// TierChecked / TierDiverged mark per-design tier-differential
	// verdicts (engine on the compiled tier only).
	TierChecked  [len(sanitizeDesigns)]bool
	TierDiverged [len(sanitizeDesigns)]bool
}

// RunSanitizeSweep fuzzes `seeds` programs and pushes each through
// sanitize.CompileChecked (stage checks + differential oracle) for
// every oracle design. One seed is one engine cell; the whole sweep
// shards across the engine pool. An engine on the compiled tier
// additionally runs every clean instrumented module through the
// tier-differential oracle (sanitize.DiffTiers), so
// `ciexp sanitize -tier=compiled` gates the compiled tier's bit
// exactness over the same fuzz corpus.
func RunSanitizeSweep(eng *engine.Engine, seeds int) ([]SanitizeRow, []CellError) {
	tiered := eng.Tier == vm.TierCompiled
	cells, errs := engine.Map(eng.Pool, seeds, func(i int) (sanitizeCell, error) {
		seed := uint64(i + 1)
		src := fuzz.Generate(seed, fuzz.Options{
			MaxDepth: 2, MaxStmts: 5, MaxFuncs: 2, WithExterns: seed%4 == 0,
		})
		eo := sanitize.ExecOptions{
			Args:        []int64{int64(seed % 4096)},
			LimitInstrs: 30_000_000,
		}
		var cell sanitizeCell
		for di, d := range sanitizeDesigns {
			prog, err := sanitize.CompileChecked(src, core.Config{
				Design: d, ProbeIntervalIR: 200,
			}, sanitize.Options{Exec: true, ExecOptions: eo})
			var se *sanitize.StageError
			var div *sanitize.Divergence
			switch {
			case err == nil:
				cell.Verdicts[di] = verdictClean
				if tiered {
					cell.TierChecked[di] = true
					terr := sanitize.DiffTiers(prog.Mod, eo)
					var tdiv *sanitize.Divergence
					switch {
					case terr == nil || errors.Is(terr, sanitize.ErrInconclusive):
					case errors.As(terr, &tdiv):
						cell.TierDiverged[di] = true
						cell.Failures[di] = fmt.Sprintf("seed %d: %v", seed, tdiv)
					default:
						return cell, fmt.Errorf("seed %d/%v: tier oracle: %w", seed, d, terr)
					}
				}
			case errors.Is(err, sanitize.ErrInconclusive):
				cell.Verdicts[di] = verdictInconclusive
			case errors.As(err, &se):
				cell.Verdicts[di] = verdictStageError
				cell.Failures[di] = fmt.Sprintf("seed %d: %v", seed, se)
			case errors.As(err, &div):
				cell.Verdicts[di] = verdictDivergence
				cell.Failures[di] = fmt.Sprintf("seed %d: %v", seed, div)
			default:
				return cell, fmt.Errorf("seed %d/%v: %w", seed, d, err)
			}
		}
		return cell, nil
	})

	rows := make([]SanitizeRow, len(sanitizeDesigns))
	for di, d := range sanitizeDesigns {
		rows[di].Design = d.String()
	}
	for i, cell := range cells {
		if errs[i] != nil {
			continue
		}
		for di := range sanitizeDesigns {
			r := &rows[di]
			r.Programs++
			switch cell.Verdicts[di] {
			case verdictClean:
				r.Clean++
			case verdictInconclusive:
				r.Inconclusive++
			case verdictStageError:
				r.StageErrors++
			case verdictDivergence:
				r.Divergences++
			}
			if cell.TierChecked[di] {
				r.TierChecked++
			}
			if cell.TierDiverged[di] {
				r.TierDivergences++
			}
			if cell.Failures[di] != "" && r.FirstFailure == "" {
				r.FirstFailure = cell.Failures[di]
			}
		}
	}
	return rows, cellErrors(errs, func(i int) string { return fmt.Sprintf("sanitize/seed%d", i+1) })
}

// SanitizeWorkloads compiles every paper workload under every oracle
// design with the engine's sanitize-on-miss mode forced on, proving the
// stage checks hold on the curated benchmarks, not just fuzz programs.
// Returns the number of clean (workload, design) cells.
func SanitizeWorkloads(eng *engine.Engine, scale int) (int, []CellError) {
	prev := eng.SanitizeOnMiss
	eng.SanitizeOnMiss = true
	defer func() { eng.SanitizeOnMiss = prev }()

	sel := AllWorkloads()
	cells, errs := engine.Map(eng.Pool, len(sel), func(i int) (int, error) {
		clean := 0
		for _, d := range sanitizeDesigns {
			if _, err := CompileCached(eng, sel[i], scale,
				core.WithDesign(d), core.WithProbeInterval(ProbeIntervalIR)); err != nil {
				return clean, fmt.Errorf("%v: %w", d, err)
			}
			clean++
		}
		return clean, nil
	})
	total := 0
	for i, n := range cells {
		if errs[i] == nil {
			total += n
		}
	}
	return total, cellErrors(errs, func(i int) string { return "sanitize/" + sel[i].Name })
}

// PrintSanitize renders the sanitizer sweep and exits non-zero (via the
// returned error) when any stage check or oracle verdict failed. quick
// shrinks the fuzz corpus for smoke-test use.
func PrintSanitize(w io.Writer, eng *engine.Engine, scale int, quick bool) error {
	seeds := 300
	if quick {
		seeds = 50
	}
	tiered := eng.Tier == vm.TierCompiled
	suffix := ""
	if tiered {
		suffix = " + tier-differential oracle (compiled vs interpreter)"
	}
	fmt.Fprintf(w, "Translation-validation sweep: %d fuzz programs x %d designs (stage checks + differential oracle)%s\n",
		seeds, len(sanitizeDesigns), suffix)
	rows, errs := RunSanitizeSweep(eng, seeds)
	fmt.Fprintf(w, "%-12s%10s%8s%14s%13s%13s",
		"design", "programs", "clean", "inconclusive", "stage errs", "divergences")
	if tiered {
		fmt.Fprintf(w, "%12s%11s", "tier runs", "tier divs")
	}
	fmt.Fprintln(w)
	bad := 0
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s%10d%8d%14d%13d%13d",
			r.Design, r.Programs, r.Clean, r.Inconclusive, r.StageErrors, r.Divergences)
		if tiered {
			fmt.Fprintf(w, "%12d%11d", r.TierChecked, r.TierDivergences)
		}
		fmt.Fprintln(w)
		bad += r.StageErrors + r.Divergences + r.TierDivergences
		if r.FirstFailure != "" {
			fmt.Fprintf(w, "  first failure: %s\n", r.FirstFailure)
		}
	}

	clean, werrs := SanitizeWorkloads(eng, scale)
	fmt.Fprintf(w, "workloads: %d/%d (workload, design) cells stage-check clean\n",
		clean, len(AllWorkloads())*len(sanitizeDesigns))
	errs = append(errs, werrs...)

	if err := renderCellErrors(w, errs); err != nil {
		return err
	}
	if bad > 0 {
		return fmt.Errorf("sanitize: %d validation failure(s)", bad)
	}
	fmt.Fprintln(w, "sanitize: all programs validated")
	return nil
}
